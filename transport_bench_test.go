package actyp

import (
	"sync"
	"testing"

	"actyp/internal/core"
	"actyp/internal/netsim"
)

// BenchmarkTransport* measure single-connection wire throughput on a
// 10k-machine fleet over LAN latency: one op is a Request+Release cycle.
// The serial baseline keeps one request in flight (the pre-multiplexing
// per-connection behaviour); the Mux variants keep 8 callers in flight on
// the SAME connection, overlapping their round trips. The acceptance bar
// is Mux8 >= 5x Serial.

const transportCriteria = "punch.rsrc.arch = sun"

// benchTransport runs b.N Request+Release ops split across `callers`
// concurrent goroutines sharing one client connection to a server with
// the given per-connection window.
func benchTransport(b *testing.B, callers, window int) {
	svc := benchService(b, 10000, 0)
	if err := svc.Precreate(transportCriteria); err != nil {
		b.Fatal(err)
	}
	profile := netsim.LAN()
	srv, err := core.ServeWindow(svc, "127.0.0.1:0", profile, window)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	cli, err := core.Dial(srv.Addr(), profile)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cli.Close() })

	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		ops := b.N / callers
		if w < b.N%callers {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				g, err := cli.Request(transportCriteria)
				if err != nil {
					b.Error(err)
					return
				}
				if err := cli.Release(g); err != nil {
					b.Error(err)
					return
				}
			}
		}(ops)
	}
	wg.Wait()
}

// BenchmarkTransportSerial10k is the pre-multiplexing baseline: one
// request in flight on the connection at a time.
func BenchmarkTransportSerial10k(b *testing.B) { benchTransport(b, 1, 1) }

// BenchmarkTransportMux8_10k keeps 8 requests in flight on one connection
// against a full in-flight window.
func BenchmarkTransportMux8_10k(b *testing.B) { benchTransport(b, 8, 32) }

// BenchmarkTransportMux8Window1_10k isolates the client-side contribution:
// 8 callers pipeline the connection but the server dispatches serially.
func BenchmarkTransportMux8Window1_10k(b *testing.B) { benchTransport(b, 8, 1) }
