// Command actyp-bench regenerates the evaluation figures of the paper
// (Section 7, Figures 4-9) plus the design ablations, printing each as a
// text table of the plotted series.
//
// Usage:
//
//	actyp-bench -fig 4        # one figure
//	actyp-bench -fig all      # everything
//	actyp-bench -fig all -quick   # reduced scale for a fast smoke run
//
// Absolute response times depend on the host; the paper's *shapes* (more
// pools -> faster, bigger pools -> slower, splitting and replication help,
// heavy-tailed CPU times) are what the tables reproduce.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"actyp/internal/experiments"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/schedule"
)

// jsonDir, when non-empty, receives one BENCH_<figure>.json per figure
// whose driver emits machine-readable series (the perf trajectory shape).
var jsonDir string

// laneWeights is the -lane-weights spec applied to the overload figure.
var laneWeights schedule.LaneWeights

// hedgeDelay is the -hedge-delay stagger applied to the federation
// figure's fan-out leg (0 races the full width at once).
var hedgeDelay time.Duration

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4, 5, 6, 7, 8, 9, ablations, registry, pipeline, transport, codec, refresh, overload, wan, federation, recovery, partition or all")
	quick := flag.Bool("quick", false, "reduced scale for a fast run")
	laneSpec := flag.String("lane-weights", "", "lane weight spec for the overload figure, e.g. lease=4,bulk=1 (default from schedule)")
	regBackend := flag.String("registry-backend", "", "white-pages engine for the figure experiments: sharded or locked (default sharded)")
	regShards := flag.Int("registry-shards", 0, "shard count for the sharded backend (0: GOMAXPROCS-scaled)")
	poolEngine := flag.String("pool-engine", "", "pool allocation engine: indexed or oracle (default indexed; ScanCost figures stay on oracle)")
	refreshMode := flag.String("refresh-mode", "", "pool freshness mode for the figure experiments: events or poll (the refresh figure sweeps both regardless)")
	wireCodec := flag.String("wire-codec", "", "wire codec preference for the transport figure: auto, binary or json (the codec figure sweeps both regardless)")
	hedge := flag.Duration("hedge-delay", 0, "fan-out stagger for the federation figure, e.g. 10ms (0 races the full width at once)")
	jsonOut := flag.String("json", "", "also write BENCH_<figure>.json files into this directory")
	flag.Parse()

	if err := experiments.UseRegistry(*regBackend, *regShards); err != nil {
		log.Fatalf("actyp-bench: %v", err)
	}
	if err := experiments.UsePoolEngine(*poolEngine); err != nil {
		log.Fatalf("actyp-bench: %v", err)
	}
	if err := experiments.UseRefreshMode(*refreshMode); err != nil {
		log.Fatalf("actyp-bench: %v", err)
	}
	if err := experiments.UseWireCodec(*wireCodec); err != nil {
		log.Fatalf("actyp-bench: %v", err)
	}
	weights, err := schedule.ParseLaneWeights(*laneSpec)
	if err != nil {
		log.Fatalf("actyp-bench: %v", err)
	}
	laneWeights = weights
	hedgeDelay = *hedge
	jsonDir = *jsonOut

	run := func(name string, fn func(bool) error) {
		if *fig != "all" && *fig != name {
			return
		}
		start := time.Now()
		if err := fn(*quick); err != nil {
			log.Fatalf("actyp-bench: figure %s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "[fig %s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("4", fig4)
	run("5", fig5)
	run("6", fig6)
	run("7", fig7)
	run("8", fig8)
	run("9", fig9)
	run("ablations", ablations)
	run("registry", figRegistry)
	run("pipeline", figPipeline)
	run("transport", figTransport)
	run("codec", figCodec)
	run("refresh", figRefresh)
	run("overload", figOverload)
	run("wan", figWan)
	run("federation", figFederation)
	run("recovery", figRecovery)
	run("partition", figPartition)
}

// emit prints the series as a text table and, with -json, records them as
// BENCH_<name>.json for the perf trajectory.
func emit(name, title, xLabel, yLabel string, series []metrics.Series) error {
	if err := metrics.Table(os.Stdout, title, xLabel, yLabel, series); err != nil {
		return err
	}
	if jsonDir == "" {
		return nil
	}
	path := filepath.Join(jsonDir, "BENCH_"+name+".json")
	if err := metrics.WriteBenchFile(path, metrics.Bench{
		Benchmark: name, XLabel: xLabel, YLabel: yLabel, Series: series,
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", path)
	return nil
}

// figRegistry sweeps the white-pages hot path (striped Select plus the
// Section 5.2.3 Take protocol) across fleet sizes, comparing the locked
// reference engine against the sharded, index-accelerated one.
func figRegistry(quick bool) error {
	cfg := experiments.DefaultRegistryScale()
	if quick {
		cfg.Sizes = []int{1000, 10000}
		cfg.OpsPerClient = 10
	}
	series, err := experiments.RegistryScale(cfg)
	if err != nil {
		return err
	}
	return emit("registry", "Registry: Select+Take response time vs fleet size, per backend",
		"machines", "mean op (s)", series)
}

// figPipeline sweeps the end-to-end lease pipeline (Ask -> Allocate ->
// Release through query manager, pool manager, and one fleet-wide pool)
// across fleet sizes, comparing the oracle allocator against the indexed
// one.
func figPipeline(quick bool) error {
	cfg := experiments.DefaultPipelineScale()
	if quick {
		cfg.Sizes = []int{1000, 10000}
		cfg.OpsPerClient = 10
	}
	series, err := experiments.PipelineScale(cfg)
	if err != nil {
		return err
	}
	return emit("pipeline", "Pipeline: Ask->Allocate->Release response time vs fleet size, per pool engine",
		"machines", "mean op (s)", series)
}

// figTransport sweeps single-connection throughput against concurrent
// in-flight callers, per server-side dispatch window: the multiplexed
// transport's gain over the old one-frame-at-a-time connection handling.
func figTransport(quick bool) error {
	cfg := experiments.DefaultTransport()
	if quick {
		cfg.Machines = 2000
		cfg.Windows = []int{1, 8}
		cfg.Clients = []int{1, 4, 8}
		cfg.OpsPerClient = 15
	}
	series, err := experiments.TransportScale(cfg)
	if err != nil {
		return err
	}
	return emit("transport", "Transport: single-connection throughput vs in-flight callers, per window",
		"concurrent callers", "throughput (ops/s)", series)
}

// figCodec sweeps the wire codecs: end-to-end ops/s with both ends pinned
// to one codec at several request payload sizes, plus a socket-free
// frames/s sweep through each codec's encode+decode round trip.
func figCodec(quick bool) error {
	cfg := experiments.DefaultCodec()
	if quick {
		cfg.Machines = 2000
		cfg.PayloadBytes = []int{0, 4096}
		cfg.OpsPerClient = 15
		cfg.FrameIters = 3000
	}
	ops, frames, err := experiments.CodecScale(cfg)
	if err != nil {
		return err
	}
	if err := emit("codec", "Codec: end-to-end throughput vs request payload size, per wire codec",
		"payload pad (bytes)", "throughput (ops/s)", ops); err != nil {
		return err
	}
	return emit("codec_frames", "Codec: encode+decode round trips vs request payload size, per wire codec",
		"payload pad (bytes)", "frames/s", frames)
}

// figRefresh sweeps allocate-latency p99 under sustained monitor sweeps
// across fleet sizes, comparing poll-mode full cache rebuilds against the
// event-driven incremental refresh.
func figRefresh(quick bool) error {
	cfg := experiments.DefaultRefreshScale()
	if quick {
		cfg.Sizes = []int{1000, 5000}
		cfg.OpsPerClient = 25
	}
	series, err := experiments.RefreshScale(cfg)
	if err != nil {
		return err
	}
	return emit("refresh", "Refresh: allocate p99 under sustained monitor sweeps, per freshness mode",
		"machines", "p99 op (s)", series)
}

// figOverload drives one shared connection with control pings plus a
// growing bulk-query flood, comparing FIFO dispatch against the overload
// control path (priority lanes + deadline-aware shedding). The result's
// Check() is the regression bar — control-lane p99 at the highest load
// must stay within a small multiple of its 1x value — so a CI smoke run
// of this figure is the overload regression gate.
func figOverload(quick bool) error {
	cfg := experiments.DefaultOverload()
	cfg.Weights = laneWeights
	if quick {
		cfg.Machines = 2000
		cfg.Loads = []int{1, 4}
		cfg.BulkPerLoad = 4
		cfg.ControlClients = 2
		cfg.Window = 2
		cfg.QueueCap = 8
		cfg.Duration = 500 * time.Millisecond
	}
	res, err := experiments.OverloadScale(cfg)
	if err != nil {
		return err
	}
	if err := emit("overload", "Overload: control-plane ping p99 vs offered load, per dispatch mode",
		"load multiplier", "control p99 (ms)", res.ControlP99); err != nil {
		return err
	}
	goodput := append(relabel("goodput, ", res.Goodput), relabel("shed, ", res.Shed)...)
	if err := emit("overload_goodput", "Overload: bulk goodput and client-observed sheds vs offered load, per dispatch mode",
		"load multiplier", "bulk ops/s", goodput); err != nil {
		return err
	}
	for i, c := range res.BulkCounts {
		fmt.Printf("# lanes bulk counters at %gx: admitted=%d shed=%d expired=%d done=%d\n",
			res.ControlP99[0].Points[i].X, c.Admitted, c.Shed, c.Expired, c.Done)
	}
	return res.Check()
}

// figWan sweeps record-batch replies across payload size, network profile
// (LAN vs bandwidth-modeled WAN), and wire encoding (full baseline, delta
// batch, delta+flate). The bytes-per-op series comes from the client
// connection's metrics.WireStats; the result's Check() is the regression
// bar — compressed+delta must move >=5x fewer bytes (or complete >=3x the
// ops/s) than the full baseline at the 8KiB-class WAN point — so a CI
// smoke run of this figure is the WAN-wire regression gate.
func figWan(quick bool) error {
	cfg := experiments.DefaultWan()
	if quick {
		cfg.Machines = 128
		cfg.Batches = []int{4, 32}
		cfg.Clients = 4
		cfg.OpsPerClient = 8
	}
	res, err := experiments.WanScale(cfg)
	if err != nil {
		return err
	}
	if err := emit("wan", "WAN wire: select throughput vs records per reply, per profile and encoding",
		"records per reply", "throughput (ops/s)", res.Ops); err != nil {
		return err
	}
	if err := emit("wan_bytes", "WAN wire: bytes on the wire per select, per profile and encoding",
		"records per reply", "wire bytes per op", res.Bytes); err != nil {
		return err
	}
	return res.Check()
}

// figFederation runs the federated-resolution sweeps: miss-resolve p50/p99
// at a home manager delegating to wire-connected peers (serial walk vs
// first-win fan-out, LAN vs WAN), and remote allocate p50/p99 plus
// update-visibility lag on a wire-fed replica (watch stream vs poll
// ladder). The result's Check() is the regression bar — fan-out must cut
// WAN miss-resolve p99 >=3x at the largest peer count, and watch must beat
// poll remote-allocate p99 >=5x at the largest fleet — so a CI smoke run
// of this figure is the federation regression gate.
func figFederation(quick bool) error {
	cfg := experiments.DefaultFederation()
	cfg.HedgeDelay = hedgeDelay
	if quick {
		cfg.Peers = []int{1, 4}
		cfg.OpsPerClient = 4
		cfg.Clients = 2
		cfg.FreshSizes = []int{5000}
		cfg.FreshClients = 4
		cfg.FreshOps = 50
		cfg.LagSamples = 8
	}
	res, err := experiments.FederationScale(cfg)
	if err != nil {
		return err
	}
	if err := emit("federation", "Federation: miss-resolve (peers on x) and remote freshness (machines on x), per mode",
		"peers | machines", "p50/p99 (s)", res.AllSeries()); err != nil {
		return err
	}
	return res.Check()
}

// figRecovery measures the durability subsystem: cold-boot recovery time
// (journal replay + registry restore + lease re-adoption) across fleet
// sizes, allocate p99 on the freshly recovered daemon, and the
// allocate-p99 overhead of each journal fsync policy against the
// no-journal baseline. The result's Check() is the regression bar —
// recovery at the largest fleet inside experiments.ReplayBar, every
// journaled lease restored, and fsync=interval within 2x of no-journal
// allocate p99 — so a CI smoke run of this figure is the durability
// regression gate.
func figRecovery(quick bool) error {
	cfg := experiments.DefaultRecovery()
	if quick {
		cfg.Sizes = []int{500, 2000}
		cfg.Leases = 16
		cfg.Clients = 4
		cfg.OpsPerClient = 15
		cfg.FsyncMachines = 500
	}
	res, err := experiments.RecoveryScale(cfg)
	if err != nil {
		return err
	}
	series := append([]metrics.Series{res.Recovery, res.Allocate}, res.Fsync...)
	if err := emit("recovery", "Recovery: cold-boot time and allocate p99 vs fleet size, plus fsync-policy overhead",
		"machines | fsync policy index", "ms", series); err != nil {
		return err
	}
	fmt.Printf("# recovery at largest fleet: restored=%d reaped=%d\n", res.Restored, res.Reaped)
	return res.Check()
}

// relabel prefixes each series label, so two result groups can share one
// table without colliding.
func relabel(prefix string, series []metrics.Series) []metrics.Series {
	out := make([]metrics.Series, len(series))
	for i, s := range series {
		out[i] = s
		out[i].Label = prefix + s.Label
	}
	return out
}

func fig4(quick bool) error {
	cfg := experiments.DefaultFig4()
	if quick {
		cfg.Machines = 320
		cfg.Pools = []int{2, 4, 8, 16}
		cfg.Clients = 8
		cfg.QueriesPerClient = 5
		cfg.ScanCost = 20 * time.Microsecond
	}
	s, err := experiments.Fig4(cfg)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Figure 4: effect of pools on response time (LAN)",
		"pools", "mean response (s)", []metrics.Series{s})
}

func fig5(quick bool) error {
	cfg := experiments.DefaultFig5()
	if quick {
		cfg.Machines = 320
		cfg.Pools = []int{1, 4, 16}
		cfg.ClientCounts = []int{8, 16}
		cfg.QueriesPerClient = 3
		cfg.Profile = netsim.Profile{Latency: 10 * time.Millisecond, Jitter: time.Millisecond, Seed: 1}
		cfg.ScanCost = 20 * time.Microsecond
	}
	series, err := experiments.Fig5(cfg)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Figure 5: effect of pools on response time (WAN)",
		"pools", "mean response (s)", series)
}

func fig6(quick bool) error {
	cfg := experiments.DefaultFig6()
	if quick {
		cfg.PoolSizes = []int{100, 400}
		cfg.Clients = []int{1, 8, 16}
		cfg.QueriesPerClient = 5
		cfg.ScanCost = 50 * time.Microsecond
	}
	series, err := experiments.Fig6(cfg)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Figure 6: effect of pool size on response time",
		"clients", "mean response (s)", series)
}

func fig7(quick bool) error {
	cfg := experiments.DefaultFig7()
	if quick {
		cfg.Machines = 400
		cfg.Clients = []int{8, 16}
		cfg.QueriesPerClient = 5
		cfg.ScanCost = 50 * time.Microsecond
	}
	series, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Figure 7: effect of splitting on response time",
		"clients", "mean response (s)", series)
}

func fig8(quick bool) error {
	cfg := experiments.DefaultFig8()
	if quick {
		cfg.Machines = 400
		cfg.Clients = []int{8, 16}
		cfg.QueriesPerClient = 5
		cfg.ScanCost = 50 * time.Microsecond
	}
	series, err := experiments.Fig8(cfg)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Figure 8: effect of replication on response time",
		"clients", "mean response (s)", series)
}

func fig9(quick bool) error {
	cfg := experiments.DefaultFig9()
	if quick {
		cfg.Runs = 30000
	}
	series, stats, err := experiments.Fig9(cfg)
	if err != nil {
		return err
	}
	if err := metrics.Table(os.Stdout, "Figure 9: distribution of CPU times",
		"cpu seconds (bucket edge)", "runs", []metrics.Series{series}); err != nil {
		return err
	}
	fmt.Printf("# tail summary: n=%d mean=%.1fs median=%.1fs p99=%.0fs max=%.0fs short(<10s)=%.1f%%\n",
		stats.N, stats.Mean, stats.Median, stats.P99, stats.Max, 100*stats.ShortFrac)
	return nil
}

func ablations(quick bool) error {
	machines, clients, per := 256, 8, 10
	scan := 100 * time.Microsecond
	if quick {
		machines, clients, per = 64, 4, 5
	}
	fm, err := experiments.AblationFirstMatch(machines, clients, per, scan)
	if err != nil {
		return err
	}
	if err := metrics.Table(os.Stdout, "Ablation: composite-query QoS (Section 6)",
		"clients", "mean response (s)", fm); err != nil {
		return err
	}

	sp, err := experiments.AblationStaticPools(machines, 4, scan)
	if err != nil {
		return err
	}
	if err := metrics.Table(os.Stdout, "Ablation: dynamic vs static pool creation (0=first query, 1=steady state)",
		"phase", "response (s)", sp); err != nil {
		return err
	}

	sel, err := experiments.AblationSelection(experiments.PaperMachines, 200)
	if err != nil {
		return err
	}
	return metrics.Table(os.Stdout, "Ablation: linear search vs presorted selection",
		"pool size", "ns per selection", sel)
}

// figPartition runs the domain-partitioning sweeps: per-node resident
// records under the rendezvous ownership split, cross-domain resolve p99
// with the directed hop against the first-win fan-out, and owned-domain
// allocate p99 on a partitioned node against the single-node baseline.
// The result's Check() is the regression bar — resident records tracking
// fleet/P at the largest node count, the directed hop >=3x faster than
// the fan-out at 4 peers, and partitioned allocation within 1.5x of
// single-node — so a CI smoke run of this figure is the partitioning
// regression gate.
func figPartition(quick bool) error {
	cfg := experiments.DefaultPartition()
	if quick {
		cfg.Fleets = []int{1000}
		cfg.PeerMachines = 1024
		cfg.ResolveOps = 400
		cfg.Clients = 4
		cfg.OpsPerClient = 10
	}
	res, err := experiments.PartitionScale(cfg)
	if err != nil {
		return err
	}
	if err := emit("partition", "Partitioning: resident records and allocate (fleet on x), cross-domain resolve (peers on x)",
		"fleet | peers", "records | p99 (s)", res.AllSeries()); err != nil {
		return err
	}
	return res.Check()
}
