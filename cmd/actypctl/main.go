// Command actypctl is the command-line client for an actypd daemon: it
// submits queries in the native key-value language, prints the granted
// lease, optionally holds it, and releases it.
//
// Usage:
//
//	actypctl -addr host:port ping
//	actypctl -addr host:port request 'punch.rsrc.arch = sun' 'punch.rsrc.memory = >=10'
//	actypctl -addr host:port request -hold 5s -file query.txt
//
// Each "key = value" argument is one query line; -file reads the whole
// query from a file instead.
//
// The route subcommand prints the daemon's domain-ownership table (and
// resolves any domains given as arguments); watch tails the registry
// change stream, optionally scoped to a -domains list so only that slice
// travels the wire.
//
// The journal subcommand operates on a daemon's durability directory
// without dialing anything:
//
//	actypctl journal inspect /var/lib/actyp/journal
//	actypctl journal verify /var/lib/actyp/journal
//	actypctl journal compact /var/lib/actyp/journal   (daemon must be stopped)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"actyp/internal/core"
	"actyp/internal/journal"
	"actyp/internal/netsim"
	"actyp/internal/route"
	"actyp/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7464", "actypd address")
	wireCodec := flag.String("wire-codec", "auto", "wire codec preference: auto (negotiate, binary preferred), binary, json, a compressed variant like binary2+flate, or a comma list")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The journal subcommand is offline file surgery — dispatch it before
	// dialing anything.
	if args[0] == "journal" {
		if err := journalCmd(args[1:]); err != nil {
			log.Fatalf("actypctl: journal: %v", err)
		}
		return
	}

	codecs, err := wire.ParseCodecs(*wireCodec)
	if err != nil {
		log.Fatalf("actypctl: %v", err)
	}
	client, err := core.DialOpts(*addr, netsim.Local(), core.DialConfig{Codecs: codecs})
	if err != nil {
		log.Fatalf("actypctl: %v", err)
	}
	defer client.Close()

	switch args[0] {
	case "ping":
		start := time.Now()
		if err := client.Ping(); err != nil {
			log.Fatalf("actypctl: ping: %v", err)
		}
		fmt.Printf("pong in %v\n", time.Since(start))
	case "request":
		if err := request(client, args[1:]); err != nil {
			log.Fatalf("actypctl: %v", err)
		}
	case "route":
		if err := routeCmd(client, args[1:]); err != nil {
			log.Fatalf("actypctl: route: %v", err)
		}
	case "watch":
		if err := watchCmd(client, args[1:]); err != nil {
			log.Fatalf("actypctl: watch: %v", err)
		}
	default:
		usage()
	}
}

// routeCmd prints the daemon's domain-ownership table: whether
// partitioning is enabled, the rendezvous node set, the static
// assignments, and the resolved owner of every domain named on the
// command line.
func routeCmd(client *core.Client, args []string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	reply, err := client.Route(ctx, args...)
	if err != nil {
		return err
	}
	if !reply.Enabled {
		fmt.Printf("partitioning: off (node %s owns the whole namespace)\n", reply.Node)
	} else {
		fmt.Printf("partitioning: on\n")
	}
	fmt.Printf("node:         %s\n", reply.Node)
	if len(reply.Nodes) > 0 {
		fmt.Printf("rendezvous:   %s\n", strings.Join(reply.Nodes, ", "))
	}
	for _, e := range reply.Entries {
		kind := "rendezvous"
		if e.Static {
			kind = "static"
		}
		fmt.Printf("domain %-16s -> %s (%s)\n", e.Domain, e.Owner, kind)
	}
	return nil
}

// watchCmd subscribes to the daemon's registry change stream and prints
// events as they arrive; -domains rides the domain-scoped watch filter so
// only the named domains' slice travels the wire. Runs until killed.
func watchCmd(client *core.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	domains := fs.String("domains", "", "comma-separated domains to watch (empty watches everything)")
	filter := fs.String("filter", "", "raw basic-query filter (mutually exclusive with -domains)")
	ring := fs.Int("ring", 0, "server-side coalescing ring size (0 uses the server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *domains != "" && *filter != "" {
		return fmt.Errorf("-domains and -filter are mutually exclusive")
	}
	text := *filter
	if *domains != "" {
		text = route.FilterAny(strings.Split(*domains, ","))
	}
	st, err := client.WatchSubscribe(context.Background(), text, *ring)
	if err != nil {
		return err
	}
	defer st.Close()
	if text != "" {
		fmt.Printf("watching [%s]\n", text)
	}
	for {
		batch, err := st.Recv()
		if err != nil {
			return err
		}
		if batch.Resync {
			fmt.Println("-- resync: events were coalesced away; re-fetch for fidelity --")
		}
		for _, ev := range batch.Events {
			domain := ""
			if ev.Machine != nil {
				domain = route.MachineDomain(ev.Machine)
			}
			if domain != "" {
				fmt.Printf("%s %s (domain %s)\n", ev.Kind, ev.Name, domain)
			} else {
				fmt.Printf("%s %s\n", ev.Kind, ev.Name)
			}
		}
	}
}

func request(client *core.Client, args []string) error {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	hold := fs.Duration("hold", 0, "hold the lease this long before releasing")
	file := fs.String("file", "", "read the query from this file")
	lang := fs.String("lang", "", "query language (default native)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var text string
	if *file != "" {
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		text = string(raw)
	} else {
		text = strings.Join(fs.Args(), "\n")
	}
	if strings.TrimSpace(text) == "" {
		return fmt.Errorf("empty query: pass 'key = value' arguments or -file")
	}

	start := time.Now()
	grant, err := client.RequestLang(*lang, text)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("machine:   %s\n", grant.Lease.Machine)
	fmt.Printf("address:   %s:%d\n", grant.Lease.Addr, grant.Lease.ExecUnitPort)
	fmt.Printf("mountmgr:  port %d\n", grant.Lease.MountMgrPort)
	fmt.Printf("accesskey: %s\n", grant.Lease.AccessKey)
	fmt.Printf("shadow:    %s (uid %d)\n", grant.Shadow.User, grant.Shadow.UID)
	fmt.Printf("pool:      %s\n", grant.Lease.Pool)
	fmt.Printf("fragments: %d (%d succeeded)\n", grant.Fragments, grant.Succeeded)
	fmt.Printf("response:  %v\n", elapsed)

	if *hold > 0 {
		fmt.Printf("holding for %v...\n", *hold)
		time.Sleep(*hold)
	}
	if err := client.Release(grant); err != nil {
		return err
	}
	fmt.Println("released")
	return nil
}

// journalCmd inspects, verifies, or compacts a journal directory.
func journalCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("want: journal inspect|verify|compact <dir>")
	}
	verb, dir := args[0], args[1]
	switch verb {
	case "inspect":
		info, err := journal.Inspect(dir)
		if err != nil {
			return err
		}
		for _, si := range info.Snapshots {
			status := fmt.Sprintf("%d machines, %d leases", si.Machines, si.Leases)
			if si.Err != "" {
				status = "UNLOADABLE: " + si.Err
			}
			fmt.Printf("snapshot %8d  %9d bytes  %s\n", si.Seq, si.Bytes, status)
		}
		for _, si := range info.Segments {
			fmt.Printf("segment  %8d  %9d bytes  %d records (%d event batches, %d lease ops, %d resyncs)",
				si.Seq, si.Bytes, si.Records, si.Events, si.Leases, si.Resyncs)
			if si.Err != "" {
				fmt.Printf("  [tail: %s]", si.Err)
			}
			fmt.Println()
		}
		if len(info.Snapshots) == 0 && len(info.Segments) == 0 {
			fmt.Println("empty journal directory")
		}
	case "verify":
		issues, err := journal.Verify(dir)
		if err != nil {
			return err
		}
		if len(issues) == 0 {
			fmt.Println("ok: every record CRC checks out")
			return nil
		}
		for _, issue := range issues {
			fmt.Println(issue)
		}
		os.Exit(1)
	case "compact":
		removed, err := journal.CompactOffline(dir)
		if err != nil {
			return err
		}
		fmt.Printf("compacted: %d files removed\n", removed)
	default:
		return fmt.Errorf("unknown verb %q (want inspect, verify or compact)", verb)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  actypctl [-addr host:port] [-wire-codec spec] ping
  actypctl [-addr host:port] [-wire-codec spec] request [-hold d] [-lang name] [-file f] ['key = value' ...]
  actypctl [-addr host:port] route [domain ...]
  actypctl [-addr host:port] watch [-domains d1,d2] [-filter expr] [-ring n]
  actypctl journal inspect|verify|compact <dir>
`)
	os.Exit(2)
}
