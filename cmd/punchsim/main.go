// Command punchsim replays a synthetic PUNCH day through the full stack:
// a fleet, the ActYP service, the application-management component, and a
// population of desktop users submitting background jobs plus class
// bursts. It reports turnaround statistics, pool locality, and the
// CPU-time distribution of the simulated runs (the Figure 9 shape).
//
// Usage:
//
//	punchsim [-machines 256] [-background 500] [-students 40] [-runs 3] [-workers 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"actyp/internal/appmgr"
	"actyp/internal/core"
	"actyp/internal/desktop"
	"actyp/internal/metrics"
	"actyp/internal/perfmodel"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/vfs"
	"actyp/internal/workload"
)

func main() {
	var (
		machines   = flag.Int("machines", 256, "fleet size")
		background = flag.Int("background", 500, "background jobs")
		students   = flag.Int("students", 40, "students in the class burst")
		runs       = flag.Int("runs", 3, "runs per student")
		workers    = flag.Int("workers", 32, "concurrent submission workers")
		seed       = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	if err := run(*machines, *background, *students, *runs, *workers, *seed); err != nil {
		log.Fatalf("punchsim: %v", err)
	}
}

func run(machines, background, students, runs, workers int, seed int64) error {
	// Build the fleet, then grant every machine all tool licenses and
	// tool groups: punchsim models a site whose software is uniformly
	// installed, so per-tool pools contend on machines, not licenses.
	allTools := []string{"tsuprem4", "spice", "matlab", "montecarlo"}
	db := registry.NewDB()
	fleet, err := registry.DefaultFleetSpec(machines).Build(time.Now())
	if err != nil {
		return err
	}
	for _, m := range fleet {
		m.Policy.ToolGroups = append([]string(nil), allTools...)
		m.Policy.ToolGroups = append(m.Policy.ToolGroups, "transport")
		m.Policy.Params["license"] = query.ListAttr(allTools...)
		if err := db.Add(m); err != nil {
			return err
		}
	}
	// Cap dynamic pools at an eighth of the fleet so overlapping
	// per-license criteria share the machines instead of the first pool
	// taking everything.
	svc, err := core.New(core.Options{
		DB:              db,
		MonitorInterval: 100 * time.Millisecond,
		Seed:            seed,
		MaxPoolSize:     machines / 8,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	perf := perfmodel.NewService(0.2)
	for _, m := range perfmodel.PunchModels() {
		if err := perf.Register(m); err != nil {
			return err
		}
	}
	app := appmgr.New(perf)
	if err := appmgr.PunchKnowledgeBase(app); err != nil {
		return err
	}
	desk, err := desktop.New(desktop.Config{App: app, ActYP: svc, VFS: vfs.NewManager()})
	if err != nil {
		return err
	}

	// User population: students plus a public background crowd.
	for i := 0; i < students; i++ {
		if err := desk.AddUser(desktop.User{Login: fmt.Sprintf("student%03d", i), Group: "ece"}); err != nil {
			return err
		}
	}
	for i := 0; i < 200; i++ {
		if err := desk.AddUser(desktop.User{Login: fmt.Sprintf("user%03d", i), Group: "public"}); err != nil {
			return err
		}
	}

	tools := app.Tools()
	gen, err := workload.NewGenerator(seed, tools)
	if err != nil {
		return err
	}
	stream := workload.Merge(
		gen.Background(background, time.Millisecond),
		gen.Burst(workload.BurstSpec{
			Tool: "spice", Students: students, Runs: runs,
			Think: 2 * time.Millisecond, Group: "ece",
		}),
	)
	fmt.Printf("replaying %d jobs (%d background + %d burst) over %d machines with %d workers\n",
		len(stream), background, students*runs, machines, workers)

	turnaround := metrics.NewRecorder()
	queueTime := metrics.NewRecorder()
	cpuHist, err := metrics.NewHistogram(0, 1000, 50)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	failures := map[string]int{}

	jobs := make(chan workload.Job)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				t0 := time.Now()
				// Transient exhaustion (every machine of a capped pool
				// busy) is expected under burst concurrency; desktops
				// retry with a short backoff before reporting failure.
				var res *desktop.RunResult
				var err error
				for attempt := 0; attempt < 3; attempt++ {
					res, err = desk.RunTool(j.User, j.Tool, nil)
					if err == nil {
						break
					}
					time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
				}
				if err != nil {
					mu.Lock()
					failures[j.Tool]++
					mu.Unlock()
					continue
				}
				turnaround.Record(time.Since(t0))
				queueTime.Record(res.Queue)
				// The histogram tracks the workload's CPU demand (the
				// Figure 9 distribution), not the tool estimate.
				cpuHist.Observe(j.CPUSeconds)
			}
		}()
	}
	for _, j := range stream {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	completed, denied := desk.Stats()
	fmt.Printf("\ncompleted %d runs in %v (%d denied)\n", completed, elapsed.Round(time.Millisecond), denied)
	fmt.Printf("turnaround: %s\n", turnaround.Summary())
	fmt.Printf("actyp queue time: %s\n", queueTime.Summary())
	if len(failures) > 0 {
		fmt.Printf("failures by tool: %v\n", failures)
	}

	fmt.Println("\npool locality (pools created on the fly):")
	sizes := svc.PoolSizes()
	insts := make([]string, 0, len(sizes))
	for inst := range sizes {
		insts = append(insts, inst)
	}
	sort.Strings(insts)
	for _, inst := range insts {
		fmt.Printf("  %-64s %4d machines\n", inst, sizes[inst])
	}
	for _, pm := range svc.PoolManagers() {
		resolved, created, forwarded, failed := pm.Stats()
		fmt.Printf("pool manager %s: resolved=%d created=%d forwarded=%d failed=%d\n",
			pm.Name(), resolved, created, forwarded, failed)
	}

	fmt.Println("\nsimulated CPU-time distribution (first buckets, Figure 9 shape):")
	for i, b := range cpuHist.Buckets() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %5.0f-%5.0fs %6d runs\n", b.Edge, b.Edge+20, b.Count)
	}
	edge, count := cpuHist.PeakBucket()
	fmt.Printf("mode: bucket starting at %.0fs with %d runs; mean %.1fs over %d runs\n",
		edge, count, cpuHist.Mean(), cpuHist.Count())
	return nil
}
