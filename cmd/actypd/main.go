// Command actypd runs a complete Active Yellow Pages service as a network
// daemon: white-pages database, resource monitor, and the query-manager /
// pool-manager / resource-pool pipeline, exposed over TCP via the wire
// protocol. Clients (see actypctl) submit queries and receive machine
// leases with session access keys.
//
// Usage:
//
//	actypd [flags]
//
// With -db the white pages load from a JSON snapshot; otherwise a
// synthetic fleet of -machines machines is generated. The -profile flag
// injects LAN- or WAN-like latency for controlled experiments.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"actyp/internal/core"
	"actyp/internal/netsim"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7464", "listen address")
		machines   = flag.Int("machines", 256, "synthetic fleet size (ignored with -db)")
		dbPath     = flag.String("db", "", "load white pages from this JSON snapshot")
		profile    = flag.String("profile", "local", "network profile: local, lan or wan")
		scanCost   = flag.Duration("scancost", 0, "modelled per-entry linear-search cost (e.g. 2us)")
		qms        = flag.Int("query-managers", 1, "query manager replicas")
		pms        = flag.Int("pool-managers", 1, "pool manager replicas")
		objective  = flag.String("objective", "least-load", "pool scheduling objective")
		monitor    = flag.Duration("monitor", time.Second, "resource monitor sweep interval (0 disables)")
		warm       = flag.Int("warm", 0, "pre-stripe machines across N pools and pre-create them")
		firstMatch = flag.Bool("first-match", false, "return the first composite fragment instead of reintegrating all")
		leaseTTL   = flag.Duration("lease-ttl", 0, "reclaim leases not renewed within this lifetime (0 disables)")
		regBackend = flag.String("registry-backend", registry.BackendSharded, "white-pages storage engine: sharded or locked")
		regShards  = flag.Int("registry-shards", 0, "shard count for the sharded backend (0: GOMAXPROCS-scaled)")
		poolEngine = flag.String("pool-engine", "", "pool allocation engine: indexed or oracle (default indexed; -scancost pools stay on oracle)")
		connWindow = flag.Int("conn-window", wire.DefaultWindow, "per-connection in-flight request window (1 serializes each connection)")
	)
	flag.Parse()

	if err := run(*addr, *machines, *dbPath, *profile, *scanCost, *qms, *pms, *objective, *monitor, *warm, *firstMatch, *leaseTTL, *regBackend, *regShards, *poolEngine, *connWindow); err != nil {
		log.Fatalf("actypd: %v", err)
	}
}

func run(addr string, machines int, dbPath, profileName string, scanCost time.Duration,
	qms, pms int, objective string, monitorIvl time.Duration, warm int, firstMatch bool, leaseTTL time.Duration,
	regBackend string, regShards int, poolEngine string, connWindow int) error {

	backend, err := registry.OpenBackend(regBackend, regShards)
	if err != nil {
		return err
	}
	db := registry.NewDBWith(backend)
	log.Printf("actypd: white pages on the %s backend", regBackend)
	if dbPath != "" {
		f, err := os.Open(dbPath)
		if err != nil {
			return err
		}
		err = db.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("actypd: loaded %d machines from %s", db.Len(), dbPath)
	} else {
		if err := registry.DefaultFleetSpec(machines).Populate(db, time.Now()); err != nil {
			return err
		}
		log.Printf("actypd: generated a synthetic fleet of %d machines", db.Len())
	}

	profile, err := profileByName(profileName)
	if err != nil {
		return err
	}

	opts := core.Options{
		DB:              db,
		QueryManagers:   qms,
		PoolManagers:    pms,
		Objective:       objective,
		ScanCost:        scanCost,
		MonitorInterval: monitorIvl,
		LeaseTTL:        leaseTTL,
		PoolEngine:      poolEngine,
	}
	if firstMatch {
		opts.Mode = querymgr.FirstMatch
	}
	svc, err := core.New(opts)
	if err != nil {
		return err
	}
	defer svc.Close()

	if warm > 0 {
		if err := svc.StripePools(warm); err != nil {
			return err
		}
		if err := svc.WarmPools(warm); err != nil {
			return err
		}
		log.Printf("actypd: pre-created %d striped pools", warm)
	}

	srv, err := core.ServeWindow(svc, addr, profile, connWindow)
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Logf = log.Printf
	log.Printf("actypd: serving on %s (profile %s, conn window %d)", srv.Addr(), profileName, connWindow)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("actypd: shutting down")
	return nil
}

func profileByName(name string) (netsim.Profile, error) {
	switch name {
	case "local", "":
		return netsim.Local(), nil
	case "lan":
		return netsim.LAN(), nil
	case "wan":
		return netsim.WAN(), nil
	}
	return netsim.Profile{}, fmt.Errorf("unknown profile %q (want local, lan or wan)", name)
}
