// Command actypd runs a complete Active Yellow Pages service as a network
// daemon: white-pages database, resource monitor, and the query-manager /
// pool-manager / resource-pool pipeline, exposed over TCP via the wire
// protocol. Clients (see actypctl) submit queries and receive machine
// leases with session access keys.
//
// Usage:
//
//	actypd [flags]
//
// With -db the white pages load from a JSON snapshot; otherwise a
// synthetic fleet of -machines machines is generated. The -profile flag
// injects LAN- or WAN-like latency for controlled experiments. The wire
// codec is negotiated per connection (-wire-codec pins the preference),
// and the daemon can additionally host a UDP endpoint (-udp-addr), a
// pool-manager stage endpoint (-stage-addr), and a pool-spawning proxy
// endpoint (-proxy-addr), each with its own in-flight window knob.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"actyp/internal/core"
	"actyp/internal/journal"
	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/policy"
	"actyp/internal/proxy"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/route"
	"actyp/internal/schedule"
	"actyp/internal/stage"
	"actyp/internal/wire"
)

// daemonConfig carries every flag into run.
type daemonConfig struct {
	addr        string
	machines    int
	dbPath      string
	profile     string
	scanCost    time.Duration
	qms, pms    int
	objective   string
	monitor     time.Duration
	warm        int
	firstMatch  bool
	leaseTTL    time.Duration
	regBackend  string
	regShards   int
	poolEngine  string
	refreshMode string
	connWindow  int
	wireCodec   string
	laneWeights string
	admitRate   float64
	admitBurst  float64
	admitKeys   string
	udpAddr     string
	udpWindow   int
	udpSockets  int
	stageAddr   string
	stageWin    int
	proxyAddr   string
	proxyWin    int
	peerAddrs   string
	fanout      int
	hedgeDelay  time.Duration
	remoteWatch string
	ownDomains  string
	nodeName    string
	journalDir  string
	journalSync string
	snapEvery   time.Duration
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7464", "listen address")
	flag.IntVar(&cfg.machines, "machines", 256, "synthetic fleet size (ignored with -db)")
	flag.StringVar(&cfg.dbPath, "db", "", "load white pages from this JSON snapshot")
	flag.StringVar(&cfg.profile, "profile", "local", "network profile: local, lan or wan")
	flag.DurationVar(&cfg.scanCost, "scancost", 0, "modelled per-entry linear-search cost (e.g. 2us)")
	flag.IntVar(&cfg.qms, "query-managers", 1, "query manager replicas")
	flag.IntVar(&cfg.pms, "pool-managers", 1, "pool manager replicas")
	flag.StringVar(&cfg.objective, "objective", "least-load", "pool scheduling objective")
	flag.DurationVar(&cfg.monitor, "monitor", time.Second, "resource monitor sweep interval (0 disables)")
	flag.IntVar(&cfg.warm, "warm", 0, "pre-stripe machines across N pools and pre-create them")
	flag.BoolVar(&cfg.firstMatch, "first-match", false, "return the first composite fragment instead of reintegrating all")
	flag.DurationVar(&cfg.leaseTTL, "lease-ttl", 0, "reclaim leases not renewed within this lifetime (0 disables)")
	flag.StringVar(&cfg.regBackend, "registry-backend", registry.BackendSharded, "white-pages storage engine: sharded or locked")
	flag.IntVar(&cfg.regShards, "registry-shards", 0, "shard count for the sharded backend (0: GOMAXPROCS-scaled)")
	flag.StringVar(&cfg.poolEngine, "pool-engine", "", "pool allocation engine: indexed or oracle (default indexed; -scancost pools stay on oracle)")
	flag.StringVar(&cfg.refreshMode, "refresh-mode", "", "pool freshness mode: events (registry change stream, default) or poll (timer-driven full refresh)")
	flag.IntVar(&cfg.connWindow, "conn-window", wire.DefaultWindow, "per-connection in-flight request window (1 serializes each connection)")
	flag.StringVar(&cfg.wireCodec, "wire-codec", "auto", "wire codec preference: auto (negotiate, binary preferred), binary, json, a compressed variant like binary2+flate, or a comma list")
	flag.StringVar(&cfg.laneWeights, "lane-weights", "lease=4,bulk=1", "priority-lane round-robin weights for overloaded dispatch, e.g. lease=4,bulk=1 (control is always first); \"off\" restores plain FIFO dispatch")
	flag.Float64Var(&cfg.admitRate, "admit-rate", 0, "default per-account admission rate in requests/s; over-limit requests are shed with Busy (0 disables admission)")
	flag.Float64Var(&cfg.admitBurst, "admit-burst", 0, "default admission burst capacity in tokens (0: same as -admit-rate)")
	flag.StringVar(&cfg.admitKeys, "admit-keys", "", "per-account admission overrides as key=rate[:burst] pairs, e.g. alice=100:200,batch=10")
	flag.StringVar(&cfg.udpAddr, "udp-addr", "", "also serve the service over UDP on this address")
	flag.IntVar(&cfg.udpWindow, "udp-window", wire.DefaultWindow, "UDP in-flight dispatch window (bounds datagram fan-out)")
	flag.IntVar(&cfg.udpSockets, "udp-sockets", 0, "UDP reply socket pool size (0: GOMAXPROCS, capped at 16; 1: single shared socket)")
	flag.StringVar(&cfg.stageAddr, "stage-addr", "", "also expose the first pool manager as a stage endpoint on this address")
	flag.IntVar(&cfg.stageWin, "stage-window", wire.DefaultWindow, "stage endpoint per-connection in-flight window")
	flag.StringVar(&cfg.proxyAddr, "proxy-addr", "", "also run a pool-spawning proxy server on this address")
	flag.IntVar(&cfg.proxyWin, "proxy-window", wire.DefaultWindow, "proxy endpoint per-connection in-flight window")
	flag.StringVar(&cfg.peerAddrs, "peer-addrs", "", "comma-separated stage endpoints of federation peers; local misses delegate to them")
	flag.IntVar(&cfg.fanout, "fanout", 0, "peer delegation width: peers contacted concurrently on a local miss (<=1 keeps the serial walk)")
	flag.DurationVar(&cfg.hedgeDelay, "hedge-delay", 0, "stagger between delegation fan-out branches, e.g. 10ms (0 races the full width at once)")
	flag.StringVar(&cfg.remoteWatch, "remote-watch", "", "mirror remote actypd registries into the local white pages over the wire watch stream: comma-separated addr[=domain] entries, where =domain subscribes only that domain's slice (typically with -machines 0; falls back to polling against pre-watch peers)")
	flag.StringVar(&cfg.ownDomains, "own-domains", "", "enable domain partitioning: comma-separated static assignments, each \"domain\" (owned here) or \"domain=node\"; unlisted domains rendezvous-hash over this node and -peer-addrs peers (\"auto\" enables with no static pins)")
	flag.StringVar(&cfg.nodeName, "node-name", "", "pool-manager name prefix; federated daemons need distinct names (the delegation visited list keys on them) — defaults to pm, or pm@<addr> when -stage-addr or -peer-addrs is set")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "durability journal directory: registry events and lease transitions are logged there, replayed on boot, and compacted by snapshots (empty disables durability)")
	flag.StringVar(&cfg.journalSync, "journal-fsync", journal.FsyncInterval, "journal fsync policy: always (sync every append), interval (timer-driven, default), or off (OS writeback only)")
	flag.DurationVar(&cfg.snapEvery, "snapshot-interval", time.Minute, "journal snapshot (and compaction) period; 0 snapshots only on shutdown and watch-ring resync")
	flag.Parse()

	// A negative window was historically folded into "serial" silently,
	// which hid sign bugs in wrapper scripts; reject it outright (0 or 1
	// still mean serial dispatch, as they always did).
	if cfg.connWindow < 0 {
		log.Fatalf("actypd: -conn-window %d: want 0 or a positive window (1 serializes each connection)", cfg.connWindow)
	}
	if cfg.udpWindow < 0 {
		log.Fatalf("actypd: -udp-window %d: want 0 or a positive window (1 serializes dispatch)", cfg.udpWindow)
	}

	if err := run(cfg); err != nil {
		log.Fatalf("actypd: %v", err)
	}
}

func run(cfg daemonConfig) error {
	backend, err := registry.OpenBackend(cfg.regBackend, cfg.regShards)
	if err != nil {
		return err
	}
	db := registry.NewDBWith(backend)
	log.Printf("actypd: white pages on the %s backend", cfg.regBackend)

	profile, err := profileByName(cfg.profile)
	if err != nil {
		return err
	}
	codecs, err := wire.ParseCodecs(cfg.wireCodec)
	if err != nil {
		return err
	}
	if err := core.ValidateRefreshMode(cfg.refreshMode); err != nil {
		return err
	}
	// Manager names must be unique across a federation mesh (the visited
	// list, self/peer filters, and the domain-ownership table all key on
	// them), so a daemon that is about to federate or partition defaults
	// to a prefix carrying its own listen address.
	nodeName := cfg.nodeName
	if nodeName == "" && (cfg.stageAddr != "" || cfg.peerAddrs != "" || cfg.ownDomains != "") {
		nodeName = "pm@" + cfg.addr
	}

	// Federation peers are dialed before the registry is populated: the
	// domain-ownership table rendezvous-hashes over the peer NAMES the
	// dial handshake fetches, and population is owned-domains-only once
	// the table exists.
	var remotes []*stage.Remote
	if cfg.peerAddrs != "" {
		for _, addr := range strings.Split(cfg.peerAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			remote, err := stage.DialRemote(addr, profile, 0)
			if err != nil {
				return fmt.Errorf("-peer-addrs %s: %w", addr, err)
			}
			defer remote.Close()
			remotes = append(remotes, remote)
			log.Printf("actypd: federation peer %s at %s", remote.Name(), addr)
		}
	}
	var routes *route.Table
	if cfg.ownDomains != "" {
		spec := cfg.ownDomains
		if spec == "auto" {
			spec = "" // rendezvous-only, no static pins
		}
		// The table's node identities are pool-manager names as peers see
		// them: this node is reachable as its first (stage-served) manager,
		// "<nodeName>-0", and the dial handshake above fetched the peers'
		// manager names the same way. Every node hashing the same strings
		// is what makes the rendezvous tables agree without coordination.
		routeNode := nodeName + "-0"
		static, err := route.ParseStatic(routeNode, spec)
		if err != nil {
			return err
		}
		nodes := []string{routeNode}
		for _, r := range remotes {
			nodes = append(nodes, r.Name())
		}
		routes = route.New(routeNode)
		routes.Reload(static, nodes)
		log.Printf("actypd: domain partitioning on: %d static assignments, rendezvous over %d nodes", len(static), len(nodes))
	}

	// Durability: replay the journal BEFORE any other population path —
	// a non-empty replay is the previous incarnation's state and wins
	// over -db and the synthetic fleet.
	var (
		jnl        *journal.Journal
		jstate     *journal.State
		journStats *metrics.JournalStats
	)
	if cfg.journalDir != "" {
		journStats = metrics.NewJournalStats()
		jnl, jstate, err = journal.Open(journal.Config{
			Dir:   cfg.journalDir,
			Fsync: cfg.journalSync,
			Stats: journStats,
			Logf:  log.Printf,
		})
		if err != nil {
			return err
		}
		defer jnl.Close()
	}
	switch {
	case jstate != nil && !jstate.Empty():
		// Domain-scoped replay: a partitioned node restores only the
		// domains it owns. Foreign records in the journal (watch-replica
		// rows, or domains that migrated away) are dropped here; their
		// owners hold the authoritative copies.
		if routes != nil {
			if dropped := jstate.Filter(routes.KeepMachine); dropped > 0 {
				log.Printf("actypd: replay: dropped %d foreign-domain records", dropped)
			}
		}
		if err := jstate.RestoreDB(db); err != nil {
			return err
		}
		c := journStats.Snapshot()
		log.Printf("actypd: replayed %d machines and %d leases from %s (%d records in %s, torn=%d corrupt=%d)",
			db.Len(), len(jstate.Leases), cfg.journalDir, c.ReplayRecords, c.ReplayDuration, c.ReplayTorn, c.ReplayCorrupt)
		if cfg.dbPath != "" {
			log.Printf("actypd: -db %s ignored: the journal replay is authoritative", cfg.dbPath)
		}
	case cfg.dbPath != "" && journal.IsSnapshotFile(cfg.dbPath):
		// A journal-snapshot-format file (e.g. an actyp-fleet mirror)
		// seeds the registry directly; any lease records inside describe
		// another daemon's grants and are ignored here.
		ms, _, err := journal.ReadSnapshotFile(cfg.dbPath)
		if err != nil {
			return err
		}
		for _, m := range ms {
			if err := db.Add(m); err != nil {
				return err
			}
		}
		log.Printf("actypd: loaded %d machines from snapshot %s", db.Len(), cfg.dbPath)
	case cfg.dbPath != "":
		f, err := os.Open(cfg.dbPath)
		if err != nil {
			return err
		}
		err = db.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("actypd: loaded %d machines from %s", db.Len(), cfg.dbPath)
	default:
		if err := registry.DefaultFleetSpec(cfg.machines).Populate(db, time.Now()); err != nil {
			return err
		}
		log.Printf("actypd: generated a synthetic fleet of %d machines", db.Len())
	}

	// Owned-only storage: whatever population path ran, a partitioned
	// node keeps only the records its ownership table assigns to it (the
	// replay path already filtered; pruning again is a no-op there).
	if routes != nil {
		if pruned := pruneForeign(db, routes); pruned > 0 {
			log.Printf("actypd: pruned %d foreign-domain records; %d owned records resident", pruned, db.Len())
		}
	}

	fedStats := metrics.NewFederationStats()
	opts := core.Options{
		DB:              db,
		QueryManagers:   cfg.qms,
		PoolManagers:    cfg.pms,
		NodeName:        nodeName,
		Objective:       cfg.objective,
		ScanCost:        cfg.scanCost,
		MonitorInterval: cfg.monitor,
		LeaseTTL:        cfg.leaseTTL,
		PoolEngine:      cfg.poolEngine,
		RefreshMode:     cfg.refreshMode,
		Fanout:          cfg.fanout,
		HedgeDelay:      cfg.hedgeDelay,
		FederationStats: fedStats,
		Routes:          routes,
	}
	if cfg.firstMatch {
		opts.Mode = querymgr.FirstMatch
	}
	if jnl != nil {
		opts.LeaseLog = jnl
		opts.DelegationLog = jnl
	}
	svc, err := core.New(opts)
	if err != nil {
		return err
	}
	defer svc.Close()
	log.Printf("actypd: pool freshness in %s mode", svc.RefreshMode())

	// Crash recovery: re-adopt the replayed leases into rebuilt pools
	// before the listener opens. No probe is injected — renewals are the
	// daemon's liveness signal, so holders that never come back are
	// reaped by the TTL reaper after the grace window.
	if jstate != nil && len(jstate.Leases) > 0 {
		recovered := make([]core.RecoveredLease, 0, len(jstate.Leases))
		for _, lr := range jstate.Leases {
			recovered = append(recovered, core.RecoveredLease{Lease: lr.Lease, Expires: lr.Expires, Peer: lr.Peer, Domain: lr.Domain})
		}
		rep, err := svc.Recover(recovered, core.RecoverOptions{Logf: log.Printf})
		if err != nil {
			return err
		}
		journStats.Recovered(rep.Restored+rep.DelegatedRestored, rep.Reaped)
		log.Printf("actypd: recovery: %d leases restored across %d pools, %d reaped, %d dropped, delegated %d restored / %d dropped",
			rep.Restored, rep.PoolsAdopted, rep.Reaped, rep.Dropped, rep.DelegatedRestored, rep.DelegatedDropped)
	}

	// Federation: delegate local misses to peer pool managers over their
	// stage endpoints (dialed above, before population), and optionally
	// mirror remote registries into the local white pages through the
	// wire watch stream.
	if len(remotes) > 0 {
		for _, remote := range remotes {
			svc.Directory().AddPeer(remote)
		}
		log.Printf("actypd: peer delegation fanout %d, hedge delay %s", cfg.fanout, cfg.hedgeDelay)
	}
	for _, entry := range strings.Split(cfg.remoteWatch, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		// addr[=domain]: a bare address mirrors the peer's whole registry;
		// =domain subscribes only that domain's slice, so a cross-domain
		// replica ships exactly the records it needs over the wire.
		addr, domain, _ := strings.Cut(entry, "=")
		rcli, err := core.Dial(addr, profile)
		if err != nil {
			return fmt.Errorf("-remote-watch %s: %w", addr, err)
		}
		defer rcli.Close()
		wcfg := registry.RemoteWatchConfig{
			Transport: rcli,
			Replica:   db,
			Stats:     fedStats,
			Logf:      log.Printf,
		}
		if domain != "" {
			wcfg.Filter = route.Filter(domain)
		}
		w, err := registry.StartRemoteWatch(wcfg)
		if err != nil {
			return fmt.Errorf("-remote-watch %s: %w", addr, err)
		}
		defer w.Close()
		if domain != "" {
			log.Printf("actypd: mirroring domain %s of the registry at %s into the local white pages", domain, addr)
		} else {
			log.Printf("actypd: mirroring the registry at %s into the local white pages", addr)
		}
	}

	if cfg.warm > 0 {
		if err := svc.StripePools(cfg.warm); err != nil {
			return err
		}
		if err := svc.WarmPools(cfg.warm); err != nil {
			return err
		}
		log.Printf("actypd: pre-created %d striped pools", cfg.warm)
	}

	// Attach the journal last in the boot sequence: the synchronous
	// initial snapshot baselines everything above (population, recovery,
	// warm pools) before the first event is drained.
	if jnl != nil {
		source := func(limit, offset int) ([]*registry.Machine, int, error) {
			return svc.SelectMachines("", limit, offset)
		}
		if routes != nil {
			source = ownedSnapshotSource(svc, routes)
		}
		if err := jnl.Attach(db, source, cfg.snapEvery); err != nil {
			return err
		}
		log.Printf("actypd: journaling to %s (fsync %s, snapshots every %s)", cfg.journalDir, cfg.journalSync, cfg.snapEvery)
	}

	overload, stats, err := overloadPolicy(cfg)
	if err != nil {
		return err
	}

	if cfg.connWindow < 1 {
		cfg.connWindow = -1 // 0 means serial, as it always did (negatives are rejected in main)
	}
	// One WireStats instance spans every endpoint of the daemon, so the
	// shutdown report is the process's whole wire footprint per codec.
	wireStats := &metrics.WireStats{}
	srv, err := core.ServeOpts(svc, cfg.addr, profile, core.ServeConfig{Window: cfg.connWindow, Codecs: codecs, Overload: overload, Stats: wireStats})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Logf = log.Printf
	log.Printf("actypd: serving on %s (profile %s, conn window %d, codecs %s)",
		srv.Addr(), cfg.profile, cfg.connWindow, cfg.wireCodec)

	if cfg.udpAddr != "" {
		if cfg.udpWindow < 1 {
			cfg.udpWindow = -1 // 0 means serial, as it always did (negatives are rejected in main)
		}
		udp, err := core.ServeUDPOpts(svc, cfg.udpAddr, core.UDPOptions{Window: cfg.udpWindow, Sockets: cfg.udpSockets, Overload: overload})
		if err != nil {
			return err
		}
		defer udp.Close()
		log.Printf("actypd: UDP endpoint on %s (window %d, %d reply sockets)", udp.Addr(), cfg.udpWindow, udp.Sockets())
	}
	if cfg.stageAddr != "" {
		pms := svc.PoolManagers()
		if len(pms) == 0 {
			return fmt.Errorf("no pool manager to expose on -stage-addr")
		}
		st, err := stage.ServeOpts(pms[0], cfg.stageAddr, profile, stage.ServerOptions{Window: cfg.stageWin, Codecs: codecs, Stats: wireStats})
		if err != nil {
			return err
		}
		defer st.Close()
		log.Printf("actypd: stage endpoint on %s (window %d)", st.Addr(), cfg.stageWin)
	}
	if cfg.proxyAddr != "" {
		px, err := proxy.StartOpts(db, cfg.proxyAddr, profile, proxy.ServerOptions{Window: cfg.proxyWin, Codecs: codecs, Stats: wireStats})
		if err != nil {
			return err
		}
		defer px.Close()
		log.Printf("actypd: proxy endpoint on %s (window %d)", px.Addr(), cfg.proxyWin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("actypd: shutting down")
	// Seal the journal BEFORE the deferred svc.Close(): shutdown's own
	// pool teardown releases every claim, and journaling those releases
	// would make a clean restart forget all live leases. The final
	// snapshot inside Close preserves them instead.
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Printf("actypd: journal close: %v", err)
		}
		log.Printf("actypd: journal: %s", journStats.Snapshot())
	}
	if stats != nil {
		for class, c := range stats.Snapshot() {
			if c.Admitted+c.Shed+c.Expired == 0 {
				continue
			}
			log.Printf("actypd: overload lane %s: admitted=%d shed=%d expired=%d done=%d",
				metrics.ClassNames[class], c.Admitted, c.Shed, c.Expired, c.Done)
		}
	}
	if report := wireStats.String(); report != "" {
		log.Printf("actypd: wire traffic per codec:\n%s", report)
	}
	if cfg.peerAddrs != "" || cfg.remoteWatch != "" {
		log.Printf("actypd: federation: %s", fedStats.Snapshot())
	}
	return nil
}

// overloadPolicy builds the daemon's overload-control configuration from
// the -lane-weights and -admit-* flags. The returned policy is shared by
// the TCP and UDP endpoints, so admission buckets and lane counters span
// both; each endpoint still queues independently.
func overloadPolicy(cfg daemonConfig) (*wire.OverloadPolicy, *metrics.OverloadStats, error) {
	if cfg.laneWeights == "off" {
		if cfg.admitRate > 0 || cfg.admitKeys != "" {
			return nil, nil, fmt.Errorf("-admit-rate/-admit-keys need lane dispatch; drop \"-lane-weights off\"")
		}
		return nil, nil, nil
	}
	weights, err := schedule.ParseLaneWeights(cfg.laneWeights)
	if err != nil {
		return nil, nil, err
	}
	stats := metrics.NewOverloadStats()
	overload := &wire.OverloadPolicy{
		LeaseWeight: weights.Lease,
		BulkWeight:  weights.Bulk,
		Stats:       stats,
	}
	if cfg.admitRate > 0 {
		overrides, err := policy.ParseAdmitOverrides(cfg.admitKeys)
		if err != nil {
			return nil, nil, err
		}
		burst := cfg.admitBurst
		if burst <= 0 {
			burst = cfg.admitRate
		}
		overload.Admit = core.AdmitFrom(policy.NewAdmitter(policy.AdmitLimit{Rate: cfg.admitRate, Burst: burst}, overrides))
		log.Printf("actypd: overload control: lanes lease=%d bulk=%d, admission %.0f req/s (burst %.0f) per account",
			weights.Lease, weights.Bulk, cfg.admitRate, burst)
	} else {
		if cfg.admitKeys != "" {
			return nil, nil, fmt.Errorf("-admit-keys without -admit-rate: set a default rate (use a huge one to only limit the listed keys)")
		}
		log.Printf("actypd: overload control: lanes lease=%d bulk=%d, admission off", weights.Lease, weights.Bulk)
	}
	return overload, stats, nil
}

// pruneForeign removes every record the ownership table assigns to
// another node, making the white pages owned-domains-only regardless of
// which population path filled them. Returns the number removed.
func pruneForeign(db *registry.DB, routes *route.Table) int {
	var foreign []string
	db.Walk(func(m *registry.Machine) bool {
		if !routes.KeepMachine(m) {
			foreign = append(foreign, m.Static.Name)
		}
		return true
	})
	pruned := 0
	for _, name := range foreign {
		if err := db.Remove(name); err == nil {
			pruned++
		}
	}
	return pruned
}

// ownedSnapshotSource builds a journal snapshot source that pages only the
// records the ownership table keeps local, so snapshots (the dominant term
// in steady-state journal size) scale with the owned domains and never
// re-persist cross-domain watch replicas. Snapshot paging is monotone from
// offset 0 under the journal's snapshot mutex, so the source cuts a fresh
// filtered slice whenever a pass restarts at offset 0 and serves the rest
// of that pass from it.
func ownedSnapshotSource(svc *core.Service, routes *route.Table) journal.SnapshotSource {
	var cut journal.SnapshotSource
	return func(limit, offset int) ([]*registry.Machine, int, error) {
		if offset == 0 || cut == nil {
			var owned []*registry.Machine
			for off := 0; ; {
				page, total, err := svc.SelectMachines("", limit, off)
				if err != nil {
					return nil, 0, err
				}
				for _, m := range page {
					if routes.KeepMachine(m) {
						owned = append(owned, m)
					}
				}
				off += len(page)
				if len(page) == 0 || off >= total {
					break
				}
			}
			cut = journal.SliceSource(owned)
		}
		return cut(limit, offset)
	}
}

func profileByName(name string) (netsim.Profile, error) {
	switch name {
	case "local", "":
		return netsim.Local(), nil
	case "lan":
		return netsim.LAN(), nil
	case "wan":
		return netsim.WAN(), nil
	}
	return netsim.Profile{}, fmt.Errorf("unknown profile %q (want local, lan or wan)", name)
}
