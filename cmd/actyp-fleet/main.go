// Command actyp-fleet manages white-pages snapshots: it generates
// synthetic fleets, prints database statistics, and edits administrator
// parameters (field 20) — the operations a PUNCH site administrator
// performs on the resource database.
//
// Usage:
//
//	actyp-fleet gen -n 3200 -out fleet.json [-homogeneous]
//	actyp-fleet stats -db fleet.json
//	actyp-fleet set -db fleet.json -machine m0001 -key owner -value ece -out fleet.json
//	actyp-fleet mirror -addr host:7464 -out fleet.snap [-watch] [-filter expr] [-domains d1,d2]
//
// Mirrors are saved in the durability journal's snapshot encoding by
// default, so a mirror file doubles as a recovery seed (actypd -db
// accepts it directly); -format json keeps the legacy JSON shape. Every
// subcommand that reads a database sniffs the format, so both work
// everywhere a -db flag is taken.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"actyp/internal/core"
	"actyp/internal/journal"
	"actyp/internal/netsim"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/route"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	case "set":
		err = setCmd(os.Args[2:])
	case "mirror":
		err = mirrorCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("actyp-fleet: %v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  actyp-fleet gen   -n N -out file [-homogeneous] [-seed S]
  actyp-fleet stats -db file
  actyp-fleet set   -db file -machine name -key k -value v [-out file]
  actyp-fleet mirror -addr host:port -out file [-format snapshot|json] [-watch] [-filter expr] [-domains d1,d2] [-profile p]
`)
	os.Exit(2)
}

// mirrorCmd snapshots a live actypd registry over the wire. Without
// -watch it performs one snapshot fetch (the poll floor every peer
// supports); with -watch it subscribes to the change stream, waits for
// the replica to baseline, and reports which freshness mode the peer
// actually granted (pre-watch peers degrade to poll automatically).
func mirrorCmd(args []string) error {
	fs := flag.NewFlagSet("mirror", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7464", "actypd wire endpoint to mirror")
	out := fs.String("out", "fleet.snap", "output file")
	format := fs.String("format", "snapshot", "output encoding: snapshot (journal snapshot format, a valid recovery seed) or json (legacy)")
	filter := fs.String("filter", "", "server-side basic-query filter, e.g. \"punch.rsrc.arch = sun\"")
	domains := fs.String("domains", "", "mirror only these comma-separated domains (a domain-scoped watch filter; mutually exclusive with -filter)")
	watch := fs.Bool("watch", false, "baseline through the watch stream instead of a single snapshot fetch")
	profile := fs.String("profile", "local", "network profile: local, lan or wan")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline for the mirror")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "snapshot" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want snapshot or json)", *format)
	}
	if *domains != "" {
		// A domain mirror rides the domain-scoped watch filter: the server
		// ships only the named domains' slice instead of the whole fleet.
		if *filter != "" {
			return fmt.Errorf("-domains and -filter are mutually exclusive")
		}
		*filter = route.FilterAny(strings.Split(*domains, ","))
	}
	prof, err := profileByName(*profile)
	if err != nil {
		return err
	}
	c, err := core.Dial(*addr, prof)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	db := registry.NewDB()
	mode := "fetch"
	if *watch {
		w, err := registry.StartRemoteWatch(registry.RemoteWatchConfig{
			Transport: c, Replica: db, Filter: *filter,
		})
		if err != nil {
			return err
		}
		defer w.Close()
		if err := w.WaitSynced(ctx); err != nil {
			return err
		}
		mode = string(w.Mode())
	} else {
		ms, err := c.FetchSnapshot(ctx, *filter)
		if err != nil {
			return err
		}
		for _, m := range ms {
			if err := db.Add(m); err != nil {
				return err
			}
		}
	}
	if err := saveDB(db, *out, *format == "snapshot"); err != nil {
		return err
	}
	fmt.Printf("mirrored %d machines from %s to %s (%s mode, %s format)\n", db.Len(), *addr, *out, mode, *format)
	return nil
}

// saveDB writes a database either in the journal snapshot encoding
// (pageable, recovery-seed compatible) or as legacy JSON.
func saveDB(db *registry.DB, path string, asSnapshot bool) error {
	if asSnapshot {
		var ms []*registry.Machine
		db.Walk(func(m *registry.Machine) bool {
			ms = append(ms, m)
			return true
		})
		_, err := journal.WriteSnapshotFile(path, journal.SliceSource(ms), nil)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}

func profileByName(name string) (netsim.Profile, error) {
	switch name {
	case "local", "":
		return netsim.Local(), nil
	case "lan":
		return netsim.LAN(), nil
	case "wan":
		return netsim.WAN(), nil
	}
	return netsim.Profile{}, fmt.Errorf("unknown profile %q (want local, lan or wan)", name)
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 256, "fleet size")
	out := fs.String("out", "fleet.json", "output snapshot")
	homogeneous := fs.Bool("homogeneous", false, "all-sun single-domain fleet (the hot-spot setup)")
	seed := fs.Int64("seed", 1, "generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := registry.DefaultFleetSpec(*n)
	if *homogeneous {
		spec = registry.HomogeneousFleetSpec(*n)
	}
	spec.Seed = *seed
	db := registry.NewDB()
	if err := spec.Populate(db, time.Now()); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d machines to %s\n", db.Len(), *out)
	return nil
}

// loadDB reads either encoding, reporting which one it found so writers
// can preserve it.
func loadDB(path string) (db *registry.DB, isSnapshot bool, err error) {
	db = registry.NewDB()
	if journal.IsSnapshotFile(path) {
		ms, _, err := journal.ReadSnapshotFile(path)
		if err != nil {
			return nil, false, err
		}
		for _, m := range ms {
			if err := db.Add(m); err != nil {
				return nil, false, err
			}
		}
		return db, true, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	if err := db.Load(f); err != nil {
		return nil, false, err
	}
	return db, false, nil
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("db", "fleet.json", "snapshot to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, _, err := loadDB(*path)
	if err != nil {
		return err
	}

	states := map[string]int{}
	archs := map[string]int{}
	domains := map[string]int{}
	taken := 0
	var totalMem, totalSpeed float64
	cpus := 0
	db.Walk(func(m *registry.Machine) bool {
		states[m.State.String()]++
		archs[m.Policy.Params["arch"].Str]++
		domains[m.Policy.Params["domain"].Str]++
		if m.TakenBy != "" {
			taken++
		}
		totalMem += m.Policy.Params["memory"].Num
		totalSpeed += m.Static.Speed
		cpus += m.Static.CPUs
		return true
	})
	n := db.Len()
	fmt.Printf("machines: %d (%d CPUs, %d held by pools)\n", n, cpus, taken)
	fmt.Printf("states:   %v\n", states)
	fmt.Printf("archs:    %s\n", fmtCounts(archs))
	fmt.Printf("domains:  %s\n", fmtCounts(domains))
	if n > 0 {
		fmt.Printf("averages: %.0f MB memory, %.0f speed units\n", totalMem/float64(n), totalSpeed/float64(n))
	}
	return nil
}

func setCmd(args []string) error {
	fs := flag.NewFlagSet("set", flag.ExitOnError)
	path := fs.String("db", "fleet.json", "snapshot to edit")
	machine := fs.String("machine", "", "machine name")
	key := fs.String("key", "", "admin parameter name (field 20)")
	value := fs.String("value", "", "parameter value")
	out := fs.String("out", "", "output snapshot (default: overwrite input)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *machine == "" || *key == "" || *value == "" {
		return fmt.Errorf("set needs -machine, -key and -value")
	}
	db, isSnap, err := loadDB(*path)
	if err != nil {
		return err
	}
	if err := db.SetParam(*machine, *key, query.StrAttr(*value)); err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = *path
	}
	if err := saveDB(db, dst, isSnap); err != nil {
		return err
	}
	fmt.Printf("set %s.%s = %s (snapshot %s)\n", *machine, *key, *value, dst)
	return nil
}

func fmtCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%d", k, m[k])
	}
	return s
}
