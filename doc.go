// Package actyp is a from-scratch Go reproduction of "Active Yellow
// Pages: A Pipelined Resource Management Architecture for Wide-Area
// Network Computing" (Royo, Kapadia, Fortes, Díaz de Cerio; HPDC 2001):
// the PUNCH resource-management pipeline in which query managers decompose
// and route queries, pool managers map them to dynamically-created
// resource pools, and pools answer with machine leases.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the daemon, client, and figure-regeneration
// binaries; examples/ holds runnable walk-throughs; bench_test.go at this
// level carries one benchmark per evaluation figure of the paper.
package actyp
