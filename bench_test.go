package actyp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actyp/internal/baseline"
	"actyp/internal/core"
	"actyp/internal/experiments"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/schedule"
	"actyp/internal/workload"
)

// One benchmark per evaluation figure of the paper (Figures 4-9), plus the
// centralized-scheduler comparison implied by Section 8 and the ablations
// listed in DESIGN.md. Absolute numbers reflect this host, not the paper's
// 2001 testbed; the relationships between configurations are the result.

const benchScanCost = 2 * time.Microsecond

func benchService(b *testing.B, machines int, scanCost time.Duration) *core.Service {
	b.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(machines).Populate(db, time.Now()); err != nil {
		b.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db, ScanCost: scanCost})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

// requestRelease is the closed-loop client body shared by the benches.
func requestRelease(b *testing.B, svc *core.Service, text string) {
	b.Helper()
	g, err := svc.Request(text)
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Release(g); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig4Pools regenerates the Figure 4 relationship: striping 3,200
// machines across more pools lowers per-query response time under
// concurrent load.
func BenchmarkFig4Pools(b *testing.B) {
	for _, pools := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("pools=%d", pools), func(b *testing.B) {
			svc := benchService(b, 3200, benchScanCost)
			if err := svc.StripePools(pools); err != nil {
				b.Fatal(err)
			}
			if err := svc.WarmPools(pools); err != nil {
				b.Fatal(err)
			}
			var next uint64
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := atomic.AddUint64(&next, 1) % uint64(pools)
					requestRelease(b, svc, fmt.Sprintf("punch.rsrc.pool = %d", k))
				}
			})
		})
	}
}

// BenchmarkFig5WAN regenerates the Figure 5 relationship over real TCP
// with injected wide-area latency: more pools still help, but the network
// round trip sets the response-time floor. (Latency is scaled down from
// the paper's transatlantic link to keep bench runs short.)
func BenchmarkFig5WAN(b *testing.B) {
	profile := netsim.Profile{Latency: 2 * time.Millisecond, Seed: 1}
	for _, pools := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pools=%d", pools), func(b *testing.B) {
			svc := benchService(b, 3200, benchScanCost)
			if err := svc.StripePools(pools); err != nil {
				b.Fatal(err)
			}
			if err := svc.WarmPools(pools); err != nil {
				b.Fatal(err)
			}
			srv, err := core.Serve(svc, "127.0.0.1:0", profile)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(srv.Close)
			client, err := core.Dial(srv.Addr(), profile)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { client.Close() })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := client.Request(fmt.Sprintf("punch.rsrc.pool = %d", i%pools))
				if err != nil {
					b.Fatal(err)
				}
				if err := client.Release(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6PoolSize regenerates the Figure 6 relationship: with a
// single pool, per-query cost grows with pool size because every query
// pays the full linear search.
func BenchmarkFig6PoolSize(b *testing.B) {
	for _, size := range []int{800, 1600, 3200} {
		b.Run(fmt.Sprintf("machines=%d", size), func(b *testing.B) {
			svc := benchService(b, size, benchScanCost)
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				requestRelease(b, svc, "punch.rsrc.arch = sun")
			}
		})
	}
}

// BenchmarkFig7Split regenerates the Figure 7 relationship: splitting the
// hot 3,200-machine pool into 2x1,600 or 4x800 shortens each search and
// lets searches proceed concurrently.
func BenchmarkFig7Split(b *testing.B) {
	for _, split := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("split=%d", split), func(b *testing.B) {
			svc := benchService(b, 3200, benchScanCost)
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				b.Fatal(err)
			}
			if split > 1 {
				if err := svc.SplitPool("punch.rsrc.arch = sun", split); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					requestRelease(b, svc, "punch.rsrc.arch = sun")
				}
			})
		})
	}
}

// BenchmarkFig8Replicas regenerates the Figure 8 relationship: replicating
// the hot pool multiplies its scheduling processes; the instance bias
// keeps replicas out of each other's way.
func BenchmarkFig8Replicas(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("processes=%d", replicas), func(b *testing.B) {
			svc := benchService(b, 3200, benchScanCost)
			if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
				b.Fatal(err)
			}
			if replicas > 1 {
				if err := svc.ReplicatePool("punch.rsrc.arch = sun", replicas); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					requestRelease(b, svc, "punch.rsrc.arch = sun")
				}
			})
		})
	}
}

// BenchmarkFig9Workload regenerates the Figure 9 input: drawing CPU times
// from the fitted PUNCH mixture distribution.
func BenchmarkFig9Workload(b *testing.B) {
	model := workload.NewCPUTimeModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Sample()
	}
}

// BenchmarkBaselineCentralized measures the Section 8 comparison point: a
// PBS-style centralized scheduler scanning the whole database under one
// lock.
func BenchmarkBaselineCentralized(b *testing.B) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(3200).Populate(db, time.Now()); err != nil {
		b.Fatal(err)
	}
	sched, err := baseline.New(db, nil, benchScanCost)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p, err := sched.Submit(q, 10)
			if err != nil {
				b.Fatal(err)
			}
			if err := sched.Complete(p.JobID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelinedActYP is the pipelined counterpart of the centralized
// baseline above: same fleet, same modelled scan cost, but machines are
// pre-aggregated into 16 pools.
func BenchmarkPipelinedActYP(b *testing.B) {
	svc := benchService(b, 3200, benchScanCost)
	if err := svc.StripePools(16); err != nil {
		b.Fatal(err)
	}
	if err := svc.WarmPools(16); err != nil {
		b.Fatal(err)
	}
	var next uint64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := atomic.AddUint64(&next, 1) % 16
			requestRelease(b, svc, fmt.Sprintf("punch.rsrc.pool = %d", k))
		}
	})
}

// BenchmarkAblationFirstMatch compares the two composite-query QoS modes
// of Section 6 on a four-way composite.
func BenchmarkAblationFirstMatch(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode querymgr.QoS
	}{{"wait-all", querymgr.WaitAll}, {"first-match", querymgr.FirstMatch}} {
		b.Run(mode.name, func(b *testing.B) {
			db := registry.NewDB()
			if err := registry.DefaultFleetSpec(256).Populate(db, time.Now()); err != nil {
				b.Fatal(err)
			}
			svc, err := core.New(core.Options{DB: db, ScanCost: benchScanCost, Mode: mode.mode})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(svc.Close)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				requestRelease(b, svc, "punch.rsrc.arch = sun | hp | alpha | x86")
			}
		})
	}
}

// BenchmarkAblationSelect compares random and round-robin pool-manager
// selection in the query-manager stage.
func BenchmarkAblationSelect(b *testing.B) {
	q := query.New().Set("punch.rsrc.arch", query.Eq("sun"))
	mkManagers := func(svc *core.Service) []querymgr.ResourceManager {
		pms := svc.PoolManagers()
		out := make([]querymgr.ResourceManager, len(pms))
		for i, pm := range pms {
			out[i] = pm
		}
		return out
	}
	for _, sel := range []struct {
		name string
		mk   func() querymgr.Selector
	}{
		{"random", func() querymgr.Selector { return querymgr.NewRandomSelector(1) }},
		{"round-robin", func() querymgr.Selector { return &querymgr.RoundRobinSelector{} }},
	} {
		b.Run(sel.name, func(b *testing.B) {
			db := registry.NewDB()
			if err := registry.HomogeneousFleetSpec(8).Populate(db, time.Now()); err != nil {
				b.Fatal(err)
			}
			svc, err := core.New(core.Options{DB: db, PoolManagers: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(svc.Close)
			managers := mkManagers(svc)
			s := sel.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.Select(q, managers) == nil {
					b.Fatal("selector returned nil")
				}
			}
		})
	}
}

// BenchmarkAblationLinearVsPresorted compares the paper's per-query linear
// search against a presorted pick for pool-internal scheduling.
func BenchmarkAblationLinearVsPresorted(b *testing.B) {
	cands := make([]*schedule.Candidate, 3200)
	for i := range cands {
		cands[i] = &schedule.Candidate{
			Name: fmt.Sprintf("m%04d", i), Load: float64(i%17) / 10, Speed: float64(200 + i%400),
		}
	}
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if schedule.SelectLinear(cands, schedule.LeastLoad{}, nil) < 0 {
				b.Fatal("no candidate")
			}
		}
	})
	b.Run("presorted", func(b *testing.B) {
		cp := make([]*schedule.Candidate, len(cands))
		copy(cp, cands)
		schedule.Sort(cp, schedule.LeastLoad{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			found := false
			for _, c := range cp {
				if !c.Busy {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("no candidate")
			}
		}
	})
}

// BenchmarkAblationStaticPools compares first-touch (dynamic) pool
// creation against querying a pre-created pool.
func BenchmarkAblationStaticPools(b *testing.B) {
	b.Run("dynamic-first-touch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			svc := benchService(b, 400, 0)
			b.StartTimer()
			requestRelease(b, svc, "punch.rsrc.arch = sun")
			b.StopTimer()
			svc.Close()
			b.StartTimer()
		}
	})
	b.Run("static-warm", func(b *testing.B) {
		svc := benchService(b, 400, 0)
		if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			requestRelease(b, svc, "punch.rsrc.arch = sun")
		}
	})
}

// Registry scale benchmarks: the white-pages hot path (Select and the
// Section 5.2.3 Take protocol) at 1k/10k/100k machines, serial and
// parallel, on both storage engines. The locked backend is the paper-era
// reference; the sharded backend must beat it by widening margins as the
// fleet grows (ROADMAP: "fast as the hardware allows").

var registryBenchSizes = []int{1000, 10000, 100000}

const registryBenchStripes = 64

// registryBenchFleet builds a heterogeneous fleet on the requested backend
// and stripes the "pool" parameter the way Figures 4/5 do, so striped
// queries have 1/64 selectivity while broad ones (arch = sun) have 1/4.
func registryBenchFleet(b *testing.B, kind string, n int) *registry.DB {
	b.Helper()
	backend, err := registry.OpenBackend(kind, 0)
	if err != nil {
		b.Fatal(err)
	}
	db := registry.NewDBWith(backend)
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Now()); err != nil {
		b.Fatal(err)
	}
	if err := experiments.StripePoolParam(db, registryBenchStripes); err != nil {
		b.Fatal(err)
	}
	return db
}

func registryBenchQuery(b *testing.B, text string) *query.Query {
	b.Helper()
	q, err := query.ParseBasic(text)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// registryStripeQueries pre-parses one query per stripe so the timed loops
// measure the engine, not the parser.
func registryStripeQueries(b *testing.B) []*query.Query {
	b.Helper()
	qs := make([]*query.Query, registryBenchStripes)
	for k := range qs {
		qs[k] = registryBenchQuery(b, fmt.Sprintf("punch.rsrc.pool = %d", k))
	}
	return qs
}

func BenchmarkRegistrySelect(b *testing.B) {
	for _, kind := range []string{registry.BackendLocked, registry.BackendSharded} {
		for _, n := range registryBenchSizes {
			b.Run(fmt.Sprintf("backend=%s/machines=%d/striped/serial", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				qs := registryStripeQueries(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := db.Select(qs[i%registryBenchStripes]); len(got) == 0 {
						b.Fatal("empty selection")
					}
				}
			})
			b.Run(fmt.Sprintf("backend=%s/machines=%d/striped/parallel", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				qs := registryStripeQueries(b)
				var next uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						k := atomic.AddUint64(&next, 1) % registryBenchStripes
						if got := db.Select(qs[k]); len(got) == 0 {
							b.Fatal("empty selection")
						}
					}
				})
			})
			b.Run(fmt.Sprintf("backend=%s/machines=%d/broad/serial", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				q := registryBenchQuery(b, "punch.rsrc.arch = sun")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := db.Select(q); len(got) == 0 {
						b.Fatal("empty selection")
					}
				}
			})
		}
	}
}

func BenchmarkRegistryTake(b *testing.B) {
	q := "punch.rsrc.arch = sun\npunch.rsrc.domain = purdue"
	for _, kind := range []string{registry.BackendLocked, registry.BackendSharded} {
		for _, n := range registryBenchSizes {
			b.Run(fmt.Sprintf("backend=%s/machines=%d/serial", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				query := registryBenchQuery(b, q)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got := db.Take(query, "bench-pool", 8)
					if len(got) == 0 {
						b.Fatal("took nothing")
					}
					names := make([]string, len(got))
					for j, m := range got {
						names[j] = m.Static.Name
					}
					if rel := db.Release("bench-pool", names...); rel != len(names) {
						b.Fatalf("released %d of %d", rel, len(names))
					}
				}
			})
			b.Run(fmt.Sprintf("backend=%s/machines=%d/parallel", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				query := registryBenchQuery(b, q)
				var instances uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					inst := fmt.Sprintf("bench-pool-%d", atomic.AddUint64(&instances, 1))
					for pb.Next() {
						// With enough goroutines every matching machine can
						// momentarily be held at once; an empty take is legal.
						got := db.Take(query, inst, 8)
						if len(got) == 0 {
							continue
						}
						names := make([]string, len(got))
						for j, m := range got {
							names[j] = m.Static.Name
						}
						if rel := db.Release(inst, names...); rel != len(names) {
							b.Fatalf("released %d of %d", rel, len(names))
						}
					}
				})
			})
		}
	}
}

// BenchmarkRegistrySelectTake is the acceptance benchmark of the sharded
// rebuild: the mixed pool-manager hot path (discover candidates with a
// striped Select, then claim a bounded batch with Take and hand it back)
// under parallel load.
func BenchmarkRegistrySelectTake(b *testing.B) {
	for _, kind := range []string{registry.BackendLocked, registry.BackendSharded} {
		for _, n := range registryBenchSizes {
			b.Run(fmt.Sprintf("backend=%s/machines=%d/parallel", kind, n), func(b *testing.B) {
				db := registryBenchFleet(b, kind, n)
				qs := registryStripeQueries(b)
				var next uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					id := atomic.AddUint64(&next, 1)
					inst := fmt.Sprintf("bench-pool-%d", id)
					for pb.Next() {
						k := atomic.AddUint64(&next, 1) % registryBenchStripes
						q := qs[k]
						if got := db.Select(q); len(got) == 0 {
							b.Fatal("empty selection")
						}
						// Under contention another instance may momentarily
						// hold a whole stripe, so an empty take is legal.
						got := db.Take(q, inst, 8)
						if len(got) == 0 {
							continue
						}
						names := make([]string, len(got))
						for j, m := range got {
							names[j] = m.Static.Name
						}
						if rel := db.Release(inst, names...); rel != len(names) {
							b.Fatalf("released %d of %d", rel, len(names))
						}
					}
				})
			})
		}
	}
}

// Pipeline scale benchmarks: the end-to-end Ask -> Allocate -> Release
// hot path (query manager -> pool manager -> resource pool -> shadow
// account) at 1k/10k/100k machines, serial and parallel, per pool
// allocation engine. One pool aggregates the whole fleet — the Figure 6
// worst case for the oracle's linear search — so these measure the
// allocator the way BenchmarkRegistry* measures the white pages. The
// oracle engine is the paper-era reference; the indexed engine must beat
// it by widening margins as the fleet grows.

// benchPipelineService builds a warmed single-pool service over a
// homogeneous fleet on the given pool engine.
func benchPipelineService(b *testing.B, machines int, engine string) *core.Service {
	b.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(machines).Populate(db, time.Now()); err != nil {
		b.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db, PoolEngine: engine})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		svc.Close()
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

func BenchmarkPipelineAskAllocateRelease(b *testing.B) {
	for _, engine := range []string{pool.EngineOracle, pool.EngineIndexed} {
		for _, n := range registryBenchSizes {
			b.Run(fmt.Sprintf("engine=%s/machines=%d/serial", engine, n), func(b *testing.B) {
				svc := benchPipelineService(b, n, engine)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					requestRelease(b, svc, "punch.rsrc.arch = sun")
				}
			})
			b.Run(fmt.Sprintf("engine=%s/machines=%d/parallel", engine, n), func(b *testing.B) {
				svc := benchPipelineService(b, n, engine)
				// At least 8 closed-loop clients contending on the one
				// pool, regardless of GOMAXPROCS.
				b.SetParallelism(max(1, (8+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						requestRelease(b, svc, "punch.rsrc.arch = sun")
					}
				})
			})
		}
	}
}

// BenchmarkPipelineContention isolates the 8-way acceptance point: the
// whole fleet in one pool, eight goroutines in a closed Ask -> Allocate ->
// Release loop.
func BenchmarkPipelineContention(b *testing.B) {
	for _, engine := range []string{pool.EngineOracle, pool.EngineIndexed} {
		b.Run(fmt.Sprintf("engine=%s/machines=10000/clients=8", engine), func(b *testing.B) {
			svc := benchPipelineService(b, 10000, engine)
			var wg sync.WaitGroup
			errCh := make(chan error, 8)
			each := b.N/8 + 1
			b.ResetTimer()
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < each; i++ {
						g, err := svc.Request("punch.rsrc.arch = sun")
						if err == nil {
							err = svc.Release(g)
						}
						if err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errCh:
				b.Fatal(err)
			default:
			}
		})
	}
}

// Microbenchmarks for the hot paths of the pipeline itself.

func BenchmarkQueryParse(b *testing.B) {
	text := `punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.license = tsuprem4
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolNameMapping(b *testing.B) {
	q, err := query.ParseBasic("punch.rsrc.arch = sun\npunch.rsrc.memory = >=10\npunch.rsrc.license = tsuprem4\npunch.rsrc.domain = purdue")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if query.Name(q).Signature == "" {
			b.Fatal("empty signature")
		}
	}
}

func BenchmarkPoolAllocateRelease(b *testing.B) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(3200).Populate(db, time.Now()); err != nil {
		b.Fatal(err)
	}
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		b.Fatal(err)
	}
	p, err := pool.New(pool.Config{Name: query.Name(q), DB: db, Exclusive: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := p.Allocate(q)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Release(lease.ID); err != nil {
			b.Fatal(err)
		}
	}
}
