// Systemofsystems: the delegation model of Section 6 — "the pipeline can
// resolve a query down to, say, the level of a local resource management
// system, and then simply allow the local system to take over." Here a
// PBS-style centralized cluster scheduler (the baseline package) is
// wrapped in an adapter and registered in the directory service as one
// more resource pool; queries for the cluster's management system resolve
// through ActYP but are placed by the local scheduler and its submit
// queues.
//
// Run with:
//
//	go run ./examples/systemofsystems
package main

import (
	"fmt"
	"log"
	"time"

	"actyp/internal/baseline"
	"actyp/internal/directory"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/registry"
)

func main() {
	// The local cluster: 48 machines managed by a centralized PBS-style
	// scheduler with short/medium/long submit queues.
	clusterDB := registry.NewDB()
	cluster := registry.FleetSpec{
		N: 48, Archs: []string{"x86"}, Domains: []string{"cluster"},
		Owners: []string{"hpc"}, Tools: []string{"matlab"}, Seed: 3,
	}
	if err := cluster.Populate(clusterDB, time.Now()); err != nil {
		log.Fatal(err)
	}
	sched, err := baseline.New(clusterDB, baseline.DefaultQueues(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local cluster scheduler up with queues %v\n", sched.QueueNames())

	// ActYP side: a pool manager whose directory lists the cluster as a
	// pre-registered "pool" whose machines are managed elsewhere. The
	// pool name is derived from the query criteria that should route to
	// it: cms == pbs.
	dir := directory.New()
	pm, err := poolmgr.New(poolmgr.Config{Name: "pm", Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	adapter, err := baseline.NewAdapter("pbs-cluster#0", sched)
	if err != nil {
		log.Fatal(err)
	}
	routeQuery := mustParse("punch.rsrc.cms = pbs")
	if err := dir.Register(directory.PoolRef{
		Name:     query.Name(routeQuery),
		Instance: adapter.ID,
		Local:    adapter,
	}); err != nil {
		log.Fatal(err)
	}

	// Jobs of very different sizes resolve through the same pipeline; the
	// local scheduler routes them to its own queues.
	for _, job := range []struct {
		name string
		cpu  float64
	}{
		{"interactive run", 5},
		{"overnight batch", 30000},
		{"course assignment", 90},
	} {
		q := mustParse("punch.rsrc.cms = pbs").
			Set("punch.appl.expectedcpuuse", query.EqNum(job.cpu))
		lease, err := pm.Resolve(q)
		if err != nil {
			log.Fatal(err)
		}
		queueName, err := sched.Route(job.cpu)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s -> machine %s via queue %-6s (lease %s)\n",
			job.name, lease.Machine, queueName, lease.ID)
		if err := pm.Release(lease); err != nil {
			log.Fatal(err)
		}
	}

	if sched.Active() != 0 {
		log.Fatalf("scheduler still has %d active jobs", sched.Active())
	}
	fmt.Println("all jobs completed through the system-of-systems path")
}

func mustParse(text string) *query.Query {
	q, err := query.ParseBasic(text)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
