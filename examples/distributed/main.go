// Distributed: every pipeline stage in its own "process" connected over
// TCP — the deployment Section 6 describes ("All stages in the resource
// management pipeline can be independently distributed and replicated
// across machines. Queries propagate from one stage to the next via TCP
// or UDP."). A local query manager routes fragments to two remote
// pool-manager stages; one of them spawns its pools through a proxy
// server on a third "machine"; and redundant forwarding (the higher QoS
// level of Section 6) masks the slower stage.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"actyp/internal/directory"
	"actyp/internal/netsim"
	"actyp/internal/poolmgr"
	"actyp/internal/proxy"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/stage"
)

func main() {
	lan := netsim.LAN()

	// "Machine" A: a pool manager over its own fleet, serving the
	// pool-manager stage protocol on TCP.
	dbA := registry.NewDB()
	fleetA := registry.FleetSpec{N: 24, Archs: []string{"sun", "hp"}, Domains: []string{"purdue"}, Seed: 1}
	if err := fleetA.Populate(dbA, time.Now()); err != nil {
		log.Fatal(err)
	}
	facA := &poolmgr.LocalFactory{DB: dbA}
	defer facA.CloseAll()
	pmA, err := poolmgr.New(poolmgr.Config{Name: "pm-a", Dir: directory.New(), Factory: facA})
	if err != nil {
		log.Fatal(err)
	}
	srvA, err := stage.Serve(pmA, "127.0.0.1:0", lan)
	if err != nil {
		log.Fatal(err)
	}
	defer srvA.Close()

	// "Machine" B: a pool manager whose pools are spawned on "machine"
	// C through a proxy server (Section 5.2.3's remote creation).
	dbC := registry.NewDB()
	fleetC := registry.FleetSpec{N: 24, Archs: []string{"sun", "alpha"}, Domains: []string{"upc"}, Seed: 2}
	if err := fleetC.Populate(dbC, time.Now()); err != nil {
		log.Fatal(err)
	}
	proxyC, err := proxy.Start(dbC, "127.0.0.1:0", lan)
	if err != nil {
		log.Fatal(err)
	}
	defer proxyC.Close()
	facB := &proxy.RemoteFactory{Proxies: []string{proxyC.Addr()}, Profile: lan}
	defer facB.CloseAll()
	pmB, err := poolmgr.New(poolmgr.Config{Name: "pm-b", Dir: directory.New(), Factory: facB})
	if err != nil {
		log.Fatal(err)
	}
	srvB, err := stage.Serve(pmB, "127.0.0.1:0", lan)
	if err != nil {
		log.Fatal(err)
	}
	defer srvB.Close()

	// The query-manager stage dials both remote pool managers.
	remoteA, err := stage.DialRemote(srvA.Addr(), lan, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer remoteA.Close()
	remoteB, err := stage.DialRemote(srvB.Addr(), lan, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer remoteB.Close()
	fmt.Printf("query manager connected to remote stages %s (%s) and %s (%s)\n",
		remoteA.Name(), srvA.Addr(), remoteB.Name(), srvB.Addr())

	qm, err := querymgr.New(querymgr.Config{
		Name:       "qm-front",
		Managers:   []querymgr.ResourceManager{remoteA, remoteB},
		Redundancy: 2, // Section 6: forward to multiple pool managers, use the best response
	})
	if err != nil {
		log.Fatal(err)
	}

	// A composite query: fragments fan out over TCP to both stages, each
	// fragment redundantly; pm-b's pools materialize on machine C via
	// the proxy.
	resp, err := qm.SubmitText("", "punch.rsrc.arch = sun | alpha")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite resolved: %d fragments, %d grants raced, winner %s from pool %s\n",
		resp.Fragments, resp.Succeeded, resp.Lease.Machine, resp.Lease.Pool)
	fmt.Printf("pools spawned on machine C by the proxy: %v\n", proxyC.Pools())

	if err := qm.Release(resp.Lease); err != nil {
		log.Fatal(err)
	}
	fmt.Println("winner lease released; duplicates were auto-released by reintegration")
}
