// Classburst: the academic workload that motivates ActYP's dynamic
// aggregation (Section 6). A class of students hammers one tool in a
// burst; the first query creates the tool's pool, and every subsequent
// query is answered from the same pool — the temporal locality the active
// yellow pages exploit. A background stream of mixed jobs runs alongside.
//
// Run with:
//
//	go run ./examples/classburst
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"actyp/internal/appmgr"
	"actyp/internal/core"
	"actyp/internal/desktop"
	"actyp/internal/metrics"
	"actyp/internal/perfmodel"
	"actyp/internal/registry"
	"actyp/internal/vfs"
	"actyp/internal/workload"
)

func main() {
	// Grid: 128 machines, ActYP service, PUNCH application management
	// and a network desktop front end.
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(128).Populate(db, time.Now()); err != nil {
		log.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	perf := perfmodel.NewService(0.2)
	for _, m := range perfmodel.PunchModels() {
		if err := perf.Register(m); err != nil {
			log.Fatal(err)
		}
	}
	app := appmgr.New(perf)
	if err := appmgr.PunchKnowledgeBase(app); err != nil {
		log.Fatal(err)
	}
	desk, err := desktop.New(desktop.Config{App: app, ActYP: svc, VFS: vfs.NewManager()})
	if err != nil {
		log.Fatal(err)
	}

	// Provision the class: 40 students plus a handful of researchers.
	for i := 0; i < 40; i++ {
		if err := desk.AddUser(desktop.User{
			Login: fmt.Sprintf("student%03d", i), Group: "ece",
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := desk.AddUser(desktop.User{
			Login: fmt.Sprintf("user%03d", i), Group: "public",
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The ECE 606 homework burst: every student runs spice three times.
	gen, err := workload.NewGenerator(7, []string{"spice", "matlab"})
	if err != nil {
		log.Fatal(err)
	}
	burst := gen.Burst(workload.BurstSpec{
		Tool: "spice", Students: 40, Runs: 3, Think: time.Millisecond, Group: "ece",
	})

	rec := metrics.NewRecorder()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16) // students at 16 lab workstations
	start := time.Now()
	for _, job := range burst {
		wg.Add(1)
		go func(j workload.Job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			if _, err := desk.RunTool(j.User, j.Tool, []string{"-n", "40"}); err != nil {
				log.Printf("run failed: %v", err)
				return
			}
			rec.Record(time.Since(t0))
		}(job)
	}
	wg.Wait()

	runs, denied := desk.Stats()
	fmt.Printf("burst of %d runs finished in %v (%d completed, %d denied)\n",
		len(burst), time.Since(start).Round(time.Millisecond), runs, denied)
	fmt.Printf("per-run turnaround: %s\n", rec.Summary())

	// The locality payoff: one spice pool (per architecture alternative)
	// served the whole class.
	fmt.Println("pools created during the burst:")
	for inst, size := range svc.PoolSizes() {
		fmt.Printf("  %-60s %4d machines\n", inst, size)
	}
	submitted, fragments, _ := svc.QueryManagers()[0].Stats()
	fmt.Printf("query manager 0 handled %d composite queries (%d fragments)\n", submitted, fragments)
	for _, pm := range svc.PoolManagers() {
		resolved, created, _, _ := pm.Stats()
		fmt.Printf("pool manager %s: %d queries resolved with only %d pool creations\n",
			pm.Name(), resolved, created)
	}
}
