// Quickstart: stand up an in-process Active Yellow Pages service over a
// synthetic fleet, submit the paper's Section 5.1 sample query, and walk
// the grant lifecycle (allocate -> use -> release).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"actyp/internal/core"
	"actyp/internal/registry"
)

func main() {
	// 1. Build a white-pages database: 64 machines across four
	//    architectures and two administrative domains.
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(64).Populate(db, time.Now()); err != nil {
		log.Fatal(err)
	}

	// 2. Start the ActYP service: query managers, pool managers, and
	//    dynamically-created resource pools, plus a background monitor.
	svc, err := core.New(core.Options{
		DB:              db,
		MonitorInterval: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// 3. Submit the paper's sample query. The pool manager derives the
	//    pool name arch:domain:license:memory,==:==:==:>= / sun:purdue:
	//    tsuprem4:10 and creates the pool on first touch.
	grant, err := svc.Request(`
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.license = tsuprem4
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("granted machine %s at %s:%d\n",
		grant.Lease.Machine, grant.Lease.Addr, grant.Lease.ExecUnitPort)
	fmt.Printf("session access key %s\n", grant.Lease.AccessKey)
	fmt.Printf("shadow account %s (uid %d)\n", grant.Shadow.User, grant.Shadow.UID)

	// 4. The directory now lists the dynamically-created pool.
	for _, name := range svc.Directory().Names() {
		fmt.Printf("active pool: %s\n", name)
	}

	// 5. A composite ("or") query fans out to two pools concurrently and
	//    reintegrates at the end of the pipeline.
	composite, err := svc.Request("punch.rsrc.arch = hp | alpha")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite query decomposed into %d fragments, %d succeeded, won by %s\n",
		composite.Fragments, composite.Succeeded, composite.Lease.Machine)

	// 6. Release everything.
	for _, g := range []*core.Grant{grant, composite} {
		if err := svc.Release(g); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("all resources released")
}
