// Multidomain: decentralized scheduling across administrative domains
// (Sections 5.2.2 and 6). Two pool managers — one per domain, each with
// its own white pages and directory — peer with each other. A query that
// the local domain cannot satisfy is forwarded to the peer, carrying its
// visited list and TTL with it; a query nobody can satisfy dies when the
// TTL expires. The remote domain's pools are spawned through a proxy
// server, exercising the distributed pool-creation path.
//
// Run with:
//
//	go run ./examples/multidomain
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"actyp/internal/directory"
	"actyp/internal/netsim"
	"actyp/internal/poolmgr"
	"actyp/internal/proxy"
	"actyp/internal/query"
	"actyp/internal/registry"
)

func main() {
	// Domain "purdue": sun machines only.
	purdueDB := registry.NewDB()
	purdueFleet := registry.FleetSpec{
		N: 32, Archs: []string{"sun"}, Domains: []string{"purdue"},
		Owners: []string{"ece"}, Tools: []string{"tsuprem4", "spice"}, Seed: 1,
	}
	if err := purdueFleet.Populate(purdueDB, time.Now()); err != nil {
		log.Fatal(err)
	}

	// Domain "upc": alpha machines only, pools spawned via a proxy
	// server (the remote-creation path of Section 5.2.3).
	upcDB := registry.NewDB()
	upcFleet := registry.FleetSpec{
		N: 32, Archs: []string{"alpha"}, Domains: []string{"upc"},
		Owners: []string{"dac"}, Tools: []string{"montecarlo"}, Seed: 2,
	}
	if err := upcFleet.Populate(upcDB, time.Now()); err != nil {
		log.Fatal(err)
	}
	upcProxy, err := proxy.Start(upcDB, "127.0.0.1:0", netsim.LAN())
	if err != nil {
		log.Fatal(err)
	}
	defer upcProxy.Close()

	// Pool managers, one per domain. Purdue creates pools locally; UPC
	// creates them through its proxy.
	purdueDir, upcDir := directory.New(), directory.New()
	purdueFactory := &poolmgr.LocalFactory{DB: purdueDB}
	defer purdueFactory.CloseAll()
	upcFactory := &proxy.RemoteFactory{Proxies: []string{upcProxy.Addr()}, Profile: netsim.LAN()}
	defer upcFactory.CloseAll()

	purduePM, err := poolmgr.New(poolmgr.Config{Name: "pm-purdue", Dir: purdueDir, Factory: purdueFactory})
	if err != nil {
		log.Fatal(err)
	}
	upcPM, err := poolmgr.New(poolmgr.Config{Name: "pm-upc", Dir: upcDir, Factory: upcFactory})
	if err != nil {
		log.Fatal(err)
	}

	// Peer the domains: each lists the other in its directory service.
	purdueDir.AddPeer(upcPM)
	upcDir.AddPeer(purduePM)

	// A local query resolves in the local domain.
	sun := mustParse("punch.rsrc.arch = sun")
	lease, err := purduePM.Resolve(sun)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sun query resolved locally at purdue: machine %s (pool %s)\n", lease.Machine, lease.Pool)

	// An alpha query cannot be satisfied at purdue: the pool manager
	// attaches its name, decrements the TTL, and forwards to UPC, whose
	// proxy spawns the pool remotely.
	alpha := mustParse("punch.rsrc.arch = alpha")
	lease2, err := purduePM.Resolve(alpha)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha query delegated to upc: machine %s (pool %s)\n", lease2.Machine, lease2.Pool)
	fmt.Printf("upc proxy now hosts pools: %v\n", upcProxy.Pools())

	_, _, forwarded, _ := purduePM.Stats()
	fmt.Printf("purdue pool manager forwarded %d queries\n", forwarded)

	// A query nobody can satisfy dies by TTL / peer exhaustion, not by
	// looping forever.
	cray := mustParse("punch.rsrc.arch = cray")
	if _, err := purduePM.Resolve(cray); err != nil {
		switch {
		case errors.Is(err, poolmgr.ErrTTLExpired):
			fmt.Println("cray query failed: TTL expired (as designed)")
		default:
			fmt.Printf("cray query failed: %v\n", err)
		}
	}

	// Clean up the delegated lease through the peer that granted it.
	if err := upcPM.Release(lease2); err != nil {
		log.Fatal(err)
	}
	if err := purduePM.Release(lease); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all leases released")
}

func mustParse(text string) *query.Query {
	q, err := query.ParseBasic(text)
	if err != nil {
		log.Fatal(err)
	}
	return q
}
