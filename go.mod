module actyp

go 1.24
