package proxy

import (
	"strings"
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/netsim"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

func fleetDB(t testing.TB, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func startProxy(t *testing.T, n int) *Server {
	t.Helper()
	s, err := Start(fleetDB(t, n), "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(nil, "127.0.0.1:0", netsim.Local()); err == nil {
		t.Error("missing db should fail")
	}
}

func TestSpawnAndAllocate(t *testing.T) {
	srv := startProxy(t, 8)
	sp, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{
		Signature:  "arch,==",
		Identifier: "sun",
		Instance:   0,
	}, netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	if sp.Instance == "" || sp.Addr == "" {
		t.Fatalf("spawn reply = %+v", sp)
	}
	if len(srv.Pools()) != 1 {
		t.Errorf("proxy pools = %v", srv.Pools())
	}

	stub, err := NewRemotePool(sp.Addr, netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()

	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	lease, err := stub.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Machine == "" || lease.AccessKey == "" {
		t.Errorf("lease = %+v", lease)
	}
	if err := stub.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	if err := stub.Release(lease.ID); err == nil {
		t.Error("double release should fail")
	}
}

func TestSpawnErrors(t *testing.T) {
	srv := startProxy(t, 4)
	// Unknown objective.
	if _, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{
		Signature: "arch,==", Identifier: "sun", Objective: "bogus",
	}, netsim.Local()); err == nil {
		t.Error("bad objective should fail")
	}
	// Criteria matching nothing.
	_, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{
		Signature: "arch,==", Identifier: "cray",
	}, netsim.Local())
	if err == nil || !strings.Contains(err.Error(), "no machines") {
		t.Errorf("err = %v", err)
	}
	// Malformed signature.
	if _, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{
		Signature: "nocomma", Identifier: "x",
	}, netsim.Local()); err == nil {
		t.Error("bad signature should fail")
	}
}

func TestRemoteFactoryWithPoolManager(t *testing.T) {
	srv := startProxy(t, 8)
	dir := directory.New()
	factory := &RemoteFactory{Proxies: []string{srv.Addr()}, Profile: netsim.Local()}
	defer factory.CloseAll()
	pm, err := poolmgr.New(poolmgr.Config{Name: "pm", Dir: dir, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	lease, err := pm.Resolve(q)
	if err != nil {
		t.Fatalf("resolve through remote pool: %v", err)
	}
	if lease.Machine == "" {
		t.Error("empty lease")
	}
	if err := pm.Release(lease); err != nil {
		t.Fatal(err)
	}
	if dir.Instances() != 1 {
		t.Errorf("instances = %d", dir.Instances())
	}
}

func TestRemoteFactoryNoProxies(t *testing.T) {
	f := &RemoteFactory{}
	if _, err := f.Create(query.PoolName{Signature: "arch,==", Identifier: "sun"}, 0); err == nil {
		t.Error("factory without proxies should fail")
	}
}

func TestProxyPing(t *testing.T) {
	srv := startProxy(t, 2)
	conn, err := (netsim.Dialer{}).Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Envelope{Type: wire.TypePing, ID: 9}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypePing || reply.ID != 9 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestProxyCloseShutsPools(t *testing.T) {
	db := fleetDB(t, 4)
	srv, err := Start(db, "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{Signature: "arch,==", Identifier: "sun"}, netsim.Local()); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	// Exclusive pool released its machines on close.
	taken := 0
	db.Walk(func(m *registry.Machine) bool {
		if m.TakenBy != "" {
			taken++
		}
		return true
	})
	if taken != 0 {
		t.Errorf("%d machines still taken after proxy close", taken)
	}
}
