package proxy

import (
	"fmt"
	"sync"

	"actyp/internal/directory"
	"actyp/internal/netsim"
	"actyp/internal/query"
	"actyp/internal/wire"
)

// RemoteFactory creates resource pools through proxy servers on remote
// machines, plugging into pool managers exactly like the local factory. It
// round-robins spawn requests across the configured proxies.
type RemoteFactory struct {
	// Proxies are control addresses of running proxy servers. Required.
	Proxies []string
	// Profile is applied to spawn and allocation connections.
	Profile netsim.Profile
	// Objective names the scheduling objective for spawned pools.
	Objective string

	mu    sync.Mutex
	next  int
	stubs []*RemotePool
}

// Create implements the pool managers' Factory contract.
func (f *RemoteFactory) Create(name query.PoolName, instance int) (directory.PoolRef, error) {
	if len(f.Proxies) == 0 {
		return directory.PoolRef{}, fmt.Errorf("proxy: remote factory has no proxies")
	}
	f.mu.Lock()
	addr := f.Proxies[f.next%len(f.Proxies)]
	f.next++
	f.mu.Unlock()

	sp, err := Spawn(addr, wire.SpawnPoolRequest{
		Signature:  name.Signature,
		Identifier: name.Identifier,
		Instance:   instance,
		Objective:  f.Objective,
	}, f.Profile)
	if err != nil {
		return directory.PoolRef{}, err
	}
	stub, err := NewRemotePool(sp.Addr, f.Profile)
	if err != nil {
		return directory.PoolRef{}, err
	}
	f.mu.Lock()
	f.stubs = append(f.stubs, stub)
	f.mu.Unlock()
	return directory.PoolRef{Name: name, Instance: sp.Instance, Addr: sp.Addr, Local: stub}, nil
}

// CloseAll drops every stub connection (the proxies own the pools).
func (f *RemoteFactory) CloseAll() {
	f.mu.Lock()
	stubs := append([]*RemotePool(nil), f.stubs...)
	f.mu.Unlock()
	for _, s := range stubs {
		_ = s.Close()
	}
}
