// Package proxy implements the remote-creation path for resource pools
// (Section 5.2.3): "If the resource pool is on a different machine, the
// pool manager starts it via a proxy server on the remote machine. (This
// server is a part of the ActYP service, and is assumed to be kept alive
// via a cron process.)" A proxy server listens on a machine, spawns pool
// instances on request, and serves each pool's allocation traffic over the
// wire protocol. RemotePool is the client-side stub that makes a spawned
// pool usable wherever a local pool is (it implements the directory
// service's Allocator contract).
package proxy

import (
	"fmt"
	"net"
	"sync"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
	"actyp/internal/wire"
)

// Wire message types private to the pool endpoints.
const (
	typeAlloc   = "pool-alloc"
	typeRelease = "pool-release"
)

// allocRequest carries a basic query in its textual form.
type allocRequest struct {
	Query string `json:"query"`
}

type allocReply struct {
	Lease *pool.Lease `json:"lease"`
}

type releaseRequest struct {
	LeaseID string `json:"leaseId"`
}

// ServerOptions tunes a proxy server's per-connection transport.
type ServerOptions struct {
	// Window is the per-connection in-flight window for both the control
	// port and every spawned pool's endpoint (0 means wire.DefaultWindow;
	// values below 0 serialize).
	Window int
	// Codecs is the wire-codec negotiation preference (nil means
	// wire.DefaultCodecs).
	Codecs []wire.Codec
	// Stats, when set, accounts every frame served per codec, across the
	// control port and every spawned pool endpoint.
	Stats *metrics.WireStats
}

// Server is one machine's proxy: it spawns pools and serves them.
type Server struct {
	db      *registry.DB
	profile netsim.Profile
	ln      net.Listener
	opts    ServerOptions

	mu     sync.Mutex
	closed bool
	pools  map[string]*pool.Pool // instance id -> pool
	lns    []net.Listener        // per-pool listeners
	wg     sync.WaitGroup
}

// Start launches a proxy server for the machine hosting db with the
// default transport configuration.
func Start(db *registry.DB, addr string, profile netsim.Profile) (*Server, error) {
	return StartOpts(db, addr, profile, ServerOptions{})
}

// StartOpts is Start with an explicit transport configuration.
func StartOpts(db *registry.DB, addr string, profile netsim.Profile, opts ServerOptions) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("proxy: server needs a database")
	}
	if opts.Window == 0 {
		opts.Window = wire.DefaultWindow
	}
	ln, err := netsim.Listen(addr, profile)
	if err != nil {
		return nil, err
	}
	s := &Server{db: db, profile: profile, ln: ln, opts: opts, pools: make(map[string]*pool.Pool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// serveOptions is the wire-level translation of the server's transport
// configuration, shared by the control and pool connection handlers.
func (s *Server) serveOptions() wire.ServeOptions {
	return wire.ServeOptions{Window: s.opts.Window, Codecs: s.opts.Codecs, Stats: s.opts.Stats}
}

// Addr returns the proxy's control address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Pools returns the ids of pools this proxy spawned, for observability.
func (s *Server) Pools() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.pools))
	for id := range s.pools {
		out = append(out, id)
	}
	return out
}

// Close shuts the proxy and every spawned pool down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := append([]net.Listener(nil), s.lns...)
	pools := make([]*pool.Pool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, l := range lns {
		_ = l.Close()
	}
	s.wg.Wait()
	for _, p := range pools {
		p.Close()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handleControl(conn)
	}
}

// handleControl processes spawn requests on the proxy's control port,
// multiplexing so concurrent spawns on one connection overlap.
func (s *Server) handleControl(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	wire.ServeConnOpts(conn, s.serveOptions(), func(env *wire.Envelope) *wire.Envelope {
		switch env.Type {
		case wire.TypePing:
			return &wire.Envelope{Type: wire.TypePing, ID: env.ID}
		case wire.TypeSpawnPool:
			var req wire.SpawnPoolRequest
			if err := env.Decode(&req); err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			sp, err := s.spawn(req)
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			reply, err := wire.NewEnvelope(wire.TypeSpawnPool, env.ID, sp)
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			return reply
		default:
			return wire.ErrorEnvelope(env.ID, fmt.Errorf("proxy: unknown message %q", env.Type))
		}
	})
}

// spawn creates a pool and a dedicated listener serving its allocations.
func (s *Server) spawn(req wire.SpawnPoolRequest) (*wire.SpawnPoolReply, error) {
	obj, err := schedule.ByName(req.Objective)
	if err != nil {
		return nil, err
	}
	p, err := pool.New(pool.Config{
		Name:      query.PoolName{Signature: req.Signature, Identifier: req.Identifier},
		Instance:  req.Instance,
		DB:        s.db,
		Objective: obj,
		Exclusive: req.Instance == 0,
	})
	if err != nil {
		return nil, err
	}
	ln, err := netsim.Listen("127.0.0.1:0", s.profile)
	if err != nil {
		p.Close()
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		p.Close()
		return nil, fmt.Errorf("proxy: server closed")
	}
	s.pools[p.ID()] = p
	s.lns = append(s.lns, ln)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.servePool(ln, p)
	return &wire.SpawnPoolReply{Instance: p.ID(), Addr: ln.Addr().String()}, nil
}

func (s *Server) servePool(ln net.Listener, p *pool.Pool) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handlePool(conn, p)
	}
}

// handlePool serves one connection's allocation traffic against a spawned
// pool. The pool is concurrency-safe, so requests on one connection
// dispatch through the multiplexer and overlap.
func (s *Server) handlePool(conn net.Conn, p *pool.Pool) {
	defer s.wg.Done()
	defer conn.Close()
	wire.ServeConnOpts(conn, s.serveOptions(), func(env *wire.Envelope) *wire.Envelope {
		switch env.Type {
		case typeAlloc:
			var req allocRequest
			if err := env.Decode(&req); err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			q, err := query.ParseBasic(req.Query)
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			lease, err := p.Allocate(q)
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			reply, err := wire.NewEnvelope(typeAlloc, env.ID, allocReply{Lease: lease})
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			return reply
		case typeRelease:
			var req releaseRequest
			if err := env.Decode(&req); err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			if err := p.Release(req.LeaseID); err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			reply, err := wire.NewEnvelope(typeRelease, env.ID, struct{}{})
			if err != nil {
				return wire.ErrorEnvelope(env.ID, err)
			}
			return reply
		default:
			return wire.ErrorEnvelope(env.ID, fmt.Errorf("proxy: unknown pool message %q", env.Type))
		}
	})
}
