package proxy

import (
	"errors"
	"fmt"
	"net"

	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/wire"
)

// Spawn asks the proxy server at addr to create a pool instance and
// returns the new instance's id and allocation address. A spawn is a rare
// one-shot exchange on a throwaway connection; it piggybacks the request
// on the codec hello, so the exchange negotiates properly and still costs
// a single round trip (against a pre-negotiation server the call falls
// back to the JSON floor automatically).
func Spawn(addr string, req wire.SpawnPoolRequest, profile netsim.Profile) (*wire.SpawnPoolReply, error) {
	conn, err := (netsim.Dialer{Profile: profile}).Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial %s: %w", addr, err)
	}
	defer conn.Close()
	env, err := wire.NewEnvelope(wire.TypeSpawnPool, 1, req)
	if err != nil {
		return nil, err
	}
	reply, err := wire.CallPiggyback(conn, nil, env)
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("proxy: spawn: %s", remote.Message)
		}
		return nil, err
	}
	var sp wire.SpawnPoolReply
	if err := reply.Decode(&sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// RemotePool is the client stub for a pool served by a proxy. It satisfies
// the directory service's Allocator contract, so remote pools register and
// allocate exactly like local ones. It is safe for concurrent use: calls
// multiplex over the single connection with correlated replies, so
// concurrent allocations overlap on the wire instead of queueing behind
// one another.
type RemotePool struct {
	addr string
	c    *wire.Client
}

// NewRemotePool connects a stub to the pool endpoint at addr.
func NewRemotePool(addr string, profile netsim.Profile) (*RemotePool, error) {
	c := wire.NewClient(func() (net.Conn, error) {
		return (netsim.Dialer{Profile: profile}).Dial(addr)
	}, 0)
	if err := c.Connect(); err != nil {
		return nil, fmt.Errorf("proxy: dial pool %s: %w", addr, err)
	}
	return &RemotePool{addr: addr, c: c}, nil
}

// Addr returns the pool endpoint address.
func (r *RemotePool) Addr() string { return r.addr }

// Close drops the connection.
func (r *RemotePool) Close() error { return r.c.Close() }

// call round-trips one request, translating server-reported failures into
// the historical "proxy: remote pool: ..." form.
func (r *RemotePool) call(typ string, payload any) (*wire.Envelope, error) {
	reply, err := r.c.Call(typ, payload)
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("proxy: remote pool: %s", remote.Message)
		}
		return nil, err
	}
	return reply, nil
}

// Allocate implements the Allocator contract over the wire: the basic
// query travels in its textual form, which round-trips losslessly.
func (r *RemotePool) Allocate(q *query.Query) (*pool.Lease, error) {
	reply, err := r.call(typeAlloc, allocRequest{Query: q.String()})
	if err != nil {
		return nil, err
	}
	var ar allocReply
	if err := reply.Decode(&ar); err != nil {
		return nil, err
	}
	if ar.Lease == nil {
		return nil, fmt.Errorf("proxy: remote pool returned no lease")
	}
	return ar.Lease, nil
}

// Release implements the Allocator contract.
func (r *RemotePool) Release(leaseID string) error {
	_, err := r.call(typeRelease, releaseRequest{LeaseID: leaseID})
	return err
}
