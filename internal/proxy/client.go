package proxy

import (
	"fmt"
	"net"
	"sync"

	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/wire"
)

// Spawn asks the proxy server at addr to create a pool instance and
// returns the new instance's id and allocation address.
func Spawn(addr string, req wire.SpawnPoolRequest, profile netsim.Profile) (*wire.SpawnPoolReply, error) {
	conn, err := (netsim.Dialer{Profile: profile}).Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial %s: %w", addr, err)
	}
	defer conn.Close()
	env, err := wire.NewEnvelope(wire.TypeSpawnPool, 1, req)
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, env); err != nil {
		return nil, err
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if reply.Type == wire.TypeError {
		var e wire.ErrorReply
		if err := reply.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("proxy: spawn: %s", e.Message)
	}
	var sp wire.SpawnPoolReply
	if err := reply.Decode(&sp); err != nil {
		return nil, err
	}
	return &sp, nil
}

// RemotePool is the client stub for a pool served by a proxy. It satisfies
// the directory service's Allocator contract, so remote pools register and
// allocate exactly like local ones. It is safe for concurrent use: calls
// serialize on the single connection, mirroring the single-threaded pool
// objects of the paper.
type RemotePool struct {
	addr    string
	profile netsim.Profile

	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
}

// NewRemotePool connects a stub to the pool endpoint at addr.
func NewRemotePool(addr string, profile netsim.Profile) (*RemotePool, error) {
	conn, err := (netsim.Dialer{Profile: profile}).Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("proxy: dial pool %s: %w", addr, err)
	}
	return &RemotePool{addr: addr, profile: profile, conn: conn}, nil
}

// Addr returns the pool endpoint address.
func (r *RemotePool) Addr() string { return r.addr }

// Close drops the connection.
func (r *RemotePool) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conn.Close()
}

// Allocate implements the Allocator contract over the wire: the basic
// query travels in its textual form, which round-trips losslessly.
func (r *RemotePool) Allocate(q *query.Query) (*pool.Lease, error) {
	env, err := wire.NewEnvelope(typeAlloc, 0, allocRequest{Query: q.String()})
	if err != nil {
		return nil, err
	}
	reply, err := r.roundTrip(env)
	if err != nil {
		return nil, err
	}
	var ar allocReply
	if err := reply.Decode(&ar); err != nil {
		return nil, err
	}
	if ar.Lease == nil {
		return nil, fmt.Errorf("proxy: remote pool returned no lease")
	}
	return ar.Lease, nil
}

// Release implements the Allocator contract.
func (r *RemotePool) Release(leaseID string) error {
	env, err := wire.NewEnvelope(typeRelease, 0, releaseRequest{LeaseID: leaseID})
	if err != nil {
		return err
	}
	_, err = r.roundTrip(env)
	return err
}

func (r *RemotePool) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	env.ID = r.nextID
	if err := wire.WriteFrame(r.conn, env); err != nil {
		return nil, err
	}
	reply, err := wire.ReadFrame(r.conn)
	if err != nil {
		return nil, err
	}
	if reply.ID != env.ID {
		return nil, fmt.Errorf("proxy: reply id %d for request %d", reply.ID, env.ID)
	}
	if reply.Type == wire.TypeError {
		var e wire.ErrorReply
		if err := reply.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("proxy: remote pool: %s", e.Message)
	}
	return reply, nil
}
