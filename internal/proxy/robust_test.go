package proxy

import (
	"testing"

	"actyp/internal/netsim"
	"actyp/internal/query"
	"actyp/internal/wire"
)

func TestSpawnOnClosedServerFails(t *testing.T) {
	srv := startProxy(t, 4)
	addr := srv.Addr()
	srv.Close()
	if _, err := Spawn(addr, wire.SpawnPoolRequest{Signature: "arch,==", Identifier: "sun"}, netsim.Local()); err == nil {
		t.Error("spawn against a closed proxy should fail")
	}
}

func TestSpawnUnreachableProxy(t *testing.T) {
	if _, err := Spawn("127.0.0.1:1", wire.SpawnPoolRequest{Signature: "arch,==", Identifier: "sun"}, netsim.Local()); err == nil {
		t.Error("unreachable proxy should fail")
	}
	if _, err := NewRemotePool("127.0.0.1:1", netsim.Local()); err == nil {
		t.Error("unreachable pool endpoint should fail")
	}
}

func TestRemotePoolBadQueryPropagates(t *testing.T) {
	srv := startProxy(t, 4)
	sp, err := Spawn(srv.Addr(), wire.SpawnPoolRequest{Signature: "arch,==", Identifier: "sun"}, netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	stub, err := NewRemotePool(sp.Addr, netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer stub.Close()
	// A query for a different architecture exhausts the sun pool.
	q, err := query.ParseBasic("punch.rsrc.arch = hp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Allocate(q); err == nil {
		t.Error("mismatched query should fail on the remote pool")
	}
	// The connection stays usable.
	sun, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	lease, err := stub.Allocate(sun)
	if err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
	if err := stub.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
}

func TestProxyUnknownMessageType(t *testing.T) {
	srv := startProxy(t, 2)
	conn, err := (netsim.Dialer{}).Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Envelope{Type: "nonsense", ID: 1}); err != nil {
		t.Fatal(err)
	}
	reply, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != wire.TypeError {
		t.Errorf("reply = %+v", reply)
	}
}

func TestRemoteFactoryRoundRobinsProxies(t *testing.T) {
	a := startProxy(t, 8)
	b := startProxy(t, 8)
	f := &RemoteFactory{Proxies: []string{a.Addr(), b.Addr()}, Profile: netsim.Local()}
	defer f.CloseAll()
	n1 := query.PoolName{Signature: "arch,==", Identifier: "sun"}
	if _, err := f.Create(n1, 0); err != nil {
		t.Fatal(err)
	}
	n2 := query.PoolName{Signature: "domain,==", Identifier: "purdue"}
	if _, err := f.Create(n2, 0); err != nil {
		t.Fatal(err)
	}
	if len(a.Pools()) != 1 || len(b.Pools()) != 1 {
		t.Errorf("pools not round-robined: a=%v b=%v", a.Pools(), b.Pools())
	}
}
