// Package appmgr implements the PUNCH application management component of
// Section 3 (Figure 2): it parses user input, extracts and qualifies the
// relevant parameters using a knowledge base, estimates the run time
// through the performance-modeling service, ranks candidate algorithms,
// determines hardware and software requirements, and composes the query
// that is forwarded to the ActYP resource-management pipeline.
package appmgr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"actyp/internal/perfmodel"
	"actyp/internal/query"
)

// ParamSpec is one knowledge-base extraction rule: how a raw command-line
// argument becomes a qualified numeric parameter.
type ParamSpec struct {
	Name    string  // qualified name, e.g. "carriers"
	Flag    string  // command flag that carries it, e.g. "-n"
	Default float64 // used when the flag is absent (0 means "omit")
	Min     float64 // minimum legal value (inclusive) when > 0
	Max     float64 // maximum legal value (inclusive) when > 0
}

// Algorithm is one way a tool can solve its problem; the knowledge base
// ranks algorithms by fitness for the extracted parameters (the paper's
// example ranks Monte Carlo, hydro-dynamic and drift-diffusion carrier
// transport).
type Algorithm struct {
	Name string
	// Fitness scores the algorithm for a parameter set; higher wins.
	Fitness func(params map[string]float64) float64
	// CostFactor scales the base CPU estimate when this algorithm runs.
	CostFactor float64
}

// ToolSpec is the knowledge-base entry for one tool.
type ToolSpec struct {
	Name       string      // tool identifier, e.g. "tsuprem4"
	ToolGroup  string      // tool group used in machine policy checks
	License    string      // license token machines must hold
	Params     []ParamSpec // extraction rules
	Algorithms []Algorithm // ranked algorithm choices (may be empty)
	// Archs lists acceptable architectures in preference order; more
	// than one produces a composite (or-clause) query.
	Archs []string
	// MinMemoryMB is a hardware floor independent of the estimate.
	MinMemoryMB float64
}

// RunRequest is what the network desktop sends: who wants to run what.
type RunRequest struct {
	Tool  string
	Args  []string // raw command arguments, e.g. ["-n", "50000"]
	Login string
	Group string
	// Domain, when non-empty, pins the run to one administrative domain.
	Domain string
}

// PreparedRun is the component's output: the composed query plus the
// supporting decisions, ready for the pipeline.
type PreparedRun struct {
	QueryText string // native-language query (possibly composite)
	Params    map[string]float64
	Estimate  perfmodel.Estimate
	Algorithm string // chosen algorithm, "" if the tool has no choices
}

// Manager is the application management component.
type Manager struct {
	mu    sync.RWMutex
	kb    map[string]*ToolSpec
	perf  *perfmodel.Service
	clamp bool
}

// New creates a manager around a performance-modeling service.
func New(perf *perfmodel.Service) *Manager {
	return &Manager{kb: make(map[string]*ToolSpec), perf: perf}
}

// Register installs a knowledge-base entry.
func (m *Manager) Register(spec *ToolSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("appmgr: tool spec needs a name")
	}
	if len(spec.Archs) == 0 {
		return fmt.Errorf("appmgr: tool %s needs at least one architecture", spec.Name)
	}
	for _, a := range spec.Algorithms {
		if a.Fitness == nil {
			return fmt.Errorf("appmgr: tool %s: algorithm %s needs a fitness function", spec.Name, a.Name)
		}
		if a.CostFactor <= 0 {
			return fmt.Errorf("appmgr: tool %s: algorithm %s needs a positive cost factor", spec.Name, a.Name)
		}
	}
	cp := *spec
	cp.Params = append([]ParamSpec(nil), spec.Params...)
	cp.Algorithms = append([]Algorithm(nil), spec.Algorithms...)
	cp.Archs = append([]string(nil), spec.Archs...)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kb[spec.Name] = &cp
	return nil
}

// Tools lists registered tools, sorted.
func (m *Manager) Tools() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.kb))
	for t := range m.kb {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Prepare runs the full Figure 2 sequence for one request.
func (m *Manager) Prepare(req RunRequest) (*PreparedRun, error) {
	m.mu.RLock()
	spec, ok := m.kb[req.Tool]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("appmgr: unknown tool %q", req.Tool)
	}

	// 1. Extract relevant parameters from the user input.
	params, err := extract(spec, req.Args)
	if err != nil {
		return nil, err
	}

	// 2. Rank algorithms and select the best.
	algo, costFactor := rank(spec, params)

	// 3. Estimate the run via the performance-modeling service.
	est, err := m.perf.Predict(spec.Name, params)
	if err != nil {
		return nil, err
	}
	est.CPUSeconds *= costFactor

	// 4. Determine hardware requirements and compose the query.
	memory := est.MemoryMB
	if spec.MinMemoryMB > memory {
		memory = spec.MinMemoryMB
	}
	var b strings.Builder
	fmt.Fprintf(&b, "punch.rsrc.arch = %s\n", strings.Join(spec.Archs, " | "))
	fmt.Fprintf(&b, "punch.rsrc.memory = >=%s\n", query.FormatNum(roundUp(memory)))
	if spec.License != "" {
		fmt.Fprintf(&b, "punch.rsrc.license = %s\n", spec.License)
	}
	if req.Domain != "" {
		fmt.Fprintf(&b, "punch.rsrc.domain = %s\n", req.Domain)
	}
	fmt.Fprintf(&b, "punch.appl.expectedcpuuse = %s\n", query.FormatNum(roundUp(est.CPUSeconds)))
	if spec.ToolGroup != "" {
		fmt.Fprintf(&b, "punch.appl.tool = %s\n", spec.ToolGroup)
	}
	if req.Login != "" {
		fmt.Fprintf(&b, "punch.user.login = %s\n", req.Login)
	}
	if req.Group != "" {
		fmt.Fprintf(&b, "punch.user.accessgroup = %s\n", req.Group)
	}

	return &PreparedRun{
		QueryText: b.String(),
		Params:    params,
		Estimate:  est,
		Algorithm: algo,
	}, nil
}

// Observe feeds an actual run time back to the performance model.
func (m *Manager) Observe(tool string, params map[string]float64, actualCPUSeconds float64) error {
	return m.perf.Observe(tool, params, actualCPUSeconds)
}

func extract(spec *ToolSpec, args []string) (map[string]float64, error) {
	params := make(map[string]float64)
	for _, p := range spec.Params {
		val := p.Default
		found := false
		for i := 0; i < len(args)-1; i++ {
			if args[i] == p.Flag {
				f, err := strconv.ParseFloat(args[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("appmgr: tool %s: flag %s needs a number, got %q", spec.Name, p.Flag, args[i+1])
				}
				val = f
				found = true
				break
			}
		}
		if !found && p.Default == 0 {
			continue // omitted optional parameter
		}
		if p.Min > 0 && val < p.Min {
			return nil, fmt.Errorf("appmgr: tool %s: parameter %s=%v below minimum %v", spec.Name, p.Name, val, p.Min)
		}
		if p.Max > 0 && val > p.Max {
			return nil, fmt.Errorf("appmgr: tool %s: parameter %s=%v above maximum %v", spec.Name, p.Name, val, p.Max)
		}
		params[p.Name] = val
	}
	return params, nil
}

func rank(spec *ToolSpec, params map[string]float64) (string, float64) {
	if len(spec.Algorithms) == 0 {
		return "", 1
	}
	best := spec.Algorithms[0]
	bestScore := best.Fitness(params)
	for _, a := range spec.Algorithms[1:] {
		if score := a.Fitness(params); score > bestScore {
			best, bestScore = a, score
		}
	}
	return best.Name, best.CostFactor
}

func roundUp(f float64) float64 {
	if f < 1 {
		return 1
	}
	if f == float64(int64(f)) {
		return f
	}
	return float64(int64(f) + 1)
}

// PunchKnowledgeBase registers the paper's example tools against the
// matching performance models: the carrier-transport simulation of
// Figure 2 (with its Monte Carlo / drift-diffusion algorithm choice),
// T-Suprem4 from the sample query, and the supporting applications.
func PunchKnowledgeBase(m *Manager) error {
	specs := []*ToolSpec{
		{
			Name: "tsuprem4", ToolGroup: "tsuprem4", License: "tsuprem4",
			Archs: []string{"sun"}, MinMemoryMB: 10,
			Params: []ParamSpec{
				{Name: "gridnodes", Flag: "-g", Default: 100, Min: 1},
				{Name: "steps", Flag: "-s", Default: 10, Min: 1},
			},
		},
		{
			Name: "spice", ToolGroup: "spice", License: "spice",
			Archs: []string{"sun", "hp"}, MinMemoryMB: 16,
			Params: []ParamSpec{
				{Name: "nodes", Flag: "-n", Default: 50, Min: 1},
				{Name: "timepoints", Flag: "-t", Default: 1000, Min: 1},
			},
		},
		{
			Name: "montecarlo", ToolGroup: "transport", License: "montecarlo",
			Archs: []string{"sun", "hp", "alpha"}, MinMemoryMB: 64,
			Params: []ParamSpec{
				{Name: "carriers", Flag: "-n", Default: 10000, Min: 1},
				{Name: "devicesize", Flag: "-d", Default: 1, Min: 0.001},
			},
			Algorithms: []Algorithm{
				{
					Name:       "monte-carlo",
					CostFactor: 3,
					// Accurate but costly: wins for small carrier counts.
					Fitness: func(p map[string]float64) float64 { return 1e6 / (1 + p["carriers"]) },
				},
				{
					Name:       "drift-diffusion",
					CostFactor: 1,
					// Cheap approximation: wins for big problems.
					Fitness: func(p map[string]float64) float64 { return p["carriers"] / 100 },
				},
			},
		},
		{
			Name: "matlab", ToolGroup: "matlab", License: "matlab",
			Archs: []string{"sun", "x86"}, MinMemoryMB: 64,
			Params: []ParamSpec{
				{Name: "matrixdim", Flag: "-m", Default: 256, Min: 1, Max: 16384},
			},
		},
	}
	for _, s := range specs {
		if err := m.Register(s); err != nil {
			return err
		}
	}
	return nil
}
