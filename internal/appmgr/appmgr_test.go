package appmgr

import (
	"strings"
	"testing"

	"actyp/internal/perfmodel"
	"actyp/internal/query"
)

func manager(t *testing.T) *Manager {
	t.Helper()
	perf := perfmodel.NewService(0.2)
	for _, mdl := range perfmodel.PunchModels() {
		if err := perf.Register(mdl); err != nil {
			t.Fatal(err)
		}
	}
	m := New(perf)
	if err := PunchKnowledgeBase(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegisterValidation(t *testing.T) {
	m := New(perfmodel.NewService(0))
	bad := []*ToolSpec{
		{Name: "", Archs: []string{"sun"}},
		{Name: "x"},
		{Name: "x", Archs: []string{"sun"}, Algorithms: []Algorithm{{Name: "a", CostFactor: 1}}},                                          // nil fitness
		{Name: "x", Archs: []string{"sun"}, Algorithms: []Algorithm{{Name: "a", Fitness: func(map[string]float64) float64 { return 0 }}}}, // zero cost
	}
	for i, spec := range bad {
		if err := m.Register(spec); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPrepareComposesPaperStyleQuery(t *testing.T) {
	m := manager(t)
	prepared, err := m.Prepare(RunRequest{
		Tool:   "tsuprem4",
		Args:   []string{"-g", "200", "-s", "20"},
		Login:  "kapadia",
		Group:  "ece",
		Domain: "purdue",
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := query.Parse(prepared.QueryText)
	if err != nil {
		t.Fatalf("generated query does not parse: %v\n%s", err, prepared.QueryText)
	}
	q := c.Decompose()[0]
	checks := map[string]string{
		"punch.rsrc.arch":        "sun",
		"punch.rsrc.license":     "tsuprem4",
		"punch.rsrc.domain":      "purdue",
		"punch.user.login":       "kapadia",
		"punch.user.accessgroup": "ece",
	}
	for key, want := range checks {
		cond, ok := q.Get(key)
		if !ok || cond.Str != want {
			t.Errorf("%s = %+v, want %s", key, cond, want)
		}
	}
	mem, ok := q.Get("punch.rsrc.memory")
	if !ok || mem.Op != query.OpGe || mem.Num < 10 {
		t.Errorf("memory = %+v", mem)
	}
	cpu, ok := q.Get("punch.appl.expectedcpuuse")
	if !ok || !cpu.IsNum || cpu.Num <= 0 {
		t.Errorf("expectedcpuuse = %+v", cpu)
	}
	if prepared.Params["gridnodes"] != 200 || prepared.Params["steps"] != 20 {
		t.Errorf("params = %v", prepared.Params)
	}
}

func TestPrepareMultiArchProducesComposite(t *testing.T) {
	m := manager(t)
	prepared, err := m.Prepare(RunRequest{Tool: "montecarlo", Args: nil, Login: "u", Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := query.Parse(prepared.QueryText)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsBasic() {
		t.Error("three architectures should produce a composite query")
	}
	if got := c.Count(); got != 3 {
		t.Errorf("alternatives = %d", got)
	}
}

func TestAlgorithmRanking(t *testing.T) {
	m := manager(t)
	// Small problem: Monte Carlo wins; cost x3.
	small, err := m.Prepare(RunRequest{Tool: "montecarlo", Args: []string{"-n", "100"}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Algorithm != "monte-carlo" {
		t.Errorf("small problem algorithm = %s", small.Algorithm)
	}
	// Huge problem: drift-diffusion wins.
	big, err := m.Prepare(RunRequest{Tool: "montecarlo", Args: []string{"-n", "10000000"}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Algorithm != "drift-diffusion" {
		t.Errorf("big problem algorithm = %s", big.Algorithm)
	}
}

func TestPrepareDefaultsAndErrors(t *testing.T) {
	m := manager(t)
	// Defaults fill missing flags.
	p, err := m.Prepare(RunRequest{Tool: "spice"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Params["nodes"] != 50 || p.Params["timepoints"] != 1000 {
		t.Errorf("defaults = %v", p.Params)
	}
	// Unknown tool.
	if _, err := m.Prepare(RunRequest{Tool: "nosuchtool"}); err == nil {
		t.Error("unknown tool should fail")
	}
	// Non-numeric flag value.
	if _, err := m.Prepare(RunRequest{Tool: "spice", Args: []string{"-n", "abc"}}); err == nil {
		t.Error("non-numeric argument should fail")
	}
	// Bounds enforcement.
	if _, err := m.Prepare(RunRequest{Tool: "matlab", Args: []string{"-m", "99999"}}); err == nil {
		t.Error("above-max parameter should fail")
	}
	if _, err := m.Prepare(RunRequest{Tool: "spice", Args: []string{"-n", "0.5"}}); err == nil {
		t.Error("below-min parameter should fail")
	}
}

func TestObserveFlowsToPerfModel(t *testing.T) {
	perf := perfmodel.NewService(0.5)
	if err := perf.Register(&perfmodel.Model{Tool: "t", BaseCPU: 10}); err != nil {
		t.Fatal(err)
	}
	m := New(perf)
	if err := m.Register(&ToolSpec{Name: "t", Archs: []string{"sun"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe("t", nil, 20); err != nil {
		t.Fatal(err)
	}
	corr, n := perf.Correction("t")
	if n != 1 || corr <= 1 {
		t.Errorf("correction = %v, %d", corr, n)
	}
}

func TestToolsListing(t *testing.T) {
	m := manager(t)
	tools := m.Tools()
	if len(tools) != 4 {
		t.Fatalf("tools = %v", tools)
	}
	want := "matlab montecarlo spice tsuprem4"
	if got := strings.Join(tools, " "); got != want {
		t.Errorf("tools = %q, want %q", got, want)
	}
}
