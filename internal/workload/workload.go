// Package workload generates the synthetic job populations used throughout
// the evaluation. Figure 9 of the paper characterizes 236,222 production
// PUNCH runs: an overwhelming majority of jobs take a few seconds of CPU
// time (the densest bucket holds 19,756 runs), with a heavy tail
// stretching past 10^6 seconds. The production trace is not available, so
// this package fits a lognormal-body / Pareto-tail mixture to that
// description; the histogram bench regenerates the figure's shape from it.
// The package also provides the bursty arrival pattern of academic
// workloads ("students working on assignments will all use certain
// applications over and over within a relatively short period of time",
// Section 6).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// PaperRunCount is the number of runs Figure 9 characterizes.
const PaperRunCount = 236222

// CPUTimeModel is the fitted mixture behind Figure 9.
type CPUTimeModel struct {
	rng *rand.Rand

	// Mixture weights (must sum to 1): interactive seconds-scale jobs,
	// medium minutes-scale jobs, and the heavy tail.
	WInteractive float64
	WMedium      float64
	WTail        float64

	// Interactive body: lognormal(MuI, SigmaI) seconds.
	MuI, SigmaI float64
	// Medium body: lognormal(MuM, SigmaM) seconds.
	MuM, SigmaM float64
	// Tail: Pareto with scale Xm seconds and shape Alpha, capped at Cap.
	Xm, Alpha, Cap float64
}

// NewCPUTimeModel returns the Figure 9 fit with a deterministic stream.
func NewCPUTimeModel(seed int64) *CPUTimeModel {
	if seed == 0 {
		seed = 1
	}
	return &CPUTimeModel{
		rng:          rand.New(rand.NewSource(seed)),
		WInteractive: 0.72,
		WMedium:      0.23,
		WTail:        0.05,
		MuI:          math.Log(4), SigmaI: 1.0,
		MuM: math.Log(120), SigmaM: 1.3,
		Xm: 1000, Alpha: 1.05, Cap: 2e6,
	}
}

// Sample draws one CPU time in seconds.
func (m *CPUTimeModel) Sample() float64 {
	u := m.rng.Float64()
	switch {
	case u < m.WInteractive:
		return math.Exp(m.MuI + m.SigmaI*m.rng.NormFloat64())
	case u < m.WInteractive+m.WMedium:
		return math.Exp(m.MuM + m.SigmaM*m.rng.NormFloat64())
	default:
		// Inverse-CDF Pareto draw, capped.
		v := m.rng.Float64()
		if v == 0 {
			v = 1e-12
		}
		x := m.Xm / math.Pow(v, 1/m.Alpha)
		if x > m.Cap {
			x = m.Cap
		}
		return x
	}
}

// SampleN draws n CPU times.
func (m *CPUTimeModel) SampleN(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.Sample()
	}
	return out
}

// Job is one synthetic run request.
type Job struct {
	ID         int
	Tool       string
	CPUSeconds float64
	Submit     time.Duration // offset from workload start
	User       string
	Group      string
}

// BurstSpec describes a class-assignment burst: Students users submitting
// Runs jobs each for one Tool, with exponential think time of mean Think
// between a student's consecutive runs.
type BurstSpec struct {
	Tool     string
	Students int
	Runs     int
	Think    time.Duration
	Group    string
	Start    time.Duration // burst start offset
}

// Generator builds job streams.
type Generator struct {
	rng   *rand.Rand
	model *CPUTimeModel
	tools []string
	next  int
}

// NewGenerator returns a generator with deterministic streams. tools is
// the population jobs draw from for non-burst traffic.
func NewGenerator(seed int64, tools []string) (*Generator, error) {
	if len(tools) == 0 {
		return nil, fmt.Errorf("workload: generator needs at least one tool")
	}
	if seed == 0 {
		seed = 1
	}
	return &Generator{
		rng:   rand.New(rand.NewSource(seed)),
		model: NewCPUTimeModel(seed + 1),
		tools: append([]string(nil), tools...),
	}, nil
}

// Background produces n jobs with Poisson arrivals of the given mean
// inter-arrival time, tools drawn uniformly.
func (g *Generator) Background(n int, meanGap time.Duration) []Job {
	jobs := make([]Job, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		at += time.Duration(g.rng.ExpFloat64() * float64(meanGap))
		g.next++
		jobs = append(jobs, Job{
			ID:         g.next,
			Tool:       g.tools[g.rng.Intn(len(g.tools))],
			CPUSeconds: g.model.Sample(),
			Submit:     at,
			User:       fmt.Sprintf("user%03d", g.rng.Intn(200)),
			Group:      "public",
		})
	}
	return jobs
}

// Burst produces the spec's class-assignment traffic: all students run the
// same tool, so all their queries aggregate into the same resource pool —
// the temporal locality ActYP exploits (Section 6).
func (g *Generator) Burst(spec BurstSpec) []Job {
	var jobs []Job
	for s := 0; s < spec.Students; s++ {
		at := spec.Start
		for r := 0; r < spec.Runs; r++ {
			at += time.Duration(g.rng.ExpFloat64() * float64(spec.Think))
			g.next++
			jobs = append(jobs, Job{
				ID:         g.next,
				Tool:       spec.Tool,
				CPUSeconds: math.Exp(math.Log(5) + 0.8*g.rng.NormFloat64()), // short homework runs
				Submit:     at,
				User:       fmt.Sprintf("student%03d", s),
				Group:      spec.Group,
			})
		}
	}
	sortJobs(jobs)
	return jobs
}

// Merge combines job streams into one submit-ordered stream.
func Merge(streams ...[]Job) []Job {
	var out []Job
	for _, s := range streams {
		out = append(out, s...)
	}
	sortJobs(out)
	return out
}

func sortJobs(jobs []Job) {
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
}

// Stats summarizes a sample of CPU times.
type Stats struct {
	N            int
	Mean, Median float64
	P99          float64
	Max          float64
	ShortFrac    float64 // fraction under 10 seconds
}

// Summarize computes sample statistics.
func Summarize(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	var sum float64
	short := 0
	for _, v := range cp {
		sum += v
		if v < 10 {
			short++
		}
	}
	return Stats{
		N:         len(cp),
		Mean:      sum / float64(len(cp)),
		Median:    cp[len(cp)/2],
		P99:       cp[int(float64(len(cp))*0.99)],
		Max:       cp[len(cp)-1],
		ShortFrac: float64(short) / float64(len(cp)),
	}
}
