package workload

import (
	"testing"
	"time"
)

func TestCPUTimeModelShape(t *testing.T) {
	m := NewCPUTimeModel(7)
	samples := m.SampleN(50000)
	stats := Summarize(samples)
	if stats.N != 50000 {
		t.Fatalf("n = %d", stats.N)
	}
	// The Figure 9 shape: most runs are a few seconds...
	if stats.ShortFrac < 0.5 {
		t.Errorf("short fraction = %v, want a majority under 10s", stats.ShortFrac)
	}
	if stats.Median > 60 {
		t.Errorf("median = %v, want seconds-scale", stats.Median)
	}
	// ...with a heavy tail extending past 10^5 seconds (the paper reports
	// observations beyond 10^6; at 50k samples 10^5 is a safe floor).
	if stats.Max < 1e5 {
		t.Errorf("max = %v, tail too short", stats.Max)
	}
	if stats.Max > 2e6 {
		t.Errorf("max = %v, cap violated", stats.Max)
	}
	// Mean far above median marks the skew.
	if stats.Mean < 5*stats.Median {
		t.Errorf("mean %v / median %v: distribution not skewed enough", stats.Mean, stats.Median)
	}
}

func TestCPUTimeModelDeterministic(t *testing.T) {
	a := NewCPUTimeModel(3).SampleN(100)
	b := NewCPUTimeModel(3).SampleN(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewCPUTimeModel(4).SampleN(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(1, nil); err == nil {
		t.Error("empty tool list should fail")
	}
	g, err := NewGenerator(0, []string{"spice"})
	if err != nil {
		t.Fatal(err)
	}
	if g == nil {
		t.Fatal("nil generator")
	}
}

func TestBackgroundJobs(t *testing.T) {
	g, err := NewGenerator(5, []string{"spice", "matlab"})
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Background(100, time.Second)
	if len(jobs) != 100 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	var prev time.Duration
	tools := map[string]int{}
	ids := map[int]bool{}
	for _, j := range jobs {
		if j.Submit < prev {
			t.Fatal("arrivals not ordered")
		}
		prev = j.Submit
		tools[j.Tool]++
		if ids[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		ids[j.ID] = true
		if j.CPUSeconds <= 0 {
			t.Fatal("non-positive cpu time")
		}
	}
	if len(tools) != 2 {
		t.Errorf("tools used = %v", tools)
	}
}

func TestBurstLocality(t *testing.T) {
	g, err := NewGenerator(5, []string{"spice"})
	if err != nil {
		t.Fatal(err)
	}
	jobs := g.Burst(BurstSpec{
		Tool: "tsuprem4", Students: 30, Runs: 4,
		Think: time.Minute, Group: "ece", Start: time.Hour,
	})
	if len(jobs) != 120 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.Tool != "tsuprem4" || j.Group != "ece" {
			t.Fatalf("job %d = %+v", i, j)
		}
		if j.Submit < time.Hour {
			t.Fatalf("job %d before burst start", i)
		}
		if i > 0 && jobs[i-1].Submit > j.Submit {
			t.Fatal("burst not submit-ordered")
		}
		// Homework runs are short.
		if j.CPUSeconds > 3600 {
			t.Errorf("homework run of %v seconds", j.CPUSeconds)
		}
	}
}

func TestMergeOrdersStreams(t *testing.T) {
	g, err := NewGenerator(9, []string{"spice"})
	if err != nil {
		t.Fatal(err)
	}
	bg := g.Background(50, time.Second)
	burst := g.Burst(BurstSpec{Tool: "matlab", Students: 5, Runs: 2, Think: time.Second})
	merged := Merge(bg, burst)
	if len(merged) != 60 {
		t.Fatalf("merged = %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Submit > merged[i].Submit {
			t.Fatal("merge not ordered")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPaperScaleSample(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale sampling in short mode")
	}
	m := NewCPUTimeModel(1)
	samples := m.SampleN(PaperRunCount)
	if len(samples) != 236222 {
		t.Fatalf("n = %d", len(samples))
	}
	stats := Summarize(samples)
	if stats.Max < 5e5 {
		t.Errorf("paper-scale max = %v, want tail past 5e5", stats.Max)
	}
}
