package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Bench is the machine-readable form of one benchmark's plotted series —
// the BENCH_<name>.json shape actyp-bench emits with -json, consumed by
// the perf-trajectory tooling. Units live in the axis labels so the file
// is self-describing.
type Bench struct {
	Benchmark string   `json:"benchmark"`
	XLabel    string   `json:"xLabel"`
	YLabel    string   `json:"yLabel"`
	Series    []Series `json:"series"`
}

// WriteBench writes the benchmark result as indented JSON.
func WriteBench(w io.Writer, b Bench) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("metrics: encode %s: %w", b.Benchmark, err)
	}
	return nil
}

// WriteBenchFile writes the benchmark result to path, atomically enough
// for CI artifact collection (full truncate-and-write).
func WriteBenchFile(path string, b Bench) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := WriteBench(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
