package metrics

import "sync/atomic"

// Priority classes for overload accounting, aligned with the wire
// package's lane values (control=0, lease=1, bulk=2) so a lane can be
// used as a class index directly.
const (
	ClassControl = iota
	ClassLease
	ClassBulk
	NumClasses
)

// ClassNames maps a class index to its display name.
var ClassNames = [NumClasses]string{"control", "lease", "bulk"}

// overloadClass is one class's counter block, padded so neighbouring
// classes do not share a cache line under concurrent updates.
type overloadClass struct {
	admitted atomic.Int64
	shed     atomic.Int64
	expired  atomic.Int64
	done     atomic.Int64
	depth    atomic.Int64
	_        [24]byte // pad past a 64-byte line (5 × 8 bytes above)
}

// OverloadStats accumulates per-class overload-control counters: how many
// requests each priority class admitted, shed (admission or queue-full),
// expired (deadline passed before dispatch), and completed (goodput), plus
// a live queue-depth gauge per lane. All methods are safe for concurrent
// use and lock-free.
type OverloadStats struct {
	classes [NumClasses]overloadClass
}

// NewOverloadStats returns a zeroed stats block.
func NewOverloadStats() *OverloadStats { return &OverloadStats{} }

func (s *OverloadStats) class(c int) *overloadClass {
	if c < 0 || c >= NumClasses {
		c = ClassBulk
	}
	return &s.classes[c]
}

// Admitted counts one request of class c entering a lane queue.
func (s *OverloadStats) Admitted(c int) { s.class(c).admitted.Add(1) }

// Shed counts one request of class c rejected with Busy before occupying
// a worker (admission bucket empty or lane queue full).
func (s *OverloadStats) Shed(c int) { s.class(c).shed.Add(1) }

// Expired counts one request of class c dropped because its deadline
// passed before dispatch.
func (s *OverloadStats) Expired(c int) { s.class(c).expired.Add(1) }

// Done counts one request of class c whose handler completed: the
// goodput counter.
func (s *OverloadStats) Done(c int) { s.class(c).done.Add(1) }

// DepthAdd moves class c's live queue-depth gauge by delta (+1 on
// enqueue, -1 on dequeue).
func (s *OverloadStats) DepthAdd(c int, delta int64) { s.class(c).depth.Add(delta) }

// OverloadCounts is one class's counter snapshot.
type OverloadCounts struct {
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Expired  int64 `json:"expired"`
	Done     int64 `json:"done"`
	Depth    int64 `json:"depth"`
}

// Snapshot returns a consistent-enough copy of every class's counters
// (each counter is read atomically; the set is not a single atomic cut,
// which accounting dashboards do not need).
func (s *OverloadStats) Snapshot() [NumClasses]OverloadCounts {
	var out [NumClasses]OverloadCounts
	for i := range s.classes {
		c := &s.classes[i]
		out[i] = OverloadCounts{
			Admitted: c.admitted.Load(),
			Shed:     c.shed.Load(),
			Expired:  c.expired.Load(),
			Done:     c.done.Load(),
			Depth:    c.depth.Load(),
		}
	}
	return out
}
