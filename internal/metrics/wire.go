package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// wireCounter is one codec's byte/frame counter block. Wire bytes are
// what actually crossed the connection (length prefix included); raw
// bytes are what the same frames would have cost uncompressed, so
// raw/wire is the compression ratio (1.0 on uncompressed codecs).
type wireCounter struct {
	framesOut atomic.Int64
	framesIn  atomic.Int64
	bytesOut  atomic.Int64
	bytesIn   atomic.Int64
	rawOut    atomic.Int64
	rawIn     atomic.Int64
}

// WireStats accumulates per-codec wire accounting across every framer it
// is handed to (typically one instance per process, shared by all
// endpoints). All methods are safe for concurrent use.
type WireStats struct {
	m sync.Map // codec name -> *wireCounter
}

// NewWireStats returns an empty stats block.
func NewWireStats() *WireStats { return &WireStats{} }

func (s *WireStats) counter(codec string) *wireCounter {
	if c, ok := s.m.Load(codec); ok {
		return c.(*wireCounter)
	}
	c, _ := s.m.LoadOrStore(codec, &wireCounter{})
	return c.(*wireCounter)
}

// Sent records one frame written under the named codec: wire is the bytes
// that hit the connection, raw the uncompressed-equivalent size.
func (s *WireStats) Sent(codec string, wire, raw int) {
	c := s.counter(codec)
	c.framesOut.Add(1)
	c.bytesOut.Add(int64(wire))
	c.rawOut.Add(int64(raw))
}

// Received records one frame read under the named codec.
func (s *WireStats) Received(codec string, wire, raw int) {
	c := s.counter(codec)
	c.framesIn.Add(1)
	c.bytesIn.Add(int64(wire))
	c.rawIn.Add(int64(raw))
}

// WireCounts is one codec's snapshot.
type WireCounts struct {
	FramesOut int64 `json:"framesOut"`
	FramesIn  int64 `json:"framesIn"`
	BytesOut  int64 `json:"bytesOut"`
	BytesIn   int64 `json:"bytesIn"`
	RawOut    int64 `json:"rawOut"`
	RawIn     int64 `json:"rawIn"`
}

// Ratio returns the compression ratio raw/wire across both directions
// (1.0 when nothing traveled or the codec does not compress).
func (c WireCounts) Ratio() float64 {
	wire := c.BytesOut + c.BytesIn
	if wire == 0 {
		return 1
	}
	return float64(c.RawOut+c.RawIn) / float64(wire)
}

// Snapshot returns a copy of every codec's counters (each counter read
// atomically; the set is not a single atomic cut).
func (s *WireStats) Snapshot() map[string]WireCounts {
	out := make(map[string]WireCounts)
	s.m.Range(func(k, v any) bool {
		c := v.(*wireCounter)
		out[k.(string)] = WireCounts{
			FramesOut: c.framesOut.Load(),
			FramesIn:  c.framesIn.Load(),
			BytesOut:  c.bytesOut.Load(),
			BytesIn:   c.bytesIn.Load(),
			RawOut:    c.rawOut.Load(),
			RawIn:     c.rawIn.Load(),
		}
		return true
	})
	return out
}

// String renders the snapshot one codec per line, sorted by name, in the
// shape actypd logs at shutdown.
func (s *WireStats) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte('\n')
		}
		c := snap[name]
		fmt.Fprintf(&b, "codec %s: out %d frames / %d B, in %d frames / %d B, ratio %.2fx",
			name, c.FramesOut, c.BytesOut, c.FramesIn, c.BytesIn, c.Ratio())
	}
	return b.String()
}
