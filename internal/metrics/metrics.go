// Package metrics provides the measurement plumbing for the controlled
// experiments of Section 7: concurrency-safe response-time recorders,
// percentile summaries, fixed-bucket histograms (for the Figure 9 CPU-time
// distribution), and a plain-text series printer that emits the rows each
// figure plots.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// recorderStripes is the fixed number of independently locked sample
// buffers in a Recorder; a power of two so the stripe pick is one mask.
const recorderStripes = 32

// recorderStripe is one independently locked sample buffer, padded out so
// neighbouring stripes do not share a cache line.
type recorderStripe struct {
	mu      sync.Mutex
	samples []time.Duration
	_       [88]byte // pad past a 64-byte line (mutex 8 + slice header 24)
}

// Recorder accumulates duration samples. Record spreads appends over a
// fixed set of striped buffers (picked by one atomic increment), so the
// closed-loop experiment drivers' clients stop contending on a single
// mutex at high client counts; snapshot reads (Count, Mean, Percentile,
// ...) merge the stripes.
type Recorder struct {
	seq     atomic.Uint64
	stripes [recorderStripes]recorderStripe
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record adds one sample.
func (r *Recorder) Record(d time.Duration) {
	s := &r.stripes[r.seq.Add(1)&(recorderStripes-1)]
	s.mu.Lock()
	s.samples = append(s.samples, d)
	s.mu.Unlock()
}

// merged returns a copy of all samples across stripes, in no particular
// order.
func (r *Recorder) merged() []time.Duration {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.samples)
		s.mu.Unlock()
	}
	out := make([]time.Duration, 0, n)
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		out = append(out, s.samples...)
		s.mu.Unlock()
	}
	return out
}

// Count returns the number of samples.
func (r *Recorder) Count() int {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		n += len(s.samples)
		s.mu.Unlock()
	}
	return n
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (r *Recorder) Mean() time.Duration {
	samples := r.merged()
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return sum / time.Duration(len(samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (r *Recorder) Percentile(p float64) time.Duration {
	if p <= 0 {
		return 0
	}
	sorted := r.merged()
	if len(sorted) == 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Min and Max return the extremes, or 0 with no samples.
func (r *Recorder) Min() time.Duration { return r.extreme(true) }

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration { return r.extreme(false) }

func (r *Recorder) extreme(min bool) time.Duration {
	samples := r.merged()
	if len(samples) == 0 {
		return 0
	}
	out := samples[0]
	for _, d := range samples[1:] {
		if (min && d < out) || (!min && d > out) {
			out = d
		}
	}
	return out
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		s.samples = s.samples[:0]
		s.mu.Unlock()
	}
}

// Summary is a one-line digest of a recorder.
func (r *Recorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v",
		r.Count(), r.Mean(), r.Percentile(50), r.Percentile(95), r.Max())
}

// Histogram counts float64 observations in uniform buckets over [Lo, Hi);
// out-of-range values land in the first or last bucket. Figure 9 uses it
// for CPU-time distributions.
type Histogram struct {
	Lo, Hi float64
	counts []int
	mu     sync.Mutex
	n      int
	sum    float64
}

// NewHistogram builds a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("metrics: histogram needs positive bucket count")
	}
	if hi <= lo {
		return nil, fmt.Errorf("metrics: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, buckets)}, nil
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Buckets returns (lower-edge, count) pairs.
func (h *Histogram) Buckets() []struct {
	Edge  float64
	Count int
} {
	h.mu.Lock()
	defer h.mu.Unlock()
	width := (h.Hi - h.Lo) / float64(len(h.counts))
	out := make([]struct {
		Edge  float64
		Count int
	}, len(h.counts))
	for i, c := range h.counts {
		out[i].Edge = h.Lo + float64(i)*width
		out[i].Count = c
	}
	return out
}

// PeakBucket returns the lower edge and count of the fullest bucket.
func (h *Histogram) PeakBucket() (edge float64, count int) {
	for _, b := range h.Buckets() {
		if b.Count > count {
			edge, count = b.Edge, b.Count
		}
	}
	return edge, count
}

// Series is a named list of (x, y) points — one plotted line of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table prints one or more series sharing an x-axis as an aligned text
// table: the regenerated figure data. Missing points print as "-".
func Table(w io.Writer, title, xLabel, yLabel string, series []Series) error {
	if _, err := fmt.Fprintf(w, "# %s\n# y: %s\n", title, yLabel); err != nil {
		return err
	}
	// Collect the union of x values.
	xsSeen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			xsSeen[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSeen))
	for x := range xsSeen {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := []string{xLabel}
	for _, s := range series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			val := "-"
			for _, p := range s.Points {
				if p.X == x {
					val = trimFloat(p.Y)
					break
				}
			}
			row = append(row, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.4g", f)
}

// Monotone reports whether the series' y values never increase (dir < 0)
// or never decrease (dir > 0) beyond the tolerance fraction tol — the
// shape checks the experiment tests assert.
func (s *Series) Monotone(dir int, tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1].Y, s.Points[i].Y
		slack := tol * math.Max(math.Abs(prev), math.Abs(cur))
		if dir < 0 && cur > prev+slack {
			return false
		}
		if dir > 0 && cur < prev-slack {
			return false
		}
	}
	return true
}
