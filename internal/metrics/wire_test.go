package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestWireStatsCounts(t *testing.T) {
	var s WireStats
	s.Sent("binary2+flate", 100, 400)
	s.Sent("binary2+flate", 50, 100)
	s.Received("binary2+flate", 30, 60)
	s.Sent("json", 80, 80)

	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d codecs, want 2", len(snap))
	}
	c := snap["binary2+flate"]
	if c.FramesOut != 2 || c.BytesOut != 150 || c.RawOut != 500 {
		t.Errorf("out counts: %+v", c)
	}
	if c.FramesIn != 1 || c.BytesIn != 30 || c.RawIn != 60 {
		t.Errorf("in counts: %+v", c)
	}
	// ratio = (500+60)/(150+30)
	if got := c.Ratio(); got < 3.1 || got > 3.2 {
		t.Errorf("ratio = %v", got)
	}
	if got := snap["json"].Ratio(); got != 1 {
		t.Errorf("uncompressed ratio = %v, want 1", got)
	}
	if got := (WireCounts{}).Ratio(); got != 1 {
		t.Errorf("zero-traffic ratio = %v, want 1", got)
	}
}

func TestWireStatsString(t *testing.T) {
	var s WireStats
	if s.String() != "" {
		t.Errorf("empty stats render %q, want empty", s.String())
	}
	s.Sent("json", 10, 10)
	s.Sent("binary2", 20, 20)
	out := s.String()
	lines := strings.Split(out, "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "codec binary2:") || !strings.HasPrefix(lines[1], "codec json:") {
		t.Errorf("render not sorted one-per-line:\n%s", out)
	}
}

func TestWireStatsConcurrent(t *testing.T) {
	var s WireStats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Sent("binary2", 10, 10)
				s.Received("binary2", 5, 5)
			}
		}()
	}
	wg.Wait()
	c := s.Snapshot()["binary2"]
	if c.FramesOut != 8000 || c.FramesIn != 8000 || c.BytesOut != 80000 || c.BytesIn != 40000 {
		t.Errorf("lost updates: %+v", c)
	}
}
