package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 || r.Percentile(50) != 0 {
		t.Error("empty recorder should be all zeros")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		r.Record(d * time.Millisecond)
	}
	if r.Count() != 5 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Mean() != 30*time.Millisecond {
		t.Errorf("mean = %v", r.Mean())
	}
	if r.Min() != 10*time.Millisecond || r.Max() != 50*time.Millisecond {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if got := r.Percentile(50); got != 30*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(100); got != 50*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Percentile(200); got != 50*time.Millisecond {
		t.Errorf("p>100 should clamp, got %v", got)
	}
	if !strings.Contains(r.Summary(), "n=5") {
		t.Errorf("summary = %q", r.Summary())
	}
	r.Reset()
	if r.Count() != 0 {
		t.Error("reset failed")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestHistogram(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("hi <= lo should fail")
	}
	h, err := NewHistogram(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{5, 15, 15, 95, -3, 250} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	buckets := h.Buckets()
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	// -3 clamps into bucket 0 alongside 5; 250 clamps into the last.
	if buckets[0].Count != 2 {
		t.Errorf("bucket 0 = %d", buckets[0].Count)
	}
	if buckets[1].Count != 2 {
		t.Errorf("bucket 1 = %d", buckets[1].Count)
	}
	if buckets[9].Count != 2 {
		t.Errorf("bucket 9 = %d", buckets[9].Count)
	}
	edge, count := h.PeakBucket()
	if count != 2 || edge != 0 {
		t.Errorf("peak = (%v, %d)", edge, count)
	}
	wantMean := (5.0 + 15 + 15 + 95 - 3 + 250) / 6
	if got := h.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}
}

func TestSeriesAndTable(t *testing.T) {
	s1 := Series{Label: "clients=8"}
	s1.Add(2, 1.2)
	s1.Add(4, 0.8)
	s2 := Series{Label: "clients=16"}
	s2.Add(2, 1.9)
	s2.Add(8, 0.5)

	var buf bytes.Buffer
	if err := Table(&buf, "Fig 4", "pools", "response (s)", []Series{s1, s2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# Fig 4", "pools\tclients=8\tclients=16", "2\t1.2\t1.9", "4\t0.8\t-", "8\t-\t0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesMonotone(t *testing.T) {
	dec := Series{Label: "d"}
	for i, y := range []float64{10, 8, 6, 5, 5.1} {
		dec.Add(float64(i), y)
	}
	if !dec.Monotone(-1, 0.05) {
		t.Error("near-monotone decreasing series rejected at 5% tolerance")
	}
	if dec.Monotone(-1, 0) {
		t.Error("strictly checking should catch the 5->5.1 bump")
	}
	inc := Series{Label: "i"}
	for i, y := range []float64{1, 2, 3, 10} {
		inc.Add(float64(i), y)
	}
	if !inc.Monotone(1, 0) {
		t.Error("increasing series rejected")
	}
	if inc.Monotone(-1, 0.1) {
		t.Error("increasing series accepted as decreasing")
	}
}

// Property: the recorder mean is always between min and max.
func TestRecorderMeanBoundedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v) * time.Microsecond)
		}
		m := r.Mean()
		return m >= r.Min() && m <= r.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram counts always sum to the number of observations.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vals []int16) bool {
		h, err := NewHistogram(-100, 100, 7)
		if err != nil {
			return false
		}
		for _, v := range vals {
			h.Observe(float64(v))
		}
		sum := 0
		for _, b := range h.Buckets() {
			sum += b.Count
		}
		return sum == len(vals) && h.Count() == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
