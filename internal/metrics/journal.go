package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// JournalStats accumulates durability-subsystem counters: the write-ahead
// journal's append volume, fsync latency, snapshot and compaction
// activity, and the replay/recovery outcome of the last boot. All methods
// are safe for concurrent use and lock-free; a nil receiver is a no-op on
// every method, so call sites never need a guard.
type JournalStats struct {
	records   atomic.Int64 // framed records appended
	bytes     atomic.Int64 // bytes appended (frame included)
	events    atomic.Int64 // registry events journaled (pre-batching)
	leaseOps  atomic.Int64 // lease-op records appended
	fsyncs    atomic.Int64 // fsync calls issued
	fsyncNS   atomic.Int64 // cumulative fsync wall time
	rotations atomic.Int64 // segment rotations
	snapshots atomic.Int64 // snapshots completed
	compacted atomic.Int64 // segments deleted by compaction
	resyncs   atomic.Int64 // watch-ring overflows journaled

	replayNS       atomic.Int64 // last boot's replay wall time
	replayRecords  atomic.Int64 // records replayed on the last boot
	replaySegments atomic.Int64 // segments replayed on the last boot
	replayTorn     atomic.Int64 // torn tail records dropped on the last boot
	replayCorrupt  atomic.Int64 // mid-log corrupt records skipped on the last boot

	leasesRestored atomic.Int64 // live leases re-adopted by recovery
	leasesReaped   atomic.Int64 // dead-holder leases reaped by recovery
}

// NewJournalStats returns a zeroed stats block.
func NewJournalStats() *JournalStats { return &JournalStats{} }

// Appended counts one framed record of n bytes reaching the segment.
func (s *JournalStats) Appended(n int) {
	if s == nil {
		return
	}
	s.records.Add(1)
	s.bytes.Add(int64(n))
}

// Events counts n registry events folded into an appended batch record.
func (s *JournalStats) Events(n int) {
	if s != nil {
		s.events.Add(int64(n))
	}
}

// LeaseOp counts one lease-op record.
func (s *JournalStats) LeaseOp() {
	if s != nil {
		s.leaseOps.Add(1)
	}
}

// Fsync records one fsync and its wall time.
func (s *JournalStats) Fsync(d time.Duration) {
	if s == nil {
		return
	}
	s.fsyncs.Add(1)
	s.fsyncNS.Add(int64(d))
}

// Rotated counts one segment rotation.
func (s *JournalStats) Rotated() {
	if s != nil {
		s.rotations.Add(1)
	}
}

// Snapshotted counts one completed snapshot.
func (s *JournalStats) Snapshotted() {
	if s != nil {
		s.snapshots.Add(1)
	}
}

// Compacted counts n segments deleted once a snapshot covered them.
func (s *JournalStats) Compacted(n int) {
	if s != nil {
		s.compacted.Add(int64(n))
	}
}

// Resync counts one watch-ring overflow journaled as a resync marker.
func (s *JournalStats) Resync() {
	if s != nil {
		s.resyncs.Add(1)
	}
}

// Replayed records the last boot's replay outcome.
func (s *JournalStats) Replayed(d time.Duration, records, segments, torn, corrupt int) {
	if s == nil {
		return
	}
	s.replayNS.Store(int64(d))
	s.replayRecords.Store(int64(records))
	s.replaySegments.Store(int64(segments))
	s.replayTorn.Store(int64(torn))
	s.replayCorrupt.Store(int64(corrupt))
}

// Recovered records the recovery reconciliation outcome.
func (s *JournalStats) Recovered(restored, reaped int) {
	if s == nil {
		return
	}
	s.leasesRestored.Store(int64(restored))
	s.leasesReaped.Store(int64(reaped))
}

// JournalCounts is a point-in-time copy of the counters.
type JournalCounts struct {
	Records, Bytes, Events, LeaseOps         int64
	Fsyncs                                   int64
	FsyncTotal                               time.Duration
	Rotations, Snapshots, Compacted, Resyncs int64
	ReplayDuration                           time.Duration
	ReplayRecords, ReplaySegments            int64
	ReplayTorn, ReplayCorrupt                int64
	LeasesRestored, LeasesReaped             int64
}

// Snapshot returns a consistent-enough copy for logging (each counter is
// read atomically; the set is not a single atomic cut).
func (s *JournalStats) Snapshot() JournalCounts {
	if s == nil {
		return JournalCounts{}
	}
	return JournalCounts{
		Records:        s.records.Load(),
		Bytes:          s.bytes.Load(),
		Events:         s.events.Load(),
		LeaseOps:       s.leaseOps.Load(),
		Fsyncs:         s.fsyncs.Load(),
		FsyncTotal:     time.Duration(s.fsyncNS.Load()),
		Rotations:      s.rotations.Load(),
		Snapshots:      s.snapshots.Load(),
		Compacted:      s.compacted.Load(),
		Resyncs:        s.resyncs.Load(),
		ReplayDuration: time.Duration(s.replayNS.Load()),
		ReplayRecords:  s.replayRecords.Load(),
		ReplaySegments: s.replaySegments.Load(),
		ReplayTorn:     s.replayTorn.Load(),
		ReplayCorrupt:  s.replayCorrupt.Load(),
		LeasesRestored: s.leasesRestored.Load(),
		LeasesReaped:   s.leasesReaped.Load(),
	}
}

// MeanFsync returns the average fsync latency (0 with no fsyncs).
func (c JournalCounts) MeanFsync() time.Duration {
	if c.Fsyncs == 0 {
		return 0
	}
	return c.FsyncTotal / time.Duration(c.Fsyncs)
}

// String summarizes the counters for shutdown logs.
func (c JournalCounts) String() string {
	return fmt.Sprintf(
		"records=%d bytes=%d events=%d leaseOps=%d fsyncs=%d fsyncMean=%s rotations=%d snapshots=%d compacted=%d resyncs=%d replay=%s/%drec restored=%d reaped=%d",
		c.Records, c.Bytes, c.Events, c.LeaseOps, c.Fsyncs, c.MeanFsync(),
		c.Rotations, c.Snapshots, c.Compacted, c.Resyncs,
		c.ReplayDuration, c.ReplayRecords, c.LeasesRestored, c.LeasesReaped)
}
