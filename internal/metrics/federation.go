package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// FederationStats accounts the federated-resolution fast path: concurrent
// peer delegation (fan-outs, wins, hedges, cancelled losers) and the
// remote change-stream subscription (watch events and resyncs received).
// Global counters are lock-free atomics; per-peer counters live behind a
// sync.Map so the delegation hot path never contends on a shared mutex.
// All methods are safe for concurrent use and tolerate a nil receiver, so
// call sites do not branch on whether accounting is enabled.
type FederationStats struct {
	fanouts        atomic.Int64
	wins           atomic.Int64
	hedges         atomic.Int64
	cancelled      atomic.Int64
	directed       atomic.Int64
	directedWins   atomic.Int64
	directedMisses atomic.Int64
	watchEvents    atomic.Int64
	watchResyncs   atomic.Int64
	watchPolls     atomic.Int64
	reconnects     atomic.Int64

	peers sync.Map // peer name -> *federationPeer
}

// federationPeer is one peer's counter block.
type federationPeer struct {
	forwards  atomic.Int64
	wins      atomic.Int64
	failures  atomic.Int64
	cancelled atomic.Int64
}

// NewFederationStats returns a zeroed stats block.
func NewFederationStats() *FederationStats { return &FederationStats{} }

func (s *FederationStats) peer(name string) *federationPeer {
	if p, ok := s.peers.Load(name); ok {
		return p.(*federationPeer)
	}
	p, _ := s.peers.LoadOrStore(name, &federationPeer{})
	return p.(*federationPeer)
}

// Fanout counts one concurrent delegation round (a local miss fanned out
// to more than one peer).
func (s *FederationStats) Fanout() {
	if s != nil {
		s.fanouts.Add(1)
	}
}

// Forwarded counts one branch launched toward the named peer (serial or
// concurrent).
func (s *FederationStats) Forwarded(peer string) {
	if s != nil {
		s.peer(peer).forwards.Add(1)
	}
}

// Win counts the named peer answering first with a usable lease.
func (s *FederationStats) Win(peer string) {
	if s != nil {
		s.wins.Add(1)
		s.peer(peer).wins.Add(1)
	}
}

// Failure counts the named peer's branch failing.
func (s *FederationStats) Failure(peer string) {
	if s != nil {
		s.peer(peer).failures.Add(1)
	}
}

// HedgeFired counts one staggered branch launched because the hedge delay
// elapsed without a winner.
func (s *FederationStats) HedgeFired() {
	if s != nil {
		s.hedges.Add(1)
	}
}

// LoserCancelled counts one branch outstanding toward the named peer when
// another branch won (its late lease, if any, is released).
func (s *FederationStats) LoserCancelled(peer string) {
	if s != nil {
		s.cancelled.Add(1)
		s.peer(peer).cancelled.Add(1)
	}
}

// Directed counts one domain-routed delegation: a query whose domain the
// ownership table resolved to a single peer, sent as one directed hop
// instead of a fan-out.
func (s *FederationStats) Directed(peer string) {
	if s != nil {
		s.directed.Add(1)
		s.peer(peer).forwards.Add(1)
	}
}

// DirectedWin counts a directed hop answered with a usable lease.
func (s *FederationStats) DirectedWin(peer string) {
	if s != nil {
		s.directedWins.Add(1)
		s.peer(peer).wins.Add(1)
	}
}

// DirectedMiss counts a directed hop that failed, dropping the query back
// to the local-then-fan-out path.
func (s *FederationStats) DirectedMiss(peer string) {
	if s != nil {
		s.directedMisses.Add(1)
		s.peer(peer).failures.Add(1)
	}
}

// WatchEvents counts n change-stream events received from a remote
// registry.
func (s *FederationStats) WatchEvents(n int) {
	if s != nil {
		s.watchEvents.Add(int64(n))
	}
}

// WatchResync counts one resync marker received (ring overflow or
// wholesale replacement upstream) forcing a full snapshot re-fetch.
func (s *FederationStats) WatchResync() {
	if s != nil {
		s.watchResyncs.Add(1)
	}
}

// WatchPoll counts one poll-fallback snapshot fetch (the remote peer does
// not speak the watch message, or watch mode is off).
func (s *FederationStats) WatchPoll() {
	if s != nil {
		s.watchPolls.Add(1)
	}
}

// WatchReconnect counts one watch stream lost and re-subscribed.
func (s *FederationStats) WatchReconnect() {
	if s != nil {
		s.reconnects.Add(1)
	}
}

// FederationPeerCounts is one peer's snapshot.
type FederationPeerCounts struct {
	Forwards  int64 `json:"forwards"`
	Wins      int64 `json:"wins"`
	Failures  int64 `json:"failures"`
	Cancelled int64 `json:"cancelled"`
}

// FederationSnapshot is a point-in-time copy of every counter.
type FederationSnapshot struct {
	Fanouts        int64                           `json:"fanouts"`
	Wins           int64                           `json:"wins"`
	Hedges         int64                           `json:"hedges"`
	Cancelled      int64                           `json:"cancelled"`
	Directed       int64                           `json:"directed"`
	DirectedWins   int64                           `json:"directedWins"`
	DirectedMisses int64                           `json:"directedMisses"`
	WatchEvents    int64                           `json:"watchEvents"`
	WatchResyncs   int64                           `json:"watchResyncs"`
	WatchPolls     int64                           `json:"watchPolls"`
	Reconnects     int64                           `json:"reconnects"`
	Peers          map[string]FederationPeerCounts `json:"peers,omitempty"`
}

// Snapshot copies every counter (each read atomically; the set is not a
// single atomic cut, which shutdown logs do not need).
func (s *FederationStats) Snapshot() FederationSnapshot {
	var out FederationSnapshot
	if s == nil {
		return out
	}
	out.Fanouts = s.fanouts.Load()
	out.Wins = s.wins.Load()
	out.Hedges = s.hedges.Load()
	out.Cancelled = s.cancelled.Load()
	out.Directed = s.directed.Load()
	out.DirectedWins = s.directedWins.Load()
	out.DirectedMisses = s.directedMisses.Load()
	out.WatchEvents = s.watchEvents.Load()
	out.WatchResyncs = s.watchResyncs.Load()
	out.WatchPolls = s.watchPolls.Load()
	out.Reconnects = s.reconnects.Load()
	s.peers.Range(func(k, v any) bool {
		if out.Peers == nil {
			out.Peers = make(map[string]FederationPeerCounts)
		}
		p := v.(*federationPeer)
		out.Peers[k.(string)] = FederationPeerCounts{
			Forwards:  p.forwards.Load(),
			Wins:      p.wins.Load(),
			Failures:  p.failures.Load(),
			Cancelled: p.cancelled.Load(),
		}
		return true
	})
	return out
}

// String renders the snapshot as the daemons' shutdown-log block: one
// aggregate line plus one line per peer, sorted by name.
func (s FederationSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fanouts=%d wins=%d hedges=%d cancelled=%d directed=%d/%d (%d miss) watch-events=%d resyncs=%d polls=%d reconnects=%d",
		s.Fanouts, s.Wins, s.Hedges, s.Cancelled, s.DirectedWins, s.Directed, s.DirectedMisses, s.WatchEvents, s.WatchResyncs, s.WatchPolls, s.Reconnects)
	names := make([]string, 0, len(s.Peers))
	for name := range s.Peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := s.Peers[name]
		fmt.Fprintf(&b, "\n  peer %-16s forwards=%d wins=%d failures=%d cancelled=%d",
			name, p.Forwards, p.Wins, p.Failures, p.Cancelled)
	}
	return b.String()
}
