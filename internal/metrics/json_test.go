package metrics

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func benchFixture() Bench {
	return Bench{
		Benchmark: "pipeline",
		XLabel:    "machines",
		YLabel:    "mean op (s)",
		Series: []Series{
			{Label: "oracle", Points: []Point{{X: 1000, Y: 0.01}, {X: 10000, Y: 0.1}}},
			{Label: "indexed", Points: []Point{{X: 1000, Y: 0.001}}},
		},
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBench(&buf, benchFixture()); err != nil {
		t.Fatal(err)
	}
	var got Bench
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if got.Benchmark != "pipeline" || len(got.Series) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Series[0].Label != "oracle" || got.Series[0].Points[1].Y != 0.1 {
		t.Fatalf("series mangled: %+v", got.Series)
	}
	// The shape is stable, lowercase, self-describing.
	for _, key := range []string{`"benchmark"`, `"xLabel"`, `"yLabel"`, `"series"`, `"label"`, `"points"`, `"x"`, `"y"`} {
		if !bytes.Contains(buf.Bytes(), []byte(key)) {
			t.Errorf("emitted JSON lacks %s:\n%s", key, buf.String())
		}
	}
}

func TestWriteBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	if err := WriteBenchFile(path, benchFixture()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Bench
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.XLabel != "machines" {
		t.Errorf("xLabel = %q", got.XLabel)
	}
}
