package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func service(t *testing.T) *Service {
	t.Helper()
	s := NewService(0.2)
	for _, m := range PunchModels() {
		if err := s.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestModelValidate(t *testing.T) {
	bad := []*Model{
		{Tool: "", BaseCPU: 1},
		{Tool: "x", BaseCPU: 0},
		{Tool: "x", BaseCPU: 1, BaseMemory: -1},
		{Tool: "x", BaseCPU: 1, MemoryPerUnit: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good := &Model{Tool: "x", BaseCPU: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestPredictPowerLaw(t *testing.T) {
	s := service(t)
	small, err := s.Predict("tsuprem4", map[string]float64{"gridnodes": 100, "steps": 10})
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Predict("tsuprem4", map[string]float64{"gridnodes": 400, "steps": 10})
	if err != nil {
		t.Fatal(err)
	}
	// gridnodes exponent is 1.5: 4x nodes => 8x cpu.
	ratio := big.CPUSeconds / small.CPUSeconds
	if math.Abs(ratio-8) > 1e-9 {
		t.Errorf("cpu ratio = %v, want 8", ratio)
	}
	if big.MemoryMB <= small.MemoryMB {
		t.Error("memory should grow with gridnodes")
	}
}

func TestPredictMissingParamsAreNeutral(t *testing.T) {
	s := service(t)
	est, err := s.Predict("spice", nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.CPUSeconds != 2 { // BaseCPU with all-neutral terms
		t.Errorf("cpu = %v", est.CPUSeconds)
	}
}

func TestPredictErrors(t *testing.T) {
	s := service(t)
	if _, err := s.Predict("nosuchtool", nil); err == nil {
		t.Error("unknown tool should fail")
	}
	if _, err := s.Predict("spice", map[string]float64{"nodes": -5}); err == nil {
		t.Error("negative parameter should fail")
	}
	if _, err := s.Predict("spice", map[string]float64{"nodes": 0}); err == nil {
		t.Error("zero parameter should fail")
	}
}

func TestObserveCalibrates(t *testing.T) {
	s := service(t)
	params := map[string]float64{"nodes": 100, "timepoints": 1000}
	before, err := s.Predict("spice", params)
	if err != nil {
		t.Fatal(err)
	}
	// The real runs consistently take twice the prediction.
	for i := 0; i < 40; i++ {
		pred, _ := s.Predict("spice", params)
		if err := s.Observe("spice", params, pred.CPUSeconds*2); err != nil {
			t.Fatal(err)
		}
	}
	after, err := s.Predict("spice", params)
	if err != nil {
		t.Fatal(err)
	}
	if after.CPUSeconds < before.CPUSeconds*1.8 {
		t.Errorf("calibration too weak: %v -> %v", before.CPUSeconds, after.CPUSeconds)
	}
	corr, n := s.Correction("spice")
	if n != 40 || corr < 1.8 {
		t.Errorf("correction = %v after %d observations", corr, n)
	}
	// Unknown tools report the neutral correction.
	if c, n := s.Correction("ghost"); c != 1 || n != 0 {
		t.Errorf("ghost correction = %v, %d", c, n)
	}
}

func TestObserveErrors(t *testing.T) {
	s := service(t)
	if err := s.Observe("spice", nil, 0); err == nil {
		t.Error("zero observation should fail")
	}
	if err := s.Observe("ghost", nil, 10); err == nil {
		t.Error("unknown tool should fail")
	}
}

func TestToolsSorted(t *testing.T) {
	s := service(t)
	tools := s.Tools()
	if len(tools) != 6 {
		t.Fatalf("tools = %v", tools)
	}
	for i := 1; i < len(tools); i++ {
		if tools[i-1] >= tools[i] {
			t.Errorf("not sorted: %v", tools)
		}
	}
}

func TestRegisterCopiesModel(t *testing.T) {
	s := NewService(0)
	m := &Model{Tool: "x", BaseCPU: 1, CPUTerms: []Term{{Param: "p", Exponent: 1}}}
	if err := s.Register(m); err != nil {
		t.Fatal(err)
	}
	m.CPUTerms[0].Exponent = 99
	est, err := s.Predict("x", map[string]float64{"p": 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.CPUSeconds != 2 {
		t.Errorf("register aliased caller's terms: cpu = %v", est.CPUSeconds)
	}
}

// Property: prediction is monotone in every positive parameter with a
// positive exponent.
func TestPredictMonotoneProperty(t *testing.T) {
	s := service(t)
	f := func(a, b uint16) bool {
		x, y := float64(a%1000)+1, float64(b%1000)+1
		lo, hi := math.Min(x, y), math.Max(x, y)
		el, err1 := s.Predict("driftdiffusion", map[string]float64{"gridnodes": lo})
		eh, err2 := s.Predict("driftdiffusion", map[string]float64{"gridnodes": hi})
		if err1 != nil || err2 != nil {
			return false
		}
		return eh.CPUSeconds >= el.CPUSeconds && eh.MemoryMB >= el.MemoryMB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
