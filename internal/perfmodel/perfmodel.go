// Package perfmodel implements the performance-modeling service the
// application management component consults before composing a query
// (Section 3, Figure 2; references [14] and [18] of the paper): given a
// tool and its qualified input parameters, it predicts the CPU time and
// memory the run will need on a reference machine. Predictions calibrate
// themselves from observed run times with a per-tool exponentially
// weighted correction factor, standing in for the paper's learning-based
// predictor.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Estimate is a predicted resource demand for one run.
type Estimate struct {
	CPUSeconds float64 // on the reference machine (see Section 5.1 footnote)
	MemoryMB   float64
}

// Term is one multiplicative component of a tool model: the named
// parameter raised to a power and scaled.
type Term struct {
	Param    string  // qualified parameter name, e.g. "carriers"
	Exponent float64 // sensitivity of cost to this parameter
}

// Model predicts resource usage for one tool as
//
//	cpu = BaseCPU * prod_i (param_i ^ Exponent_i)
//	mem = BaseMemory + MemoryPerUnit * prod_i (param_i ^ MemExponent_i)
//
// which captures the polynomial cost models used for the PUNCH
// semiconductor-simulation tools (carriers, grid nodes, device size, ...).
type Model struct {
	Tool          string
	BaseCPU       float64 // seconds for a unit-parameter run
	CPUTerms      []Term
	BaseMemory    float64 // MB
	MemoryPerUnit float64
	MemTerms      []Term
}

// Validate checks the model is usable.
func (m *Model) Validate() error {
	if m.Tool == "" {
		return fmt.Errorf("perfmodel: model needs a tool name")
	}
	if m.BaseCPU <= 0 {
		return fmt.Errorf("perfmodel: model %s: BaseCPU must be positive", m.Tool)
	}
	if m.BaseMemory < 0 || m.MemoryPerUnit < 0 {
		return fmt.Errorf("perfmodel: model %s: memory coefficients must be non-negative", m.Tool)
	}
	return nil
}

// Service predicts and calibrates.
type Service struct {
	mu          sync.RWMutex
	models      map[string]*Model
	corrections map[string]float64 // tool -> multiplicative EWMA correction
	alpha       float64            // EWMA smoothing factor
	observed    map[string]int
}

// NewService returns a service with the given EWMA factor (0 < alpha <= 1;
// 0 defaults to 0.2).
func NewService(alpha float64) *Service {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &Service{
		models:      make(map[string]*Model),
		corrections: make(map[string]float64),
		alpha:       alpha,
		observed:    make(map[string]int),
	}
}

// Register installs or replaces a tool model.
func (s *Service) Register(m *Model) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cp := *m
	cp.CPUTerms = append([]Term(nil), m.CPUTerms...)
	cp.MemTerms = append([]Term(nil), m.MemTerms...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m.Tool] = &cp
	if _, ok := s.corrections[m.Tool]; !ok {
		s.corrections[m.Tool] = 1
	}
	return nil
}

// Tools lists registered tool names, sorted.
func (s *Service) Tools() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for t := range s.models {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Predict estimates the resource usage of a run. Missing parameters count
// as 1 (neutral); non-positive parameter values are rejected because the
// power model is undefined for them.
func (s *Service) Predict(tool string, params map[string]float64) (Estimate, error) {
	s.mu.RLock()
	m, ok := s.models[tool]
	corr := s.corrections[tool]
	s.mu.RUnlock()
	if !ok {
		return Estimate{}, fmt.Errorf("perfmodel: no model for tool %q", tool)
	}
	cpuProd, err := product(m.CPUTerms, params)
	if err != nil {
		return Estimate{}, fmt.Errorf("perfmodel: tool %s: %w", tool, err)
	}
	memProd, err := product(m.MemTerms, params)
	if err != nil {
		return Estimate{}, fmt.Errorf("perfmodel: tool %s: %w", tool, err)
	}
	return Estimate{
		CPUSeconds: m.BaseCPU * cpuProd * corr,
		MemoryMB:   m.BaseMemory + m.MemoryPerUnit*memProd,
	}, nil
}

// Observe feeds an actual run time back into the calibration loop: the
// tool's correction factor moves toward actual/predicted.
func (s *Service) Observe(tool string, params map[string]float64, actualCPUSeconds float64) error {
	if actualCPUSeconds <= 0 {
		return fmt.Errorf("perfmodel: observed cpu time must be positive")
	}
	pred, err := s.Predict(tool, params)
	if err != nil {
		return err
	}
	if pred.CPUSeconds <= 0 {
		return fmt.Errorf("perfmodel: prediction for %s is non-positive", tool)
	}
	ratio := actualCPUSeconds / pred.CPUSeconds
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corrections[tool] *= (1 - s.alpha) + s.alpha*ratio
	s.observed[tool]++
	return nil
}

// Correction returns the current calibration factor for a tool (1 when
// uncalibrated) and how many observations trained it.
func (s *Service) Correction(tool string) (float64, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.corrections[tool]
	if !ok {
		return 1, 0
	}
	return c, s.observed[tool]
}

func product(terms []Term, params map[string]float64) (float64, error) {
	out := 1.0
	for _, t := range terms {
		v, ok := params[t.Param]
		if !ok {
			continue // neutral
		}
		if v <= 0 {
			return 0, fmt.Errorf("parameter %s must be positive, got %v", t.Param, v)
		}
		out *= math.Pow(v, t.Exponent)
	}
	return out, nil
}

// PunchModels returns models for the engineering tools the paper's
// examples name (T-Suprem4 process simulation, SPICE circuit simulation,
// Monte Carlo and drift-diffusion carrier transport), with cost shapes
// plausible for each.
func PunchModels() []*Model {
	return []*Model{
		{
			Tool: "tsuprem4", BaseCPU: 20,
			CPUTerms:   []Term{{Param: "gridnodes", Exponent: 1.5}, {Param: "steps", Exponent: 1}},
			BaseMemory: 32, MemoryPerUnit: 0.5,
			MemTerms: []Term{{Param: "gridnodes", Exponent: 1}},
		},
		{
			Tool: "spice", BaseCPU: 2,
			CPUTerms:   []Term{{Param: "nodes", Exponent: 1.2}, {Param: "timepoints", Exponent: 1}},
			BaseMemory: 16, MemoryPerUnit: 0.1,
			MemTerms: []Term{{Param: "nodes", Exponent: 1}},
		},
		{
			Tool: "montecarlo", BaseCPU: 300,
			CPUTerms:   []Term{{Param: "carriers", Exponent: 1}, {Param: "devicesize", Exponent: 0.5}},
			BaseMemory: 64, MemoryPerUnit: 2,
			MemTerms: []Term{{Param: "carriers", Exponent: 0.5}},
		},
		{
			Tool: "driftdiffusion", BaseCPU: 60,
			CPUTerms:   []Term{{Param: "gridnodes", Exponent: 1.3}},
			BaseMemory: 48, MemoryPerUnit: 1,
			MemTerms: []Term{{Param: "gridnodes", Exponent: 1}},
		},
		{
			Tool: "matlab", BaseCPU: 5,
			CPUTerms:   []Term{{Param: "matrixdim", Exponent: 2}},
			BaseMemory: 64, MemoryPerUnit: 0.008,
			MemTerms: []Term{{Param: "matrixdim", Exponent: 2}},
		},
		{
			Tool: "minimos", BaseCPU: 45,
			CPUTerms:   []Term{{Param: "gridnodes", Exponent: 1.4}},
			BaseMemory: 40, MemoryPerUnit: 0.8,
			MemTerms: []Term{{Param: "gridnodes", Exponent: 1}},
		},
	}
}
