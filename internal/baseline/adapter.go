package baseline

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"actyp/internal/pool"
	"actyp/internal/query"
)

// Adapter exposes the centralized scheduler through the resource-pool
// allocation interface, realizing the paper's "system of systems" design
// (Section 6): the ActYP pipeline resolves a query down to the level of a
// local resource management system and then simply lets the local system
// take over. Registering an Adapter in the directory service under a pool
// name makes the baseline scheduler one more "resource pool" whose
// machines are managed elsewhere.
type Adapter struct {
	// ID is the pool-instance identifier the adapter registers under.
	ID string

	sched *Scheduler

	mu     sync.Mutex
	leases map[string]int // lease id -> baseline job id
	next   int
}

// NewAdapter wraps a scheduler.
func NewAdapter(id string, sched *Scheduler) (*Adapter, error) {
	if id == "" {
		return nil, fmt.Errorf("baseline: adapter needs an id")
	}
	if sched == nil {
		return nil, fmt.Errorf("baseline: adapter needs a scheduler")
	}
	return &Adapter{ID: id, sched: sched, leases: make(map[string]int)}, nil
}

// Allocate implements directory.Allocator by delegating to the local
// scheduler. The expected CPU time is read from the query's appl section
// so the scheduler can route the job to the right submit queue.
func (a *Adapter) Allocate(q *query.Query) (*pool.Lease, error) {
	expected := 1.0
	if cond, ok := q.Lookup(query.Key{Family: "punch", Class: query.ClassAppl, Name: "expectedcpuuse"}); ok && cond.IsNum {
		expected = cond.Num
	}
	placement, err := a.sched.Submit(q, expected)
	if err != nil {
		return nil, err
	}
	var keyBytes [16]byte
	if _, err := rand.Read(keyBytes[:]); err != nil {
		_ = a.sched.Complete(placement.JobID)
		return nil, fmt.Errorf("baseline: access key: %w", err)
	}
	a.mu.Lock()
	a.next++
	id := fmt.Sprintf("%s:%d", a.ID, a.next)
	a.leases[id] = placement.JobID
	a.mu.Unlock()
	return &pool.Lease{
		ID:        id,
		Machine:   placement.Machine,
		AccessKey: hex.EncodeToString(keyBytes[:]),
		Pool:      a.ID,
		Granted:   time.Now(),
	}, nil
}

// Release implements directory.Allocator.
func (a *Adapter) Release(leaseID string) error {
	a.mu.Lock()
	jobID, ok := a.leases[leaseID]
	if ok {
		delete(a.leases, leaseID)
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("baseline: unknown lease %s", leaseID)
	}
	return a.sched.Complete(jobID)
}
