package baseline

import (
	"sync"
	"testing"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

func fleetDB(t testing.TB, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func sunQuery(t testing.TB) *query.Query {
	t.Helper()
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("missing db should fail")
	}
	s, err := New(fleetDB(t, 2), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.QueueNames(); len(got) != 3 || got[0] != "short" {
		t.Errorf("default queues = %v", got)
	}
}

func TestRoute(t *testing.T) {
	s, err := New(fleetDB(t, 2), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[float64]string{
		5:     "short",
		59.99: "short",
		60:    "medium",
		3599:  "medium",
		3600:  "long",
		1e6:   "long",
	}
	for cpu, want := range cases {
		got, err := s.Route(cpu)
		if err != nil || got != want {
			t.Errorf("Route(%v) = %q, %v; want %q", cpu, got, err, want)
		}
	}
	// A gap in custom queues is an error.
	s2, err := New(fleetDB(t, 2), []Queue{{Name: "only", MinCPU: 10, MaxCPU: 20}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Route(5); err == nil {
		t.Error("unroutable cpu time should fail")
	}
}

func TestSubmitCompleteLifecycle(t *testing.T) {
	s, err := New(fleetDB(t, 4), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := sunQuery(t)
	p, err := s.Submit(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine == "" || p.Queue != "short" || p.JobID == 0 {
		t.Errorf("placement = %+v", p)
	}
	if s.Active() != 1 {
		t.Errorf("active = %d", s.Active())
	}
	util := s.Utilization()
	if len(util) != 1 || util[0].Jobs != 1 {
		t.Errorf("utilization = %v", util)
	}
	if err := s.Complete(p.JobID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(p.JobID); err == nil {
		t.Error("double complete should fail")
	}
	if s.Active() != 0 {
		t.Errorf("active after complete = %d", s.Active())
	}
}

func TestSubmitBalancesByLoad(t *testing.T) {
	s, err := New(fleetDB(t, 4), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := sunQuery(t)
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		p, err := s.Submit(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Machine]++
	}
	// Placement is load-based with per-CPU weighting (machines have 1-4
	// CPUs), so exact counts vary — but 8 jobs over 4 idle machines must
	// touch every machine at least once.
	if len(counts) != 4 {
		t.Errorf("jobs spread over %d machines, want 4: %v", len(counts), counts)
	}
}

func TestSubmitRespectsQueryAndCapacity(t *testing.T) {
	db := fleetDB(t, 1)
	s, err := New(db, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := query.ParseBasic("punch.rsrc.arch = hp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(hp, 10); err == nil {
		t.Error("no hp machines; submit should fail")
	}
	// Saturate the single machine: maxLoad = 2*cpus, jobs add 1/cpus each.
	q := sunQuery(t)
	placedAll := 0
	for i := 0; i < 100; i++ {
		if _, err := s.Submit(q, 10); err != nil {
			break
		}
		placedAll++
	}
	if placedAll == 0 || placedAll == 100 {
		t.Errorf("placed %d jobs; capacity limit not working", placedAll)
	}
}

func TestCentralLockSerializes(t *testing.T) {
	s, err := New(fleetDB(t, 64), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := sunQuery(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	placements := map[int]bool{}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p, err := s.Submit(q, 10)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				if placements[p.JobID] {
					t.Errorf("job id %d duplicated", p.JobID)
				}
				placements[p.JobID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if s.Active() != 80 {
		t.Errorf("active = %d", s.Active())
	}
}

func TestAdapterSystemOfSystems(t *testing.T) {
	s, err := New(fleetDB(t, 4), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAdapter("", s); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewAdapter("x", nil); err == nil {
		t.Error("nil scheduler should fail")
	}
	a, err := NewAdapter("pbs-cluster#0", s)
	if err != nil {
		t.Fatal(err)
	}
	q := sunQuery(t).Set("punch.appl.expectedcpuuse", query.EqNum(7200))
	lease, err := a.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Machine == "" || lease.AccessKey == "" || lease.Pool != "pbs-cluster#0" {
		t.Errorf("lease = %+v", lease)
	}
	if s.Active() != 1 {
		t.Errorf("scheduler active = %d", s.Active())
	}
	if err := a.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(lease.ID); err == nil {
		t.Error("double release should fail")
	}
	if s.Active() != 0 {
		t.Errorf("active after release = %d", s.Active())
	}
}
