// Package baseline implements a centralized, multi-queue cluster scheduler
// in the style of PBS, DQS and (Sun) Grid Engine, which Section 8 contrasts
// with ActYP: one central scheduler protected by one lock, with multiple
// submit queues that segregate jobs by expected run time (e.g. one queue
// for short jobs, another for large ones). It serves two purposes: it is
// the comparison baseline for the scalability benches, and it doubles as
// the "local resource management system" behind the system-of-systems
// delegation example (Section 6) — ActYP can resolve a query down to this
// scheduler and let it take over.
package baseline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

// Queue is one submit queue: jobs whose expected CPU time falls in
// [MinCPU, MaxCPU) are routed to it.
type Queue struct {
	Name   string
	MinCPU float64
	MaxCPU float64 // 0 means unbounded
}

// DefaultQueues mirrors a typical academic PBS deployment.
func DefaultQueues() []Queue {
	return []Queue{
		{Name: "short", MinCPU: 0, MaxCPU: 60},
		{Name: "medium", MinCPU: 60, MaxCPU: 3600},
		{Name: "long", MinCPU: 3600, MaxCPU: 0},
	}
}

// Placement is the scheduler's answer.
type Placement struct {
	Machine string
	Queue   string
	JobID   int
}

// Scheduler is the centralized baseline.
type Scheduler struct {
	db     *registry.DB
	queues []Queue

	mu      sync.Mutex // the central lock everything serializes on
	nextJob int
	placed  map[int]string // job id -> machine
	jobs    map[string]int // machine -> active jobs placed by this scheduler
	// ScanCost models the per-machine cost of the central scheduling
	// scan, matching the pool.Config knob so comparisons are fair.
	scanCost time.Duration
}

// New creates a scheduler over a shared white-pages database.
func New(db *registry.DB, queues []Queue, scanCost time.Duration) (*Scheduler, error) {
	if db == nil {
		return nil, fmt.Errorf("baseline: scheduler needs a database")
	}
	if len(queues) == 0 {
		queues = DefaultQueues()
	}
	return &Scheduler{
		db:       db,
		queues:   queues,
		placed:   make(map[int]string),
		jobs:     make(map[string]int),
		scanCost: scanCost,
	}, nil
}

// Route returns the queue a job of the given expected CPU time lands in.
func (s *Scheduler) Route(expectedCPU float64) (string, error) {
	for _, q := range s.queues {
		if expectedCPU >= q.MinCPU && (q.MaxCPU == 0 || expectedCPU < q.MaxCPU) {
			return q.Name, nil
		}
	}
	return "", fmt.Errorf("baseline: no queue accepts cpu=%v", expectedCPU)
}

// Submit schedules one job: it routes by expected CPU time, then — under
// the central lock — scans the entire machine database for the least
// loaded machine matching the query's rsrc constraints. This whole-database
// scan under one lock is precisely the bottleneck the ActYP pipeline
// removes.
func (s *Scheduler) Submit(q *query.Query, expectedCPU float64) (*Placement, error) {
	queueName, err := s.Route(expectedCPU)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	var bestName string
	bestLoad := 0.0
	scanned := 0
	s.db.Walk(func(m *registry.Machine) bool {
		scanned++
		if !m.Usable() {
			return true
		}
		if !m.Attrs().MatchRsrc(q) {
			return true
		}
		load := m.Dynamic.Load + float64(s.jobs[m.Static.Name])/float64(m.Static.CPUs)
		if load >= m.Static.MaxLoad {
			return true
		}
		if bestName == "" || load < bestLoad {
			bestName, bestLoad = m.Static.Name, load
		}
		return true
	})
	if s.scanCost > 0 {
		time.Sleep(s.scanCost * time.Duration(scanned))
	}
	if bestName == "" {
		return nil, fmt.Errorf("baseline: no machine available for queue %s", queueName)
	}
	s.nextJob++
	s.placed[s.nextJob] = bestName
	s.jobs[bestName]++
	return &Placement{Machine: bestName, Queue: queueName, JobID: s.nextJob}, nil
}

// Complete releases a placed job.
func (s *Scheduler) Complete(jobID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	machine, ok := s.placed[jobID]
	if !ok {
		return fmt.Errorf("baseline: job %d not placed", jobID)
	}
	delete(s.placed, jobID)
	if s.jobs[machine] > 0 {
		s.jobs[machine]--
	}
	return nil
}

// Active returns the number of running jobs.
func (s *Scheduler) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.placed)
}

// QueueNames lists the configured queues in routing order.
func (s *Scheduler) QueueNames() []string {
	out := make([]string, len(s.queues))
	for i, q := range s.queues {
		out[i] = q.Name
	}
	return out
}

// Utilization reports per-machine active job counts, sorted by machine.
func (s *Scheduler) Utilization() []struct {
	Machine string
	Jobs    int
} {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.jobs))
	for n := range s.jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Machine string
		Jobs    int
	}, 0, len(names))
	for _, n := range names {
		if s.jobs[n] == 0 {
			continue
		}
		out = append(out, struct {
			Machine string
			Jobs    int
		}{n, s.jobs[n]})
	}
	return out
}
