package vfs

import (
	"testing"
	"time"
)

func TestMountUnmountCycle(t *testing.T) {
	m := NewManager()
	m.SetClock(func() time.Time { return time.Unix(42, 0) })
	vol := Volume{Server: "warehouse", Export: "/apps/tsuprem4"}

	mt, err := m.MountVolume("m0001", vol, "sess-1")
	if err != nil {
		t.Fatal(err)
	}
	if mt.Machine != "m0001" || mt.Volume != vol || mt.Session != "sess-1" {
		t.Errorf("mount = %+v", mt)
	}
	if !mt.Created.Equal(time.Unix(42, 0)) {
		t.Errorf("created = %v", mt.Created)
	}
	if mt.Path == "" || mt.ID == "" {
		t.Error("mount needs a path and an id")
	}
	if m.Active() != 1 {
		t.Errorf("active = %d", m.Active())
	}

	// Double mount of the same volume on the same machine fails.
	if _, err := m.MountVolume("m0001", vol, "sess-2"); err == nil {
		t.Error("double mount should fail")
	}
	// Same volume on another machine is fine.
	if _, err := m.MountVolume("m0002", vol, "sess-1"); err != nil {
		t.Errorf("mount on second machine: %v", err)
	}

	if err := m.Unmount(mt.ID, "wrong-session"); err == nil {
		t.Error("foreign session unmount should fail")
	}
	if err := m.Unmount(mt.ID, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmount(mt.ID, "sess-1"); err == nil {
		t.Error("double unmount should fail")
	}
	// The volume can be mounted again after unmount.
	if _, err := m.MountVolume("m0001", vol, "sess-3"); err != nil {
		t.Errorf("remount: %v", err)
	}
}

func TestMountValidation(t *testing.T) {
	m := NewManager()
	bad := []struct {
		machine string
		v       Volume
	}{
		{"", Volume{Server: "s", Export: "/e"}},
		{"m", Volume{Server: "", Export: "/e"}},
		{"m", Volume{Server: "s", Export: ""}},
	}
	for _, tc := range bad {
		if _, err := m.MountVolume(tc.machine, tc.v, "s"); err == nil {
			t.Errorf("MountVolume(%q, %+v) should fail", tc.machine, tc.v)
		}
	}
}

func TestUnmountSession(t *testing.T) {
	m := NewManager()
	app := Volume{Server: "w", Export: "/apps/spice"}
	data := Volume{Server: "w", Export: "/home/kapadia"}
	if _, err := m.MountVolume("m1", app, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MountVolume("m1", data, "sess-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MountVolume("m1", Volume{Server: "w", Export: "/other"}, "sess-2"); err != nil {
		t.Fatal(err)
	}
	if n := m.UnmountSession("sess-1"); n != 2 {
		t.Errorf("unmounted %d, want 2", n)
	}
	if m.Active() != 1 {
		t.Errorf("active = %d, want 1", m.Active())
	}
	if n := m.UnmountSession("sess-1"); n != 0 {
		t.Errorf("second pass unmounted %d", n)
	}
}

func TestMountsOn(t *testing.T) {
	m := NewManager()
	if got := m.MountsOn("nowhere"); len(got) != 0 {
		t.Errorf("MountsOn empty machine = %v", got)
	}
	if _, err := m.MountVolume("m1", Volume{Server: "w", Export: "/a"}, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MountVolume("m1", Volume{Server: "w", Export: "/b"}, "s"); err != nil {
		t.Fatal(err)
	}
	got := m.MountsOn("m1")
	if len(got) != 2 {
		t.Fatalf("MountsOn = %d entries", len(got))
	}
	// Returned records are copies.
	got[0].Session = "mutated"
	again := m.MountsOn("m1")
	if again[0].Session == "mutated" {
		t.Error("MountsOn aliases internal state")
	}
}

func TestVolumeString(t *testing.T) {
	v := Volume{Server: "warehouse", Export: "/apps/x"}
	if v.String() != "warehouse:/apps/x" {
		t.Errorf("String = %q", v.String())
	}
}
