// Package vfs simulates the PUNCH Virtual File System mount manager
// (Section 2, reference [7]): before a run, the application and data disks
// are mounted onto the selected machine; after the run they are unmounted.
// Each machine runs a mount manager reachable at the port stored in field
// 15 of its white-pages record. This simulation preserves the lifecycle and
// failure modes (double mount, unmount of a foreign mount) without real NFS
// traffic.
package vfs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Volume identifies a remote disk to mount: the storage server exporting it
// and the exported path.
type Volume struct {
	Server string // storage service provider, e.g. "warehouse.example.net"
	Export string // exported path, e.g. "/apps/tsuprem4"
}

// String renders server:/export.
func (v Volume) String() string { return v.Server + ":" + v.Export }

// Mount is an active mount of a volume on a machine.
type Mount struct {
	ID      string    // unique handle returned to the desktop
	Machine string    // machine the volume is mounted on
	Volume  Volume    // what is mounted
	Path    string    // mount point on the machine
	Session string    // owning session (access-key scoped)
	Created time.Time // when the mount was established
}

// Manager is the grid-wide view of mount managers: one logical service that
// routes mount and unmount requests to per-machine state.
type Manager struct {
	mu     sync.Mutex
	nextID int
	mounts map[string]*Mount            // id -> mount
	byMach map[string]map[string]string // machine -> volume string -> mount id
	now    func() time.Time
}

// NewManager returns an empty mount manager.
func NewManager() *Manager {
	return &Manager{
		mounts: make(map[string]*Mount),
		byMach: make(map[string]map[string]string),
		now:    time.Now,
	}
}

// SetClock injects a time source for tests.
func (m *Manager) SetClock(now func() time.Time) { m.now = now }

// MountVolume mounts a volume on a machine for a session. Mounting the same
// volume twice on one machine fails, mirroring a real mount manager.
func (m *Manager) MountVolume(machine string, v Volume, session string) (*Mount, error) {
	if machine == "" || v.Server == "" || v.Export == "" {
		return nil, fmt.Errorf("vfs: mount needs machine, server and export")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	volKey := v.String()
	if m.byMach[machine] == nil {
		m.byMach[machine] = make(map[string]string)
	}
	if id, ok := m.byMach[machine][volKey]; ok {
		return nil, fmt.Errorf("vfs: %s already mounted on %s as %s", volKey, machine, id)
	}
	m.nextID++
	mt := &Mount{
		ID:      fmt.Sprintf("mnt-%06d", m.nextID),
		Machine: machine,
		Volume:  v,
		Path:    fmt.Sprintf("/punch/mnt/%06d", m.nextID),
		Session: session,
		Created: m.now(),
	}
	m.mounts[mt.ID] = mt
	m.byMach[machine][volKey] = mt.ID
	return cloneMount(mt), nil
}

// Unmount removes a mount by id. The session must match the mounting
// session, preventing one user from unmounting another's disks.
func (m *Manager) Unmount(id, session string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt, ok := m.mounts[id]
	if !ok {
		return fmt.Errorf("vfs: mount %s does not exist", id)
	}
	if mt.Session != session {
		return fmt.Errorf("vfs: mount %s belongs to session %s", id, mt.Session)
	}
	delete(m.mounts, id)
	delete(m.byMach[mt.Machine], mt.Volume.String())
	return nil
}

// UnmountSession removes every mount belonging to a session, returning how
// many were removed. The desktop calls this when a run completes.
func (m *Manager) UnmountSession(session string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, mt := range m.mounts {
		if mt.Session == session {
			delete(m.mounts, id)
			delete(m.byMach[mt.Machine], mt.Volume.String())
			n++
		}
	}
	return n
}

// MountsOn returns the active mounts on a machine, sorted by id.
func (m *Manager) MountsOn(machine string) []*Mount {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Mount
	for _, id := range sortedValues(m.byMach[machine]) {
		out = append(out, cloneMount(m.mounts[id]))
	}
	return out
}

// Active returns the total number of active mounts.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.mounts)
}

func cloneMount(mt *Mount) *Mount {
	c := *mt
	return &c
}

func sortedValues(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
