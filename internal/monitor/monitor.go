// Package monitor implements the ActYP resource monitoring service of
// Section 4.2: it keeps the dynamic fields 2–7 of every white-pages record
// fresh. The paper notes that almost any monitoring system can provide this
// functionality (PUNCH evaluated SGI's Performance Co-Pilot); here a
// pluggable Sampler abstraction stands in for the probe, and a synthetic
// sampler reproduces plausible load dynamics for controlled experiments.
package monitor

import (
	"math/rand"
	"sync"
	"time"

	"actyp/internal/registry"
)

// Sampler produces the next dynamic snapshot for one machine. prev is the
// snapshot currently in the database.
type Sampler interface {
	Sample(machine string, prev registry.Dynamic, now time.Time) registry.Dynamic
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func(machine string, prev registry.Dynamic, now time.Time) registry.Dynamic

// Sample calls f.
func (f SamplerFunc) Sample(machine string, prev registry.Dynamic, now time.Time) registry.Dynamic {
	return f(machine, prev, now)
}

// SyntheticSampler random-walks machine load and derives memory pressure
// from it, emulating the background activity of a shared workstation fleet.
// It is deterministic for a given seed and machine name.
type SyntheticSampler struct {
	mu   sync.Mutex
	rngs map[string]*rand.Rand
	seed int64

	// Volatility is the maximum per-sample load delta (default 0.25).
	Volatility float64
	// BaseMemory is the free memory of an idle machine in MB (default 512).
	BaseMemory float64
}

// NewSyntheticSampler returns a sampler with deterministic per-machine
// random streams derived from seed.
func NewSyntheticSampler(seed int64) *SyntheticSampler {
	return &SyntheticSampler{
		rngs:       make(map[string]*rand.Rand),
		seed:       seed,
		Volatility: 0.25,
		BaseMemory: 512,
	}
}

func (s *SyntheticSampler) rng(machine string) *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rngs[machine]
	if !ok {
		var h int64
		for _, c := range machine {
			h = h*131 + int64(c)
		}
		r = rand.New(rand.NewSource(s.seed ^ h))
		s.rngs[machine] = r
	}
	return r
}

// Sample random-walks the load in [0, 4] and scales free memory down as
// load rises. Jobs counted by the allocator are preserved.
func (s *SyntheticSampler) Sample(machine string, prev registry.Dynamic, now time.Time) registry.Dynamic {
	r := s.rng(machine)
	next := prev
	next.Load += (r.Float64()*2 - 1) * s.Volatility
	if next.Load < 0 {
		next.Load = 0
	}
	if next.Load > 4 {
		next.Load = 4
	}
	frac := 1 - next.Load/8 // even a loaded machine keeps half its memory
	next.FreeMemory = s.BaseMemory * frac
	next.FreeSwap = 2 * s.BaseMemory * frac
	next.LastUpdate = now
	next.ServiceFlag |= registry.FlagMonitorOK
	return next
}

// Config controls a Monitor.
type Config struct {
	DB       *registry.DB
	Sampler  Sampler
	Interval time.Duration // default 1s
	// Staleness, when positive, marks machines down if their LastUpdate
	// is older than this at sweep time (a missed-heartbeat policy).
	Staleness time.Duration
	// Now supplies the current time; defaults to time.Now. Tests inject a
	// fake clock here.
	Now func() time.Time
}

// Monitor periodically sweeps the database, refreshing fields 2–7 for every
// machine via the Sampler and optionally enforcing the staleness policy.
type Monitor struct {
	cfg    Config
	stop   chan struct{}
	done   chan struct{}
	mu     sync.Mutex
	sweeps int
	batch  []registry.DynamicUpdate // recycled across sweeps
}

// New creates a Monitor. DB and Sampler are required.
func New(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Monitor{cfg: cfg}
}

// Sweep performs one monitoring pass synchronously and returns the number
// of machines refreshed. Machines that are down stay down; the staleness
// policy can newly mark machines down. The samples are written through
// UpdateDynamicBatch in one call, so a fleet-wide sweep costs the store
// O(shards) lock acquisitions instead of one per machine — and the
// registry change stream carries one coalesced event per machine either
// way.
func (m *Monitor) Sweep() int {
	now := m.cfg.Now()
	var stale []string
	// The update buffer is recycled across sweeps; a concurrent Sweep
	// (tests drive them directly) simply allocates its own.
	m.mu.Lock()
	batch := m.batch[:0]
	m.batch = nil
	m.mu.Unlock()
	m.cfg.DB.Walk(func(rec *registry.Machine) bool {
		name := rec.Static.Name
		if m.cfg.Staleness > 0 && rec.State == registry.StateUp &&
			!rec.Dynamic.LastUpdate.IsZero() && now.Sub(rec.Dynamic.LastUpdate) > m.cfg.Staleness {
			stale = append(stale, name)
			return true
		}
		batch = append(batch, registry.DynamicUpdate{
			Name:    name,
			Dynamic: m.cfg.Sampler.Sample(name, rec.Dynamic, now),
		})
		return true
	})
	// Machines removed between the walk and the write are skipped by the
	// batch (and by SetState below); that is not a failure of the sweep.
	n := m.cfg.DB.UpdateDynamicBatch(batch)
	for _, name := range stale {
		_ = m.cfg.DB.SetState(name, registry.StateDown)
	}
	m.mu.Lock()
	m.sweeps++
	m.batch = batch[:0]
	m.mu.Unlock()
	return n
}

// Sweeps returns how many passes have completed.
func (m *Monitor) Sweeps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps
}

// Start launches the periodic sweep goroutine. It is an error to start a
// monitor twice without stopping it.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(m.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.Sweep()
			}
		}
	}()
}

// Stop halts the sweep goroutine and waits for it to exit.
func (m *Monitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
