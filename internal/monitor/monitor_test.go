package monitor

import (
	"sync"
	"testing"
	"time"

	"actyp/internal/registry"
)

func fleetDB(t *testing.T, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSyntheticSamplerBounds(t *testing.T) {
	s := NewSyntheticSampler(42)
	d := registry.Dynamic{Load: 2}
	for i := 0; i < 1000; i++ {
		d = s.Sample("m0000", d, time.Unix(int64(i), 0))
		if d.Load < 0 || d.Load > 4 {
			t.Fatalf("load %f out of bounds at step %d", d.Load, i)
		}
		if d.FreeMemory <= 0 || d.FreeMemory > s.BaseMemory {
			t.Fatalf("memory %f out of bounds", d.FreeMemory)
		}
		if d.ServiceFlag&registry.FlagMonitorOK == 0 {
			t.Fatal("monitor flag not set")
		}
	}
}

func TestSyntheticSamplerDeterministicPerMachine(t *testing.T) {
	a := NewSyntheticSampler(7)
	b := NewSyntheticSampler(7)
	da, db := registry.Dynamic{}, registry.Dynamic{}
	for i := 0; i < 50; i++ {
		da = a.Sample("m0001", da, time.Unix(int64(i), 0))
		db = b.Sample("m0001", db, time.Unix(int64(i), 0))
		if da.Load != db.Load {
			t.Fatalf("divergence at step %d: %f vs %f", i, da.Load, db.Load)
		}
	}
	// Different machines get different streams: over a long horizon the
	// load trajectories must diverge at least once (single steps can
	// coincide because load clamps at zero).
	dm1, dm2 := registry.Dynamic{Load: 2}, registry.Dynamic{Load: 2}
	diverged := false
	for i := 0; i < 100 && !diverged; i++ {
		dm1 = a.Sample("m0001x", dm1, time.Unix(int64(i), 0))
		dm2 = a.Sample("m0002y", dm2, time.Unix(int64(i), 0))
		diverged = dm1.Load != dm2.Load
	}
	if !diverged {
		t.Error("per-machine streams identical over 100 steps")
	}
}

func TestSweepUpdatesAllMachines(t *testing.T) {
	db := fleetDB(t, 25)
	now := time.Unix(100, 0)
	m := New(Config{
		DB:      db,
		Sampler: NewSyntheticSampler(1),
		Now:     func() time.Time { return now },
	})
	if n := m.Sweep(); n != 25 {
		t.Fatalf("swept %d machines, want 25", n)
	}
	db.Walk(func(rec *registry.Machine) bool {
		if !rec.Dynamic.LastUpdate.Equal(now) {
			t.Errorf("machine %s not refreshed", rec.Static.Name)
		}
		return true
	})
	if m.Sweeps() != 1 {
		t.Errorf("Sweeps = %d", m.Sweeps())
	}
}

func TestSweepStalenessMarksDown(t *testing.T) {
	db := fleetDB(t, 3)
	// All machines report LastUpdate = t0 (from fleet build). Sweep at
	// t0+10min with 1min staleness: everything goes down.
	m := New(Config{
		DB:        db,
		Sampler:   SamplerFunc(func(_ string, prev registry.Dynamic, _ time.Time) registry.Dynamic { return prev }),
		Staleness: time.Minute,
		Now:       func() time.Time { return time.Unix(600, 0) },
	})
	if n := m.Sweep(); n != 0 {
		t.Fatalf("stale machines should not be sampled, swept %d", n)
	}
	db.Walk(func(rec *registry.Machine) bool {
		if rec.State != registry.StateDown {
			t.Errorf("machine %s should be down", rec.Static.Name)
		}
		return true
	})
}

func TestSweepFreshMachinesSurviveStalenessPolicy(t *testing.T) {
	db := fleetDB(t, 3)
	m := New(Config{
		DB: db,
		Sampler: SamplerFunc(func(_ string, prev registry.Dynamic, now time.Time) registry.Dynamic {
			prev.LastUpdate = now
			return prev
		}),
		Staleness: time.Minute,
		Now:       func() time.Time { return time.Unix(30, 0) },
	})
	if n := m.Sweep(); n != 3 {
		t.Fatalf("swept %d, want 3", n)
	}
	db.Walk(func(rec *registry.Machine) bool {
		if rec.State != registry.StateUp {
			t.Errorf("machine %s should be up", rec.Static.Name)
		}
		return true
	})
}

func TestStartStop(t *testing.T) {
	db := fleetDB(t, 5)
	var mu sync.Mutex
	calls := 0
	m := New(Config{
		DB:       db,
		Interval: time.Millisecond,
		Sampler: SamplerFunc(func(_ string, prev registry.Dynamic, now time.Time) registry.Dynamic {
			mu.Lock()
			calls++
			mu.Unlock()
			prev.LastUpdate = now
			return prev
		}),
	})
	m.Start()
	m.Start() // double start is a no-op
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		c := calls
		mu.Unlock()
		if c >= 10 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("monitor never ran")
		case <-time.After(time.Millisecond):
		}
	}
	m.Stop()
	m.Stop() // double stop is a no-op
	mu.Lock()
	after := calls
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	final := calls
	mu.Unlock()
	if final != after {
		t.Errorf("monitor kept running after Stop: %d -> %d", after, final)
	}
}

func TestDefaultInterval(t *testing.T) {
	m := New(Config{DB: registry.NewDB(), Sampler: NewSyntheticSampler(1)})
	if m.cfg.Interval != time.Second {
		t.Errorf("default interval = %v", m.cfg.Interval)
	}
	if m.cfg.Now == nil {
		t.Error("default clock not set")
	}
}
