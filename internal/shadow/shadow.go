// Package shadow implements PUNCH shadow-account pools: per-machine sets of
// logical user accounts that are not tied to any individual user. ActYP
// allocates a shadow account uid on the selected compute server for each
// run and relinquishes it when the run completes (Section 2; the shadow
// account pool pointer is field 18 of the white-pages record).
package shadow

import (
	"fmt"
	"sort"
	"sync"
)

// Account is one shadow account on one machine.
type Account struct {
	Machine string // machine name
	User    string // account name, e.g. shadow03
	UID     int    // numeric uid
}

// Pool manages the shadow accounts of a single machine.
type Pool struct {
	machine string

	mu    sync.Mutex
	free  []Account          // LIFO free list
	inUse map[string]Account // user -> account
}

// NewPool creates a pool of n shadow accounts named shadow00..shadowNN with
// uids starting at baseUID.
func NewPool(machine string, n, baseUID int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shadow: pool for %s needs at least one account", machine)
	}
	if baseUID <= 0 {
		return nil, fmt.Errorf("shadow: pool for %s needs a positive base uid", machine)
	}
	p := &Pool{machine: machine, inUse: make(map[string]Account)}
	for i := n - 1; i >= 0; i-- { // reversed so shadow00 pops first
		p.free = append(p.free, Account{
			Machine: machine,
			User:    fmt.Sprintf("shadow%02d", i),
			UID:     baseUID + i,
		})
	}
	return p, nil
}

// Machine returns the machine this pool belongs to.
func (p *Pool) Machine() string { return p.machine }

// Allocate leases a shadow account. It fails when the pool is exhausted.
func (p *Pool) Allocate() (Account, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return Account{}, fmt.Errorf("shadow: pool for %s exhausted (%d in use)", p.machine, len(p.inUse))
	}
	a := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[a.User] = a
	return a, nil
}

// Release returns an account to the pool. Releasing an account that is not
// leased is an error (it indicates a double release or a forged lease).
func (p *Pool) Release(user string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.inUse[user]
	if !ok {
		return fmt.Errorf("shadow: account %s on %s is not allocated", user, p.machine)
	}
	delete(p.inUse, user)
	p.free = append(p.free, a)
	return nil
}

// Free returns how many accounts are available.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// InUse returns the leased account names, sorted.
func (p *Pool) InUse() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.inUse))
	for u := range p.inUse {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Manager is the secondary database referenced by field 18: it holds the
// shadow account pool of every machine in the grid. The machine -> pool
// lookup rides the allocate path of every single grant, so it lives in a
// sync.Map: reads are lock-free (no global RWMutex for hot fleets to pile
// up on), and the write-once-per-machine population pattern is exactly the
// access profile sync.Map is built for.
type Manager struct {
	pools sync.Map // machine name -> *Pool
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{}
}

// AddMachine creates a pool of n accounts for the machine. Adding a machine
// twice fails.
func (m *Manager) AddMachine(machine string, n, baseUID int) error {
	p, err := NewPool(machine, n, baseUID)
	if err != nil {
		return err
	}
	if _, loaded := m.pools.LoadOrStore(machine, p); loaded {
		return fmt.Errorf("shadow: machine %s already has a pool", machine)
	}
	return nil
}

// lookup resolves a machine's pool without locking.
func (m *Manager) lookup(machine string) (*Pool, bool) {
	v, ok := m.pools.Load(machine)
	if !ok {
		return nil, false
	}
	return v.(*Pool), true
}

// Allocate leases a shadow account on the machine.
func (m *Manager) Allocate(machine string) (Account, error) {
	p, ok := m.lookup(machine)
	if !ok {
		return Account{}, fmt.Errorf("shadow: machine %s has no shadow pool", machine)
	}
	return p.Allocate()
}

// Release returns a leased account.
func (m *Manager) Release(machine, user string) error {
	p, ok := m.lookup(machine)
	if !ok {
		return fmt.Errorf("shadow: machine %s has no shadow pool", machine)
	}
	return p.Release(user)
}

// Free reports the available accounts on a machine, or 0 for unknown
// machines.
func (m *Manager) Free(machine string) int {
	p, ok := m.lookup(machine)
	if !ok {
		return 0
	}
	return p.Free()
}

// Machines lists machines with pools, sorted.
func (m *Manager) Machines() []string {
	var out []string
	m.pools.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}
