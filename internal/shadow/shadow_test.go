package shadow

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool("m", 0, 1000); err == nil {
		t.Error("zero accounts should fail")
	}
	if _, err := NewPool("m", 4, 0); err == nil {
		t.Error("zero base uid should fail")
	}
	p, err := NewPool("m", 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine() != "m" || p.Free() != 4 {
		t.Errorf("pool = %s, free %d", p.Machine(), p.Free())
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	p, err := NewPool("m", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a.User != "shadow00" || a.UID != 1000 || a.Machine != "m" {
		t.Errorf("first account = %+v", a)
	}
	b, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if b.User != "shadow01" || b.UID != 1001 {
		t.Errorf("second account = %+v", b)
	}
	if _, err := p.Allocate(); err == nil {
		t.Error("exhausted pool should fail")
	}
	if got := p.InUse(); len(got) != 2 || got[0] != "shadow00" {
		t.Errorf("InUse = %v", got)
	}
	if err := p.Release(a.User); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(a.User); err == nil {
		t.Error("double release should fail")
	}
	if err := p.Release("nosuch"); err == nil {
		t.Error("releasing unknown account should fail")
	}
	if p.Free() != 1 {
		t.Errorf("free = %d", p.Free())
	}
	// Released accounts can be re-leased.
	c, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c.User != "shadow00" {
		t.Errorf("re-lease = %+v", c)
	}
}

func TestManager(t *testing.T) {
	m := NewManager()
	if err := m.AddMachine("a", 2, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMachine("a", 2, 1000); err == nil {
		t.Error("duplicate machine should fail")
	}
	if err := m.AddMachine("b", 1, 2000); err != nil {
		t.Fatal(err)
	}
	if got := m.Machines(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Machines = %v", got)
	}
	acct, err := m.Allocate("a")
	if err != nil || acct.Machine != "a" {
		t.Fatalf("Allocate: %+v, %v", acct, err)
	}
	if m.Free("a") != 1 || m.Free("b") != 1 || m.Free("ghost") != 0 {
		t.Errorf("free counts wrong: a=%d b=%d", m.Free("a"), m.Free("b"))
	}
	if _, err := m.Allocate("ghost"); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := m.Release("ghost", "x"); err == nil {
		t.Error("release on unknown machine should fail")
	}
	if err := m.Release("a", acct.User); err != nil {
		t.Fatal(err)
	}
	if m.Free("a") != 2 {
		t.Errorf("free after release = %d", m.Free("a"))
	}
}

func TestConcurrentAllocateUniqueUIDs(t *testing.T) {
	p, err := NewPool("m", 64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				a, err := p.Allocate()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[a.UID] {
					t.Errorf("uid %d leased twice", a.UID)
				}
				seen[a.UID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 64 {
		t.Errorf("leased %d accounts, want 64", len(seen))
	}
}

// Property: after any interleaving of k allocations and releasing all of
// them, the pool is back to full capacity.
func TestAllocateReleaseRestoresCapacityProperty(t *testing.T) {
	f := func(k uint8) bool {
		n := int(k%16) + 1
		p, err := NewPool("m", n, 1000)
		if err != nil {
			return false
		}
		var leased []Account
		for i := 0; i < n; i++ {
			a, err := p.Allocate()
			if err != nil {
				return false
			}
			leased = append(leased, a)
		}
		for _, a := range leased {
			if err := p.Release(a.User); err != nil {
				return false
			}
		}
		return p.Free() == n && len(p.InUse()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
