// Package desktop implements the PUNCH network desktop of Sections 2–3:
// the user-facing component that authorizes a run, drives the application
// management component to compose a query, obtains a machine grant from
// the ActYP service, mounts the application and data disks through the
// virtual file system service, executes the run, and finally unmounts and
// relinquishes all resources. The execution itself is simulated (a scaled
// sleep), preserving the full event sequence 1–6 of Figure 1.
package desktop

import (
	"fmt"
	"sync"
	"time"

	"actyp/internal/appmgr"
	"actyp/internal/core"
	"actyp/internal/vfs"
)

// ActYP is the resource-management service as the desktop sees it: the
// in-process core.Service and the TCP core.Client both satisfy it.
type ActYP interface {
	Request(text string) (*core.Grant, error)
	Release(g *core.Grant) error
}

// User is one PUNCH account.
type User struct {
	Login   string
	Group   string   // access group, e.g. "ece"
	Tools   []string // tools this user may run; empty means all
	Storage vfs.Volume
}

// RunResult records one completed run.
type RunResult struct {
	Job        string        // tool name
	Machine    string        // where it ran
	ShadowUser string        // shadow account it ran in
	Algorithm  string        // algorithm the knowledge base chose
	Queue      time.Duration // time spent acquiring resources
	Wall       time.Duration // simulated execution time
	CPUSeconds float64       // simulated CPU demand
}

// Config assembles a desktop.
type Config struct {
	App   *appmgr.Manager // required
	ActYP ActYP           // required
	VFS   *vfs.Manager    // required
	// TimeScale compresses simulated execution: a job of S CPU seconds
	// sleeps S*TimeScale. Zero disables sleeping entirely (the lifecycle
	// still runs).
	TimeScale float64
	// Clock supplies time; defaults to time.Now.
	Clock func() time.Time
}

// Desktop is the network desktop.
type Desktop struct {
	cfg   Config
	mu    sync.RWMutex
	users map[string]User

	statMu sync.Mutex
	runs   int
	denied int
}

// New creates a desktop.
func New(cfg Config) (*Desktop, error) {
	if cfg.App == nil || cfg.ActYP == nil || cfg.VFS == nil {
		return nil, fmt.Errorf("desktop: config needs app manager, actyp service and vfs")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Desktop{cfg: cfg, users: make(map[string]User)}, nil
}

// AddUser provisions an account (the paper's implicit storage location is
// configured at account-request time).
func (d *Desktop) AddUser(u User) error {
	if u.Login == "" {
		return fmt.Errorf("desktop: user needs a login")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.users[u.Login]; dup {
		return fmt.Errorf("desktop: user %s already exists", u.Login)
	}
	d.users[u.Login] = u
	return nil
}

// authorize verifies the user exists and may run the tool — the first step
// of the Section 2 walk-through.
func (d *Desktop) authorize(login, tool string) (User, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[login]
	if !ok {
		return User{}, fmt.Errorf("desktop: unknown user %q", login)
	}
	if len(u.Tools) == 0 {
		return u, nil
	}
	for _, t := range u.Tools {
		if t == tool {
			return u, nil
		}
	}
	return User{}, fmt.Errorf("desktop: user %s is not authorized to run %s", login, tool)
}

// RunTool executes the complete Section 2 lifecycle for one run and blocks
// until it finishes.
func (d *Desktop) RunTool(login, tool string, args []string) (*RunResult, error) {
	// 1. Authorization.
	user, err := d.authorize(login, tool)
	if err != nil {
		d.countDenied()
		return nil, err
	}

	// 2. Application management: parameters, algorithm, estimate, query.
	prepared, err := d.cfg.App.Prepare(appmgr.RunRequest{
		Tool: tool, Args: args, Login: user.Login, Group: user.Group,
	})
	if err != nil {
		return nil, err
	}

	// 3. ActYP identifies, locates, and selects the compute server.
	qStart := d.cfg.Clock()
	grant, err := d.cfg.ActYP.Request(prepared.QueryText)
	if err != nil {
		return nil, fmt.Errorf("desktop: resource request for %s: %w", tool, err)
	}
	queue := d.cfg.Clock().Sub(qStart)
	session := grant.Lease.AccessKey

	// Undo everything on any later failure.
	fail := func(err error) (*RunResult, error) {
		d.cfg.VFS.UnmountSession(session)
		_ = d.cfg.ActYP.Release(grant)
		return nil, err
	}

	// 4. The virtual file system mounts the application and data disks.
	appVol := vfs.Volume{Server: "punch-apps", Export: "/apps/" + tool}
	if _, err := d.cfg.VFS.MountVolume(grant.Lease.Machine, appVol, session); err != nil {
		return fail(fmt.Errorf("desktop: mount application: %w", err))
	}
	if user.Storage.Server != "" {
		if _, err := d.cfg.VFS.MountVolume(grant.Lease.Machine, user.Storage, session); err != nil {
			return fail(fmt.Errorf("desktop: mount user data: %w", err))
		}
	}

	// 5. Invoke the application (simulated execution).
	wallStart := d.cfg.Clock()
	if d.cfg.TimeScale > 0 {
		time.Sleep(time.Duration(prepared.Estimate.CPUSeconds * d.cfg.TimeScale * float64(time.Second)))
	}
	wall := d.cfg.Clock().Sub(wallStart)

	// Feed the observed run time back into the performance model.
	actual := prepared.Estimate.CPUSeconds // simulation runs exactly as predicted
	_ = d.cfg.App.Observe(tool, prepared.Params, actual)

	// 6. Unmount and relinquish the shadow account and machine.
	d.cfg.VFS.UnmountSession(session)
	if err := d.cfg.ActYP.Release(grant); err != nil {
		return nil, fmt.Errorf("desktop: release: %w", err)
	}

	d.statMu.Lock()
	d.runs++
	d.statMu.Unlock()
	return &RunResult{
		Job:        tool,
		Machine:    grant.Lease.Machine,
		ShadowUser: grant.Shadow.User,
		Algorithm:  prepared.Algorithm,
		Queue:      queue,
		Wall:       wall,
		CPUSeconds: prepared.Estimate.CPUSeconds,
	}, nil
}

// Stats reports completed and denied runs.
func (d *Desktop) Stats() (runs, denied int) {
	d.statMu.Lock()
	defer d.statMu.Unlock()
	return d.runs, d.denied
}

func (d *Desktop) countDenied() {
	d.statMu.Lock()
	d.denied++
	d.statMu.Unlock()
}
