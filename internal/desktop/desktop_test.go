package desktop

import (
	"strings"
	"testing"
	"time"

	"actyp/internal/appmgr"
	"actyp/internal/core"
	"actyp/internal/perfmodel"
	"actyp/internal/registry"
	"actyp/internal/vfs"
)

func newDesktop(t *testing.T) (*Desktop, *vfs.Manager, *core.Service) {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(16).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	perf := perfmodel.NewService(0.2)
	for _, m := range perfmodel.PunchModels() {
		if err := perf.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	app := appmgr.New(perf)
	if err := appmgr.PunchKnowledgeBase(app); err != nil {
		t.Fatal(err)
	}
	mounts := vfs.NewManager()
	d, err := New(Config{App: app, ActYP: svc, VFS: mounts})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddUser(User{
		Login: "kapadia", Group: "ece",
		Storage: vfs.Volume{Server: "warehouse", Export: "/home/kapadia"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddUser(User{Login: "restricted", Group: "public", Tools: []string{"spice"}}); err != nil {
		t.Fatal(err)
	}
	return d, mounts, svc
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestAddUserValidation(t *testing.T) {
	d, _, _ := newDesktop(t)
	if err := d.AddUser(User{}); err == nil {
		t.Error("empty login should fail")
	}
	if err := d.AddUser(User{Login: "kapadia"}); err == nil {
		t.Error("duplicate login should fail")
	}
}

func TestRunToolFullLifecycle(t *testing.T) {
	d, mounts, _ := newDesktop(t)
	res, err := d.RunTool("kapadia", "tsuprem4", []string{"-g", "150"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine == "" || res.ShadowUser == "" {
		t.Errorf("result = %+v", res)
	}
	if res.CPUSeconds <= 0 {
		t.Error("no CPU estimate recorded")
	}
	// Everything was cleaned up: no mounts, no active leases.
	if mounts.Active() != 0 {
		t.Errorf("%d mounts leaked", mounts.Active())
	}
	runs, denied := d.Stats()
	if runs != 1 || denied != 0 {
		t.Errorf("stats = %d runs, %d denied", runs, denied)
	}
}

func TestRunToolAuthorization(t *testing.T) {
	d, _, _ := newDesktop(t)
	if _, err := d.RunTool("ghost", "spice", nil); err == nil {
		t.Error("unknown user should be denied")
	}
	if _, err := d.RunTool("restricted", "tsuprem4", nil); err == nil {
		t.Error("unauthorized tool should be denied")
	}
	if _, err := d.RunTool("restricted", "spice", nil); err != nil {
		t.Errorf("authorized tool denied: %v", err)
	}
	_, denied := d.Stats()
	if denied != 2 {
		t.Errorf("denied = %d", denied)
	}
}

func TestRunToolUnknownTool(t *testing.T) {
	d, _, _ := newDesktop(t)
	if _, err := d.RunTool("kapadia", "nosuchtool", nil); err == nil {
		t.Error("unknown tool should fail in the app manager")
	}
}

func TestRunToolNoResources(t *testing.T) {
	// A desktop over an empty grid: the resource request must fail and
	// report it cleanly.
	db := registry.NewDB()
	hpOnly := registry.FleetSpec{N: 2, Archs: []string{"vax"}, Domains: []string{"x"}, Seed: 1}
	if err := hpOnly.Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	perf := perfmodel.NewService(0)
	for _, m := range perfmodel.PunchModels() {
		if err := perf.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	app := appmgr.New(perf)
	if err := appmgr.PunchKnowledgeBase(app); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{App: app, ActYP: svc, VFS: vfs.NewManager()})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddUser(User{Login: "u", Group: "g"}); err != nil {
		t.Fatal(err)
	}
	_, err = d.RunTool("u", "spice", nil)
	if err == nil || !strings.Contains(err.Error(), "resource request") {
		t.Errorf("err = %v", err)
	}
}

func TestRunToolMountsUserStorage(t *testing.T) {
	d, mounts, _ := newDesktop(t)
	// Take over the clock so execution is instantaneous but observable.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := d.RunTool("kapadia", "spice", nil); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	<-done
	// After completion nothing is mounted, but the run mounted both the
	// application volume and the user's storage (verified indirectly: a
	// second run works, proving mounts were released).
	if mounts.Active() != 0 {
		t.Errorf("mounts leaked")
	}
	if _, err := d.RunTool("kapadia", "spice", nil); err != nil {
		t.Errorf("second run: %v", err)
	}
}

func TestObservationCalibratesModel(t *testing.T) {
	d, _, _ := newDesktop(t)
	for i := 0; i < 3; i++ {
		if _, err := d.RunTool("kapadia", "matlab", []string{"-m", "64"}); err != nil {
			t.Fatal(err)
		}
	}
	runs, _ := d.Stats()
	if runs != 3 {
		t.Errorf("runs = %d", runs)
	}
}
