package core

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"actyp/internal/registry"
)

// -refresh-default-mode forces the package-default freshness mode for the
// whole test run, mirroring the wire package's per-codec matrix. CI runs
// the suite once per mode:
//
//	go test -race ./internal/core -refresh-default-mode=events
//	go test -race ./internal/core -refresh-default-mode=poll
var defaultRefreshModeFlag = flag.String("refresh-default-mode", "",
	"force the package-default refresh mode for this test run (poll or events)")

func TestMain(m *testing.M) {
	flag.Parse()
	if *defaultRefreshModeFlag != "" {
		if err := ValidateRefreshMode(*defaultRefreshModeFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bad -refresh-default-mode: %v\n", err)
			os.Exit(2)
		}
		defaultRefreshMode = *defaultRefreshModeFlag
	}
	os.Exit(m.Run())
}

// TestEventDispatchFoldsMonitorUpdates is the events-mode counterpart of
// TestRefreshLoopFoldsMonitorUpdates: no refresh timer at all — the
// monitor's write must reach the pool's scheduling decision through the
// change-stream dispatcher alone.
func TestEventDispatchFoldsMonitorUpdates(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(2).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, RefreshMode: RefreshEvents})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.RefreshMode() != RefreshEvents || svc.Events() == nil {
		t.Fatalf("mode=%q events=%v", svc.RefreshMode(), svc.Events())
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	if got := svc.Events().Pools(); got != 1 {
		t.Fatalf("subscribed pools = %d, want 1", got)
	}

	m, err := db.Get("m0000")
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dynamic
	d.Load = 3.5
	if err := db.UpdateDynamic("m0000", d); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		g, err := svc.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatal(err)
		}
		machine := g.Lease.Machine
		if err := svc.Release(g); err != nil {
			t.Fatal(err)
		}
		if machine == "m0001" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler kept choosing %s despite the load update", machine)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRefreshModeValidation pins flag-level failure on bad modes.
func TestRefreshModeValidation(t *testing.T) {
	if err := ValidateRefreshMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(2).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{DB: db, RefreshMode: "bogus"}); err == nil {
		t.Error("New accepted a bogus refresh mode")
	}
	svc, err := New(Options{DB: db, RefreshMode: RefreshPoll})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Events() != nil {
		t.Error("poll mode built a dispatcher")
	}
}

// TestSplitReplicaResubscribe: split children and replicas take over the
// parent's change-stream subscription across the admin swap.
func TestSplitReplicaResubscribe(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(8).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, RefreshMode: RefreshEvents})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	const criteria = "punch.rsrc.arch = sun"
	if err := svc.Precreate(criteria); err != nil {
		t.Fatal(err)
	}
	if got := svc.Events().Pools(); got != 1 {
		t.Fatalf("after precreate: %d subscriptions, want 1", got)
	}
	if err := svc.SplitPool(criteria, 2); err != nil {
		t.Fatal(err)
	}
	if got := svc.Events().Pools(); got != 2 {
		t.Fatalf("after split: %d subscriptions, want 2 (children in, parent out)", got)
	}
}
