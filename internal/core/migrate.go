package core

// Domain migration: the ownership-handoff protocol for moving one
// administrative domain between two live services without losing
// registrations or stranding leases. The protocol is drain -> snapshot
// page -> re-own:
//
//   1. The source ExportDomains the domain: paged reads of the domain's
//      white-pages records (taken marks ride inside them) plus every live
//      lease its pools hold on those machines.
//   2. The destination AdoptDomains the export: records are added (an
//      existing watch-replica copy of a record is replaced by the
//      authoritative one), pool instances are rebuilt from the taken
//      marks exactly as crash recovery rebuilds them, and the leases are
//      re-adopted so releases and renewals keep resolving.
//   3. Both sides (and any routing client) Reload their route.Tables so
//      the domain resolves to the destination.
//   4. The source DropDomains the export: its pools shed the domain, the
//      records leave its white pages, and its journal (whose replay is
//      domain-filtered on boot) forgets the domain with them. Every live
//      lease the drop releases locally is re-registered as a delegated
//      lease pointing at the domain's new owner, so a release or renewal
//      arriving at the source afterwards routes onward through the
//      (peer, domain) rule in poolmgr.releaseRemote instead of failing.
//
// Between steps 2 and 4 both nodes can answer for the domain — duplicate
// answers, never lost ones.

import (
	"fmt"
	"sort"
	"time"

	"actyp/internal/pool"
	"actyp/internal/registry"
	"actyp/internal/route"
)

// DomainExport is one domain's authoritative state, drained for handoff.
type DomainExport struct {
	Domain   string              `json:"domain"`
	Machines []*registry.Machine `json:"machines"` // records incl. taken marks, name order
	Leases   []RecoveredLease    `json:"leases"`   // live local leases on those machines
}

// ExportDomain drains one domain from this service: the white-pages
// records matching the domain (read in pages of pageSize, the snapshot
// paging that keeps a fleet-sized domain under the wire frame cap) and
// the live leases the local pools hold on the domain's machines. The
// service keeps serving the domain until DropDomain; export is a read.
func (s *Service) ExportDomain(domain string, pageSize int) (*DomainExport, error) {
	if domain == "" {
		return nil, fmt.Errorf("core: export needs a domain")
	}
	if pageSize <= 0 {
		pageSize = 2048
	}
	exp := &DomainExport{Domain: domain}
	filter := route.Filter(domain)
	for off := 0; ; off += pageSize {
		page, total, err := s.SelectMachines(filter, pageSize, off)
		if err != nil {
			return nil, err
		}
		exp.Machines = append(exp.Machines, page...)
		if off+len(page) >= total || len(page) == 0 {
			break
		}
	}
	names := make(map[string]bool, len(exp.Machines))
	for _, m := range exp.Machines {
		names[m.Static.Name] = true
	}
	for _, p := range s.allPools() {
		for _, li := range p.Leases() {
			if !names[li.Machine] {
				continue
			}
			lease := pool.Lease{ID: li.ID, Machine: li.Machine, Pool: p.ID()}
			if m, err := s.db.Get(li.Machine); err == nil {
				lease.Addr = m.Access.Addr
				lease.ExecUnitPort = m.Access.ExecUnitPort
				lease.MountMgrPort = m.Access.MountMgrPort
			}
			exp.Leases = append(exp.Leases, RecoveredLease{Lease: lease, Expires: li.Expires})
		}
	}
	sort.Slice(exp.Leases, func(i, j int) bool { return exp.Leases[i].Lease.ID < exp.Leases[j].Lease.ID })
	return exp, nil
}

// AdoptDomain re-owns an exported domain on this service: records go into
// the white pages (replacing any non-authoritative watch-replica copies),
// pool instances are rebuilt from the records' taken marks through the
// same adoption machinery crash recovery uses, and the exported leases
// are re-adopted into them. grace extends every adopted lease's deadline
// to at least now+grace (zero: the service's LeaseTTL), giving holders
// whose renewals raced the migration a full heartbeat window.
func (s *Service) AdoptDomain(exp *DomainExport, grace time.Duration) (RecoveryReport, error) {
	var rep RecoveryReport
	if exp == nil {
		return rep, fmt.Errorf("core: nil domain export")
	}
	if grace <= 0 {
		grace = s.opts.LeaseTTL
	}
	for _, m := range exp.Machines {
		if err := s.db.Add(m); err != nil {
			// A cross-domain watch replica may already hold a copy of the
			// record; the migrated record is the authoritative one.
			if rmErr := s.db.Remove(m.Static.Name); rmErr != nil {
				return rep, fmt.Errorf("core: adopt %s: %w", m.Static.Name, err)
			}
			if err := s.db.Add(m); err != nil {
				return rep, fmt.Errorf("core: adopt %s: %w", m.Static.Name, err)
			}
		}
	}

	byInstance := map[string][]RecoveredLease{}
	for _, rl := range exp.Leases {
		byInstance[rl.Lease.Pool] = append(byInstance[rl.Lease.Pool], rl)
	}
	// Instances with taken marks but no live leases must be rebuilt too,
	// or their marks strand the machines (same invariant as Recover).
	for _, m := range exp.Machines {
		if m.TakenBy != "" {
			if _, ok := byInstance[m.TakenBy]; !ok {
				byInstance[m.TakenBy] = nil
			}
		}
	}
	instances := make([]string, 0, len(byInstance))
	for inst := range byInstance {
		instances = append(instances, inst)
	}
	sort.Strings(instances)

	now := time.Now()
	adoptedIDs := make([]string, 0, len(exp.Leases))
	for _, inst := range instances {
		ls := byInstance[inst]
		p, err := s.adoptInstance(inst, ls)
		if err != nil {
			s.db.ReleaseAll(inst)
			for _, rl := range ls {
				if s.opts.LeaseLog != nil {
					s.opts.LeaseLog.LeaseReleased(rl.Lease.ID)
				}
				rep.Dropped++
			}
			continue
		}
		if p == nil {
			continue // instance evaporated entirely
		}
		rep.PoolsAdopted++
		for _, rl := range ls {
			expires := rl.Expires
			if floor := now.Add(grace); grace > 0 && expires.Before(floor) {
				expires = floor
			}
			lease := rl.Lease
			if err := p.AdoptLease(&lease, expires); err != nil {
				s.db.Release(inst, rl.Lease.Machine)
				if s.opts.LeaseLog != nil {
					s.opts.LeaseLog.LeaseReleased(rl.Lease.ID)
				}
				rep.Dropped++
				continue
			}
			adoptedIDs = append(adoptedIDs, rl.Lease.ID)
			rep.Restored++
		}
	}

	// Migrated leases have no shadow accounts in this process; their first
	// release must tolerate the missing account, like recovered leases.
	s.mu.Lock()
	if s.recovered == nil {
		s.recovered = make(map[string]bool, len(adoptedIDs))
	}
	for _, id := range adoptedIDs {
		s.recovered[id] = true
	}
	s.mu.Unlock()
	return rep, nil
}

// adoptInstance finds or rebuilds one pool instance for adoption. An
// instance already live in the directory (a pool spanning the migration)
// is reused; otherwise it is rebuilt from the just-added taken marks,
// exactly as crash recovery does.
func (s *Service) adoptInstance(inst string, ls []RecoveredLease) (*pool.Pool, error) {
	if ref, ok := s.dir.ByInstance(inst); ok {
		if p, pok := ref.Local.(*pool.Pool); pok {
			return p, nil
		}
		return nil, fmt.Errorf("core: instance %s has no local pool handle", inst)
	}
	name, num, err := parsePoolInstance(inst)
	if err != nil {
		return nil, err
	}
	members := s.db.TakenBy(inst)
	exclusive := len(members) > 0
	if !exclusive {
		seen := map[string]bool{}
		for _, rl := range ls {
			if !seen[rl.Lease.Machine] {
				seen[rl.Lease.Machine] = true
				members = append(members, rl.Lease.Machine)
			}
		}
		sort.Strings(members)
	}
	if len(members) == 0 {
		return nil, nil
	}
	ref, err := s.factory.Adopt(name, num, members, exclusive)
	if err != nil {
		return nil, err
	}
	if err := s.dir.Register(ref); err != nil {
		return nil, err
	}
	return ref.Local.(*pool.Pool), nil
}

// DropDomain completes the handoff on the source: every pool touching the
// exported machines releases its leases (they live at the new owner now;
// journaling the releases here is correct — this journal's replay is
// domain-filtered and forgets the domain anyway) and closes, clearing
// its white-pages claims, then the records leave the database. It returns
// how many records were removed.
//
// Leases the drop releases on exported machines are re-registered in
// every pool manager as delegated leases pointing at the domain's new
// owner (resolved from the reloaded route table), so a holder that still
// releases or renews through this node is forwarded instead of told
// "unknown pool". Without a route table (or while this node still owns
// the domain) no forwarding is installed.
//
// A pool whose members span the migrated domain and others is closed
// whole: its foreign-domain machines return to the free list and the next
// query rebuilds a pool over them. Ownership handoff is rare enough that
// a one-off pool rebuild beats engine-level cache eviction.
func (s *Service) DropDomain(exp *DomainExport) int {
	if exp == nil {
		return 0
	}
	forward := ""
	if rt := s.opts.Routes; rt != nil {
		if owner, ok := rt.Owner(exp.Domain); ok && owner != rt.Local() {
			forward = owner
		}
	}
	names := make(map[string]bool, len(exp.Machines))
	for _, m := range exp.Machines {
		names[m.Static.Name] = true
	}
	for _, p := range s.allPools() {
		touched := false
		for _, member := range p.Members() {
			if names[member] {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		var migrated []pool.Lease
		for _, li := range p.Leases() {
			if forward != "" && names[li.Machine] {
				migrated = append(migrated, pool.Lease{ID: li.ID, Machine: li.Machine, Pool: p.ID()})
			}
			_ = p.Release(li.ID)
		}
		p.Close()
		// Forward entries are installed AFTER the releases: the journal's
		// lease mirror is keyed by ID, and the release above would delete
		// the fresh opDelegated record before it ever hit a snapshot.
		for i := range migrated {
			for _, pm := range s.pms {
				pm.RestoreDelegated(&migrated[i], forward, exp.Domain)
			}
		}
	}
	dropped := 0
	for name := range names {
		if err := s.db.Remove(name); err == nil {
			dropped++
		}
	}
	return dropped
}
