package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"actyp/internal/querymgr"
	"actyp/internal/registry"
)

func fleetService(t testing.TB, n int, mut ...func(*Options)) *Service {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	opts := Options{DB: db}
	for _, f := range mut {
		f(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing db should fail")
	}
}

func TestRequestReleaseLifecycle(t *testing.T) {
	s := fleetService(t, 16)
	g, err := s.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lease == nil || g.Lease.Machine == "" {
		t.Fatal("no lease")
	}
	if g.Lease.Addr == "" || g.Lease.ExecUnitPort == 0 || g.Lease.AccessKey == "" {
		t.Errorf("incomplete coordinates: %+v", g.Lease)
	}
	if g.Shadow.User == "" || g.Shadow.Machine != g.Lease.Machine {
		t.Errorf("shadow account = %+v", g.Shadow)
	}
	if err := s.Release(g); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(g); err == nil {
		t.Error("double release should fail")
	}
	if err := s.Release(nil); err == nil {
		t.Error("nil grant should fail")
	}
}

func TestRequestCompositeCreatesPoolsPerArch(t *testing.T) {
	s := fleetService(t, 16)
	g, err := s.Request("punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if g.Fragments != 2 {
		t.Errorf("fragments = %d", g.Fragments)
	}
	if s.Directory().Instances() != 2 {
		t.Errorf("instances = %d", s.Directory().Instances())
	}
	if err := s.Release(g); err != nil {
		t.Fatal(err)
	}
}

func TestRequestNoMatch(t *testing.T) {
	s := fleetService(t, 8)
	if _, err := s.Request("punch.rsrc.arch = cray"); err == nil {
		t.Error("unmatched query should fail")
	}
	if !errors.Is(mustErr(t, s, "punch.rsrc.arch = cray"), querymgr.ErrNoMatch) {
		t.Error("should be ErrNoMatch")
	}
}

func mustErr(t *testing.T, s *Service, text string) error {
	t.Helper()
	_, err := s.Request(text)
	if err == nil {
		t.Fatal("expected error")
	}
	return err
}

func TestShadowAccountsRecycled(t *testing.T) {
	// 1 machine with 2 shadow accounts: three sequential runs must work,
	// and two concurrent grants exhaust the shadow pool.
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(1).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{DB: db, ShadowAccounts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		g, err := s.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseReleasesWhitePagesClaims(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(4).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Request("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	taken := 0
	db.Walk(func(m *registry.Machine) bool {
		if m.TakenBy != "" {
			taken++
		}
		return true
	})
	if taken != 0 {
		t.Errorf("%d machines still taken after Close", taken)
	}
}

func TestReplicatedStages(t *testing.T) {
	s := fleetService(t, 32, func(o *Options) {
		o.QueryManagers = 3
		o.PoolManagers = 2
	})
	if len(s.QueryManagers()) != 3 || len(s.PoolManagers()) != 2 {
		t.Fatalf("stages = %d qm, %d pm", len(s.QueryManagers()), len(s.PoolManagers()))
	}
	var grants []*Grant
	for i := 0; i < 6; i++ {
		g, err := s.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatal(err)
		}
		grants = append(grants, g)
	}
	for _, g := range grants {
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMonitorIntegration(t *testing.T) {
	s := fleetService(t, 4, func(o *Options) {
		o.MonitorInterval = time.Millisecond
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m, err := s.DB().Get("m0000")
		if err != nil {
			t.Fatal(err)
		}
		if !m.Dynamic.LastUpdate.IsZero() && m.Dynamic.LastUpdate.After(time.Unix(1, 0)) {
			return // monitor refreshed the record with wall-clock time
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("monitor never refreshed the database")
}

func TestConcurrentRequests(t *testing.T) {
	s := fleetService(t, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	machines := map[string]int{}
	errs := 0
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				g, err := s.Request("punch.rsrc.arch = sun | hp | alpha | x86")
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				mu.Lock()
				machines[g.Lease.Machine]++
				mu.Unlock()
				if err := s.Release(g); err != nil {
					t.Errorf("release: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if errs > 0 {
		t.Errorf("%d requests failed on a 64-machine fleet", errs)
	}
}

func TestDrain(t *testing.T) {
	s := fleetService(t, 4)
	g, err := s.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if s.Drain(10 * time.Millisecond) {
		t.Error("drain should time out with an outstanding lease")
	}
	if err := s.Release(g); err != nil {
		t.Fatal(err)
	}
	if !s.Drain(time.Second) {
		t.Error("drain should succeed after release")
	}
}
