package core

import (
	"fmt"
	"time"

	"actyp/internal/directory"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/schedule"
)

// criteriaName parses a basic query text and returns its pool name.
func (s *Service) criteriaName(text string) (query.PoolName, *query.Query, error) {
	q, err := query.ParseBasic(text)
	if err != nil {
		return query.PoolName{}, nil, err
	}
	return query.Name(q), q, nil
}

// Precreate builds the pool for the given criteria ahead of any query —
// the paper's manually configured resource-pool creation. It is a no-op if
// an instance already exists.
func (s *Service) Precreate(criteria string) error {
	name, _, err := s.criteriaName(criteria)
	if err != nil {
		return err
	}
	if len(s.dir.Lookup(name)) > 0 {
		return nil
	}
	ref, err := s.factory.Create(name, 0)
	if err != nil {
		return err
	}
	return s.dir.Register(ref)
}

// SplitPool replaces the single instance of the criteria's pool with k
// child pools that partition its machines (Figure 7). Children register
// under the same pool name, so pool managers stripe queries across them by
// random instance selection, turning one long linear search into k
// concurrent short ones.
func (s *Service) SplitPool(criteria string, k int) error {
	name, _, err := s.criteriaName(criteria)
	if err != nil {
		return err
	}
	refs := s.dir.Lookup(name)
	if len(refs) != 1 {
		return fmt.Errorf("core: split needs exactly one instance of %s, found %d", name, len(refs))
	}
	parent, ok := refs[0].Local.(*pool.Pool)
	if !ok {
		return fmt.Errorf("core: instance %s is not a local pool", refs[0].Instance)
	}
	parts, err := parent.Split(k)
	if err != nil {
		return err
	}
	obj := func() schedule.Objective {
		o, err := schedule.ByName(s.opts.Objective)
		if err != nil {
			return schedule.LeastLoad{}
		}
		return o
	}
	children := make([]*pool.Pool, 0, k)
	for i, members := range parts {
		child, err := pool.New(pool.Config{
			Name:      name,
			Instance:  i + 1, // parent was instance 0
			DB:        s.db,
			Objective: obj(),
			Members:   members,
			ScanCost:  s.opts.ScanCost,
			Engine:    s.opts.PoolEngine,
			Events:    s.events, // children subscribe; the parent's Close unsubscribes it
		})
		if err != nil {
			for _, c := range children {
				c.Close()
			}
			return fmt.Errorf("core: split child %d: %w", i, err)
		}
		children = append(children, child)
	}
	// Swap: register children, then retire the parent.
	for _, c := range children {
		if err := s.dir.Register(directory.PoolRef{Name: name, Instance: c.ID(), Local: c}); err != nil {
			return err
		}
	}
	s.dir.Unregister(parent.ID())
	parent.Close()
	return nil
}

// ReplicatePool adds replicas of the criteria's pool that share its full
// machine set, each with an instance-specific bias ("instance i of a given
// pool prefers every i-th machine in the pool", Section 7). The original
// instance is replaced so that all replicas carry consistent bias/stride
// configuration.
func (s *Service) ReplicatePool(criteria string, replicas int) error {
	if replicas <= 0 {
		return fmt.Errorf("core: replicas must be positive, got %d", replicas)
	}
	name, _, err := s.criteriaName(criteria)
	if err != nil {
		return err
	}
	refs := s.dir.Lookup(name)
	if len(refs) != 1 {
		return fmt.Errorf("core: replicate needs exactly one instance of %s, found %d", name, len(refs))
	}
	parent, ok := refs[0].Local.(*pool.Pool)
	if !ok {
		return fmt.Errorf("core: instance %s is not a local pool", refs[0].Instance)
	}
	members := parent.Members()
	obj := func() schedule.Objective {
		o, err := schedule.ByName(s.opts.Objective)
		if err != nil {
			return schedule.LeastLoad{}
		}
		return o
	}
	made := make([]*pool.Pool, 0, replicas)
	for i := 0; i < replicas; i++ {
		rep, err := pool.New(pool.Config{
			Name:      name,
			Instance:  i + 1,
			Replicas:  replicas,
			DB:        s.db,
			Objective: obj(),
			Members:   members,
			ScanCost:  s.opts.ScanCost,
			Engine:    s.opts.PoolEngine,
			Events:    s.events, // replicas subscribe; the parent's Close unsubscribes it
		})
		if err != nil {
			for _, r := range made {
				r.Close()
			}
			return fmt.Errorf("core: replica %d: %w", i, err)
		}
		made = append(made, rep)
	}
	for _, r := range made {
		if err := s.dir.Register(directory.PoolRef{Name: name, Instance: r.ID(), Local: r}); err != nil {
			return err
		}
	}
	s.dir.Unregister(parent.ID())
	parent.Close()
	return nil
}

// StripePools assigns every machine an administrator parameter "pool" in
// [0, n) by registration order — the setup of Figures 4 and 5, where 3,200
// machines are uniformly distributed across n pools and client queries are
// striped randomly across them.
func (s *Service) StripePools(n int) error {
	if n <= 0 {
		return fmt.Errorf("core: stripe count must be positive, got %d", n)
	}
	names := s.db.Names()
	for i, name := range names {
		if err := s.db.SetParam(name, "pool", query.NumAttr(float64(i%n))); err != nil {
			return err
		}
	}
	return nil
}

// PoolSizes reports the size of every registered pool instance, keyed by
// instance id (admin observability).
func (s *Service) PoolSizes() map[string]int {
	out := make(map[string]int)
	for _, name := range s.dir.Names() {
		for _, ref := range s.dir.Lookup(name) {
			if p, ok := ref.Local.(*pool.Pool); ok {
				out[ref.Instance] = p.Size()
			}
		}
	}
	return out
}

// WarmPools pre-creates the striped pools 0..n-1 so experiments measure
// steady-state response time rather than first-touch creation.
func (s *Service) WarmPools(n int) error {
	for k := 0; k < n; k++ {
		if err := s.Precreate(fmt.Sprintf("punch.rsrc.pool = %d", k)); err != nil {
			return err
		}
	}
	return nil
}

// Drain waits until every outstanding lease across all local pools is
// released or the timeout elapses, returning whether it drained.
func (s *Service) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		busy := 0
		for _, p := range s.factory.Pools() {
			busy += p.Size() - p.Free()
		}
		for _, name := range s.dir.Names() {
			for _, ref := range s.dir.Lookup(name) {
				if p, ok := ref.Local.(*pool.Pool); ok {
					busy += p.Size() - p.Free()
				}
			}
		}
		if busy == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}
