package core

import (
	"encoding/json"
	"testing"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// selectCodecs are the negotiation preferences the select tests sweep:
// the JSON floor, the plain binary2 fast path (delta batches), and the
// compressed variant.
func selectCodecs(t *testing.T) map[string][]wire.Codec {
	t.Helper()
	comp, err := wire.Compressed(wire.Binary2, wire.AlgoFlate)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]wire.Codec{
		"json":          {wire.JSON},
		"binary2":       {wire.Binary2, wire.JSON},
		"binary2+flate": {comp, wire.JSON},
	}
}

// TestSelectAcrossCodecs round-trips record batches through every codec
// and checks the decoded records match the database bit-for-bit (JSON
// comparison), in both the delta and the Full oracle encodings.
func TestSelectAcrossCodecs(t *testing.T) {
	const n = 48
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	comp, err := wire.Compressed(wire.Binary2, wire.AlgoFlate)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeOpts(svc, "127.0.0.1:0", netsim.Local(), ServeConfig{
		Codecs: []wire.Codec{comp, wire.Binary2, wire.JSON},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	want, wantTotal, err := svc.SelectMachines("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wantTotal != n {
		t.Fatalf("fleet size = %d, want %d", wantTotal, n)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for name, codecs := range selectCodecs(t) {
		t.Run(name, func(t *testing.T) {
			c, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{Codecs: codecs})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if got := c.CodecName(); got != name {
				t.Fatalf("negotiated %q, want %q", got, name)
			}
			for _, full := range []bool{false, true} {
				ms, total, err := c.Select("", 0, full)
				if err != nil {
					t.Fatalf("full=%v: %v", full, err)
				}
				if total != n || len(ms) != n {
					t.Fatalf("full=%v: got %d/%d records, want %d", full, len(ms), total, n)
				}
				got, err := json.Marshal(ms)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(wantJSON) {
					t.Errorf("full=%v: records differ from database", full)
				}
			}
		})
	}
}

// TestSelectFilterAndLimit checks query filtering and the limit/total
// contract over the negotiated default codec.
func TestSelectFilterAndLimit(t *testing.T) {
	srv, svc := startServer(t, 32, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	all, total, err := c.Select("punch.rsrc.arch = sun", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(all) != total {
		t.Fatalf("uncapped select returned %d/%d", len(all), total)
	}
	for _, m := range all {
		if arch := m.Policy.Params["arch"]; arch.Str != "sun" {
			t.Fatalf("machine %s has arch %q", m.Static.Name, arch.Str)
		}
	}
	capped, cappedTotal, err := c.Select("punch.rsrc.arch = sun", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 || cappedTotal != total {
		t.Errorf("limit=1 returned %d records, total %d (want 1, %d)", len(capped), cappedTotal, total)
	}
	if _, _, err := c.Select("not a query", 0, false); err == nil {
		t.Error("malformed query should fail")
	}
	_ = svc
}

// TestSelectWireStats checks both sides account select traffic under the
// negotiated codec name, and that the compressed codec reports fewer
// wire bytes than raw bytes for a fleet-sized reply.
func TestSelectWireStats(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(64).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	comp, err := wire.Compressed(wire.Binary2, wire.AlgoFlate)
	if err != nil {
		t.Fatal(err)
	}
	serverStats := &metrics.WireStats{}
	srv, err := ServeOpts(svc, "127.0.0.1:0", netsim.Local(), ServeConfig{
		// The compressed codec is opt-in on both sides: a server that does
		// not offer it negotiates down to plain binary2 or JSON.
		Codecs: []wire.Codec{comp, wire.Binary2, wire.JSON},
		Stats:  serverStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clientStats := &metrics.WireStats{}
	c, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{
		Codecs: []wire.Codec{comp, wire.JSON},
		Stats:  clientStats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.CodecName(); got != "binary2+flate" {
		t.Fatalf("negotiated %q, want binary2+flate", got)
	}
	if _, _, err := c.Select("", 0, false); err != nil {
		t.Fatal(err)
	}

	for side, stats := range map[string]*metrics.WireStats{"client": clientStats, "server": serverStats} {
		snap := stats.Snapshot()
		wc, ok := snap["binary2+flate"]
		if !ok {
			t.Fatalf("%s stats missing binary2+flate: %v", side, snap)
		}
		if wc.FramesOut == 0 || wc.FramesIn == 0 || wc.BytesOut == 0 || wc.BytesIn == 0 {
			t.Errorf("%s stats incomplete: %+v", side, wc)
		}
	}
	// The fleet-sized select reply is the compressible direction:
	// server-out (= client-in) raw bytes must exceed wire bytes.
	wc := serverStats.Snapshot()["binary2+flate"]
	if wc.RawOut <= wc.BytesOut {
		t.Errorf("select reply did not compress: raw out %d <= wire out %d", wc.RawOut, wc.BytesOut)
	}
}
