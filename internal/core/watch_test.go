package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// dbsConverged compares two registries record by record (JSON form, which
// carries every white-pages field including the taken mark).
func dbsConverged(a, b *registry.DB) bool {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return false
	}
	for _, n := range an {
		am, err1 := a.Get(n)
		bm, err2 := b.Get(n)
		if err1 != nil || err2 != nil {
			return false
		}
		aj, _ := json.Marshal(am)
		bj, _ := json.Marshal(bm)
		if !bytes.Equal(aj, bj) {
			return false
		}
	}
	return true
}

func waitDBConverged(t *testing.T, want, got *registry.DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !dbsConverged(want, got) {
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: %d source records, %d replica records",
				len(want.Names()), len(got.Names()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startWatch(t *testing.T, c *Client, rep *registry.DB, cfg registry.RemoteWatchConfig) *registry.RemoteWatch {
	t.Helper()
	cfg.Transport = c
	cfg.Replica = rep
	w, err := registry.StartRemoteWatch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWatchOverWireIncremental runs the whole fast path end to end: a
// client subscribes over a real connection, baselines, and then tracks
// server-side mutations through pushed event batches — no polling.
func TestWatchOverWireIncremental(t *testing.T) {
	srv, svc := startServer(t, 16, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	stats := metrics.NewFederationStats()
	w := startWatch(t, c, rep, registry.RemoteWatchConfig{Stats: stats})
	db := svc.DB()
	waitDBConverged(t, db, rep)

	// Server-side churn: dynamic sweep, state flip, removal, late join.
	names := db.Names()
	for i, n := range names {
		_ = db.UpdateDynamic(n, registry.Dynamic{Load: float64(i), FreeMemory: 256,
			LastUpdate: time.Unix(int64(5000+i), 0)})
	}
	_ = db.SetState(names[0], registry.StateDown)
	_ = db.Remove(names[1])
	waitDBConverged(t, db, rep)

	if w.Mode() != registry.WatchModeStream {
		t.Fatalf("mode = %q, want stream", w.Mode())
	}
	snap := stats.Snapshot()
	if snap.WatchEvents == 0 {
		t.Error("no watch events counted; freshness rode something else")
	}
	if snap.WatchPolls != 0 {
		t.Errorf("watch mode fell back to %d polls", snap.WatchPolls)
	}
}

// TestWatchFilterOverWire proves the filter is applied server side: the
// replica mirrors only the matching slice of the fleet.
func TestWatchFilterOverWire(t *testing.T) {
	srv, svc := startServer(t, 16, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	startWatch(t, c, rep, registry.RemoteWatchConfig{Filter: "punch.rsrc.arch = sun"})
	db := svc.DB()
	for _, n := range rep.Names() {
		m, err := rep.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Policy.Params["arch"].Str; got != "sun" {
			t.Fatalf("replica holds %s with arch %q; filter leaked", n, got)
		}
	}
	// A matching machine's update still flows.
	var sun string
	for _, n := range rep.Names() {
		sun = n
		break
	}
	if sun == "" {
		t.Fatal("no sun machines in the default fleet")
	}
	_ = db.UpdateDynamic(sun, registry.Dynamic{Load: 99, LastUpdate: time.Unix(6000, 0)})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m, err := rep.Get(sun); err == nil && m.Dynamic.Load == 99 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("filtered update never reached the replica")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWatchLoadTriggersResync replaces the server registry wholesale
// (db.Load): the change stream emits a resync marker, which must travel
// the wire and re-baseline the replica from a fresh snapshot.
func TestWatchLoadTriggersResync(t *testing.T) {
	srv, svc := startServer(t, 8, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	stats := metrics.NewFederationStats()
	startWatch(t, c, rep, registry.RemoteWatchConfig{Stats: stats})
	db := svc.DB()
	waitDBConverged(t, db, rep)

	// Snapshot a different fleet and Load it over the registry.
	other := registry.NewDB()
	if err := registry.DefaultFleetSpec(12).Populate(other, time.Unix(0, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := other.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(&buf); err != nil {
		t.Fatal(err)
	}
	waitDBConverged(t, db, rep)
	if got := stats.Snapshot().WatchResyncs; got < 1 {
		t.Fatalf("counted %d resyncs, want >= 1", got)
	}
}

// TestWatchDisabledServerDegradesToPoll is the mixed-fleet drill: against
// a server that answers the subscribe like a pre-watch build (unknown
// type, error reply), the watcher must latch poll mode, converge via
// snapshot fetches, and leave regular request traffic untouched.
func TestWatchDisabledServerDegradesToPoll(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(8).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := ServeOpts(svc, "127.0.0.1:0", netsim.Local(), ServeConfig{DisableWatch: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	stats := metrics.NewFederationStats()
	w := startWatch(t, c, rep, registry.RemoteWatchConfig{
		Stats: stats, PollInterval: 5 * time.Millisecond,
	})
	if w.Mode() != registry.WatchModePoll {
		t.Fatalf("mode = %q, want poll against a watch-less server", w.Mode())
	}
	waitDBConverged(t, db, rep)

	// Freshness rides the poll ticker.
	_ = db.UpdateDynamic(db.Names()[0], registry.Dynamic{Load: 42, LastUpdate: time.Unix(8000, 0)})
	waitDBConverged(t, db, rep)
	if got := stats.Snapshot().WatchPolls; got < 2 {
		t.Fatalf("counted %d polls, want >= 2", got)
	}
	// The same connection still serves the classic request path.
	g, err := c.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(g); err != nil {
		t.Fatal(err)
	}
}

// TestWatchJSONFloorStreams pins the connection to the JSON codec: the
// watch family must work at the codec floor too (the degradation ladder
// keys off servers that lack the message, not off the codec).
func TestWatchJSONFloorStreams(t *testing.T) {
	srv, svc := startServer(t, 8, netsim.Local())
	c, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{Codecs: []wire.Codec{wire.JSON}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	w := startWatch(t, c, rep, registry.RemoteWatchConfig{})
	db := svc.DB()
	waitDBConverged(t, db, rep)
	_ = db.UpdateDynamic(db.Names()[0], registry.Dynamic{Load: 7, LastUpdate: time.Unix(9000, 0)})
	waitDBConverged(t, db, rep)
	if w.Mode() != registry.WatchModeStream {
		t.Fatalf("mode = %q; JSON codec should still stream", w.Mode())
	}
}

// TestFetchSnapshotPages pins the snapshot paging path: a fleet whose
// full record batch exceeds wire.MaxFrame (~10k machines) must arrive
// complete and duplicate-free through sorted-name select pages — the
// regression that used to fail every baseline, resync, and poll fetch
// at that scale with a frame-limit error.
func TestFetchSnapshotPages(t *testing.T) {
	const n = 10000
	srv, svc := startServer(t, n, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ms, err := c.FetchSnapshot(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != n {
		t.Fatalf("fetched %d records, want %d", len(ms), n)
	}
	seen := make(map[string]struct{}, len(ms))
	for _, m := range ms {
		if _, dup := seen[m.Static.Name]; dup {
			t.Fatalf("record %s duplicated across pages", m.Static.Name)
		}
		seen[m.Static.Name] = struct{}{}
	}
	for _, name := range svc.DB().Names() {
		if _, ok := seen[name]; !ok {
			t.Fatalf("record %s missing from the paged snapshot", name)
		}
	}
}

// TestWatchFedPoolMatchesRefresh is the allocation-equivalence oracle: a
// pool living on a watch-fed replica (events applied incrementally through
// the dispatcher) must allocate exactly like a pool built fresh from a
// full snapshot of the same post-churn state.
func TestWatchFedPoolMatchesRefresh(t *testing.T) {
	srv, svc := startServer(t, 32, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep := registry.NewDB()
	startWatch(t, c, rep, registry.RemoteWatchConfig{})
	db := svc.DB()
	waitDBConverged(t, db, rep)

	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	disp := pool.NewDispatcher(rep, 4096)
	disp.Start()
	defer disp.Stop()
	watchFed, err := pool.New(pool.Config{
		Name: query.Name(q), DB: rep, Exclusive: false, Events: disp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer watchFed.Close()

	// Churn the authoritative registry so loads diverge from the baseline;
	// the watch-fed pool sees it only through dispatched events.
	for i, n := range db.Names() {
		_ = db.UpdateDynamic(n, registry.Dynamic{Load: float64((i * 7) % 13),
			ActiveJobs: i % 3, LastUpdate: time.Unix(int64(9500+i), 0)})
	}
	waitDBConverged(t, db, rep)

	// Reference: a brand-new pool over a fresh full snapshot of the same
	// state (the Refresh path the watch feed replaces).
	ms, err := c.FetchSnapshot(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	fresh := registry.NewDB()
	for _, m := range ms {
		if err := fresh.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	reference, err := pool.New(pool.Config{
		Name: query.Name(q), DB: fresh, Exclusive: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reference.Close()

	if watchFed.Size() != reference.Size() {
		t.Fatalf("pool sizes diverged: watch-fed %d, reference %d", watchFed.Size(), reference.Size())
	}
	// Drain both pools: identical state and objective must yield the same
	// machine sequence.
	for i := 0; ; i++ {
		wl, werr := watchFed.Allocate(q)
		rl, rerr := reference.Allocate(q)
		if (werr == nil) != (rerr == nil) {
			t.Fatalf("allocation %d diverged: watch-fed err %v, reference err %v", i, werr, rerr)
		}
		if werr != nil {
			break
		}
		if wl.Machine != rl.Machine {
			t.Fatalf("allocation %d diverged: watch-fed %q, reference %q", i, wl.Machine, rl.Machine)
		}
	}
}
