package core

import (
	"errors"
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/policy"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

func newOverloadService(t *testing.T, machines int) *Service {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(machines).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		svc.Close()
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestServerAdmissionByFromKey wires the whole admission stack end to
// end: a policy.Admitter keyed off the envelope From identity, bridged
// into the wire layer via AdmitFrom, sheds a noisy account's queries
// with Busy while control frames and other accounts flow untouched.
func TestServerAdmissionByFromKey(t *testing.T) {
	svc := newOverloadService(t, 8)
	admitter := policy.NewAdmitter(policy.AdmitLimit{Rate: 0.001, Burst: 1}, map[string]policy.AdmitLimit{
		"calm": {Rate: 1000, Burst: 1000},
	})
	srv, err := ServeOpts(svc, "127.0.0.1:0", netsim.Local(), ServeConfig{
		Window:   4,
		Overload: &wire.OverloadPolicy{Admit: AdmitFrom(admitter)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	noisy, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{Timeout: 5 * time.Second, From: "noisy"})
	if err != nil {
		t.Fatal(err)
	}
	defer noisy.Close()

	// Burst of 1: the first query spends the only token...
	g, err := noisy.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	// ...and the second is shed with a retry hint. At 0.001 tokens/s the
	// bucket will not refill within the test.
	_, err = noisy.Request("punch.rsrc.arch = sun")
	var busy *wire.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("over-limit request err = %v, want *wire.BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("Busy carried no retry-after hint")
	}

	// Control traffic from the same shed account is untouched: the lease
	// still releases and pings flow.
	if err := noisy.Ping(); err != nil {
		t.Fatalf("ping from shed account: %v", err)
	}
	if err := noisy.Release(g); err != nil {
		t.Fatalf("release from shed account: %v", err)
	}

	// A well-behaved account has its own bucket and is unaffected.
	calm, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{Timeout: 5 * time.Second, From: "calm"})
	if err != nil {
		t.Fatal(err)
	}
	defer calm.Close()
	for i := 0; i < 3; i++ {
		g, err := calm.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatalf("calm request %d: %v", i, err)
		}
		if err := calm.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUDPOverloadLanes runs the UDP endpoint through the lane dispatcher:
// pings keep working while an always-reject admission gate sheds queries
// with Busy, and the Busy maps to *wire.BusyError on the client.
func TestUDPOverloadLanes(t *testing.T) {
	svc := newOverloadService(t, 4)
	rejectBulk := func(env *wire.Envelope) (bool, time.Duration) {
		return false, 15 * time.Millisecond
	}
	udp, err := ServeUDPOpts(svc, "127.0.0.1:0", UDPOptions{
		Window:   2,
		Overload: &wire.OverloadPolicy{Admit: rejectBulk},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { udp.Close() })

	c, err := DialUDP(udp.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Control frames never touch the admission gate.
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("udp ping %d under admission: %v", i, err)
		}
	}
	_, err = c.Request("punch.rsrc.arch = sun")
	var busy *wire.BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("udp query err = %v, want *wire.BusyError", err)
	}
	if busy.RetryAfter != 15*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 15ms", busy.RetryAfter)
	}
}

// TestUDPOverloadServesQueries is the happy path through the UDP lane
// workers: with overload control on but nothing shedding, the full
// query/release cycle works.
func TestUDPOverloadServesQueries(t *testing.T) {
	svc := newOverloadService(t, 4)
	udp, err := ServeUDPOpts(svc, "127.0.0.1:0", UDPOptions{
		Window:   2,
		Overload: &wire.OverloadPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { udp.Close() })

	c, err := DialUDP(udp.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		g, err := c.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if err := c.Release(g); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
}
