package core

// The watch endpoint pushes the registry change stream over the wire, so a
// remote consumer (a federated peer's pool layer, a fleet dashboard) keeps
// a replica fresh with deltas instead of polling full snapshots. One
// subscription rides a wire stream: the server parks a registry
// Subscription behind it and forwards coalesced event batches as
// watch-events frames; a resync marker (ring overflow, wholesale Load)
// travels as its own frame and tells the consumer to re-baseline.
//
// The client half implements registry.WatchTransport, which is everything
// registry.RemoteWatch needs to maintain a replica: subscribe, and fetch
// snapshots for baselines (and for the poll fallback against peers that
// answer the subscribe with an error reply — the JSON-floor degradation).

import (
	"context"
	"errors"
	"fmt"

	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// watchChunk caps events per watch-events frame so a large coalesced batch
// (worst case: every machine in a big registry changed between polls)
// never exceeds MaxFrame.
const watchChunk = 1024

// serveWatch runs one watch subscription on a server connection. env is
// the subscribing watch request; the handler streams until the peer
// cancels, the connection tears down, or a send fails.
func (s *Server) serveWatch(env *wire.Envelope, st *wire.ServerStream) {
	var req wire.WatchRequest
	if err := env.Decode(&req); err != nil {
		_ = st.Send(wire.ErrorEnvelope(st.ID(), err))
		return
	}
	var conds []query.RsrcCond
	if req.Filter != "" {
		q, err := query.ParseBasic(req.Filter)
		if err != nil {
			_ = st.Send(wire.ErrorEnvelope(st.ID(), fmt.Errorf("core: watch filter: %w", err)))
			return
		}
		conds = query.CompileRsrc(q)
	}
	db := s.svc.DB()
	sub := db.Watch(req.Ring)
	defer sub.Close()

	send := func(m *wire.WatchEvents) error {
		return st.Send(&wire.Envelope{Type: wire.TypeWatchEvents, ID: st.ID(), Msg: m})
	}
	// The ack goes out after the subscription is live: the client baselines
	// with a snapshot fetch on receipt, and every mutation after this point
	// is already queued on sub, so nothing falls in the gap between the two
	// (replayed events are absorbed by the replica's idempotent upserts).
	if err := send(&wire.WatchEvents{Ack: true}); err != nil {
		return
	}
	for {
		select {
		case <-st.Done():
			return
		case <-sub.Ready():
		}
		evs, resync := sub.Poll()
		if resync {
			if err := send(&wire.WatchEvents{Resync: true}); err != nil {
				return
			}
			continue
		}
		wevs := registry.ResolveEvents(db, evs, conds)
		for len(wevs) > 0 {
			n := min(len(wevs), watchChunk)
			if err := send(&wire.WatchEvents{Events: wire.EventSet{Events: wevs[:n]}}); err != nil {
				return
			}
			wevs = wevs[n:]
		}
	}
}

// clientWatchStream adapts one wire stream to registry.WatchStream.
type clientWatchStream struct {
	cs *wire.ClientStream
}

func (ws *clientWatchStream) Recv() (registry.WatchBatch, error) {
	for {
		env, err := ws.cs.Recv(context.Background())
		if err != nil {
			return registry.WatchBatch{}, err
		}
		var we wire.WatchEvents
		if err := env.Decode(&we); err != nil {
			return registry.WatchBatch{}, err
		}
		if we.Ack {
			continue // subscription handshake frame; not a batch
		}
		return registry.WatchBatch{Resync: we.Resync, Events: we.Events.Events}, nil
	}
}

func (ws *clientWatchStream) Close() error { return ws.cs.Close() }

// WatchSubscribe opens a change-stream subscription on the server; it
// implements registry.WatchTransport so a registry.RemoteWatch can drive
// this client directly. A peer that answers the subscribe with an error
// reply instead of the ack frame does not speak watch (pre-watch builds
// bounce the unknown type; the binary codec's inline-string type escape
// carries it far enough for them to answer), reported as
// registry.ErrWatchUnsupported so the watcher degrades to polling.
func (c *Client) WatchSubscribe(ctx context.Context, filter string, ring int) (registry.WatchStream, error) {
	cs, err := c.c.Stream(wire.TypeWatch, wire.WatchRequest{Filter: filter, Ring: ring}, 0)
	if err != nil {
		return nil, err
	}
	env, err := cs.Recv(ctx)
	if err != nil {
		_ = cs.Close()
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("%w: %v", registry.ErrWatchUnsupported, err)
		}
		return nil, err
	}
	var we wire.WatchEvents
	if err := env.Decode(&we); err != nil || !we.Ack {
		_ = cs.Close()
		if err == nil {
			err = errors.New("core: watch subscribe: expected ack frame")
		}
		return nil, err
	}
	return &clientWatchStream{cs: cs}, nil
}

// snapshotPage bounds one select page of a snapshot fetch: a fleet-wide
// record batch must stay under wire.MaxFrame, which an unpaged select
// exceeds somewhere between 5k and 10k machines.
const snapshotPage = 2048

// FetchSnapshot returns the records matching filter; it is the resync
// baseline and the poll fallback of registry.RemoteWatch. Large fleets
// are fetched in sorted-name pages. Paging under concurrent mutation is
// not an atomic cut — a record added or removed mid-fetch can be missed
// or duplicated across page boundaries — which the consumers tolerate by
// construction: replica upserts are idempotent, and anything missed
// lands with the watch events queued behind the baseline (or with the
// next poll).
func (c *Client) FetchSnapshot(ctx context.Context, filter string) ([]*registry.Machine, error) {
	var out []*registry.Machine
	for {
		ms, total, err := c.SelectPage(ctx, filter, snapshotPage, len(out), false)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
		if len(ms) < snapshotPage || len(out) >= total {
			return out, nil
		}
	}
}
