package core

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
)

// RecoveredLease is one lease the durability journal replayed: the full
// lease, its last known deadline, and — for leases won through a
// federation peer — the peer that granted it. core deliberately does not
// import the journal package; the daemon converts journal records into
// these.
type RecoveredLease struct {
	Lease   pool.Lease
	Expires time.Time
	Peer    string // "" for locally-granted leases
	Domain  string // domain the delegated query pinned; "" when unroutable
}

// RecoverOptions tunes crash-recovery reconciliation.
type RecoverOptions struct {
	// Grace extends every restored lease's deadline to at least now+Grace,
	// giving holders whose renewals were in flight during the outage a
	// full TTL to heartbeat again before the reaper considers them dead.
	// Zero defaults to the service's LeaseTTL.
	Grace time.Duration
	// Probe, when set, is asked whether each locally-granted lease's
	// holder is still alive; dead holders' leases are released instead of
	// restored. Nil restores every lease and leaves liveness to the TTL
	// reaper — the daemon's real liveness signal is renewals, and a holder
	// that never renews is reaped after Grace anyway.
	Probe func(ctx context.Context, l *pool.Lease) bool
	// ProbeConcurrency bounds concurrent probes (default 16).
	ProbeConcurrency int
	// ProbeTimeout bounds each probe call (default 2s).
	ProbeTimeout time.Duration
	// Logf receives per-lease reconciliation notes (nil: discarded).
	Logf func(format string, args ...any)
}

// RecoveryReport summarizes what Recover did.
type RecoveryReport struct {
	Restored          int // local leases re-adopted into rebuilt pools
	Reaped            int // local leases whose holders failed the probe
	Dropped           int // local leases dropped (pool unreconstructable or adoption conflict)
	DelegatedRestored int // peer-granted leases whose release route was re-installed
	DelegatedDropped  int // peer-granted leases whose peer is gone
	PoolsAdopted      int // pool instances rebuilt from taken marks
}

// Recover reconciles replayed journal state with reality: probe the
// holders of locally-granted leases (dead ones are released), rebuild the
// pool instances the surviving leases and the registry's taken marks
// imply, re-adopt the surviving leases into those pools, and re-install
// the release routes of peer-granted (delegated) leases. It must run
// after New and before the service starts taking traffic.
//
// The registry behind the service must already hold the replayed records;
// taken marks inside them are what exclusive pool adoption feeds on.
func (s *Service) Recover(leases []RecoveredLease, opts RecoverOptions) (RecoveryReport, error) {
	var rep RecoveryReport
	if opts.Grace <= 0 {
		opts.Grace = s.opts.LeaseTTL
	}
	if opts.ProbeConcurrency <= 0 {
		opts.ProbeConcurrency = 16
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var local, delegated []RecoveredLease
	for _, rl := range leases {
		if rl.Peer != "" {
			delegated = append(delegated, rl)
		} else {
			local = append(local, rl)
		}
	}

	// Probe sweep: bounded-concurrency liveness checks on the holders of
	// locally-granted leases. A dead holder's lease is released — taken
	// mark cleared, journal told — so the machine goes back into
	// circulation immediately instead of after a reap cycle.
	alive := local
	if opts.Probe != nil && len(local) > 0 {
		verdicts := make([]bool, len(local))
		sem := make(chan struct{}, opts.ProbeConcurrency)
		var wg sync.WaitGroup
		for i := range local {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				ctx, cancel := context.WithTimeout(context.Background(), opts.ProbeTimeout)
				defer cancel()
				verdicts[i] = opts.Probe(ctx, &local[i].Lease)
			}(i)
		}
		wg.Wait()
		alive = alive[:0]
		for i, rl := range local {
			if verdicts[i] {
				alive = append(alive, rl)
				continue
			}
			s.db.Release(rl.Lease.Pool, rl.Lease.Machine)
			if s.opts.LeaseLog != nil {
				s.opts.LeaseLog.LeaseReleased(rl.Lease.ID)
			}
			logf("recover: holder of %s (%s) is dead; released", rl.Lease.ID, rl.Lease.Machine)
			rep.Reaped++
		}
	}

	// Rebuild pool instances: every instance a surviving lease names, plus
	// every instance still holding taken marks in the registry (a pool can
	// exist with zero live leases — without adoption its marks would
	// strand the machines forever).
	byInstance := map[string][]RecoveredLease{}
	for _, rl := range alive {
		byInstance[rl.Lease.Pool] = append(byInstance[rl.Lease.Pool], rl)
	}
	s.db.Walk(func(m *registry.Machine) bool {
		if m.TakenBy != "" {
			if _, ok := byInstance[m.TakenBy]; !ok {
				byInstance[m.TakenBy] = nil
			}
		}
		return true
	})
	instances := make([]string, 0, len(byInstance))
	for inst := range byInstance {
		instances = append(instances, inst)
	}
	sort.Strings(instances)

	dropAll := func(inst string, ls []RecoveredLease, why error) {
		s.db.ReleaseAll(inst)
		for _, rl := range ls {
			if s.opts.LeaseLog != nil {
				s.opts.LeaseLog.LeaseReleased(rl.Lease.ID)
			}
			rep.Dropped++
		}
		logf("recover: pool %s not reconstructable (%v); released its claims and %d leases", inst, why, len(ls))
	}

	now := time.Now()
	recoveredIDs := make([]string, 0, len(alive)+len(delegated))
	for _, inst := range instances {
		ls := byInstance[inst]
		name, num, err := parsePoolInstance(inst)
		if err != nil {
			dropAll(inst, ls, err)
			continue
		}
		// Exclusive pools load from their surviving taken marks; a pool
		// with none (a non-exclusive replica's leases) loads its lease
		// machines shared.
		members := s.db.TakenBy(inst)
		exclusive := len(members) > 0
		if !exclusive {
			seen := map[string]bool{}
			for _, rl := range ls {
				if !seen[rl.Lease.Machine] {
					seen[rl.Lease.Machine] = true
					members = append(members, rl.Lease.Machine)
				}
			}
			sort.Strings(members)
		}
		if len(members) == 0 {
			continue // instance evaporated entirely; nothing to rebuild
		}
		ref, err := s.factory.Adopt(name, num, members, exclusive)
		if err != nil {
			dropAll(inst, ls, err)
			continue
		}
		if err := s.dir.Register(ref); err != nil {
			dropAll(inst, ls, err)
			continue
		}
		rep.PoolsAdopted++
		p := ref.Local.(*pool.Pool)
		for _, rl := range ls {
			expires := rl.Expires
			if opts.Grace > 0 {
				if floor := now.Add(opts.Grace); expires.Before(floor) {
					expires = floor
				}
			}
			lease := rl.Lease
			if err := p.AdoptLease(&lease, expires); err != nil {
				s.db.Release(inst, rl.Lease.Machine)
				if s.opts.LeaseLog != nil {
					s.opts.LeaseLog.LeaseReleased(rl.Lease.ID)
				}
				logf("recover: lease %s not adoptable (%v); released", rl.Lease.ID, err)
				rep.Dropped++
				continue
			}
			recoveredIDs = append(recoveredIDs, rl.Lease.ID)
			rep.Restored++
		}
	}

	// Delegated leases: re-install the release route through the granting
	// peer in every pool manager (whichever one later receives the release
	// must find it). A peer that left the mesh makes the lease
	// unreleasable from here — drop it and let the grantor's own reaper
	// reclaim the machine once renewals stop.
	for _, rl := range delegated {
		lease := rl.Lease
		restored := false
		for _, pm := range s.pms {
			if pm.RestoreDelegated(&lease, rl.Peer, rl.Domain) {
				restored = true
			}
		}
		if restored {
			recoveredIDs = append(recoveredIDs, rl.Lease.ID)
			rep.DelegatedRestored++
			continue
		}
		if s.opts.DelegationLog != nil {
			s.opts.DelegationLog.DelegationDone(rl.Lease.ID)
		}
		logf("recover: peer %s of delegated lease %s is gone; dropped", rl.Peer, rl.Lease.ID)
		rep.DelegatedDropped++
	}

	// Shadow accounts are session-scoped and not journaled: the manager
	// restarts empty, so releases of pre-crash grants must tolerate the
	// missing account exactly once per recovered lease.
	s.mu.Lock()
	if s.recovered == nil {
		s.recovered = make(map[string]bool, len(recoveredIDs))
	}
	for _, id := range recoveredIDs {
		s.recovered[id] = true
	}
	s.mu.Unlock()
	return rep, nil
}

// parsePoolInstance splits a pool instance id ("sig/ident#N") back into
// its name and replica number. The identifier may itself contain '#'
// (attribute values are free-form), so the split takes the LAST one.
func parsePoolInstance(inst string) (query.PoolName, int, error) {
	idx := strings.LastIndexByte(inst, '#')
	if idx < 0 {
		return query.PoolName{}, 0, errNoInstanceSep(inst)
	}
	name, err := query.ParsePoolName(inst[:idx])
	if err != nil {
		return query.PoolName{}, 0, err
	}
	num, err := strconv.Atoi(inst[idx+1:])
	if err != nil {
		return query.PoolName{}, 0, err
	}
	return name, num, nil
}

type errNoInstanceSep string

func (e errNoInstanceSep) Error() string {
	return "core: pool instance " + strconv.Quote(string(e)) + " has no '#'"
}

// recoveredLease reports (and consumes) whether id was restored by
// Recover — Release uses it to tolerate the one shadow-release failure a
// pre-crash grant legitimately produces.
func (s *Service) recoveredLease(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recovered[id] {
		return false
	}
	delete(s.recovered, id)
	return true
}
