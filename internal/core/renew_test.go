package core

import (
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/registry"
)

func TestRenewKeepsLeaseAlive(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(1).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{
		DB:           db,
		LeaseTTL:     40 * time.Millisecond,
		ReapInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	g, err := svc.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat well past the original TTL.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := svc.Renew(g); err != nil {
			t.Fatalf("renew failed mid-run: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Still ours: release succeeds.
	if err := svc.Release(g); err != nil {
		t.Fatalf("release after renewals: %v", err)
	}

	// Errors: nil grant and unknown pool.
	if err := svc.Renew(nil); err == nil {
		t.Error("nil grant should fail")
	}
	g.Lease.Pool = "ghost"
	if err := svc.Renew(g); err == nil {
		t.Error("unknown pool should fail")
	}
}

func TestRenewOverTCP(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(2).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := Serve(svc, "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	g, err := c.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Renew(g); err != nil {
		t.Fatalf("renew over tcp: %v", err)
	}
	if err := c.Release(g); err != nil {
		t.Fatal(err)
	}
	// Renewing a released lease fails.
	if err := c.Renew(g); err == nil {
		t.Error("renew after release should fail")
	}
	if err := c.Renew(nil); err == nil {
		t.Error("nil grant should fail")
	}
}
