package core

import (
	"strings"
	"testing"
	"time"

	"actyp/internal/registry"
)

func startUDP(t *testing.T, n int) (*UDPServer, *UDPClient) {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeUDP(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialUDP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		svc.Close()
	})
	return srv, client
}

func TestUDPLifecycle(t *testing.T) {
	_, client := startUDP(t, 16)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	g, err := client.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lease == nil || g.Lease.AccessKey == "" || g.Shadow.User == "" {
		t.Fatalf("grant = %+v", g)
	}
	if err := client.Release(g); err != nil {
		t.Fatal(err)
	}
	if err := client.Release(g); err == nil {
		t.Error("double release should fail")
	}
	if err := client.Release(nil); err == nil {
		t.Error("nil grant should fail")
	}
}

func TestUDPErrorsPropagate(t *testing.T) {
	_, client := startUDP(t, 4)
	_, err := client.Request("punch.rsrc.arch = cray")
	if err == nil || !strings.Contains(err.Error(), "no resources matched") {
		t.Errorf("err = %v", err)
	}
	// The endpoint survives errors.
	if err := client.Ping(); err != nil {
		t.Errorf("ping after error: %v", err)
	}
}

func TestUDPServerCloseIdempotent(t *testing.T) {
	srv, client := startUDP(t, 4)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if err := client.Ping(); err == nil {
		t.Error("ping should time out after server close")
	}
}

func TestUDPCompositeQuery(t *testing.T) {
	_, client := startUDP(t, 32)
	g, err := client.Request("punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if g.Fragments != 2 {
		t.Errorf("fragments = %d", g.Fragments)
	}
	if err := client.Release(g); err != nil {
		t.Fatal(err)
	}
}
