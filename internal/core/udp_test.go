package core

import (
	"net"
	"strings"
	"testing"
	"time"

	"actyp/internal/registry"
	"actyp/internal/wire"
)

func startUDP(t *testing.T, n int) (*UDPServer, *UDPClient) {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeUDP(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialUDP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		svc.Close()
	})
	return srv, client
}

func TestUDPLifecycle(t *testing.T) {
	_, client := startUDP(t, 16)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	g, err := client.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lease == nil || g.Lease.AccessKey == "" || g.Shadow.User == "" {
		t.Fatalf("grant = %+v", g)
	}
	if err := client.Release(g); err != nil {
		t.Fatal(err)
	}
	if err := client.Release(g); err == nil {
		t.Error("double release should fail")
	}
	if err := client.Release(nil); err == nil {
		t.Error("nil grant should fail")
	}
}

func TestUDPErrorsPropagate(t *testing.T) {
	_, client := startUDP(t, 4)
	_, err := client.Request("punch.rsrc.arch = cray")
	if err == nil || !strings.Contains(err.Error(), "no resources matched") {
		t.Errorf("err = %v", err)
	}
	// The endpoint survives errors.
	if err := client.Ping(); err != nil {
		t.Errorf("ping after error: %v", err)
	}
}

func TestUDPServerCloseIdempotent(t *testing.T) {
	srv, client := startUDP(t, 4)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if err := client.Ping(); err == nil {
		t.Error("ping should time out after server close")
	}
}

// startSlowUDP serves a ScanCost-modelled service over UDP with the given
// dispatch window: 200 machines x 2ms makes each query take ~400ms.
func startSlowUDP(t *testing.T, window int) *UDPServer {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(200).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, ScanCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeUDPWindow(svc, "127.0.0.1:0", window)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

// slowQueryThenPing starts a slow query from one UDP client, lets it get
// in flight, then measures a second client's ping round trip.
func slowQueryThenPing(t *testing.T, srv *UDPServer) (pingElapsed, queryElapsed time.Duration) {
	t.Helper()
	qc, err := DialUDP(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	pc, err := DialUDP(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	type result struct {
		elapsed time.Duration
		err     error
	}
	queryDone := make(chan result, 1)
	start := time.Now()
	go func() {
		g, err := qc.Request("punch.rsrc.arch = sun")
		if err == nil {
			err = qc.Release(g)
		}
		queryDone <- result{time.Since(start), err}
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query get in flight
	pingStart := time.Now()
	if err := pc.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	pingElapsed = time.Since(pingStart)
	q := <-queryDone
	if q.err != nil {
		t.Fatalf("slow query: %v", q.err)
	}
	if q.elapsed < 300*time.Millisecond {
		t.Fatalf("query took %v; the ScanCost model did not make it slow enough", q.elapsed)
	}
	return pingElapsed, q.elapsed
}

// TestUDPWindowBoundsDispatch proves the in-flight window is real in both
// directions: with window=1 a ping queues behind a slow query (dispatch is
// serialized — the flood bound), while with a wide window it overtakes
// (dispatch still overlaps up to the bound).
func TestUDPWindowBoundsDispatch(t *testing.T) {
	t.Run("window=1 serializes", func(t *testing.T) {
		srv := startSlowUDP(t, 1)
		ping, query := slowQueryThenPing(t, srv)
		if ping < 100*time.Millisecond {
			t.Errorf("window=1 ping took only %v behind a %v query; expected it to wait", ping, query)
		}
	})
	t.Run("window=32 overlaps", func(t *testing.T) {
		srv := startSlowUDP(t, 32)
		ping, query := slowQueryThenPing(t, srv)
		if ping > query/2 {
			t.Errorf("ping took %v behind a %v query: it queued despite the window", ping, query)
		}
	})
}

func TestUDPCompositeQuery(t *testing.T) {
	_, client := startUDP(t, 32)
	g, err := client.Request("punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if g.Fragments != 2 {
		t.Errorf("fragments = %d", g.Fragments)
	}
	if err := client.Release(g); err != nil {
		t.Fatal(err)
	}
}

// TestUDPReplySocketPool: with a sharded reply pool, sequential pings
// round-robin across sockets, so replies arrive from more than one source
// port — which the unconnected, id-correlating client must accept.
func TestUDPReplySocketPool(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(8).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := ServeUDPOpts(svc, "127.0.0.1:0", UDPOptions{Sockets: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Sockets() != 4 {
		t.Fatalf("Sockets() = %d, want 4", srv.Sockets())
	}

	serverAddr, err := net.ResolveUDPAddr("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ports := map[int]bool{}
	buf := make([]byte, 64*1024)
	for i := 1; i <= 8; i++ {
		raw, err := wire.EncodeDatagram(&wire.Envelope{Type: wire.TypePing, ID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.WriteToUDP(raw, serverAddr); err != nil {
			t.Fatal(err)
		}
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := wire.DecodeDatagram(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if reply.Type != wire.TypePing || reply.ID != uint64(i) {
			t.Fatalf("reply %d = %s/%d", i, reply.Type, reply.ID)
		}
		ports[from.Port] = true
	}
	if len(ports) < 2 {
		t.Errorf("8 replies all came from %d source port(s); the pool is not sharding", len(ports))
	}

	// The stock client flow keeps working against a sharded server.
	client, err := DialUDP(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	g, err := client.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Release(g); err != nil {
		t.Fatal(err)
	}
}
