package core

import (
	"testing"
	"time"

	"actyp/internal/classads"
	"actyp/internal/policy"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
)

// TestClassAdsLanguageThroughService exercises the multi-protocol support
// of Section 5.1: a Condor-style requirements expression is translated by
// the query manager and resolved by the same pipeline.
func TestClassAdsLanguageThroughService(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(32).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{
		DB:          db,
		Translators: map[string]querymgr.Translator{"classads": classads.New()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	g, err := svc.RequestLang("classads", `(Arch == "sun" || Arch == "hp") && Memory >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fragments != 2 {
		t.Errorf("fragments = %d", g.Fragments)
	}
	if g.Lease == nil || g.Lease.Machine == "" {
		t.Fatal("no lease from classads query")
	}
	if err := svc.Release(g); err != nil {
		t.Fatal(err)
	}

	// The native language still works alongside.
	g2, err := svc.Request("punch.rsrc.arch = alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Release(g2); err != nil {
		t.Fatal(err)
	}
}

// TestUsagePolicyThroughService exercises white-pages field 19 end to end:
// the paper's example policy ("public users are only allowed to access
// this machine if its load is below a specified threshold") governs
// allocation.
func TestUsagePolicyThroughService(t *testing.T) {
	db := registry.NewDB()
	machines, err := registry.HomogeneousFleetSpec(2).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// m0000 carries the paper's policy; m0001 is unrestricted. Give
	// m0000 a high load so the policy bites for public users.
	machines[0].Policy.UsagePolicy = "/punch/policies/public-threshold"
	machines[0].Dynamic.Load = 1.5
	for _, m := range machines {
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	store := policy.NewStore()
	if err := store.Register("/punch/policies/public-threshold",
		"deny if group == public && load >= 0.5\nallow"); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, Policies: store})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A public user can only get the unrestricted machine.
	pub := "punch.rsrc.arch = sun\npunch.user.accessgroup = public"
	g1, err := svc.Request(pub)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Lease.Machine != "m0001" {
		t.Errorf("public user landed on %s", g1.Lease.Machine)
	}
	// Second public request starves: m0001 is taken, m0000 denied.
	if _, err := svc.Request(pub); err == nil {
		t.Error("second public request should starve on the policy")
	}
	// An ece user is allowed onto the loaded machine... but it is over
	// its own load ceiling? MaxLoad is 2*cpus >= 2, load 1.5 is fine.
	g2, err := svc.Request("punch.rsrc.arch = sun\npunch.user.accessgroup = ece")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Lease.Machine != "m0000" {
		t.Errorf("ece user landed on %s", g2.Lease.Machine)
	}
	for _, g := range []*Grant{g1, g2} {
		if err := svc.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnknownPolicyRefBehavesLikeUnimplemented pins the compatibility
// behaviour: a field-19 reference with no registered policy allows
// everything, exactly like the paper's unimplemented field.
func TestUnknownPolicyRefBehavesLikeUnimplemented(t *testing.T) {
	db := registry.NewDB()
	machines, err := registry.HomogeneousFleetSpec(1).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	machines[0].Policy.UsagePolicy = "/punch/policies/never-registered"
	if err := db.Add(machines[0]); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, Policies: policy.NewStore()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	g, err := svc.Request("punch.rsrc.arch = sun\npunch.user.accessgroup = public")
	if err != nil {
		t.Fatalf("unknown policy ref must not deny: %v", err)
	}
	if err := svc.Release(g); err != nil {
		t.Fatal(err)
	}
}
