package core

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/wire"
)

// UDPServer exposes a Service over UDP. Section 6 of the paper notes that
// "queries propagate from one stage to the next via TCP or UDP"; the UDP
// path trades connection state for datagram semantics — each request and
// reply is one datagram (always a JSON envelope, no length prefix:
// datagrams carry no per-connection negotiation state, so they stay on the
// codec floor). Requests larger than a datagram or replies lost in flight
// are the client's problem, exactly as with the paper's UDP stages.
//
// Replies are sharded round-robin across a small pool of sockets: the Go
// runtime serializes writes per file descriptor, so under a flood of
// concurrent handlers one reply socket becomes the write-side bottleneck.
// Clients must therefore correlate replies by envelope id, not by source
// port (UDPClient does; see its doc for the NAT caveat).
type UDPServer struct {
	svc     *Service
	conn    *net.UDPConn   // request socket, also replies[0]
	replies []*net.UDPConn // reply socket pool, round-robin
	next    atomic.Uint64
	sem     chan struct{} // in-flight dispatch window (FIFO path)
	lanes   *wire.Lanes   // overload path: per-lane queues, nil = FIFO
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// UDPOptions tunes a UDP endpoint.
type UDPOptions struct {
	// Window is the in-flight dispatch window: at most this many datagrams
	// are served concurrently. Beyond it the read loop stops draining the
	// socket, so a flood backs up into the kernel buffer and drops there.
	// Zero means wire.DefaultWindow; negative (or explicit 1) serializes
	// dispatch.
	Window int
	// Sockets sizes the reply socket pool (the request socket is member
	// zero). Zero picks GOMAXPROCS, capped at 16; one restores the single
	// shared-socket behaviour.
	Sockets int
	// Overload, when set, enables overload control on the datagram path:
	// decoded requests route through priority lanes served by a fixed
	// pool of Window workers, with admission and deadline-aware shedding
	// answered by Busy datagrams. Nil keeps the FIFO semaphore path.
	Overload *wire.OverloadPolicy
}

// ServeUDP starts a UDP endpoint for svc on addr (e.g. "127.0.0.1:0")
// with the default options.
func ServeUDP(svc *Service, addr string) (*UDPServer, error) {
	return ServeUDPOpts(svc, addr, UDPOptions{})
}

// ServeUDPWindow is ServeUDP with an explicit in-flight dispatch window
// (values below 1 serialize dispatch, as they always did here).
func ServeUDPWindow(svc *Service, addr string, window int) (*UDPServer, error) {
	if window < 1 {
		window = -1 // sub-1 means serial; UDPOptions treats 0 as the default
	}
	return ServeUDPOpts(svc, addr, UDPOptions{Window: window})
}

// ServeUDPOpts is ServeUDP with explicit options.
func ServeUDPOpts(svc *Service, addr string, opts UDPOptions) (*UDPServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("core: listen udp %s: %w", addr, err)
	}
	if opts.Window == 0 {
		opts.Window = wire.DefaultWindow
	}
	if opts.Window < 1 {
		opts.Window = 1
	}
	if opts.Sockets <= 0 {
		opts.Sockets = min(runtime.GOMAXPROCS(0), 16)
	}
	s := &UDPServer{svc: svc, conn: conn, sem: make(chan struct{}, opts.Window)}
	s.replies = append(s.replies, conn)
	for len(s.replies) < opts.Sockets {
		// Extra reply sockets bind the same interface on ephemeral ports;
		// replies from them carry a different source port, which is why
		// clients correlate by envelope id.
		rc, err := net.ListenUDP("udp", &net.UDPAddr{IP: udpAddr.IP})
		if err != nil {
			for _, c := range s.replies {
				_ = c.Close()
			}
			return nil, fmt.Errorf("core: udp reply socket: %w", err)
		}
		s.replies = append(s.replies, rc)
	}
	if opts.Overload != nil {
		s.lanes = wire.NewLanes(opts.Overload, func(env *wire.Envelope, meta any, busy *wire.BusyReply) {
			s.sendReply(wire.BusyEnvelope(env.ID, busy), meta.(*net.UDPAddr))
		})
		for i := 0; i < opts.Window; i++ {
			s.wg.Add(1)
			go s.laneWorker()
		}
	}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Sockets reports the reply socket pool size (observability and tests).
func (s *UDPServer) Sockets() int { return len(s.replies) }

// Addr returns the endpoint address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the endpoint.
func (s *UDPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, c := range s.replies {
		_ = c.Close()
	}
	if s.lanes != nil {
		s.lanes.Close() // wakes the lane workers; queued items drain
	}
	s.wg.Wait()
}

func (s *UDPServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		env, err := wire.DecodeDatagram(buf[:n])
		if err != nil {
			continue // drop malformed datagrams, as UDP services do
		}
		if s.lanes != nil {
			// Overload path: classify into a priority lane (shedding
			// over-limit or expired requests with a Busy datagram); the
			// fixed worker pool pops control-first. ReadFromUDP returns a
			// fresh addr each call, so handing it off is safe.
			s.lanes.Offer(env, from)
			continue
		}
		// Handle each datagram concurrently up to the window; replies
		// race, which is fine because the client correlates by envelope
		// id. A full window blocks the read here, which is the bound.
		s.sem <- struct{}{}
		s.wg.Add(1)
		go func(env *wire.Envelope, from *net.UDPAddr) {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			// serveEnvelope is the same dispatcher the TCP server uses;
			// only the framing differs (one datagram per envelope).
			reply := serveEnvelope(s.svc, env)
			if reply == nil {
				return
			}
			s.sendReply(reply, from)
		}(env, from)
	}
}

// laneWorker serves the overload path: pop the next request in priority
// order, dispatch it, reply. One such worker per window slot.
func (s *UDPServer) laneWorker() {
	defer s.wg.Done()
	for {
		env, meta, lane, ok := s.lanes.Pop()
		if !ok {
			return // closed and drained
		}
		reply := serveEnvelope(s.svc, env)
		s.lanes.Done(lane)
		if reply != nil {
			s.sendReply(reply, meta.(*net.UDPAddr))
		}
	}
}

// sendReply encodes one reply datagram and writes it from the next
// round-robin reply socket: per-fd write locks stop being the choke
// point under concurrent handlers.
func (s *UDPServer) sendReply(reply *wire.Envelope, to *net.UDPAddr) {
	raw, err := wire.EncodeDatagram(reply)
	if err != nil {
		return
	}
	sock := s.replies[s.next.Add(1)%uint64(len(s.replies))]
	_, _ = sock.WriteToUDP(raw, to)
}

// UDPClient is the datagram counterpart of Client. Lost datagrams surface
// as timeouts; the caller retries (queries are idempotent until granted).
//
// The socket is deliberately unconnected: the server shards replies across
// a socket pool, so a reply's source port need not match the port the
// request went to, and a connected socket's kernel filter would drop it.
// Replies are correlated by envelope id instead. (A NAT that keys on the
// full 4-tuple would also drop such replies — the paper's UDP stages, like
// this one, assume LAN-grade reachability.)
type UDPClient struct {
	conn    *net.UDPConn
	server  *net.UDPAddr
	timeout time.Duration
	nextID  uint64
}

// DialUDP connects a UDP client. A non-positive timeout defaults to 2s.
func DialUDP(addr string, timeout time.Duration) (*UDPClient, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", nil)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &UDPClient{conn: conn, server: udpAddr, timeout: timeout}, nil
}

// Close drops the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Ping round-trips a liveness datagram.
func (c *UDPClient) Ping() error {
	reply, err := c.roundTrip(&wire.Envelope{Type: wire.TypePing, ID: c.id()})
	if err != nil {
		return err
	}
	if reply.Type != wire.TypePing {
		return fmt.Errorf("core: udp ping got %q", reply.Type)
	}
	return nil
}

// Request submits a query over UDP.
func (c *UDPClient) Request(text string) (*Grant, error) {
	env, err := wire.NewEnvelope(wire.TypeQuery, c.id(), wire.QueryRequest{Text: text})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return nil, err
	}
	var qr wire.QueryReply
	if err := reply.Decode(&qr); err != nil {
		return nil, err
	}
	if qr.Lease == nil {
		return nil, fmt.Errorf("core: udp server granted no lease")
	}
	g := &Grant{Lease: qr.Lease, Fragments: qr.Fragments, Succeeded: qr.Succeeded}
	if qr.Shadow != nil {
		g.Shadow = *qr.Shadow
	}
	return g, nil
}

// Release returns a grant over UDP.
func (c *UDPClient) Release(g *Grant) error {
	if g == nil || g.Lease == nil {
		return fmt.Errorf("core: nil grant")
	}
	req := wire.ReleaseRequest{Lease: *g.Lease}
	if g.Shadow.User != "" {
		sh := g.Shadow
		req.Shadow = &sh
	}
	env, err := wire.NewEnvelope(wire.TypeRelease, c.id(), req)
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return err
	}
	if reply.Type != wire.TypeRelease {
		return fmt.Errorf("core: udp release got %q", reply.Type)
	}
	return nil
}

func (c *UDPClient) id() uint64 {
	c.nextID++
	return c.nextID
}

func (c *UDPClient) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	deadline := time.Now().Add(c.timeout)
	// Datagrams are JSON, so the deadline always propagates: a server
	// running overload control sheds this request once it cannot be
	// answered in time instead of occupying a worker.
	env.SetDeadline(deadline)
	raw, err := wire.EncodeDatagram(env)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.WriteToUDP(raw, c.server); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return nil, fmt.Errorf("core: udp read: %w", err)
		}
		reply, err := wire.DecodeDatagram(buf[:n])
		if err != nil {
			continue // malformed datagram; keep waiting for ours
		}
		if reply.ID != env.ID {
			continue // stale reply from an earlier (timed-out) exchange
		}
		if reply.Type == wire.TypeError {
			var e wire.ErrorReply
			if err := reply.Decode(&e); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: server: %s", e.Message)
		}
		if reply.Type == wire.TypeBusy {
			var b wire.BusyReply
			if err := reply.Decode(&b); err != nil {
				return nil, err
			}
			return nil, &wire.BusyError{RetryAfter: time.Duration(b.RetryAfterMS) * time.Millisecond, Reason: b.Reason}
		}
		return reply, nil
	}
}
