package core

import (
	"fmt"
	"net"
	"sync"
	"time"

	"actyp/internal/wire"
)

// UDPServer exposes a Service over UDP. Section 6 of the paper notes that
// "queries propagate from one stage to the next via TCP or UDP"; the UDP
// path trades connection state for datagram semantics — each request and
// reply is one datagram (always a JSON envelope, no length prefix:
// datagrams carry no per-connection negotiation state, so they stay on the
// codec floor). Requests larger than a datagram or replies lost in flight
// are the client's problem, exactly as with the paper's UDP stages.
type UDPServer struct {
	svc  *Service
	conn *net.UDPConn
	sem  chan struct{} // in-flight dispatch window
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeUDP starts a UDP endpoint for svc on addr (e.g. "127.0.0.1:0")
// with the default in-flight dispatch window.
func ServeUDP(svc *Service, addr string) (*UDPServer, error) {
	return ServeUDPWindow(svc, addr, wire.DefaultWindow)
}

// ServeUDPWindow is ServeUDP with an explicit in-flight dispatch window:
// at most `window` datagrams are being served concurrently (values below 1
// serialize dispatch). Beyond it the read loop stops draining the socket,
// so a datagram flood backs up into the kernel buffer and drops there —
// the endpoint no longer spawns one goroutine per datagram without bound.
func ServeUDPWindow(svc *Service, addr string, window int) (*UDPServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("core: listen udp %s: %w", addr, err)
	}
	if window < 1 {
		window = 1
	}
	s := &UDPServer{svc: svc, conn: conn, sem: make(chan struct{}, window)}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the endpoint address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// Close stops the endpoint.
func (s *UDPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.conn.Close()
	s.wg.Wait()
}

func (s *UDPServer) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		env, err := wire.DecodeDatagram(buf[:n])
		if err != nil {
			continue // drop malformed datagrams, as UDP services do
		}
		// Handle each datagram concurrently up to the window; replies
		// race, which is fine because the client correlates by envelope
		// id. A full window blocks the read here, which is the bound.
		s.sem <- struct{}{}
		s.wg.Add(1)
		go func(env *wire.Envelope, from *net.UDPAddr) {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			// serveEnvelope is the same dispatcher the TCP server uses;
			// only the framing differs (one datagram per envelope).
			reply := serveEnvelope(s.svc, env)
			if reply == nil {
				return
			}
			raw, err := wire.EncodeDatagram(reply)
			if err != nil {
				return
			}
			_, _ = s.conn.WriteToUDP(raw, from)
		}(env, from)
	}
}

// UDPClient is the datagram counterpart of Client. Lost datagrams surface
// as timeouts; the caller retries (queries are idempotent until granted).
type UDPClient struct {
	conn    *net.UDPConn
	timeout time.Duration
	nextID  uint64
}

// DialUDP connects a UDP client. A non-positive timeout defaults to 2s.
func DialUDP(addr string, timeout time.Duration) (*UDPClient, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &UDPClient{conn: conn, timeout: timeout}, nil
}

// Close drops the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Ping round-trips a liveness datagram.
func (c *UDPClient) Ping() error {
	reply, err := c.roundTrip(&wire.Envelope{Type: wire.TypePing, ID: c.id()})
	if err != nil {
		return err
	}
	if reply.Type != wire.TypePing {
		return fmt.Errorf("core: udp ping got %q", reply.Type)
	}
	return nil
}

// Request submits a query over UDP.
func (c *UDPClient) Request(text string) (*Grant, error) {
	env, err := wire.NewEnvelope(wire.TypeQuery, c.id(), wire.QueryRequest{Text: text})
	if err != nil {
		return nil, err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return nil, err
	}
	var qr wire.QueryReply
	if err := reply.Decode(&qr); err != nil {
		return nil, err
	}
	if qr.Lease == nil {
		return nil, fmt.Errorf("core: udp server granted no lease")
	}
	g := &Grant{Lease: qr.Lease, Fragments: qr.Fragments, Succeeded: qr.Succeeded}
	if qr.Shadow != nil {
		g.Shadow = *qr.Shadow
	}
	return g, nil
}

// Release returns a grant over UDP.
func (c *UDPClient) Release(g *Grant) error {
	if g == nil || g.Lease == nil {
		return fmt.Errorf("core: nil grant")
	}
	req := wire.ReleaseRequest{Lease: *g.Lease}
	if g.Shadow.User != "" {
		sh := g.Shadow
		req.Shadow = &sh
	}
	env, err := wire.NewEnvelope(wire.TypeRelease, c.id(), req)
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return err
	}
	if reply.Type != wire.TypeRelease {
		return fmt.Errorf("core: udp release got %q", reply.Type)
	}
	return nil
}

func (c *UDPClient) id() uint64 {
	c.nextID++
	return c.nextID
}

func (c *UDPClient) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	raw, err := wire.EncodeDatagram(env)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(raw); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	deadline := time.Now().Add(c.timeout)
	for {
		if err := c.conn.SetReadDeadline(deadline); err != nil {
			return nil, err
		}
		n, err := c.conn.Read(buf)
		if err != nil {
			return nil, fmt.Errorf("core: udp read: %w", err)
		}
		reply, err := wire.DecodeDatagram(buf[:n])
		if err != nil {
			continue // malformed datagram; keep waiting for ours
		}
		if reply.ID != env.ID {
			continue // stale reply from an earlier (timed-out) exchange
		}
		if reply.Type == wire.TypeError {
			var e wire.ErrorReply
			if err := reply.Decode(&e); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("core: server: %s", e.Message)
		}
		return reply, nil
	}
}
