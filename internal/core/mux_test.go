package core

import (
	"sync"
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/registry"
)

// TestOneConnectionConcurrentInFlight is the -race stress of the
// multiplexed transport at the service level: many goroutines share ONE
// client connection, each repeatedly granting and releasing. Every caller
// must get a lease it can successfully release — a reply correlated to the
// wrong caller would release someone else's lease and double-release its
// own, which the service rejects.
func TestOneConnectionConcurrentInFlight(t *testing.T) {
	srv, _ := startServer(t, 128, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const callers, iters = 16, 20
	var mu sync.Mutex
	held := map[string]bool{} // lease id -> currently held
	var wg sync.WaitGroup
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g, err := c.Request("punch.rsrc.arch = sun")
				if err != nil {
					t.Errorf("request: %v", err)
					return
				}
				if g.Lease == nil || g.Lease.AccessKey == "" || g.Shadow.User == "" {
					t.Errorf("incomplete grant: %+v", g)
					return
				}
				mu.Lock()
				if held[g.Lease.ID] {
					t.Errorf("lease %s granted twice concurrently", g.Lease.ID)
				}
				held[g.Lease.ID] = true
				mu.Unlock()
				if err := c.Release(g); err != nil {
					t.Errorf("release: %v", err)
					return
				}
				mu.Lock()
				held[g.Lease.ID] = false
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestPingOvertakesSlowQuery proves the tentpole's latency property: on a
// single multiplexed connection, a heartbeat issued behind a slow query
// completes long before the query does, because the slow dispatch occupies
// one worker while the ping flows through another.
func TestPingOvertakesSlowQuery(t *testing.T) {
	// ScanCost pins the pool to the oracle engine and charges wall-clock
	// time per scanned entry: 200 machines x 2ms = ~400ms per query.
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(200).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, ScanCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(svc, "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		elapsed time.Duration
		err     error
	}
	queryDone := make(chan result, 1)
	queryStart := time.Now()
	go func() {
		g, err := c.Request("punch.rsrc.arch = sun")
		if err == nil {
			err = c.Release(g)
		}
		queryDone <- result{time.Since(queryStart), err}
	}()

	time.Sleep(50 * time.Millisecond) // let the slow query get in flight
	pingStart := time.Now()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping behind slow query: %v", err)
	}
	pingElapsed := time.Since(pingStart)

	q := <-queryDone
	if q.err != nil {
		t.Fatalf("slow query: %v", q.err)
	}
	if q.elapsed < 300*time.Millisecond {
		t.Fatalf("query took %v; the ScanCost model did not make it slow enough to test against", q.elapsed)
	}
	// The ping must not have waited out the query: it left after the
	// query was in flight yet finished far inside the query's window.
	if pingElapsed > q.elapsed/2 {
		t.Errorf("ping took %v behind a %v query: it queued behind the slow dispatch", pingElapsed, q.elapsed)
	}
}

// TestServeWindowOneSerializes pins the backward-compatible baseline: with
// window=1 the connection is handled strictly serially, so the same ping
// DOES wait for the slow query in front of it. (This is the behaviour the
// transport benchmarks compare against.)
func TestServeWindowOneSerializes(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(200).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, ScanCost: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeWindow(svc, "127.0.0.1:0", netsim.Local(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	release := make(chan error, 1)
	go func() {
		g, err := c.Request("punch.rsrc.arch = sun")
		if err == nil {
			err = c.Release(g)
		}
		release <- err
	}()
	time.Sleep(50 * time.Millisecond)
	pingStart := time.Now()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if elapsed := time.Since(pingStart); elapsed < 100*time.Millisecond {
		t.Errorf("window=1 ping took only %v; expected it to wait for the slow query", elapsed)
	}
	if err := <-release; err != nil {
		t.Fatal(err)
	}
}
