package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/netsim"
	"actyp/internal/policy"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// Server exposes a Service over TCP using the wire protocol, so clients
// (network desktops) and remote pipeline stages can reach it across a LAN
// or WAN. Each connection is multiplexed: a reader goroutine feeds decoded
// frames to a bounded worker pool and a writer goroutine drains the
// replies, so one desktop can keep up to `window` requests in flight on a
// single connection and a slow query never blocks the renewals, releases,
// and pings queued behind it.
type Server struct {
	svc *Service
	ln  net.Listener
	cfg ServeConfig

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// clampOnce makes the window-clamp diagnostic fire once per listener,
	// not once per connection.
	clampOnce sync.Once

	// Logf, when set, receives connection-level errors (default: drop).
	Logf func(format string, args ...any)
}

// ServeConfig tunes a Server's per-connection transport.
type ServeConfig struct {
	// Window is the per-connection in-flight window: how many requests
	// one connection may have executing concurrently. Zero means
	// wire.DefaultWindow; negative (or explicit 1) serializes each
	// connection, the pre-multiplexing behaviour.
	Window int
	// Codecs is the wire-codec negotiation preference (nil means
	// wire.DefaultCodecs: binary preferred, JSON floor). Offering only
	// wire.JSON pins every connection to JSON.
	Codecs []wire.Codec
	// DisableNegotiation makes the server behave like a pre-codec build:
	// plain JSON, hellos dispatched (and rejected) as unknown requests.
	DisableNegotiation bool
	// Overload, when set, enables overload control on every connection:
	// priority-lane dispatch, admission, and deadline-aware shedding.
	// See wire.OverloadPolicy.
	Overload *wire.OverloadPolicy
	// Stats, when set, accounts every frame served (bytes, frames,
	// compressed-vs-raw) per codec. See metrics.WireStats.
	Stats *metrics.WireStats
	// DisableWatch turns the watch stream endpoint off: subscribe attempts
	// are dispatched as unknown requests and bounce with an error reply,
	// exactly how a pre-watch server answers. Tests and mixed-fleet drills
	// use it to prove clients degrade to polling.
	DisableWatch bool
}

// AdmitFrom adapts a policy.Admitter into the wire-layer admission hook:
// each lease or bulk request spends a token from the bucket keyed by the
// envelope's From identity (requests from peers that stamp no identity
// share the anonymous bucket). Control frames never reach the hook.
func AdmitFrom(a *policy.Admitter) wire.AdmitFunc {
	return func(env *wire.Envelope) (ok bool, retryAfter time.Duration) {
		return a.Admit(env.From)
	}
}

// Serve starts a server for svc on addr (for example "127.0.0.1:0") with
// the given network profile applied to every connection and the default
// transport configuration.
func Serve(svc *Service, addr string, profile netsim.Profile) (*Server, error) {
	return ServeOpts(svc, addr, profile, ServeConfig{})
}

// ServeWindow is Serve with an explicit per-connection in-flight window
// (values below 1 mean serial service, the pre-multiplexing behaviour).
func ServeWindow(svc *Service, addr string, profile netsim.Profile, window int) (*Server, error) {
	if window < 1 {
		window = -1 // explicit serial; ServeConfig treats 0 as the default
	}
	return ServeOpts(svc, addr, profile, ServeConfig{Window: window})
}

// ServeOpts is Serve with an explicit transport configuration.
func ServeOpts(svc *Service, addr string, profile netsim.Profile, cfg ServeConfig) (*Server, error) {
	if cfg.Window == 0 {
		cfg.Window = wire.DefaultWindow
	}
	ln, err := netsim.Listen(addr, profile)
	if err != nil {
		return nil, fmt.Errorf("core: listen %s: %w", addr, err)
	}
	s := &Server{svc: svc, ln: ln, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every live connection, and waits for the
// handler goroutines to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var streams map[string]wire.StreamHandler
	if !s.cfg.DisableWatch {
		streams = map[string]wire.StreamHandler{wire.TypeWatch: s.serveWatch}
	}
	err := wire.ServeConnOpts(conn, wire.ServeOptions{
		Window:             s.cfg.Window,
		Codecs:             s.cfg.Codecs,
		DisableNegotiation: s.cfg.DisableNegotiation,
		Overload:           s.cfg.Overload,
		Streams:            streams,
		Stats:              s.cfg.Stats,
		Logf: func(format string, args ...any) {
			// A negative window is a misconfiguration the wire layer
			// clamps; surface it once per listener, not per connection.
			s.clampOnce.Do(func() { s.logf(format, args...) })
		},
	}, func(env *wire.Envelope) *wire.Envelope {
		return serveEnvelope(s.svc, env)
	})
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		s.logf("core: server conn %s: %v", conn.RemoteAddr(), err)
	}
}

// serveEnvelope dispatches one request envelope against the service and
// returns the reply envelope. It is shared by the TCP and UDP endpoints,
// which differ only in framing.
func serveEnvelope(svc *Service, env *wire.Envelope) *wire.Envelope {
	reply, err := dispatchEnvelope(svc, env)
	if err != nil {
		return wire.ErrorEnvelope(env.ID, err)
	}
	return reply
}

func dispatchEnvelope(svc *Service, env *wire.Envelope) (*wire.Envelope, error) {
	switch env.Type {
	case wire.TypePing:
		return &wire.Envelope{Type: wire.TypePing, ID: env.ID}, nil
	case wire.TypeQuery:
		var req wire.QueryRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		grant, err := svc.RequestLang(req.Lang, req.Text)
		if err != nil {
			return nil, err
		}
		reply := wire.QueryReply{
			Lease:     grant.Lease,
			Fragments: grant.Fragments,
			Succeeded: grant.Succeeded,
			ElapsedNS: grant.Elapsed.Nanoseconds(),
			Shadow:    &grant.Shadow,
		}
		return wire.NewEnvelope(wire.TypeQuery, env.ID, reply)
	case wire.TypeRelease:
		var req wire.ReleaseRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		g := &Grant{Lease: &req.Lease}
		if req.Shadow != nil {
			g.Shadow = *req.Shadow
		}
		if err := svc.Release(g); err != nil {
			return nil, err
		}
		return wire.NewEnvelope(wire.TypeRelease, env.ID, wire.ReleaseReply{})
	case wire.TypeRenew:
		var req wire.RenewRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		if err := svc.Renew(&Grant{Lease: &req.Lease}); err != nil {
			return nil, err
		}
		return wire.NewEnvelope(wire.TypeRenew, env.ID, wire.RenewReply{})
	case wire.TypeSelect:
		var req wire.SelectRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		ms, total, err := svc.SelectMachines(req.Text, req.Limit, req.Offset)
		if err != nil {
			return nil, err
		}
		reply := wire.SelectReply{Total: total, Records: wire.RecordSet{Machines: ms, Full: req.Full}}
		return wire.NewEnvelope(wire.TypeSelect, env.ID, reply)
	case wire.TypeRoute:
		var req wire.RouteRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		return wire.NewEnvelope(wire.TypeRoute, env.ID, routeReply(svc, &req))
	default:
		return nil, fmt.Errorf("core: unknown message type %q", env.Type)
	}
}

// routeReply renders the service's ownership table for the wire: static
// assignments first, then the resolved owner of every requested domain.
func routeReply(svc *Service, req *wire.RouteRequest) wire.RouteReply {
	rt := svc.Routes()
	if rt == nil {
		return wire.RouteReply{}
	}
	reply := wire.RouteReply{Enabled: rt.Partitioned(), Node: rt.Local(), Nodes: rt.Nodes()}
	static := rt.Static()
	seen := make(map[string]bool, len(static))
	for d, owner := range static {
		seen[d] = true
		reply.Entries = append(reply.Entries, wire.RouteEntry{Domain: d, Owner: owner, Static: true})
	}
	for _, d := range req.Domains {
		if d == "" || seen[d] {
			continue
		}
		seen[d] = true
		if owner, ok := rt.Owner(d); ok {
			reply.Entries = append(reply.Entries, wire.RouteEntry{Domain: d, Owner: owner})
		}
	}
	sort.Slice(reply.Entries, func(i, j int) bool { return reply.Entries[i].Domain < reply.Entries[j].Domain })
	return reply
}

// Client is the remote counterpart of a Service: it multiplexes the wire
// protocol over a single TCP connection. It is safe for concurrent use —
// any number of goroutines may keep calls in flight at once, and replies
// are correlated by envelope id. A broken connection is redialed on the
// next call.
type Client struct {
	c *wire.Client
}

// DialConfig tunes a Client's transport.
type DialConfig struct {
	// Codecs is the wire-codec negotiation preference (nil means
	// wire.DefaultCodecs).
	Codecs []wire.Codec
	// DisableNegotiation makes the client behave like a pre-codec build:
	// plain JSON frames, no hello.
	DisableNegotiation bool
	// Timeout bounds each call without its own context deadline.
	Timeout time.Duration
	// From names the requesting account or group; servers running
	// admission control key their token buckets off it.
	From string
	// Stats, when set, accounts every frame this client sends and
	// receives (bytes, frames, compressed-vs-raw) per codec.
	Stats *metrics.WireStats
}

// Dial connects a client to a server with the given network profile and
// the default transport configuration (codec negotiated per connection).
func Dial(addr string, profile netsim.Profile) (*Client, error) {
	return DialOpts(addr, profile, DialConfig{})
}

// DialOpts is Dial with an explicit transport configuration.
func DialOpts(addr string, profile netsim.Profile, cfg DialConfig) (*Client, error) {
	c := wire.NewClientOpts(func() (net.Conn, error) {
		return (netsim.Dialer{Profile: profile}).Dial(addr)
	}, wire.ClientOptions{
		Timeout:            cfg.Timeout,
		Codecs:             cfg.Codecs,
		DisableNegotiation: cfg.DisableNegotiation,
		From:               cfg.From,
		Stats:              cfg.Stats,
	})
	if err := c.Connect(); err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// CodecName reports the wire codec of the live connection ("" when none).
func (c *Client) CodecName() string { return c.c.CodecName() }

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// call round-trips one request, translating server-side failures into the
// historical "core: server: ..." form. idempotent requests (Ping, Renew)
// transparently retry across connection loss with backoff.
func (c *Client) call(ctx context.Context, typ string, payload any) (*wire.Envelope, error) {
	reply, err := c.c.CallContext(ctx, typ, payload)
	return c.finish(typ, reply, err)
}

func (c *Client) callIdempotent(ctx context.Context, typ string, payload any) (*wire.Envelope, error) {
	reply, err := c.c.CallIdempotent(ctx, typ, payload)
	return c.finish(typ, reply, err)
}

func (c *Client) finish(typ string, reply *wire.Envelope, err error) (*wire.Envelope, error) {
	if err != nil {
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			return nil, fmt.Errorf("core: server: %s", remote.Message)
		}
		return nil, err
	}
	if reply.Type != typ {
		return nil, fmt.Errorf("core: %s got %q", typ, reply.Type)
	}
	return reply, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error { return c.PingContext(context.Background()) }

// PingContext is Ping with cancellation. Pings are idempotent, so a ping
// that dies with its connection retries transparently — a heartbeat rides
// out a server restart without a caller-visible error.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.callIdempotent(ctx, wire.TypePing, nil)
	return err
}

// Request submits a query text and returns the grant.
func (c *Client) Request(text string) (*Grant, error) { return c.RequestLang("", text) }

// RequestLang submits a query in the named language.
func (c *Client) RequestLang(lang, text string) (*Grant, error) {
	return c.RequestContext(context.Background(), lang, text)
}

// RequestContext submits a query with cancellation.
func (c *Client) RequestContext(ctx context.Context, lang, text string) (*Grant, error) {
	env, err := c.call(ctx, wire.TypeQuery, wire.QueryRequest{Lang: lang, Text: text})
	if err != nil {
		return nil, err
	}
	var reply wire.QueryReply
	if err := env.Decode(&reply); err != nil {
		return nil, err
	}
	if reply.Lease == nil {
		return nil, errors.New("core: server granted no lease")
	}
	g := &Grant{
		Lease:     reply.Lease,
		Fragments: reply.Fragments,
		Succeeded: reply.Succeeded,
	}
	if reply.Shadow != nil {
		g.Shadow = *reply.Shadow
	}
	return g, nil
}

// Release returns a grant.
func (c *Client) Release(g *Grant) error {
	if g == nil || g.Lease == nil {
		return errors.New("core: nil grant")
	}
	req := wire.ReleaseRequest{Lease: *g.Lease}
	if g.Shadow.User != "" {
		sh := g.Shadow
		req.Shadow = &sh
	}
	_, err := c.call(context.Background(), wire.TypeRelease, req)
	return err
}

// Renew heartbeats a grant on a TTL-enabled service. Renewals are
// idempotent (extending a lease twice is harmless), so they retry across
// connection loss like pings.
func (c *Client) Renew(g *Grant) error {
	if g == nil || g.Lease == nil {
		return errors.New("core: nil grant")
	}
	_, err := c.callIdempotent(context.Background(), wire.TypeRenew, wire.RenewRequest{Lease: *g.Lease})
	return err
}

// Select fetches the machine records matching a basic query text (""
// selects every record); limit caps the returned batch (0 = no cap). The
// reply's total reports the uncapped match count. On binary connections
// the batch travels delta-encoded; pass full=true to pin the full
// per-record encoding (the differential oracle and benchmark baseline).
func (c *Client) Select(text string, limit int, full bool) ([]*registry.Machine, int, error) {
	return c.SelectContext(context.Background(), text, limit, full)
}

// SelectContext is Select with cancellation.
func (c *Client) SelectContext(ctx context.Context, text string, limit int, full bool) ([]*registry.Machine, int, error) {
	return c.SelectPage(ctx, text, limit, 0, full)
}

// SelectPage is SelectContext with a page offset: offset matching records
// (in the registry's sorted name order) are skipped before limit applies.
// Non-zero offsets need a paging-aware server; see wire.SelectRequest.
func (c *Client) SelectPage(ctx context.Context, text string, limit, offset int, full bool) ([]*registry.Machine, int, error) {
	env, err := c.call(ctx, wire.TypeSelect, wire.SelectRequest{Text: text, Limit: limit, Offset: offset, Full: full})
	if err != nil {
		return nil, 0, err
	}
	var reply wire.SelectReply
	if err := env.Decode(&reply); err != nil {
		return nil, 0, err
	}
	return reply.Records.Machines, reply.Total, nil
}

// Route fetches the server's domain-ownership view, resolving the owners
// of any named domains along the way. A pre-partition server bounces the
// unknown type as an error.
func (c *Client) Route(ctx context.Context, domains ...string) (*wire.RouteReply, error) {
	env, err := c.call(ctx, wire.TypeRoute, wire.RouteRequest{Domains: domains})
	if err != nil {
		return nil, err
	}
	var reply wire.RouteReply
	if err := env.Decode(&reply); err != nil {
		return nil, err
	}
	return &reply, nil
}
