package core

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"actyp/internal/netsim"
	"actyp/internal/wire"
)

// Server exposes a Service over TCP using the wire protocol, so clients
// (network desktops) and remote pipeline stages can reach it across a LAN
// or WAN. Each connection is served by its own goroutine; requests on one
// connection are handled sequentially, which matches the closed-loop
// clients of the paper's experiments.
type Server struct {
	svc *Service
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup

	// Logf, when set, receives connection-level errors (default: drop).
	Logf func(format string, args ...any)
}

// Serve starts a server for svc on addr (for example "127.0.0.1:0") with
// the given network profile applied to every connection.
func Serve(svc *Service, addr string, profile netsim.Profile) (*Server, error) {
	ln, err := netsim.Listen(addr, profile)
	if err != nil {
		return nil, fmt.Errorf("core: listen %s: %w", addr, err)
	}
	s := &Server{svc: svc, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every live connection, and waits for the
// handler goroutines to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		env, err := wire.ReadFrame(conn)
		if err != nil {
			return // client went away or sent garbage
		}
		reply, err := s.dispatch(env)
		if err != nil {
			reply, _ = wire.NewEnvelope(wire.TypeError, env.ID, wire.ErrorReply{Message: err.Error()})
		}
		if reply == nil {
			continue
		}
		if err := wire.WriteFrame(conn, reply); err != nil {
			s.logf("core: server write: %v", err)
			return
		}
	}
}

func (s *Server) dispatch(env *wire.Envelope) (*wire.Envelope, error) {
	switch env.Type {
	case wire.TypePing:
		return &wire.Envelope{Type: wire.TypePing, ID: env.ID}, nil
	case wire.TypeQuery:
		var req wire.QueryRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		grant, err := s.svc.RequestLang(req.Lang, req.Text)
		if err != nil {
			return nil, err
		}
		reply := wire.QueryReply{
			Lease:     grant.Lease,
			Fragments: grant.Fragments,
			Succeeded: grant.Succeeded,
			ElapsedNS: grant.Elapsed.Nanoseconds(),
			Shadow:    &grant.Shadow,
		}
		return wire.NewEnvelope(wire.TypeQuery, env.ID, reply)
	case wire.TypeRelease:
		var req wire.ReleaseRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		g := &Grant{Lease: &req.Lease}
		if req.Shadow != nil {
			g.Shadow = *req.Shadow
		}
		if err := s.svc.Release(g); err != nil {
			return nil, err
		}
		return wire.NewEnvelope(wire.TypeRelease, env.ID, wire.ReleaseReply{})
	case wire.TypeRenew:
		var req wire.RenewRequest
		if err := env.Decode(&req); err != nil {
			return nil, err
		}
		if err := s.svc.Renew(&Grant{Lease: &req.Lease}); err != nil {
			return nil, err
		}
		return wire.NewEnvelope(wire.TypeRenew, env.ID, wire.RenewReply{})
	default:
		return nil, fmt.Errorf("core: unknown message type %q", env.Type)
	}
}

// Client is the remote counterpart of a Service: it speaks the wire
// protocol over a single TCP connection. It is safe for one goroutine;
// experiment clients each own one (closed-loop behaviour).
type Client struct {
	conn   net.Conn
	nextID uint64
}

// Dial connects a client to a server with the given network profile.
func Dial(addr string, profile netsim.Profile) (*Client, error) {
	conn, err := (netsim.Dialer{Profile: profile}).Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	env, err := c.roundTrip(&wire.Envelope{Type: wire.TypePing, ID: c.id()})
	if err != nil {
		return err
	}
	if env.Type != wire.TypePing {
		return fmt.Errorf("core: ping got %q", env.Type)
	}
	return nil
}

// Request submits a query text and returns the grant.
func (c *Client) Request(text string) (*Grant, error) { return c.RequestLang("", text) }

// RequestLang submits a query in the named language.
func (c *Client) RequestLang(lang, text string) (*Grant, error) {
	req, err := wire.NewEnvelope(wire.TypeQuery, c.id(), wire.QueryRequest{Lang: lang, Text: text})
	if err != nil {
		return nil, err
	}
	env, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	var reply wire.QueryReply
	if err := env.Decode(&reply); err != nil {
		return nil, err
	}
	if reply.Lease == nil {
		return nil, errors.New("core: server granted no lease")
	}
	g := &Grant{
		Lease:     reply.Lease,
		Fragments: reply.Fragments,
		Succeeded: reply.Succeeded,
	}
	if reply.Shadow != nil {
		g.Shadow = *reply.Shadow
	}
	return g, nil
}

// Release returns a grant.
func (c *Client) Release(g *Grant) error {
	if g == nil || g.Lease == nil {
		return errors.New("core: nil grant")
	}
	req := wire.ReleaseRequest{Lease: *g.Lease}
	if g.Shadow.User != "" {
		sh := g.Shadow
		req.Shadow = &sh
	}
	env, err := wire.NewEnvelope(wire.TypeRelease, c.id(), req)
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return err
	}
	if reply.Type != wire.TypeRelease {
		return fmt.Errorf("core: release got %q", reply.Type)
	}
	return nil
}

// Renew heartbeats a grant on a TTL-enabled service.
func (c *Client) Renew(g *Grant) error {
	if g == nil || g.Lease == nil {
		return errors.New("core: nil grant")
	}
	env, err := wire.NewEnvelope(wire.TypeRenew, c.id(), wire.RenewRequest{Lease: *g.Lease})
	if err != nil {
		return err
	}
	reply, err := c.roundTrip(env)
	if err != nil {
		return err
	}
	if reply.Type != wire.TypeRenew {
		return fmt.Errorf("core: renew got %q", reply.Type)
	}
	return nil
}

func (c *Client) id() uint64 {
	c.nextID++
	return c.nextID
}

func (c *Client) roundTrip(env *wire.Envelope) (*wire.Envelope, error) {
	if err := wire.WriteFrame(c.conn, env); err != nil {
		return nil, err
	}
	reply, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if reply.ID != env.ID {
		return nil, fmt.Errorf("core: reply id %d for request %d", reply.ID, env.ID)
	}
	if reply.Type == wire.TypeError {
		var e wire.ErrorReply
		if err := reply.Decode(&e); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: server: %s", e.Message)
	}
	return reply, nil
}
