package core

import (
	"testing"
	"time"

	"actyp/internal/registry"
)

// TestLeaseTTLReapsCrashedClients verifies the end-to-end crash-recovery
// path: a grant that is never released (a crashed desktop) is reclaimed by
// the background reaper and its machine becomes allocatable again.
func TestLeaseTTLReapsCrashedClients(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(1).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{
		DB:           db,
		LeaseTTL:     20 * time.Millisecond,
		ReapInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Reaper() == nil {
		t.Fatal("reaper not started")
	}

	// The "crashing" client takes the only machine and vanishes.
	if _, err := svc.Request("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	// A second request fails while the lease is live...
	if _, err := svc.Request("punch.rsrc.arch = sun"); err == nil {
		t.Fatal("machine should be busy before expiry")
	}
	// ...and succeeds once the reaper reclaims the expired lease.
	deadline := time.Now().Add(3 * time.Second)
	for {
		g, err := svc.Request("punch.rsrc.arch = sun")
		if err == nil {
			if svc.Reaper().Reaped() == 0 {
				t.Error("reaper counter did not move")
			}
			if err := svc.Release(g); err != nil {
				t.Fatal(err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never reclaimed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLeaseTTLDisabledByDefault pins that services without a TTL never
// reap.
func TestLeaseTTLDisabledByDefault(t *testing.T) {
	s := fleetService(t, 2)
	if s.Reaper() != nil {
		t.Error("reaper should not exist without LeaseTTL")
	}
}
