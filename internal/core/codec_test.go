package core

import (
	"sync"
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/registry"
	"actyp/internal/wire"
)

// startCodecServer builds a small service and serves it with the given
// transport configuration.
func startCodecServer(t *testing.T, machines int, cfg ServeConfig) *Server {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(machines).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeOpts(svc, "127.0.0.1:0", netsim.Local(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv
}

// lifecycle drives one full grant/renew/release cycle plus a ping.
func lifecycle(t *testing.T, c *Client) {
	t.Helper()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	g, err := c.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lease == nil || g.Lease.AccessKey == "" || g.Shadow.User == "" {
		t.Fatalf("incomplete grant: %+v", g)
	}
	if err := c.Release(g); err != nil {
		t.Fatal(err)
	}
}

// TestServiceNegotiatesBinary: the default client/server pair lands on
// the binary codec and the full lease lifecycle works over it.
func TestServiceNegotiatesBinary(t *testing.T) {
	srv := startCodecServer(t, 16, ServeConfig{Codecs: []wire.Codec{wire.Binary, wire.JSON}})
	c, err := DialOpts(srv.Addr(), netsim.Local(), DialConfig{Codecs: []wire.Codec{wire.Binary, wire.JSON}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lifecycle(t, c)
	if got := c.CodecName(); got != "binary" {
		t.Errorf("negotiated %q, want binary", got)
	}
}

// TestServiceForcedJSON: pinning the server to JSON (the -wire-codec json
// deployment) pulls negotiating clients to the floor with no behaviour
// change.
func TestServiceForcedJSON(t *testing.T) {
	srv := startCodecServer(t, 16, ServeConfig{Codecs: []wire.Codec{wire.JSON}})
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lifecycle(t, c)
	if got := c.CodecName(); got != "json" {
		t.Errorf("negotiated %q, want json", got)
	}
}

// TestServiceMixedFleetInterop is the acceptance interop matrix under
// -race: a negotiating client against a pre-codec server (negotiation
// disabled) and a pre-codec client against a negotiating server, both
// with concurrent callers hammering one connection.
func TestServiceMixedFleetInterop(t *testing.T) {
	cases := []struct {
		name   string
		server ServeConfig
		dial   DialConfig
	}{
		{"new-client-old-server", ServeConfig{DisableNegotiation: true}, DialConfig{}},
		{"old-client-new-server", ServeConfig{}, DialConfig{DisableNegotiation: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := startCodecServer(t, 64, tc.server)
			c, err := DialOpts(srv.Addr(), netsim.Local(), tc.dial)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.CodecName(); got != "json" {
				t.Fatalf("mixed fleet negotiated %q, want json", got)
			}
			const callers, iters = 8, 10
			var wg sync.WaitGroup
			for w := 0; w < callers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						g, err := c.Request("punch.rsrc.arch = sun")
						if err != nil {
							t.Errorf("request: %v", err)
							return
						}
						if err := c.Release(g); err != nil {
							t.Errorf("release: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
