package core

import (
	"testing"
	"time"

	"actyp/internal/registry"
)

// TestRefreshLoopFoldsMonitorUpdates verifies the self-optimizing loop end
// to end: the monitor writes fresh loads to the white pages, the refresh
// loop folds them into pool caches, and scheduling decisions follow.
func TestRefreshLoopFoldsMonitorUpdates(t *testing.T) {
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(2).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db, RefreshInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}

	// Load m0000 heavily via the "monitor" (direct DB write), then wait
	// for the refresh loop to propagate it.
	m, err := db.Get("m0000")
	if err != nil {
		t.Fatal(err)
	}
	d := m.Dynamic
	d.Load = 3.5
	if err := db.UpdateDynamic("m0000", d); err != nil {
		t.Fatal(err)
	}

	// Eventually the scheduler must prefer m0001 (least load wins).
	deadline := time.Now().Add(3 * time.Second)
	for {
		g, err := svc.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatal(err)
		}
		machine := g.Lease.Machine
		if err := svc.Release(g); err != nil {
			t.Fatal(err)
		}
		if machine == "m0001" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler kept choosing %s despite the load update", machine)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := fleetService(t, 16)
	for i := 0; i < 3; i++ {
		g, err := s.Request("punch.rsrc.arch = sun | hp")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Queries != 3 || st.Fragments != 6 {
		t.Errorf("queries/fragments = %d/%d", st.Queries, st.Fragments)
	}
	if st.Resolved < 6 || st.PoolsCreated != 2 || st.Pools != 2 {
		t.Errorf("resolved=%d created=%d pools=%d", st.Resolved, st.PoolsCreated, st.Pools)
	}
	if st.Machines != 16 {
		t.Errorf("machines = %d", st.Machines)
	}
}
