// Package core assembles the complete Active Yellow Pages service of
// Sections 4–5: the white-pages database, the resource monitoring service,
// and the resource-management pipeline (query managers -> pool managers ->
// resource pools), plus the shadow-account allocation performed when a
// machine is granted. It offers the same contract the paper describes for
// the network desktop: ask with a query, get back an address, a port, and
// a session-specific access key.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/monitor"
	"actyp/internal/policy"
	"actyp/internal/pool"
	"actyp/internal/poolmgr"
	"actyp/internal/query"
	"actyp/internal/querymgr"
	"actyp/internal/registry"
	"actyp/internal/route"
	"actyp/internal/shadow"
)

// Options configures a Service.
type Options struct {
	// DB is the white-pages database. Required.
	DB *registry.DB
	// Schemas validates queries (default: punch family only).
	Schemas *query.SchemaRegistry
	// QueryManagers and PoolManagers set the replication degree of the
	// first two pipeline stages (default 1 each).
	QueryManagers int
	PoolManagers  int
	// NodeName prefixes pool-manager names (default "pm", so managers are
	// pm-0, pm-1, ...). Federated daemons MUST set distinct prefixes: the
	// delegation visited list and the self/peer filters key on manager
	// names, so two nodes both exposing a "pm-0" shadow each other — the
	// home manager filters the peer out as itself, and visiting one peer
	// blacklists every other peer with the colliding name.
	NodeName string
	// Objective names the scheduling objective of created pools.
	Objective string
	// Mode is the reintegration QoS for composite queries.
	Mode querymgr.QoS
	// TTL bounds pool-manager delegation hops.
	TTL int
	// Seed drives all random selection (default 1).
	Seed int64
	// ScanCost models per-entry linear-search cost; see pool.Config.
	ScanCost time.Duration
	// ShadowAccounts is the per-machine shadow pool size (default 8).
	ShadowAccounts int
	// MonitorInterval, when positive, starts a background monitor sweep
	// at this period using the synthetic sampler.
	MonitorInterval time.Duration
	// RefreshMode selects how monitor updates reach live pool caches.
	// RefreshEvents (the default) subscribes every pool to the registry
	// change stream: a dispatcher folds updates into the caches
	// incrementally as they land, so no timer and no full rebuilds are on
	// the steady-state path. RefreshPoll keeps the timer-driven full
	// Refresh of every pool — the pre-event behaviour, retained as a knob
	// and fallback.
	RefreshMode string
	// WatchBuffer sizes the events-mode subscription ring. Zero picks a
	// fleet-scaled default (coalescing bounds the backlog to one slot per
	// machine and kind, so a fleet-sized ring never overflows under
	// steady monitor sweeps); an overflowing ring degrades to one full
	// resync, never to blocked registry writers.
	WatchBuffer int
	// RefreshInterval, when positive, periodically folds the monitor's
	// database updates into every live pool cache (the pools' scheduling
	// processes re-reading machine state). In poll mode it defaults to
	// MonitorInterval when that is set; in events mode it is off unless
	// set explicitly (a safety-net full Refresh underneath the stream).
	RefreshInterval time.Duration
	// Selector overrides the query managers' pool-manager selection
	// (default: random).
	Selector querymgr.Selector
	// Policies resolves usage-policy references (white-pages field 19);
	// nil behaves like the paper's unimplemented field (allow-all).
	Policies *policy.Store
	// MaxPoolSize caps how many machines a dynamically-created pool may
	// take from the white pages (0: unlimited). Because pool creation
	// marks machines taken, a cap keeps overlapping criteria (for
	// example per-license pools over multi-license machines) from
	// letting the first pool monopolize the fleet.
	MaxPoolSize int
	// PoolEngine selects the allocation engine of created pools; see
	// pool.Config.Engine.
	PoolEngine string
	// LeaseTTL enables lease expiry in all created pools: grants not
	// renewed within this lifetime are reclaimed by a background reaper
	// (crashed desktops cannot strand machines). Zero disables expiry.
	LeaseTTL time.Duration
	// ReapInterval is the background reaper's sweep period (default
	// LeaseTTL/2 when LeaseTTL is set).
	ReapInterval time.Duration
	// Translators installs extra query languages by name (for example
	// the classads translator), on top of the native language.
	Translators map[string]querymgr.Translator
	// Fanout is the pool managers' delegation width: how many federation
	// peers a local miss may try concurrently (first granted lease wins,
	// losers are cancelled and their leases released). Values <= 1 keep
	// the paper's serial peer walk. See poolmgr.Config.Fanout.
	Fanout int
	// HedgeDelay staggers fan-out branches; zero launches the full width
	// at once. See poolmgr.Config.HedgeDelay.
	HedgeDelay time.Duration
	// FederationStats, when set, counts delegation fan-outs, per-peer
	// wins, hedges, and cancelled losers across all pool managers.
	FederationStats *metrics.FederationStats
	// LeaseLog, when set, receives every pool lease transition (grant,
	// release, renewal) — the durability journal's feed. See
	// pool.Config.Log.
	LeaseLog pool.LeaseLog
	// DelegationLog, when set, receives delegated-lease table transitions
	// from every pool manager — the journal's federation feed. See
	// poolmgr.Config.Delegations.
	DelegationLog poolmgr.DelegationLog
	// Routes, when set, is the domain-ownership table shared by every pool
	// manager: queries pinning a remotely-owned domain take a single
	// directed hop to the owner instead of the local-scan-then-fan-out
	// path, and delegated releases re-resolve the domain's current owner.
	// Nil keeps pre-partition behaviour. See route.Table.
	Routes *route.Table
}

// Refresh modes accepted by Options.RefreshMode and the daemons'
// -refresh-mode flags.
const (
	RefreshPoll   = "poll"
	RefreshEvents = "events"
)

// defaultRefreshMode is used when Options.RefreshMode is empty. The test
// suite overrides it (-refresh-default-mode) to run the whole package in
// either mode, mirroring the wire package's per-codec matrix.
var defaultRefreshMode = RefreshEvents

// ValidateRefreshMode rejects unknown refresh modes; daemons use it to
// fail fast on bad -refresh-mode flags.
func ValidateRefreshMode(mode string) error {
	switch mode {
	case "", RefreshPoll, RefreshEvents:
		return nil
	}
	return fmt.Errorf("core: unknown refresh mode %q (want %q or %q)", mode, RefreshPoll, RefreshEvents)
}

// Grant is a completed resource grant: the machine lease plus the shadow
// account the run will execute in.
type Grant struct {
	Lease     *pool.Lease
	Shadow    shadow.Account
	Fragments int
	Succeeded int
	Elapsed   time.Duration
}

// Service is a running ActYP instance.
type Service struct {
	db      *registry.DB
	schemas *query.SchemaRegistry
	dir     *directory.Service
	factory *poolmgr.LocalFactory
	pms     []*poolmgr.Manager
	qms     []*querymgr.Manager
	shadows *shadow.Manager
	mon     *monitor.Monitor
	reaper  *pool.Reaper
	events  *pool.Dispatcher // events mode: the registry->pool freshness bridge
	opts    Options

	refreshStop chan struct{}
	refreshDone chan struct{}

	nextQM  atomic.Uint64
	shadowN int

	// mu guards lifecycle only; the request path is lock-free in this
	// layer (queries serialize, if at all, inside the stages below).
	mu     sync.Mutex
	closed bool
	// recovered holds lease ids restored by Recover whose shadow accounts
	// died with the previous process; Release consumes them to tolerate
	// the one missing-shadow error each such grant produces.
	recovered map[string]bool
}

// New builds and starts a Service.
func New(opts Options) (*Service, error) {
	if opts.DB == nil {
		return nil, fmt.Errorf("core: options need a database")
	}
	if opts.Schemas == nil {
		opts.Schemas = query.NewSchemaRegistry()
	}
	if opts.QueryManagers <= 0 {
		opts.QueryManagers = 1
	}
	if opts.PoolManagers <= 0 {
		opts.PoolManagers = 1
	}
	if opts.NodeName == "" {
		opts.NodeName = "pm"
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.ShadowAccounts <= 0 {
		opts.ShadowAccounts = 8
	}

	if err := pool.ValidateEngine(opts.PoolEngine); err != nil {
		return nil, err
	}
	if err := ValidateRefreshMode(opts.RefreshMode); err != nil {
		return nil, err
	}
	if opts.RefreshMode == "" {
		opts.RefreshMode = defaultRefreshMode
	}
	s := &Service{
		db:      opts.DB,
		schemas: opts.Schemas,
		dir:     directory.New(),
		shadows: shadow.NewManager(),
		opts:    opts,
		shadowN: opts.ShadowAccounts,
	}
	// A failed constructor must not leak the background helpers started
	// below (dispatcher drain loop + registry subscription, reaper).
	built := false
	defer func() {
		if built {
			return
		}
		if s.events != nil {
			s.events.Stop()
		}
		if s.reaper != nil {
			s.reaper.Stop()
		}
	}()
	if opts.RefreshMode == RefreshEvents {
		buffer := opts.WatchBuffer
		if buffer <= 0 {
			// Fleet-scaled: coalescing bounds the backlog to one slot per
			// machine and kind, so twice the fleet absorbs a sweep plus a
			// state-flap burst without tripping the resync fallback.
			buffer = max(registry.DefaultWatchBuffer, 2*opts.DB.Len())
		}
		s.events = pool.NewDispatcher(opts.DB, buffer)
		s.events.Start()
	}
	s.factory = &poolmgr.LocalFactory{
		DB:          opts.DB,
		Objective:   opts.Objective,
		ScanCost:    opts.ScanCost,
		Policies:    opts.Policies,
		MaxMachines: opts.MaxPoolSize,
		LeaseTTL:    opts.LeaseTTL,
		Engine:      opts.PoolEngine,
		Events:      s.events,
		Log:         opts.LeaseLog,
	}
	if opts.LeaseTTL > 0 {
		ivl := opts.ReapInterval
		if ivl <= 0 {
			ivl = opts.LeaseTTL / 2
		}
		s.reaper = pool.NewReaper(s.allPools, ivl)
		s.reaper.Start()
	}
	for i := 0; i < opts.PoolManagers; i++ {
		pm, err := poolmgr.New(poolmgr.Config{
			Name:        fmt.Sprintf("%s-%d", opts.NodeName, i),
			Dir:         s.dir,
			Factory:     s.factory,
			Seed:        opts.Seed + int64(i),
			TTL:         opts.TTL,
			Fanout:      opts.Fanout,
			HedgeDelay:  opts.HedgeDelay,
			Stats:       opts.FederationStats,
			Delegations: opts.DelegationLog,
			Routes:      opts.Routes,
		})
		if err != nil {
			return nil, err
		}
		s.pms = append(s.pms, pm)
	}
	rms := make([]querymgr.ResourceManager, len(s.pms))
	for i, pm := range s.pms {
		rms[i] = pm
	}
	for i := 0; i < opts.QueryManagers; i++ {
		sel := opts.Selector
		if sel == nil {
			sel = querymgr.NewRandomSelector(opts.Seed + int64(i))
			if opts.Routes != nil {
				// Partitioned nodes pin each domain's traffic to one pool
				// manager so its caches stay hot for the owned domains.
				sel = querymgr.NewDomainSelector(sel, opts.Seed+int64(i))
			}
		}
		qm, err := querymgr.New(querymgr.Config{
			Name:        fmt.Sprintf("qm-%d", i),
			Schemas:     opts.Schemas,
			Managers:    rms,
			Selector:    sel,
			Mode:        opts.Mode,
			Translators: opts.Translators,
		})
		if err != nil {
			return nil, err
		}
		s.qms = append(s.qms, qm)
	}
	if opts.MonitorInterval > 0 {
		s.mon = monitor.New(monitor.Config{
			DB:       opts.DB,
			Sampler:  monitor.NewSyntheticSampler(opts.Seed),
			Interval: opts.MonitorInterval,
		})
		s.mon.Start()
	}
	refreshIvl := opts.RefreshInterval
	if refreshIvl <= 0 && opts.RefreshMode == RefreshPoll {
		// Only poll mode infers an interval: in events mode the stream is
		// the steady-state path, and the timer runs solely when asked for
		// explicitly (a safety-net full Refresh underneath it).
		refreshIvl = opts.MonitorInterval
	}
	if refreshIvl > 0 {
		s.refreshStop = make(chan struct{})
		s.refreshDone = make(chan struct{})
		go s.refreshLoop(refreshIvl)
	}
	built = true
	return s, nil
}

// refreshLoop periodically runs every live pool's Refresh — poll mode's
// freshness path, and the optional safety net underneath events mode —
// folding the monitor's white-pages updates into the pool caches.
func (s *Service) refreshLoop(interval time.Duration) {
	defer close(s.refreshDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.refreshStop:
			return
		case <-t.C:
			for _, p := range s.allPools() {
				p.Refresh()
			}
		}
	}
}

// Request submits a native-language query and returns a full grant.
func (s *Service) Request(text string) (*Grant, error) {
	return s.RequestLang("", text)
}

// RequestLang submits a query in the named translator language.
func (s *Service) RequestLang(lang, text string) (*Grant, error) {
	qm := s.pickQM()
	resp, err := qm.SubmitText(lang, text)
	if err != nil {
		return nil, err
	}
	acct, err := s.allocateShadow(resp.Lease.Machine)
	if err != nil {
		// The machine was granted but no shadow account is free: undo
		// the lease so the machine is not stranded.
		_ = qm.Release(resp.Lease)
		return nil, err
	}
	return &Grant{
		Lease:     resp.Lease,
		Shadow:    acct,
		Fragments: resp.Fragments,
		Succeeded: resp.Succeeded,
		Elapsed:   resp.Elapsed,
	}, nil
}

// Release returns a grant's machine and shadow account.
func (s *Service) Release(g *Grant) error {
	if g == nil || g.Lease == nil {
		return fmt.Errorf("core: nil grant")
	}
	var firstErr error
	if g.Shadow.User != "" {
		if err := s.shadows.Release(g.Shadow.Machine, g.Shadow.User); err != nil {
			// A lease restored by crash recovery has no shadow account in
			// this process (shadow state is session-scoped, not journaled);
			// that one failure is expected and consumed here.
			if !s.recoveredLease(g.Lease.ID) {
				firstErr = err
			}
		}
	}
	if err := s.pickQM().Release(g.Lease); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Renew extends a grant's lease lifetime on TTL-enabled services. Clients
// running long jobs heartbeat with it so the reaper does not reclaim their
// machines. On services without a TTL it is a validity check: it fails for
// unknown leases and succeeds for live ones.
func (s *Service) Renew(g *Grant) error {
	if g == nil || g.Lease == nil {
		return fmt.Errorf("core: nil grant")
	}
	ref, ok := s.dir.ByInstance(g.Lease.Pool)
	if !ok {
		return fmt.Errorf("core: unknown pool instance %s", g.Lease.Pool)
	}
	p, ok := ref.Local.(*pool.Pool)
	if !ok {
		return fmt.Errorf("core: instance %s does not support renewal", g.Lease.Pool)
	}
	return p.Renew(g.Lease.ID)
}

// pickQM round-robins across query-manager replicas, lock-free.
func (s *Service) pickQM() *querymgr.Manager {
	return s.qms[int((s.nextQM.Add(1)-1)%uint64(len(s.qms)))]
}

// allocateShadow leases a shadow account, lazily creating the machine's
// pool on first touch. Losing the first-touch creation race is benign —
// AddMachine rejects the duplicate and the winner's pool serves everyone —
// so no lock is needed here.
func (s *Service) allocateShadow(machine string) (shadow.Account, error) {
	acct, err := s.shadows.Allocate(machine)
	if err == nil {
		return acct, nil
	}
	_ = s.shadows.AddMachine(machine, s.shadowN, 20000)
	return s.shadows.Allocate(machine)
}

// Directory exposes the directory service (admin and experiment use).
func (s *Service) Directory() *directory.Service { return s.dir }

// DB exposes the white-pages database.
func (s *Service) DB() *registry.DB { return s.db }

// SelectMachines returns the machine records matching a basic query text
// ("" selects every record), plus the uncapped match count. A positive
// offset skips that many records in the registry's sorted name order and
// a positive limit truncates what follows — the paging contract behind
// snapshot fetches of fleets whose full batch would exceed a wire frame.
// Total always reports the full match count. This is the record-batch
// read behind the wire "select" endpoint.
func (s *Service) SelectMachines(text string, limit, offset int) ([]*registry.Machine, int, error) {
	q, err := query.ParseBasic(text)
	if err != nil {
		return nil, 0, err
	}
	ms := s.db.Select(q)
	total := len(ms)
	if offset > 0 {
		if offset > len(ms) {
			offset = len(ms)
		}
		ms = ms[offset:]
	}
	if limit > 0 && len(ms) > limit {
		ms = ms[:limit]
	}
	return ms, total, nil
}

// PoolManagers exposes the pool-manager stage.
func (s *Service) PoolManagers() []*poolmgr.Manager {
	out := make([]*poolmgr.Manager, len(s.pms))
	copy(out, s.pms)
	return out
}

// QueryManagers exposes the query-manager stage.
func (s *Service) QueryManagers() []*querymgr.Manager {
	out := make([]*querymgr.Manager, len(s.qms))
	copy(out, s.qms)
	return out
}

// allPools enumerates every live local pool: factory-created ones plus
// split children and replicas registered directly in the directory.
func (s *Service) allPools() []*pool.Pool {
	seen := map[string]bool{}
	var out []*pool.Pool
	for _, p := range s.factory.Pools() {
		if !seen[p.ID()] {
			seen[p.ID()] = true
			out = append(out, p)
		}
	}
	for _, name := range s.dir.Names() {
		for _, ref := range s.dir.Lookup(name) {
			if p, ok := ref.Local.(*pool.Pool); ok && !seen[p.ID()] {
				seen[p.ID()] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// Routes exposes the domain-ownership table (nil when partitioning is
// off).
func (s *Service) Routes() *route.Table { return s.opts.Routes }

// Reaper exposes the lease reaper (nil when LeaseTTL is unset).
func (s *Service) Reaper() *pool.Reaper { return s.reaper }

// RefreshMode reports the active freshness mode (RefreshPoll or
// RefreshEvents).
func (s *Service) RefreshMode() string { return s.opts.RefreshMode }

// Events exposes the change-stream dispatcher (nil in poll mode).
func (s *Service) Events() *pool.Dispatcher { return s.events }

// Stats is an aggregate operational snapshot of the pipeline.
type Stats struct {
	Queries      int // composite queries submitted across query managers
	Fragments    int // basic fragments produced by decomposition
	Resolved     int // fragments resolved by pool managers
	PoolsCreated int // pools created on demand
	Forwards     int // delegations attempted between pool managers
	Failures     int // fragments that exhausted every option
	Pools        int // live pool instances
	Machines     int // machines in the white pages
}

// Stats aggregates counters from every pipeline stage.
func (s *Service) Stats() Stats {
	var out Stats
	for _, qm := range s.qms {
		submitted, fragments, _ := qm.Stats()
		out.Queries += submitted
		out.Fragments += fragments
	}
	for _, pm := range s.pms {
		resolved, created, forwarded, failed := pm.Stats()
		out.Resolved += resolved
		out.PoolsCreated += created
		out.Forwards += forwarded
		out.Failures += failed
	}
	out.Pools = s.dir.Instances()
	out.Machines = s.db.Len()
	return out
}

// Close stops the monitor and reaper and shuts every created pool down,
// releasing all white-pages claims.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.mon != nil {
		s.mon.Stop()
	}
	if s.reaper != nil {
		s.reaper.Stop()
	}
	if s.refreshStop != nil {
		close(s.refreshStop)
		<-s.refreshDone
	}
	if s.events != nil {
		s.events.Stop()
	}
	s.factory.CloseAll()
}
