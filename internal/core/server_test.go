package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"actyp/internal/netsim"
	"actyp/internal/registry"
)

func startServer(t *testing.T, n int, profile netsim.Profile) (*Server, *Service) {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(svc, "127.0.0.1:0", profile)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func TestClientServerLifecycle(t *testing.T) {
	srv, _ := startServer(t, 16, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	g, err := c.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lease == nil || g.Lease.AccessKey == "" {
		t.Fatalf("grant = %+v", g)
	}
	if g.Shadow.User == "" {
		t.Error("grant missing shadow account")
	}
	if err := c.Release(g); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(g); err == nil {
		t.Error("double release should fail")
	}
	if err := c.Release(nil); err == nil {
		t.Error("nil grant should fail")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	srv, _ := startServer(t, 4, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Request("punch.rsrc.arch = cray")
	if err == nil || !strings.Contains(err.Error(), "no resources matched") {
		t.Errorf("err = %v", err)
	}
	_, err = c.Request("garbage ===")
	if err == nil {
		t.Error("parse errors should propagate")
	}
	// The connection survives server-side errors.
	if err := c.Ping(); err != nil {
		t.Errorf("connection broken after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, 64, netsim.Local())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), netsim.Local())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for i := 0; i < 5; i++ {
				g, err := c.Request("punch.rsrc.arch = sun | hp")
				if err != nil {
					t.Errorf("request: %v", err)
					return
				}
				if err := c.Release(g); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWANLatencyDominatesResponseTime(t *testing.T) {
	profile := netsim.Profile{Latency: 15 * time.Millisecond, Seed: 1}
	srv, _ := startServer(t, 8, profile)
	c, err := Dial(srv.Addr(), profile)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	g, err := c.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// One request round trip: client->server 15ms, server->client 15ms.
	if elapsed < 30*time.Millisecond {
		t.Errorf("WAN request took %v, want >= 30ms", elapsed)
	}
	if err := c.Release(g); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIsIdempotentAndDisconnectsClients(t *testing.T) {
	srv, _ := startServer(t, 4, netsim.Local())
	c, err := Dial(srv.Addr(), netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if err := c.Ping(); err == nil {
		t.Error("ping should fail after server close")
	}
}
