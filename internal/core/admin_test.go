package core

import (
	"fmt"
	"testing"
	"time"

	"actyp/internal/registry"
)

func homogService(t testing.TB, n int, mut ...func(*Options)) *Service {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	opts := Options{DB: db}
	for _, f := range mut {
		f(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPrecreate(t *testing.T) {
	s := homogService(t, 8)
	if err := s.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	if s.Directory().Instances() != 1 {
		t.Errorf("instances = %d", s.Directory().Instances())
	}
	// Idempotent.
	if err := s.Precreate("punch.rsrc.arch = sun"); err != nil {
		t.Fatal(err)
	}
	if s.Directory().Instances() != 1 {
		t.Errorf("precreate duplicated the pool")
	}
	if err := s.Precreate("not a query"); err == nil {
		t.Error("bad criteria should fail")
	}
}

func TestStripeAndWarmPools(t *testing.T) {
	s := homogService(t, 12)
	if err := s.StripePools(4); err != nil {
		t.Fatal(err)
	}
	if err := s.StripePools(0); err == nil {
		t.Error("zero stripes should fail")
	}
	if err := s.WarmPools(4); err != nil {
		t.Fatal(err)
	}
	sizes := s.PoolSizes()
	if len(sizes) != 4 {
		t.Fatalf("pool sizes = %v", sizes)
	}
	for inst, size := range sizes {
		if size != 3 {
			t.Errorf("pool %s size = %d, want 3", inst, size)
		}
	}
	// Queries against each stripe allocate from disjoint machine sets.
	seen := map[string]bool{}
	for k := 0; k < 4; k++ {
		g, err := s.Request(fmt.Sprintf("punch.rsrc.pool = %d", k))
		if err != nil {
			t.Fatalf("stripe %d: %v", k, err)
		}
		if seen[g.Lease.Machine] {
			t.Errorf("machine %s served two stripes", g.Lease.Machine)
		}
		seen[g.Lease.Machine] = true
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplitPool(t *testing.T) {
	s := homogService(t, 12)
	crit := "punch.rsrc.arch = sun"
	if err := s.SplitPool(crit, 2); err == nil {
		t.Error("splitting a non-existent pool should fail")
	}
	if err := s.Precreate(crit); err != nil {
		t.Fatal(err)
	}
	if err := s.SplitPool(crit, 4); err != nil {
		t.Fatal(err)
	}
	sizes := s.PoolSizes()
	if len(sizes) != 4 {
		t.Fatalf("after split: %v", sizes)
	}
	for inst, size := range sizes {
		if size != 3 {
			t.Errorf("child %s size = %d", inst, size)
		}
	}
	// Allocation still works and covers all children.
	var grants []*Grant
	for i := 0; i < 12; i++ {
		g, err := s.Request(crit)
		if err != nil {
			t.Fatalf("request %d after split: %v", i, err)
		}
		grants = append(grants, g)
	}
	seen := map[string]bool{}
	for _, g := range grants {
		if seen[g.Lease.Machine] {
			t.Errorf("machine %s double-leased after split", g.Lease.Machine)
		}
		seen[g.Lease.Machine] = true
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 12 {
		t.Errorf("split pools served %d machines, want 12", len(seen))
	}
	// Splitting again fails: more than one instance now exists.
	if err := s.SplitPool(crit, 2); err == nil {
		t.Error("splitting a split pool should fail")
	}
}

func TestReplicatePool(t *testing.T) {
	s := homogService(t, 8)
	crit := "punch.rsrc.arch = sun"
	if err := s.ReplicatePool(crit, 2); err == nil {
		t.Error("replicating a non-existent pool should fail")
	}
	if err := s.Precreate(crit); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplicatePool(crit, 0); err == nil {
		t.Error("zero replicas should fail")
	}
	if err := s.ReplicatePool(crit, 3); err != nil {
		t.Fatal(err)
	}
	sizes := s.PoolSizes()
	if len(sizes) != 3 {
		t.Fatalf("after replicate: %v", sizes)
	}
	// Replicas share the full machine set.
	for inst, size := range sizes {
		if size != 8 {
			t.Errorf("replica %s size = %d, want 8", inst, size)
		}
	}
	// Replicas do not share allocation state — the instance bias is the
	// paper's (approximate) integrity mechanism, and machines are
	// timeshared. Assert that requests succeed and spread widely, and
	// that no single replica double-leases a machine.
	seen := map[string]bool{}
	perPool := map[string]map[string]bool{}
	var grants []*Grant
	for i := 0; i < 8; i++ {
		g, err := s.Request(crit)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if perPool[g.Lease.Pool] == nil {
			perPool[g.Lease.Pool] = map[string]bool{}
		}
		if perPool[g.Lease.Pool][g.Lease.Machine] {
			t.Errorf("replica %s double-leased %s", g.Lease.Pool, g.Lease.Machine)
		}
		perPool[g.Lease.Pool][g.Lease.Machine] = true
		seen[g.Lease.Machine] = true
		grants = append(grants, g)
	}
	if len(seen) < 5 {
		t.Errorf("bias spread allocations over only %d machines", len(seen))
	}
	for _, g := range grants {
		if err := s.Release(g); err != nil {
			t.Fatal(err)
		}
	}
}
