package query

import (
	"fmt"
	"sort"
	"sync"
)

// Kind constrains how values for an administrator-defined key are
// interpreted (Section 4.1, field 20: "administrator defined parameter
// list" whose valid words and value interpretation are specified by
// administrators).
type Kind int

// Value kinds a schema entry may declare.
const (
	KindString Kind = iota // free-form string
	KindNumber             // numeric, supports ordering operators
	KindList               // comma-separated list (set semantics)
	KindEnum               // string restricted to declared values
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindList:
		return "list"
	case KindEnum:
		return "enum"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Field declares one key of a family schema.
type Field struct {
	Class  Class    // rsrc, appl or user
	Name   string   // final key component
	Kind   Kind     // value interpretation
	Values []string // allowed values for KindEnum
}

// Schema is the administrator-defined vocabulary for one query family. New
// families of key-value pairs can be registered to let the pipeline support
// multiple protocols simultaneously (the paper mentions reusing Condor's
// ClassAds this way).
type Schema struct {
	Family string

	mu     sync.RWMutex
	fields map[string]Field // "class.name" -> Field
}

// NewSchema creates an empty schema for a family.
func NewSchema(family string) *Schema {
	return &Schema{Family: family, fields: make(map[string]Field)}
}

// PunchSchema returns the schema of the punch family as used in the
// production PUNCH system, covering the parameters listed in Section 4.1
// (arch, memory, ostype, osversion, owner, swap, cms) plus the appl and
// user keys of the sample query in Section 5.1.
func PunchSchema() *Schema {
	s := NewSchema("punch")
	for _, f := range []Field{
		{Class: ClassRsrc, Name: "arch", Kind: KindString},
		{Class: ClassRsrc, Name: "memory", Kind: KindNumber},
		{Class: ClassRsrc, Name: "swap", Kind: KindNumber},
		{Class: ClassRsrc, Name: "ostype", Kind: KindString},
		{Class: ClassRsrc, Name: "osversion", Kind: KindString},
		{Class: ClassRsrc, Name: "owner", Kind: KindString},
		{Class: ClassRsrc, Name: "cms", Kind: KindList},
		{Class: ClassRsrc, Name: "license", Kind: KindString},
		{Class: ClassRsrc, Name: "domain", Kind: KindString},
		{Class: ClassRsrc, Name: "toolgroup", Kind: KindString},
		{Class: ClassRsrc, Name: "usergroup", Kind: KindString},
		{Class: ClassRsrc, Name: "pool", Kind: KindNumber},
		{Class: ClassRsrc, Name: "speed", Kind: KindNumber},
		{Class: ClassRsrc, Name: "cpus", Kind: KindNumber},
		{Class: ClassAppl, Name: "expectedcpuuse", Kind: KindNumber},
		{Class: ClassAppl, Name: "expectedmemuse", Kind: KindNumber},
		{Class: ClassAppl, Name: "tool", Kind: KindString},
		{Class: ClassUser, Name: "login", Kind: KindString},
		{Class: ClassUser, Name: "accessgroup", Kind: KindString},
		{Class: ClassUser, Name: "accesskey", Kind: KindString},
	} {
		if err := s.Declare(f); err != nil {
			panic(err) // static table; cannot fail
		}
	}
	return s
}

// Declare registers a field. Redeclaring a name under the same class
// replaces the previous declaration.
func (s *Schema) Declare(f Field) error {
	if f.Name == "" {
		return fmt.Errorf("query: schema field needs a name")
	}
	switch f.Class {
	case ClassRsrc, ClassAppl, ClassUser:
	default:
		return fmt.Errorf("query: schema field %q has unknown class %q", f.Name, f.Class)
	}
	if f.Kind == KindEnum && len(f.Values) == 0 {
		return fmt.Errorf("query: enum field %q declares no values", f.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fields[string(f.Class)+"."+f.Name] = f
	return nil
}

// Field returns the declaration for class.name.
func (s *Schema) Field(class Class, name string) (Field, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.fields[string(class)+"."+name]
	return f, ok
}

// Names returns the declared names for a class, sorted.
func (s *Schema) Names(class Class) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for _, f := range s.fields {
		if f.Class == class {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks that every key of the query belongs to this schema's
// family and vocabulary and that operators are compatible with the declared
// kinds (ordering operators require numbers; enum values must be declared).
func (s *Schema) Validate(q *Query) error {
	for _, ks := range q.Keys() {
		k, err := ParseKey(ks)
		if err != nil {
			return err
		}
		if k.Family != s.Family {
			return fmt.Errorf("query: key %s does not belong to family %q", ks, s.Family)
		}
		f, ok := s.Field(k.Class, k.Name)
		if !ok {
			return fmt.Errorf("query: key %s is not declared in the %s schema", ks, s.Family)
		}
		cond := q.Fields[ks]
		if err := checkKind(f, cond); err != nil {
			return fmt.Errorf("query: key %s: %v", ks, err)
		}
	}
	return nil
}

// ValidateComposite validates every alternative of a composite query.
func (s *Schema) ValidateComposite(c *Composite) error {
	for ks, alts := range c.Alternatives {
		k, err := ParseKey(ks)
		if err != nil {
			return err
		}
		if k.Family != s.Family {
			return fmt.Errorf("query: key %s does not belong to family %q", ks, s.Family)
		}
		f, ok := s.Field(k.Class, k.Name)
		if !ok {
			return fmt.Errorf("query: key %s is not declared in the %s schema", ks, s.Family)
		}
		for _, cond := range alts {
			if err := checkKind(f, cond); err != nil {
				return fmt.Errorf("query: key %s: %v", ks, err)
			}
		}
	}
	return nil
}

func checkKind(f Field, cond Condition) error {
	switch cond.Op {
	case OpAny:
		return nil
	case OpGe, OpLe, OpGt, OpLt, OpRange:
		if f.Kind != KindNumber {
			return fmt.Errorf("operator %s requires a numeric field, %s is %s", cond.Op, f.Name, f.Kind)
		}
		if !cond.IsNum {
			return fmt.Errorf("operator %s requires a numeric operand", cond.Op)
		}
		return nil
	}
	if f.Kind == KindNumber && !cond.IsNum && cond.Op != OpIn {
		return fmt.Errorf("field %s is numeric but operand %q is not", f.Name, cond.Str)
	}
	if f.Kind == KindEnum {
		vals := cond.Set
		if vals == nil {
			vals = []string{cond.Str}
		}
		for _, v := range vals {
			ok := false
			for _, allowed := range f.Values {
				if v == allowed {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("value %q is not among the declared values of enum %s", v, f.Name)
			}
		}
	}
	return nil
}

// SchemaRegistry holds the schemas of all registered families so the
// pipeline can simultaneously support multiple protocols and semantics.
type SchemaRegistry struct {
	mu       sync.RWMutex
	families map[string]*Schema
}

// NewSchemaRegistry returns a registry preloaded with the punch family.
func NewSchemaRegistry() *SchemaRegistry {
	r := &SchemaRegistry{families: make(map[string]*Schema)}
	r.Register(PunchSchema())
	return r
}

// Register adds or replaces a family schema.
func (r *SchemaRegistry) Register(s *Schema) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[s.Family] = s
}

// Family returns the schema for a family name.
func (r *SchemaRegistry) Family(name string) (*Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.families[name]
	return s, ok
}

// Families lists the registered family names, sorted.
func (r *SchemaRegistry) Families() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Validate routes a composite query to its family's schema. Unknown
// families are rejected.
func (r *SchemaRegistry) Validate(c *Composite) error {
	family := ""
	for ks := range c.Alternatives {
		k, err := ParseKey(ks)
		if err != nil {
			return err
		}
		if family == "" {
			family = k.Family
		} else if family != k.Family {
			return fmt.Errorf("query: mixed families %q and %q in one query", family, k.Family)
		}
	}
	if family == "" {
		return fmt.Errorf("query: empty query")
	}
	s, ok := r.Family(family)
	if !ok {
		return fmt.Errorf("query: family %q is not registered", family)
	}
	return s.ValidateComposite(c)
}
