package query

import (
	"strings"
	"testing"
	"testing/quick"
)

// The sample query from Section 5.1 of the paper.
const paperQuery = `
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.license = tsuprem4
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
`

func TestParsePaperQuery(t *testing.T) {
	c, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsBasic() {
		t.Fatal("paper query should be basic")
	}
	q := c.Decompose()[0]
	if got := len(q.Fields); got != 7 {
		t.Fatalf("parsed %d fields, want 7", got)
	}
	arch, _ := q.Get("punch.rsrc.arch")
	if arch.Op != OpEq || arch.Str != "sun" {
		t.Errorf("arch = %+v", arch)
	}
	mem, _ := q.Get("punch.rsrc.memory")
	if mem.Op != OpGe || mem.Num != 10 {
		t.Errorf("memory = %+v", mem)
	}
	cpu, _ := q.Get("punch.appl.expectedcpuuse")
	if cpu.Op != OpEq || !cpu.IsNum || cpu.Num != 1000 {
		t.Errorf("expectedcpuuse = %+v", cpu)
	}
}

func TestParseComposite(t *testing.T) {
	c, err := Parse("punch.rsrc.arch = sun | hp")
	if err != nil {
		t.Fatal(err)
	}
	if c.IsBasic() {
		t.Fatal("or-clause should make the query composite")
	}
	qs := c.Decompose()
	if len(qs) != 2 {
		t.Fatalf("decomposed into %d, want 2", len(qs))
	}
	var archs []string
	for _, q := range qs {
		a, _ := q.Get("punch.rsrc.arch")
		archs = append(archs, a.Str)
	}
	got := strings.Join(archs, ",")
	if got != "sun,hp" && got != "hp,sun" {
		t.Errorf("alternatives = %v", archs)
	}
}

func TestParseOperatorsAndForms(t *testing.T) {
	c, err := Parse(`
# comment line
punch.rsrc.memory = >=128
punch.rsrc.swap = <=4096
punch.rsrc.speed = >300
punch.rsrc.load = <0.5
punch.rsrc.arch = !=hp
punch.rsrc.cpus = 2..8
punch.rsrc.cms = sge,pbs
punch.rsrc.ostype = *
`)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Decompose()[0]
	checks := []struct {
		key string
		op  Op
	}{
		{"punch.rsrc.memory", OpGe},
		{"punch.rsrc.swap", OpLe},
		{"punch.rsrc.speed", OpGt},
		{"punch.rsrc.load", OpLt},
		{"punch.rsrc.arch", OpNe},
		{"punch.rsrc.cpus", OpRange},
		{"punch.rsrc.cms", OpIn},
		{"punch.rsrc.ostype", OpAny},
	}
	for _, tc := range checks {
		cond, ok := q.Get(tc.key)
		if !ok {
			t.Errorf("missing %s", tc.key)
			continue
		}
		if cond.Op != tc.op {
			t.Errorf("%s: op = %v, want %v", tc.key, cond.Op, tc.op)
		}
	}
	if cond, _ := q.Get("punch.rsrc.cpus"); cond.Lo != 2 || cond.Hi != 8 {
		t.Errorf("range = %+v", cond)
	}
	if cond, _ := q.Get("punch.rsrc.cms"); len(cond.Set) != 2 || cond.Set[0] != "sge" {
		t.Errorf("set = %+v", cond)
	}
}

func TestParseExplicitDoubleEquals(t *testing.T) {
	c, err := Parse("punch.rsrc.arch == sun")
	if err != nil {
		t.Fatal(err)
	}
	q := c.Decompose()[0]
	if cond, _ := q.Get("punch.rsrc.arch"); cond.Op != OpEq || cond.Str != "sun" {
		t.Errorf("cond = %+v", cond)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"punch.rsrc.arch sun",          // no '='
		"notakey = sun",                // malformed key
		"punch.rsrc.arch = ",           // empty value
		"punch.rsrc.memory = >=abc",    // non-numeric operand
		"punch.rsrc.cpus = 8..2",       // inverted range
		"punch.rsrc.arch = sun | | hp", // empty alternative
		"punch.rsrc.memory >= 10",      // operator on wrong side
		"punch.rsrc.cms = a,,b",        // empty set member
		"punch.bogus.arch = sun",       // unknown class
		"punch.rsrc.arch = !=",         // != without operand
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseBasicRejectsComposite(t *testing.T) {
	if _, err := ParseBasic("punch.rsrc.arch = sun | hp"); err == nil {
		t.Error("ParseBasic should reject or-clauses")
	}
	q, err := ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if cond, _ := q.Get("punch.rsrc.arch"); cond.Str != "sun" {
		t.Errorf("cond = %+v", cond)
	}
}

func TestParseConditionWildcard(t *testing.T) {
	c, err := ParseCondition("*")
	if err != nil || c.Op != OpAny {
		t.Errorf("ParseCondition(*) = %+v, %v", c, err)
	}
}

// Property: any basic query survives a String -> Parse round trip.
func TestParseRoundTripProperty(t *testing.T) {
	archs := []string{"sun", "hp", "alpha", "x86"}
	f := func(archIdx uint8, mem uint16, hasUser bool) bool {
		q := New().
			Set("punch.rsrc.arch", Eq(archs[int(archIdx)%len(archs)])).
			Set("punch.rsrc.memory", Ge(float64(mem%4096)))
		if hasUser {
			q.Set("punch.user.login", Eq("kapadia"))
		}
		parsed, err := ParseBasic(q.String())
		if err != nil {
			return false
		}
		return parsed.String() == q.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
