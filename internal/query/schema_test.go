package query

import (
	"strings"
	"testing"
)

func TestPunchSchemaAcceptsPaperQuery(t *testing.T) {
	c, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := PunchSchema().ValidateComposite(c); err != nil {
		t.Errorf("paper query rejected: %v", err)
	}
}

func TestSchemaDeclareErrors(t *testing.T) {
	s := NewSchema("t")
	if err := s.Declare(Field{Class: ClassRsrc, Name: ""}); err == nil {
		t.Error("empty name should fail")
	}
	if err := s.Declare(Field{Class: "bogus", Name: "x"}); err == nil {
		t.Error("bad class should fail")
	}
	if err := s.Declare(Field{Class: ClassRsrc, Name: "x", Kind: KindEnum}); err == nil {
		t.Error("enum without values should fail")
	}
}

func TestSchemaValidateUnknownKey(t *testing.T) {
	q := New().Set("punch.rsrc.nosuchkey", Eq("x"))
	err := PunchSchema().Validate(q)
	if err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Errorf("err = %v", err)
	}
}

func TestSchemaValidateWrongFamily(t *testing.T) {
	q := New().Set("condor.rsrc.arch", Eq("x"))
	if err := PunchSchema().Validate(q); err == nil {
		t.Error("wrong family should fail")
	}
}

func TestSchemaKindChecks(t *testing.T) {
	s := PunchSchema()
	// Ordering operator on a string field fails.
	q := New().Set("punch.rsrc.arch", Ge(10))
	if err := s.Validate(q); err == nil {
		t.Error(">= on string field should fail")
	}
	// Non-numeric operand on a numeric field fails.
	q2 := New().Set("punch.rsrc.memory", Eq("lots"))
	if err := s.Validate(q2); err == nil {
		t.Error("string operand on numeric field should fail")
	}
	// Wildcards always pass.
	q3 := New().Set("punch.rsrc.memory", Any())
	if err := s.Validate(q3); err != nil {
		t.Errorf("wildcard rejected: %v", err)
	}
	// Numeric field accepts range and numeric equality.
	q4 := New().
		Set("punch.rsrc.memory", Between(10, 20)).
		Set("punch.rsrc.swap", EqNum(100))
	if err := s.Validate(q4); err != nil {
		t.Errorf("numeric forms rejected: %v", err)
	}
}

func TestSchemaEnum(t *testing.T) {
	s := NewSchema("t")
	if err := s.Declare(Field{Class: ClassRsrc, Name: "tier", Kind: KindEnum, Values: []string{"gold", "silver"}}); err != nil {
		t.Fatal(err)
	}
	ok := New().Set("t.rsrc.tier", Eq("gold"))
	if err := s.Validate(ok); err != nil {
		t.Errorf("declared enum value rejected: %v", err)
	}
	bad := New().Set("t.rsrc.tier", Eq("bronze"))
	if err := s.Validate(bad); err == nil {
		t.Error("undeclared enum value should fail")
	}
	set := New().Set("t.rsrc.tier", In("gold", "bronze"))
	if err := s.Validate(set); err == nil {
		t.Error("set containing undeclared enum value should fail")
	}
}

func TestSchemaNamesSorted(t *testing.T) {
	names := PunchSchema().Names(ClassRsrc)
	if len(names) == 0 {
		t.Fatal("no rsrc names")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	if got := PunchSchema().Names(ClassUser); len(got) != 3 {
		t.Errorf("user names = %v", got)
	}
}

func TestSchemaRegistry(t *testing.T) {
	r := NewSchemaRegistry()
	if _, ok := r.Family("punch"); !ok {
		t.Fatal("punch family should be preloaded")
	}
	if fams := r.Families(); len(fams) != 1 || fams[0] != "punch" {
		t.Errorf("families = %v", fams)
	}

	// Register a second family (the ClassAds reuse scenario from §5.1).
	classads := NewSchema("classads")
	if err := classads.Declare(Field{Class: ClassRsrc, Name: "opsys", Kind: KindString}); err != nil {
		t.Fatal(err)
	}
	r.Register(classads)
	if fams := r.Families(); len(fams) != 2 {
		t.Errorf("families = %v", fams)
	}
	c, _ := Parse("classads.rsrc.opsys = LINUX")
	if err := r.Validate(c); err != nil {
		t.Errorf("classads query rejected: %v", err)
	}

	// Unknown family and mixed families fail.
	c2, _ := Parse("nobody.rsrc.x = 1")
	if err := r.Validate(c2); err == nil {
		t.Error("unknown family should fail")
	}
	mixed := NewComposite().
		Add("punch.rsrc.arch", Eq("sun")).
		Add("classads.rsrc.opsys", Eq("LINUX"))
	if err := r.Validate(mixed); err == nil {
		t.Error("mixed families should fail")
	}
	if err := r.Validate(NewComposite()); err == nil {
		t.Error("empty query should fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindString: "string", KindNumber: "number", KindList: "list", KindEnum: "enum"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d) = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind = %q", got)
	}
}
