package query

import (
	"fmt"
	"strings"
)

// PoolName is the two-part name a pool manager derives from a query
// (Section 5.2.2). The signature captures which rsrc keys are constrained
// and with which operators; the identifier captures the operand values.
// For the paper's sample query the signature is
// "arch:domain:license:memory,==:==:==:>=" and the identifier is
// "sun:purdue:tsuprem4:10".
type PoolName struct {
	Signature  string `json:"signature"`
	Identifier string `json:"identifier"`
}

// String joins signature and identifier with '/'.
func (n PoolName) String() string { return n.Signature + "/" + n.Identifier }

// IsZero reports whether the name is empty.
func (n PoolName) IsZero() bool { return n.Signature == "" && n.Identifier == "" }

// Name maps a basic query to its pool name. Only rsrc-class keys take part;
// keys with the "don't care" wildcard are excluded, matching the paper's
// default semantics (an unspecified key does not constrain the pool).
// A query with no effective rsrc constraints maps to the catch-all name
// "any,*" / "*".
func Name(q *Query) PoolName {
	keys := q.ClassKeys(ClassRsrc)
	names := make([]string, 0, len(keys))
	ops := make([]string, 0, len(keys))
	vals := make([]string, 0, len(keys))
	for _, k := range keys {
		cond := q.Fields[k.String()]
		if cond.Op == OpAny {
			continue
		}
		names = append(names, k.Name)
		ops = append(ops, cond.Op.String())
		vals = append(vals, cond.Operand())
	}
	if len(names) == 0 {
		return PoolName{Signature: "any,*", Identifier: "*"}
	}
	return PoolName{
		Signature:  strings.Join(names, ":") + "," + strings.Join(ops, ":"),
		Identifier: strings.Join(vals, ":"),
	}
}

// ParsePoolName splits a "signature/identifier" string back into a PoolName.
func ParsePoolName(s string) (PoolName, error) {
	i := strings.LastIndex(s, "/")
	if i < 0 {
		return PoolName{}, fmt.Errorf("query: pool name %q missing '/'", s)
	}
	n := PoolName{Signature: s[:i], Identifier: s[i+1:]}
	if n.Signature == "" || n.Identifier == "" {
		return PoolName{}, fmt.Errorf("query: pool name %q has empty component", s)
	}
	return n, nil
}

// Criteria reconstructs the aggregation constraints encoded in a pool name:
// the per-key conditions a machine must satisfy to belong to the pool.
// It is the inverse of Name for the rsrc keys of the originating family.
func (n PoolName) Criteria(family string) (*Query, error) {
	if n.Signature == "any,*" {
		return New(), nil
	}
	comma := strings.LastIndex(n.Signature, ",")
	if comma < 0 {
		return nil, fmt.Errorf("query: signature %q missing ',' separator", n.Signature)
	}
	names := strings.Split(n.Signature[:comma], ":")
	ops := strings.Split(n.Signature[comma+1:], ":")
	vals := strings.Split(n.Identifier, ":")
	if len(names) != len(ops) || len(names) != len(vals) {
		return nil, fmt.Errorf("query: pool name %q: %d keys, %d ops, %d values",
			n.String(), len(names), len(ops), len(vals))
	}
	q := New()
	seen := make(map[string]bool, len(names))
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("query: signature %q has an empty key name", n.Signature)
		}
		if seen[name] {
			return nil, fmt.Errorf("query: signature %q repeats key %q", n.Signature, name)
		}
		seen[name] = true
		if i > 0 && names[i-1] > name {
			return nil, fmt.Errorf("query: signature %q keys are not sorted", n.Signature)
		}
		op, err := ParseOp(ops[i])
		if err != nil {
			return nil, err
		}
		// Name never emits don't-care ops into signatures; a wildcard
		// here marks a hand-built, malformed name.
		if op == OpAny {
			return nil, fmt.Errorf("query: signature %q contains a wildcard operator", n.Signature)
		}
		var cond Condition
		switch op {
		case OpEq:
			cond = Eq(vals[i])
		case OpNe:
			cond = Ne(vals[i])
		case OpIn:
			cond = In(strings.Split(vals[i], ",")...)
		case OpRange:
			cond, err = ParseCondition(vals[i])
			if err != nil {
				return nil, err
			}
		default:
			cond, err = ParseCondition(op.String() + vals[i])
			if err != nil {
				return nil, err
			}
		}
		q.Set(Key{Family: family, Class: ClassRsrc, Name: name}.String(), cond)
	}
	return q, nil
}
