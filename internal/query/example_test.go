package query_test

import (
	"fmt"

	"actyp/internal/query"
)

// ExampleParse parses the paper's Section 5.1 sample query and shows the
// pool name a pool manager derives from it.
func ExampleParse() {
	c, err := query.Parse(`
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.license = tsuprem4
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	q := c.Decompose()[0]
	name := query.Name(q)
	fmt.Println("signature: ", name.Signature)
	fmt.Println("identifier:", name.Identifier)
	// Output:
	// signature:  arch:domain:license:memory,==:==:==:>=
	// identifier: sun:purdue:tsuprem4:10
}

// ExampleComposite_Decompose shows how an or-clause fragments into basic
// queries processed concurrently by the pipeline.
func ExampleComposite_Decompose() {
	c, err := query.Parse("punch.rsrc.arch = sun | hp\npunch.rsrc.memory = >=64")
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	for _, q := range c.Decompose() {
		arch, _ := q.Get("punch.rsrc.arch")
		fmt.Println("fragment for arch", arch.Str)
	}
	// Output:
	// fragment for arch sun
	// fragment for arch hp
}

// ExampleAttrSet_MatchRsrc shows machine-side matching against a query's
// resource requirements.
func ExampleAttrSet_MatchRsrc() {
	machine := query.AttrSet{
		"arch":   query.StrAttr("sun"),
		"memory": query.NumAttr(512),
		"cms":    query.ListAttr("sge", "pbs"),
	}
	q := query.New().
		Set("punch.rsrc.arch", query.Eq("sun")).
		Set("punch.rsrc.memory", query.Ge(256)).
		Set("punch.rsrc.cms", query.Eq("pbs"))
	fmt.Println(machine.MatchRsrc(q))
	// Output:
	// true
}
