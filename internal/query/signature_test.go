package query

import (
	"testing"
	"testing/quick"
)

// Section 5.2.2 gives the exact signature and identifier for the sample
// query of Section 5.1; this test pins both strings.
func TestPaperSignature(t *testing.T) {
	q, err := ParseBasic(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	n := Name(q)
	if n.Signature != "arch:domain:license:memory,==:==:==:>=" {
		t.Errorf("signature = %q", n.Signature)
	}
	if n.Identifier != "sun:purdue:tsuprem4:10" {
		t.Errorf("identifier = %q", n.Identifier)
	}
}

func TestNameIgnoresApplUserAndWildcards(t *testing.T) {
	q := New().
		Set("punch.rsrc.arch", Eq("sun")).
		Set("punch.rsrc.ostype", Any()).
		Set("punch.appl.expectedcpuuse", EqNum(1000)).
		Set("punch.user.login", Eq("kapadia"))
	n := Name(q)
	if n.Signature != "arch,==" || n.Identifier != "sun" {
		t.Errorf("name = %+v", n)
	}
}

func TestNameEmptyQuery(t *testing.T) {
	n := Name(New())
	if n.Signature != "any,*" || n.Identifier != "*" {
		t.Errorf("catch-all name = %+v", n)
	}
	// All-wildcard queries also collapse to the catch-all pool.
	q := New().Set("punch.rsrc.arch", Any())
	if got := Name(q); got != n {
		t.Errorf("wildcard-only name = %+v", got)
	}
}

func TestPoolNameStringParse(t *testing.T) {
	n := PoolName{Signature: "arch,==", Identifier: "sun"}
	parsed, err := ParsePoolName(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != n {
		t.Errorf("round trip = %+v", parsed)
	}
	for _, bad := range []string{"", "nosolidus", "/x", "x/"} {
		if _, err := ParsePoolName(bad); err == nil {
			t.Errorf("ParsePoolName(%q) should fail", bad)
		}
	}
}

func TestCriteriaInvertsName(t *testing.T) {
	q, err := ParseBasic(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	n := Name(q)
	crit, err := n.Criteria("punch")
	if err != nil {
		t.Fatal(err)
	}
	// The criteria must accept exactly the machines the query accepts.
	yes := AttrSet{
		"arch": StrAttr("sun"), "domain": StrAttr("purdue"),
		"license": StrAttr("tsuprem4"), "memory": NumAttr(64),
	}
	no := yes.Clone()
	no["memory"] = NumAttr(1)
	if !yes.MatchRsrc(crit) {
		t.Error("criteria rejected a conforming machine")
	}
	if no.MatchRsrc(crit) {
		t.Error("criteria accepted a non-conforming machine")
	}
}

func TestCriteriaCatchAll(t *testing.T) {
	crit, err := PoolName{Signature: "any,*", Identifier: "*"}.Criteria("punch")
	if err != nil {
		t.Fatal(err)
	}
	if len(crit.Fields) != 0 {
		t.Errorf("catch-all criteria = %+v", crit)
	}
	if !(AttrSet{}).MatchRsrc(crit) {
		t.Error("catch-all should match anything")
	}
}

func TestCriteriaMalformed(t *testing.T) {
	bad := []PoolName{
		{Signature: "archnocomma", Identifier: "sun"},
		{Signature: "arch:mem,==", Identifier: "sun"},   // 2 keys, 1 op
		{Signature: "arch,==:>=", Identifier: "sun"},    // 1 key, 2 ops
		{Signature: "arch,==", Identifier: "sun:extra"}, // 1 key, 2 values
		{Signature: "arch,~~", Identifier: "sun"},       // unknown op
	}
	for _, n := range bad {
		if _, err := n.Criteria("punch"); err == nil {
			t.Errorf("Criteria(%+v) should fail", n)
		}
	}
}

// Property: queries equal up to rsrc constraints map to the same pool name,
// and the reconstructed criteria accept any machine the query accepts.
func TestNameCriteriaConsistencyProperty(t *testing.T) {
	archs := []string{"sun", "hp", "alpha"}
	f := func(ai uint8, mem uint16) bool {
		arch := archs[int(ai)%len(archs)]
		m := float64(mem % 1024)
		q := New().
			Set("punch.rsrc.arch", Eq(arch)).
			Set("punch.rsrc.memory", Ge(m)).
			Set("punch.user.login", Eq("someone"))
		crit, err := Name(q).Criteria("punch")
		if err != nil {
			return false
		}
		machine := AttrSet{"arch": StrAttr(arch), "memory": NumAttr(m + 1)}
		return machine.MatchRsrc(q) && machine.MatchRsrc(crit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pool naming is stable — the same query always yields the same
// name regardless of field insertion order.
func TestNameOrderInvarianceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		a := New().
			Set("punch.rsrc.arch", Eq("sun")).
			Set("punch.rsrc.domain", Eq("purdue")).
			Set("punch.rsrc.memory", Ge(float64(seed)))
		b := New().
			Set("punch.rsrc.memory", Ge(float64(seed))).
			Set("punch.rsrc.domain", Eq("purdue")).
			Set("punch.rsrc.arch", Eq("sun"))
		return Name(a) == Name(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
