package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a query in its native textual form: one "key = value" line per
// condition. Values may carry a leading comparison operator (>=, <=, >, <,
// !=), a range (lo..hi), a comma-separated set, or one or more "|"-separated
// alternatives, which make the query composite. Blank lines and lines
// starting with '#' are ignored.
//
// Example:
//
//	punch.rsrc.arch = sun | hp
//	punch.rsrc.memory = >=10
//	punch.rsrc.license = tsuprem4
//	punch.user.login = kapadia
func Parse(text string) (*Composite, error) {
	c := NewComposite()
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("query: line %d: missing '=': %q", ln+1, line)
		}
		// Guard against the value's own operator being taken as the
		// separator: the separator is the first '=' not preceded by one of
		// < > ! and not followed by '='.
		keyPart := strings.TrimSpace(line[:eq])
		valPart := strings.TrimSpace(line[eq+1:])
		if strings.HasSuffix(keyPart, "<") || strings.HasSuffix(keyPart, ">") || strings.HasSuffix(keyPart, "!") {
			return nil, fmt.Errorf("query: line %d: operator must appear in the value, after '=': %q", ln+1, line)
		}
		if strings.HasPrefix(valPart, "=") { // "==" spelled explicitly
			valPart = strings.TrimSpace(valPart[1:])
		}
		key, err := ParseKey(keyPart)
		if err != nil {
			return nil, fmt.Errorf("query: line %d: %v", ln+1, err)
		}
		if valPart == "" {
			return nil, fmt.Errorf("query: line %d: empty value for key %s", ln+1, key)
		}
		for _, alt := range strings.Split(valPart, "|") {
			alt = strings.TrimSpace(alt)
			if alt == "" {
				return nil, fmt.Errorf("query: line %d: empty alternative for key %s", ln+1, key)
			}
			cond, err := ParseCondition(alt)
			if err != nil {
				return nil, fmt.Errorf("query: line %d: %v", ln+1, err)
			}
			c.Add(key.String(), cond)
		}
	}
	return c, nil
}

// ParseBasic parses text that must not contain "or" clauses and returns the
// resulting basic query.
func ParseBasic(text string) (*Query, error) {
	c, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if !c.IsBasic() {
		return nil, fmt.Errorf("query: composite query where a basic query was required")
	}
	qs := c.Decompose()
	return qs[0], nil
}

// ParseCondition parses a single condition value: an optional comparison
// operator followed by an operand, a lo..hi range, a comma-separated set, or
// the wildcard "*".
func ParseCondition(s string) (Condition, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Condition{}, fmt.Errorf("query: empty condition")
	}
	if s == "*" {
		return Any(), nil
	}
	// Explicit equality operator: "==value". A remaining leading '=' after
	// stripping it is malformed rather than part of the operand, which
	// keeps String -> Parse round trips idempotent.
	if strings.HasPrefix(s, "==") {
		s = strings.TrimSpace(s[2:])
		if s == "" {
			return Condition{}, fmt.Errorf("query: operator == needs an operand")
		}
	}
	if strings.HasPrefix(s, "=") {
		return Condition{}, fmt.Errorf("query: unexpected '=' in condition %q", s)
	}
	switch {
	case strings.HasPrefix(s, ">="):
		return numCond(OpGe, s[2:])
	case strings.HasPrefix(s, "<="):
		return numCond(OpLe, s[2:])
	case strings.HasPrefix(s, "!="):
		v := strings.TrimSpace(s[2:])
		if v == "" {
			return Condition{}, fmt.Errorf("query: operator != needs an operand")
		}
		return Ne(v), nil
	case strings.HasPrefix(s, ">"):
		return numCond(OpGt, s[1:])
	case strings.HasPrefix(s, "<"):
		return numCond(OpLt, s[1:])
	}
	if i := strings.Index(s, ".."); i >= 0 {
		lo, err1 := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		hi, err2 := strconv.ParseFloat(strings.TrimSpace(s[i+2:]), 64)
		if err1 != nil || err2 != nil {
			return Condition{}, fmt.Errorf("query: bad range %q", s)
		}
		if lo > hi {
			return Condition{}, fmt.Errorf("query: range %q has lo > hi", s)
		}
		return Between(lo, hi), nil
	}
	if strings.Contains(s, ",") {
		parts := strings.Split(s, ",")
		set := make([]string, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				return Condition{}, fmt.Errorf("query: set %q has an empty member", s)
			}
			set = append(set, p)
		}
		return In(set...), nil
	}
	return Eq(s), nil
}

func numCond(op Op, operand string) (Condition, error) {
	operand = strings.TrimSpace(operand)
	f, err := strconv.ParseFloat(operand, 64)
	if err != nil {
		return Condition{}, fmt.Errorf("query: operator %s needs a numeric operand, got %q", op, operand)
	}
	return Condition{Op: op, Num: f, IsNum: true, Str: FormatNum(f)}, nil
}
