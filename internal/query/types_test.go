package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpEq: "==", OpNe: "!=", OpGe: ">=", OpLe: "<=",
		OpGt: ">", OpLt: "<", OpRange: "..", OpIn: "in", OpAny: "*",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op should mention its code, got %q", got)
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for _, op := range []Op{OpEq, OpNe, OpGe, OpLe, OpGt, OpLt, OpRange, OpIn, OpAny} {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, err := ParseOp("~~"); err == nil {
		t.Error("ParseOp(~~) should fail")
	}
}

func TestParseKey(t *testing.T) {
	k, err := ParseKey("punch.rsrc.arch")
	if err != nil {
		t.Fatal(err)
	}
	if k.Family != "punch" || k.Class != ClassRsrc || k.Name != "arch" {
		t.Errorf("unexpected key %+v", k)
	}
	if k.String() != "punch.rsrc.arch" {
		t.Errorf("String() = %q", k.String())
	}
	for _, bad := range []string{"", "punch", "punch.rsrc", "punch.rsrc.arch.x", "punch..arch", "punch.bogus.arch", ".rsrc.arch"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) should fail", bad)
		}
	}
}

func TestConditionConstructors(t *testing.T) {
	if c := Eq("sun"); c.Op != OpEq || c.Str != "sun" || c.IsNum {
		t.Errorf("Eq(sun) = %+v", c)
	}
	if c := Eq("10"); !c.IsNum || c.Num != 10 {
		t.Errorf("Eq(10) should promote to numeric, got %+v", c)
	}
	if c := Ge(10); c.Op != OpGe || c.Num != 10 || !c.IsNum {
		t.Errorf("Ge(10) = %+v", c)
	}
	if c := Between(1, 5); c.Op != OpRange || c.Lo != 1 || c.Hi != 5 {
		t.Errorf("Between = %+v", c)
	}
	if c := In("a", "b"); c.Op != OpIn || len(c.Set) != 2 {
		t.Errorf("In = %+v", c)
	}
	if c := Any(); c.Op != OpAny {
		t.Errorf("Any = %+v", c)
	}
	if c := Ne("5"); c.Op != OpNe || !c.IsNum {
		t.Errorf("Ne(5) = %+v", c)
	}
}

func TestConditionOperandAndString(t *testing.T) {
	cases := []struct {
		c       Condition
		operand string
		str     string
	}{
		{Eq("sun"), "sun", "sun"},
		{Ge(10), "10", ">=10"},
		{Lt(2.5), "2.5", "<2.5"},
		{Between(1, 3), "1..3", "1..3"},
		{In("a", "b"), "a,b", "a,b"},
		{Any(), "*", "*"},
		{Ne("hp"), "hp", "!=hp"},
	}
	for _, tc := range cases {
		if got := tc.c.Operand(); got != tc.operand {
			t.Errorf("Operand(%+v) = %q, want %q", tc.c, got, tc.operand)
		}
		if got := tc.c.String(); got != tc.str {
			t.Errorf("String(%+v) = %q, want %q", tc.c, got, tc.str)
		}
	}
}

func TestFormatNum(t *testing.T) {
	if got := FormatNum(10); got != "10" {
		t.Errorf("FormatNum(10) = %q", got)
	}
	if got := FormatNum(2.5); got != "2.5" {
		t.Errorf("FormatNum(2.5) = %q", got)
	}
	if got := FormatNum(-3); got != "-3" {
		t.Errorf("FormatNum(-3) = %q", got)
	}
}

func TestQuerySetGetLookup(t *testing.T) {
	q := New()
	q.Set("punch.rsrc.arch", Eq("sun")).Set("punch.appl.expectedcpuuse", EqNum(1000))
	if c, ok := q.Get("punch.rsrc.arch"); !ok || c.Str != "sun" {
		t.Errorf("Get arch = %+v, %v", c, ok)
	}
	// Missing rsrc key defaults to don't-care.
	c, ok := q.Lookup(Key{"punch", ClassRsrc, "ostype"})
	if !ok || c.Op != OpAny {
		t.Errorf("missing rsrc key should be don't-care, got %+v, %v", c, ok)
	}
	// Missing appl/user keys default to undefined.
	if _, ok := q.Lookup(Key{"punch", ClassAppl, "expectedmemuse"}); ok {
		t.Error("missing appl key should be undefined")
	}
	if _, ok := q.Lookup(Key{"punch", ClassUser, "login"}); ok {
		t.Error("missing user key should be undefined")
	}
	// Present key wins over the default.
	if c, ok := q.Lookup(Key{"punch", ClassAppl, "expectedcpuuse"}); !ok || c.Num != 1000 {
		t.Errorf("Lookup expectedcpuuse = %+v, %v", c, ok)
	}
}

func TestQueryCloneIsDeep(t *testing.T) {
	q := New().Set("punch.rsrc.cms", In("sge", "pbs"))
	c := q.Clone()
	c.Fields["punch.rsrc.cms"].Set[0] = "mutated"
	if q.Fields["punch.rsrc.cms"].Set[0] != "sge" {
		t.Error("Clone shares Set slice with original")
	}
	c.Set("punch.rsrc.arch", Eq("sun"))
	if _, ok := q.Get("punch.rsrc.arch"); ok {
		t.Error("Clone shares field map with original")
	}
}

func TestQueryKeysSorted(t *testing.T) {
	q := New().
		Set("punch.user.login", Eq("kapadia")).
		Set("punch.rsrc.arch", Eq("sun")).
		Set("punch.rsrc.memory", Ge(10))
	keys := q.Keys()
	want := []string{"punch.rsrc.arch", "punch.rsrc.memory", "punch.user.login"}
	if len(keys) != len(want) {
		t.Fatalf("Keys() = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys()[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

func TestQueryClassKeys(t *testing.T) {
	q := New().
		Set("punch.rsrc.memory", Ge(10)).
		Set("punch.rsrc.arch", Eq("sun")).
		Set("punch.user.login", Eq("kapadia"))
	rk := q.ClassKeys(ClassRsrc)
	if len(rk) != 2 || rk[0].Name != "arch" || rk[1].Name != "memory" {
		t.Errorf("ClassKeys(rsrc) = %+v", rk)
	}
	if uk := q.ClassKeys(ClassUser); len(uk) != 1 || uk[0].Name != "login" {
		t.Errorf("ClassKeys(user) = %+v", uk)
	}
	if ak := q.ClassKeys(ClassAppl); len(ak) != 0 {
		t.Errorf("ClassKeys(appl) = %+v", ak)
	}
}

func TestQueryString(t *testing.T) {
	q := New().Set("punch.rsrc.arch", Eq("sun")).Set("punch.rsrc.memory", Ge(10))
	got := q.String()
	want := "punch.rsrc.arch = sun\npunch.rsrc.memory = >=10"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestQueryFamily(t *testing.T) {
	if f := New().Family(); f != "" {
		t.Errorf("empty query family = %q", f)
	}
	q := New().Set("punch.rsrc.arch", Eq("sun"))
	if f := q.Family(); f != "punch" {
		t.Errorf("family = %q", f)
	}
}

func TestCompositeDecomposeCartesian(t *testing.T) {
	c := NewComposite().
		Add("punch.rsrc.arch", Eq("sun")).
		Add("punch.rsrc.arch", Eq("hp")).
		Add("punch.rsrc.memory", Ge(10)).
		Add("punch.rsrc.memory", Ge(20))
	if c.IsBasic() {
		t.Error("composite with alternatives reported as basic")
	}
	if got := c.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
	qs := c.Decompose()
	if len(qs) != 4 {
		t.Fatalf("Decompose() produced %d queries, want 4", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		arch, _ := q.Get("punch.rsrc.arch")
		mem, _ := q.Get("punch.rsrc.memory")
		seen[arch.Str+"/"+mem.Operand()] = true
	}
	for _, want := range []string{"sun/10", "sun/20", "hp/10", "hp/20"} {
		if !seen[want] {
			t.Errorf("missing combination %s in %v", want, seen)
		}
	}
}

func TestCompositeBasicDecomposesToOne(t *testing.T) {
	c := NewComposite().Add("punch.rsrc.arch", Eq("sun"))
	if !c.IsBasic() {
		t.Error("single-alternative composite should be basic")
	}
	qs := c.Decompose()
	if len(qs) != 1 {
		t.Fatalf("Decompose() = %d queries", len(qs))
	}
	if cond, ok := qs[0].Get("punch.rsrc.arch"); !ok || cond.Str != "sun" {
		t.Errorf("decomposed query lost condition: %+v, %v", cond, ok)
	}
}

func TestCompositeDecomposeDeterministic(t *testing.T) {
	build := func() *Composite {
		return NewComposite().
			Add("punch.rsrc.arch", Eq("sun")).
			Add("punch.rsrc.arch", Eq("hp")).
			Add("punch.rsrc.domain", Eq("purdue"))
	}
	a := build().Decompose()
	b := build().Decompose()
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("order differs at %d: %q vs %q", i, a[i].String(), b[i].String())
		}
	}
}

// Property: decomposition always yields Count() basic queries, and each
// carries exactly one alternative per key.
func TestDecomposeCountProperty(t *testing.T) {
	f := func(nArch, nMem uint8) bool {
		a := int(nArch%4) + 1
		m := int(nMem%4) + 1
		c := NewComposite()
		for i := 0; i < a; i++ {
			c.Add("punch.rsrc.arch", Eq(FormatNum(float64(i))))
		}
		for i := 0; i < m; i++ {
			c.Add("punch.rsrc.memory", Ge(float64(i)))
		}
		qs := c.Decompose()
		if len(qs) != c.Count() || len(qs) != a*m {
			return false
		}
		for _, q := range qs {
			if len(q.Fields) != 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
