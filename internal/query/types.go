// Package query implements the ActYP resource-management query language
// described in Section 5.1 of the paper: a hierarchical key-value language
// with comparison operators, composite ("or") queries, per-family default
// semantics, and the signature/identifier mapping used by pool managers to
// name resource pools.
//
// A query is a set of key-value conditions where keys live in a hierarchical
// namespace family.class.name (for example punch.rsrc.arch). The class is
// one of "rsrc" (resource requirements), "appl" (predicted application
// behaviour) or "user" (user-specific data). Missing rsrc keys default to
// "don't care"; missing appl and user keys default to "undefined".
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Op is a comparison operator attached to a condition value.
type Op int

// Comparison operators supported by the query language. OpAny is the
// "don't care" wildcard that every attribute value satisfies.
const (
	OpEq    Op = iota // ==
	OpNe              // !=
	OpGe              // >=
	OpLe              // <=
	OpGt              // >
	OpLt              // <
	OpRange           // lo..hi (inclusive)
	OpIn              // member of a comma-separated set
	OpAny             // don't care
)

var opNames = map[Op]string{
	OpEq:    "==",
	OpNe:    "!=",
	OpGe:    ">=",
	OpLe:    "<=",
	OpGt:    ">",
	OpLt:    "<",
	OpRange: "..",
	OpIn:    "in",
	OpAny:   "*",
}

// String returns the canonical spelling of the operator as used in pool
// signatures (for example "==" or ">=").
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseOp converts a canonical operator spelling back to an Op.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	return OpAny, fmt.Errorf("query: unknown operator %q", s)
}

// Class identifies the middle component of a hierarchical key.
type Class string

// The three key classes defined by the punch family.
const (
	ClassRsrc Class = "rsrc"
	ClassAppl Class = "appl"
	ClassUser Class = "user"
)

// Key is a hierarchical query key: family.class.name.
type Key struct {
	Family string // for example "punch"
	Class  Class  // rsrc, appl or user
	Name   string // for example "arch"
}

// String renders the key in its dotted form.
func (k Key) String() string {
	return k.Family + "." + string(k.Class) + "." + k.Name
}

// ParseKey splits a dotted key into its three components.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Key{}, fmt.Errorf("query: key %q must have form family.class.name", s)
	}
	for _, p := range parts {
		if p == "" {
			return Key{}, fmt.Errorf("query: key %q has an empty component", s)
		}
	}
	c := Class(parts[1])
	switch c {
	case ClassRsrc, ClassAppl, ClassUser:
	default:
		return Key{}, fmt.Errorf("query: key %q has unknown class %q", s, parts[1])
	}
	return Key{Family: parts[0], Class: c, Name: parts[2]}, nil
}

// Condition is an operator applied to an operand. Numeric operands are kept
// in Num (and Lo/Hi for ranges); string operands in Str. IsNum records which
// representation is authoritative.
type Condition struct {
	Op    Op       `json:"op"`
	Str   string   `json:"str,omitempty"`
	Num   float64  `json:"num,omitempty"`
	IsNum bool     `json:"isNum,omitempty"`
	Lo    float64  `json:"lo,omitempty"`
	Hi    float64  `json:"hi,omitempty"`
	Set   []string `json:"set,omitempty"`
}

// Eq returns an equality condition for a string value.
func Eq(v string) Condition {
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return Condition{Op: OpEq, Str: v, Num: f, IsNum: true}
	}
	return Condition{Op: OpEq, Str: v}
}

// EqNum returns an equality condition for a numeric value.
func EqNum(v float64) Condition {
	return Condition{Op: OpEq, Num: v, IsNum: true, Str: FormatNum(v)}
}

// Ge returns a >= condition for a numeric value.
func Ge(v float64) Condition { return Condition{Op: OpGe, Num: v, IsNum: true, Str: FormatNum(v)} }

// Le returns a <= condition for a numeric value.
func Le(v float64) Condition { return Condition{Op: OpLe, Num: v, IsNum: true, Str: FormatNum(v)} }

// Gt returns a > condition for a numeric value.
func Gt(v float64) Condition { return Condition{Op: OpGt, Num: v, IsNum: true, Str: FormatNum(v)} }

// Lt returns a < condition for a numeric value.
func Lt(v float64) Condition { return Condition{Op: OpLt, Num: v, IsNum: true, Str: FormatNum(v)} }

// Ne returns a != condition.
func Ne(v string) Condition {
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return Condition{Op: OpNe, Str: v, Num: f, IsNum: true}
	}
	return Condition{Op: OpNe, Str: v}
}

// Between returns an inclusive range condition.
func Between(lo, hi float64) Condition {
	return Condition{Op: OpRange, Lo: lo, Hi: hi, IsNum: true, Str: FormatNum(lo) + ".." + FormatNum(hi)}
}

// In returns a set-membership condition.
func In(vals ...string) Condition {
	cp := make([]string, len(vals))
	copy(cp, vals)
	return Condition{Op: OpIn, Set: cp, Str: strings.Join(cp, ",")}
}

// Any returns the "don't care" condition.
func Any() Condition { return Condition{Op: OpAny, Str: "*"} }

// Operand renders the condition's operand in canonical string form, used in
// pool identifiers.
func (c Condition) Operand() string {
	switch c.Op {
	case OpAny:
		return "*"
	case OpRange:
		return FormatNum(c.Lo) + ".." + FormatNum(c.Hi)
	case OpIn:
		return strings.Join(c.Set, ",")
	default:
		if c.IsNum {
			return FormatNum(c.Num)
		}
		return c.Str
	}
}

// String renders the condition as it would appear on the right-hand side of
// a query line.
func (c Condition) String() string {
	switch c.Op {
	case OpEq:
		return c.Operand()
	case OpAny:
		return "*"
	case OpRange, OpIn:
		return c.Operand()
	default:
		return c.Op.String() + c.Operand()
	}
}

// FormatNum renders a float in the compact form used throughout pool names:
// integers print without a decimal point.
func FormatNum(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Query is a basic (non-composite) query: an unordered set of conditions
// keyed by their dotted key string.
type Query struct {
	Fields map[string]Condition `json:"fields"`
}

// New returns an empty query.
func New() *Query {
	return &Query{Fields: make(map[string]Condition)}
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := New()
	for k, v := range q.Fields {
		if v.Set != nil {
			set := make([]string, len(v.Set))
			copy(set, v.Set)
			v.Set = set
		}
		c.Fields[k] = v
	}
	return c
}

// Set records a condition under the given dotted key, replacing any previous
// condition for that key. It returns the query to allow chaining.
func (q *Query) Set(key string, c Condition) *Query {
	if q.Fields == nil {
		q.Fields = make(map[string]Condition)
	}
	q.Fields[key] = c
	return q
}

// Get returns the condition for a dotted key and whether it was present.
func (q *Query) Get(key string) (Condition, bool) {
	c, ok := q.Fields[key]
	return c, ok
}

// Lookup applies the class default semantics of Section 5.1: missing rsrc
// keys read as "don't care" (OpAny); missing appl and user keys read as the
// undefined condition, reported via ok=false.
func (q *Query) Lookup(k Key) (Condition, bool) {
	if c, ok := q.Fields[k.String()]; ok {
		return c, true
	}
	if k.Class == ClassRsrc {
		return Any(), true
	}
	return Condition{}, false
}

// Keys returns the dotted keys of the query sorted lexicographically.
func (q *Query) Keys() []string {
	out := make([]string, 0, len(q.Fields))
	for k := range q.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ClassKeys returns the parsed keys belonging to the given class, sorted by
// name. Keys that fail to parse are skipped.
func (q *Query) ClassKeys(class Class) []Key {
	var out []Key
	for ks := range q.Fields {
		k, err := ParseKey(ks)
		if err != nil {
			continue
		}
		if k.Class == class {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Family returns the family of the query's keys, or "" for an empty query.
// Mixed families are legal at parse time; the first (sorted) family wins.
func (q *Query) Family() string {
	keys := q.Keys()
	if len(keys) == 0 {
		return ""
	}
	k, err := ParseKey(keys[0])
	if err != nil {
		return ""
	}
	return k.Family
}

// String renders the query in its native line-per-condition form, with keys
// sorted for determinism.
func (q *Query) String() string {
	var b strings.Builder
	for i, k := range q.Keys() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(k)
		b.WriteString(" = ")
		b.WriteString(q.Fields[k].String())
	}
	return b.String()
}

// Composite is a query that may contain per-key alternatives ("or" clauses).
// It decomposes into the cartesian product of its alternatives.
type Composite struct {
	// Alternatives maps each dotted key to one or more conditions. A key
	// with a single condition behaves exactly like a basic query field.
	Alternatives map[string][]Condition `json:"alternatives"`
}

// NewComposite returns an empty composite query.
func NewComposite() *Composite {
	return &Composite{Alternatives: make(map[string][]Condition)}
}

// Add appends an alternative condition for the key.
func (c *Composite) Add(key string, cond Condition) *Composite {
	if c.Alternatives == nil {
		c.Alternatives = make(map[string][]Condition)
	}
	c.Alternatives[key] = append(c.Alternatives[key], cond)
	return c
}

// IsBasic reports whether the composite has no "or" clauses.
func (c *Composite) IsBasic() bool {
	for _, alts := range c.Alternatives {
		if len(alts) > 1 {
			return false
		}
	}
	return true
}

// Decompose expands the composite into basic queries — the cartesian product
// of the per-key alternatives, in deterministic (sorted-key) order. A basic
// composite decomposes into exactly one query.
func (c *Composite) Decompose() []*Query {
	keys := make([]string, 0, len(c.Alternatives))
	for k := range c.Alternatives {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := []*Query{New()}
	for _, k := range keys {
		alts := c.Alternatives[k]
		if len(alts) == 0 {
			continue
		}
		next := make([]*Query, 0, len(out)*len(alts))
		for _, q := range out {
			for _, alt := range alts {
				nq := q.Clone()
				nq.Set(k, alt)
				next = append(next, nq)
			}
		}
		out = next
	}
	return out
}

// Count returns how many basic queries Decompose would produce.
func (c *Composite) Count() int {
	n := 1
	for _, alts := range c.Alternatives {
		if len(alts) > 1 {
			n *= len(alts)
		}
	}
	return n
}
