package query

import (
	"testing"
)

// FuzzParse checks the query parser never panics and that everything it
// accepts survives the String -> Parse round trip (fragments of accepted
// queries must themselves be accepted).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"punch.rsrc.arch = sun",
		"punch.rsrc.arch = sun | hp\npunch.rsrc.memory = >=10",
		"punch.rsrc.cpus = 2..8",
		"punch.rsrc.cms = sge,pbs",
		"punch.rsrc.ostype = *",
		"# comment\n\npunch.user.login = kapadia",
		"punch.rsrc.memory = >=",
		"a.b.c = | |",
		"punch.rsrc.arch == ==sun",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := Parse(text)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, q := range c.Decompose() {
			rendered := q.String()
			back, err := ParseBasic(rendered)
			if err != nil {
				t.Fatalf("accepted query fragment failed round trip:\ninput: %q\nrendered: %q\nerr: %v", text, rendered, err)
			}
			if back.String() != rendered {
				t.Fatalf("round trip not idempotent:\nfirst:  %q\nsecond: %q", rendered, back.String())
			}
		}
	})
}

// FuzzParsePoolName checks pool-name parsing and criteria reconstruction
// never panic.
func FuzzParsePoolName(f *testing.F) {
	f.Add("arch:domain:license:memory,==:==:==:>=/sun:purdue:tsuprem4:10")
	f.Add("any,*/*")
	f.Add("a,==/b")
	f.Add("///,")
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParsePoolName(s)
		if err != nil {
			return
		}
		// Criteria may reject malformed names, but must not panic; a
		// successfully reconstructed criteria must map back to a name
		// with the same signature.
		crit, err := n.Criteria("punch")
		if err != nil {
			return
		}
		if got := Name(crit); got.Signature != n.Signature && n.Signature != "any,*" {
			t.Fatalf("criteria round trip changed signature: %q -> %q", n.Signature, got.Signature)
		}
	})
}
