package query

import (
	"testing"
	"testing/quick"
)

func TestAttrConstructors(t *testing.T) {
	if a := StrAttr("sun"); a.IsNum || a.Str != "sun" {
		t.Errorf("StrAttr(sun) = %+v", a)
	}
	if a := StrAttr("128"); !a.IsNum || a.Num != 128 {
		t.Errorf("StrAttr(128) should promote, got %+v", a)
	}
	if a := StrAttr("sge,pbs,condor"); len(a.List) != 3 {
		t.Errorf("StrAttr(list) = %+v", a)
	}
	if a := NumAttr(2.5); !a.IsNum || a.Str != "2.5" {
		t.Errorf("NumAttr = %+v", a)
	}
	if a := ListAttr("a", "b"); len(a.List) != 2 || a.Str != "a,b" {
		t.Errorf("ListAttr = %+v", a)
	}
}

func TestAttrMatches(t *testing.T) {
	cases := []struct {
		attr Attr
		cond Condition
		want bool
	}{
		{StrAttr("sun"), Eq("sun"), true},
		{StrAttr("sun"), Eq("hp"), false},
		{StrAttr("sun"), Ne("hp"), true},
		{StrAttr("sun"), Ne("sun"), false},
		{NumAttr(128), Ge(64), true},
		{NumAttr(128), Ge(128), true},
		{NumAttr(128), Ge(256), false},
		{NumAttr(128), Le(128), true},
		{NumAttr(128), Gt(128), false},
		{NumAttr(128), Lt(129), true},
		{NumAttr(5), Between(1, 10), true},
		{NumAttr(11), Between(1, 10), false},
		{NumAttr(1), Between(1, 10), true},
		{NumAttr(10), Between(1, 10), true},
		{StrAttr("sun"), In("hp", "sun"), true},
		{StrAttr("sun"), In("hp", "alpha"), false},
		{ListAttr("sge", "pbs"), Eq("pbs"), true},
		{ListAttr("sge", "pbs"), Eq("condor"), false},
		{ListAttr("sge", "pbs"), In("condor", "sge"), true},
		{StrAttr("sun"), Any(), true},
		{NumAttr(1), Any(), true},
		{StrAttr("sun"), Ge(10), false},   // ordering against non-numeric attr
		{NumAttr(10), Eq("10"), true},     // numeric equality via promoted string
		{StrAttr("010"), EqNum(10), true}, // promoted attr matches numerically
	}
	for i, tc := range cases {
		if got := tc.attr.Matches(tc.cond); got != tc.want {
			t.Errorf("case %d: %+v Matches %+v = %v, want %v", i, tc.attr, tc.cond, got, tc.want)
		}
	}
}

func TestAttrSetMatchRsrc(t *testing.T) {
	m := AttrSet{
		"arch":    StrAttr("sun"),
		"memory":  NumAttr(512),
		"domain":  StrAttr("purdue"),
		"license": StrAttr("tsuprem4"),
	}
	q, err := ParseBasic(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !m.MatchRsrc(q) {
		t.Error("machine should satisfy the paper query")
	}

	// Memory below the requirement fails.
	m2 := m.Clone()
	m2["memory"] = NumAttr(5)
	if m2.MatchRsrc(q) {
		t.Error("memory=5 should fail >=10")
	}

	// Missing attribute with a real condition fails...
	m3 := m.Clone()
	delete(m3, "license")
	if m3.MatchRsrc(q) {
		t.Error("missing license should fail")
	}
	// ...but appl/user keys never constrain the machine.
	q2 := New().Set("punch.user.login", Eq("kapadia"))
	if !m3.MatchRsrc(q2) {
		t.Error("user keys must not constrain machines")
	}
	// Don't-care rsrc condition passes even when the attr is missing.
	q3 := New().Set("punch.rsrc.gpu", Any())
	if !m.MatchRsrc(q3) {
		t.Error("wildcard should match a missing attribute")
	}
}

func TestAttrSetCloneIsDeep(t *testing.T) {
	s := AttrSet{"cms": ListAttr("sge", "pbs")}
	c := s.Clone()
	c["cms"].List[0] = "mutated"
	if s["cms"].List[0] != "sge" {
		t.Error("Clone shares list storage")
	}
}

// Property: Ne is always the complement of Eq for the same operand.
func TestNeComplementsEqProperty(t *testing.T) {
	vals := []string{"sun", "hp", "alpha", "128", "x86"}
	f := func(ai, ci uint8) bool {
		attr := StrAttr(vals[int(ai)%len(vals)])
		operand := vals[int(ci)%len(vals)]
		return attr.Matches(Eq(operand)) != attr.Matches(Ne(operand))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a numeric attribute inside [lo,hi] always matches Between(lo,hi)
// and the conjunction Ge(lo) && Le(hi) agrees with it.
func TestRangeAgreesWithConjunctionProperty(t *testing.T) {
	f := func(v, lo, span uint16) bool {
		l, s := float64(lo), float64(span%1000)
		h := l + s
		x := float64(v)
		attr := NumAttr(x)
		inRange := attr.Matches(Between(l, h))
		conj := attr.Matches(Ge(l)) && attr.Matches(Le(h))
		return inRange == conj
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
