package query

import (
	"strconv"
	"strings"
)

// Attr is an attribute value exposed by a machine: a string, a number, or a
// list of strings (for example the cms=sge,pbs,condor list of supported
// cluster-management systems).
type Attr struct {
	Str   string   `json:"str,omitempty"`
	Num   float64  `json:"num,omitempty"`
	IsNum bool     `json:"isNum,omitempty"`
	List  []string `json:"list,omitempty"`
}

// StrAttr builds a string attribute, promoting numeric strings so that both
// numeric and string comparisons work against them.
func StrAttr(s string) Attr {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Attr{Str: s, Num: f, IsNum: true}
	}
	if strings.Contains(s, ",") {
		parts := strings.Split(s, ",")
		list := make([]string, 0, len(parts))
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		return Attr{Str: s, List: list}
	}
	return Attr{Str: s}
}

// NumAttr builds a numeric attribute.
func NumAttr(f float64) Attr { return Attr{Num: f, IsNum: true, Str: FormatNum(f)} }

// ListAttr builds a list attribute.
func ListAttr(vals ...string) Attr {
	cp := make([]string, len(vals))
	copy(cp, vals)
	return Attr{List: cp, Str: strings.Join(cp, ",")}
}

// String renders the attribute as administrators would write it.
func (a Attr) String() string { return a.Str }

// Matches reports whether the attribute satisfies the condition. List
// attributes satisfy equality and membership conditions if any member does.
func (a Attr) Matches(c Condition) bool {
	switch c.Op {
	case OpAny:
		return true
	case OpEq:
		if len(a.List) > 0 && !c.IsNum {
			for _, m := range a.List {
				if m == c.Str {
					return true
				}
			}
			return false
		}
		if c.IsNum && a.IsNum {
			return a.Num == c.Num
		}
		return a.Str == c.Str
	case OpNe:
		cc := c
		cc.Op = OpEq
		return !a.Matches(cc)
	case OpGe:
		return a.IsNum && a.Num >= c.Num
	case OpLe:
		return a.IsNum && a.Num <= c.Num
	case OpGt:
		return a.IsNum && a.Num > c.Num
	case OpLt:
		return a.IsNum && a.Num < c.Num
	case OpRange:
		return a.IsNum && a.Num >= c.Lo && a.Num <= c.Hi
	case OpIn:
		for _, want := range c.Set {
			if len(a.List) > 0 {
				for _, m := range a.List {
					if m == want {
						return true
					}
				}
			} else if a.Str == want {
				return true
			}
		}
		return false
	}
	return false
}

// AttrSet is a named collection of attributes, as held by a machine record.
type AttrSet map[string]Attr

// Clone returns a copy of the set; list values are copied too.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for k, v := range s {
		if v.List != nil {
			l := make([]string, len(v.List))
			copy(l, v.List)
			v.List = l
		}
		out[k] = v
	}
	return out
}

// MatchRsrc reports whether the attribute set satisfies every rsrc condition
// of the query. A condition whose attribute is absent from the set fails,
// except the "don't care" wildcard, which always passes.
func (s AttrSet) MatchRsrc(q *Query) bool {
	for _, k := range q.ClassKeys(ClassRsrc) {
		cond := q.Fields[k.String()]
		if cond.Op == OpAny {
			continue
		}
		attr, ok := s[k.Name]
		if !ok {
			return false
		}
		if !attr.Matches(cond) {
			return false
		}
	}
	return true
}
