package query

import (
	"math/rand"
	"testing"
)

// randCond draws a random condition over a small value universe so that
// matches are reasonably likely.
func randCond(rng *rand.Rand) Condition {
	vals := []string{"sun", "hp", "alpha", "x86", "5", "7.5"}
	switch rng.Intn(8) {
	case 0:
		return Eq(vals[rng.Intn(len(vals))])
	case 1:
		return Ne(vals[rng.Intn(len(vals))])
	case 2:
		return Ge(float64(rng.Intn(10)))
	case 3:
		return Lt(float64(rng.Intn(10)))
	case 4:
		return Between(float64(rng.Intn(5)), float64(5+rng.Intn(5)))
	case 5:
		return In(vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
	case 6:
		return Any()
	default:
		return EqNum(float64(rng.Intn(10)))
	}
}

func randAttrSet(rng *rand.Rand) AttrSet {
	names := []string{"arch", "speed", "domain", "cms", "load"}
	s := make(AttrSet)
	for _, n := range names {
		if rng.Intn(3) == 0 {
			continue // leave some attributes absent
		}
		switch rng.Intn(3) {
		case 0:
			s[n] = StrAttr([]string{"sun", "hp", "5", "7.5", ""}[rng.Intn(5)])
		case 1:
			s[n] = NumAttr(float64(rng.Intn(10)))
		default:
			s[n] = ListAttr("sun", "x86")
		}
	}
	return s
}

// TestCompileRsrcEquivalence checks the contract documented on CompileRsrc:
// the compiled form matches exactly the same attribute sets as MatchRsrc.
func TestCompileRsrcEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"arch", "speed", "domain", "cms", "load", "missing"}
	for trial := 0; trial < 2000; trial++ {
		q := New()
		for i, n := 0, rng.Intn(4); i < n; i++ {
			q.Set("punch.rsrc."+names[rng.Intn(len(names))], randCond(rng))
		}
		// Non-rsrc and malformed keys must be ignored by both paths.
		if rng.Intn(2) == 0 {
			q.Set("punch.appl.expectedcpuuse", EqNum(100))
			q.Set("notakey", Eq("x"))
		}
		conds := CompileRsrc(q)
		for i := 0; i < 5; i++ {
			s := randAttrSet(rng)
			if got, want := s.MatchConds(conds), s.MatchRsrc(q); got != want {
				t.Fatalf("trial %d: MatchConds=%v MatchRsrc=%v\nquery:\n%s\nattrs: %v",
					trial, got, want, q, s)
			}
		}
	}
}

func TestCompileRsrcDropsWildcards(t *testing.T) {
	q := New().
		Set("punch.rsrc.arch", Eq("sun")).
		Set("punch.rsrc.domain", Any()).
		Set("punch.user.login", Eq("kapadia"))
	conds := CompileRsrc(q)
	if len(conds) != 1 || conds[0].Name != "arch" {
		t.Fatalf("CompileRsrc = %+v, want just the arch condition", conds)
	}
}
