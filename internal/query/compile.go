package query

// RsrcCond is one compiled resource constraint: the bare attribute name
// (the last component of the dotted key) and its condition.
type RsrcCond struct {
	Name string
	Cond Condition
}

// CompileRsrc extracts the rsrc-class conditions of q once, so that hot
// paths can match many machines without re-parsing and re-sorting the
// query's keys per record. Wildcard ("don't care") conditions are dropped,
// and keys that fail to parse are skipped, mirroring MatchRsrc exactly:
// for every attribute set s, s.MatchConds(CompileRsrc(q)) == s.MatchRsrc(q).
func CompileRsrc(q *Query) []RsrcCond {
	keys := q.ClassKeys(ClassRsrc)
	out := make([]RsrcCond, 0, len(keys))
	for _, k := range keys {
		cond := q.Fields[k.String()]
		if cond.Op == OpAny {
			continue
		}
		out = append(out, RsrcCond{Name: k.Name, Cond: cond})
	}
	return out
}

// MatchConds reports whether the attribute set satisfies every compiled
// condition. A condition whose attribute is absent from the set fails.
func (s AttrSet) MatchConds(conds []RsrcCond) bool {
	for _, rc := range conds {
		attr, ok := s[rc.Name]
		if !ok {
			return false
		}
		if !attr.Matches(rc.Cond) {
			return false
		}
	}
	return true
}
