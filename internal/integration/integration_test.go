// Package integration exercises the complete PUNCH stack end to end: the
// network desktop driving the application-management component, the ActYP
// pipeline over real TCP, the virtual file system, shadow accounts, and
// the delegation/proxy paths — the whole Figure 1 event sequence across
// process boundaries.
package integration

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/appmgr"
	"actyp/internal/core"
	"actyp/internal/desktop"
	"actyp/internal/monitor"
	"actyp/internal/netsim"
	"actyp/internal/perfmodel"
	"actyp/internal/registry"
	"actyp/internal/vfs"
	"actyp/internal/workload"
)

func punchApp(t testing.TB) *appmgr.Manager {
	t.Helper()
	perf := perfmodel.NewService(0.2)
	for _, m := range perfmodel.PunchModels() {
		if err := perf.Register(m); err != nil {
			t.Fatal(err)
		}
	}
	app := appmgr.New(perf)
	if err := appmgr.PunchKnowledgeBase(app); err != nil {
		t.Fatal(err)
	}
	return app
}

// TestFullStackOverTCP drives the complete Section 2 walk-through with the
// desktop talking to ActYP through a real TCP connection.
func TestFullStackOverTCP(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(64).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := core.Serve(svc, "127.0.0.1:0", netsim.LAN())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := core.Dial(srv.Addr(), netsim.LAN())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	mounts := vfs.NewManager()
	desk, err := desktop.New(desktop.Config{App: punchApp(t), ActYP: client, VFS: mounts})
	if err != nil {
		t.Fatal(err)
	}
	if err := desk.AddUser(desktop.User{
		Login: "kapadia", Group: "ece",
		Storage: vfs.Volume{Server: "warehouse", Export: "/home/kapadia"},
	}); err != nil {
		t.Fatal(err)
	}

	res, err := desk.RunTool("kapadia", "tsuprem4", []string{"-g", "120"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine == "" || res.ShadowUser == "" {
		t.Errorf("result = %+v", res)
	}
	// The remote query manager reports queue time including network RTT.
	if res.Queue <= 0 {
		t.Error("queue time not measured")
	}
	if mounts.Active() != 0 {
		t.Errorf("%d mounts leaked", mounts.Active())
	}
	if !svc.Drain(time.Second) {
		t.Error("leases leaked on the server")
	}
}

// TestBurstThroughFullStack runs a small class burst through the desktop
// against a monitored grid and verifies pool locality end to end.
func TestBurstThroughFullStack(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(64).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A live monitor sweeps while the burst runs.
	mon := monitor.New(monitor.Config{
		DB: db, Sampler: monitor.NewSyntheticSampler(1), Interval: time.Millisecond,
	})
	mon.Start()
	defer mon.Stop()

	desk, err := desktop.New(desktop.Config{App: punchApp(t), ActYP: svc, VFS: vfs.NewManager()})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(3, []string{"spice"})
	if err != nil {
		t.Fatal(err)
	}
	burst := gen.Burst(workload.BurstSpec{
		Tool: "spice", Students: 12, Runs: 2, Think: time.Millisecond, Group: "ece",
	})
	for s := 0; s < 12; s++ {
		if err := desk.AddUser(desktop.User{Login: fmt.Sprintf("student%03d", s), Group: "ece"}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(burst))
	for _, job := range burst {
		wg.Add(1)
		go func(j workload.Job) {
			defer wg.Done()
			// WaitAll composites briefly hold one machine per fragment,
			// so a fully concurrent burst can transiently exhaust the
			// pools; clients retry, as the production desktop would.
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				if _, err = desk.RunTool(j.User, j.Tool, []string{"-n", "30"}); err == nil {
					return
				}
				time.Sleep(time.Duration(attempt+1) * time.Millisecond)
			}
			errs <- err
		}(job)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	runs, denied := desk.Stats()
	if runs != len(burst) || denied != 0 {
		t.Errorf("runs=%d denied=%d, want %d/0", runs, denied, len(burst))
	}
	// Temporal locality: the whole burst was served by the spice pools
	// (one per architecture alternative in the knowledge base).
	sizes := svc.PoolSizes()
	if len(sizes) != 2 {
		t.Errorf("pools = %v, want the 2 spice arch pools", sizes)
	}
	for _, pm := range svc.PoolManagers() {
		resolved, created, _, _ := pm.Stats()
		if created > 2 {
			t.Errorf("%d pools created for one burst", created)
		}
		if resolved < len(burst) {
			t.Errorf("resolved = %d", resolved)
		}
	}
	if !svc.Drain(time.Second) {
		t.Error("leases leaked")
	}
}

// TestMixedWorkloadSteadyState replays a merged background + burst stream
// in submit order and verifies the grid returns to idle.
func TestMixedWorkloadSteadyState(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(48).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	gen, err := workload.NewGenerator(11, []string{"spice", "matlab", "tsuprem4"})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Merge(
		gen.Background(30, time.Microsecond),
		gen.Burst(workload.BurstSpec{Tool: "matlab", Students: 6, Runs: 2, Think: time.Microsecond, Group: "ece"}),
	)

	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for _, job := range stream {
		wg.Add(1)
		go func(j workload.Job) {
			defer wg.Done()
			// Tool support travels in the appl class: the catch-all pool
			// holds every machine and the tool-group policy filters at
			// allocation time. (Encoding the tool as an rsrc constraint
			// would create overlapping exclusive pools that partition the
			// fleet — the paper's taken-marking makes such criteria
			// contend, which TestOverlappingCriteriaContend pins down.)
			q := fmt.Sprintf("punch.appl.tool = %s\npunch.appl.expectedcpuuse = %d",
				j.Tool, int(j.CPUSeconds)+1)
			g, err := svc.Request(q)
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			if err := svc.Release(g); err != nil {
				t.Errorf("release: %v", err)
			}
		}(job)
	}
	wg.Wait()
	// Some transient exhaustion is possible at full concurrency, but the
	// bulk of a 42-job stream over 48 machines must succeed.
	if failures > len(stream)/4 {
		t.Errorf("%d/%d requests failed", failures, len(stream))
	}
	if !svc.Drain(time.Second) {
		t.Error("grid did not return to idle")
	}
}

// TestOverlappingCriteriaContend pins a consequence of the paper's design:
// pool initialization marks machines "taken" in the white pages, so pools
// whose criteria overlap (here, per-license pools over machines holding
// several licenses) partition the fleet first-come-first-served. Later
// pools see only what earlier pools left behind.
func TestOverlappingCriteriaContend(t *testing.T) {
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(16).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	svc, err := core.New(core.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Every machine holds 3 of the 4 licenses, so the license pools
	// overlap heavily. Create them in order and watch the partition.
	if err := svc.Precreate("punch.rsrc.license = tsuprem4"); err != nil {
		t.Fatal(err)
	}
	sizes := svc.PoolSizes()
	var first int
	for _, n := range sizes {
		first = n
	}
	if first != 12 { // 3/4 of 16 machines hold each license
		t.Errorf("first pool took %d machines, want 12", first)
	}
	// The second overlapping pool gets only the leftovers.
	if err := svc.Precreate("punch.rsrc.license = spice"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range svc.PoolSizes() {
		total += n
	}
	if total > 16 {
		t.Errorf("pools hold %d machines out of 16: taken-marking violated", total)
	}
	if total == first {
		t.Error("second pool got nothing; expected some leftovers in this fleet")
	}
}
