package integration

import (
	"testing"
	"time"

	"actyp/internal/core"
	"actyp/internal/netsim"
	"actyp/internal/registry"
	"actyp/internal/route"
	"actyp/internal/stage"
	"actyp/internal/wire"
)

// partitionedNode is one live daemon of a two-node partitioned mesh.
type partitionedNode struct {
	svc *core.Service
	rt  *route.Table
	srv *stage.Server
}

// startPartitionedPair boots two live services that split a
// DefaultFleetSpec fleet by domain: node "na" owns upc, node "nb" owns
// purdue, each node's white pages holding only its own records. The nodes
// are cross-dialed over real stage endpoints and share identical static
// ownership tables — the setup the daemon builds from -own-domains and
// -peer-addrs.
func startPartitionedPair(t *testing.T, fleet int) (na, nb *partitionedNode) {
	t.Helper()
	machines, err := registry.DefaultFleetSpec(fleet).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	dbA, dbB := registry.NewDB(), registry.NewDB()
	for _, m := range machines {
		dst := dbB
		if route.MachineDomain(m) == "upc" {
			dst = dbA
		}
		if err := dst.Add(m); err != nil {
			t.Fatal(err)
		}
	}

	static := map[string]string{"upc": "na-0", "purdue": "nb-0"}
	nodes := []string{"na-0", "nb-0"}
	rtA, rtB := route.New("na-0"), route.New("nb-0")
	rtA.Reload(static, nodes)
	rtB.Reload(static, nodes)

	svcA, err := core.New(core.Options{DB: dbA, NodeName: "na", Routes: rtA})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svcA.Close)
	svcB, err := core.New(core.Options{DB: dbB, NodeName: "nb", Routes: rtB})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svcB.Close)

	srvA, err := stage.Serve(svcA.PoolManagers()[0], "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvA.Close)
	srvB, err := stage.Serve(svcB.PoolManagers()[0], "127.0.0.1:0", netsim.Local())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvB.Close)

	remB, err := stage.DialRemote(srvB.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remB.Close() })
	svcA.Directory().AddPeer(remB)
	remA, err := stage.DialRemote(srvA.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remA.Close() })
	svcB.Directory().AddPeer(remA)

	return &partitionedNode{svc: svcA, rt: rtA, srv: srvA}, &partitionedNode{svc: svcB, rt: rtB, srv: srvB}
}

func domainNames(db *registry.DB, domain string) map[string]bool {
	names := map[string]bool{}
	db.Walk(func(m *registry.Machine) bool {
		if route.MachineDomain(m) == domain {
			names[m.Static.Name] = true
		}
		return true
	})
	return names
}

// TestOwnershipHandoffPreservesState migrates a domain between two live
// peers — drain, snapshot page, re-own — and verifies the differential
// invariants: no registration is lost, leases held across the migration
// stay resolvable (including a release arriving at the OLD owner, which
// must forward), and new queries for the domain resolve at the new owner.
func TestOwnershipHandoffPreservesState(t *testing.T) {
	na, nb := startPartitionedPair(t, 32)
	upcNames := domainNames(na.svc.DB(), "upc")
	if len(upcNames) == 0 {
		t.Fatal("no upc machines on the initial owner")
	}
	totalBefore := na.svc.DB().Len() + nb.svc.DB().Len()

	// Two leases straddle the migration: one held through the remote node
	// (a directed-hop delegated lease) and one held at the owner itself.
	remoteGrant, err := nb.svc.Request("punch.rsrc.domain = upc")
	if err != nil {
		t.Fatalf("pre-migration remote request: %v", err)
	}
	if !upcNames[remoteGrant.Lease.Machine] {
		t.Fatalf("remote grant machine %s is not in domain upc", remoteGrant.Lease.Machine)
	}
	localGrant, err := na.svc.Request("punch.rsrc.domain = upc")
	if err != nil {
		t.Fatalf("pre-migration local request: %v", err)
	}

	// Step 1: drain. A deliberately tiny page size forces the export to
	// take several snapshot pages.
	exp, err := na.svc.ExportDomain("upc", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Machines) != len(upcNames) {
		t.Fatalf("exported %d machines, want %d", len(exp.Machines), len(upcNames))
	}
	if len(exp.Leases) != 2 {
		t.Fatalf("exported %d live leases, want 2", len(exp.Leases))
	}

	// Step 2: re-own at the destination.
	rep, err := nb.svc.AdoptDomain(exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 2 || rep.Dropped != 0 {
		t.Fatalf("adopt report %+v, want both leases restored", rep)
	}

	// Step 3: reload the ownership tables on both live nodes.
	moved := map[string]string{"upc": "nb-0", "purdue": "nb-0"}
	nodes := []string{"na-0", "nb-0"}
	na.rt.Reload(moved, nodes)
	nb.rt.Reload(moved, nodes)

	// Step 4: the source sheds the domain.
	if dropped := na.svc.DropDomain(exp); dropped != len(upcNames) {
		t.Fatalf("dropped %d records at the source, want %d", dropped, len(upcNames))
	}

	// No registration lost: every upc record lives at the new owner and
	// none linger at the source.
	if got := len(domainNames(nb.svc.DB(), "upc")); got != len(upcNames) {
		t.Errorf("new owner holds %d upc records, want %d", got, len(upcNames))
	}
	if got := len(domainNames(na.svc.DB(), "upc")); got != 0 {
		t.Errorf("source still holds %d upc records, want 0", got)
	}
	if total := na.svc.DB().Len() + nb.svc.DB().Len(); total != totalBefore {
		t.Errorf("record count changed across migration: %d -> %d", totalBefore, total)
	}

	// The delegated lease releases at the node that held it: the ownership
	// reload re-targets its (peer, domain) route to the new owner, which
	// is now local.
	if err := nb.svc.Release(remoteGrant); err != nil {
		t.Errorf("release of migrated delegated lease: %v", err)
	}
	// The source-held lease releases THROUGH the source: the drop installed
	// a forward entry, so the release routes to the new owner over the wire
	// instead of failing against the closed local pool.
	if err := na.svc.Release(localGrant); err != nil {
		t.Errorf("release through the old owner after handoff: %v", err)
	}

	// New queries for the migrated domain resolve at the new owner from
	// either node: directly there, via a directed hop from the source.
	for name, svc := range map[string]*core.Service{"source": na.svc, "destination": nb.svc} {
		g, err := svc.Request("punch.rsrc.domain = upc")
		if err != nil {
			t.Fatalf("post-migration request via %s: %v", name, err)
		}
		if !upcNames[g.Lease.Machine] {
			t.Errorf("post-migration grant via %s landed on %s, not an upc machine", name, g.Lease.Machine)
		}
		if err := svc.Release(g); err != nil {
			t.Errorf("post-migration release via %s: %v", name, err)
		}
	}

	if !na.svc.Drain(time.Second) || !nb.svc.Drain(time.Second) {
		t.Error("leases leaked across the handoff")
	}
}

// TestMixedFleetInterop pins the compatibility floor: a partitioned node
// federating with a pre-partition peer — no ownership table, no domain
// filter, JSON-only wire — still resolves everything. Unroutable queries
// take the fan-out fallback; a domain statically pinned on the legacy
// peer takes the directed hop over the JSON floor.
func TestMixedFleetInterop(t *testing.T) {
	legacyDB := registry.NewDB()
	if err := registry.DefaultFleetSpec(16).Populate(legacyDB, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	legacy, err := core.New(core.Options{DB: legacyDB, NodeName: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(legacy.Close)
	codecs, err := wire.ParseCodecs("json")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := stage.ServeOpts(legacy.PoolManagers()[0], "127.0.0.1:0", netsim.Local(),
		stage.ServerOptions{Codecs: codecs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// The partitioned node has an empty white pages: every query misses
	// locally and must cross the mixed-version wire to resolve.
	rt := route.New("nn-0")
	rt.Reload(map[string]string{"purdue": "legacy-0"}, []string{"nn-0", "legacy-0"})
	svc, err := core.New(core.Options{DB: registry.NewDB(), NodeName: "nn", Routes: rt})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	rem, err := stage.DialRemote(srv.Addr(), netsim.Local(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rem.Close() })
	if rem.Name() != "legacy-0" {
		t.Fatalf("legacy peer handshake name %q", rem.Name())
	}
	svc.Directory().AddPeer(rem)

	// Unroutable query (no domain predicate): the pre-partition fan-out
	// fallback crosses to the legacy peer.
	g, err := svc.Request("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatalf("unroutable query against mixed fleet: %v", err)
	}
	if err := svc.Release(g); err != nil {
		t.Errorf("release of fan-out lease: %v", err)
	}

	// Domain query pinned on the legacy peer: the directed hop speaks the
	// same stage protocol, so it works against a JSON-floor peer too.
	g, err = svc.Request("punch.rsrc.domain = purdue")
	if err != nil {
		t.Fatalf("directed query against legacy peer: %v", err)
	}
	if route.MachineDomain(mustGet(t, legacyDB, g.Lease.Machine)) != "purdue" {
		t.Errorf("directed grant landed outside the pinned domain")
	}
	if err := svc.Release(g); err != nil {
		t.Errorf("release of directed lease: %v", err)
	}

	if !legacy.Drain(time.Second) || !svc.Drain(time.Second) {
		t.Error("leases leaked across the mixed fleet")
	}
}

func mustGet(t *testing.T, db *registry.DB, name string) *registry.Machine {
	t.Helper()
	m, err := db.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
