package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"actyp/internal/registry"
)

// SnapshotSource pages machine records out of the live registry: it
// returns up to limit records starting at offset (in the registry's
// sorted name order) plus the total match count. core.Service's
// SelectMachines("" ...) is the canonical implementation — paging keeps
// snapshotting from ever stop-the-worlding the registry, at the cost of
// pages that are not a single point-in-time cut (replay converges anyway:
// every mutation between pages is also in the tail segment, and event
// application is idempotent).
type SnapshotSource func(limit, offset int) ([]*registry.Machine, int, error)

// SliceSource adapts an in-memory record slice to a SnapshotSource (for
// offline compaction and the fleet mirror, whose "registry" is already a
// local copy).
func SliceSource(ms []*registry.Machine) SnapshotSource {
	return func(limit, offset int) ([]*registry.Machine, int, error) {
		if offset > len(ms) {
			offset = len(ms)
		}
		page := ms[offset:]
		if limit > 0 && len(page) > limit {
			page = page[:limit]
		}
		return page, len(ms), nil
	}
}

// DefaultSnapshotPage is the machines-per-page default for snapshots.
const DefaultSnapshotPage = 2048

// writeSnapshotAt writes a complete snapshot file (atomically: tmp file,
// fsync, rename) with the given sequence number. Machine pages stream
// through the source; leases are written sorted by id so identical states
// produce identical files.
func writeSnapshotAt(dir string, seq uint64, source SnapshotSource, page int, leases []LeaseRecord) (machines int, err error) {
	if source == nil {
		return 0, fmt.Errorf("journal: snapshot needs a source")
	}
	if page <= 0 {
		page = DefaultSnapshotPage
	}
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	buf := appendHeader(nil, snapMagic, seq)
	var pagePayload []byte
	for offset := 0; ; {
		ms, total, serr := source(page, offset)
		if serr != nil {
			return 0, serr
		}
		if len(ms) > 0 {
			pagePayload = registry.AppendBatch(pagePayload[:0], ms)
			buf = appendRecord(buf, recSnapMachines, pagePayload)
			if _, err = f.Write(buf); err != nil {
				return 0, err
			}
			buf = buf[:0]
		}
		offset += len(ms)
		machines = offset
		if len(ms) == 0 || offset >= total {
			break
		}
	}

	sorted := append([]LeaseRecord(nil), leases...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lease.ID < sorted[j].Lease.ID })
	var opPayload []byte
	for _, lr := range sorted {
		op := leaseOp{op: opGrant, rec: lr}
		if lr.Peer != "" {
			op.op = opDelegated
		}
		opPayload = appendLeaseOp(opPayload[:0], op)
		buf = appendRecord(buf, recSnapLease, opPayload)
	}

	// The footer is the completeness marker: a snapshot that dies before
	// it (crash mid-write, out of disk) fails replay's footer check and
	// the next-older snapshot is used instead.
	var footer []byte
	footer = appendUvarint(footer, uint64(machines))
	footer = appendUvarint(footer, uint64(len(sorted)))
	buf = appendRecord(buf, recSnapFooter, footer)
	if _, err = f.Write(buf); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, err
	}
	if err = f.Close(); err != nil {
		return 0, err
	}
	return machines, os.Rename(tmp, final)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readSnapshot loads and validates snapshot seq from dir: every frame
// CRC-checked, machine pages decoded and deduplicated (paging a live
// registry can observe a machine twice; the later page wins), and the
// footer present with matching counts. Any failure rejects the whole
// snapshot — replay falls back to an older one.
func readSnapshot(dir string, seq uint64) ([]*registry.Machine, []LeaseRecord, error) {
	b, err := os.ReadFile(filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return nil, nil, err
	}
	if err := checkHeader(b, snapMagic, seq); err != nil {
		return nil, nil, err
	}
	var (
		order    []string
		byName   = map[string]*registry.Machine{}
		leases   []LeaseRecord
		footerOK bool
		wantM    uint64
		wantL    uint64
		decErr   error
	)
	n, off, err := scanRecords(b[headerLen:], func(kind byte, payload []byte) {
		if decErr != nil || footerOK {
			if decErr == nil {
				decErr = fmt.Errorf("journal: snapshot %d: records after the footer", seq)
			}
			return
		}
		switch kind {
		case recSnapMachines:
			ms, err := registry.DecodeBatch(payload)
			if err != nil {
				decErr = fmt.Errorf("journal: snapshot %d: %w", seq, err)
				return
			}
			for _, m := range ms {
				name := m.Static.Name
				if _, dup := byName[name]; !dup {
					order = append(order, name)
				}
				byName[name] = m
			}
		case recSnapLease:
			op, err := decodeLeaseOp(payload)
			if err != nil {
				decErr = err
				return
			}
			if op.op != opGrant && op.op != opDelegated {
				decErr = fmt.Errorf("journal: snapshot %d: unexpected lease op 0x%02x", seq, op.op)
				return
			}
			leases = append(leases, op.rec)
		case recSnapFooter:
			d := &opDec{b: payload}
			wantM = d.uvarint()
			wantL = d.uvarint()
			if d.err != nil {
				decErr = d.err
				return
			}
			footerOK = true
		default:
			decErr = fmt.Errorf("journal: snapshot %d: unknown record kind 0x%02x", seq, kind)
		}
	})
	_ = n
	if err != nil {
		return nil, nil, fmt.Errorf("journal: snapshot %d at offset %d: %w", seq, off, err)
	}
	if decErr != nil {
		return nil, nil, decErr
	}
	if !footerOK {
		return nil, nil, fmt.Errorf("journal: snapshot %d: no footer (incomplete write)", seq)
	}
	// The machine count may legitimately exceed the distinct count when
	// paging raced a mutation; require only that nothing is missing.
	if uint64(len(byName)) > wantM || uint64(len(leases)) != wantL {
		return nil, nil, fmt.Errorf("journal: snapshot %d: footer counts %d/%d do not cover %d/%d decoded",
			seq, wantM, wantL, len(byName), len(leases))
	}
	ms := make([]*registry.Machine, 0, len(order))
	for _, name := range order {
		ms = append(ms, byName[name])
	}
	return ms, leases, nil
}

// WriteSnapshotFile writes a standalone snapshot-format file (sequence 0)
// at path — the serialization behind `actyp-fleet mirror`, so a mirror
// file doubles as a recovery seed. The file is written atomically.
func WriteSnapshotFile(path string, source SnapshotSource, leases []LeaseRecord) (int, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	if _, ok := parseSeq(base, "snapshot-", ".snap"); ok {
		return 0, fmt.Errorf("journal: %q collides with the journal's own snapshot naming; pick another name", base)
	}
	n, err := writeSnapshotAt(dir, 0, source, 0, leases)
	if err != nil {
		return 0, err
	}
	return n, os.Rename(filepath.Join(dir, snapshotName(0)), path)
}

// ReadSnapshotFile loads a standalone snapshot-format file written by
// WriteSnapshotFile (or a snapshot copied out of a journal directory —
// any header sequence is accepted).
func ReadSnapshotFile(path string) ([]*registry.Machine, []LeaseRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < headerLen || string(b[:8]) != snapMagic {
		return nil, nil, fmt.Errorf("journal: %s is not a snapshot file", path)
	}
	// Stage through a temp directory name-shape readSnapshot understands.
	tmpDir, err := os.MkdirTemp(filepath.Dir(path), ".snapread-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(tmpDir)
	seq := uint64(0)
	copy(b[8:16], make([]byte, 8)) // normalize the sequence to 0
	if err := os.WriteFile(filepath.Join(tmpDir, snapshotName(seq)), b, 0o644); err != nil {
		return nil, nil, err
	}
	return readSnapshot(tmpDir, seq)
}

// IsSnapshotFile sniffs whether path begins with the snapshot magic —
// the format dispatch for loaders that also accept JSON fleets.
func IsSnapshotFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	return string(hdr[:]) == snapMagic
}
