package journal

import (
	"fmt"
	"os"
	"path/filepath"
)

// SegmentInfo describes one segment file for inspection.
type SegmentInfo struct {
	Seq     uint64
	Path    string
	Bytes   int64
	Records int
	Events  int    // recEvents records
	Leases  int    // recLease records
	Resyncs int    // recResync markers
	Err     string // framing/CRC problem at the tail ("" when clean)
}

// SnapshotInfo describes one snapshot file for inspection.
type SnapshotInfo struct {
	Seq      uint64
	Path     string
	Bytes    int64
	Machines int
	Leases   int
	Err      string // "" when the snapshot loads completely
}

// DirInfo is the inventory of a journal directory.
type DirInfo struct {
	Dir       string
	Segments  []SegmentInfo
	Snapshots []SnapshotInfo
}

// Inspect reads the headers and record frames of every file in a journal
// directory without applying anything — the read-only half of
// `actypctl journal`. Safe to run against a live daemon's directory (it
// may observe a mid-write tail, reported as that segment's Err).
func Inspect(dir string) (*DirInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	info := &DirInfo{Dir: dir}
	for _, seq := range segs {
		si := SegmentInfo{Seq: seq, Path: filepath.Join(dir, segmentName(seq))}
		b, err := os.ReadFile(si.Path)
		if err != nil {
			si.Err = err.Error()
			info.Segments = append(info.Segments, si)
			continue
		}
		si.Bytes = int64(len(b))
		if err := checkHeader(b, segMagic, seq); err != nil {
			si.Err = err.Error()
			info.Segments = append(info.Segments, si)
			continue
		}
		n, _, serr := scanRecords(b[headerLen:], func(kind byte, payload []byte) {
			switch kind {
			case recEvents:
				si.Events++
			case recLease:
				si.Leases++
			case recResync:
				si.Resyncs++
			}
		})
		si.Records = n
		if serr != nil {
			si.Err = serr.Error()
		}
		info.Segments = append(info.Segments, si)
	}
	for _, seq := range snaps {
		si := SnapshotInfo{Seq: seq, Path: filepath.Join(dir, snapshotName(seq))}
		if st, err := os.Stat(si.Path); err == nil {
			si.Bytes = st.Size()
		}
		ms, leases, err := readSnapshot(dir, seq)
		if err != nil {
			si.Err = err.Error()
		} else {
			si.Machines = len(ms)
			si.Leases = len(leases)
		}
		info.Snapshots = append(info.Snapshots, si)
	}
	return info, nil
}

// Verify inspects the directory and reduces the result to a list of
// issues — empty means every CRC checks out, every snapshot is complete,
// and at most the final segment has a torn tail (the one shape a crash
// legitimately leaves behind).
func Verify(dir string) ([]string, error) {
	info, err := Inspect(dir)
	if err != nil {
		return nil, err
	}
	var issues []string
	for i, si := range info.Segments {
		if si.Err == "" {
			continue
		}
		if i == len(info.Segments)-1 {
			issues = append(issues, fmt.Sprintf("segment %d: torn tail (tolerated by replay): %s", si.Seq, si.Err))
		} else {
			issues = append(issues, fmt.Sprintf("segment %d: damaged mid-log: %s", si.Seq, si.Err))
		}
	}
	newest := -1
	for i, si := range info.Snapshots {
		if si.Err == "" {
			newest = i
			continue
		}
		issues = append(issues, fmt.Sprintf("snapshot %d: %s", si.Seq, si.Err))
	}
	if len(info.Snapshots) > 0 && newest == -1 {
		issues = append(issues, "no loadable snapshot: replay would fall back to segments alone")
	}
	return issues, nil
}

// CompactOffline replays the directory and rewrites it as one fresh
// snapshot covering everything, deleting the replayed segments and the
// older snapshots — `actypctl journal compact`. It must NOT run against
// a directory a live daemon has open: the daemon's active segment would
// be deleted out from under it. It returns how many files were removed.
func CompactOffline(dir string) (removed int, err error) {
	st, next, err := replay(dir, nil, nil)
	if err != nil {
		return 0, err
	}
	if st.Empty() {
		return 0, nil
	}
	// The fresh snapshot takes the sequence a new boot's segment would
	// have gotten; replay then starts from it and finds no uncovered
	// segments.
	if _, err := writeSnapshotAt(dir, next, SliceSource(st.Machines), 0, st.Leases); err != nil {
		return 0, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	for _, seq := range segs {
		if seq < next {
			if os.Remove(filepath.Join(dir, segmentName(seq))) == nil {
				removed++
			}
		}
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return removed, err
	}
	for _, seq := range snaps {
		if seq < next {
			if os.Remove(filepath.Join(dir, snapshotName(seq))) == nil {
				removed++
			}
		}
	}
	return removed, nil
}
