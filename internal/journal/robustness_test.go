package journal

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

// sealedGrantSegment builds a journal directory holding exactly one
// segment of numbered grant records and returns its bytes plus the
// granted lease ids in append order.
func sealedGrantSegment(t *testing.T, grants int) (dir string, seg []byte, ids []string) {
	t.Helper()
	dir = t.TempDir()
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < grants; i++ {
		id := "torn#0:" + strconv.Itoa(i) + ":key"
		j.LeaseGranted(testLease(id, "m0001"), time.Unix(int64(i), 0))
		ids = append(ids, id)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err = os.ReadFile(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return dir, seg, ids
}

// expectPrefix asserts the replayed leases are exactly the first k
// granted ids for some k — the only shape a torn or damaged tail may
// legally produce.
func expectPrefix(t *testing.T, st *State, ids []string, context string) {
	t.Helper()
	if len(st.Leases) > len(ids) {
		t.Fatalf("%s: %d leases replayed from %d grants", context, len(st.Leases), len(ids))
	}
	got := map[string]bool{}
	for _, lr := range st.Leases {
		got[lr.Lease.ID] = true
	}
	for i, id := range ids {
		if i < len(st.Leases) && !got[id] {
			t.Fatalf("%s: replayed %d leases but grant %d (%s) is missing — not a prefix", context, len(st.Leases), i, id)
		}
		if i >= len(st.Leases) && got[id] {
			t.Fatalf("%s: lease %s replayed past the prefix boundary", context, id)
		}
	}
}

// TestTornTailEveryByte truncates the final segment at every byte offset
// and requires replay to accept the surviving record prefix without
// erroring — the crash contract: a torn tail never takes the log down.
func TestTornTailEveryByte(t *testing.T) {
	_, seg, ids := sealedGrantSegment(t, 8)
	for cut := 0; cut < len(seg); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, next, err := replay(dir, nil, nil)
		if err != nil {
			t.Fatalf("cut %d: replay error: %v", cut, err)
		}
		expectPrefix(t, st, ids, "cut "+strconv.Itoa(cut))
		if cut < len(seg) && st.Torn != 1 {
			// Any truncation strictly inside the file leaves either a short
			// header or a mid-record tail; both must be counted torn.
			// Exception: a cut exactly on a record boundary is clean.
			wantRecords := 0
			if cut >= headerLen {
				wantRecords, _, _ = scanRecords(seg[headerLen:cut], nil)
			}
			if wantRecords != len(st.Leases) {
				t.Fatalf("cut %d: %d leases replayed, scan says %d records survive", cut, len(st.Leases), wantRecords)
			}
		}
		if next < 2 {
			t.Fatalf("cut %d: next segment sequence %d would collide", cut, next)
		}
	}
}

// TestCRCFlipNeverPanics corrupts every byte of the final segment in turn
// and requires replay to survive: the damaged record (and everything
// after it in that segment) is dropped, everything before it replays.
func TestCRCFlipNeverPanics(t *testing.T) {
	_, seg, ids := sealedGrantSegment(t, 8)
	for pos := 0; pos < len(seg); pos++ {
		dir := t.TempDir()
		mut := append([]byte(nil), seg...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _, err := replay(dir, nil, nil)
		if err != nil {
			t.Fatalf("flip %d: replay error: %v", pos, err)
		}
		expectPrefix(t, st, ids, "flip "+strconv.Itoa(pos))
		if pos < headerLen && (len(st.Leases) != 0 || st.Torn+st.Corrupt == 0) {
			t.Fatalf("flip %d: damaged header replayed %d leases (torn=%d corrupt=%d)", pos, len(st.Leases), st.Torn, st.Corrupt)
		}
	}
}

// TestMidLogCorruptionSkipsSegment damages a non-final segment and
// requires replay to skip its tail but keep going: later segments still
// apply, and the damage is counted, not fatal.
func TestMidLogCorruptionSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 1}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		id := "mid#0:" + strconv.Itoa(i) + ":key"
		j.LeaseGranted(testLease(id, "m0001"), time.Unix(int64(i), 0))
		ids = append(ids, id)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("wanted multiple segments, got %v", segs)
	}

	// Flip one payload byte in the FIRST segment's record.
	first := filepath.Join(dir, segmentName(segs[0]))
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b[headerLen+4] ^= 0xff
	if err := os.WriteFile(first, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt == 0 {
		t.Error("mid-log damage not counted as corrupt")
	}
	got := map[string]bool{}
	for _, lr := range st.Leases {
		got[lr.Lease.ID] = true
	}
	if got[ids[0]] {
		t.Error("damaged record replayed anyway")
	}
	for _, id := range ids[1:] {
		if !got[id] {
			t.Errorf("lease %s from a later segment lost to earlier damage", id)
		}
	}
}

// TestDuplicateReplayIdempotent replays a log whose newest segment was
// duplicated wholesale (sequence rewritten) and requires the result to
// match the unduplicated replay: event application and lease ops are
// idempotent, so at-least-once delivery is safe.
func TestDuplicateReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 16)
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	for i, name := range names {
		if err := db.UpdateDynamic(name, registry.Dynamic{Load: float64(i), LastUpdate: time.Unix(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.SetState(names[0], registry.StateBlocked); err != nil {
		t.Fatal(err)
	}
	j.LeaseGranted(testLease("dup#0:1:k", names[1]), time.Unix(50, 0))
	j.LeaseGranted(testLease("dup#0:2:k", names[2]), time.Unix(50, 0))
	j.LeaseReleased("dup#0:1:k")
	j.LeaseRenewed("dup#0:2:k", time.Unix(99, 0))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Crash()

	base, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	segs, _ := listSegments(dir)
	last := segs[len(segs)-1]
	b, err := os.ReadFile(filepath.Join(dir, segmentName(last)))
	if err != nil {
		t.Fatal(err)
	}
	dupSeq := last + 1
	dup := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(dup[8:16], dupSeq)
	if err := os.WriteFile(filepath.Join(dir, segmentName(dupSeq)), dup, 0o644); err != nil {
		t.Fatal(err)
	}

	st, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameMachines(t, st.Machines, base.Machines)
	if len(st.Leases) != len(base.Leases) {
		t.Fatalf("leases after duplication = %d, want %d", len(st.Leases), len(base.Leases))
	}
	for i := range st.Leases {
		if st.Leases[i].Lease.ID != base.Leases[i].Lease.ID || !st.Leases[i].Expires.Equal(base.Leases[i].Expires) {
			t.Errorf("lease %d = %+v, want %+v", i, st.Leases[i], base.Leases[i])
		}
	}
}

// TestRandomizedDifferentialVsOracle drives a journaled registry through
// a random mutation schedule (rotations and mid-run snapshots included),
// crashes it, and requires the replay to equal the never-restarted live
// registry — the oracle that saw every mutation first-hand.
func TestRandomizedDifferentialVsOracle(t *testing.T) {
	const ops = 400
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	db := testFleet(t, 24)
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond, SegmentBytes: 8 << 10, SnapshotPage: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}

	added := 0
	for i := 0; i < ops; i++ {
		names := db.Names()
		name := names[rng.Intn(len(names))]
		switch rng.Intn(10) {
		case 0:
			db.SetState(name, registry.State(rng.Intn(3)))
		case 1, 2, 3:
			db.UpdateDynamic(name, registry.Dynamic{
				Load:       rng.Float64() * 8,
				ActiveJobs: rng.Intn(5),
				FreeMemory: float64(rng.Intn(4096)),
				LastUpdate: time.Unix(int64(i), 0),
			})
		case 4:
			db.SetParam(name, "owner", query.StrAttr("grp"+strconv.Itoa(rng.Intn(4))))
		case 5:
			if len(names) > 8 {
				db.Remove(name)
			}
		case 6:
			m := dbMachines(db)[0].Clone()
			m.Static.Name = "zz-add-" + strconv.Itoa(added)
			m.TakenBy = ""
			added++
			db.Add(m)
		case 7:
			db.Take(q, "diff/pool#0", 1+rng.Intn(2))
		case 8:
			db.ReleaseAll("diff/pool#0")
		case 9:
			if rng.Intn(4) == 0 {
				if err := j.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Crash()

	st, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resyncs != 0 {
		t.Fatalf("watch ring overflowed %d times; buffer sizing is broken for this load", st.Resyncs)
	}
	sameMachines(t, st.Machines, dbMachines(db))
}
