// Package journal is the durability subsystem: a write-ahead event log
// fed off the registry.Backend watch stream plus a lease-op side channel,
// with CRC-framed records, segment rotation, configurable fsync policy,
// paged snapshots, replay-on-boot, and compaction. See DESIGN.md,
// "Durability", for the record format and the recovery state machine.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"actyp/internal/pool"
)

// Record kinds. Segment files carry the first group; snapshot files carry
// the second. The framing is shared: kind byte, uvarint payload length,
// payload, little-endian IEEE CRC32 over everything before it.
const (
	recEvents byte = 0x01 // payload: registry.AppendEventBatch
	recLease  byte = 0x02 // payload: lease op (below)
	recResync byte = 0x03 // watch ring overflowed: events were lost here

	recSnapMachines byte = 0x11 // payload: registry.AppendBatch page
	recSnapLease    byte = 0x12 // payload: lease op (opGrant/opDelegated)
	recSnapFooter   byte = 0x1f // payload: machine count, lease count — completeness marker
)

// Lease ops inside recLease / recSnapLease payloads.
const (
	opGrant         byte = 0x01 // full lease + expiry
	opRelease       byte = 0x02 // lease id (explicit release or reap)
	opRenew         byte = 0x03 // lease id + new expiry
	opDelegated     byte = 0x04 // full lease + expiry + granting peer name
	opDelegatedDone byte = 0x05 // lease id left the delegated table
)

const maxRecordPayload = 64 << 20 // frame sanity bound; no real record approaches it

// appendRecord frames one record onto dst.
func appendRecord(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// scanRecords walks the framed records in b, calling fn for each record
// whose frame and CRC check out. It returns the number of valid records,
// the byte offset where scanning stopped, and the framing error that
// stopped it — nil when b was consumed exactly. A framing error does not
// mean fn was never called: every record before the bad offset was.
func scanRecords(b []byte, fn func(kind byte, payload []byte)) (n, off int, err error) {
	for off < len(b) {
		start := off
		kind := b[off]
		off++
		plen, vn := binary.Uvarint(b[off:])
		if vn <= 0 {
			return n, start, fmt.Errorf("journal: record %d at offset %d: bad length varint", n, start)
		}
		off += vn
		if plen > maxRecordPayload || uint64(len(b)-off) < plen+4 {
			return n, start, fmt.Errorf("journal: record %d at offset %d: truncated (payload %d bytes)", n, start, plen)
		}
		payload := b[off : off+int(plen)]
		off += int(plen)
		want := binary.LittleEndian.Uint32(b[off : off+4])
		if got := crc32.ChecksumIEEE(b[start:off]); got != want {
			return n, start, fmt.Errorf("journal: record %d at offset %d: crc mismatch", n, start)
		}
		off += 4
		if fn != nil {
			fn(kind, payload)
		}
		n++
	}
	return n, off, nil
}

// LeaseRecord is one live lease as the journal tracks it: the full lease,
// its deadline (zero: no expiry), and — for leases won through a
// federation peer — the peer that granted it, through which the eventual
// release must route.
type LeaseRecord struct {
	Lease   pool.Lease
	Expires time.Time
	Peer    string // "" for locally-granted leases
	Domain  string // domain the delegated query pinned; "" when unroutable
}

// leaseOp is one decoded lease-op payload.
type leaseOp struct {
	op  byte
	id  string      // opRelease/opRenew/opDelegatedDone
	rec LeaseRecord // opGrant/opDelegated
}

// appendLeaseOp encodes a lease op. Grant-shaped ops carry the whole
// record; id-shaped ops carry only the lease id (plus the new expiry for
// renewals).
func appendLeaseOp(dst []byte, op leaseOp) []byte {
	dst = append(dst, op.op)
	switch op.op {
	case opGrant, opDelegated:
		l := &op.rec.Lease
		dst = appendString(dst, l.ID)
		dst = appendString(dst, l.Machine)
		dst = appendString(dst, l.Addr)
		dst = binary.AppendVarint(dst, int64(l.ExecUnitPort))
		dst = binary.AppendVarint(dst, int64(l.MountMgrPort))
		dst = appendString(dst, l.AccessKey)
		dst = appendString(dst, l.Pool)
		dst = appendTime(dst, l.Granted)
		dst = appendTime(dst, op.rec.Expires)
		if op.op == opDelegated {
			dst = appendString(dst, op.rec.Peer)
			dst = appendString(dst, op.rec.Domain)
		}
	case opRenew:
		dst = appendString(dst, op.id)
		dst = appendTime(dst, op.rec.Expires)
	default: // opRelease, opDelegatedDone
		dst = appendString(dst, op.id)
	}
	return dst
}

// decodeLeaseOp decodes one lease-op payload.
func decodeLeaseOp(b []byte) (leaseOp, error) {
	d := &opDec{b: b}
	var op leaseOp
	op.op = d.byte()
	switch op.op {
	case opGrant, opDelegated:
		l := &op.rec.Lease
		l.ID = d.string()
		l.Machine = d.string()
		l.Addr = d.string()
		l.ExecUnitPort = int(d.varint())
		l.MountMgrPort = int(d.varint())
		l.AccessKey = d.string()
		l.Pool = d.string()
		l.Granted = d.time()
		op.rec.Expires = d.time()
		if op.op == opDelegated {
			op.rec.Peer = d.string()
			// Pre-partition journals end the op at the peer name; the
			// domain string is only present when written by this version.
			if d.err == nil && d.off < len(d.b) {
				op.rec.Domain = d.string()
			}
		}
		op.id = l.ID
	case opRenew:
		op.id = d.string()
		op.rec.Expires = d.time()
	case opRelease, opDelegatedDone:
		op.id = d.string()
	default:
		return op, fmt.Errorf("journal: unknown lease op 0x%02x", op.op)
	}
	if d.err != nil {
		return op, d.err
	}
	if len(d.b) != d.off {
		return op, fmt.Errorf("journal: lease op 0x%02x: %d trailing bytes", op.op, len(d.b)-d.off)
	}
	return op, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTime encodes a wall-clock instant: a presence byte (zero times
// are common — no-expiry deadlines) then unix nanoseconds.
func appendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.AppendVarint(dst, t.UnixNano())
}

// opDec is a latched-error cursor over a lease-op payload, in the style
// of registry's batch decoder: after the first failure every read returns
// a zero value and the error sticks.
type opDec struct {
	b   []byte
	off int
	err error
}

func (d *opDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("journal: lease op: "+format, args...)
	}
}

func (d *opDec) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("short read")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *opDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *opDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *opDec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("string of %d bytes overruns payload", n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *opDec) time() time.Time {
	if d.byte() == 0 || d.err != nil {
		return time.Time{}
	}
	ns := d.varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
