package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// On-disk layout: a journal directory holds numbered segment files and
// numbered snapshot files. Snapshot S captures the full state as of its
// write and covers every segment with a LOWER sequence number; replay is
// "newest complete snapshot S, then segments >= S in order". A fresh boot
// always opens a brand-new segment (max existing + 1), never appends to
// an old one — a torn tail stays torn exactly once and is skipped forever
// after, instead of being buried under fresh records.

const (
	segMagic  = "ACTYPJL1" // journal segment, format 1
	snapMagic = "ACTYPSN1" // snapshot, format 1
	headerLen = 16         // 8-byte magic + 8-byte little-endian sequence
)

func segmentName(seq uint64) string  { return fmt.Sprintf("journal-%08d.seg", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%08d.snap", seq) }

// parseSeq extracts the sequence from a segment or snapshot file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

func appendHeader(dst []byte, magic string, seq uint64) []byte {
	dst = append(dst, magic...)
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// checkHeader validates a file's 16-byte header against the magic and the
// sequence its name carries.
func checkHeader(b []byte, magic string, seq uint64) error {
	if len(b) < headerLen {
		return fmt.Errorf("journal: file shorter than its header")
	}
	if string(b[:8]) != magic {
		return fmt.Errorf("journal: bad magic %q (want %q)", b[:8], magic)
	}
	if got := binary.LittleEndian.Uint64(b[8:16]); got != seq {
		return fmt.Errorf("journal: header sequence %d does not match file name (%d)", got, seq)
	}
	return nil
}

// listSeqs returns the sorted sequence numbers of the files in dir that
// match the given name shape.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func listSegments(dir string) ([]uint64, error)  { return listSeqs(dir, "journal-", ".seg") }
func listSnapshots(dir string) ([]uint64, error) { return listSeqs(dir, "snapshot-", ".snap") }

// segmentWriter is one open segment file behind a buffered writer.
type segmentWriter struct {
	f    *os.File
	w    *bufio.Writer
	size int64 // bytes written, header included
	// scratch is the record-framing buffer, reused across appends so the
	// hot path (one lease op per grant) does not allocate.
	scratch []byte
}

// openSegment creates segment seq in dir and writes its header. The
// header reaches the OS immediately (Flush) so even an fsync=off journal
// leaves a well-formed empty segment behind.
func openSegment(dir string, seq uint64) (*segmentWriter, error) {
	path := filepath.Join(dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	s := &segmentWriter{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	hdr := appendHeader(nil, segMagic, seq)
	if _, err := s.w.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	s.size = int64(len(hdr))
	if err := s.w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// writeRecord frames and buffers one record, returning the framed size.
func (s *segmentWriter) writeRecord(kind byte, payload []byte) (int, error) {
	s.scratch = appendRecord(s.scratch[:0], kind, payload)
	n, err := s.w.Write(s.scratch)
	s.size += int64(n)
	return n, err
}

func (s *segmentWriter) flush() error { return s.w.Flush() }

// sync flushes the buffer and fsyncs the file, returning the fsync wall
// time for the latency stats.
func (s *segmentWriter) sync() (time.Duration, error) {
	if err := s.w.Flush(); err != nil {
		return 0, err
	}
	start := time.Now()
	err := s.f.Sync()
	return time.Since(start), err
}

// close flushes and closes. crash closes WITHOUT flushing: whatever sat
// in the user-space buffer is lost, exactly as a SIGKILL would lose it.
func (s *segmentWriter) close() error {
	ferr := s.w.Flush()
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

func (s *segmentWriter) crash() { s.f.Close() }
