package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/registry"
)

// State is what replay reconstructs from a journal directory: the machine
// records as of the crash (taken marks included) and the leases that were
// live, ready to be loaded into a fresh registry and re-adopted into
// pools. Replay itself is purely file-level — the recovery policy (probe
// the holders, rebuild the pools, re-route delegations) lives in
// core.Recover, which consumes a State.
type State struct {
	// Machines holds the replayed registry records in name order.
	Machines []*registry.Machine
	// Leases holds the leases live at the crash, sorted by id.
	Leases []LeaseRecord
	// SnapshotSeq is the snapshot the replay started from (0: none).
	SnapshotSeq uint64
	// Segments and Records count what was read past the snapshot.
	Segments int
	Records  int
	// Resyncs counts watch-ring overflow markers encountered: each one is
	// a window where events were lost and only the following snapshot
	// restored fidelity.
	Resyncs int
	// Torn is 1 when the final segment ended mid-record (the expected
	// shape of a crash); Corrupt counts damaged non-final segments whose
	// tails were skipped.
	Torn    int
	Corrupt int
}

// Empty reports whether the replay found nothing — a fresh directory.
func (s *State) Empty() bool {
	return s == nil || (len(s.Machines) == 0 && len(s.Leases) == 0 && s.Records == 0 && s.SnapshotSeq == 0)
}

// RestoreDB loads the replayed machine records into db, which must be
// empty. Taken marks ride along inside the records, so pool membership
// survives into the new registry.
func (s *State) RestoreDB(db *registry.DB) error {
	if s == nil {
		return nil
	}
	for _, m := range s.Machines {
		if err := db.Add(m); err != nil {
			return fmt.Errorf("journal: restore %s: %w", m.Static.Name, err)
		}
	}
	return nil
}

// Filter prunes the replayed state to the machines keep accepts — the
// domain-scoped replay a partitioned daemon runs on boot, so a journal
// written before an ownership change (or copied from a peer) loads only
// the domains this node now owns. Locally-granted leases on dropped
// machines go with them (their pools cannot be rebuilt here); delegated
// leases stay — they live on their granting peer, not in local records.
// It returns how many machines were dropped.
func (s *State) Filter(keep func(*registry.Machine) bool) int {
	if s == nil || keep == nil {
		return 0
	}
	kept := s.Machines[:0]
	gone := map[string]bool{}
	for _, m := range s.Machines {
		if keep(m) {
			kept = append(kept, m)
		} else {
			gone[m.Static.Name] = true
		}
	}
	dropped := len(s.Machines) - len(kept)
	s.Machines = kept
	if dropped > 0 {
		leases := s.Leases[:0]
		for _, lr := range s.Leases {
			if lr.Peer == "" && gone[lr.Lease.Machine] {
				continue
			}
			leases = append(leases, lr)
		}
		s.Leases = leases
	}
	return dropped
}

// replay rebuilds state from dir: the newest complete snapshot, then every
// segment with sequence >= the snapshot's, in order. It returns the state
// and the sequence the next fresh segment should use.
func replay(dir string, stats *metrics.JournalStats, logf func(string, ...any)) (*State, uint64, error) {
	start := time.Now()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, 0, err
	}

	st := &State{}
	leaseMap := map[string]LeaseRecord{}
	var baseMachines []*registry.Machine
	// Newest loadable snapshot wins; a damaged one is logged and the next
	// older tried — the covered segments are still on disk until a NEWER
	// snapshot lands, so falling back loses nothing.
	for i := len(snaps) - 1; i >= 0; i-- {
		ms, leases, err := readSnapshot(dir, snaps[i])
		if err != nil {
			logf("journal: skipping snapshot %d: %v", snaps[i], err)
			st.Corrupt++
			continue
		}
		baseMachines = ms
		for _, lr := range leases {
			leaseMap[lr.Lease.ID] = lr
		}
		st.SnapshotSeq = snaps[i]
		break
	}

	// Scratch registry on the locked (reference) backend: replay is
	// single-threaded, so sharding buys nothing.
	backend, err := registry.OpenBackend(registry.BackendLocked, 0)
	if err != nil {
		return nil, 0, err
	}
	db := registry.NewDBWith(backend)
	for _, m := range baseMachines {
		if err := db.Add(m); err != nil {
			return nil, 0, fmt.Errorf("journal: snapshot %d machine %s: %w", st.SnapshotSeq, m.Static.Name, err)
		}
	}

	var maxSeg uint64
	for i, seq := range segs {
		if seq > maxSeg {
			maxSeg = seq
		}
		if seq < st.SnapshotSeq {
			continue // covered by the snapshot
		}
		last := i == len(segs)-1
		b, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, 0, err
		}
		if err := checkHeader(b, segMagic, seq); err != nil {
			// Header never made it to disk (fsync=off crash right after
			// rotation) or the file is damaged; nothing in it is usable.
			if last && int64(len(b)) < headerLen {
				st.Torn++
			} else {
				st.Corrupt++
			}
			logf("journal: skipping segment %d: %v", seq, err)
			continue
		}
		st.Segments++
		n, off, serr := scanRecords(b[headerLen:], func(kind byte, payload []byte) {
			applyRecord(db, leaseMap, st, kind, payload, logf)
		})
		st.Records += n
		if serr != nil {
			if last {
				// The expected crash shape: the final record was mid-write.
				// Everything before it already applied.
				st.Torn++
				logf("journal: segment %d torn at offset %d after %d records (crash tail)", seq, headerLen+off, n)
			} else {
				st.Corrupt++
				logf("journal: segment %d damaged at offset %d after %d records: %v", seq, headerLen+off, n, serr)
			}
		}
	}

	st.Machines = st.Machines[:0]
	db.Walk(func(m *registry.Machine) bool {
		st.Machines = append(st.Machines, m)
		return true
	})
	st.Leases = make([]LeaseRecord, 0, len(leaseMap))
	for _, lr := range leaseMap {
		st.Leases = append(st.Leases, lr)
	}
	sort.Slice(st.Leases, func(i, j int) bool { return st.Leases[i].Lease.ID < st.Leases[j].Lease.ID })

	stats.Replayed(time.Since(start), st.Records, st.Segments, st.Torn, st.Corrupt)
	next := maxSeg + 1
	if st.SnapshotSeq > next {
		next = st.SnapshotSeq
	}
	if next < 1 {
		next = 1
	}
	return st, next, nil
}

// applyRecord folds one segment record into the replay state.
func applyRecord(db *registry.DB, leases map[string]LeaseRecord, st *State, kind byte, payload []byte, logf func(string, ...any)) {
	switch kind {
	case recEvents:
		evs, err := registry.DecodeEventBatch(payload)
		if err != nil {
			logf("journal: bad event batch during replay: %v", err)
			st.Corrupt++
			return
		}
		registry.ApplyWireEvents(db, evs)
	case recLease:
		op, err := decodeLeaseOp(payload)
		if err != nil {
			logf("journal: bad lease op during replay: %v", err)
			st.Corrupt++
			return
		}
		switch op.op {
		case opGrant, opDelegated:
			leases[op.id] = op.rec
		case opRelease, opDelegatedDone:
			delete(leases, op.id)
		case opRenew:
			if lr, ok := leases[op.id]; ok {
				lr.Expires = op.rec.Expires
				leases[op.id] = lr
			}
		}
	case recResync:
		st.Resyncs++
	default:
		logf("journal: unknown record kind 0x%02x during replay (newer writer?)", kind)
	}
}
