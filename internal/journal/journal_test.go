package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
)

func testFleet(t testing.TB, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

// dbSource pages a test registry the way core.Service.SelectMachines
// does: name order, offset window, total count.
func dbSource(db *registry.DB) SnapshotSource {
	return func(limit, offset int) ([]*registry.Machine, int, error) {
		all := dbMachines(db)
		total := len(all)
		if offset > total {
			offset = total
		}
		page := all[offset:]
		if limit > 0 && len(page) > limit {
			page = page[:limit]
		}
		return page, total, nil
	}
}

func dbMachines(db *registry.DB) []*registry.Machine {
	var ms []*registry.Machine
	db.Walk(func(m *registry.Machine) bool {
		ms = append(ms, m)
		return true
	})
	return ms
}

// machineJSON flattens machine records to a comparable form. JSON
// marshalling strips monotonic clock readings, which replay (unix-nano
// round trip) never preserves.
func machineJSON(t testing.TB, ms []*registry.Machine) map[string]string {
	t.Helper()
	out := make(map[string]string, len(ms))
	for _, m := range ms {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out[m.Static.Name] = string(b)
	}
	return out
}

func sameMachines(t *testing.T, got, want []*registry.Machine) {
	t.Helper()
	gm, wm := machineJSON(t, got), machineJSON(t, want)
	if len(gm) != len(wm) {
		t.Fatalf("machine count = %d, want %d", len(gm), len(wm))
	}
	for name, w := range wm {
		if g, ok := gm[name]; !ok {
			t.Errorf("machine %s missing from replay", name)
		} else if g != w {
			t.Errorf("machine %s differs:\n  got  %s\n  want %s", name, g, w)
		}
	}
}

func testLease(id, machine string) *pool.Lease {
	return &pool.Lease{
		ID:           id,
		Machine:      machine,
		Addr:         machine + ".example",
		ExecUnitPort: 7400,
		MountMgrPort: 7401,
		AccessKey:    "key-" + id,
		Pool:         "punch.rsrc.arch==sun/arch=sun#0",
		Granted:      time.Unix(100, 200),
	}
}

func TestScanRecordsRoundTrip(t *testing.T) {
	var b []byte
	b = appendRecord(b, recEvents, []byte("alpha"))
	b = appendRecord(b, recLease, nil)
	b = appendRecord(b, recResync, []byte{1, 2, 3})
	var kinds []byte
	var sizes []int
	n, off, err := scanRecords(b, func(kind byte, payload []byte) {
		kinds = append(kinds, kind)
		sizes = append(sizes, len(payload))
	})
	if err != nil || n != 3 || off != len(b) {
		t.Fatalf("scan = (%d, %d, %v), want (3, %d, nil)", n, off, err, len(b))
	}
	if kinds[0] != recEvents || kinds[1] != recLease || kinds[2] != recResync {
		t.Errorf("kinds = %v", kinds)
	}
	if sizes[0] != 5 || sizes[1] != 0 || sizes[2] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	if n, _, err := scanRecords(nil, nil); n != 0 || err != nil {
		t.Errorf("empty scan = (%d, %v)", n, err)
	}
}

func TestLeaseOpRoundTrip(t *testing.T) {
	exp := time.Unix(500, 600)
	ops := []leaseOp{
		{op: opGrant, rec: LeaseRecord{Lease: *testLease("l1", "m0001"), Expires: exp}},
		{op: opGrant, rec: LeaseRecord{Lease: *testLease("l2", "m0002")}}, // no expiry
		{op: opRelease, id: "l1"},
		{op: opRenew, id: "l2", rec: LeaseRecord{Expires: exp}},
		{op: opDelegated, rec: LeaseRecord{Lease: *testLease("l3", "m0003"), Peer: "site-b"}},
		{op: opDelegatedDone, id: "l3"},
	}
	for _, want := range ops {
		got, err := decodeLeaseOp(appendLeaseOp(nil, want))
		if err != nil {
			t.Fatalf("op 0x%02x: %v", want.op, err)
		}
		if got.op != want.op || got.rec.Peer != want.rec.Peer {
			t.Errorf("op 0x%02x: decoded %+v", want.op, got)
		}
		switch want.op {
		case opGrant, opDelegated:
			if got.id != want.rec.Lease.ID {
				t.Errorf("op 0x%02x: id = %q", want.op, got.id)
			}
			if got.rec.Lease != want.rec.Lease {
				t.Errorf("op 0x%02x: lease = %+v, want %+v", want.op, got.rec.Lease, want.rec.Lease)
			}
		default:
			if got.id != want.id {
				t.Errorf("op 0x%02x: id = %q, want %q", want.op, got.id, want.id)
			}
		}
		if !got.rec.Expires.Equal(want.rec.Expires) {
			t.Errorf("op 0x%02x: expires = %v, want %v", want.op, got.rec.Expires, want.rec.Expires)
		}
	}
	if _, err := decodeLeaseOp([]byte{0x7f}); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := decodeLeaseOp(append(appendLeaseOp(nil, ops[2]), 0xff)); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestOpenFreshDirectory(t *testing.T) {
	dir := t.TempDir()
	j, st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Errorf("fresh state = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 || segs[0] != 1 {
		t.Errorf("segments = %v, want [1]", segs)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestOpenRejectsBadFsync(t *testing.T) {
	if _, _, err := Open(Config{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("bad fsync policy should fail")
	}
	if _, _, err := Open(Config{}); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestEventReplayMatchesLiveRegistry(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 32)
	j, st, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Fatalf("state = %+v", st)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}

	names := db.Names()
	if err := db.SetState(names[0], registry.StateDown); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateDynamic(names[1], registry.Dynamic{Load: 2.5, ActiveJobs: 3, LastUpdate: time.Unix(900, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := db.SetParam(names[2], "owner", query.StrAttr("ece")); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove(names[3]); err != nil {
		t.Fatal(err)
	}
	extra := testFleet(t, 1) // one fresh machine record to add
	var added *registry.Machine
	extra.Walk(func(m *registry.Machine) bool { added = m.Clone(); return false })
	added.Static.Name = "zz-added"
	if err := db.Add(added); err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if taken := db.Take(q, "test/pool#0", 2); len(taken) == 0 {
		t.Fatal("take matched nothing")
	}

	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Crash()

	_, st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st2.SnapshotSeq == 0 {
		t.Error("no snapshot found (Attach should have baselined)")
	}
	sameMachines(t, st2.Machines, dbMachines(db))
}

func TestLeaseHooksMirrorAndReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	exp := time.Unix(1000, 0)
	l1, l2 := testLease("p#0:1:aa", "m0001"), testLease("p#0:2:bb", "m0002")
	j.LeaseGranted(l1, exp)
	j.LeaseGranted(l2, exp)
	j.LeaseRenewed(l2.ID, time.Unix(2000, 0))
	j.LeaseReleased(l1.ID)
	j.DelegationWon(testLease("peer:3:cc", "remote-m"), "site-b", "upc")
	j.DelegationDone("peer:3:cc")
	if got := j.Leases(); len(got) != 1 || got[0].Lease.ID != l2.ID || !got[0].Expires.Equal(time.Unix(2000, 0)) {
		t.Fatalf("mirror = %+v", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 1 {
		t.Fatalf("replayed leases = %+v", st.Leases)
	}
	lr := st.Leases[0]
	if lr.Lease != *l2 || !lr.Expires.Equal(time.Unix(2000, 0)) || lr.Peer != "" {
		t.Errorf("lease = %+v", lr)
	}
}

func TestDelegatedLeaseSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	j.DelegationWon(testLease("peer:9:dd", "remote-m"), "site-c", "upc")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 1 || st.Leases[0].Peer != "site-c" || st.Leases[0].Domain != "upc" {
		t.Fatalf("leases = %+v", st.Leases)
	}
}

// Pre-partition journals end an opDelegated payload at the peer name; the
// domain string this version appends must stay optional on decode or old
// journals stop replaying.
func TestDelegatedOpDecodesWithoutDomain(t *testing.T) {
	rec := LeaseRecord{Lease: *testLease("peer:9:dd", "remote-m"), Peer: "site-c"}
	payload := appendLeaseOp(nil, leaseOp{op: opDelegated, rec: rec})
	// Strip the trailing empty-domain string (a single 0-length uvarint
	// byte) to reproduce the old wire format exactly.
	old := payload[:len(payload)-1]
	op, err := decodeLeaseOp(old)
	if err != nil {
		t.Fatalf("old-format opDelegated: %v", err)
	}
	if op.rec.Peer != "site-c" || op.rec.Domain != "" || op.rec.Lease.ID != "peer:9:dd" {
		t.Fatalf("decoded = %+v", op.rec)
	}
	// And the new format round-trips the domain.
	rec.Domain = "upc"
	op, err = decodeLeaseOp(appendLeaseOp(nil, leaseOp{op: opDelegated, rec: rec}))
	if err != nil || op.rec.Domain != "upc" {
		t.Fatalf("new-format opDelegated: %+v, %v", op.rec, err)
	}
}

func TestSnapshotRotationCompaction(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 16)
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 4 << 10, SnapshotPage: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	for round := 0; round < 50; round++ {
		for _, name := range names {
			if err := db.UpdateDynamic(name, registry.Dynamic{Load: float64(round), LastUpdate: time.Unix(int64(round), 0)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}

	segs, _ := listSegments(dir)
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 1 {
		t.Errorf("snapshots = %v, want exactly the newest", snaps)
	}
	for _, seq := range segs {
		if seq < snaps[0] {
			t.Errorf("segment %d should have been compacted (snapshot %d)", seq, snaps[0])
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sameMachines(t, st.Machines, dbMachines(db))
}

func TestRestoreDBRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 8)
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db2 := registry.NewDB()
	if err := st.RestoreDB(db2); err != nil {
		t.Fatal(err)
	}
	sameMachines(t, dbMachines(db2), dbMachines(db))
}

func TestWriteReadSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 12)
	path := filepath.Join(dir, "fleet.snap")
	lr := LeaseRecord{Lease: *testLease("l1", "m0001"), Expires: time.Unix(777, 0)}
	n, err := WriteSnapshotFile(path, dbSource(db), []LeaseRecord{lr})
	if err != nil {
		t.Fatal(err)
	}
	if n != db.Len() {
		t.Errorf("wrote %d machines, want %d", n, db.Len())
	}
	if !IsSnapshotFile(path) {
		t.Error("IsSnapshotFile = false")
	}
	ms, leases, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameMachines(t, ms, dbMachines(db))
	if len(leases) != 1 || leases[0].Lease.ID != lr.Lease.ID {
		t.Errorf("leases = %+v", leases)
	}

	if _, err := WriteSnapshotFile(filepath.Join(dir, snapshotName(3)), dbSource(db), nil); err == nil {
		t.Error("journal-shaped name should be rejected")
	}
	jsonPath := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(jsonPath, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsSnapshotFile(jsonPath) {
		t.Error("JSON file sniffed as snapshot")
	}
}

func TestInspectVerifyCleanDirectory(t *testing.T) {
	dir := t.TempDir()
	db := testFleet(t, 8)
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Attach(db, dbSource(db), 0); err != nil {
		t.Fatal(err)
	}
	j.LeaseGranted(testLease("l1", "m0001"), time.Unix(10, 0))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Snapshots) == 0 {
		t.Fatal("no snapshots inspected")
	}
	if info.Snapshots[len(info.Snapshots)-1].Machines != 8 {
		t.Errorf("snapshot machines = %d", info.Snapshots[len(info.Snapshots)-1].Machines)
	}
	issues, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("verify issues = %v", issues)
	}
}

func TestCompactOffline(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		j.LeaseGranted(testLease(leaseID(i), "m0001"), time.Unix(int64(i), 0))
	}
	for i := 0; i < 32; i++ {
		j.LeaseReleased(leaseID(i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	stBefore, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := CompactOffline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("nothing compacted despite multiple segments")
	}
	stAfter, _, err := replay(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stAfter.Leases) != len(stBefore.Leases) || len(stAfter.Leases) != 32 {
		t.Errorf("leases after compaction = %d, want %d", len(stAfter.Leases), len(stBefore.Leases))
	}
	for i := range stAfter.Leases {
		if stAfter.Leases[i].Lease.ID != stBefore.Leases[i].Lease.ID {
			t.Errorf("lease %d = %s, want %s", i, stAfter.Leases[i].Lease.ID, stBefore.Leases[i].Lease.ID)
		}
	}
	issues, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Errorf("verify after compaction = %v", issues)
	}

	empty, err := CompactOffline(t.TempDir())
	if err != nil || empty != 0 {
		t.Errorf("empty-dir compaction = (%d, %v)", empty, err)
	}
}

func leaseID(i int) string {
	return "pool#0:" + string(rune('a'+i/26)) + string(rune('a'+i%26)) + ":key"
}
