package journal

import (
	"context"
	"sync"
	"testing"
	"time"

	"actyp/internal/core"
	"actyp/internal/netsim"
	"actyp/internal/pool"
	"actyp/internal/registry"
)

// svcSource adapts core.Service's paging select to a SnapshotSource —
// the same wiring the daemon uses.
func svcSource(svc *core.Service) SnapshotSource {
	return func(limit, offset int) ([]*registry.Machine, int, error) {
		return svc.SelectMachines("", limit, offset)
	}
}

// heartbeat tracks one holder's renewal loop across the crash.
type heartbeat struct {
	mu       sync.Mutex
	errs     []time.Time
	okAfter  int // successful renews after the recovery timestamp
	recovery time.Time
}

func (h *heartbeat) record(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.errs = append(h.errs, time.Now())
		return
	}
	if !h.recovery.IsZero() && time.Now().After(h.recovery) {
		h.okAfter++
	}
}

func (h *heartbeat) markRecovered(at time.Time) {
	h.mu.Lock()
	h.recovery = at
	h.mu.Unlock()
}

func (h *heartbeat) report() (errs int, okAfter int, first time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.errs) > 0 {
		first = h.errs[0]
	}
	return len(h.errs), h.okAfter, first
}

// TestKillAndRestartUnderLoad is the durability acceptance test: a
// daemon with live lease holders heartbeating through it is SIGKILLed
// (simulated via Journal.Crash — the user-space buffer is dropped), a
// fresh process replays the journal, probes the holders, and rebinds the
// same address. Live holders must lose nothing: their renewals resume,
// their releases succeed; holders that died with the daemon must have
// their leases reaped so the machines return to circulation.
func TestKillAndRestartUnderLoad(t *testing.T) {
	const (
		liveN = 4
		deadN = 3
	)
	dir := t.TempDir()
	prof := netsim.Local()

	// --- first life ---
	jnl1, st, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Fatalf("fresh journal replayed %+v", st)
	}
	db1 := testFleet(t, 32)
	svc1, err := core.New(core.Options{DB: db1, LeaseTTL: time.Minute, LeaseLog: jnl1, DelegationLog: jnl1})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := core.ServeOpts(svc1, "127.0.0.1:0", prof, core.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl1.Attach(db1, svcSource(svc1), 0); err != nil {
		t.Fatal(err)
	}
	addr := srv1.Addr()

	type holder struct {
		c  *core.Client
		g  *core.Grant
		hb *heartbeat
	}
	var live, dead []*holder
	for i := 0; i < liveN+deadN; i++ {
		c, err := core.Dial(addr, prof)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		g, err := c.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatalf("holder %d: %v", i, err)
		}
		h := &holder{c: c, g: g}
		if i < liveN {
			h.hb = &heartbeat{}
			live = append(live, h)
		} else {
			dead = append(dead, h)
		}
	}
	deadIDs := map[string]bool{}
	deadMachines := map[string]bool{}
	for _, h := range dead {
		deadIDs[h.g.Lease.ID] = true
		deadMachines[h.g.Lease.Machine] = true
	}

	// Live holders heartbeat continuously, right through the crash.
	stopHB := make(chan struct{})
	var hbWG sync.WaitGroup
	for _, h := range live {
		hbWG.Add(1)
		go func(h *holder) {
			defer hbWG.Done()
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopHB:
					return
				case <-tick.C:
					h.hb.record(h.c.Renew(h.g))
				}
			}
		}(h)
	}

	// Let a few clean heartbeats land, then kill the daemon.
	time.Sleep(200 * time.Millisecond)
	for _, h := range live {
		if n, _, first := h.hb.report(); n != 0 {
			t.Fatalf("heartbeat errored before the crash (first at %v)", first)
		}
	}
	if err := jnl1.Flush(); err != nil {
		t.Fatal(err)
	}
	jnl1.Crash()
	srv1.Close()
	svc1.Close() // the old process's teardown; its releases are NOT journaled

	// --- second life ---
	jnl2, st2, err := Open(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if got := len(st2.Leases); got != liveN+deadN {
		t.Fatalf("replayed %d leases, want %d", got, liveN+deadN)
	}
	db2 := registry.NewDB()
	if err := st2.RestoreDB(db2); err != nil {
		t.Fatal(err)
	}
	svc2, err := core.New(core.Options{DB: db2, LeaseTTL: time.Minute, LeaseLog: jnl2, DelegationLog: jnl2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	recovered := make([]core.RecoveredLease, 0, len(st2.Leases))
	for _, lr := range st2.Leases {
		recovered = append(recovered, core.RecoveredLease{Lease: lr.Lease, Expires: lr.Expires, Peer: lr.Peer})
	}
	rep, err := svc2.Recover(recovered, core.RecoverOptions{
		Probe: func(ctx context.Context, l *pool.Lease) bool {
			return !deadIDs[l.ID]
		},
		ProbeConcurrency: 2,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != liveN {
		t.Errorf("restored %d live leases, want %d", rep.Restored, liveN)
	}
	if rep.Reaped != deadN {
		t.Errorf("reaped %d dead leases, want %d", rep.Reaped, deadN)
	}
	if rep.Dropped != 0 {
		t.Errorf("dropped %d leases; recovery should lose nothing live", rep.Dropped)
	}
	if rep.PoolsAdopted == 0 {
		t.Error("no pools adopted")
	}

	// Rebind the crashed daemon's address (the socket may linger briefly).
	var srv2 *core.Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv2, err = core.ServeOpts(svc2, addr, prof, core.ServeConfig{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer srv2.Close()
	if err := jnl2.Attach(db2, svcSource(svc2), 0); err != nil {
		t.Fatal(err)
	}
	recoveredAt := time.Now()
	for _, h := range live {
		h.hb.markRecovered(recoveredAt)
	}

	// Heartbeats must pass clean again without the holders doing anything.
	settle := time.Now().Add(5 * time.Second)
	for _, h := range live {
		for {
			if _, ok, _ := h.hb.report(); ok >= 2 {
				break
			}
			if time.Now().After(settle) {
				t.Fatalf("heartbeat for %s never recovered", h.g.Lease.ID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	close(stopHB)
	hbWG.Wait()

	// Client errors are limited to the reconnect window: none before the
	// crash (checked above), none after recovery settled.
	for _, h := range live {
		h.hb.mu.Lock()
		for _, at := range h.hb.errs {
			if at.After(recoveredAt.Add(500 * time.Millisecond)) {
				t.Errorf("holder %s: renew error at %v, %v after recovery",
					h.g.Lease.ID, at, at.Sub(recoveredAt))
			}
		}
		h.hb.mu.Unlock()
	}

	// A final explicit renew and release per live holder: the lease ids,
	// access keys and pool routes from before the crash must all still
	// resolve; the missing shadow account is tolerated exactly once.
	for _, h := range live {
		if err := h.c.Renew(h.g); err != nil {
			t.Errorf("post-recovery renew %s: %v", h.g.Lease.ID, err)
		}
		if err := h.c.Release(h.g); err != nil {
			t.Errorf("post-recovery release %s: %v", h.g.Lease.ID, err)
		}
	}

	// The dead holders' machines went back into circulation at recovery.
	for name := range deadMachines {
		m, err := db2.Get(name)
		if err != nil {
			t.Fatalf("dead holder machine %s: %v", name, err)
		}
		if m.TakenBy != "" {
			t.Errorf("machine %s still held by %s after its holder was reaped", name, m.TakenBy)
		}
	}

	// And capacity beyond the adopted pool's members is allocatable: the
	// adopted instance holds only the liveN surviving-lease machines, so
	// a (liveN+1)th concurrent grant can only come from machines recovery
	// returned to circulation.
	var regrants []*core.Grant
	for i := 0; i < liveN+1; i++ {
		g, err := svc2.Request("punch.rsrc.arch = sun")
		if err != nil {
			t.Fatalf("regrant %d after recovery: %v", i, err)
		}
		regrants = append(regrants, g)
	}
	for _, g := range regrants {
		if err := svc2.Release(g); err != nil {
			t.Errorf("release regrant: %v", err)
		}
	}
}
