package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/registry"
)

// Fsync policies accepted by Config.Fsync and the daemon's -journal-fsync
// flag.
const (
	// FsyncAlways syncs after every append: nothing acknowledged is ever
	// lost, at the cost of a disk round trip on the grant path.
	FsyncAlways = "always"
	// FsyncInterval syncs on a timer (Config.FsyncInterval): a crash loses
	// at most one interval of tail records. The default.
	FsyncInterval = "interval"
	// FsyncOff never syncs explicitly; the OS writes back at its leisure.
	// A process crash (SIGKILL) still loses nothing past the last flush —
	// only a machine crash does.
	FsyncOff = "off"
)

// Defaults for the zero Config fields.
const (
	DefaultFsyncInterval = 100 * time.Millisecond
	DefaultSegmentBytes  = 8 << 20
)

// Config configures a Journal. Dir is the only required field.
type Config struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// Fsync selects the sync policy: FsyncAlways, FsyncInterval (default),
	// or FsyncOff.
	Fsync string
	// FsyncInterval is the timer period under FsyncInterval (and the
	// flush period under FsyncOff). Default 100ms.
	FsyncInterval time.Duration
	// SegmentBytes rotates the active segment once it grows past this
	// size. Default 8 MiB.
	SegmentBytes int64
	// SnapshotPage is the machines-per-page snapshot granularity.
	// Default DefaultSnapshotPage.
	SnapshotPage int
	// WatchBuffer sizes the registry watch ring. Zero picks
	// max(registry.DefaultWatchBuffer, 2×fleet) at Attach time, so steady
	// monitor sweeps never overflow into a resync.
	WatchBuffer int
	// Stats receives journal counters (nil: not recorded).
	Stats *metrics.JournalStats
	// Logf receives operational log lines (nil: discarded).
	Logf func(format string, args ...any)
}

// Journal is the write-ahead log: registry events drained off a watch
// subscription plus lease ops pushed through the pool.LeaseLog and
// poolmgr.DelegationLog hooks, framed into CRC-checked segment files with
// periodic snapshots and compaction.
//
// Open replays whatever the directory holds and returns the reconstructed
// State alongside the journal; Attach then wires the live registry in.
// Everything appended between Open and Attach (recovery's own lease
// re-grants) lands in the new segment like any other record.
type Journal struct {
	cfg   Config
	stats *metrics.JournalStats

	// mu orders every append and guards the writer and the lease mirror;
	// lease hooks update the mirror inside the append critical section, so
	// mirror order always equals record order.
	mu     sync.Mutex
	seg    *segmentWriter
	segSeq uint64
	leases map[string]LeaseRecord

	// snapMu serializes snapshot writes (ticker vs resync vs Close).
	snapMu sync.Mutex

	db     *registry.DB
	source SnapshotSource
	sub    *registry.Subscription

	attached bool
	stop     chan struct{}
	wg       sync.WaitGroup
	flushReq chan chan error
	closed   bool
}

// Open creates or reopens the journal at cfg.Dir: the directory is
// replayed into a State (empty for a fresh directory) and a new segment is
// opened for subsequent appends. The previous tail segment is never
// appended to — a torn tail is skipped once at replay and then left
// behind, not buried under fresh records.
func Open(cfg Config) (*Journal, *State, error) {
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("journal: Config.Dir is required")
	}
	switch cfg.Fsync {
	case FsyncAlways, FsyncInterval, FsyncOff:
	case "":
		cfg.Fsync = FsyncInterval
	default:
		return nil, nil, fmt.Errorf("journal: unknown fsync policy %q (want %q, %q or %q)",
			cfg.Fsync, FsyncAlways, FsyncInterval, FsyncOff)
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.SnapshotPage <= 0 {
		cfg.SnapshotPage = DefaultSnapshotPage
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	st, next, err := replay(cfg.Dir, cfg.Stats, cfg.Logf)
	if err != nil {
		return nil, nil, err
	}
	seg, err := openSegment(cfg.Dir, next)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{
		cfg:      cfg,
		stats:    cfg.Stats,
		seg:      seg,
		segSeq:   next,
		leases:   make(map[string]LeaseRecord, len(st.Leases)),
		stop:     make(chan struct{}),
		flushReq: make(chan chan error),
	}
	// Seed the mirror with the replayed leases; recovery's releases and
	// adoptions then mutate it through the ordinary hooks.
	for _, lr := range st.Leases {
		j.leases[lr.Lease.ID] = lr
	}
	return j, st, nil
}

// Attach wires the journal to the live registry: a watch subscription
// feeds the event drain loop, source pages machine records for snapshots,
// and snapshotEvery schedules periodic snapshots (<= 0: only on resync and
// Close). A synchronous initial snapshot baselines the post-recovery state
// before Attach returns, so the pre-attach world never depends on the old
// (possibly compacted) log alone.
func (j *Journal) Attach(db *registry.DB, source SnapshotSource, snapshotEvery time.Duration) error {
	if db == nil || source == nil {
		return fmt.Errorf("journal: Attach needs a registry and a snapshot source")
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if j.attached {
		j.mu.Unlock()
		return fmt.Errorf("journal: already attached")
	}
	buffer := j.cfg.WatchBuffer
	if buffer <= 0 {
		buffer = 2 * db.Len()
		if buffer < registry.DefaultWatchBuffer {
			buffer = registry.DefaultWatchBuffer
		}
	}
	j.db = db
	j.source = source
	j.sub = db.Watch(buffer)
	j.attached = true
	j.mu.Unlock()

	if err := j.Snapshot(); err != nil {
		return fmt.Errorf("journal: initial snapshot: %w", err)
	}

	j.wg.Add(1)
	go j.drainLoop()
	j.wg.Add(1)
	go j.tickLoop(snapshotEvery)
	return nil
}

// drainLoop moves watch events into the log as they arrive and services
// Flush barriers in between.
func (j *Journal) drainLoop() {
	defer j.wg.Done()
	for {
		select {
		case <-j.stop:
			return
		case <-j.sub.Ready():
			j.drainEvents()
		case req := <-j.flushReq:
			j.drainEvents()
			req <- j.Sync()
		}
	}
}

// drainEvents polls the subscription once and journals what it got. A
// resync marker (ring overflow) is journaled and then immediately healed
// by a fresh snapshot: replay treats resync as "events were lost here",
// and the snapshot is what restores fidelity after the gap.
func (j *Journal) drainEvents() {
	evs, resync := j.sub.Poll()
	if resync {
		j.stats.Resync()
		if err := j.append(recResync, nil, nil); err != nil {
			j.cfg.Logf("journal: resync marker: %v", err)
		}
		if err := j.Snapshot(); err != nil {
			j.cfg.Logf("journal: post-resync snapshot: %v", err)
		}
	}
	if len(evs) == 0 {
		return
	}
	wire := registry.ResolveEvents(j.db, evs, nil)
	payload := registry.AppendEventBatch(nil, wire)
	if err := j.append(recEvents, payload, nil); err != nil {
		j.cfg.Logf("journal: event batch: %v", err)
		return
	}
	j.stats.Events(len(wire))
}

// tickLoop runs the fsync timer (interval and off policies both flush on
// it; only interval syncs) and the snapshot timer.
func (j *Journal) tickLoop(snapshotEvery time.Duration) {
	defer j.wg.Done()
	flush := time.NewTicker(j.cfg.FsyncInterval)
	defer flush.Stop()
	var snapC <-chan time.Time
	if snapshotEvery > 0 {
		snap := time.NewTicker(snapshotEvery)
		defer snap.Stop()
		snapC = snap.C
	}
	for {
		select {
		case <-j.stop:
			return
		case <-flush.C:
			var err error
			switch j.cfg.Fsync {
			case FsyncAlways:
				continue // every append already synced
			case FsyncInterval:
				err = j.Sync()
			default: // off: push to the OS, never force the disk
				err = j.flushOnly()
			}
			if err != nil {
				j.cfg.Logf("journal: periodic flush: %v", err)
			}
		case <-snapC:
			if err := j.Snapshot(); err != nil {
				j.cfg.Logf("journal: periodic snapshot: %v", err)
			}
		}
	}
}

// append frames one record into the active segment. then, when non-nil,
// runs inside the append critical section — the lease hooks use it to
// update the mirror in exactly record order, which is what makes the
// mirror (and therefore every snapshot) agree with the log.
func (j *Journal) append(kind byte, payload []byte, then func()) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seg == nil {
		return fmt.Errorf("journal: closed")
	}
	n, err := j.seg.writeRecord(kind, payload)
	if err != nil {
		return err
	}
	j.stats.Appended(n)
	if then != nil {
		then()
	}
	if j.cfg.Fsync == FsyncAlways {
		d, err := j.seg.sync()
		if err != nil {
			return err
		}
		j.stats.Fsync(d)
	}
	if j.seg.size >= j.cfg.SegmentBytes {
		return j.rotateLocked()
	}
	return nil
}

// rotateLocked seals the active segment (synced unless the policy is off)
// and opens the next one. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	if j.cfg.Fsync != FsyncOff {
		d, err := j.seg.sync()
		if err != nil {
			return err
		}
		j.stats.Fsync(d)
	}
	if err := j.seg.close(); err != nil {
		j.seg = nil
		return err
	}
	j.segSeq++
	seg, err := openSegment(j.cfg.Dir, j.segSeq)
	if err != nil {
		j.seg = nil // the journal is broken; fail loudly on the next append
		return err
	}
	j.seg = seg
	j.stats.Rotated()
	return nil
}

// Sync flushes the buffered writer and fsyncs the active segment. The
// fsync itself runs OUTSIDE the append mutex: under FsyncInterval the
// background tick would otherwise hold every grant hostage for a disk
// round trip, which is exactly the cost the policy exists to avoid.
// Appends racing the fsync are safe — they only extend the file, and the
// next tick covers them. A rotation racing it closes the file, which is
// also safe: sealed segments are synced before close under every policy
// this path serves, so ErrClosed means the data is already down.
func (j *Journal) Sync() error {
	j.mu.Lock()
	if j.seg == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	err := j.seg.flush()
	f := j.seg.f
	j.mu.Unlock()
	if err != nil {
		return err
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		if errors.Is(err, os.ErrClosed) {
			return nil
		}
		return err
	}
	j.stats.Fsync(time.Since(start))
	return nil
}

// flushOnly pushes the writer buffer to the OS without an fsync.
func (j *Journal) flushOnly() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seg == nil {
		return fmt.Errorf("journal: closed")
	}
	return j.seg.flush()
}

// Flush is the durability barrier tests and shutdown lean on: when the
// drain loop is running it drains pending watch events and then syncs, so
// after Flush returns every registry mutation committed before the call
// is on disk. Unattached, it just pushes the writer buffer to the OS.
func (j *Journal) Flush() error {
	j.mu.Lock()
	attached := j.attached && !j.closed
	j.mu.Unlock()
	if !attached {
		return j.flushOnly()
	}
	ch := make(chan error, 1)
	select {
	case j.flushReq <- ch:
		return <-ch
	case <-j.stop:
		return fmt.Errorf("journal: closed")
	}
}

// Snapshot writes a full-state snapshot and compacts the segments (and
// older snapshots) it covers. The active segment is rotated first so the
// snapshot's sequence covers exactly the sealed segments; lease state is
// the journal's own mirror, machine state is paged from the source.
func (j *Journal) Snapshot() error {
	j.snapMu.Lock()
	defer j.snapMu.Unlock()

	j.mu.Lock()
	if j.source == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: no snapshot source (not attached)")
	}
	if j.seg == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if err := j.rotateLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	seq := j.segSeq
	leases := make([]LeaseRecord, 0, len(j.leases))
	for _, lr := range j.leases {
		leases = append(leases, lr)
	}
	source, page := j.source, j.cfg.SnapshotPage
	j.mu.Unlock()

	// Paging happens outside j.mu: appends continue into segment seq
	// while the snapshot streams, and replay applies that segment on top
	// of the snapshot, so nothing is lost to the race.
	if _, err := writeSnapshotAt(j.cfg.Dir, seq, source, page, leases); err != nil {
		return err
	}
	j.stats.Snapshotted()
	j.compact(seq)
	return nil
}

// compact deletes every segment and snapshot strictly older than the
// given snapshot sequence — all state they carry is inside that snapshot.
func (j *Journal) compact(snapSeq uint64) {
	removed := 0
	if segs, err := listSegments(j.cfg.Dir); err == nil {
		for _, seq := range segs {
			if seq >= snapSeq {
				continue
			}
			if err := os.Remove(filepath.Join(j.cfg.Dir, segmentName(seq))); err == nil {
				removed++
			}
		}
	}
	if snaps, err := listSnapshots(j.cfg.Dir); err == nil {
		for _, seq := range snaps {
			if seq < snapSeq {
				os.Remove(filepath.Join(j.cfg.Dir, snapshotName(seq)))
			}
		}
	}
	if removed > 0 {
		j.stats.Compacted(removed)
	}
}

// stopLoops halts the drain and tick goroutines (idempotent).
func (j *Journal) stopLoops() {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		close(j.stop)
	}
	j.mu.Unlock()
	j.wg.Wait()
}

// Close shuts the journal down cleanly: loops stopped, leftover watch
// events drained, a final snapshot written (when attached), and the
// segment sealed with a flush and sync. The daemon calls Close BEFORE
// tearing the service down, so shutdown's own releases are not journaled
// as lease deaths — the snapshot preserves them for the next boot.
func (j *Journal) Close() error {
	j.stopLoops()
	var firstErr error
	if j.sub != nil {
		j.drainEvents()
	}
	if j.source != nil {
		if err := j.Snapshot(); err != nil {
			firstErr = err
		}
	}
	j.mu.Lock()
	if j.seg != nil {
		if _, err := j.seg.sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := j.seg.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		j.seg = nil
	}
	j.mu.Unlock()
	if j.sub != nil {
		j.sub.Close()
		j.sub = nil
	}
	return firstErr
}

// Crash simulates a SIGKILL for tests: loops stopped, file descriptor
// closed WITHOUT flushing the user-space buffer. Records that reached the
// OS survive (the page cache is the machine, not the process); whatever
// sat in the bufio layer is lost, exactly as a real kill would lose it.
func (j *Journal) Crash() {
	j.stopLoops()
	j.mu.Lock()
	if j.seg != nil {
		j.seg.crash()
		j.seg = nil
	}
	j.mu.Unlock()
	if j.sub != nil {
		j.sub.Close()
		j.sub = nil
	}
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.cfg.Dir }

// Leases returns a copy of the live-lease mirror, sorted order not
// guaranteed (observability and the fleet mirror).
func (j *Journal) Leases() []LeaseRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]LeaseRecord, 0, len(j.leases))
	for _, lr := range j.leases {
		out = append(out, lr)
	}
	return out
}

// --- pool.LeaseLog ---

// LeaseGranted journals a local grant.
func (j *Journal) LeaseGranted(l *pool.Lease, expires time.Time) {
	if l == nil {
		return
	}
	rec := LeaseRecord{Lease: *l, Expires: expires}
	payload := appendLeaseOp(nil, leaseOp{op: opGrant, rec: rec})
	err := j.append(recLease, payload, func() { j.leases[l.ID] = rec })
	if err != nil {
		j.cfg.Logf("journal: grant %s: %v", l.ID, err)
		return
	}
	j.stats.LeaseOp()
}

// LeaseReleased journals a release (explicit or reaped).
func (j *Journal) LeaseReleased(leaseID string) {
	payload := appendLeaseOp(nil, leaseOp{op: opRelease, id: leaseID})
	err := j.append(recLease, payload, func() { delete(j.leases, leaseID) })
	if err != nil {
		j.cfg.Logf("journal: release %s: %v", leaseID, err)
		return
	}
	j.stats.LeaseOp()
}

// LeaseRenewed journals a renewal's new deadline.
func (j *Journal) LeaseRenewed(leaseID string, expires time.Time) {
	payload := appendLeaseOp(nil, leaseOp{op: opRenew, id: leaseID, rec: LeaseRecord{Expires: expires}})
	err := j.append(recLease, payload, func() {
		if lr, ok := j.leases[leaseID]; ok {
			lr.Expires = expires
			j.leases[leaseID] = lr
		}
	})
	if err != nil {
		j.cfg.Logf("journal: renew %s: %v", leaseID, err)
		return
	}
	j.stats.LeaseOp()
}

// --- poolmgr.DelegationLog ---

// DelegationWon journals a lease won through a federation peer. No local
// pool hook fires for these (the machine lives on the peer), so the whole
// lease rides in the record.
func (j *Journal) DelegationWon(l *pool.Lease, peerName, domain string) {
	if l == nil {
		return
	}
	rec := LeaseRecord{Lease: *l, Peer: peerName, Domain: domain}
	payload := appendLeaseOp(nil, leaseOp{op: opDelegated, rec: rec})
	err := j.append(recLease, payload, func() { j.leases[l.ID] = rec })
	if err != nil {
		j.cfg.Logf("journal: delegated %s: %v", l.ID, err)
		return
	}
	j.stats.LeaseOp()
}

// DelegationDone journals a delegated lease leaving the table (released
// or expired).
func (j *Journal) DelegationDone(leaseID string) {
	payload := appendLeaseOp(nil, leaseOp{op: opDelegatedDone, id: leaseID})
	err := j.append(recLease, payload, func() { delete(j.leases, leaseID) })
	if err != nil {
		j.cfg.Logf("journal: delegated done %s: %v", leaseID, err)
		return
	}
	j.stats.LeaseOp()
}
