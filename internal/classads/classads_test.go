package classads

import (
	"strings"
	"testing"

	"actyp/internal/query"
)

func TestTranslateConjunction(t *testing.T) {
	tr := New()
	c, err := tr.Translate(`Arch == "SUN4u" && Memory >= 64 && OpSys == "SOLARIS28"`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsBasic() {
		t.Fatal("pure conjunction should be basic")
	}
	q := c.Decompose()[0]
	arch, _ := q.Get("punch.rsrc.arch")
	if arch.Op != query.OpEq || arch.Str != "sun4u" {
		t.Errorf("arch = %+v", arch)
	}
	mem, _ := q.Get("punch.rsrc.memory")
	if mem.Op != query.OpGe || mem.Num != 64 {
		t.Errorf("memory = %+v", mem)
	}
	os, _ := q.Get("punch.rsrc.ostype")
	if os.Str != "solaris28" {
		t.Errorf("ostype = %+v", os)
	}
}

func TestTranslateDisjunction(t *testing.T) {
	tr := New()
	c, err := tr.Translate(`(Arch == "sun" || Arch == "hp") && Memory >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsBasic() {
		t.Fatal("or-clause should make the query composite")
	}
	qs := c.Decompose()
	if len(qs) != 2 {
		t.Fatalf("decomposed into %d", len(qs))
	}
	archs := map[string]bool{}
	for _, q := range qs {
		a, _ := q.Get("punch.rsrc.arch")
		archs[a.Str] = true
		m, ok := q.Get("punch.rsrc.memory")
		if !ok || m.Num != 10 {
			t.Errorf("memory missing from fragment: %+v", m)
		}
	}
	if !archs["sun"] || !archs["hp"] {
		t.Errorf("archs = %v", archs)
	}
}

func TestTranslateOperators(t *testing.T) {
	tr := New()
	c, err := tr.Translate(`Memory >= 64 && Disk <= 4096 && Arch != "vax" && Memory < 1024 && Memory > 32`)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Decompose()[0]
	if a, _ := q.Get("punch.rsrc.arch"); a.Op != query.OpNe {
		t.Errorf("!= lost: %+v", a)
	}
	if d, _ := q.Get("punch.rsrc.swap"); d.Op != query.OpLe || d.Num != 4096 {
		t.Errorf("Disk mapping = %+v", d)
	}
}

func TestTranslateUnmappedAttributeLowercases(t *testing.T) {
	tr := New()
	c, err := tr.Translate(`License == "tsuprem4"`)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Decompose()[0]
	if l, ok := q.Get("punch.rsrc.license"); !ok || l.Str != "tsuprem4" {
		t.Errorf("license = %+v, %v", l, ok)
	}
}

func TestTranslateErrors(t *testing.T) {
	tr := New()
	bad := []string{
		``,                                // nothing to parse
		`Arch ==`,                         // missing literal
		`== "sun"`,                        // missing attribute
		`Arch = "sun"`,                    // single = is not a ClassAd operator... (lexed as op "=")
		`Memory >= "lots"`,                // non-numeric ordering operand
		`Arch == "sun" Memory >= 10`,      // missing &&
		`(Arch == "sun" || Memory >= 10)`, // disjunction across attributes
		`(Arch == "sun"`,                  // unclosed paren
		`Arch == "sun" &`,                 // bad operator
		`Arch == "unterminated`,           // unterminated string
		`(Arch == "sun" && Memory >= 10)`, // && inside parens unsupported
	}
	for _, text := range bad {
		if _, err := tr.Translate(text); err == nil {
			t.Errorf("Translate(%q) should fail", text)
		}
	}
}

func TestTranslateMixedAttrDisjunctionError(t *testing.T) {
	tr := New()
	_, err := tr.Translate(`(Arch == "sun" || OpSys == "linux")`)
	if err == nil || !strings.Contains(err.Error(), "one attribute per or-clause") {
		t.Errorf("err = %v", err)
	}
}

func TestTranslateEndToEndWithQueryManager(t *testing.T) {
	// The translated composite must validate against the punch schema.
	tr := New()
	c, err := tr.Translate(`(Arch == "sun" || Arch == "hp") && Memory >= 10 && Domain == "purdue"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := query.PunchSchema().ValidateComposite(c); err != nil {
		t.Errorf("translated query fails schema validation: %v", err)
	}
	// And the pool naming works on its fragments.
	for _, q := range c.Decompose() {
		if query.Name(q).Signature == "" {
			t.Error("fragment has no pool name")
		}
	}
}
