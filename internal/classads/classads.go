// Package classads implements a translator from a practical subset of
// Condor's ClassAd requirement expressions to the ActYP query language.
// Section 5.1 of the paper anticipates exactly this: "New families of
// key-value pairs could be defined to allow the resource management
// pipeline to simultaneously support multiple protocols and semantics:
// this could allow ActYP to reuse Condor's ClassAds."
//
// The supported grammar is the conjunctive core of ClassAd Requirements:
//
//	expr   := clause { "&&" clause }
//	clause := cmp | "(" cmp { "||" cmp } ")"
//	cmp    := Ident op literal
//	op     := "==" | "!=" | ">=" | "<=" | ">" | "<"
//
// Disjunctions must stay within one attribute (the shape ActYP composites
// can express); a disjunction across different attributes is rejected with
// a clear error. Attribute names map to punch rsrc keys through a
// configurable table.
package classads

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"actyp/internal/query"
)

// DefaultAttrMap maps common Condor attribute names to punch rsrc keys.
func DefaultAttrMap() map[string]string {
	return map[string]string{
		"Arch":   "arch",
		"OpSys":  "ostype",
		"Memory": "memory",
		"Disk":   "swap",
		"Domain": "domain",
		"Owner":  "owner",
	}
}

// Translator converts ClassAd requirement strings into composite queries.
type Translator struct {
	// Family is the target key family (default "punch").
	Family string
	// Attrs maps ClassAd attribute names to rsrc key names. Attributes
	// not in the map are lowercased and used directly.
	Attrs map[string]string
}

// New returns a translator with the default attribute map.
func New() *Translator {
	return &Translator{Family: "punch", Attrs: DefaultAttrMap()}
}

// Translate implements the querymgr Translator contract.
func (t *Translator) Translate(text string) (*query.Composite, error) {
	p := &parser{input: text}
	p.next()
	c := query.NewComposite()
	for {
		if err := t.clause(p, c); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEOF {
			return c, nil
		}
		if p.tok.kind != tokAnd {
			return nil, fmt.Errorf("classads: expected && or end of expression at %q", p.tok.text)
		}
		p.next()
	}
}

// clause parses one conjunct: a comparison or a parenthesized disjunction.
func (t *Translator) clause(p *parser, c *query.Composite) error {
	if p.tok.kind == tokLParen {
		p.next()
		key := ""
		for {
			k, cond, err := t.cmp(p)
			if err != nil {
				return err
			}
			if key == "" {
				key = k
			} else if key != k {
				return fmt.Errorf("classads: disjunction mixes attributes %s and %s; ActYP composites require one attribute per or-clause", key, k)
			}
			c.Add(k, cond)
			if p.tok.kind == tokRParen {
				p.next()
				return nil
			}
			if p.tok.kind != tokOr {
				return fmt.Errorf("classads: expected || or ) at %q", p.tok.text)
			}
			p.next()
		}
	}
	k, cond, err := t.cmp(p)
	if err != nil {
		return err
	}
	c.Add(k, cond)
	return nil
}

// cmp parses "Ident op literal" and returns the mapped key and condition.
func (t *Translator) cmp(p *parser) (string, query.Condition, error) {
	if p.tok.kind != tokIdent {
		return "", query.Condition{}, fmt.Errorf("classads: expected attribute name at %q", p.tok.text)
	}
	attr := p.tok.text
	p.next()
	if p.tok.kind != tokOp {
		return "", query.Condition{}, fmt.Errorf("classads: expected comparison operator after %s", attr)
	}
	op := p.tok.text
	p.next()

	var operand string
	switch p.tok.kind {
	case tokString, tokNumber, tokIdent:
		operand = p.tok.text
	default:
		return "", query.Condition{}, fmt.Errorf("classads: expected literal after %s %s", attr, op)
	}
	p.next()

	family := t.Family
	if family == "" {
		family = "punch"
	}
	name, ok := t.Attrs[attr]
	if !ok {
		name = strings.ToLower(attr)
	}
	key := query.Key{Family: family, Class: query.ClassRsrc, Name: name}.String()

	var cond query.Condition
	switch op {
	case "==":
		cond = query.Eq(strings.ToLower(operand))
	case "!=":
		cond = query.Ne(strings.ToLower(operand))
	case ">=", "<=", ">", "<":
		f, err := strconv.ParseFloat(operand, 64)
		if err != nil {
			return "", query.Condition{}, fmt.Errorf("classads: operator %s needs a numeric operand, got %q", op, operand)
		}
		switch op {
		case ">=":
			cond = query.Ge(f)
		case "<=":
			cond = query.Le(f)
		case ">":
			cond = query.Gt(f)
		default:
			cond = query.Lt(f)
		}
	default:
		return "", query.Condition{}, fmt.Errorf("classads: unsupported operator %q", op)
	}
	return key, cond, nil
}

// Lexer.

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp
	tokAnd
	tokOr
	tokLParen
	tokRParen
	tokBad
)

type token struct {
	kind tokKind
	text string
}

type parser struct {
	input string
	pos   int
	tok   token
}

func (p *parser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "("}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")"}
	case c == '&':
		if strings.HasPrefix(p.input[p.pos:], "&&") {
			p.pos += 2
			p.tok = token{kind: tokAnd, text: "&&"}
		} else {
			p.pos++
			p.tok = token{kind: tokBad, text: "&"}
		}
	case c == '|':
		if strings.HasPrefix(p.input[p.pos:], "||") {
			p.pos += 2
			p.tok = token{kind: tokOr, text: "||"}
		} else {
			p.pos++
			p.tok = token{kind: tokBad, text: "|"}
		}
	case c == '"':
		end := strings.IndexByte(p.input[p.pos+1:], '"')
		if end < 0 {
			p.tok = token{kind: tokBad, text: p.input[p.pos:]}
			p.pos = len(p.input)
			return
		}
		p.tok = token{kind: tokString, text: p.input[p.pos+1 : p.pos+1+end]}
		p.pos += end + 2
	case strings.ContainsRune("=!<>", rune(c)):
		start := p.pos
		for p.pos < len(p.input) && strings.ContainsRune("=!<>", rune(p.input[p.pos])) {
			p.pos++
		}
		p.tok = token{kind: tokOp, text: p.input[start:p.pos]}
	case unicode.IsDigit(rune(c)) || c == '-' || c == '.':
		start := p.pos
		for p.pos < len(p.input) && (unicode.IsDigit(rune(p.input[p.pos])) || p.input[p.pos] == '.' || p.input[p.pos] == '-') {
			p.pos++
		}
		p.tok = token{kind: tokNumber, text: p.input[start:p.pos]}
	case unicode.IsLetter(rune(c)) || c == '_':
		start := p.pos
		for p.pos < len(p.input) && (unicode.IsLetter(rune(p.input[p.pos])) || unicode.IsDigit(rune(p.input[p.pos])) || p.input[p.pos] == '_') {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.input[start:p.pos]}
	default:
		p.tok = token{kind: tokBad, text: string(c)}
		p.pos++
	}
}
