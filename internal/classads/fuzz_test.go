package classads

import "testing"

// FuzzTranslate checks the ClassAds translator never panics and that every
// accepted expression yields fragments the punch pool-naming code can
// process.
func FuzzTranslate(f *testing.F) {
	seeds := []string{
		`Arch == "sun"`,
		`(Arch == "sun" || Arch == "hp") && Memory >= 64`,
		`Memory >= 64 && Disk <= 4096 && OpSys != "vax"`,
		`Arch ==`,
		`((((`,
		`Arch == "unterminated`,
		`A == "x" && B == "y" && C == "z"`,
		`Memory >= -12.5`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	tr := New()
	f.Fuzz(func(t *testing.T, text string) {
		c, err := tr.Translate(text)
		if err != nil {
			return
		}
		for _, q := range c.Decompose() {
			_ = q.String() // rendering must not panic either
		}
	})
}
