package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// entry is one machine in the oracle engine's cache.
type entry struct {
	machine *registry.Machine
	cand    schedule.Candidate
	lease   string    // active lease id, "" when free
	expires time.Time // lease deadline; zero means no expiry
}

// oracleAlloc is the reference engine: the paper's linear search over the
// full cache, inside a single critical section. Concurrent queries to the
// same pool instance serialize on the scan — the bottleneck Figures 6-8
// measure, modelled by scanCost — so this engine stays deliberately
// serialized and acts as the semantic oracle for the indexed engine.
type oracleAlloc struct {
	cfg engineConfig

	mu     sync.Mutex
	cache  []*entry
	leases map[string]*entry
	// scratch buffers reused across Allocate calls (guarded by mu) so a
	// 3,200-entry scan does not allocate per query.
	scratch    []schedule.Candidate
	scratchPtr []*schedule.Candidate

	allocs  atomic.Int64
	misses  atomic.Int64
	scanned atomic.Int64 // total entries scanned, for the linear-search benches
}

func newOracleAlloc(machines []*registry.Machine, cfg engineConfig) *oracleAlloc {
	o := &oracleAlloc{cfg: cfg, leases: make(map[string]*entry)}
	for _, m := range machines {
		o.cache = append(o.cache, &entry{machine: m, cand: candidateOf(m)})
	}
	return o
}

// Kind implements Allocator.
func (o *oracleAlloc) Kind() string { return EngineOracle }

// Size implements Allocator.
func (o *oracleAlloc) Size() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.cache)
}

// Free implements Allocator.
func (o *oracleAlloc) Free() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, e := range o.cache {
		if e.lease == "" {
			n++
		}
	}
	return n
}

// Members implements Allocator.
func (o *oracleAlloc) Members() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, len(o.cache))
	for i, e := range o.cache {
		out[i] = e.machine.Static.Name
	}
	return out
}

// Allocate implements Allocator with the paper's linear search, honouring
// the scheduling objective, the replication bias, machine usability, and
// the user- and tool-group access policies carried in the request.
func (o *oracleAlloc) Allocate(req *allocRequest) (*registry.Machine, error) {
	o.mu.Lock()
	defer o.mu.Unlock()

	// One linear pass builds the candidate view; ineligible machines are
	// folded into the Busy flag so selection stays a single linear scan.
	// The scratch buffers live on the engine (mu held) to keep the hot
	// path allocation-free.
	if cap(o.scratch) < len(o.cache) {
		o.scratch = make([]schedule.Candidate, len(o.cache))
		o.scratchPtr = make([]*schedule.Candidate, len(o.cache))
	}
	cands := o.scratchPtr[:len(o.cache)]
	for i, e := range o.cache {
		c := &o.scratch[i]
		*c = e.cand
		m := e.machine
		c.Busy = e.lease != "" ||
			!m.Usable() || c.Load >= m.Static.MaxLoad ||
			(req.userGroup != "" && !m.AllowsUserGroup(req.userGroup)) ||
			(req.toolGroup != "" && !m.SupportsToolGroup(req.toolGroup)) ||
			(req.verify != nil && !m.Attrs().MatchRsrc(req.verify)) ||
			policyDenied(lookupPolicy(o.cfg.policies, m.Policy.UsagePolicy), m, &e.cand,
				req.userGroup, req.toolGroup, req.login)
		cands[i] = c
	}
	o.scanned.Add(int64(len(cands)))
	if o.cfg.scanCost > 0 {
		// Charge the modelled per-entry search cost inside the critical
		// section: concurrent queries to the same pool instance serialize
		// on its scan, which is the bottleneck Figures 6-8 measure.
		time.Sleep(o.cfg.scanCost * time.Duration(len(cands)))
	}

	idx := schedule.SelectBiased(cands, o.cfg.obj, nil, o.cfg.instance, o.cfg.replicas)
	if idx < 0 {
		o.misses.Add(1)
		return nil, ErrExhausted
	}

	e := o.cache[idx]
	id, err := req.newID()
	if err != nil {
		return nil, err // nothing marked yet; the candidate stays free
	}
	e.lease = id
	e.expires = req.expires
	placeAccounting(&e.cand, e.machine)
	o.leases[id] = e
	o.allocs.Add(1)
	return e.machine, nil
}

// Adopt implements Allocator: recovery re-installs a replayed lease on
// its machine. The linear scan is fine — adoption happens once per lease
// at boot, never on the request path.
func (o *oracleAlloc) Adopt(leaseID, machine string, expires time.Time) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.cache {
		if e.machine.Static.Name != machine {
			continue
		}
		if e.lease == leaseID {
			return nil // idempotent re-adoption
		}
		if e.lease != "" {
			return fmt.Errorf("pool %s: adopt %s: machine %s already leased under %s",
				o.cfg.poolID, leaseID, machine, e.lease)
		}
		e.lease = leaseID
		e.expires = expires
		placeAccounting(&e.cand, e.machine)
		o.leases[leaseID] = e
		return nil
	}
	return fmt.Errorf("pool %s: adopt %s: machine %s not in cache", o.cfg.poolID, leaseID, machine)
}

// Release implements Allocator.
func (o *oracleAlloc) Release(leaseID string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.leases[leaseID]
	if !ok {
		return fmt.Errorf("pool %s: unknown lease %s", o.cfg.poolID, leaseID)
	}
	delete(o.leases, leaseID)
	releaseEntryLocked(e)
	return nil
}

// releaseEntryLocked returns a leased entry to the free state, undoing the
// local load accounting. The caller holds the engine lock.
func releaseEntryLocked(e *entry) {
	e.lease = ""
	releaseAccounting(&e.cand, e.machine)
}

// Renew implements Allocator.
func (o *oracleAlloc) Renew(leaseID string, expires time.Time) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.leases[leaseID]
	if !ok {
		return fmt.Errorf("pool %s: unknown lease %s", o.cfg.poolID, leaseID)
	}
	if !expires.IsZero() {
		e.expires = expires
	}
	return nil
}

// Reap implements Allocator.
func (o *oracleAlloc) Reap(now time.Time) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	var reaped []string
	for id, e := range o.leases {
		if e.expires.IsZero() || e.expires.After(now) {
			continue
		}
		delete(o.leases, id)
		releaseEntryLocked(e)
		reaped = append(reaped, id)
	}
	return reaped
}

// Refresh implements Allocator: it re-reads the dynamic fields of every
// cached machine, preserving locally-accounted jobs.
func (o *oracleAlloc) Refresh(get func(name string) (*registry.Machine, error)) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.cache {
		m, err := get(e.machine.Static.Name)
		if err != nil {
			continue // machine unregistered; keep last view
		}
		e.machine = m
		refreshCandidate(&e.cand, m)
	}
}

// Apply implements Allocator as a full Refresh: the oracle stays
// poll-based by design — its whole value is full-scan reference semantics
// — so an event batch simply triggers the complete re-read the events are
// guaranteed to be a subset of.
func (o *oracleAlloc) Apply(events []registry.Event, get func(name string) (*registry.Machine, error)) {
	if len(events) == 0 {
		return
	}
	o.Refresh(get)
}

// Leases implements Allocator.
func (o *oracleAlloc) Leases() []LeaseInfo {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]LeaseInfo, 0, len(o.leases))
	for id, e := range o.leases {
		out = append(out, LeaseInfo{ID: id, Machine: e.machine.Static.Name, Expires: e.expires})
	}
	return out
}

// Stats implements Allocator.
func (o *oracleAlloc) Stats() (allocs, misses int, scanned int64) {
	return int(o.allocs.Load()), int(o.misses.Load()), o.scanned.Load()
}
