package pool

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// The event-path differential test: the indexed engine folds freshness in
// through Apply(events) from a real registry subscription while the oracle
// full-Refreshes after every mutation burst, and the two must keep making
// identical allocation decisions. Even-numbered seeds run with a
// deliberately tiny ring, so the overflow -> resync -> full-Refresh
// fallback is exercised in lockstep too.

// checkParity asserts every machine's candidate view and lease state is
// bit-for-bit identical across the engines — the strongest form of
// "event-applied state is allocation-equivalent to a full rebuild", since
// the candidate view is the entire scheduling input.
func checkParity(t *testing.T, step int, oracle, subject *Pool) {
	t.Helper()
	o := oracle.engine.(*oracleAlloc)
	x := subject.engine.(*indexedAlloc)
	for _, oe := range o.cache {
		name := oe.machine.Static.Name
		xe := x.byName[name]
		if oe.cand != xe.cand {
			t.Fatalf("step %d: cand diverged for %s:\noracle  %+v\nindexed %+v", step, name, oe.cand, xe.cand)
		}
		if (oe.lease == "") != (xe.lease == "") {
			t.Fatalf("step %d: lease state diverged for %s: %q vs %q", step, name, oe.lease, xe.lease)
		}
	}
}
func TestDifferentialApplyVsRefresh(t *testing.T) {
	objectives := []schedule.Objective{
		schedule.LeastLoad{}, schedule.MostMemory{}, schedule.FewestJobs{},
		schedule.FastestCPU{}, &schedule.RoundRobin{},
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(100 + seed))
			db := registry.NewDB()
			machines := diffFleet(t, rng, 24+rng.Intn(40))
			members := make([]string, len(machines))
			for i, m := range machines {
				if err := db.Add(m); err != nil {
					t.Fatal(err)
				}
				members[i] = m.Static.Name
			}
			store := diffPolicyStore(t)
			clk := &fakeClock{now: time.Unix(2000, 0)}

			name := sunName(t)
			instance := rng.Intn(3)
			replicas := 1 + rng.Intn(3)
			mk := func(engine string) *Pool {
				p, err := New(Config{
					Name:      name,
					Instance:  instance,
					Replicas:  replicas,
					DB:        db,
					Members:   members,
					Objective: objectives[int(seed)%len(objectives)],
					Policies:  store,
					Clock:     clk.Now,
					LeaseTTL:  time.Minute,
					Engine:    engine,
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			oracle := mk(EngineOracle)
			subject := mk(EngineIndexed)

			// The subscription opens after pool creation, so it carries
			// exactly the mutations the loop below makes. Even seeds force
			// the overflow path with a ring smaller than one burst.
			ring := 4096
			if seed%2 == 0 {
				ring = 4
			}
			sub := db.Watch(ring)
			defer sub.Close()

			// fold drains the stream into the subject (incremental, or the
			// resync fallback) and full-refreshes the oracle, the engines'
			// respective freshness contracts.
			fold := func() {
				events, resync := sub.Poll()
				if resync {
					subject.Refresh()
				} else {
					subject.Apply(events)
				}
				oracle.Refresh()
			}

			var live []diffLease
			steps := 2000
			if testing.Short() {
				steps = 400
			}
			for step := 0; step < steps; step++ {
				op := rng.Intn(10)
				checkParity(t, step, oracle, subject)
				switch op {
				case 0, 1, 2, 3: // Allocate
					q := diffAllocQuery(t, rng)
					l1, e1 := oracle.Allocate(q)
					l2, e2 := subject.Allocate(q)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Allocate err diverged: oracle %v, indexed %v\nquery:\n%s", step, e1, e2, q)
					}
					if e1 != nil {
						continue
					}
					if l1.Machine != l2.Machine {
						t.Fatalf("step %d: Allocate diverged: oracle %s, indexed %s\nquery:\n%s", step, l1.Machine, l2.Machine, q)
					}
					live = append(live, diffLease{l1.ID, l2.ID, l1.Machine})
				case 4, 5: // Release
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					e1 := oracle.Release(live[i].oracleID)
					e2 := subject.Release(live[i].indexedID)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Release diverged: %v vs %v", step, e1, e2)
					}
					live = append(live[:i], live[i+1:]...)
				case 6: // Reap after advancing the clock
					clk.Advance(time.Duration(rng.Intn(90)) * time.Second)
					r1, r2 := oracle.Reap(), subject.Reap()
					if len(r1) != len(r2) {
						t.Fatalf("step %d: Reap count diverged: %d vs %d", step, len(r1), len(r2))
					}
					reaped := map[string]bool{}
					for _, id := range r1 {
						reaped[id] = true
					}
					var kept []diffLease
					for _, l := range live {
						if !reaped[l.oracleID] {
							kept = append(kept, l)
						}
					}
					live = kept
				case 7, 8: // Monitor burst: dynamic updates and state flaps
					burst := make([]registry.DynamicUpdate, 0, 8)
					for i := 0; i < 1+rng.Intn(6); i++ {
						name := members[rng.Intn(len(members))]
						m, err := db.Get(name)
						if err != nil {
							t.Fatal(err)
						}
						d := m.Dynamic
						d.Load = float64(rng.Intn(40)) / 10
						d.ActiveJobs = rng.Intn(5)
						d.FreeMemory = float64(rng.Intn(2048))
						d.LastUpdate = time.Unix(1000001000+int64(step), 0).UTC()
						if rng.Intn(2) == 0 {
							burst = append(burst, registry.DynamicUpdate{Name: name, Dynamic: d})
						} else if err := db.UpdateDynamic(name, d); err != nil {
							t.Fatal(err)
						}
						if rng.Intn(4) == 0 {
							if err := db.SetState(name, registry.State(rng.Intn(3))); err != nil {
								t.Fatal(err)
							}
						}
					}
					db.UpdateDynamicBatch(burst)
					fold()
				case 9: // Gate change: re-register with new groups, which the
					// event path must fold as a re-bucket (Removed+Added).
					name := members[rng.Intn(len(members))]
					m, err := db.Get(name)
					if err != nil {
						t.Fatal(err)
					}
					m.Policy.UserGroups = [][]string{nil, {"ece"}, {"cs"}, {"guest"}}[rng.Intn(4)]
					m.Policy.ToolGroups = [][]string{nil, {"spice"}, {"spice", "tsuprem4"}}[rng.Intn(3)]
					m.Policy.UsagePolicy = []string{"", "no-guests", "light-load"}[rng.Intn(3)]
					if err := db.Remove(name); err != nil {
						t.Fatal(err)
					}
					if err := db.Add(m); err != nil {
						t.Fatal(err)
					}
					fold()
				}

				if step%100 == 0 && oracle.Free() != subject.Free() {
					t.Fatalf("step %d: Free diverged: %d vs %d", step, oracle.Free(), subject.Free())
				}
			}

			a1, mi1, _ := oracle.Stats()
			a2, mi2, _ := subject.Stats()
			if a1 != a2 || mi1 != mi2 {
				t.Errorf("stats diverged: oracle %d/%d, indexed %d/%d", a1, mi1, a2, mi2)
			}
			for _, l := range live {
				if err := oracle.Release(l.oracleID); err != nil {
					t.Errorf("oracle drain: %v", err)
				}
				if err := subject.Release(l.indexedID); err != nil {
					t.Errorf("indexed drain: %v", err)
				}
			}
			if oracle.Free() != oracle.Size() || subject.Free() != subject.Size() {
				t.Errorf("drain incomplete: oracle %d/%d, indexed %d/%d",
					oracle.Free(), oracle.Size(), subject.Free(), subject.Size())
			}
		})
	}
}

// TestDispatcherRoutesEvents proves the dispatcher end to end without its
// background loop: a monitor write reaches a subscribed pool's scheduling
// decision through one synchronous Dispatch.
func TestDispatcherRoutesEvents(t *testing.T) {
	db := fleetDB(t, 2)
	d := NewDispatcher(db, 64)
	defer d.Stop()
	p := newSunPool(t, db, func(c *Config) { c.Events = d })
	defer p.Close()
	if d.Pools() != 1 {
		t.Fatalf("subscribed pools = %d, want 1", d.Pools())
	}

	// Load the first machine; the pool must re-sort once dispatched.
	members := p.Members()
	m, err := db.Get(members[0])
	if err != nil {
		t.Fatal(err)
	}
	dyn := m.Dynamic
	dyn.Load = 3.9
	if err := db.UpdateDynamic(members[0], dyn); err != nil {
		t.Fatal(err)
	}
	d.Dispatch()
	l, err := p.Allocate(sunQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if l.Machine == members[0] {
		t.Fatalf("allocated the loaded machine %s; dispatch did not fold the update", l.Machine)
	}
	if err := p.Release(l.ID); err != nil {
		t.Fatal(err)
	}

	batches, applied, _ := d.Stats()
	if batches == 0 || applied == 0 {
		t.Errorf("dispatcher counted batches=%d applied=%d", batches, applied)
	}
}

// TestDispatcherOverflowResync forces the ring over capacity with nobody
// draining and asserts the dispatcher degrades to a full Refresh — and
// that the registry writers were never blocked by the undrained ring.
func TestDispatcherOverflowResync(t *testing.T) {
	db := fleetDB(t, 32)
	d := NewDispatcher(db, 4) // far smaller than one burst
	defer d.Stop()
	p := newSunPool(t, db, func(c *Config) { c.Events = d })
	defer p.Close()

	members := p.Members()
	writes := make(chan struct{})
	go func() {
		defer close(writes)
		for i, name := range members {
			m, err := db.Get(name)
			if err != nil {
				continue
			}
			dyn := m.Dynamic
			dyn.Load = float64(i%8) / 2
			_ = db.UpdateDynamic(name, dyn)
		}
	}()
	select {
	case <-writes:
	case <-time.After(5 * time.Second):
		t.Fatal("registry writers blocked on an overflowing subscription")
	}

	d.Dispatch()
	if _, _, resyncs := d.Stats(); resyncs == 0 {
		t.Fatal("overflow did not degrade to a resync")
	}
	// The fallback Refresh must have folded the updates regardless.
	m, err := db.Get(members[3])
	if err != nil {
		t.Fatal(err)
	}
	if m.Dynamic.Load == 0 {
		t.Fatal("test fleet update did not land")
	}
}

// TestDispatcherDropsClosedPools: a closed pool (e.g. the loser of a
// cross-manager creation race) is unsubscribed lazily on the next
// dispatch, and its close path unsubscribes it eagerly too.
func TestDispatcherDropsClosedPools(t *testing.T) {
	db := fleetDB(t, 4)
	d := NewDispatcher(db, 64)
	defer d.Stop()
	p := newSunPool(t, db, func(c *Config) { c.Events = d })
	if d.Pools() != 1 {
		t.Fatalf("subscribed pools = %d, want 1", d.Pools())
	}
	p.Close()
	if d.Pools() != 0 {
		t.Fatalf("closed pool still subscribed (%d)", d.Pools())
	}
	// A pool closed behind the dispatcher's back is dropped on dispatch.
	p2 := newSunPool(t, db)
	d.Subscribe(p2)
	p2.Close()
	if err := db.SetState(p2.Members()[0], registry.StateUp); err != nil {
		t.Fatal(err)
	}
	d.Dispatch()
	if d.Pools() != 0 {
		t.Fatalf("dispatch kept a closed pool subscribed (%d)", d.Pools())
	}
}

// TestDispatcherSurvivesDuplicateIDRace: managers racing to create one
// pool name momentarily hold two pools with the SAME instance id; the
// race loser's Close must detach only itself, never the surviving winner.
func TestDispatcherSurvivesDuplicateIDRace(t *testing.T) {
	db := fleetDB(t, 8)
	d := NewDispatcher(db, 64)
	defer d.Stop()
	members := db.Names()
	mk := func() *Pool {
		p, err := New(Config{Name: sunName(t), DB: db, Members: members, Events: d})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	winner, loser := mk(), mk()
	if winner.ID() != loser.ID() {
		t.Fatalf("ids differ: %q vs %q", winner.ID(), loser.ID())
	}
	loser.Close()
	defer winner.Close()
	if d.Pools() != 1 {
		t.Fatalf("subscribed pools = %d, want the winner alone", d.Pools())
	}
	// The winner still receives events.
	m, err := db.Get(members[0])
	if err != nil {
		t.Fatal(err)
	}
	dyn := m.Dynamic
	dyn.Load = 3.7
	if err := db.UpdateDynamic(members[0], dyn); err != nil {
		t.Fatal(err)
	}
	d.Dispatch()
	x := winner.engine.(*indexedAlloc)
	if got := x.byName[members[0]].cand.Load; got != 3.7 {
		t.Fatalf("winner cand load = %v, want 3.7 (event not delivered)", got)
	}
}

// TestStressEventDispatch races sustained batched sweeps, the dispatcher's
// background drain, allocations, and releases, with a ring small enough to
// force overflow resyncs along the way. Run under -race in CI; the
// invariants are lease exclusivity and a fully drained pool at the end.
func TestStressEventDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := registry.NewDB()
	machines := diffFleet(t, rng, 96)
	members := make([]string, len(machines))
	for i, m := range machines {
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
		members[i] = m.Static.Name
	}
	d := NewDispatcher(db, 48) // < one full-fleet sweep: overflows happen
	d.Start()
	defer d.Stop()
	p, err := New(Config{
		Name:     sunName(t),
		DB:       db,
		Members:  members,
		Policies: diffPolicyStore(t),
		Engine:   EngineIndexed,
		Events:   d,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(1)
	go func() { // monitor: batched fleet sweeps plus state flaps
		defer bg.Done()
		wrng := rand.New(rand.NewSource(71))
		batch := make([]registry.DynamicUpdate, 0, len(members))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch = batch[:0]
			for _, name := range members {
				batch = append(batch, registry.DynamicUpdate{
					Name:    name,
					Dynamic: registry.Dynamic{Load: float64(wrng.Intn(40)) / 10, ActiveJobs: wrng.Intn(4)},
				})
			}
			db.UpdateDynamicBatch(batch)
			if i%5 == 0 {
				_ = db.SetState(members[wrng.Intn(len(members))], registry.State(wrng.Intn(3)))
			}
		}
	}()

	workers := 8
	iters := 300
	if testing.Short() {
		iters = 60
	}
	queries := []*query.Query{
		sunQuery(t),
		sunQuery(t).Set("punch.user.accessgroup", query.Eq("ece")),
		sunQuery(t).Set("punch.appl.tool", query.Eq("spice")),
	}
	var claims sync.Map
	fail := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var held []*Lease
			for i := 0; i < iters; i++ {
				l, err := p.Allocate(queries[(w+i)%len(queries)])
				if err == nil {
					if prev, loaded := claims.LoadOrStore(l.Machine, w); loaded {
						fail <- fmt.Sprintf("machine %q leased to worker %d while held by %v", l.Machine, w, prev)
						return
					}
					held = append(held, l)
				}
				for len(held) > 0 && (err != nil || i%2 == 0) {
					l := held[0]
					held = held[1:]
					claims.Delete(l.Machine)
					if rerr := p.Release(l.ID); rerr != nil {
						fail <- fmt.Sprintf("release %s: %v", l.ID, rerr)
						return
					}
					if err == nil {
						break
					}
				}
			}
			for _, l := range held {
				claims.Delete(l.Machine)
				if err := p.Release(l.ID); err != nil {
					fail <- fmt.Sprintf("drain %s: %v", l.ID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	bg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if p.Free() != p.Size() {
		t.Errorf("free = %d after full drain, want %d", p.Free(), p.Size())
	}
	batches, _, resyncs := d.Stats()
	if batches == 0 {
		t.Error("dispatcher drained nothing under stress")
	}
	if resyncs == 0 {
		t.Error("undersized ring never overflowed to a resync (stress did not cover the fallback)")
	}
}
