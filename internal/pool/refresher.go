package pool

import (
	"sync"
	"time"
)

// Refresher is the pool's background scheduling process (Section 5.2.3:
// "processes or threads that order the machines on the basis of specified
// scheduling objectives"). It periodically folds the monitor's database
// updates into the pool cache so the linear search sees fresh load data.
type Refresher struct {
	pool     *Pool
	interval time.Duration

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewRefresher creates a refresher for the pool. A non-positive interval
// defaults to one second.
func NewRefresher(p *Pool, interval time.Duration) *Refresher {
	if interval <= 0 {
		interval = time.Second
	}
	return &Refresher{pool: p, interval: interval}
}

// Start launches the background process; starting twice is a no-op.
func (r *Refresher) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	go func() {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.pool.Refresh()
			}
		}
	}()
}

// Stop halts the background process and waits for it to exit; stopping a
// stopped refresher is a no-op.
func (r *Refresher) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
