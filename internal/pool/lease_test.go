package pool

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source shared by pool and test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestLeaseExpiryAndReap(t *testing.T) {
	db := fleetDB(t, 2)
	clk := &fakeClock{now: time.Unix(1000, 0)}
	p, err := New(Config{Name: sunName(t), DB: db, Exclusive: true, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	p.SetLeaseTTL(time.Minute)
	q := sunQuery(t)

	l1, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(q); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d", p.Free())
	}

	// Nothing expires before the TTL.
	clk.Advance(30 * time.Second)
	if got := p.Reap(); len(got) != 0 {
		t.Errorf("premature reap: %v", got)
	}

	// Renew one lease; the other dies at the deadline.
	if err := p.Renew(l1.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(45 * time.Second) // l1 renewed at t+30 -> expires t+90; l2 expires t+60; now t+75
	reaped := p.Reap()
	if len(reaped) != 1 {
		t.Fatalf("reaped %v", reaped)
	}
	if reaped[0] == l1.ID {
		t.Error("renewed lease was reaped")
	}
	if p.Free() != 1 {
		t.Errorf("free after reap = %d", p.Free())
	}
	// The reaped lease can no longer be released or renewed.
	if err := p.Release(reaped[0]); err == nil {
		t.Error("release of reaped lease should fail")
	}
	if err := p.Renew(reaped[0]); err == nil {
		t.Error("renew of reaped lease should fail")
	}
	// The survivor is still live.
	if err := p.Release(l1.ID); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseNoTTLNeverReaps(t *testing.T) {
	db := fleetDB(t, 1)
	clk := &fakeClock{now: time.Unix(0, 0)}
	p, err := New(Config{Name: sunName(t), DB: db, Exclusive: true, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(sunQuery(t)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1000 * time.Hour)
	if got := p.Reap(); got != nil {
		t.Errorf("reaped without TTL: %v", got)
	}
}

func TestRenewUnknownLease(t *testing.T) {
	db := fleetDB(t, 1)
	p := newSunPool(t, db)
	if err := p.Renew("ghost"); err == nil {
		t.Error("renew of unknown lease should fail")
	}
}

// TestRenewWithTTLDisabledKeepsDeadline pins a subtlety: renewing while
// expiry is administratively disabled must not erase a deadline granted
// earlier, or the lease would dodge the reaper forever once expiry is
// re-enabled.
func TestRenewWithTTLDisabledKeepsDeadline(t *testing.T) {
	for _, engine := range []string{EngineOracle, EngineIndexed} {
		t.Run("engine="+engine, func(t *testing.T) {
			db := fleetDB(t, 1)
			clk := &fakeClock{now: time.Unix(0, 0)}
			p := newSunPool(t, db, func(c *Config) {
				c.Engine = engine
				c.Clock = clk.Now
				c.LeaseTTL = time.Minute
			})
			l, err := p.Allocate(sunQuery(t))
			if err != nil {
				t.Fatal(err)
			}
			p.SetLeaseTTL(0)
			if err := p.Renew(l.ID); err != nil { // validity check only
				t.Fatal(err)
			}
			p.SetLeaseTTL(time.Minute)
			clk.Advance(2 * time.Minute)
			if got := p.Reap(); len(got) != 1 || got[0] != l.ID {
				t.Errorf("reap = %v, want the original deadline to stand", got)
			}
		})
	}
}

func TestReaperSweepsAllPools(t *testing.T) {
	db := fleetDB(t, 4)
	clk := &fakeClock{now: time.Unix(0, 0)}
	mk := func(members []string) *Pool {
		p, err := New(Config{Name: sunName(t), DB: db, Members: members, Clock: clk.Now})
		if err != nil {
			t.Fatal(err)
		}
		p.SetLeaseTTL(time.Second)
		return p
	}
	p1 := mk([]string{"m0000", "m0001"})
	p2 := mk([]string{"m0002", "m0003"})
	q := sunQuery(t)
	for _, p := range []*Pool{p1, p2} {
		if _, err := p.Allocate(q); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReaper(func() []*Pool { return []*Pool{p1, p2} }, time.Millisecond)
	clk.Advance(2 * time.Second)
	if n := r.Sweep(); n != 2 {
		t.Errorf("swept %d, want 2", n)
	}
	if r.Reaped() != 2 {
		t.Errorf("reaped counter = %d", r.Reaped())
	}
	// Start/Stop lifecycle is safe and idempotent.
	r.Start()
	r.Start()
	r.Stop()
	r.Stop()
	// Default interval guard.
	if r2 := NewReaper(func() []*Pool { return nil }, 0); r2.interval != 30*time.Second {
		t.Errorf("default interval = %v", r2.interval)
	}
}

func TestExpiredMachineIsReallocatable(t *testing.T) {
	db := fleetDB(t, 1)
	clk := &fakeClock{now: time.Unix(0, 0)}
	p, err := New(Config{Name: sunName(t), DB: db, Exclusive: true, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	p.SetLeaseTTL(time.Second)
	q := sunQuery(t)
	l1, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if got := p.Reap(); len(got) != 1 {
		t.Fatalf("reap = %v", got)
	}
	l2, err := p.Allocate(q)
	if err != nil {
		t.Fatalf("machine not reallocatable after reap: %v", err)
	}
	if l1.ID == l2.ID {
		t.Error("lease ids must differ")
	}
}
