package pool

import (
	"fmt"
	"time"

	"actyp/internal/policy"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// Allocation engine kinds accepted by Config.Engine and the daemons'
// -pool-engine flags.
const (
	// EngineOracle is the original single-mutex full-scan allocator: every
	// Allocate builds a candidate view of the whole cache and runs the
	// paper's linear search inside one critical section. It carries the
	// Figures 6-8 ScanCost model — whose whole point is that concurrent
	// queries serialize on the scan — and serves as the reference oracle
	// for the differential tests.
	EngineOracle = "oracle"
	// EngineIndexed is the concurrent allocator: free machines are
	// bucketed by their discrete eligibility gates (user groups, tool
	// groups, usage-policy reference) and kept in per-bucket heaps ordered
	// by the scheduling objective, so Allocate claims the best eligible
	// machine in O(log n) under short per-bucket locks instead of scanning
	// the cache under one mutex.
	EngineIndexed = "indexed"
)

// Allocator is the storage-and-selection engine behind one Pool: it owns
// the machine cache and the lease table, and implements the allocate/
// release/renew/reap/refresh operations. The Pool wraps it with lease-id
// generation, access keys, TTL policy, and lifecycle.
//
// Engines must agree on serial semantics (which machine a given request
// gets, and every observable count); the differential tests in
// differential_test.go enforce this the same way internal/registry pins
// its storage engines to each other.
type Allocator interface {
	// Kind returns the engine kind name.
	Kind() string
	// Size returns the number of machines in the cache.
	Size() int
	// Free returns how many machines are currently unleased.
	Free() int
	// Members returns the machine names in cache order.
	Members() []string
	// Allocate selects the best eligible free machine for the request,
	// marks it leased under an id drawn from req.newID, and returns its
	// record. It returns ErrExhausted when no machine qualifies; newID is
	// called only after a machine is claimed, so misses stay free of
	// id-generation work.
	Allocate(req *allocRequest) (*registry.Machine, error)
	// Release frees the machine held by a lease.
	Release(leaseID string) error
	// Renew overwrites a live lease's expiry deadline. A zero expires
	// leaves the deadline unchanged (a pure validity check), so renewing
	// on a TTL-disabled pool never erases a deadline granted earlier.
	Renew(leaseID string, expires time.Time) error
	// Reap releases every lease whose deadline has passed, returning the
	// reaped lease ids (in no particular order).
	Reap(now time.Time) []string
	// Adopt marks the named machine leased under an externally-minted
	// lease id (journal replay): the inverse of Allocate for recovery.
	// Adopting an id the engine already holds on the same machine is a
	// no-op; adopting a machine leased under another id, or a machine
	// outside the cache, is an error. Charged like a grant (local load
	// accounting), counted like neither (allocs/misses stay untouched).
	Adopt(leaseID, machine string, expires time.Time) error
	// Refresh re-reads every cached machine through get, folding monitor
	// updates into the candidate view while preserving locally-accounted
	// jobs. Machines get reports as unknown keep their last view.
	Refresh(get func(name string) (*registry.Machine, error))
	// Apply folds a batch of registry change events into the candidate
	// view: the incremental counterpart of Refresh, touching only the
	// machines the events name. DynamicUpdated events carry their snapshot
	// and cost no database read; other kinds re-read the record through
	// get (a failing get keeps the last view, as in Refresh). The oracle
	// engine deliberately keeps full-scan semantics and treats any Apply
	// as a full Refresh — which is exactly what lets the differential
	// tests pin the event-applied indexed state to a full rebuild.
	Apply(events []registry.Event, get func(name string) (*registry.Machine, error))
	// Leases enumerates the live leases (unordered): the domain-migration
	// drain reads them to ship a domain's grants to the new owner.
	Leases() []LeaseInfo
	// Stats reports successful allocations, exhausted misses, and the
	// total number of cache entries examined while selecting.
	Stats() (allocs, misses int, scanned int64)
}

// LeaseInfo is one live lease as an engine tracks it: enough to re-adopt
// the grant elsewhere (the full pool.Lease the holder carries is not kept
// by engines — only the holder needs access keys and ports).
type LeaseInfo struct {
	ID      string
	Machine string
	Expires time.Time // zero: no expiry
}

// allocRequest carries one allocation's identity and eligibility gates,
// precomputed by the Pool so engines never touch the query twice.
type allocRequest struct {
	userGroup string       // punch.user.accessgroup, "" when absent
	toolGroup string       // punch.appl.tool, "" when absent
	login     string       // punch.user.login, "" when absent
	verify    *query.Query // non-nil: re-verify rsrc constraints per machine (mis-routed query)
	// newID mints the lease id (key generation and all), called exactly
	// once per successful claim, while the claimed machine is exclusively
	// held. An error aborts the allocation; engines must return the
	// machine to the free state.
	newID   func() (string, error)
	expires time.Time // lease deadline; zero means no expiry
}

// engineConfig is the static per-pool configuration shared by engines.
type engineConfig struct {
	poolID   string // for error messages
	obj      schedule.Objective
	instance int
	replicas int
	scanCost time.Duration
	policies *policy.Store
}

// resolveEngine maps the configured kind to the engine to build. A
// positive ScanCost pins the pool to the oracle: the modelled linear
// search must serialize inside one critical section to mean anything
// (Figures 6-8), which is exactly what the indexed engine removes.
func resolveEngine(kind string, scanCost time.Duration) (string, error) {
	switch kind {
	case "", EngineOracle, EngineIndexed:
	default:
		return "", fmt.Errorf("pool: unknown engine %q (want %q or %q)", kind, EngineOracle, EngineIndexed)
	}
	if scanCost > 0 || kind == EngineOracle {
		return EngineOracle, nil
	}
	return EngineIndexed, nil
}

// ValidateEngine rejects unknown engine kinds; the daemons use it to fail
// fast on bad -pool-engine flags.
func ValidateEngine(kind string) error {
	_, err := resolveEngine(kind, 0)
	return err
}

// newAllocator builds the resolved engine over the loaded machines.
func newAllocator(kind string, machines []*registry.Machine, cfg engineConfig) Allocator {
	if kind == EngineIndexed {
		return newIndexedAlloc(machines, cfg)
	}
	return newOracleAlloc(machines, cfg)
}

// policyDenied evaluates a machine's field-19 usage-policy metaprogram
// against the requester and the machine's live candidate state. A nil
// policy (no store, empty or unresolvable reference) behaves like the
// paper's unimplemented field: allow.
func policyDenied(pol *policy.Policy, m *registry.Machine, cand *schedule.Candidate, group, tool, login string) bool {
	if pol == nil {
		return false
	}
	ctx := policy.Context{
		"load":       query.NumAttr(cand.Load),
		"freememory": query.NumAttr(cand.FreeMemory),
		"activejobs": query.NumAttr(float64(cand.ActiveJobs)),
		"machine":    query.StrAttr(m.Static.Name),
	}
	if group != "" {
		ctx["group"] = query.StrAttr(group)
	}
	if tool != "" {
		ctx["tool"] = query.StrAttr(tool)
	}
	if login != "" {
		ctx["login"] = query.StrAttr(login)
	}
	return pol.Evaluate(ctx) == policy.Deny
}

// The local-accounting arithmetic lives here, shared by both engines,
// because the differential tests require the engines to stay observably
// identical: a tweak to the math must be impossible to make in one engine
// only. The candidate load is always DERIVED — recomputed from the record
// plus the locally-charged job count — never incrementally accumulated:
// an accumulated float (+= on place, -= on release) drifts from the
// recomputed one by ulps, so an engine that folds only changed machines
// (Apply) would diverge on objective ties from one that re-reads
// everything (Refresh). Derivation makes the view a pure function of
// (record, local jobs), which both paths land on bit-for-bit.

// localJobs is the number of locally-charged jobs the monitor has not yet
// observed: the candidate's job count minus the record's, floored at zero.
func localJobs(cand *schedule.Candidate, m *registry.Machine) int {
	l := cand.ActiveJobs - m.Dynamic.ActiveJobs
	if l < 0 {
		l = 0
	}
	return l
}

// chargeLocal recomputes the candidate's load from the record plus the
// local job charge.
func chargeLocal(cand *schedule.Candidate, m *registry.Machine) {
	cand.Load = m.Dynamic.Load + float64(localJobs(cand, m))/float64(max(1, m.Static.CPUs))
}

// placeAccounting charges a just-granted lease to the candidate view so
// subsequent scheduling decisions see the machine as more loaded even
// before the monitor reports it.
func placeAccounting(cand *schedule.Candidate, m *registry.Machine) {
	cand.ActiveJobs++
	chargeLocal(cand, m)
}

// releaseAccounting undoes one lease's local charge. It never pushes the
// job count below the record's own: once the monitor has folded our job
// into its report the local charge is spent, and decrementing past the
// record would double-subtract — and leave a view that the next refresh
// of an unchanged record "corrects" back up, which would make folding
// frequency observable (Refresh must be a no-op on an unchanged record
// for Apply and Refresh to stay equivalent).
func releaseAccounting(cand *schedule.Candidate, m *registry.Machine) {
	if cand.ActiveJobs > m.Dynamic.ActiveJobs {
		cand.ActiveJobs--
	}
	chargeLocal(cand, m)
}

// refreshCandidate folds a fresh monitor record into the candidate view,
// preserving locally-accounted jobs the monitor has not observed yet.
func refreshCandidate(cand *schedule.Candidate, m *registry.Machine) {
	local := localJobs(cand, m)
	*cand = candidateOf(m)
	cand.ActiveJobs += local
	chargeLocal(cand, m)
}

// lookupPolicy resolves a usage-policy reference, mapping "no store",
// "no reference", and "unresolvable reference" to nil (allow-all).
func lookupPolicy(store *policy.Store, ref string) *policy.Policy {
	if store == nil || ref == "" {
		return nil
	}
	pol, ok := store.Lookup(ref)
	if !ok {
		return nil
	}
	return pol
}
