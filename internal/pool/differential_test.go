package pool

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"actyp/internal/policy"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// The differential test drives randomized operation sequences against the
// indexed engine and the single-mutex oracle in lockstep, asserting that
// every observable outcome stays identical — the shadow-oracle pattern
// internal/registry uses to pin its storage engines to each other,
// applied to the lease pipeline.

// diffFleet builds a gate-diverse fleet: varied user groups, tool groups,
// usage-policy references, loads, and CPU counts, so the indexed engine's
// eligibility buckets and the dynamic per-candidate checks all get
// exercised.
func diffFleet(t *testing.T, rng *rand.Rand, n int) []*registry.Machine {
	t.Helper()
	userGroups := [][]string{nil, {"ece"}, {"cs"}, {"ece", "cs"}, {"guest"}}
	toolGroups := [][]string{nil, {"spice"}, {"tsuprem4"}, {"spice", "tsuprem4"}}
	policies := []string{"", "no-guests", "light-load", "ghost-ref"}
	archs := []string{"sun", "sun", "sun", "hp"}
	out := make([]*registry.Machine, n)
	for i := range out {
		out[i] = &registry.Machine{
			State: registry.StateUp,
			Dynamic: registry.Dynamic{
				Load:       float64(rng.Intn(30)) / 10,
				ActiveJobs: rng.Intn(3),
				FreeMemory: float64(int(64) << uint(rng.Intn(5))),
				FreeSwap:   512,
				LastUpdate: time.Unix(1000000000, 0).UTC(),
			},
			Static: registry.Static{
				Name:    fmt.Sprintf("d%03d", i),
				Speed:   100 + float64(rng.Intn(400)),
				CPUs:    1 + rng.Intn(8),
				MaxLoad: 2 + float64(rng.Intn(6)),
			},
			Access: registry.Access{
				Addr:         fmt.Sprintf("10.0.0.%d", i+1),
				ExecUnitPort: 5000 + i,
				MountMgrPort: 6000 + i,
			},
			Policy: registry.Policy{
				UserGroups:  userGroups[rng.Intn(len(userGroups))],
				ToolGroups:  toolGroups[rng.Intn(len(toolGroups))],
				UsagePolicy: policies[rng.Intn(len(policies))],
				Params: query.AttrSet{
					"arch": query.StrAttr(archs[rng.Intn(len(archs))]),
				},
			},
		}
	}
	return out
}

func diffPolicyStore(t *testing.T) *policy.Store {
	t.Helper()
	store := policy.NewStore()
	for ref, text := range map[string]string{
		"no-guests":  "deny if group == guest\nallow",
		"light-load": "deny if load >= 2\nallow",
	} {
		if err := store.Register(ref, text); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

// diffAllocQuery builds a random allocation query: gate conditions in
// random combinations, sometimes with extra rsrc constraints so the
// mis-routed re-verification path runs too.
func diffAllocQuery(t *testing.T, rng *rand.Rand) *query.Query {
	t.Helper()
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		group := []string{"ece", "cs", "guest", "physics"}[rng.Intn(4)]
		q.Set("punch.user.accessgroup", query.Eq(group))
	}
	if rng.Intn(3) == 0 {
		tool := []string{"spice", "tsuprem4", "matlab"}[rng.Intn(3)]
		q.Set("punch.appl.tool", query.Eq(tool))
	}
	if rng.Intn(3) == 0 {
		q.Set("punch.user.login", query.Eq("kapadia"))
	}
	if rng.Intn(4) == 0 {
		// Extra rsrc condition: the query's name no longer matches the
		// pool's, forcing per-machine re-verification.
		q.Set("punch.rsrc.speed", query.Ge(float64(150+rng.Intn(250))))
	}
	return q
}

// diffLease pairs the two engines' ids for the same logical lease.
type diffLease struct {
	oracleID, indexedID string
	machine             string
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func TestDifferentialIndexedVsOracle(t *testing.T) {
	objectives := []schedule.Objective{
		schedule.LeastLoad{}, schedule.MostMemory{}, schedule.FewestJobs{},
		schedule.FastestCPU{}, &schedule.RoundRobin{},
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			db := registry.NewDB()
			machines := diffFleet(t, rng, 24+rng.Intn(40))
			members := make([]string, len(machines))
			for i, m := range machines {
				if err := db.Add(m); err != nil {
					t.Fatal(err)
				}
				members[i] = m.Static.Name
			}
			store := diffPolicyStore(t)
			clk := &fakeClock{now: time.Unix(2000, 0)}

			name := sunName(t)
			instance := rng.Intn(3)
			replicas := 1 + rng.Intn(3)
			mk := func(engine string) *Pool {
				p, err := New(Config{
					Name:     name,
					Instance: instance,
					Replicas: replicas,
					DB:       db,
					Members:  members,
					// Objective values are stateless except RoundRobin,
					// whose Less is constant, so sharing is safe.
					Objective: objectives[int(seed)%len(objectives)],
					Policies:  store,
					Clock:     clk.Now,
					LeaseTTL:  time.Minute,
					Engine:    engine,
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			oracle := mk(EngineOracle)
			subject := mk(EngineIndexed)
			if oracle.Engine() != EngineOracle || subject.Engine() != EngineIndexed {
				t.Fatalf("engines = %q/%q", oracle.Engine(), subject.Engine())
			}

			var live []diffLease
			steps := 2500
			if testing.Short() {
				steps = 500
			}
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(10); op {
				case 0, 1, 2, 3: // Allocate
					q := diffAllocQuery(t, rng)
					l1, e1 := oracle.Allocate(q)
					l2, e2 := subject.Allocate(q)
					if (e1 == nil) != (e2 == nil) || (e1 == ErrExhausted) != (e2 == ErrExhausted) {
						t.Fatalf("step %d: Allocate err diverged: oracle %v, indexed %v\nquery:\n%s", step, e1, e2, q)
					}
					if e1 != nil {
						continue
					}
					if l1.Machine != l2.Machine {
						t.Fatalf("step %d: Allocate diverged: oracle %s, indexed %s\nquery:\n%s", step, l1.Machine, l2.Machine, q)
					}
					live = append(live, diffLease{l1.ID, l2.ID, l1.Machine})
				case 4, 5: // Release a random live lease (or a bogus id)
					if len(live) == 0 || rng.Intn(8) == 0 {
						e1 := oracle.Release("bogus")
						e2 := subject.Release("bogus")
						if (e1 == nil) != (e2 == nil) {
							t.Fatalf("step %d: bogus Release diverged: %v vs %v", step, e1, e2)
						}
						continue
					}
					i := rng.Intn(len(live))
					e1 := oracle.Release(live[i].oracleID)
					e2 := subject.Release(live[i].indexedID)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Release diverged: %v vs %v", step, e1, e2)
					}
					live = append(live[:i], live[i+1:]...)
				case 6: // Renew a random live lease
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					e1 := oracle.Renew(live[i].oracleID)
					e2 := subject.Renew(live[i].indexedID)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Renew diverged: %v vs %v", step, e1, e2)
					}
				case 7: // Advance the clock and reap expired leases
					clk.Advance(time.Duration(rng.Intn(90)) * time.Second)
					r1, r2 := oracle.Reap(), subject.Reap()
					if len(r1) != len(r2) {
						t.Fatalf("step %d: Reap count diverged: %d vs %d", step, len(r1), len(r2))
					}
					reapedO := map[string]bool{}
					for _, id := range r1 {
						reapedO[id] = true
					}
					reapedX := map[string]bool{}
					for _, id := range r2 {
						reapedX[id] = true
					}
					// Per-lease agreement plus equal counts pins the two
					// engines to reaping the same machine set.
					var kept []diffLease
					for _, l := range live {
						if reapedO[l.oracleID] != reapedX[l.indexedID] {
							t.Fatalf("step %d: Reap membership diverged for machine %s", step, l.machine)
						}
						if !reapedO[l.oracleID] {
							kept = append(kept, l)
						}
					}
					live = kept
				case 8: // Monitor updates + state flaps, folded in by Refresh
					for i := 0; i < 1+rng.Intn(6); i++ {
						name := members[rng.Intn(len(members))]
						m, err := db.Get(name)
						if err != nil {
							t.Fatal(err)
						}
						d := m.Dynamic
						d.Load = float64(rng.Intn(40)) / 10
						d.ActiveJobs = rng.Intn(5)
						d.FreeMemory = float64(rng.Intn(2048))
						d.LastUpdate = time.Unix(1000001000+int64(step), 0).UTC()
						if err := db.UpdateDynamic(name, d); err != nil {
							t.Fatal(err)
						}
						if rng.Intn(4) == 0 {
							if err := db.SetState(name, registry.State(rng.Intn(3))); err != nil {
								t.Fatal(err)
							}
						}
					}
					oracle.Refresh()
					subject.Refresh()
				case 9: // Gate change: re-register a machine with new groups,
					// forcing the indexed engine to re-bucket on Refresh.
					name := members[rng.Intn(len(members))]
					m, err := db.Get(name)
					if err != nil {
						t.Fatal(err)
					}
					m.Policy.UserGroups = [][]string{nil, {"ece"}, {"cs"}, {"guest"}}[rng.Intn(4)]
					m.Policy.UsagePolicy = []string{"", "no-guests", "light-load"}[rng.Intn(3)]
					if err := db.Remove(name); err != nil {
						t.Fatal(err)
					}
					if err := db.Add(m); err != nil {
						t.Fatal(err)
					}
					oracle.Refresh()
					subject.Refresh()
				}

				if step%100 == 0 {
					if oracle.Free() != subject.Free() {
						t.Fatalf("step %d: Free diverged: %d vs %d", step, oracle.Free(), subject.Free())
					}
					if oracle.Size() != subject.Size() {
						t.Fatalf("step %d: Size diverged", step)
					}
				}
			}

			// Final state: counters, membership, and full drain must agree.
			a1, mi1, _ := oracle.Stats()
			a2, mi2, _ := subject.Stats()
			if a1 != a2 || mi1 != mi2 {
				t.Errorf("stats diverged: oracle %d/%d, indexed %d/%d", a1, mi1, a2, mi2)
			}
			o1, o2 := sortedStrings(oracle.Members()), sortedStrings(subject.Members())
			if len(o1) != len(o2) {
				t.Fatalf("member counts diverged")
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("members diverged at %d: %s vs %s", i, o1[i], o2[i])
				}
			}
			for _, l := range live {
				if err := oracle.Release(l.oracleID); err != nil {
					t.Errorf("oracle drain: %v", err)
				}
				if err := subject.Release(l.indexedID); err != nil {
					t.Errorf("indexed drain: %v", err)
				}
			}
			if oracle.Free() != oracle.Size() || subject.Free() != subject.Size() {
				t.Errorf("drain incomplete: oracle %d/%d, indexed %d/%d",
					oracle.Free(), oracle.Size(), subject.Free(), subject.Size())
			}
		})
	}
}
