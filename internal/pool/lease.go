package pool

import (
	"sync"
	"time"
)

// Lease expiry. The paper's desktop relinquishes resources by notifying
// ActYP when a run completes; a desktop that crashes mid-run would strand
// its machine forever. Pools therefore support an optional lease lifetime:
// leases not renewed within TTL are reaped and their machines returned to
// the pool. Long runs renew periodically (the execution unit's heartbeat).

// SetLeaseTTL enables expiry for leases granted *after* the call. A
// non-positive ttl disables expiry.
func (p *Pool) SetLeaseTTL(ttl time.Duration) {
	p.life.Lock()
	defer p.life.Unlock()
	p.leaseTTL = ttl
}

// Renew extends a live lease's lifetime by the pool's TTL from now.
// Renewing an unknown (possibly already-reaped) lease is an error the
// holder must treat as "your machine is gone". On pools without a TTL it
// is a validity check: any existing deadline is left untouched.
func (p *Pool) Renew(leaseID string) error {
	p.life.RLock()
	defer p.life.RUnlock()
	var expires time.Time
	if p.leaseTTL > 0 {
		expires = p.clock().Add(p.leaseTTL)
	}
	if err := p.engine.Renew(leaseID, expires); err != nil {
		return err
	}
	if p.log != nil && !expires.IsZero() {
		p.log.LeaseRenewed(leaseID, expires)
	}
	return nil
}

// Reap releases every lease whose lifetime has passed, returning the
// reaped lease ids. Pools with expiry disabled never reap.
func (p *Pool) Reap() []string {
	p.life.RLock()
	defer p.life.RUnlock()
	if p.leaseTTL <= 0 {
		return nil
	}
	ids := p.engine.Reap(p.clock())
	if p.log != nil {
		for _, id := range ids {
			p.log.LeaseReleased(id)
		}
	}
	return ids
}

// Reaper periodically reaps expired leases on a set of pools.
type Reaper struct {
	interval time.Duration
	pools    func() []*Pool

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}

	statMu sync.Mutex
	reaped int
}

// NewReaper builds a reaper over a dynamic pool source (so pools created
// after the reaper starts are covered). A non-positive interval defaults
// to 30 seconds.
func NewReaper(pools func() []*Pool, interval time.Duration) *Reaper {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Reaper{interval: interval, pools: pools}
}

// Sweep reaps once, synchronously, returning how many leases it freed.
func (r *Reaper) Sweep() int {
	n := 0
	for _, p := range r.pools() {
		n += len(p.Reap())
	}
	r.statMu.Lock()
	r.reaped += n
	r.statMu.Unlock()
	return n
}

// Reaped returns the lifetime count of reaped leases.
func (r *Reaper) Reaped() int {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return r.reaped
}

// Start launches the periodic sweep; double start is a no-op.
func (r *Reaper) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	go func() {
		defer close(done)
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Sweep()
			}
		}
	}()
}

// Stop halts the periodic sweep; double stop is a no-op.
func (r *Reaper) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
