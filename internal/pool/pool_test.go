package pool

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

func fleetDB(t testing.TB, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func sunName(t testing.TB) query.PoolName {
	t.Helper()
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	return query.Name(q)
}

func sunQuery(t testing.TB) *query.Query {
	t.Helper()
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newSunPool(t testing.TB, db *registry.DB, cfgMut ...func(*Config)) *Pool {
	t.Helper()
	cfg := Config{Name: sunName(t), DB: db, Exclusive: true}
	for _, f := range cfgMut {
		f(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	db := fleetDB(t, 4)
	if _, err := New(Config{DB: db}); err == nil {
		t.Error("missing name should fail")
	}
	if _, err := New(Config{Name: sunName(t)}); err == nil {
		t.Error("missing db should fail")
	}
	// No matching machines: hp pool over a sun fleet.
	q, _ := query.ParseBasic("punch.rsrc.arch = hp")
	if _, err := New(Config{Name: query.Name(q), DB: db, Exclusive: true}); err == nil {
		t.Error("empty pool should fail")
	}
}

func TestNewWalksWhitePagesAndTakes(t *testing.T) {
	db := fleetDB(t, 10)
	p := newSunPool(t, db)
	if p.Size() != 10 {
		t.Fatalf("size = %d", p.Size())
	}
	if got := db.TakenBy(p.ID()); len(got) != 10 {
		t.Errorf("taken = %d", len(got))
	}
	// A second exclusive pool with the same criteria finds nothing left.
	if _, err := New(Config{Name: sunName(t), DB: db, Instance: 1, Exclusive: true}); err == nil {
		t.Error("second exclusive pool should find no machines")
	}
	p.Close()
	if got := db.TakenBy(p.ID()); len(got) != 0 {
		t.Errorf("Close left %d machines taken", len(got))
	}
	// Closed pools refuse allocations; double close is a no-op.
	p.Close()
	if _, err := p.Allocate(sunQuery(t)); err == nil {
		t.Error("closed pool should refuse allocation")
	}
}

// TestCloseReleasesOnlyOwnClaims pins the create-race repair path: when
// two managers race to build the same pool name, both exclusive pools
// carry the same instance id, and closing the loser (or failing to build
// it at all) must not strip the winner's white-pages claims.
func TestCloseReleasesOnlyOwnClaims(t *testing.T) {
	db := fleetDB(t, 8)
	winner := newSunPool(t, db, func(c *Config) { c.MaxMachines = 5 })
	loser, err := New(Config{Name: sunName(t), DB: db, Exclusive: true}) // same id "...#0"
	if err != nil {
		t.Fatal(err)
	}
	if winner.ID() != loser.ID() {
		t.Fatalf("ids differ: %q vs %q", winner.ID(), loser.ID())
	}
	if loser.Size() != 3 {
		t.Fatalf("loser took %d machines, want the 3 remaining", loser.Size())
	}
	// With the fleet fully taken, a third creation attempt fails — and
	// its error path must not release anything under the shared id.
	if _, err := New(Config{Name: sunName(t), DB: db, Exclusive: true}); err == nil {
		t.Fatal("expected exhaustion")
	}
	if got := db.TakenBy(winner.ID()); len(got) != 8 {
		t.Fatalf("failed creation stripped live claims: %d taken, want 8", len(got))
	}
	loser.Close()
	if got := db.TakenBy(winner.ID()); len(got) != 5 {
		t.Fatalf("losing pool's close stripped the winner's claims: %d taken, want 5", len(got))
	}
	winner.Close()
	if got := db.TakenBy(winner.ID()); len(got) != 0 {
		t.Fatalf("winner's close left %d taken", len(got))
	}
}

func TestNewWithMembers(t *testing.T) {
	db := fleetDB(t, 6)
	p, err := New(Config{
		Name: sunName(t), DB: db,
		Members: []string{"m0001", "m0003"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Members()
	if len(got) != 2 || got[0] != "m0001" || got[1] != "m0003" {
		t.Errorf("members = %v", got)
	}
	// Non-exclusive: nothing marked taken.
	if taken := db.TakenBy(p.ID()); len(taken) != 0 {
		t.Errorf("member pool took machines: %v", taken)
	}
	if _, err := New(Config{Name: sunName(t), DB: db, Members: []string{"ghost"}}); err == nil {
		t.Error("unknown member should fail")
	}
}

func TestMaxMachines(t *testing.T) {
	db := fleetDB(t, 10)
	p, err := New(Config{Name: sunName(t), DB: db, Exclusive: true, MaxMachines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestAllocateReleaseLifecycle(t *testing.T) {
	for _, engine := range []string{EngineOracle, EngineIndexed} {
		t.Run("engine="+engine, func(t *testing.T) {
			db := fleetDB(t, 3)
			p := newSunPool(t, db, func(c *Config) { c.Engine = engine })
			if p.Engine() != engine {
				t.Fatalf("engine = %q, want %q", p.Engine(), engine)
			}
			q := sunQuery(t)

			seen := map[string]bool{}
			var leases []*Lease
			for i := 0; i < 3; i++ {
				l, err := p.Allocate(q)
				if err != nil {
					t.Fatal(err)
				}
				if seen[l.Machine] {
					t.Errorf("machine %s leased twice", l.Machine)
				}
				seen[l.Machine] = true
				if l.AccessKey == "" || len(l.AccessKey) != 32 {
					t.Errorf("access key = %q", l.AccessKey)
				}
				if l.Addr == "" || l.ExecUnitPort == 0 {
					t.Errorf("lease missing coordinates: %+v", l)
				}
				if l.Pool != p.ID() {
					t.Errorf("lease pool = %q", l.Pool)
				}
				leases = append(leases, l)
			}
			if p.Free() != 0 {
				t.Errorf("free = %d", p.Free())
			}
			if _, err := p.Allocate(q); err != ErrExhausted {
				t.Errorf("exhausted pool returned %v", err)
			}

			if err := p.Release(leases[0].ID); err != nil {
				t.Fatal(err)
			}
			if err := p.Release(leases[0].ID); err == nil {
				t.Error("double release should fail")
			}
			if err := p.Release("bogus"); err == nil {
				t.Error("unknown lease should fail")
			}
			if p.Free() != 1 {
				t.Errorf("free after release = %d", p.Free())
			}
			// Released machine is allocatable again.
			if _, err := p.Allocate(q); err != nil {
				t.Errorf("re-allocate: %v", err)
			}

			allocs, misses, scanned := p.Stats()
			if allocs != 4 || misses != 1 {
				t.Errorf("stats = %d allocs, %d misses", allocs, misses)
			}
			if engine == EngineOracle {
				// The oracle scans the whole cache per allocation attempt.
				if scanned < int64(4*p.Size()) {
					t.Errorf("scanned = %d", scanned)
				}
			} else if scanned < int64(allocs) {
				// The indexed engine examines only popped heap entries: at
				// least one per successful allocation, far less than a scan.
				t.Errorf("scanned = %d", scanned)
			}
		})
	}
}

func TestAllocatePrefersLeastLoad(t *testing.T) {
	db := fleetDB(t, 3)
	// Make m0001 clearly the least loaded.
	for _, upd := range []struct {
		name string
		load float64
	}{{"m0000", 1.5}, {"m0001", 0.1}, {"m0002", 1.0}} {
		m, _ := db.Get(upd.name)
		d := m.Dynamic
		d.Load = upd.load
		if err := db.UpdateDynamic(upd.name, d); err != nil {
			t.Fatal(err)
		}
	}
	p := newSunPool(t, db)
	l, err := p.Allocate(sunQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if l.Machine != "m0001" {
		t.Errorf("allocated %s, want m0001", l.Machine)
	}
}

func TestAllocateLocalLoadAccounting(t *testing.T) {
	db := fleetDB(t, 2)
	p := newSunPool(t, db)
	q := sunQuery(t)
	a, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	// With equal initial loads, local accounting must steer the second
	// allocation to the other machine.
	if a.Machine == b.Machine {
		t.Errorf("both allocations hit %s", a.Machine)
	}
}

func TestAllocateRespectsAccessPolicy(t *testing.T) {
	db := registry.NewDB()
	machines, err := registry.HomogeneousFleetSpec(2).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	machines[0].Policy.UserGroups = []string{"ece"}
	machines[1].Policy.UserGroups = []string{"cs"}
	for _, m := range machines {
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	p := newSunPool(t, db)
	q := sunQuery(t).Set("punch.user.accessgroup", query.Eq("ece"))
	l, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	if l.Machine != "m0000" {
		t.Errorf("ece user got %s", l.Machine)
	}
	// Only one machine admits ece; a second ece query starves even though
	// the cs machine is free.
	if _, err := p.Allocate(q); err != ErrExhausted {
		t.Errorf("second ece allocation = %v", err)
	}
}

func TestAllocateRespectsToolGroups(t *testing.T) {
	db := registry.NewDB()
	machines, err := registry.HomogeneousFleetSpec(2).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	machines[0].Policy.ToolGroups = []string{"spice"}
	machines[1].Policy.ToolGroups = []string{"tsuprem4"}
	for _, m := range machines {
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	p := newSunPool(t, db)
	q := sunQuery(t).Set("punch.appl.tool", query.Eq("tsuprem4"))
	l, err := p.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	if l.Machine != "m0001" {
		t.Errorf("tsuprem4 run landed on %s", l.Machine)
	}
}

func TestAllocateSkipsDownMachines(t *testing.T) {
	db := fleetDB(t, 2)
	if err := db.SetState("m0000", registry.StateDown); err != nil {
		t.Fatal(err)
	}
	p := newSunPool(t, db)
	p.Refresh()
	l, err := p.Allocate(sunQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if l.Machine != "m0001" {
		t.Errorf("allocated down machine's peer wrong: %s", l.Machine)
	}
	if _, err := p.Allocate(sunQuery(t)); err != ErrExhausted {
		t.Errorf("down machine allocated: %v", err)
	}
}

func TestRefreshFoldsMonitorUpdates(t *testing.T) {
	db := fleetDB(t, 2)
	p := newSunPool(t, db)
	// Lease one machine, then let the "monitor" report new loads.
	l, err := p.Allocate(sunQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"m0000", "m0001"} {
		m, _ := db.Get(name)
		d := m.Dynamic
		d.Load = 3.0
		if err := db.UpdateDynamic(name, d); err != nil {
			t.Fatal(err)
		}
	}
	p.Refresh()
	// The leased machine keeps its locally-accounted job.
	if err := p.Release(l.ID); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 2 {
		t.Errorf("free = %d", p.Free())
	}
}

func TestSplitPartitions(t *testing.T) {
	db := fleetDB(t, 10)
	p := newSunPool(t, db)
	parts, err := p.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	seen := map[string]bool{}
	for _, part := range parts {
		total += len(part)
		for _, m := range part {
			if seen[m] {
				t.Errorf("machine %s in two parts", m)
			}
			seen[m] = true
		}
	}
	if total != 10 {
		t.Errorf("split lost machines: %d", total)
	}
	// 10 into 3: sizes 4,3,3.
	if len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Errorf("sizes = %d,%d,%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}

	if _, err := p.Split(0); err == nil {
		t.Error("split 0 should fail")
	}
	if _, err := p.Split(11); err == nil {
		t.Error("split beyond size should fail")
	}
}

func TestReplicasShareMachinesWithBias(t *testing.T) {
	db := fleetDB(t, 8)
	members := []string{"m0000", "m0001", "m0002", "m0003", "m0004", "m0005", "m0006", "m0007"}
	mk := func(inst int) *Pool {
		p, err := New(Config{
			Name: sunName(t), DB: db, Members: members,
			Instance: inst, Replicas: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	r0, r1 := mk(0), mk(1)
	q := sunQuery(t)
	l0, err := r0.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := r1.Allocate(q)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 0 prefers even member indices, instance 1 odd ones. With
	// two replicas over eight machines, the stripes cannot collide while
	// each stripe has free machines.
	idx := func(machine string) int {
		for i, m := range members {
			if m == machine {
				return i
			}
		}
		return -1
	}
	if i := idx(l0.Machine); i%2 != 0 {
		t.Errorf("replica 0 allocated %s (index %d), want even stripe", l0.Machine, i)
	}
	if i := idx(l1.Machine); i%2 != 1 {
		t.Errorf("replica 1 allocated %s (index %d), want odd stripe", l1.Machine, i)
	}
}

func TestConcurrentAllocateNoDoubleLease(t *testing.T) {
	db := fleetDB(t, 64)
	p := newSunPool(t, db)
	q := sunQuery(t)
	var mu sync.Mutex
	seen := map[string]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				l, err := p.Allocate(q)
				if err != nil {
					return
				}
				mu.Lock()
				seen[l.Machine]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 64 {
		t.Errorf("leased %d machines, want 64", len(seen))
	}
	for m, c := range seen {
		if c != 1 {
			t.Errorf("machine %s leased %d times", m, c)
		}
	}
}

func TestRefresherStartStop(t *testing.T) {
	db := fleetDB(t, 2)
	p := newSunPool(t, db)
	r := NewRefresher(p, time.Millisecond)
	r.Start()
	r.Start() // no-op
	time.Sleep(10 * time.Millisecond)
	r.Stop()
	r.Stop() // no-op
	// Default interval guard.
	r2 := NewRefresher(p, 0)
	if r2.interval != time.Second {
		t.Errorf("default interval = %v", r2.interval)
	}
}

func TestLeaseIDsUnique(t *testing.T) {
	db := fleetDB(t, 16)
	p := newSunPool(t, db)
	q := sunQuery(t)
	ids := map[string]bool{}
	keys := map[string]bool{}
	for i := 0; i < 16; i++ {
		l, err := p.Allocate(q)
		if err != nil {
			t.Fatal(err)
		}
		if ids[l.ID] {
			t.Errorf("duplicate lease id %s", l.ID)
		}
		if keys[l.AccessKey] {
			t.Errorf("duplicate access key")
		}
		ids[l.ID] = true
		keys[l.AccessKey] = true
	}
}

// Property: for any interleaving of allocations and releases, the number of
// free machines equals size minus outstanding leases.
func TestFreeCountInvariantProperty(t *testing.T) {
	db := fleetDB(t, 12)
	p := newSunPool(t, db)
	q := sunQuery(t)
	var live []*Lease
	f := func(ops []bool) bool {
		for _, alloc := range ops {
			if alloc {
				l, err := p.Allocate(q)
				if err == nil {
					live = append(live, l)
				} else if err != ErrExhausted {
					return false
				}
			} else if len(live) > 0 {
				if err := p.Release(live[0].ID); err != nil {
					return false
				}
				live = live[1:]
			}
		}
		return p.Free() == p.Size()-len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPoolAccessors(t *testing.T) {
	db := fleetDB(t, 2)
	p, err := New(Config{Name: sunName(t), DB: db, Instance: 3, Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Instance() != 3 {
		t.Errorf("instance = %d", p.Instance())
	}
	if !strings.HasSuffix(p.ID(), "#3") {
		t.Errorf("id = %q", p.ID())
	}
	if p.Name() != sunName(t) {
		t.Errorf("name = %+v", p.Name())
	}
}
