package pool

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

// The stress test hammers Allocate/Release/Refresh (plus monitor-style
// database churn) from many goroutines, run under -race in CI, and
// asserts the lease-exclusivity guarantee: no machine ever carries two
// live leases at once. Ownership is tracked in a claims map — an Allocate
// returning a machine already present in the map is a double lease.

func TestStressAllocateExclusive(t *testing.T) {
	for _, engine := range []string{EngineOracle, EngineIndexed} {
		engine := engine
		t.Run("engine="+engine, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(7))
			db := registry.NewDB()
			machines := diffFleet(t, rng, 96)
			members := make([]string, len(machines))
			for i, m := range machines {
				if err := db.Add(m); err != nil {
					t.Fatal(err)
				}
				members[i] = m.Static.Name
			}
			p, err := New(Config{
				Name:     sunName(t),
				DB:       db,
				Members:  members,
				Policies: diffPolicyStore(t),
				Engine:   engine,
			})
			if err != nil {
				t.Fatal(err)
			}
			if p.Engine() != engine {
				t.Fatalf("engine = %q", p.Engine())
			}

			workers := 8
			iters := 400
			if testing.Short() {
				iters = 80
			}
			queries := []*query.Query{
				sunQuery(t),
				sunQuery(t).Set("punch.user.accessgroup", query.Eq("ece")),
				sunQuery(t).Set("punch.appl.tool", query.Eq("spice")),
				sunQuery(t).Set("punch.rsrc.speed", query.Ge(150)),
			}

			var claims sync.Map // machine name -> worker
			fail := make(chan string, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var held []*Lease
					for i := 0; i < iters; i++ {
						q := queries[(w+i)%len(queries)]
						l, err := p.Allocate(q)
						if err == nil {
							if prev, loaded := claims.LoadOrStore(l.Machine, w); loaded {
								fail <- fmt.Sprintf("machine %q leased to worker %d while held by %v", l.Machine, w, prev)
								return
							}
							held = append(held, l)
						}
						// Release about half of what we hold, oldest first.
						for len(held) > 0 && (err != nil || i%2 == 0) {
							l := held[0]
							held = held[1:]
							claims.Delete(l.Machine)
							if rerr := p.Release(l.ID); rerr != nil {
								fail <- fmt.Sprintf("release %s: %v", l.ID, rerr)
								return
							}
							if err == nil {
								break
							}
						}
					}
					for _, l := range held {
						claims.Delete(l.Machine)
						if err := p.Release(l.ID); err != nil {
							fail <- fmt.Sprintf("drain %s: %v", l.ID, err)
							return
						}
					}
				}(w)
			}

			// Monitor-style writer plus the pool's background scheduling
			// process: dynamic updates land in the database and Refresh
			// folds them in while allocations run.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			bg.Add(1)
			go func() {
				defer bg.Done()
				wrng := rand.New(rand.NewSource(99))
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					name := members[i%len(members)]
					if m, err := db.Get(name); err == nil {
						d := m.Dynamic
						d.Load = float64(wrng.Intn(40)) / 10
						d.ActiveJobs = wrng.Intn(4)
						d.LastUpdate = time.Unix(1000002000+int64(i), 0).UTC()
						_ = db.UpdateDynamic(name, d)
					}
					if i%7 == 0 {
						_ = db.SetState(name, registry.State(wrng.Intn(3)))
					}
					if i%5 == 0 {
						p.Refresh()
					}
					_ = p.Free()
					_, _, _ = p.Stats()
					i++
				}
			}()

			wg.Wait()
			close(stop)
			bg.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}
			if p.Free() != p.Size() {
				t.Errorf("free = %d after full drain, want %d", p.Free(), p.Size())
			}
		})
	}
}

// TestStressReapRenewRace exercises lease expiry under concurrency: holders
// renew or release while a reaper sweeps, and at the end every machine is
// accounted for exactly once (free, or held by a live lease).
func TestStressReapRenewRace(t *testing.T) {
	for _, engine := range []string{EngineOracle, EngineIndexed} {
		engine := engine
		t.Run("engine="+engine, func(t *testing.T) {
			t.Parallel()
			db := fleetDB(t, 48)
			clk := &fakeClock{now: time.Unix(5000, 0)}
			p := newSunPool(t, db, func(c *Config) {
				c.Engine = engine
				c.Clock = clk.Now
				c.LeaseTTL = 40 * time.Second
			})
			q := sunQuery(t)

			stop := make(chan struct{})
			var bg sync.WaitGroup
			bg.Add(1)
			go func() { // reaper
				defer bg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					clk.Advance(time.Second)
					p.Reap()
				}
			}()

			var wg sync.WaitGroup
			iters := 300
			if testing.Short() {
				iters = 60
			}
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l, err := p.Allocate(q)
						if err != nil {
							continue
						}
						switch i % 3 {
						case 0:
							// Heartbeat then let the lease expire: only the
							// reaper may free it.
							_ = p.Renew(l.ID)
						case 1:
							if err := p.Release(l.ID); err != nil {
								// The reaper may have beaten us to it; the
								// lease must then be unknown, not half-freed.
								if _, rerr := p.Allocate(q); rerr != nil && rerr != ErrExhausted {
									t.Errorf("pool wedged after release race: %v", rerr)
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(stop)
			bg.Wait()

			// Expire everything still outstanding; the pool must drain.
			clk.Advance(time.Hour)
			p.Reap()
			if p.Free() != p.Size() {
				t.Errorf("free = %d, want %d after final reap", p.Free(), p.Size())
			}
			allocs, _, _ := p.Stats()
			if allocs == 0 {
				t.Error("stress made no allocations")
			}
		})
	}
}
