// Package pool implements ActYP resource pools (Section 5.2.3):
// dynamically-created active objects that hold 1) machines aggregated
// according to the criteria encoded in the pool's name and 2) scheduling
// logic that orders those machines by a configurable objective. Pools
// answer allocation queries with machine leases, support the splitting and
// replication (instance-bias) mechanisms evaluated in Section 7, and mark
// their machines "taken" in the white-pages database while they hold them.
package pool

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"actyp/internal/policy"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// Lease is the answer a resource pool returns for a query: the machine's
// coordinates plus a session-specific access key (Section 2: "it gets back
// an IP address, a TCP port number, and a session-specific access key").
type Lease struct {
	ID           string    `json:"id"`           // unique lease handle
	Machine      string    `json:"machine"`      // machine name
	Addr         string    `json:"addr"`         // IP address
	ExecUnitPort int       `json:"execUnitPort"` // TCP port of the execution unit
	MountMgrPort int       `json:"mountMgrPort"` // TCP port of the PVFS mount manager
	AccessKey    string    `json:"accessKey"`    // session-specific access key
	Pool         string    `json:"pool"`         // granting pool instance
	Granted      time.Time `json:"granted"`
}

// ErrExhausted is returned when every machine in the pool is busy or
// filtered out for the requesting user.
var ErrExhausted = fmt.Errorf("pool: no machine available")

// Config describes a pool to create.
type Config struct {
	// Name is the signature/identifier pair that defines the aggregation
	// criteria. Required.
	Name query.PoolName
	// Family is the query family the name was derived from (default
	// "punch").
	Family string
	// Instance distinguishes replicas of the same pool name. Replica
	// instance i of Replicas n prefers every n-th machine starting at i.
	Instance int
	// Replicas is the replication stride (default 1: unreplicated).
	Replicas int
	// DB is the white-pages database. Required.
	DB *registry.DB
	// Objective orders machines; default least-load.
	Objective schedule.Objective
	// MaxMachines caps how many machines the pool loads (0: unlimited).
	MaxMachines int
	// Members, when non-nil, bypasses the white-pages walk and loads
	// exactly these machines (used by splitting and replication, where
	// the member set is decided by the splitter, not by criteria).
	Members []string
	// Exclusive marks machines taken in the database (default for fresh
	// pools). Replicas and split children of an already-taken member set
	// run with Exclusive=false.
	Exclusive bool
	// Clock supplies time; defaults to time.Now.
	Clock func() time.Time
	// ScanCost, when positive, charges this much wall-clock time per
	// cache entry scanned inside the allocation critical section. The
	// controlled experiments use it to model the paper's 2001-era linear
	// search, whose per-entry cost made single large pools a measurable
	// bottleneck (Figure 6). Production configurations leave it zero.
	ScanCost time.Duration
	// Policies resolves the usage-policy references of white-pages field
	// 19. Nil (or an unknown reference) means allow-all, preserving the
	// paper's behaviour for its unimplemented field.
	Policies *policy.Store
	// LeaseTTL enables lease expiry: leases not renewed within this
	// lifetime are reclaimed by Reap. Zero disables expiry.
	LeaseTTL time.Duration
}

// entry is one machine in the pool's local cache.
type entry struct {
	machine *registry.Machine
	cand    schedule.Candidate
	lease   string    // active lease id, "" when free
	expires time.Time // lease deadline; zero means no expiry
}

// Pool is a resource pool instance.
type Pool struct {
	name     query.PoolName
	family   string
	id       string // unique instance id, e.g. "arch,==/sun#2"
	instance int
	replicas int
	obj      schedule.Objective
	db       *registry.DB
	excl     bool
	clock    func() time.Time
	scanCost time.Duration
	policies *policy.Store

	mu       sync.Mutex
	cache    []*entry
	leases   map[string]*entry
	nextSeq  int
	closed   bool
	leaseTTL time.Duration
	// scratch buffers reused across Allocate calls (guarded by mu) so a
	// 3,200-entry scan does not allocate per query.
	scratch    []schedule.Candidate
	scratchPtr []*schedule.Candidate

	statMu    sync.Mutex
	allocs    int
	misses    int
	scanCount int64 // total entries scanned, for the linear-search benches
}

// New creates and initializes a pool object: it walks the white pages for
// machines matching the criteria encoded in the pool name (or adopts the
// explicit member list), loads them into its local cache, and — when
// exclusive — marks them taken in the database.
func New(cfg Config) (*Pool, error) {
	if cfg.Name.IsZero() {
		return nil, fmt.Errorf("pool: config needs a name")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("pool: config needs a database")
	}
	if cfg.Family == "" {
		cfg.Family = "punch"
	}
	if cfg.Objective == nil {
		cfg.Objective = schedule.LeastLoad{}
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Pool{
		name:     cfg.Name,
		family:   cfg.Family,
		id:       fmt.Sprintf("%s#%d", cfg.Name.String(), cfg.Instance),
		instance: cfg.Instance,
		replicas: cfg.Replicas,
		obj:      cfg.Objective,
		db:       cfg.DB,
		excl:     cfg.Exclusive,
		clock:    cfg.Clock,
		scanCost: cfg.ScanCost,
		policies: cfg.Policies,
		leaseTTL: cfg.LeaseTTL,
		leases:   make(map[string]*entry),
	}

	var machines []*registry.Machine
	if cfg.Members != nil {
		for _, name := range cfg.Members {
			m, err := cfg.DB.Get(name)
			if err != nil {
				return nil, fmt.Errorf("pool %s: member %s: %w", p.id, name, err)
			}
			machines = append(machines, m)
			if cfg.MaxMachines > 0 && len(machines) >= cfg.MaxMachines {
				break
			}
		}
	} else {
		crit, err := cfg.Name.Criteria(cfg.Family)
		if err != nil {
			return nil, fmt.Errorf("pool %s: bad name: %w", p.id, err)
		}
		if cfg.Exclusive {
			machines = cfg.DB.Take(crit, p.id, cfg.MaxMachines)
		} else {
			machines = cfg.DB.Select(crit)
			if cfg.MaxMachines > 0 && len(machines) > cfg.MaxMachines {
				machines = machines[:cfg.MaxMachines]
			}
		}
	}
	if len(machines) == 0 {
		if cfg.Exclusive {
			cfg.DB.ReleaseAll(p.id)
		}
		return nil, fmt.Errorf("pool %s: no machines match the aggregation criteria", p.id)
	}
	for _, m := range machines {
		p.cache = append(p.cache, &entry{machine: m, cand: candidateOf(m)})
	}
	return p, nil
}

func candidateOf(m *registry.Machine) schedule.Candidate {
	return schedule.Candidate{
		Name:       m.Static.Name,
		Load:       m.Dynamic.Load,
		FreeMemory: m.Dynamic.FreeMemory,
		FreeSwap:   m.Dynamic.FreeSwap,
		Speed:      m.Static.Speed,
		CPUs:       m.Static.CPUs,
		ActiveJobs: m.Dynamic.ActiveJobs,
	}
}

// Name returns the pool's signature/identifier name.
func (p *Pool) Name() query.PoolName { return p.name }

// ID returns the unique instance id (name + instance number).
func (p *Pool) ID() string { return p.id }

// Instance returns the replica number.
func (p *Pool) Instance() int { return p.instance }

// Size returns the number of machines in the cache.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}

// Free returns how many machines are currently unleased.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.cache {
		if e.lease == "" {
			n++
		}
	}
	return n
}

// Members returns the machine names in cache order.
func (p *Pool) Members() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.cache))
	for i, e := range p.cache {
		out[i] = e.machine.Static.Name
	}
	return out
}

// Allocate answers a basic query with a machine lease. It performs the
// paper's linear search over the cache, honouring the scheduling objective,
// the replication bias, machine usability, and the user- and tool-group
// access policies carried in the query. It returns ErrExhausted when no
// machine qualifies.
func (p *Pool) Allocate(q *query.Query) (*Lease, error) {
	userGroup := condStr(q, p.family, query.ClassUser, "accessgroup")
	toolGroup := condStr(q, p.family, query.ClassAppl, "tool")
	login := condStr(q, p.family, query.ClassUser, "login")
	// Pool managers route queries to the pool whose name matches, so
	// members normally satisfy the query by construction. A query whose
	// name differs was mis-routed (or sent directly); re-verify its rsrc
	// constraints per machine rather than handing out a wrong lease.
	verifyRsrc := query.Name(q) != p.name

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("pool %s: closed", p.id)
	}

	// One linear pass builds the candidate view; ineligible machines are
	// folded into the Busy flag so selection stays a single linear scan.
	// The scratch buffers live on the pool (mu held) to keep the hot
	// path allocation-free.
	if cap(p.scratch) < len(p.cache) {
		p.scratch = make([]schedule.Candidate, len(p.cache))
		p.scratchPtr = make([]*schedule.Candidate, len(p.cache))
	}
	cands := p.scratchPtr[:len(p.cache)]
	for i, e := range p.cache {
		c := &p.scratch[i]
		*c = e.cand
		m := e.machine
		c.Busy = e.lease != "" ||
			!m.Usable() || c.Load >= m.Static.MaxLoad ||
			(userGroup != "" && !m.AllowsUserGroup(userGroup)) ||
			(toolGroup != "" && !m.SupportsToolGroup(toolGroup)) ||
			(verifyRsrc && !m.Attrs().MatchRsrc(q)) ||
			p.deniedByPolicy(e, userGroup, toolGroup, login)
		cands[i] = c
	}
	p.statMu.Lock()
	p.scanCount += int64(len(cands))
	p.statMu.Unlock()
	if p.scanCost > 0 {
		// Charge the modelled per-entry search cost inside the critical
		// section: concurrent queries to the same pool instance serialize
		// on its scan, which is the bottleneck Figures 6-8 measure.
		time.Sleep(p.scanCost * time.Duration(len(cands)))
	}

	idx := schedule.SelectBiased(cands, p.obj, nil, p.instance, p.replicas)
	if idx < 0 {
		p.statMu.Lock()
		p.misses++
		p.statMu.Unlock()
		return nil, ErrExhausted
	}

	e := p.cache[idx]
	key, err := newAccessKey()
	if err != nil {
		return nil, fmt.Errorf("pool %s: %w", p.id, err)
	}
	p.nextSeq++
	// The access-key prefix makes the lease id globally unique: pool
	// instance ids are only unique within one directory, and two
	// administrative domains can both run an "arch,==/sun#0" whose
	// sequence numbers collide.
	lease := &Lease{
		ID:           fmt.Sprintf("%s:%d:%s", p.id, p.nextSeq, key[:8]),
		Machine:      e.machine.Static.Name,
		Addr:         e.machine.Access.Addr,
		ExecUnitPort: e.machine.Access.ExecUnitPort,
		MountMgrPort: e.machine.Access.MountMgrPort,
		AccessKey:    key,
		Pool:         p.id,
		Granted:      p.clock(),
	}
	e.lease = lease.ID
	if p.leaseTTL > 0 {
		e.expires = lease.Granted.Add(p.leaseTTL)
	} else {
		e.expires = time.Time{}
	}
	// Account the placed job locally so subsequent scheduling decisions
	// see the machine as more loaded even before the monitor reports it.
	e.cand.ActiveJobs++
	e.cand.Load += 1 / float64(maxInt(1, e.machine.Static.CPUs))
	p.leases[lease.ID] = e

	p.statMu.Lock()
	p.allocs++
	p.statMu.Unlock()
	return lease, nil
}

// Release frees the machine held by a lease.
func (p *Pool) Release(leaseID string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.leases[leaseID]
	if !ok {
		return fmt.Errorf("pool %s: unknown lease %s", p.id, leaseID)
	}
	delete(p.leases, leaseID)
	e.lease = ""
	if e.cand.ActiveJobs > 0 {
		e.cand.ActiveJobs--
	}
	e.cand.Load -= 1 / float64(maxInt(1, e.machine.Static.CPUs))
	if e.cand.Load < 0 {
		e.cand.Load = 0
	}
	return nil
}

// Refresh re-reads the dynamic fields of every cached machine from the
// white pages. This is the scheduling process's periodic resorting input:
// monitor updates land in the database and Refresh folds them into the
// cache, preserving locally-accounted jobs.
func (p *Pool) Refresh() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.cache {
		m, err := p.db.Get(e.machine.Static.Name)
		if err != nil {
			continue // machine unregistered; keep last view
		}
		local := e.cand.ActiveJobs - m.Dynamic.ActiveJobs
		if local < 0 {
			local = 0
		}
		e.machine = m
		e.cand = candidateOf(m)
		e.cand.ActiveJobs += local
		e.cand.Load += float64(local) / float64(maxInt(1, m.Static.CPUs))
	}
}

// Split partitions the pool's members into k contiguous, nearly equal
// member lists, for building split child pools (Figure 7). The pool itself
// is not modified.
func (p *Pool) Split(k int) ([][]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pool %s: split factor must be positive", p.id)
	}
	members := p.Members()
	if k > len(members) {
		return nil, fmt.Errorf("pool %s: cannot split %d machines into %d pools", p.id, len(members), k)
	}
	out := make([][]string, k)
	base, rem := len(members)/k, len(members)%k
	i := 0
	for part := 0; part < k; part++ {
		n := base
		if part < rem {
			n++
		}
		out[part] = append([]string(nil), members[i:i+n]...)
		i += n
	}
	return out, nil
}

// Close releases the pool's claim on its machines in the white pages and
// refuses further allocations. Outstanding leases remain valid records but
// can no longer be released through the pool.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	if p.excl {
		p.db.ReleaseAll(p.id)
	}
}

// Stats reports allocation counters: successful allocations, exhausted
// misses, and the total number of cache entries scanned (the linear-search
// cost driver of Figure 6).
func (p *Pool) Stats() (allocs, misses int, scanned int64) {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return p.allocs, p.misses, p.scanCount
}

// deniedByPolicy evaluates the machine's field-19 usage-policy metaprogram
// against the requester and the machine's live state. The caller holds
// p.mu.
func (p *Pool) deniedByPolicy(e *entry, group, tool, login string) bool {
	ref := e.machine.Policy.UsagePolicy
	if p.policies == nil || ref == "" {
		return false
	}
	pol, ok := p.policies.Lookup(ref)
	if !ok {
		return false // unresolvable reference behaves like the paper's unimplemented field
	}
	ctx := policy.Context{
		"load":       query.NumAttr(e.cand.Load),
		"freememory": query.NumAttr(e.cand.FreeMemory),
		"activejobs": query.NumAttr(float64(e.cand.ActiveJobs)),
		"machine":    query.StrAttr(e.machine.Static.Name),
	}
	if group != "" {
		ctx["group"] = query.StrAttr(group)
	}
	if tool != "" {
		ctx["tool"] = query.StrAttr(tool)
	}
	if login != "" {
		ctx["login"] = query.StrAttr(login)
	}
	return pol.Evaluate(ctx) == policy.Deny
}

func condStr(q *query.Query, family string, class query.Class, name string) string {
	c, ok := q.Lookup(query.Key{Family: family, Class: class, Name: name})
	if !ok || c.Op != query.OpEq {
		return ""
	}
	return c.Str
}

func newAccessKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("access key: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
