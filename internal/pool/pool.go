// Package pool implements ActYP resource pools (Section 5.2.3):
// dynamically-created active objects that hold 1) machines aggregated
// according to the criteria encoded in the pool's name and 2) scheduling
// logic that orders those machines by a configurable objective. Pools
// answer allocation queries with machine leases, support the splitting and
// replication (instance-bias) mechanisms evaluated in Section 7, and mark
// their machines "taken" in the white-pages database while they hold them.
//
// The allocation hot path is pluggable (see Allocator): the oracle engine
// is the paper's serialized linear search, the indexed engine answers
// concurrent queries from eligibility-bucketed heaps.
package pool

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/policy"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// Lease is the answer a resource pool returns for a query: the machine's
// coordinates plus a session-specific access key (Section 2: "it gets back
// an IP address, a TCP port number, and a session-specific access key").
type Lease struct {
	ID           string    `json:"id"`           // unique lease handle
	Machine      string    `json:"machine"`      // machine name
	Addr         string    `json:"addr"`         // IP address
	ExecUnitPort int       `json:"execUnitPort"` // TCP port of the execution unit
	MountMgrPort int       `json:"mountMgrPort"` // TCP port of the PVFS mount manager
	AccessKey    string    `json:"accessKey"`    // session-specific access key
	Pool         string    `json:"pool"`         // granting pool instance
	Granted      time.Time `json:"granted"`
}

// ErrExhausted is returned when every machine in the pool is busy or
// filtered out for the requesting user.
var ErrExhausted = fmt.Errorf("pool: no machine available")

// Config describes a pool to create.
type Config struct {
	// Name is the signature/identifier pair that defines the aggregation
	// criteria. Required.
	Name query.PoolName
	// Family is the query family the name was derived from (default
	// "punch").
	Family string
	// Instance distinguishes replicas of the same pool name. Replica
	// instance i of Replicas n prefers every n-th machine starting at i.
	Instance int
	// Replicas is the replication stride (default 1: unreplicated).
	Replicas int
	// DB is the white-pages database. Required.
	DB *registry.DB
	// Objective orders machines; default least-load.
	Objective schedule.Objective
	// MaxMachines caps how many machines the pool loads (0: unlimited).
	MaxMachines int
	// Members, when non-nil, bypasses the white-pages walk and loads
	// exactly these machines (used by splitting and replication, where
	// the member set is decided by the splitter, not by criteria).
	Members []string
	// Exclusive marks machines taken in the database (default for fresh
	// pools). Replicas and split children of an already-taken member set
	// run with Exclusive=false.
	Exclusive bool
	// Clock supplies time; defaults to time.Now.
	Clock func() time.Time
	// ScanCost, when positive, charges this much wall-clock time per
	// cache entry scanned inside the allocation critical section. The
	// controlled experiments use it to model the paper's 2001-era linear
	// search, whose per-entry cost made single large pools a measurable
	// bottleneck (Figure 6). Production configurations leave it zero.
	// A positive ScanCost pins the pool to the oracle engine: the model
	// only means something on a serialized scan.
	ScanCost time.Duration
	// Policies resolves the usage-policy references of white-pages field
	// 19. Nil (or an unknown reference) means allow-all, preserving the
	// paper's behaviour for its unimplemented field.
	Policies *policy.Store
	// LeaseTTL enables lease expiry: leases not renewed within this
	// lifetime are reclaimed by Reap. Zero disables expiry.
	LeaseTTL time.Duration
	// Engine selects the allocation engine, EngineOracle or
	// EngineIndexed. Empty picks the indexed engine unless ScanCost is
	// set (see ScanCost).
	Engine string
	// Events, when non-nil, subscribes the new pool to the registry change
	// stream the dispatcher drains: monitor updates then fold into the
	// cache incrementally (Apply) instead of through timed full Refreshes.
	// The pool unsubscribes itself on Close.
	Events *Dispatcher
	// Log, when non-nil, observes every lease grant, renewal, and release
	// (reaps included) — the durability journal's feed. See LeaseLog.
	Log LeaseLog
}

// Pool is a resource pool instance. The allocation state lives in the
// engine; the Pool contributes lease identity (ids, access keys), TTL
// policy, and lifecycle.
type Pool struct {
	name     query.PoolName
	family   string
	id       string // unique instance id, e.g. "arch,==/sun#2"
	instance int
	replicas int
	db       *registry.DB
	excl     bool
	clock    func() time.Time
	engine   Allocator
	events   *Dispatcher // non-nil: subscribed to the registry change stream
	log      LeaseLog    // non-nil: lease ops are journaled
	nextSeq  atomic.Int64

	// life guards lifecycle and TTL policy only — never the allocation
	// hot path, which engines synchronize internally. Lease operations
	// hold it shared so Close can wait out in-flight grants.
	life     sync.RWMutex
	closed   bool
	leaseTTL time.Duration
}

// New creates and initializes a pool object: it walks the white pages for
// machines matching the criteria encoded in the pool name (or adopts the
// explicit member list), loads them into the allocation engine, and —
// when exclusive — marks them taken in the database.
func New(cfg Config) (*Pool, error) {
	if cfg.Name.IsZero() {
		return nil, fmt.Errorf("pool: config needs a name")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("pool: config needs a database")
	}
	kind, err := resolveEngine(cfg.Engine, cfg.ScanCost)
	if err != nil {
		return nil, err
	}
	if cfg.Family == "" {
		cfg.Family = "punch"
	}
	if cfg.Objective == nil {
		cfg.Objective = schedule.LeastLoad{}
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Pool{
		name:     cfg.Name,
		family:   cfg.Family,
		id:       fmt.Sprintf("%s#%d", cfg.Name.String(), cfg.Instance),
		instance: cfg.Instance,
		replicas: cfg.Replicas,
		db:       cfg.DB,
		excl:     cfg.Exclusive,
		clock:    cfg.Clock,
		log:      cfg.Log,
		leaseTTL: cfg.LeaseTTL,
	}

	var machines []*registry.Machine
	if cfg.Members != nil {
		for _, name := range cfg.Members {
			m, err := cfg.DB.Get(name)
			if err != nil {
				return nil, fmt.Errorf("pool %s: member %s: %w", p.id, name, err)
			}
			machines = append(machines, m)
			if cfg.MaxMachines > 0 && len(machines) >= cfg.MaxMachines {
				break
			}
		}
	} else {
		crit, err := cfg.Name.Criteria(cfg.Family)
		if err != nil {
			return nil, fmt.Errorf("pool %s: bad name: %w", p.id, err)
		}
		if cfg.Exclusive {
			machines = cfg.DB.Take(crit, p.id, cfg.MaxMachines)
		} else {
			machines = cfg.DB.Select(crit)
			if cfg.MaxMachines > 0 && len(machines) > cfg.MaxMachines {
				machines = machines[:cfg.MaxMachines]
			}
		}
	}
	if len(machines) == 0 {
		// Nothing was taken, so there is nothing to release — and a
		// ReleaseAll here could strip the claims of a racing pool that
		// carries the same instance id.
		return nil, fmt.Errorf("pool %s: no machines match the aggregation criteria", p.id)
	}
	p.engine = newAllocator(kind, machines, engineConfig{
		poolID:   p.id,
		obj:      cfg.Objective,
		instance: cfg.Instance,
		replicas: cfg.Replicas,
		scanCost: cfg.ScanCost,
		policies: cfg.Policies,
	})
	if cfg.Events != nil {
		p.events = cfg.Events
		p.events.Subscribe(p)
		// The member snapshot above predates the subscription, so events
		// dispatched in between never reached this pool — and unlike load
		// updates, a state flap or param change in that window is one-shot
		// and would stay stale forever. One full re-read after subscribing
		// closes the gap: everything earlier lands here, everything later
		// arrives as events.
		p.engine.Refresh(cfg.DB.Get)
	}
	return p, nil
}

func candidateOf(m *registry.Machine) schedule.Candidate {
	return schedule.Candidate{
		Name:       m.Static.Name,
		Load:       m.Dynamic.Load,
		FreeMemory: m.Dynamic.FreeMemory,
		FreeSwap:   m.Dynamic.FreeSwap,
		Speed:      m.Static.Speed,
		CPUs:       m.Static.CPUs,
		ActiveJobs: m.Dynamic.ActiveJobs,
	}
}

// Name returns the pool's signature/identifier name.
func (p *Pool) Name() query.PoolName { return p.name }

// ID returns the unique instance id (name + instance number).
func (p *Pool) ID() string { return p.id }

// Instance returns the replica number.
func (p *Pool) Instance() int { return p.instance }

// Engine returns the allocation engine kind backing this pool.
func (p *Pool) Engine() string { return p.engine.Kind() }

// Size returns the number of machines in the cache.
func (p *Pool) Size() int { return p.engine.Size() }

// Free returns how many machines are currently unleased.
func (p *Pool) Free() int { return p.engine.Free() }

// Members returns the machine names in cache order.
func (p *Pool) Members() []string { return p.engine.Members() }

// Leases enumerates the live leases the engine tracks, sorted by id.
func (p *Pool) Leases() []LeaseInfo {
	out := p.engine.Leases()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Allocate answers a basic query with a machine lease. It performs the
// engine's search over the cache, honouring the scheduling objective, the
// replication bias, machine usability, and the user- and tool-group access
// policies carried in the query. It returns ErrExhausted when no machine
// qualifies.
func (p *Pool) Allocate(q *query.Query) (*Lease, error) {
	req := &allocRequest{
		userGroup: condStr(q, p.family, query.ClassUser, "accessgroup"),
		toolGroup: condStr(q, p.family, query.ClassAppl, "tool"),
		login:     condStr(q, p.family, query.ClassUser, "login"),
	}
	// Pool managers route queries to the pool whose name matches, so
	// members normally satisfy the query by construction. A query whose
	// name differs was mis-routed (or sent directly); re-verify its rsrc
	// constraints per machine rather than handing out a wrong lease.
	if query.Name(q) != p.name {
		req.verify = q
	}

	p.life.RLock()
	defer p.life.RUnlock()
	if p.closed {
		return nil, fmt.Errorf("pool %s: closed", p.id)
	}
	granted := p.clock()
	if p.leaseTTL > 0 {
		req.expires = granted.Add(p.leaseTTL)
	}
	// Minted by the engine only once a machine is claimed, so misses pay
	// no id-generation work. The access-key prefix makes the lease id
	// globally unique: pool instance ids are only unique within one
	// directory, and two administrative domains can both run an
	// "arch,==/sun#0" whose sequence numbers collide.
	var leaseID, key string
	req.newID = func() (string, error) {
		k, err := newAccessKey()
		if err != nil {
			return "", fmt.Errorf("pool %s: %w", p.id, err)
		}
		key = k
		leaseID = fmt.Sprintf("%s:%d:%s", p.id, p.nextSeq.Add(1), k[:8])
		return leaseID, nil
	}
	m, err := p.engine.Allocate(req)
	if err != nil {
		return nil, err
	}
	lease := &Lease{
		ID:           leaseID,
		Machine:      m.Static.Name,
		Addr:         m.Access.Addr,
		ExecUnitPort: m.Access.ExecUnitPort,
		MountMgrPort: m.Access.MountMgrPort,
		AccessKey:    key,
		Pool:         p.id,
		Granted:      granted,
	}
	if p.log != nil {
		p.log.LeaseGranted(lease, req.expires)
	}
	return lease, nil
}

// Release frees the machine held by a lease. It deliberately skips the
// closed check — outstanding leases stay releasable while the pool shuts
// down — but still holds the lifecycle lock shared so Close waits out
// in-flight releases like every other lease operation.
func (p *Pool) Release(leaseID string) error {
	p.life.RLock()
	defer p.life.RUnlock()
	if err := p.engine.Release(leaseID); err != nil {
		return err
	}
	if p.log != nil {
		p.log.LeaseReleased(leaseID)
	}
	return nil
}

// Refresh re-reads the dynamic fields of every cached machine from the
// white pages. This is the scheduling process's periodic resorting input
// in poll mode — and the resync fallback of the event path: monitor
// updates land in the database and Refresh folds them into the cache,
// preserving locally-accounted jobs.
func (p *Pool) Refresh() {
	p.engine.Refresh(p.db.Get)
}

// Apply folds registry change events into the cache incrementally — the
// event-driven counterpart of Refresh, driven by a Dispatcher. Only the
// machines the events name are touched; events for non-members are
// ignored.
func (p *Pool) Apply(events []registry.Event) {
	p.engine.Apply(events, p.db.Get)
}

// Closed reports whether the pool has shut down (dispatchers drop closed
// pools lazily).
func (p *Pool) Closed() bool {
	p.life.RLock()
	defer p.life.RUnlock()
	return p.closed
}

// Split partitions the pool's members into k contiguous, nearly equal
// member lists, for building split child pools (Figure 7). The pool itself
// is not modified.
func (p *Pool) Split(k int) ([][]string, error) {
	if k <= 0 {
		return nil, fmt.Errorf("pool %s: split factor must be positive", p.id)
	}
	members := p.Members()
	if k > len(members) {
		return nil, fmt.Errorf("pool %s: cannot split %d machines into %d pools", p.id, len(members), k)
	}
	out := make([][]string, k)
	base, rem := len(members)/k, len(members)%k
	i := 0
	for part := 0; part < k; part++ {
		n := base
		if part < rem {
			n++
		}
		out[part] = append([]string(nil), members[i:i+n]...)
		i += n
	}
	return out, nil
}

// Close releases the pool's claim on its machines in the white pages and
// refuses further allocations. Outstanding leases remain valid records but
// can no longer be released through the pool. Only the pool's own members
// are released — never ReleaseAll on the instance id, which two pools can
// momentarily share when managers race to create the same pool name (the
// loser's close must not strip the winner's claims).
func (p *Pool) Close() {
	p.life.Lock()
	if p.closed {
		p.life.Unlock()
		return
	}
	p.closed = true
	p.life.Unlock()
	if p.events != nil {
		p.events.Unsubscribe(p)
	}
	if p.excl {
		p.db.Release(p.id, p.Members()...)
	}
}

// Stats reports allocation counters: successful allocations, exhausted
// misses, and the total number of cache entries examined during selection
// (for the oracle, the linear-search cost driver of Figure 6).
func (p *Pool) Stats() (allocs, misses int, scanned int64) {
	return p.engine.Stats()
}

func condStr(q *query.Query, family string, class query.Class, name string) string {
	c, ok := q.Lookup(query.Key{Family: family, Class: class, Name: name})
	if !ok || c.Op != query.OpEq {
		return ""
	}
	return c.Str
}

func newAccessKey() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("access key: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
