package pool

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/policy"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// indexedAlloc is the concurrent allocation engine. Machines are bucketed
// by their discrete eligibility gates — the user-group list, the
// tool-group list, and the usage-policy reference, the only per-machine
// inputs an allocation filters on wholesale — and each bucket keeps its
// free entries in heaps ordered by the scheduling objective (one heap for
// the replica's preferred stride, one for the rest, Section 7 bias).
//
// Allocate visits only the buckets whose gates admit the requester, pops
// each bucket's best eligible entry under that bucket's own mutex, and
// claims the global best: O(buckets + log n) instead of the oracle's full
// scan, with no engine-wide critical section. A popped entry is invisible
// to every other allocation, so claiming is race-free without a global
// lock; losers are pushed back. Dynamic eligibility (machine down, load
// ceiling, per-request policy verdicts, mis-routed-query verification) is
// re-checked per candidate at pop time, exactly as the oracle folds it
// into Busy.
//
// Lock order: the engine RWMutex is held in read mode for every lease
// operation and in write mode only by Refresh (which rebuilds buckets
// wholesale, the resync fallback) and Apply (which folds registry change
// events in bounded chunks, repositioning or re-bucketing only the
// entries the events name). Bucket mutexes and the lease-table mutex are
// leaves: never is one taken while holding another.
// Entries mutate their candidate view only while exclusively held —
// popped from a heap but not yet in the lease table, or removed from the
// lease table but not yet pushed back.
type indexedAlloc struct {
	cfg engineConfig

	rw      sync.RWMutex       // write: Refresh/Apply restructure buckets; read: everything else
	entries []*ientry          // cache order, immutable after construction
	byName  map[string]*ientry // name -> entry, immutable after construction
	groups  []*igroup          // bucket list, rebuilt by Refresh, sorted key order

	leaseMu sync.Mutex
	leases  map[string]*ientry

	claiming atomic.Int64  // claims mid-flight (may hold entries out of the heaps)
	claimGen atomic.Uint64 // completed claim attempts, for miss revalidation

	free    atomic.Int64
	allocs  atomic.Int64
	misses  atomic.Int64
	scanned atomic.Int64 // entries popped while selecting
}

// ientry is one machine in the indexed engine.
type ientry struct {
	idx     int  // cache position: the oracle's scan order, used for tie-breaks
	pref    bool // on this replica's preferred stride (idx%replicas == instance%replicas)
	pos     int  // index in its bucket heap; -1 while leased or mid-claim
	machine *registry.Machine
	cand    schedule.Candidate
	lease   string
	expires time.Time
	grp     *igroup
}

// igroup is one eligibility bucket.
type igroup struct {
	key        string
	userGroups []string
	toolGroups []string
	policyRef  string

	mu    sync.Mutex
	pref  iheap // free entries on the preferred stride (all entries when unreplicated)
	other iheap
}

// admits reports whether every machine in the bucket passes the request's
// group gates, mirroring Machine.AllowsUserGroup / SupportsToolGroup.
func (g *igroup) admits(userGroup, toolGroup string) bool {
	return (userGroup == "" || listAdmits(g.userGroups, userGroup)) &&
		(toolGroup == "" || listAdmits(g.toolGroups, toolGroup))
}

// listAdmits mirrors the machine-record semantics: an empty list admits
// everyone.
func listAdmits(list []string, member string) bool {
	if len(list) == 0 {
		return true
	}
	for _, v := range list {
		if v == member {
			return true
		}
	}
	return false
}

// groupKey derives the bucket identity from the machine's gate attributes.
func groupKey(m *registry.Machine) string {
	return strings.Join(m.Policy.UserGroups, "\x1f") + "\x1e" +
		strings.Join(m.Policy.ToolGroups, "\x1f") + "\x1e" +
		m.Policy.UsagePolicy
}

func newIndexedAlloc(machines []*registry.Machine, cfg engineConfig) *indexedAlloc {
	x := &indexedAlloc{
		cfg:    cfg,
		leases: make(map[string]*ientry),
		byName: make(map[string]*ientry, len(machines)),
	}
	for i, m := range machines {
		e := &ientry{
			idx:     i,
			pos:     -1,
			machine: m,
			cand:    candidateOf(m),
		}
		e.pref = cfg.replicas <= 1 || i%cfg.replicas == cfg.instance%cfg.replicas
		x.entries = append(x.entries, e)
		x.byName[m.Static.Name] = e
	}
	x.free.Store(int64(len(x.entries)))
	x.rebuildGroups()
	return x
}

// rebuildGroups re-derives the bucket partition and re-heapifies the free
// entries. The caller must hold rw exclusively (or be the constructor).
func (x *indexedAlloc) rebuildGroups() {
	byKey := make(map[string]*igroup)
	for _, e := range x.entries {
		key := groupKey(e.machine)
		g, ok := byKey[key]
		if !ok {
			g = &igroup{
				key:        key,
				userGroups: e.machine.Policy.UserGroups,
				toolGroups: e.machine.Policy.ToolGroups,
				policyRef:  e.machine.Policy.UsagePolicy,
			}
			byKey[key] = g
		}
		e.grp = g
		if e.lease != "" {
			e.pos = -1
			continue // leased entries rejoin a heap on release
		}
		if e.pref {
			g.pref.items = append(g.pref.items, e)
		} else {
			g.other.items = append(g.other.items, e)
		}
	}
	x.groups = x.groups[:0]
	for _, g := range byKey {
		g.pref.init(x)
		g.other.init(x)
		x.groups = append(x.groups, g)
	}
	sort.Slice(x.groups, func(i, j int) bool { return x.groups[i].key < x.groups[j].key })
}

// entryLess is the total order the oracle's linear search induces: the
// scheduling objective first, cache position as the tie-break (the scan
// keeps the earliest of equals).
func (x *indexedAlloc) entryLess(a, b *ientry) bool {
	if x.cfg.obj.Less(&a.cand, &b.cand) {
		return true
	}
	if x.cfg.obj.Less(&b.cand, &a.cand) {
		return false
	}
	return a.idx < b.idx
}

// Kind implements Allocator.
func (x *indexedAlloc) Kind() string { return EngineIndexed }

// Size implements Allocator.
func (x *indexedAlloc) Size() int { return len(x.entries) }

// Free implements Allocator.
func (x *indexedAlloc) Free() int { return int(x.free.Load()) }

// Members implements Allocator. The read lock orders the e.machine reads
// against Refresh's pointer swaps.
func (x *indexedAlloc) Members() []string {
	x.rw.RLock()
	defer x.rw.RUnlock()
	out := make([]string, len(x.entries))
	for i, e := range x.entries {
		out[i] = e.machine.Static.Name
	}
	return out
}

// eligible re-checks the dynamic gates the oracle folds into Busy. The
// caller holds the entry's bucket mutex.
func (x *indexedAlloc) eligible(e *ientry, pol *policy.Policy, req *allocRequest) bool {
	m := e.machine
	if !m.Usable() || e.cand.Load >= m.Static.MaxLoad {
		return false
	}
	if req.verify != nil && !m.Attrs().MatchRsrc(req.verify) {
		return false
	}
	return !policyDenied(pol, m, &e.cand, req.userGroup, req.toolGroup, req.login)
}

// claim pops the globally best eligible free entry from the admitted
// buckets' heaps (preferred or fallback stride) and returns it exclusively
// held, or nil when every admitted bucket is exhausted. The caller holds
// rw in read mode.
func (x *indexedAlloc) claim(req *allocRequest, usePref bool) *ientry {
	var best *ientry
	for _, g := range x.groups {
		if !g.admits(req.userGroup, req.toolGroup) {
			continue
		}
		g.mu.Lock()
		h := &g.other
		if usePref {
			h = &g.pref
		}
		// Resolve the bucket's usage policy per request, as the oracle
		// does per scan, so policies registered after pool creation are
		// honoured — but only once the bucket is known non-empty, so
		// exhausted buckets cost no Store lock traffic. The Store's own
		// RWMutex is a leaf; taking it under g.mu cannot deadlock.
		var pol *policy.Policy
		if h.len() > 0 {
			pol = lookupPolicy(x.cfg.policies, g.policyRef)
		}
		// Pop until an eligible entry surfaces; dynamically ineligible
		// ones (machine down, over the load ceiling, policy-denied) go
		// back afterwards so they stay allocatable once the condition
		// clears.
		var rejected []*ientry
		var cand *ientry
		for h.len() > 0 {
			e := h.pop(x)
			x.scanned.Add(1)
			if x.eligible(e, pol, req) {
				cand = e
				break
			}
			rejected = append(rejected, e)
		}
		for _, e := range rejected {
			h.push(x, e)
		}
		var demoted *ientry
		if cand != nil {
			if best == nil || x.entryLess(cand, best) {
				demoted, best = best, cand
			} else {
				h.push(x, cand)
			}
		}
		g.mu.Unlock()
		if demoted != nil {
			// Push the displaced candidate back under its own bucket's
			// lock only — never while holding another bucket's.
			x.pushFree(demoted)
		}
	}
	return best
}

// pushFree returns an exclusively-held free entry to its bucket's heap.
func (x *indexedAlloc) pushFree(e *ientry) {
	g := e.grp
	g.mu.Lock()
	if e.pref {
		g.pref.push(x, e)
	} else {
		g.other.push(x, e)
	}
	g.mu.Unlock()
}

// Allocate implements Allocator. Preferred-stride entries win over the
// rest across all buckets, matching schedule.SelectBiased.
//
// A racing claim transiently holds its candidates outside the heaps, so a
// miss that overlaps one may be spurious. A miss is only final once an
// attempt overlapped no other claim (none in flight, none completed
// during ours); otherwise Allocate retries, bounded so sustained churn on
// a genuinely exhausted pool cannot livelock it. Serially the first
// attempt is always conclusive.
func (x *indexedAlloc) Allocate(req *allocRequest) (*registry.Machine, error) {
	x.rw.RLock()
	defer x.rw.RUnlock()
	var e *ientry
	for attempt := 0; ; attempt++ {
		gen := x.claimGen.Load()
		x.claiming.Add(1)
		e = x.claim(req, true)
		if e == nil && x.cfg.replicas > 1 {
			e = x.claim(req, false)
		}
		if e != nil {
			break // settled below, still flagged as in flight
		}
		// Generation first, then the in-flight drop: an observer that
		// sees claiming==0 is then guaranteed to also see our generation
		// bump, so it cannot judge a miss conclusive while our pushbacks
		// were the reason its scan came up empty.
		x.claimGen.Add(1)
		x.claiming.Add(-1)
		conclusive := x.claiming.Load() == 0 && x.claimGen.Load() == gen+1
		if conclusive || attempt >= 3 {
			x.misses.Add(1)
			return nil, ErrExhausted
		}
		runtime.Gosched()
	}
	id, err := req.newID()
	if err != nil {
		// The claim stays flagged in flight until the entry is back in
		// its heap, so no concurrent miss can be judged conclusive while
		// the machine is invisible yet destined to stay free.
		x.pushFree(e)
		x.claimGen.Add(1)
		x.claiming.Add(-1)
		return nil, err
	}
	// The entry is exclusively held: popped from its heap and not yet in
	// the lease table, so no other goroutine can observe these writes.
	e.lease = id
	e.expires = req.expires
	placeAccounting(&e.cand, e.machine)
	x.leaseMu.Lock()
	x.leases[id] = e
	x.leaseMu.Unlock()
	x.free.Add(-1)
	// Once the lease is published the machine is genuinely gone, so a
	// concurrent miss that now looks conclusive is correct.
	x.claimGen.Add(1)
	x.claiming.Add(-1)
	x.allocs.Add(1)
	return e.machine, nil
}

// Adopt implements Allocator: recovery re-installs a replayed lease on
// its machine. It takes the engine lock exclusively — recovery runs
// before the pool serves, so there is no hot path to contend with, and
// exclusivity guarantees the entry is either in its heap or leased.
func (x *indexedAlloc) Adopt(leaseID, machine string, expires time.Time) error {
	x.rw.Lock()
	defer x.rw.Unlock()
	e, ok := x.byName[machine]
	if !ok {
		return fmt.Errorf("pool %s: adopt %s: machine %s not in cache", x.cfg.poolID, leaseID, machine)
	}
	if e.lease == leaseID {
		return nil // idempotent re-adoption
	}
	if e.lease != "" {
		return fmt.Errorf("pool %s: adopt %s: machine %s already leased under %s",
			x.cfg.poolID, leaseID, machine, e.lease)
	}
	if e.pos >= 0 {
		x.heapOf(e).remove(x, e.pos)
	}
	e.lease = leaseID
	e.expires = expires
	placeAccounting(&e.cand, e.machine)
	x.leaseMu.Lock()
	x.leases[leaseID] = e
	x.leaseMu.Unlock()
	x.free.Add(-1)
	return nil
}

// Release implements Allocator.
func (x *indexedAlloc) Release(leaseID string) error {
	x.rw.RLock()
	defer x.rw.RUnlock()
	x.leaseMu.Lock()
	e, ok := x.leases[leaseID]
	if ok {
		delete(x.leases, leaseID)
	}
	x.leaseMu.Unlock()
	if !ok {
		return fmt.Errorf("pool %s: unknown lease %s", x.cfg.poolID, leaseID)
	}
	x.releaseEntry(e)
	return nil
}

// releaseEntry undoes the local load accounting on an exclusively-held
// entry (just removed from the lease table) and returns it to its bucket.
func (x *indexedAlloc) releaseEntry(e *ientry) {
	e.lease = ""
	releaseAccounting(&e.cand, e.machine)
	x.pushFree(e)
	x.free.Add(1)
}

// Renew implements Allocator.
func (x *indexedAlloc) Renew(leaseID string, expires time.Time) error {
	x.rw.RLock()
	defer x.rw.RUnlock()
	x.leaseMu.Lock()
	defer x.leaseMu.Unlock()
	e, ok := x.leases[leaseID]
	if !ok {
		return fmt.Errorf("pool %s: unknown lease %s", x.cfg.poolID, leaseID)
	}
	if !expires.IsZero() {
		e.expires = expires
	}
	return nil
}

// Reap implements Allocator.
func (x *indexedAlloc) Reap(now time.Time) []string {
	x.rw.RLock()
	defer x.rw.RUnlock()
	x.leaseMu.Lock()
	var expired []*ientry
	var ids []string
	for id, e := range x.leases {
		if e.expires.IsZero() || e.expires.After(now) {
			continue
		}
		delete(x.leases, id)
		expired = append(expired, e)
		ids = append(ids, id)
	}
	x.leaseMu.Unlock()
	for _, e := range expired {
		x.releaseEntry(e)
	}
	return ids
}

// Refresh implements Allocator. It runs exclusively: gate attributes may
// have changed, so the bucket partition is rebuilt wholesale. This is the
// resync fallback of the event path; steady-state freshness flows through
// Apply instead.
func (x *indexedAlloc) Refresh(get func(name string) (*registry.Machine, error)) {
	x.rw.Lock()
	defer x.rw.Unlock()
	for _, e := range x.entries {
		m, err := get(e.machine.Static.Name)
		if err != nil {
			continue // machine unregistered; keep last view
		}
		e.machine = m
		refreshCandidate(&e.cand, m)
	}
	x.rebuildGroups()
}

// applyChunk bounds how many events one exclusive critical section folds:
// a sustained event stream interleaves with allocations in short windows
// instead of recreating the stop-the-world rebuild Apply exists to remove.
const applyChunk = 256

// Apply implements Allocator: the incremental counterpart of Refresh. Only
// machines named by events are touched — a DynamicUpdated event carries its
// new snapshot and costs one heap reposition (O(log bucket)); every other
// kind re-reads the record through get and re-buckets the entry only when
// its gate key actually changed. Events for machines outside the cache are
// ignored, and a failing get keeps the last view, exactly as Refresh does.
func (x *indexedAlloc) Apply(events []registry.Event, get func(name string) (*registry.Machine, error)) {
	// Membership pre-filter, outside any lock: byName is immutable after
	// construction, so a pool holding few of the fleet's machines pays
	// exclusive-lock time for its own changes, not for every sweep event
	// the dispatcher fans out. The shared batch is never mutated (other
	// pools receive the same slice).
	mine := 0
	for _, ev := range events {
		if _, ok := x.byName[ev.Name]; ok {
			mine++
		}
	}
	if mine == 0 {
		return
	}
	if mine < len(events) {
		filtered := make([]registry.Event, 0, mine)
		for _, ev := range events {
			if _, ok := x.byName[ev.Name]; ok {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
	}
	for len(events) > 0 {
		n := min(applyChunk, len(events))
		x.applyBatch(events[:n], get)
		events = events[n:]
	}
}

func (x *indexedAlloc) applyBatch(events []registry.Event, get func(name string) (*registry.Machine, error)) {
	x.rw.Lock()
	defer x.rw.Unlock()
	// Under the exclusive lock no claim is in flight, so every entry is
	// either in its bucket heap (pos >= 0) or in the lease table.
	for _, ev := range events {
		e, ok := x.byName[ev.Name]
		if !ok {
			continue // not a member of this pool
		}
		if ev.Kind == registry.EventDynamicUpdated {
			// The event carries the whole update: no database read. The old
			// record may still be held by a caller that just allocated it,
			// so it is never mutated in place — clone-and-swap, shallowly
			// (Policy slices are immutable once loaded).
			m := *e.machine
			m.Dynamic = ev.Dynamic
			e.machine = &m
			x.reposition(e)
			continue
		}
		m, err := get(ev.Name)
		if err != nil {
			continue // machine unregistered; keep last view
		}
		e.machine = m
		x.rebucket(e, m)
	}
}

// reposition folds the entry's refreshed record into its candidate view
// and restores heap order around it (leased entries re-sort on release).
func (x *indexedAlloc) reposition(e *ientry) {
	refreshCandidate(&e.cand, e.machine)
	if e.pos >= 0 {
		x.heapOf(e).fix(x, e.pos)
	}
}

// rebucket is reposition plus gate maintenance: when the refreshed record's
// gate key changed, the entry moves to its new bucket (created and inserted
// in key order if unseen; buckets emptied this way linger harmlessly until
// the next full Refresh sweeps them).
func (x *indexedAlloc) rebucket(e *ientry, m *registry.Machine) {
	refreshCandidate(&e.cand, m)
	key := groupKey(m)
	if key == e.grp.key {
		if e.pos >= 0 {
			x.heapOf(e).fix(x, e.pos)
		}
		return
	}
	if e.pos >= 0 {
		x.heapOf(e).remove(x, e.pos)
	}
	e.grp = x.groupFor(key, m)
	if e.lease == "" {
		x.heapOf(e).push(x, e)
	}
}

// heapOf returns the heap the entry belongs to inside its bucket.
func (x *indexedAlloc) heapOf(e *ientry) *iheap {
	if e.pref {
		return &e.grp.pref
	}
	return &e.grp.other
}

// groupFor finds (or creates, preserving sorted key order) the bucket for
// a gate key. The caller holds rw exclusively.
func (x *indexedAlloc) groupFor(key string, m *registry.Machine) *igroup {
	i := sort.Search(len(x.groups), func(i int) bool { return x.groups[i].key >= key })
	if i < len(x.groups) && x.groups[i].key == key {
		return x.groups[i]
	}
	g := &igroup{
		key:        key,
		userGroups: m.Policy.UserGroups,
		toolGroups: m.Policy.ToolGroups,
		policyRef:  m.Policy.UsagePolicy,
	}
	x.groups = append(x.groups, nil)
	copy(x.groups[i+1:], x.groups[i:])
	x.groups[i] = g
	return g
}

// Stats implements Allocator. Scanned counts heap pops, not full-cache
// passes: with every machine eligible it stays near one per allocation,
// which is the point.
func (x *indexedAlloc) Stats() (allocs, misses int, scanned int64) {
	return int(x.allocs.Load()), int(x.misses.Load()), x.scanned.Load()
}

// Leases implements Allocator.
func (x *indexedAlloc) Leases() []LeaseInfo {
	x.rw.RLock()
	defer x.rw.RUnlock()
	out := make([]LeaseInfo, 0, len(x.leases))
	for id, e := range x.leases {
		out = append(out, LeaseInfo{ID: id, Machine: e.machine.Static.Name, Expires: e.expires})
	}
	return out
}

// iheap is a binary min-heap of free entries under the engine's total
// order. Each resident entry tracks its index (ientry.pos), so Apply can
// reposition or remove an arbitrary entry in O(log n) when a change event
// reorders or re-buckets it; entries outside any heap carry pos == -1.
type iheap struct {
	items []*ientry
}

func (h *iheap) len() int { return len(h.items) }

// init heapifies items in place.
func (h *iheap) init(x *indexedAlloc) {
	for i, e := range h.items {
		e.pos = i
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(x, i)
	}
}

func (h *iheap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].pos = i
	h.items[j].pos = j
}

func (h *iheap) push(x *indexedAlloc, e *ientry) {
	h.items = append(h.items, e)
	e.pos = len(h.items) - 1
	h.siftUp(x, e.pos)
}

func (h *iheap) pop(x *indexedAlloc) *ientry {
	n := len(h.items)
	top := h.items[0]
	top.pos = -1
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.items[0].pos = 0
		h.siftDown(x, 0)
	}
	return top
}

// remove detaches the entry at index i, preserving heap order.
func (h *iheap) remove(x *indexedAlloc, i int) *ientry {
	e := h.items[i]
	n := len(h.items) - 1
	if i != n {
		h.items[i] = h.items[n]
		h.items[i].pos = i
	}
	h.items[n] = nil
	h.items = h.items[:n]
	e.pos = -1
	if i < n {
		h.fix(x, i)
	}
	return e
}

// fix restores heap order around index i after items[i]'s key changed in
// place.
func (h *iheap) fix(x *indexedAlloc, i int) {
	e := h.items[i]
	h.siftDown(x, i)
	if e.pos == i {
		h.siftUp(x, i)
	}
}

func (h *iheap) siftUp(x *indexedAlloc, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !x.entryLess(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *iheap) siftDown(x *indexedAlloc, i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && x.entryLess(h.items[left], h.items[smallest]) {
			smallest = left
		}
		if right < n && x.entryLess(h.items[right], h.items[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
