package pool

import (
	"sync"
	"sync/atomic"

	"actyp/internal/registry"
)

// Dispatcher is the freshness bridge between the white pages and live
// pools: one registry change-stream subscription fanned out to every
// subscribed pool. Monitor updates reach pool caches as they happen —
// each batch folds through the engines' incremental Apply — instead of
// through the timer-driven full Refresh of poll mode, and when the
// subscription ring overflows and drops to its resync marker, the
// dispatcher degrades every pool to exactly that full Refresh. One
// dispatcher serves any number of pools; pools subscribe at creation
// (Config.Events) and unsubscribe when they close.
type Dispatcher struct {
	sub *registry.Subscription

	// pools is keyed by identity, not instance id: managers racing to
	// create one pool name momentarily hold two pools with the same id,
	// and the loser's Close must never detach the surviving winner.
	mu    sync.Mutex
	pools map[*Pool]struct{}
	stop  chan struct{}
	done  chan struct{}

	batches atomic.Int64
	applied atomic.Int64
	resyncs atomic.Int64
}

// NewDispatcher subscribes to db's change stream with a ring of the given
// capacity (<= 0 selects registry.DefaultWatchBuffer; coalescing bounds
// the backlog to one slot per machine and kind, so a fleet-sized ring
// never overflows under steady monitor sweeps). Call Start to begin
// draining and Stop to detach.
func NewDispatcher(db *registry.DB, buffer int) *Dispatcher {
	return &Dispatcher{
		sub:   db.Watch(buffer),
		pools: make(map[*Pool]struct{}),
	}
}

// Subscribe routes future change events to the pool.
func (d *Dispatcher) Subscribe(p *Pool) {
	d.mu.Lock()
	d.pools[p] = struct{}{}
	d.mu.Unlock()
}

// Unsubscribe stops routing events to the pool.
func (d *Dispatcher) Unsubscribe(p *Pool) {
	d.mu.Lock()
	delete(d.pools, p)
	d.mu.Unlock()
}

// Pools reports how many pools are currently subscribed.
func (d *Dispatcher) Pools() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pools)
}

// Stats reports drained batches, events applied (batch size times pools
// reached), and resync fallbacks taken.
func (d *Dispatcher) Stats() (batches, applied, resyncs int64) {
	return d.batches.Load(), d.applied.Load(), d.resyncs.Load()
}

// Start launches the drain loop; starting twice is a no-op.
func (d *Dispatcher) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	stop, done := d.stop, d.done
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-d.sub.Ready():
				d.Dispatch()
			}
		}
	}()
}

// Stop halts the drain loop, waits for it to exit, and detaches the
// registry subscription. Stopping a stopped dispatcher is a no-op.
func (d *Dispatcher) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	d.sub.Close()
}

// Dispatch drains the pending events once, synchronously, and folds them
// into every subscribed pool — Apply on an ordinary batch, full Refresh
// when the ring overflowed to a resync marker. The drain loop calls it on
// readiness; tests call it directly for determinism. Closed pools found
// along the way are dropped.
func (d *Dispatcher) Dispatch() {
	events, resync := d.sub.Poll()
	if len(events) == 0 && !resync {
		return
	}
	d.batches.Add(1)
	if resync {
		d.resyncs.Add(1)
	}
	d.mu.Lock()
	pools := make([]*Pool, 0, len(d.pools))
	for p := range d.pools {
		pools = append(pools, p)
	}
	d.mu.Unlock()
	for _, p := range pools {
		if p.Closed() {
			d.Unsubscribe(p)
			continue
		}
		if resync {
			p.Refresh()
		} else {
			p.Apply(events)
		}
		d.applied.Add(int64(len(events)))
	}
}
