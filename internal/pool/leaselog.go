package pool

// Lease-op observation and adoption: the two halves of lease durability.
// A LeaseLog watches every grant/renew/release so an external journal can
// record them; AdoptLease is the inverse, re-installing a replayed lease
// into a freshly rebuilt pool without minting a new one.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// LeaseLog observes lease lifecycle operations on a pool. The durability
// journal implements it to make grants crash-survivable. Implementations
// must be safe for concurrent use and must not block for long: the hooks
// run on the allocate/release/renew hot paths (with fsync=always the
// grant deliberately waits for the disk — that is the policy's point).
// Hooks fire only after the engine committed the operation, and the Lease
// pointer must not be mutated or retained past the call.
type LeaseLog interface {
	// LeaseGranted records a new lease and its deadline (zero: no expiry).
	LeaseGranted(l *Lease, expires time.Time)
	// LeaseReleased records a release by lease id (explicit or reaped).
	LeaseReleased(leaseID string)
	// LeaseRenewed records a renewed deadline.
	LeaseRenewed(leaseID string, expires time.Time)
}

// AdoptLease re-installs a replayed lease into this pool: the machine is
// marked leased under the lease's original id and the given deadline, and
// the pool's sequence counter is advanced past the id so future grants
// cannot collide with it. Adoption is idempotent per id and is NOT
// re-logged — the journal already holds the lease it replayed from.
// Recovery calls it before the pool starts serving.
func (p *Pool) AdoptLease(l *Lease, expires time.Time) error {
	if l == nil || l.ID == "" || l.Machine == "" {
		return fmt.Errorf("pool %s: adopt needs a lease id and machine", p.id)
	}
	p.life.RLock()
	defer p.life.RUnlock()
	if p.closed {
		return fmt.Errorf("pool %s: closed", p.id)
	}
	if err := p.engine.Adopt(l.ID, l.Machine, expires); err != nil {
		return err
	}
	// Advance the sequence floor monotonically. Recovery runs before the
	// pool serves, so the simple load/store race window never matters in
	// practice, but keep it correct anyway.
	if seq, ok := leaseSeq(l.ID); ok {
		for {
			cur := p.nextSeq.Load()
			if seq <= cur || p.nextSeq.CompareAndSwap(cur, seq) {
				break
			}
		}
	}
	return nil
}

// leaseSeq extracts the sequence number from a lease id of the form
// "<poolInstance>:<seq>:<keyPrefix>". The pool instance may itself
// contain colons (identifiers are user-supplied), so parse from the end.
func leaseSeq(id string) (int64, bool) {
	i := strings.LastIndexByte(id, ':')
	if i < 0 {
		return 0, false
	}
	j := strings.LastIndexByte(id[:i], ':')
	if j < 0 {
		return 0, false
	}
	seq, err := strconv.ParseInt(id[j+1:i], 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}
