package pool

import (
	"testing"
	"time"

	"actyp/internal/policy"
	"actyp/internal/query"
	"actyp/internal/registry"
)

// TestScanCostCharged verifies the linear-search cost model: an
// allocation against an n-machine pool takes at least n*ScanCost.
func TestScanCostCharged(t *testing.T) {
	db := fleetDB(t, 50)
	p, err := New(Config{
		Name: sunName(t), DB: db, Exclusive: true,
		ScanCost: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	if _, err := p.Allocate(sunQuery(t)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("allocation took %v, want >= 5ms for 50 entries at 100us", elapsed)
	}
}

// TestScanCostSerializesQueries pins the Figure 6 mechanism: two
// concurrent allocations on one pool take at least twice the scan time
// because the search runs inside the critical section.
func TestScanCostSerializesQueries(t *testing.T) {
	db := fleetDB(t, 50)
	p, err := New(Config{
		Name: sunName(t), DB: db, Exclusive: true,
		ScanCost: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q := sunQuery(t)
	start := time.Now()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := p.Allocate(q)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("two concurrent allocations took %v, want >= 10ms (serialized scans)", elapsed)
	}
}

// TestPolicyDeniedCountsAsMiss verifies that a pool whose only machines
// are policy-denied reports exhaustion (and the miss counter moves).
func TestPolicyDeniedCountsAsMiss(t *testing.T) {
	db := registry.NewDB()
	machines, err := registry.HomogeneousFleetSpec(1).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	machines[0].Policy.UsagePolicy = "deny-public"
	if err := db.Add(machines[0]); err != nil {
		t.Fatal(err)
	}
	store := policy.NewStore()
	if err := store.Register("deny-public", "deny if group == public\nallow"); err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Name: sunName(t), DB: db, Exclusive: true, Policies: store})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pub := sunQuery(t).Set("punch.user.accessgroup", query.Eq("public"))
	if _, err := p.Allocate(pub); err != ErrExhausted {
		t.Errorf("policy-denied allocation = %v, want ErrExhausted", err)
	}
	_, misses, _ := p.Stats()
	if misses != 1 {
		t.Errorf("misses = %d", misses)
	}
	// A non-public user passes.
	ece := sunQuery(t).Set("punch.user.accessgroup", query.Eq("ece"))
	if _, err := p.Allocate(ece); err != nil {
		t.Errorf("allowed group rejected: %v", err)
	}
}
