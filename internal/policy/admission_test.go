package policy

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(a *Admitter, c *fakeClock) *Admitter {
	a.SetClock(c.now)
	return a
}

func TestAdmitBurstThenReject(t *testing.T) {
	clock := newFakeClock()
	a := withClock(NewAdmitter(AdmitLimit{Rate: 10, Burst: 3}, nil), clock)
	for i := 0; i < 3; i++ {
		if ok, _ := a.Admit("u"); !ok {
			t.Fatalf("admit %d within burst rejected", i)
		}
	}
	ok, retry := a.Admit("u")
	if ok {
		t.Fatal("admit past burst accepted")
	}
	// The bucket is exactly empty, so the next token is 1/rate away.
	if want := 100 * time.Millisecond; retry != want {
		t.Errorf("retryAfter = %v, want %v", retry, want)
	}
}

func TestAdmitRefill(t *testing.T) {
	clock := newFakeClock()
	a := withClock(NewAdmitter(AdmitLimit{Rate: 10, Burst: 5}, nil), clock)
	for i := 0; i < 5; i++ {
		a.Admit("u")
	}
	if ok, _ := a.Admit("u"); ok {
		t.Fatal("empty bucket admitted")
	}
	clock.advance(250 * time.Millisecond) // 2.5 tokens back at 10/s
	for i := 0; i < 2; i++ {
		if ok, _ := a.Admit("u"); !ok {
			t.Fatalf("refilled token %d rejected", i)
		}
	}
	if ok, _ := a.Admit("u"); ok {
		t.Fatal("admitted more than the refill")
	}
	// Refill caps at the burst, no matter how long the idle stretch.
	clock.advance(time.Hour)
	admitted := 0
	for i := 0; i < 20; i++ {
		if ok, _ := a.Admit("u"); ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Errorf("admitted %d after long idle, want burst of 5", admitted)
	}
}

// TestAdmitRateInvariant is the property test: over any simulated
// interval, the number of admitted requests can never exceed
// burst + rate*elapsed, regardless of the arrival pattern.
func TestAdmitRateInvariant(t *testing.T) {
	const rate, burst = 100.0, 20.0
	clock := newFakeClock()
	a := withClock(NewAdmitter(AdmitLimit{Rate: rate, Burst: burst}, nil), clock)
	rng := rand.New(rand.NewSource(42))
	var admitted int
	var elapsed time.Duration
	for step := 0; step < 5000; step++ {
		// Bursty arrivals: sometimes many requests at one instant,
		// sometimes idle gaps.
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			if ok, retry := a.Admit("k"); ok {
				admitted++
			} else if retry <= 0 {
				t.Fatalf("step %d: rejection with no retry hint", step)
			}
		}
		gap := time.Duration(rng.Intn(20)) * time.Millisecond
		clock.advance(gap)
		elapsed += gap
	}
	bound := int(burst+rate*elapsed.Seconds()) + 1
	if admitted > bound {
		t.Errorf("admitted %d over %v, exceeds bucket bound %d", admitted, elapsed, bound)
	}
	// Sanity: the bucket is not rejecting everything either.
	if admitted < int(rate*elapsed.Seconds()/2) {
		t.Errorf("admitted only %d over %v; bucket leaks tokens", admitted, elapsed)
	}
}

func TestAdmitPerKeyIsolationAndOverrides(t *testing.T) {
	clock := newFakeClock()
	a := withClock(NewAdmitter(AdmitLimit{Rate: 1, Burst: 1}, map[string]AdmitLimit{
		"vip": {Rate: 1000, Burst: 100},
	}), clock)
	if ok, _ := a.Admit("alice"); !ok {
		t.Fatal("alice's first request rejected")
	}
	if ok, _ := a.Admit("alice"); ok {
		t.Fatal("alice's second request admitted past her burst")
	}
	// bob has his OWN default-limit bucket; alice draining hers must not
	// affect him.
	if ok, _ := a.Admit("bob"); !ok {
		t.Fatal("bob rejected because alice drained her bucket")
	}
	// The override key gets its configured capacity.
	for i := 0; i < 100; i++ {
		if ok, _ := a.Admit("vip"); !ok {
			t.Fatalf("vip request %d rejected within its 100 burst", i)
		}
	}
}

func TestAdmitDisabledByNonPositiveRate(t *testing.T) {
	a := NewAdmitter(AdmitLimit{}, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := a.Admit(""); !ok {
			t.Fatal("zero rate must admit everything (admission is opt-in)")
		}
	}
}

func TestParseAdmitOverrides(t *testing.T) {
	got, err := ParseAdmitOverrides("alice=100:200, batch=10 ,svc=2.5")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]AdmitLimit{
		"alice": {Rate: 100, Burst: 200},
		"batch": {Rate: 10, Burst: 10}, // burst defaults to the rate
		"svc":   {Rate: 2.5, Burst: 2.5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %+v, want %+v", k, got[k], w)
		}
	}
	if m, err := ParseAdmitOverrides("  "); err != nil || m != nil {
		t.Errorf("blank spec = %v, %v; want nil, nil", m, err)
	}
	for _, bad := range []string{"alice", "=10", "a=zero", "a=10:bad", "a=-1", "a=10:-2"} {
		if _, err := ParseAdmitOverrides(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
