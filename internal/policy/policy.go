// Package policy implements the usage-policy metaprograms of white-pages
// field 19. The paper leaves this field "currently unimplemented, but it
// is designed to point to a PUNCH metaprogram that would allow
// administrators to specify complex usage policies (e.g., public users are
// only allowed to access this machine if its load is below a specified
// threshold)". This package provides that mechanism: a small rule language
// evaluated at allocation time against the machine's state and the
// requesting user.
//
// Grammar (one rule per line, first match wins, trailing default rule
// recommended):
//
//	policy := { rule "\n" }
//	rule   := ("allow" | "deny") [ "if" cond { "&&" cond } ]
//	cond   := ident op literal
//	op     := "==" | "!=" | ">=" | "<=" | ">" | "<"
//
// Identifiers resolve against the evaluation context: the requester's
// "group", "login" and "tool", plus the machine's live attributes (load,
// freememory, activejobs, ...). The example from the paper reads:
//
//	deny if group == public && load >= 0.5
//	allow
package policy

import (
	"fmt"
	"strings"
	"sync"

	"actyp/internal/query"
)

// Effect is a rule's verdict.
type Effect int

// Rule effects.
const (
	Allow Effect = iota
	Deny
)

func (e Effect) String() string {
	if e == Deny {
		return "deny"
	}
	return "allow"
}

// cond is one comparison inside a rule.
type cond struct {
	ident string
	c     query.Condition
}

// Rule is one line of a policy.
type Rule struct {
	Effect Effect
	conds  []cond
}

// Policy is a compiled metaprogram.
type Policy struct {
	Ref   string // the field-19 pointer this policy was registered under
	rules []Rule
}

// Compile parses a policy text. Empty input compiles to the empty policy,
// which allows everything.
func Compile(ref, text string) (*Policy, error) {
	p := &Policy{Ref: ref}
	for ln, rawLine := range strings.Split(text, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := compileRule(line)
		if err != nil {
			return nil, fmt.Errorf("policy %s: line %d: %w", ref, ln+1, err)
		}
		p.rules = append(p.rules, rule)
	}
	return p, nil
}

func compileRule(line string) (Rule, error) {
	fields := strings.Fields(line)
	var r Rule
	switch fields[0] {
	case "allow":
		r.Effect = Allow
	case "deny":
		r.Effect = Deny
	default:
		return r, fmt.Errorf("rule must start with allow or deny, got %q", fields[0])
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	if rest == "" {
		return r, nil // unconditional rule
	}
	if !strings.HasPrefix(rest, "if ") {
		return r, fmt.Errorf("expected 'if' after %s", r.Effect)
	}
	rest = strings.TrimSpace(rest[3:])
	for _, clause := range strings.Split(rest, "&&") {
		clause = strings.TrimSpace(clause)
		c, err := compileCond(clause)
		if err != nil {
			return r, err
		}
		r.conds = append(r.conds, c)
	}
	return r, nil
}

func compileCond(clause string) (cond, error) {
	for _, op := range []string{"==", "!=", ">=", "<=", ">", "<"} {
		i := strings.Index(clause, op)
		if i < 0 {
			continue
		}
		ident := strings.TrimSpace(clause[:i])
		operand := strings.TrimSpace(clause[i+len(op):])
		if ident == "" || operand == "" {
			return cond{}, fmt.Errorf("malformed condition %q", clause)
		}
		var qc query.Condition
		var err error
		switch op {
		case "==":
			qc = query.Eq(operand)
		case "!=":
			qc = query.Ne(operand)
		default:
			qc, err = query.ParseCondition(op + operand)
			if err != nil {
				return cond{}, err
			}
		}
		return cond{ident: ident, c: qc}, nil
	}
	return cond{}, fmt.Errorf("condition %q has no comparison operator", clause)
}

// Context is the evaluation environment: requester facts plus live machine
// attributes.
type Context = query.AttrSet

// Evaluate returns the verdict of the first matching rule; policies with
// no matching rule (including the empty policy) allow.
func (p *Policy) Evaluate(ctx Context) Effect {
	for _, r := range p.rules {
		if r.matches(ctx) {
			return r.Effect
		}
	}
	return Allow
}

func (r Rule) matches(ctx Context) bool {
	for _, c := range r.conds {
		attr, ok := ctx[c.ident]
		if !ok {
			return false // unknown identifier: the condition cannot hold
		}
		if !attr.Matches(c.c) {
			return false
		}
	}
	return true
}

// Len returns the number of compiled rules.
func (p *Policy) Len() int { return len(p.rules) }

// Store resolves field-19 references to compiled policies, playing the
// role of the metaprogram repository.
type Store struct {
	mu       sync.RWMutex
	policies map[string]*Policy
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{policies: make(map[string]*Policy)}
}

// Register compiles and stores a policy under its reference.
func (s *Store) Register(ref, text string) error {
	if ref == "" {
		return fmt.Errorf("policy: store needs a non-empty reference")
	}
	p, err := Compile(ref, text)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[ref] = p
	return nil
}

// Lookup returns the policy for a reference. Unknown references return
// (nil, false); callers treat that as allow-all, preserving the behaviour
// of the paper's unimplemented field.
func (s *Store) Lookup(ref string) (*Policy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.policies[ref]
	return p, ok
}
