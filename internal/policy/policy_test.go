package policy

import (
	"testing"

	"actyp/internal/query"
)

func ctx(pairs map[string]string, nums map[string]float64) Context {
	c := Context{}
	for k, v := range pairs {
		c[k] = query.StrAttr(v)
	}
	for k, v := range nums {
		c[k] = query.NumAttr(v)
	}
	return c
}

func TestCompilePaperExample(t *testing.T) {
	p, err := Compile("ref", `
# public users only below the load threshold
deny if group == public && load >= 0.5
allow
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("rules = %d", p.Len())
	}
	// Public user on a loaded machine: denied.
	if got := p.Evaluate(ctx(map[string]string{"group": "public"}, map[string]float64{"load": 1.2})); got != Deny {
		t.Errorf("loaded public = %v", got)
	}
	// Public user on an idle machine: allowed.
	if got := p.Evaluate(ctx(map[string]string{"group": "public"}, map[string]float64{"load": 0.1})); got != Allow {
		t.Errorf("idle public = %v", got)
	}
	// Non-public user always allowed.
	if got := p.Evaluate(ctx(map[string]string{"group": "ece"}, map[string]float64{"load": 3})); got != Allow {
		t.Errorf("ece = %v", got)
	}
}

func TestFirstMatchWins(t *testing.T) {
	p, err := Compile("r", `
allow if group == ece
deny
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Evaluate(ctx(map[string]string{"group": "ece"}, nil)) != Allow {
		t.Error("ece should match the allow rule first")
	}
	if p.Evaluate(ctx(map[string]string{"group": "cs"}, nil)) != Deny {
		t.Error("cs should fall to the deny rule")
	}
}

func TestEmptyPolicyAllows(t *testing.T) {
	p, err := Compile("r", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Evaluate(Context{}) != Allow {
		t.Error("empty policy must allow")
	}
	// No matching rule also allows.
	p2, err := Compile("r", "deny if group == public")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Evaluate(Context{}) != Allow {
		t.Error("unmatched policy must allow")
	}
}

func TestUnknownIdentifierNeverMatches(t *testing.T) {
	p, err := Compile("r", "deny if ghost == 1\nallow")
	if err != nil {
		t.Fatal(err)
	}
	if p.Evaluate(Context{}) != Allow {
		t.Error("condition on an unknown identifier must not match")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"permit if x == 1",  // unknown verb
		"deny x == 1",       // missing if
		"deny if",           // empty condition (parsed as cond-less "if")
		"deny if x ~ 1",     // no operator
		"deny if == 1",      // missing identifier
		"deny if x >= fast", // non-numeric ordering operand
	}
	for _, text := range bad {
		if _, err := Compile("r", text); err == nil {
			t.Errorf("Compile(%q) should fail", text)
		}
	}
}

func TestNumericAndStringOperators(t *testing.T) {
	p, err := Compile("r", `
deny if activejobs > 3
deny if machine != m0001
allow
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Evaluate(ctx(map[string]string{"machine": "m0001"}, map[string]float64{"activejobs": 5})) != Deny {
		t.Error("> should deny")
	}
	if p.Evaluate(ctx(map[string]string{"machine": "m0002"}, map[string]float64{"activejobs": 1})) != Deny {
		t.Error("!= should deny")
	}
	if p.Evaluate(ctx(map[string]string{"machine": "m0001"}, map[string]float64{"activejobs": 1})) != Allow {
		t.Error("matching machine under threshold should be allowed")
	}
}

func TestEffectString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Error("effect strings wrong")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if err := s.Register("", "allow"); err == nil {
		t.Error("empty ref should fail")
	}
	if err := s.Register("p1", "deny if group == public\nallow"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("bad", "bogus"); err == nil {
		t.Error("bad policy text should fail registration")
	}
	p, ok := s.Lookup("p1")
	if !ok || p.Ref != "p1" {
		t.Fatalf("lookup = %v, %v", p, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("unknown ref should miss")
	}
	// Re-registration replaces.
	if err := s.Register("p1", "allow"); err != nil {
		t.Fatal(err)
	}
	p, _ = s.Lookup("p1")
	if p.Len() != 1 {
		t.Errorf("replacement not applied: %d rules", p.Len())
	}
}

func TestPolicyLineAndCommentHandling(t *testing.T) {
	p, err := Compile("r", "\n  \n# only a comment\nallow\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("rules = %d", p.Len())
	}
}

func TestConditionWhitespaceTolerance(t *testing.T) {
	p, err := Compile("r", "deny if load>=0.5&&group==public\nallow")
	if err != nil {
		t.Fatal(err)
	}
	if p.Evaluate(ctx(map[string]string{"group": "public"}, map[string]float64{"load": 0.7})) != Deny {
		t.Error("compact spelling should still deny")
	}
}
