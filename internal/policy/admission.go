package policy

// Admission control is the usage-policy layer's overload face: where the
// rule language of policy.go decides whether a user may touch a machine
// at all, the Admitter decides how fast each account may submit requests
// when the daemon is the contended resource. Servers consult it at the
// wire boundary, before a request occupies a queue slot or a worker, and
// shed over-limit work with a cheap Busy reply.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// AdmitLimit is one token bucket's configuration: a sustained rate in
// requests per second and a burst capacity (the bucket size). A burst
// below 1 is clamped to 1 — a bucket that can never hold a token would
// deny everything, which is a deny rule's job, not a rate's.
type AdmitLimit struct {
	Rate  float64 // tokens replenished per second
	Burst float64 // bucket capacity
}

func (l AdmitLimit) normalized() AdmitLimit {
	if l.Burst < 1 {
		l.Burst = 1
	}
	return l
}

// admitShards stripes the bucket map so concurrent readers on different
// accounts do not serialize on one mutex; a power of two keeps the pick
// to a mask of an FNV-style hash.
const admitShards = 16

type admitBucket struct {
	tokens float64
	last   time.Time
}

type admitShard struct {
	mu      sync.Mutex
	buckets map[string]*admitBucket
}

// Admitter is a set of per-account token buckets. Admit spends one token
// from the caller's bucket; an empty bucket rejects with a hint of when
// the next token lands. Unknown accounts (and the empty key, requests
// from peers that do not stamp an identity) share the default limit —
// each key still gets its OWN bucket, so one noisy account cannot drain
// a neighbour's share; the anonymous key "" is one shared bucket by
// construction.
//
// Admitter is safe for concurrent use and allocation-free on the hot
// path once a key's bucket exists.
type Admitter struct {
	def       AdmitLimit
	overrides map[string]AdmitLimit
	shards    [admitShards]admitShard

	// now is the clock; tests inject a fake one.
	now func() time.Time
}

// NewAdmitter builds an admitter with a default per-account limit and
// optional per-key overrides (nil for none).
func NewAdmitter(def AdmitLimit, overrides map[string]AdmitLimit) *Admitter {
	a := &Admitter{def: def.normalized(), now: time.Now}
	if len(overrides) > 0 {
		a.overrides = make(map[string]AdmitLimit, len(overrides))
		for k, l := range overrides {
			a.overrides[k] = l.normalized()
		}
	}
	for i := range a.shards {
		a.shards[i].buckets = make(map[string]*admitBucket)
	}
	return a
}

// SetClock replaces the admitter's clock (tests only; not safe to call
// concurrently with Admit).
func (a *Admitter) SetClock(now func() time.Time) { a.now = now }

// limit returns key's configured limit.
func (a *Admitter) limit(key string) AdmitLimit {
	if l, ok := a.overrides[key]; ok {
		return l
	}
	return a.def
}

func (a *Admitter) shard(key string) *admitShard {
	// FNV-1a over the key; cheap and well-spread for short account names.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &a.shards[h&(admitShards-1)]
}

// Admit spends one token from key's bucket. It returns ok=true when the
// request is within the account's rate; otherwise retryAfter estimates
// when the next token is replenished (callers pass it to the shed client
// as the Busy retry-after hint).
func (a *Admitter) Admit(key string) (ok bool, retryAfter time.Duration) {
	lim := a.limit(key)
	if lim.Rate <= 0 {
		// A non-positive rate disables admission for this key entirely
		// (the default config: admission is opt-in).
		return true, 0
	}
	now := a.now()
	s := a.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[key]
	if b == nil {
		b = &admitBucket{tokens: lim.Burst, last: now}
		s.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * lim.Rate
		if b.tokens > lim.Burst {
			b.tokens = lim.Burst
		}
	}
	b.last = now
	// The epsilon absorbs float accumulation error across many refills: a
	// bucket a hair under one token has earned it, and rejecting would
	// hand the caller a meaningless zero retry hint.
	if b.tokens >= 1-1e-9 {
		b.tokens--
		return true, 0
	}
	// The deficit to the next whole token, at the replenish rate.
	return false, time.Duration((1 - b.tokens) / lim.Rate * float64(time.Second))
}

// ParseAdmitOverrides parses a flag-style per-key limit spec:
//
//	"alice=100:200,batch=10:20"
//
// where each entry is key=rate[:burst] (burst defaults to the rate). An
// empty spec returns nil.
func ParseAdmitOverrides(spec string) (map[string]AdmitLimit, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]AdmitLimit)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, found := strings.Cut(entry, "=")
		if !found || key == "" {
			return nil, fmt.Errorf("policy: admit override %q: want key=rate[:burst]", entry)
		}
		rateStr, burstStr, hasBurst := strings.Cut(val, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("policy: admit override %q: bad rate %q", entry, rateStr)
		}
		lim := AdmitLimit{Rate: rate, Burst: rate}
		if hasBurst {
			burst, err := strconv.ParseFloat(burstStr, 64)
			if err != nil || burst <= 0 {
				return nil, fmt.Errorf("policy: admit override %q: bad burst %q", entry, burstStr)
			}
			lim.Burst = burst
		}
		out[strings.TrimSpace(key)] = lim
	}
	return out, nil
}
