package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cands() []*Candidate {
	return []*Candidate{
		{Name: "a", Load: 0.5, FreeMemory: 256, Speed: 300, CPUs: 1, ActiveJobs: 2},
		{Name: "b", Load: 0.1, FreeMemory: 128, Speed: 200, CPUs: 2, ActiveJobs: 0},
		{Name: "c", Load: 0.1, FreeMemory: 512, Speed: 400, CPUs: 4, ActiveJobs: 1},
		{Name: "d", Load: 2.0, FreeMemory: 1024, Speed: 500, CPUs: 2, ActiveJobs: 5},
	}
}

func TestObjectivePreferences(t *testing.T) {
	cs := cands()
	cases := []struct {
		obj  Objective
		want string // best candidate name via SelectLinear
	}{
		{LeastLoad{}, "c"},      // load tie 0.1 broken by speed 400 > 200
		{MostMemory{}, "d"},     // 1024 MB
		{FastestCPU{}, "d"},     // speed 500
		{FewestJobs{}, "b"},     // 0 jobs
		{NormalizedLoad{}, "c"}, // 0.1/4 is the lowest per-CPU load
	}
	for _, tc := range cases {
		i := SelectLinear(cs, tc.obj, nil)
		if i < 0 || cs[i].Name != tc.want {
			t.Errorf("%s: best = %v, want %s", tc.obj.Name(), i, tc.want)
		}
	}
}

func TestSelectLinearSkipsBusyAndFiltered(t *testing.T) {
	cs := cands()
	cs[2].Busy = true // c is out
	i := SelectLinear(cs, LeastLoad{}, nil)
	if cs[i].Name != "b" {
		t.Errorf("busy skip: got %s", cs[i].Name)
	}
	// Filter away b as well; the best remaining by load is a.
	i = SelectLinear(cs, LeastLoad{}, func(c *Candidate) bool { return c.Name != "b" })
	if cs[i].Name != "a" {
		t.Errorf("filtered: got %s", cs[i].Name)
	}
	// Everything busy -> -1.
	for _, c := range cs {
		c.Busy = true
	}
	if i := SelectLinear(cs, LeastLoad{}, nil); i != -1 {
		t.Errorf("all busy should return -1, got %d", i)
	}
	if i := SelectLinear(nil, LeastLoad{}, nil); i != -1 {
		t.Errorf("empty slice should return -1, got %d", i)
	}
}

func TestSelectBiasedPrefersOwnStripe(t *testing.T) {
	// 8 identical machines; instance 1 of 4 replicas should pick index 1,
	// then 5 once 1 is busy.
	cs := make([]*Candidate, 8)
	for i := range cs {
		cs[i] = &Candidate{Name: string(rune('a' + i)), Load: 0.5}
	}
	i := SelectBiased(cs, LeastLoad{}, nil, 1, 4)
	if i != 1 {
		t.Errorf("first pick = %d, want 1", i)
	}
	cs[1].Busy = true
	if i := SelectBiased(cs, LeastLoad{}, nil, 1, 4); i != 5 {
		t.Errorf("second pick = %d, want 5", i)
	}
	// Exhaust the stripe; it must fall back to other machines.
	cs[5].Busy = true
	if i := SelectBiased(cs, LeastLoad{}, nil, 1, 4); i == -1 || i%4 == 1 {
		t.Errorf("fallback pick = %d", i)
	}
	// stride<=1 degrades to plain linear selection.
	if a, b := SelectBiased(cs, LeastLoad{}, nil, 0, 1), SelectLinear(cs, LeastLoad{}, nil); a != b {
		t.Errorf("stride 1 mismatch: %d vs %d", a, b)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, rr.Pick(3))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("picks = %v", got)
		}
	}
	if rr.Pick(0) != 0 {
		t.Error("Pick(0) should return 0")
	}
	if rr.Less(nil, nil) {
		t.Error("round-robin must not express pairwise preference")
	}
}

func TestWeightedLexicographic(t *testing.T) {
	w := Weighted{Objectives: []Objective{LeastLoad{}, MostMemory{}}}
	a := &Candidate{Load: 0.1, FreeMemory: 10, Speed: 1}
	b := &Candidate{Load: 0.1, FreeMemory: 90, Speed: 1}
	// Equal on load and speed; memory decides.
	if !w.Less(b, a) || w.Less(a, b) {
		t.Error("weighted tie-break failed")
	}
	c := &Candidate{Load: 0.05, FreeMemory: 1, Speed: 1}
	if !w.Less(c, b) {
		t.Error("first objective must dominate")
	}
	if w.Name() != "weighted(least-load,most-memory)" {
		t.Errorf("name = %q", w.Name())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"least-load", "most-memory", "fastest-cpu", "fewest-jobs", "normalized-load", "round-robin", ""} {
		obj, err := ByName(name)
		if err != nil || obj == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown objective should fail")
	}
	// Stateful objectives must be fresh instances.
	a, _ := ByName("round-robin")
	b, _ := ByName("round-robin")
	if a == b {
		t.Error("round-robin instances must not be shared")
	}
}

func TestSortStableBestFirst(t *testing.T) {
	cs := cands()
	Sort(cs, LeastLoad{})
	for i := 1; i < len(cs); i++ {
		if (LeastLoad{}).Less(cs[i], cs[i-1]) {
			t.Errorf("not sorted at %d: %v", i, cs)
		}
	}
	if cs[0].Name != "c" {
		t.Errorf("best = %s", cs[0].Name)
	}
}

// Property: SelectLinear always agrees with Sort — the selected candidate
// is never strictly worse than any other free candidate.
func TestSelectLinearIsOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		cs := make([]*Candidate, n)
		for i := range cs {
			cs[i] = &Candidate{
				Name:  string(rune('a' + i)),
				Load:  float64(rng.Intn(40)) / 10,
				Speed: float64(100 + rng.Intn(400)),
				Busy:  rng.Intn(4) == 0,
			}
		}
		best := SelectLinear(cs, LeastLoad{}, nil)
		if best == -1 {
			for _, c := range cs {
				if !c.Busy {
					return false
				}
			}
			return true
		}
		for _, c := range cs {
			if !c.Busy && (LeastLoad{}).Less(c, cs[best]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: replication bias never starves a query — as long as one free
// candidate exists, SelectBiased finds one, whatever the bias/stride.
func TestSelectBiasedNeverStarvesProperty(t *testing.T) {
	f := func(seed int64, bias, stride uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		cs := make([]*Candidate, n)
		anyFree := false
		for i := range cs {
			cs[i] = &Candidate{Name: string(rune('a' + i)), Busy: rng.Intn(2) == 0}
			if !cs[i].Busy {
				anyFree = true
			}
		}
		got := SelectBiased(cs, LeastLoad{}, nil, int(bias), int(stride))
		if anyFree {
			return got >= 0 && !cs[got].Busy
		}
		return got == -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
