package schedule

// Lane weights are scheduling configuration for the wire dispatch window:
// when no control frame is waiting, the overloaded endpoint round-robins
// between the lease and bulk lanes in these proportions. They live here —
// not in wire — because they are policy the daemon's operator sets, like
// the pool objectives above, and the wire layer must stay free of
// configuration parsing.

import (
	"fmt"
	"strconv"
	"strings"
)

// LaneWeights is the weighted round-robin share between the lease and
// bulk dispatch lanes (control is strictly first and has no weight).
type LaneWeights struct {
	Lease int
	Bulk  int
}

// DefaultLaneWeights favours lease acquisition four to one over bulk
// queries: leases are the paper's unit of useful work, and a query that
// cannot turn into a lease is the first thing to delay under pressure.
func DefaultLaneWeights() LaneWeights { return LaneWeights{Lease: 4, Bulk: 1} }

// ParseLaneWeights parses a flag-style lane weight spec:
//
//	"lease=4,bulk=1"
//
// Unmentioned lanes keep their default weight; weights must be positive.
// An empty spec returns the defaults.
func ParseLaneWeights(spec string) (LaneWeights, error) {
	w := DefaultLaneWeights()
	if strings.TrimSpace(spec) == "" {
		return w, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, found := strings.Cut(entry, "=")
		if !found {
			return w, fmt.Errorf("schedule: lane weight %q: want lane=weight", entry)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 1 {
			return w, fmt.Errorf("schedule: lane weight %q: want a positive integer", entry)
		}
		switch strings.TrimSpace(key) {
		case "lease":
			w.Lease = n
		case "bulk":
			w.Bulk = n
		default:
			return w, fmt.Errorf("schedule: unknown lane %q (want lease or bulk)", key)
		}
	}
	return w, nil
}
