package schedule

import "testing"

func TestParseLaneWeights(t *testing.T) {
	cases := []struct {
		spec string
		want LaneWeights
	}{
		{"", DefaultLaneWeights()},
		{"  ", DefaultLaneWeights()},
		{"lease=4,bulk=1", LaneWeights{Lease: 4, Bulk: 1}},
		{"bulk=3", LaneWeights{Lease: 4, Bulk: 3}}, // unmentioned lane keeps its default
		{" lease = 7 , bulk = 2 ", LaneWeights{Lease: 7, Bulk: 2}},
		{"lease=1,,bulk=1", LaneWeights{Lease: 1, Bulk: 1}}, // empty entries skipped
	}
	for _, c := range cases {
		got, err := ParseLaneWeights(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"lease", "lease=0", "lease=-2", "lease=x", "control=5", "ctl=1"} {
		if _, err := ParseLaneWeights(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
