// Package schedule implements the scheduling objectives and policies that
// resource pools attach to their machine caches (Section 5.2.3): each pool
// object has one or more scheduling processes that order machines by a
// specified criterion (average load, available memory, ...) and answer
// queries with the best instance. Following the paper, selection is a
// linear search over the pool's cache.
package schedule

import (
	"fmt"
	"sort"
	"sync"
)

// Candidate is the scheduler's view of one machine in a pool cache.
type Candidate struct {
	Name       string  // machine name
	Load       float64 // current load average
	FreeMemory float64 // MB
	FreeSwap   float64 // MB
	Speed      float64 // effective speed
	CPUs       int
	ActiveJobs int
	Busy       bool // locally allocated and not yet released
}

// Objective orders candidates; smaller is better.
type Objective interface {
	// Name identifies the objective in configuration and logs.
	Name() string
	// Less reports whether a should be preferred over b.
	Less(a, b *Candidate) bool
}

// LeastLoad prefers the machine with the lowest load average, breaking
// ties toward higher speed. This is PUNCH's default objective.
type LeastLoad struct{}

// Name implements Objective.
func (LeastLoad) Name() string { return "least-load" }

// Less implements Objective.
func (LeastLoad) Less(a, b *Candidate) bool {
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Speed > b.Speed
}

// MostMemory prefers the machine with the most free memory.
type MostMemory struct{}

// Name implements Objective.
func (MostMemory) Name() string { return "most-memory" }

// Less implements Objective.
func (MostMemory) Less(a, b *Candidate) bool {
	if a.FreeMemory != b.FreeMemory {
		return a.FreeMemory > b.FreeMemory
	}
	return a.Load < b.Load
}

// FastestCPU prefers raw speed, breaking ties toward lower load.
type FastestCPU struct{}

// Name implements Objective.
func (FastestCPU) Name() string { return "fastest-cpu" }

// Less implements Objective.
func (FastestCPU) Less(a, b *Candidate) bool {
	if a.Speed != b.Speed {
		return a.Speed > b.Speed
	}
	return a.Load < b.Load
}

// FewestJobs prefers the machine running the fewest active jobs — a proxy
// for fastest turnaround on very short jobs.
type FewestJobs struct{}

// Name implements Objective.
func (FewestJobs) Name() string { return "fewest-jobs" }

// Less implements Objective.
func (FewestJobs) Less(a, b *Candidate) bool {
	if a.ActiveJobs != b.ActiveJobs {
		return a.ActiveJobs < b.ActiveJobs
	}
	return a.Load < b.Load
}

// NormalizedLoad prefers the lowest load per CPU, so big SMP machines
// absorb proportionally more work.
type NormalizedLoad struct{}

// Name implements Objective.
func (NormalizedLoad) Name() string { return "normalized-load" }

// Less implements Objective.
func (NormalizedLoad) Less(a, b *Candidate) bool {
	an := a.Load / float64(max(1, a.CPUs))
	bn := b.Load / float64(max(1, b.CPUs))
	if an != bn {
		return an < bn
	}
	return a.Speed > b.Speed
}

// RoundRobin cycles through candidates regardless of their state. It is
// stateful and safe for concurrent use.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Objective.
func (r *RoundRobin) Name() string { return "round-robin" }

// Less implements Objective; round-robin has no pairwise preference.
func (r *RoundRobin) Less(a, b *Candidate) bool { return false }

// Pick returns the next index in [0, n).
func (r *RoundRobin) Pick(n int) int {
	if n <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.next % n
	r.next++
	return i
}

// Weighted combines objectives lexicographically: the first objective that
// expresses a preference wins.
type Weighted struct {
	Objectives []Objective
}

// Name implements Objective.
func (w Weighted) Name() string {
	s := "weighted("
	for i, o := range w.Objectives {
		if i > 0 {
			s += ","
		}
		s += o.Name()
	}
	return s + ")"
}

// Less implements Objective.
func (w Weighted) Less(a, b *Candidate) bool {
	for _, o := range w.Objectives {
		if o.Less(a, b) {
			return true
		}
		if o.Less(b, a) {
			return false
		}
	}
	return false
}

// ByName returns the objective registered under the given configuration
// name. RoundRobin gets a fresh instance per call because it is stateful.
func ByName(name string) (Objective, error) {
	switch name {
	case "least-load", "":
		return LeastLoad{}, nil
	case "most-memory":
		return MostMemory{}, nil
	case "fastest-cpu":
		return FastestCPU{}, nil
	case "fewest-jobs":
		return FewestJobs{}, nil
	case "normalized-load":
		return NormalizedLoad{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	}
	return nil, fmt.Errorf("schedule: unknown objective %q", name)
}

// SelectLinear performs the paper's linear search: it scans every candidate
// once and returns the index of the best non-busy one, or -1 if every
// candidate is busy. filter, when non-nil, can veto candidates.
func SelectLinear(cands []*Candidate, obj Objective, filter func(*Candidate) bool) int {
	best := -1
	for i, c := range cands {
		if c.Busy {
			continue
		}
		if filter != nil && !filter(c) {
			continue
		}
		if best < 0 || obj.Less(c, cands[best]) {
			best = i
		}
	}
	return best
}

// SelectBiased is SelectLinear with the replication bias of Section 7:
// instance `bias` of a pool replicated `stride` ways prefers every
// stride-th machine starting at bias, falling back to the rest only when
// its preferred subset is exhausted. This preserves scheduling integrity
// across replicas that share one machine set.
func SelectBiased(cands []*Candidate, obj Objective, filter func(*Candidate) bool, bias, stride int) int {
	if stride <= 1 {
		return SelectLinear(cands, obj, filter)
	}
	bestPref, bestOther := -1, -1
	for i, c := range cands {
		if c.Busy {
			continue
		}
		if filter != nil && !filter(c) {
			continue
		}
		if i%stride == bias%stride {
			if bestPref < 0 || obj.Less(c, cands[bestPref]) {
				bestPref = i
			}
		} else if bestOther < 0 || obj.Less(c, cands[bestOther]) {
			bestOther = i
		}
	}
	if bestPref >= 0 {
		return bestPref
	}
	return bestOther
}

// Sort orders candidates in place by the objective (stable, best first).
// Background scheduling processes use this to keep pool caches ordered.
func Sort(cands []*Candidate, obj Objective) {
	sort.SliceStable(cands, func(i, j int) bool { return obj.Less(cands[i], cands[j]) })
}
