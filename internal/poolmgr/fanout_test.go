package poolmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/query"
)

// fakePeer is a scripted remote pool manager: it answers Forward after a
// fixed delay with either a fresh lease or a scripted error, and records
// every lease it granted and every one released back, so tests can assert
// the first-win race never leaks loser capacity.
type fakePeer struct {
	name  string
	delay time.Duration
	grant bool
	err   error

	mu       sync.Mutex
	seq      int
	granted  []*pool.Lease
	released []*pool.Lease
	visited  [][]string // copy of each visited list seen
}

func (p *fakePeer) Name() string { return p.name }

func (p *fakePeer) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	p.mu.Lock()
	p.visited = append(p.visited, append([]string(nil), visited...))
	p.mu.Unlock()
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if !p.grant {
		if p.err != nil {
			return nil, p.err
		}
		return nil, ErrUnresolvable
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	l := &pool.Lease{ID: fmt.Sprintf("%s-%d", p.name, p.seq), Machine: "m-" + p.name, Pool: p.name + "#0"}
	p.granted = append(p.granted, l)
	return l, nil
}

func (p *fakePeer) Release(l *pool.Lease) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.released = append(p.released, l)
	return nil
}

func (p *fakePeer) counts() (granted, released int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.granted), len(p.released)
}

// ctxPeer is a fakePeer that honors cancellation: a cancelled branch
// returns ctx.Err() instead of sleeping out its delay.
type ctxPeer struct{ fakePeer }

func (p *ctxPeer) ForwardContext(ctx context.Context, q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	p.mu.Lock()
	p.visited = append(p.visited, append([]string(nil), visited...))
	p.mu.Unlock()
	if p.delay > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(p.delay):
		}
	}
	if !p.grant {
		if p.err != nil {
			return nil, p.err
		}
		return nil, ErrUnresolvable
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	l := &pool.Lease{ID: fmt.Sprintf("%s-%d", p.name, p.seq), Machine: "m-" + p.name, Pool: p.name + "#0"}
	p.granted = append(p.granted, l)
	return l, nil
}

// fanoutManager builds a factory-less manager (every resolve is a miss)
// wired to the given peers.
func fanoutManager(t *testing.T, fanout int, hedge time.Duration, stats *metrics.FederationStats, peers ...directory.Forwarder) *Manager {
	t.Helper()
	dir := directory.New()
	for _, p := range peers {
		dir.AddPeer(p)
	}
	m, err := New(Config{Name: "pm-home", Dir: dir, Fanout: fanout, HedgeDelay: hedge, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// waitReleased polls until the peer has released n leases; drainLosers
// reaps asynchronously, so releases land after Resolve returns.
func waitReleased(t *testing.T, p *fakePeer, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, rel := p.counts(); rel >= n {
			return
		}
		if time.Now().After(deadline) {
			g, rel := p.counts()
			t.Fatalf("peer %s: granted=%d released=%d, want released >= %d", p.name, g, rel, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFanoutFirstWinReleasesLosers races three granting peers: the fast
// one wins, and both slow losers get their late leases released back.
func TestFanoutFirstWinReleasesLosers(t *testing.T) {
	fast := &fakePeer{name: "pm-fast", grant: true, delay: 2 * time.Millisecond}
	slow1 := &fakePeer{name: "pm-slow1", grant: true, delay: 60 * time.Millisecond}
	slow2 := &fakePeer{name: "pm-slow2", grant: true, delay: 60 * time.Millisecond}
	stats := metrics.NewFederationStats()
	m := fanoutManager(t, 3, 0, stats, slow1, fast, slow2)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if lease.Machine != "m-pm-fast" {
		t.Errorf("winner = %q, want the fast peer's machine", lease.Machine)
	}
	waitReleased(t, slow1, 1)
	waitReleased(t, slow2, 1)
	if g, rel := fast.counts(); g != 1 || rel != 0 {
		t.Errorf("winner peer: granted=%d released=%d, want 1/0", g, rel)
	}
	snap := stats.Snapshot()
	if snap.Fanouts != 1 || snap.Wins != 1 || snap.Cancelled != 2 {
		t.Errorf("stats = %+v, want fanouts=1 wins=1 cancelled=2", snap)
	}
	if snap.Peers["pm-fast"].Wins != 1 {
		t.Errorf("per-peer win not counted: %+v", snap.Peers)
	}
}

// TestDelegatedLeaseReleasesThroughGrantor: a lease won through a peer
// must route its Release back through that peer — pool instance names
// are query signatures, so the grantor's instance and a local one
// collide on name, and a local release would report "unknown lease"
// while the peer's machine stays leased forever. Covers both the serial
// walk and the fan-out race, and checks the routing entry is consumed
// (a second release no longer finds it).
func TestDelegatedLeaseReleasesThroughGrantor(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fanout int
	}{
		{"serial", 1},
		{"fanout", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			peer := &fakePeer{name: "pm-peer", grant: true, delay: time.Millisecond}
			other := &fakePeer{name: "pm-other", delay: time.Millisecond} // never grants
			m := fanoutManager(t, tc.fanout, 0, nil, peer, other)

			lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if err := m.Release(lease); err != nil {
				t.Fatalf("release of delegated lease: %v", err)
			}
			if g, rel := peer.counts(); g != 1 || rel != 1 {
				t.Errorf("grantor: granted=%d released=%d, want 1/1", g, rel)
			}
			if err := m.Release(lease); err == nil {
				t.Error("second release should fail: the routing entry is consumed")
			}
		})
	}
}

// TestFanoutHedgeSuppressed: with a hedge delay longer than the first
// peer's answer, the race stays width-1 and no extra load lands on peers.
func TestFanoutHedgeSuppressed(t *testing.T) {
	fast := &fakePeer{name: "pm-fast", grant: true, delay: time.Millisecond}
	spare := &fakePeer{name: "pm-spare", grant: true, delay: time.Millisecond}
	stats := metrics.NewFederationStats()
	m := fanoutManager(t, 2, 500*time.Millisecond, stats, fast, spare)

	if _, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun")); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	snap := stats.Snapshot()
	if snap.Hedges != 0 {
		t.Errorf("hedges = %d, want 0 (first peer answered inside the delay)", snap.Hedges)
	}
	if g, _ := spare.counts(); g != 0 {
		t.Errorf("hedge peer was contacted %d times despite a fast first answer", g)
	}
}

// TestFanoutHedgeFires: the first peer stalls past the hedge delay, so a
// staggered second branch launches and wins; the stalled branch's late
// lease is released.
func TestFanoutHedgeFires(t *testing.T) {
	stall := &fakePeer{name: "pm-stall", grant: true, delay: 150 * time.Millisecond}
	backup := &fakePeer{name: "pm-backup", grant: true, delay: time.Millisecond}
	stats := metrics.NewFederationStats()
	m := fanoutManager(t, 2, 5*time.Millisecond, stats, stall, backup)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if lease.Machine != "m-pm-backup" {
		t.Errorf("winner = %q, want the hedged backup peer", lease.Machine)
	}
	if snap := stats.Snapshot(); snap.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", snap.Hedges)
	}
	waitReleased(t, stall, 1)
}

// TestFanoutFailureReplacement: a failed branch is replaced by the next
// candidate immediately, so the race still finds the one granting peer
// even when it is last in line.
func TestFanoutFailureReplacement(t *testing.T) {
	bad1 := &fakePeer{name: "pm-bad1"}
	bad2 := &fakePeer{name: "pm-bad2"}
	good := &fakePeer{name: "pm-good", grant: true}
	m := fanoutManager(t, 2, 0, nil, bad1, bad2, good)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if lease.Machine != "m-pm-good" {
		t.Errorf("winner = %q", lease.Machine)
	}
}

// TestFanoutAllFail: every branch failing yields ErrUnresolvable, exactly
// like the serial walk.
func TestFanoutAllFail(t *testing.T) {
	m := fanoutManager(t, 3, 0, nil,
		&fakePeer{name: "pm-a"}, &fakePeer{name: "pm-b"}, &fakePeer{name: "pm-c"})
	_, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if !errors.Is(err, ErrUnresolvable) {
		t.Errorf("err = %v, want ErrUnresolvable", err)
	}
}

// TestFanoutTTLShortCircuit: an ErrTTLExpired branch fails the whole race
// immediately — the paper's TTL death is global, not per branch — and a
// slower granting branch's lease still goes back.
func TestFanoutTTLShortCircuit(t *testing.T) {
	dead := &fakePeer{name: "pm-dead", err: ErrTTLExpired, delay: time.Millisecond}
	late := &fakePeer{name: "pm-late", grant: true, delay: 100 * time.Millisecond}
	m := fanoutManager(t, 2, 0, nil, dead, late)

	start := time.Now()
	_, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if !errors.Is(err, ErrTTLExpired) {
		t.Fatalf("err = %v, want ErrTTLExpired", err)
	}
	if elapsed := time.Since(start); elapsed > 80*time.Millisecond {
		t.Errorf("TTL death waited %v for the slow branch; should short-circuit", elapsed)
	}
	waitReleased(t, late, 1)
}

// TestFanoutContextCancel: cancelling the caller's context settles the
// race with ctx.Err() and releases any lease that lands afterwards.
func TestFanoutContextCancel(t *testing.T) {
	slow1 := &ctxPeer{fakePeer{name: "pm-s1", grant: true, delay: time.Second}}
	slow2 := &fakePeer{name: "pm-s2", grant: true, delay: 50 * time.Millisecond}
	m := fanoutManager(t, 2, 0, nil, slow1, slow2)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := m.ForwardContext(ctx, basicQuery(t, "punch.rsrc.arch = sun"), 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The ctx-aware peer exits empty; the blind one grants late and must be
	// released by the reaper.
	waitReleased(t, slow2, 1)
	if g, _ := slow1.counts(); g != 0 {
		t.Errorf("cancelled ctx-aware peer still granted %d leases", g)
	}
}

// TestFanoutSinglePeerStaysSerial: one candidate peer means no race to
// run; the serial path handles it and no fan-out is counted.
func TestFanoutSinglePeerStaysSerial(t *testing.T) {
	only := &fakePeer{name: "pm-only", grant: true}
	stats := metrics.NewFederationStats()
	m := fanoutManager(t, 4, 0, stats, only)
	if _, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun")); err != nil {
		t.Fatal(err)
	}
	if snap := stats.Snapshot(); snap.Fanouts != 0 {
		t.Errorf("fanouts = %d, want 0 for a single peer", snap.Fanouts)
	}
}

// TestFanoutVisitedNotAliased: every concurrent branch receives the same
// visited slice; no branch (or downstream manager) may observe it mutate.
// This is the regression test for the in-loop append aliasing bug.
func TestFanoutVisitedNotAliased(t *testing.T) {
	peers := make([]directory.Forwarder, 6)
	fakes := make([]*fakePeer, 6)
	for i := range peers {
		fakes[i] = &fakePeer{name: fmt.Sprintf("pm-%d", i), delay: time.Duration(i) * time.Millisecond}
		peers[i] = fakes[i]
	}
	m := fanoutManager(t, 3, 0, nil, peers...)

	seed := []string{"pm-origin"}
	_, err := m.ForwardContext(context.Background(), basicQuery(t, "punch.rsrc.arch = sun"), 4, seed)
	if !errors.Is(err, ErrUnresolvable) {
		t.Fatalf("err = %v", err)
	}
	if seed[0] != "pm-origin" {
		t.Fatalf("caller's visited slice mutated to %v", seed)
	}
	for _, p := range fakes {
		p.mu.Lock()
		for _, v := range p.visited {
			if len(v) != 2 || v[0] != "pm-origin" || v[1] != "pm-home" {
				t.Errorf("peer %s saw visited %v, want [pm-origin pm-home]", p.name, v)
			}
		}
		p.mu.Unlock()
	}
}

// TestFanoutCycleTerminates peers three empty managers into a full mesh
// with fanout enabled: the shared-nothing visited copies must still
// terminate the walk, concurrently, before the TTL does.
func TestFanoutCycleTerminates(t *testing.T) {
	dirs := []*directory.Service{directory.New(), directory.New(), directory.New()}
	ms := make([]*Manager, 3)
	for i := range ms {
		m, err := New(Config{Name: fmt.Sprintf("pm-%d", i), Dir: dirs[i], Fanout: 2})
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for i := range ms {
		for j := range ms {
			if i != j {
				dirs[i].AddPeer(ms[j])
			}
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := ms[0].Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("empty mesh resolution should fail")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out delegation cycle did not terminate")
	}
}

// TestFanoutDelegatedResolveSucceeds: a full-mesh fan-out grid where only
// one manager owns matching machines still resolves, whichever manager
// the query enters at.
func TestFanoutDelegatedResolveSucceeds(t *testing.T) {
	db := fleetDB(t, 8)
	dirs := []*directory.Service{directory.New(), directory.New(), directory.New()}
	f := &LocalFactory{DB: db}
	defer f.CloseAll()
	ms := make([]*Manager, 3)
	for i := range ms {
		cfg := Config{Name: fmt.Sprintf("pm-%d", i), Dir: dirs[i], Fanout: 2, HedgeDelay: time.Millisecond}
		if i == 2 {
			cfg.Factory = f // only the last manager has capacity
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for i := range ms {
		for j := range ms {
			if i != j {
				dirs[i].AddPeer(ms[j])
			}
		}
	}
	lease, err := ms[0].Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("resolve across mesh: %v", err)
	}
	if lease.Machine == "" {
		t.Error("empty lease")
	}
}

// TestFanoutFirstWinStress races many rounds under -race and proves the
// global no-leak invariant: every granted lease is either the single
// winner its round kept or was released back to its peer.
func TestFanoutFirstWinStress(t *testing.T) {
	const rounds = 40
	peers := make([]directory.Forwarder, 5)
	fakes := make([]*fakePeer, 5)
	for i := range peers {
		fakes[i] = &fakePeer{name: fmt.Sprintf("pm-%d", i), grant: true,
			delay: time.Duration(i%3) * time.Millisecond}
		peers[i] = fakes[i]
	}
	stats := metrics.NewFederationStats()
	m := fanoutManager(t, 3, 0, stats, peers...)

	var wg sync.WaitGroup
	wins := make(chan *pool.Lease, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
			if err != nil {
				t.Errorf("resolve: %v", err)
				return
			}
			wins <- lease
		}()
	}
	wg.Wait()
	close(wins)
	kept := 0
	for range wins {
		kept++
	}
	if kept != rounds {
		t.Fatalf("kept %d leases, want %d", kept, rounds)
	}
	// Wait for the reapers to settle, then check conservation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		granted, released := 0, 0
		for _, p := range fakes {
			g, r := p.counts()
			granted += g
			released += r
		}
		if granted-released == rounds {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease conservation violated: granted=%d released=%d kept=%d",
				granted, released, kept)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
