package poolmgr

import (
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/route"
)

// routedManager builds a factory-less manager (every resolve is a miss)
// wired to the given peers and carrying a domain-ownership table.
func routedManager(t *testing.T, rt *route.Table, fanout int, stats *metrics.FederationStats, peers ...directory.Forwarder) *Manager {
	t.Helper()
	dir := directory.New()
	for _, p := range peers {
		dir.AddPeer(p)
	}
	m, err := New(Config{Name: rt.Local(), Dir: dir, Fanout: fanout, Stats: stats, Routes: rt})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDirectedHopGoesStraightToOwner: a query pinning a domain the table
// assigns to a peer must take the single directed hop to that peer — the
// other peers see no traffic at all, and no fan-out race is started.
func TestDirectedHopGoesStraightToOwner(t *testing.T) {
	owner := &fakePeer{name: "pm-owner", grant: true, delay: 5 * time.Millisecond}
	// A faster granting peer that would win any fan-out race.
	other := &fakePeer{name: "pm-other", grant: true}
	rt := route.New("pm-home")
	rt.Reload(map[string]string{"upc": "pm-owner"}, []string{"pm-home", "pm-owner", "pm-other"})
	stats := metrics.NewFederationStats()
	m := routedManager(t, rt, 2, stats, other, owner)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.domain = upc"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if lease.Machine != "m-pm-owner" {
		t.Errorf("lease from %q, want the domain owner's machine", lease.Machine)
	}
	if g, _ := other.counts(); g != 0 {
		t.Errorf("non-owner peer granted %d leases, want 0 (directed hop must not fan out)", g)
	}
	other.mu.Lock()
	contacted := len(other.visited)
	other.mu.Unlock()
	if contacted != 0 {
		t.Errorf("non-owner peer contacted %d times, want 0", contacted)
	}
	snap := stats.Snapshot()
	if snap.Directed != 1 || snap.DirectedWins != 1 || snap.DirectedMisses != 0 {
		t.Errorf("directed stats = %d/%d (%d miss), want 1/1 (0 miss)", snap.DirectedWins, snap.Directed, snap.DirectedMisses)
	}
	if snap.Fanouts != 0 {
		t.Errorf("fanouts = %d, want 0: the directed hop replaces the race", snap.Fanouts)
	}
}

// TestDirectedMissFallsBackToFanout: a failed directed hop (owner cannot
// satisfy) degrades to the pre-partition path with the owner marked
// visited, so the query still resolves through the remaining peers and
// the owner is not contacted twice.
func TestDirectedMissFallsBackToFanout(t *testing.T) {
	owner := &fakePeer{name: "pm-owner"} // never grants
	other := &fakePeer{name: "pm-other", grant: true}
	rt := route.New("pm-home")
	rt.Reload(map[string]string{"upc": "pm-owner"}, []string{"pm-home", "pm-owner", "pm-other"})
	stats := metrics.NewFederationStats()
	m := routedManager(t, rt, 2, stats, owner, other)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.domain = upc"))
	if err != nil {
		t.Fatalf("resolve after directed miss: %v", err)
	}
	if lease.Machine != "m-pm-other" {
		t.Errorf("lease from %q, want the fallback peer's machine", lease.Machine)
	}
	owner.mu.Lock()
	ownerContacts := len(owner.visited)
	owner.mu.Unlock()
	if ownerContacts != 1 {
		t.Errorf("owner contacted %d times, want exactly 1 (visited after the directed miss)", ownerContacts)
	}
	snap := stats.Snapshot()
	if snap.Directed != 1 || snap.DirectedMisses != 1 {
		t.Errorf("directed stats = %d/%d (%d miss), want a recorded miss", snap.DirectedWins, snap.Directed, snap.DirectedMisses)
	}
}

// TestUnroutableQuerySkipsDirectedHop: queries without an exact-equality
// domain predicate keep the pre-partition behaviour bit for bit.
func TestUnroutableQuerySkipsDirectedHop(t *testing.T) {
	peer := &fakePeer{name: "pm-peer", grant: true}
	rt := route.New("pm-home")
	rt.Reload(nil, []string{"pm-home", "pm-peer"})
	stats := metrics.NewFederationStats()
	m := routedManager(t, rt, 1, stats, peer)

	for _, text := range []string{
		"punch.rsrc.arch = sun",
		"punch.rsrc.domain = *",
		"punch.rsrc.domain = purdue,upc",
	} {
		if _, err := m.Resolve(basicQuery(t, text)); err != nil {
			t.Fatalf("resolve %q: %v", text, err)
		}
	}
	if snap := stats.Snapshot(); snap.Directed != 0 {
		t.Errorf("directed hops = %d for unroutable queries, want 0", snap.Directed)
	}
}

// TestDelegatedReleaseReroutesAfterReload is the (peer, domain) regression:
// a delegated lease won in domain B must release through B's CURRENT owner
// after an ownership-table reload, not through the stale granting peer —
// the grantor handed the domain (records, pools, leases) off in the
// meantime, so only the new owner can still find the lease.
func TestDelegatedReleaseReroutesAfterReload(t *testing.T) {
	oldOwner := &fakePeer{name: "pm-old", grant: true}
	newOwner := &fakePeer{name: "pm-new", grant: true}
	rt := route.New("pm-home")
	rt.Reload(map[string]string{"upc": "pm-old"}, []string{"pm-home", "pm-old", "pm-new"})
	m := routedManager(t, rt, 1, nil, oldOwner, newOwner)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.domain = upc"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if lease.Machine != "m-pm-old" {
		t.Fatalf("lease from %q, want the pre-reload owner", lease.Machine)
	}

	// The domain changes hands between grant and release.
	rt.Reload(map[string]string{"upc": "pm-new"}, []string{"pm-home", "pm-old", "pm-new"})

	if err := m.Release(lease); err != nil {
		t.Fatalf("release after reload: %v", err)
	}
	if _, rel := oldOwner.counts(); rel != 0 {
		t.Errorf("stale grantor got %d releases, want 0", rel)
	}
	if _, rel := newOwner.counts(); rel != 1 {
		t.Errorf("current owner got %d releases, want 1", rel)
	}
	if err := m.Release(lease); err == nil {
		t.Error("second release should fail: the routing entry is consumed")
	}
}

// TestDelegatedReleaseUnroutableKeepsGrantor: a lease won for a query with
// no domain predicate records domain "" and must keep releasing through
// the recorded grantor regardless of table reloads — there is no domain to
// re-resolve.
func TestDelegatedReleaseUnroutableKeepsGrantor(t *testing.T) {
	grantor := &fakePeer{name: "pm-grantor", grant: true}
	bystander := &fakePeer{name: "pm-bystander", grant: true}
	rt := route.New("pm-home")
	rt.Reload(nil, []string{"pm-home", "pm-grantor", "pm-bystander"})
	m := routedManager(t, rt, 1, nil, grantor, bystander)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	rt.Reload(map[string]string{"upc": "pm-bystander"}, []string{"pm-home", "pm-grantor", "pm-bystander"})
	if err := m.Release(lease); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, rel := grantor.counts(); rel != 1 {
		t.Errorf("grantor got %d releases, want 1", rel)
	}
	if _, rel := bystander.counts(); rel != 0 {
		t.Errorf("bystander got %d releases, want 0", rel)
	}
}

// TestReleaseRemoteFallsBackWhenOwnerNotDialed: when the reload points a
// domain at a node this manager has no connection to, the release falls
// back to the recorded grantor rather than failing outright.
func TestReleaseRemoteFallsBackWhenOwnerNotDialed(t *testing.T) {
	grantor := &fakePeer{name: "pm-grantor", grant: true}
	rt := route.New("pm-home")
	rt.Reload(map[string]string{"upc": "pm-grantor"}, []string{"pm-home", "pm-grantor"})
	m := routedManager(t, rt, 1, nil, grantor)

	lease, err := m.Resolve(basicQuery(t, "punch.rsrc.domain = upc"))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	// The new owner is not in this manager's directory.
	rt.Reload(map[string]string{"upc": "pm-elsewhere"}, []string{"pm-home", "pm-grantor", "pm-elsewhere"})
	if err := m.Release(lease); err != nil {
		t.Fatalf("release with undialed owner: %v", err)
	}
	if _, rel := grantor.counts(); rel != 1 {
		t.Errorf("grantor got %d releases, want 1 (fallback target)", rel)
	}
}
