package poolmgr

import (
	"errors"
	"testing"
	"time"

	"actyp/internal/directory"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
)

func fleetDB(t testing.TB, n int) *registry.DB {
	t.Helper()
	db := registry.NewDB()
	if err := registry.DefaultFleetSpec(n).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	return db
}

func basicQuery(t testing.TB, text string) *query.Query {
	t.Helper()
	q, err := query.ParseBasic(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newManager(t testing.TB, name string, db *registry.DB) (*Manager, *directory.Service, *LocalFactory) {
	t.Helper()
	dir := directory.New()
	f := &LocalFactory{DB: db}
	m, err := New(Config{Name: name, Dir: dir, Factory: f})
	if err != nil {
		t.Fatal(err)
	}
	return m, dir, f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dir: directory.New()}); err == nil {
		t.Error("missing name should fail")
	}
	if _, err := New(Config{Name: "pm"}); err == nil {
		t.Error("missing directory should fail")
	}
	m, err := New(Config{Name: "pm", Dir: directory.New()})
	if err != nil {
		t.Fatal(err)
	}
	if m.ttl != DefaultTTL {
		t.Errorf("default ttl = %d", m.ttl)
	}
	if m.Name() != "pm" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestResolveCreatesPoolOnDemand(t *testing.T) {
	db := fleetDB(t, 8)
	m, dir, f := newManager(t, "pm", db)
	defer f.CloseAll()

	q := basicQuery(t, "punch.rsrc.arch = sun")
	lease, err := m.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Machine == "" {
		t.Error("empty lease")
	}
	// The pool is now registered; a second query reuses it.
	if dir.Instances() != 1 {
		t.Errorf("instances = %d", dir.Instances())
	}
	if _, err := m.Resolve(q); err != nil {
		t.Fatal(err)
	}
	resolved, created, _, _ := m.Stats()
	if resolved != 2 || created != 1 {
		t.Errorf("stats: resolved=%d created=%d", resolved, created)
	}

	// Different criteria spawn a different pool.
	if _, err := m.Resolve(basicQuery(t, "punch.rsrc.arch = hp")); err != nil {
		t.Fatal(err)
	}
	if dir.Instances() != 2 {
		t.Errorf("instances after second criteria = %d", dir.Instances())
	}
}

func TestResolveRelease(t *testing.T) {
	db := fleetDB(t, 4)
	m, _, f := newManager(t, "pm", db)
	defer f.CloseAll()

	q := basicQuery(t, "punch.rsrc.arch = sun")
	lease, err := m.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(lease); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(lease); err == nil {
		t.Error("double release should fail")
	}
	if err := m.Release(nil); err == nil {
		t.Error("nil lease should fail")
	}
	if err := m.Release(&pool.Lease{ID: "x", Pool: "ghost"}); err == nil {
		t.Error("unknown instance should fail")
	}
}

func TestResolveWithoutFactoryFails(t *testing.T) {
	m, err := New(Config{Name: "pm", Dir: directory.New()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err == nil {
		t.Error("factory-less manager with no peers should fail")
	}
	if !errors.Is(err, ErrUnresolvable) {
		t.Errorf("err = %v, want ErrUnresolvable", err)
	}
}

func TestForwardDelegatesToPeer(t *testing.T) {
	// pm-a has no sun machines (hp-only fleet); pm-b has suns.
	dbA := registry.NewDB()
	hpOnly := registry.FleetSpec{N: 4, Archs: []string{"hp"}, Domains: []string{"upc"}, Seed: 1}
	if err := hpOnly.Populate(dbA, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	dbB := registry.NewDB()
	if err := registry.HomogeneousFleetSpec(4).Populate(dbB, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}

	dirA, dirB := directory.New(), directory.New()
	fA, fB := &LocalFactory{DB: dbA}, &LocalFactory{DB: dbB}
	defer fA.CloseAll()
	defer fB.CloseAll()
	a, err := New(Config{Name: "pm-a", Dir: dirA, Factory: fA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Name: "pm-b", Dir: dirB, Factory: fB})
	if err != nil {
		t.Fatal(err)
	}
	dirA.AddPeer(b)

	lease, err := a.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
	if err != nil {
		t.Fatalf("delegation failed: %v", err)
	}
	if lease.Machine == "" {
		t.Error("empty lease from peer")
	}
	_, _, forwarded, _ := a.Stats()
	if forwarded != 1 {
		t.Errorf("forwarded = %d", forwarded)
	}
	resolvedB, _, _, _ := b.Stats()
	if resolvedB != 1 {
		t.Errorf("peer resolved = %d", resolvedB)
	}
}

func TestForwardTTLExpiry(t *testing.T) {
	// A chain of managers with no machines anywhere: the query must die
	// with ErrTTLExpired once its TTL is exhausted, not loop forever.
	mkEmpty := func(name string, dir *directory.Service) *Manager {
		m, err := New(Config{Name: name, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	dirs := []*directory.Service{directory.New(), directory.New(), directory.New()}
	m0 := mkEmpty("pm-0", dirs[0])
	m1 := mkEmpty("pm-1", dirs[1])
	m2 := mkEmpty("pm-2", dirs[2])
	dirs[0].AddPeer(m1)
	dirs[1].AddPeer(m2)
	dirs[2].AddPeer(m0) // cycle

	_, err := m0.Forward(basicQuery(t, "punch.rsrc.arch = sun"), 2, nil)
	if !errors.Is(err, ErrTTLExpired) {
		t.Errorf("err = %v, want ErrTTLExpired", err)
	}
}

func TestForwardVisitedListPreventsRevisit(t *testing.T) {
	dir := directory.New()
	m, err := New(Config{Name: "pm", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Forward(basicQuery(t, "punch.rsrc.arch = sun"), 5, []string{"pm"})
	if err == nil {
		t.Error("revisit should fail")
	}
}

func TestForwardZeroTTLFailsImmediately(t *testing.T) {
	db := fleetDB(t, 2)
	m, _, f := newManager(t, "pm", db)
	defer f.CloseAll()
	_, err := m.Forward(basicQuery(t, "punch.rsrc.arch = sun"), 0, nil)
	if !errors.Is(err, ErrTTLExpired) {
		t.Errorf("err = %v", err)
	}
}

func TestForwardCycleTerminates(t *testing.T) {
	// Two empty managers pointing at each other with a generous TTL: the
	// visited list must terminate the walk before the TTL does.
	dirA, dirB := directory.New(), directory.New()
	a, err := New(Config{Name: "pm-a", Dir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Name: "pm-b", Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	dirA.AddPeer(b)
	dirB.AddPeer(a)

	done := make(chan error, 1)
	go func() {
		_, err := a.Resolve(basicQuery(t, "punch.rsrc.arch = sun"))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("empty grid resolution should fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delegation cycle did not terminate")
	}
}

func TestLocalFactory(t *testing.T) {
	db := fleetDB(t, 8)
	f := &LocalFactory{DB: db}
	name := query.Name(basicQuery(t, "punch.rsrc.arch = sun"))
	ref, err := f.Create(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Local == nil || ref.Name != name {
		t.Errorf("ref = %+v", ref)
	}
	if len(f.Pools()) != 1 {
		t.Errorf("pools = %d", len(f.Pools()))
	}
	// Instance 0 is exclusive: machines are taken.
	p := f.Pools()[0]
	if got := db.TakenBy(p.ID()); len(got) != p.Size() {
		t.Errorf("taken = %d, size = %d", len(got), p.Size())
	}
	f.CloseAll()
	if got := db.TakenBy(p.ID()); len(got) != 0 {
		t.Errorf("CloseAll left %d taken", len(got))
	}

	// Bad objective and missing DB fail.
	if _, err := (&LocalFactory{DB: db, Objective: "bogus"}).Create(name, 1); err == nil {
		t.Error("bad objective should fail")
	}
	if _, err := (&LocalFactory{}).Create(name, 0); err == nil {
		t.Error("missing db should fail")
	}
}

func TestConcurrentResolveSinglePoolCreated(t *testing.T) {
	db := fleetDB(t, 64)
	m, dir, f := newManager(t, "pm", db)
	defer f.CloseAll()
	q := basicQuery(t, "punch.rsrc.arch = sun")

	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := m.Resolve(q)
			errs <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Errorf("resolve %d: %v", i, err)
		}
	}
	if dir.Instances() != 1 {
		t.Errorf("concurrent resolution created %d pools", dir.Instances())
	}
	_, created, _, _ := m.Stats()
	if created != 1 {
		t.Errorf("created = %d", created)
	}
}
