// Package poolmgr implements ActYP pool managers (Section 5.2.2). A pool
// manager maps each basic query to a pool name (signature + identifier),
// selects a random instance of that pool through the local directory
// service, creates pool instances on demand, and — when the requested
// resources are not available locally — forwards the query to a peer pool
// manager, carrying a visited list and a time-to-live counter with the
// query exactly as IP datagrams carry a TTL.
//
// The manager itself holds no lock on the request path: instance
// selection draws from a lock-free deterministic sequence, counters are
// atomic, and pool creation coalesces concurrent creators per pool
// signature (creating pool A never blocks creating pool B).
package poolmgr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/directory"
	"actyp/internal/metrics"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/route"
)

// DefaultTTL is the forwarding budget attached to queries that arrive
// without one.
const DefaultTTL = 4

// ErrTTLExpired is returned when a query's time-to-live counter reaches
// zero before any pool manager could satisfy it. Per the paper, "the
// request is considered to have failed when the counter reaches zero."
var ErrTTLExpired = errors.New("poolmgr: query TTL expired")

// ErrUnresolvable is returned when the local manager cannot satisfy the
// query and no un-visited peer remains to forward it to.
var ErrUnresolvable = errors.New("poolmgr: no pool and no remaining peers")

// Factory creates resource-pool instances on demand. The local factory
// forks in-process pools; the networked mode substitutes one that spawns
// pools through remote proxy servers.
type Factory interface {
	// Create builds and starts instance `instance` of the named pool and
	// returns a directory reference to it.
	Create(name query.PoolName, instance int) (directory.PoolRef, error)
}

// Config describes a pool manager.
type Config struct {
	// Name identifies this manager in visited lists. Required.
	Name string
	// Dir is the local directory service. Required.
	Dir *directory.Service
	// Factory creates pools on demand; nil managers never create pools
	// and always delegate or fail.
	Factory Factory
	// Seed makes instance selection deterministic in tests; 0 uses a
	// fixed default.
	Seed int64
	// TTL is attached to queries arriving without one (default
	// DefaultTTL).
	TTL int
	// Fanout is the delegation width: how many peers a local miss may try
	// concurrently, first granted lease winning. Values <= 1 keep the
	// paper's serial peer walk. See fanout.go.
	Fanout int
	// HedgeDelay staggers fan-out branches: each next branch launches
	// only after the previous ones have had this long to answer. Zero
	// launches the full width at once.
	HedgeDelay time.Duration
	// Stats, when set, counts fan-outs, per-peer wins and failures,
	// hedges fired, and cancelled losers. Nil disables the accounting.
	Stats *metrics.FederationStats
	// Delegations, when set, observes the delegated-lease table: every
	// lease won through a peer and every routed-back release — the
	// durability journal's feed for leases no local pool ever sees.
	Delegations DelegationLog
	// Routes, when set, is the domain-ownership table: a query pinning a
	// domain owned by a remote peer skips the local scan and the fan-out
	// race for a single directed hop to the owner, and delegated-lease
	// releases re-resolve the domain's *current* owner instead of trusting
	// the peer recorded at grant time. Nil keeps pre-partition behaviour.
	Routes *route.Table
}

// DelegationLog observes the delegated-lease table. Unlike pool.LeaseLog,
// the won hook carries the full lease: a delegated grant was minted by
// the peer's pool, so no local hook ever fired for it and the journal
// must capture the whole record plus the routing peer here.
type DelegationLog interface {
	// DelegationWon records a lease won through the named peer, with the
	// administrative domain the query pinned ("" for unroutable queries) —
	// recovery needs it to re-resolve the release route after an
	// ownership change.
	DelegationWon(lease *pool.Lease, peer, domain string)
	// DelegationDone records that the delegated lease left the table
	// (released back through its peer, or dropped by recovery).
	DelegationDone(leaseID string)
}

// Manager is one pool-manager stage instance.
type Manager struct {
	name       string
	dir        *directory.Service
	factory    Factory
	ttl        int
	fanout     int
	hedgeDelay time.Duration
	fstats     *metrics.FederationStats // nil-safe; see metrics.FederationStats
	routes     *route.Table             // nil: no domain-ownership routing

	seed    uint64
	pickSeq atomic.Uint64

	// createMu guards only the in-flight creation table; the creations
	// themselves (which Take machines from the white pages) run outside
	// it, one flight per pool signature.
	createMu sync.Mutex
	creating map[string]*createCall

	// delegatedMu guards the won-through-a-peer lease table; see
	// rememberDelegated in fanout.go.
	delegatedMu sync.Mutex
	delegated   map[string]delegatedLease
	delegations DelegationLog // non-nil: table changes are journaled

	resolved  atomic.Int64
	created   atomic.Int64
	forwarded atomic.Int64
	failed    atomic.Int64
}

// createCall is one in-flight pool creation; concurrent creators of the
// same signature share its result.
type createCall struct {
	done chan struct{}
	ref  directory.PoolRef
	err  error
}

// New creates a pool manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("poolmgr: config needs a name")
	}
	if cfg.Dir == nil {
		return nil, fmt.Errorf("poolmgr: config needs a directory service")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Manager{
		name:        cfg.Name,
		dir:         cfg.Dir,
		factory:     cfg.Factory,
		ttl:         cfg.TTL,
		fanout:      cfg.Fanout,
		hedgeDelay:  cfg.HedgeDelay,
		fstats:      cfg.Stats,
		routes:      cfg.Routes,
		delegations: cfg.Delegations,
		seed:        uint64(seed),
		creating:    make(map[string]*createCall),
	}, nil
}

// Name implements directory.Forwarder.
func (m *Manager) Name() string { return m.name }

// pickStart returns a pseudo-random index in [0, n): one splitmix64 draw
// from a lock-free sequence, deterministic per seed, so random instance
// selection (the paper's policy) never serializes requests on a shared
// rand.Rand mutex.
func (m *Manager) pickStart(n int) int {
	if n <= 1 {
		return 0
	}
	x := m.seed + m.pickSeq.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Resolve maps the basic query to a pool name and allocates a machine,
// creating the pool if necessary and delegating to peers when local
// resolution fails. It is the entry point used by query managers.
func (m *Manager) Resolve(q *query.Query) (*pool.Lease, error) {
	return m.Forward(q, m.ttl, nil)
}

// Forward implements directory.Forwarder: it continues resolution of a
// query that carries delegation state. The visited list prevents the query
// from reaching any manager twice; the TTL bounds total hops. The
// delegation walk is serial with Config.Fanout <= 1, a bounded first-win
// race otherwise (see fanout.go).
func (m *Manager) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	return m.ForwardContext(context.Background(), q, ttl, visited)
}

// resolveLocal looks the pool up in the directory (creating it when
// needed) and allocates from a randomly selected instance. If the selected
// instance is exhausted it fails over to the remaining instances of the
// same pool name before reporting failure.
func (m *Manager) resolveLocal(name query.PoolName, q *query.Query) (*pool.Lease, error) {
	refs := m.dir.Lookup(name)
	if len(refs) == 0 {
		created, err := m.create(name)
		if err != nil {
			return nil, err
		}
		refs = []directory.PoolRef{created}
	}
	// Start at a random instance, then walk the rest in order.
	start := m.pickStart(len(refs))
	var lastErr error
	for i := 0; i < len(refs); i++ {
		ref := refs[(start+i)%len(refs)]
		if ref.Local == nil {
			lastErr = fmt.Errorf("poolmgr %s: instance %s has no local handle", m.name, ref.Instance)
			continue
		}
		lease, err := ref.Local.Allocate(q)
		if err == nil {
			return lease, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// create coalesces concurrent creations of one pool signature into a
// single flight — and only that signature's: creating pool A (which Takes
// machines from the white pages) never blocks creating pool B.
func (m *Manager) create(name query.PoolName) (directory.PoolRef, error) {
	if m.factory == nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr %s: no factory to create pool %s", m.name, name)
	}
	key := name.String()
	m.createMu.Lock()
	if c, ok := m.creating[key]; ok {
		m.createMu.Unlock()
		<-c.done
		return c.ref, c.err
	}
	c := &createCall{done: make(chan struct{})}
	m.creating[key] = c
	m.createMu.Unlock()

	c.ref, c.err = m.buildPool(name)
	m.createMu.Lock()
	delete(m.creating, key)
	m.createMu.Unlock()
	close(c.done)
	return c.ref, c.err
}

// buildPool creates instance 0 of a missing pool through the factory and
// registers it. A creator that finds the pool already registered (an
// earlier flight, or a peer manager sharing the directory) adopts the
// existing registration instead.
func (m *Manager) buildPool(name query.PoolName) (directory.PoolRef, error) {
	if refs := m.dir.Lookup(name); len(refs) > 0 {
		return refs[m.pickStart(len(refs))], nil
	}
	ref, err := m.factory.Create(name, 0)
	if err != nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr %s: create %s: %w", m.name, name, err)
	}
	if err := m.dir.Register(ref); err != nil {
		// Lost a cross-manager race. Shut our orphan down (releasing its
		// white-pages claims) and adopt the winner.
		if cl, ok := ref.Local.(interface{ Close() }); ok {
			cl.Close()
		}
		if refs := m.dir.Lookup(name); len(refs) > 0 {
			return refs[m.pickStart(len(refs))], nil
		}
		return directory.PoolRef{}, err
	}
	m.created.Add(1)
	return ref, nil
}

// Release routes a lease release to the instance that granted it.
func (m *Manager) Release(lease *pool.Lease) error {
	if lease == nil {
		return fmt.Errorf("poolmgr %s: nil lease", m.name)
	}
	// A lease won through a peer must go back through the domain's owner:
	// pool instance names are query signatures, so the grantor's instance
	// and a local instance collide on name, and the local release would
	// hit "unknown lease" while the peer's capacity leaks. The owner is
	// re-resolved at release time (see releaseRemote) — the grantor
	// recorded at win time may have handed the domain off since.
	if peerName, domain, ok := m.takeDelegated(lease.ID); ok {
		return m.releaseRemote(peerName, domain, lease)
	}
	ref, ok := m.dir.ByInstance(lease.Pool)
	if !ok {
		return fmt.Errorf("poolmgr %s: unknown pool instance %s", m.name, lease.Pool)
	}
	if ref.Local == nil {
		return fmt.Errorf("poolmgr %s: instance %s has no local handle", m.name, lease.Pool)
	}
	return ref.Local.Release(lease.ID)
}

// Stats returns counters: locally resolved queries, pools created,
// delegations attempted, and failures.
func (m *Manager) Stats() (resolved, created, forwarded, failed int) {
	return int(m.resolved.Load()), int(m.created.Load()),
		int(m.forwarded.Load()), int(m.failed.Load())
}
