// Package poolmgr implements ActYP pool managers (Section 5.2.2). A pool
// manager maps each basic query to a pool name (signature + identifier),
// selects a random instance of that pool through the local directory
// service, creates pool instances on demand, and — when the requested
// resources are not available locally — forwards the query to a peer pool
// manager, carrying a visited list and a time-to-live counter with the
// query exactly as IP datagrams carry a TTL.
package poolmgr

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"actyp/internal/directory"
	"actyp/internal/pool"
	"actyp/internal/query"
)

// DefaultTTL is the forwarding budget attached to queries that arrive
// without one.
const DefaultTTL = 4

// ErrTTLExpired is returned when a query's time-to-live counter reaches
// zero before any pool manager could satisfy it. Per the paper, "the
// request is considered to have failed when the counter reaches zero."
var ErrTTLExpired = errors.New("poolmgr: query TTL expired")

// ErrUnresolvable is returned when the local manager cannot satisfy the
// query and no un-visited peer remains to forward it to.
var ErrUnresolvable = errors.New("poolmgr: no pool and no remaining peers")

// Factory creates resource-pool instances on demand. The local factory
// forks in-process pools; the networked mode substitutes one that spawns
// pools through remote proxy servers.
type Factory interface {
	// Create builds and starts instance `instance` of the named pool and
	// returns a directory reference to it.
	Create(name query.PoolName, instance int) (directory.PoolRef, error)
}

// Config describes a pool manager.
type Config struct {
	// Name identifies this manager in visited lists. Required.
	Name string
	// Dir is the local directory service. Required.
	Dir *directory.Service
	// Factory creates pools on demand; nil managers never create pools
	// and always delegate or fail.
	Factory Factory
	// Seed makes instance selection deterministic in tests; 0 uses a
	// fixed default.
	Seed int64
	// TTL is attached to queries arriving without one (default
	// DefaultTTL).
	TTL int
}

// Manager is one pool-manager stage instance.
type Manager struct {
	name    string
	dir     *directory.Service
	factory Factory
	ttl     int

	rngMu sync.Mutex
	rng   *rand.Rand

	createMu sync.Mutex // serializes pool creation per manager

	statMu    sync.Mutex
	resolved  int
	created   int
	forwarded int
	failed    int
}

// New creates a pool manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("poolmgr: config needs a name")
	}
	if cfg.Dir == nil {
		return nil, fmt.Errorf("poolmgr: config needs a directory service")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Manager{
		name:    cfg.Name,
		dir:     cfg.Dir,
		factory: cfg.Factory,
		ttl:     cfg.TTL,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements directory.Forwarder.
func (m *Manager) Name() string { return m.name }

// Resolve maps the basic query to a pool name and allocates a machine,
// creating the pool if necessary and delegating to peers when local
// resolution fails. It is the entry point used by query managers.
func (m *Manager) Resolve(q *query.Query) (*pool.Lease, error) {
	return m.Forward(q, m.ttl, nil)
}

// Forward implements directory.Forwarder: it continues resolution of a
// query that carries delegation state. The visited list prevents the query
// from reaching any manager twice; the TTL bounds total hops.
func (m *Manager) Forward(q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	if ttl <= 0 {
		m.countFail()
		return nil, ErrTTLExpired
	}
	for _, v := range visited {
		if v == m.name {
			m.countFail()
			return nil, fmt.Errorf("poolmgr %s: query already visited this manager", m.name)
		}
	}

	name := query.Name(q)
	if lease, err := m.resolveLocal(name, q); err == nil {
		m.statMu.Lock()
		m.resolved++
		m.statMu.Unlock()
		return lease, nil
	}

	// Local resolution failed: attach our name, decrement the TTL, and
	// forward to an unvisited peer listed in the directory.
	visited = append(append([]string(nil), visited...), m.name)
	ttl--
	for _, peer := range m.dir.Peers() {
		if peer.Name() == m.name || contains(visited, peer.Name()) {
			continue
		}
		m.statMu.Lock()
		m.forwarded++
		m.statMu.Unlock()
		lease, err := peer.Forward(q, ttl, visited)
		if err == nil {
			return lease, nil
		}
		if errors.Is(err, ErrTTLExpired) {
			m.countFail()
			return nil, err
		}
		// Peer failed for another reason; it recorded itself in its own
		// visited handling, but our copy must also skip it.
		visited = append(visited, peer.Name())
	}
	m.countFail()
	if ttl <= 0 {
		return nil, ErrTTLExpired
	}
	return nil, ErrUnresolvable
}

// resolveLocal looks the pool up in the directory (creating it when
// needed) and allocates from a randomly selected instance. If the selected
// instance is exhausted it fails over to the remaining instances of the
// same pool name before reporting failure.
func (m *Manager) resolveLocal(name query.PoolName, q *query.Query) (*pool.Lease, error) {
	refs := m.dir.Lookup(name)
	if len(refs) == 0 {
		created, err := m.create(name)
		if err != nil {
			return nil, err
		}
		refs = []directory.PoolRef{created}
	}
	// Start at a random instance, then walk the rest in order.
	start := 0
	if len(refs) > 1 {
		m.rngMu.Lock()
		start = m.rng.Intn(len(refs))
		m.rngMu.Unlock()
	}
	var lastErr error
	for i := 0; i < len(refs); i++ {
		ref := refs[(start+i)%len(refs)]
		if ref.Local == nil {
			lastErr = fmt.Errorf("poolmgr %s: instance %s has no local handle", m.name, ref.Instance)
			continue
		}
		lease, err := ref.Local.Allocate(q)
		if err == nil {
			return lease, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

func (m *Manager) pick(name query.PoolName) (directory.PoolRef, bool) {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.dir.Pick(name, m.rng)
}

// create builds instance 0 of a missing pool through the factory,
// registering it in the directory. Concurrent creators race benignly: the
// loser adopts the winner's registration.
func (m *Manager) create(name query.PoolName) (directory.PoolRef, error) {
	if m.factory == nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr %s: no factory to create pool %s", m.name, name)
	}
	m.createMu.Lock()
	defer m.createMu.Unlock()
	// Another goroutine may have created the pool while we waited.
	if ref, ok := m.pick(name); ok {
		return ref, nil
	}
	ref, err := m.factory.Create(name, 0)
	if err != nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr %s: create %s: %w", m.name, name, err)
	}
	if err := m.dir.Register(ref); err != nil {
		return directory.PoolRef{}, err
	}
	m.statMu.Lock()
	m.created++
	m.statMu.Unlock()
	return ref, nil
}

// Release routes a lease release to the instance that granted it.
func (m *Manager) Release(lease *pool.Lease) error {
	if lease == nil {
		return fmt.Errorf("poolmgr %s: nil lease", m.name)
	}
	ref, ok := m.dir.ByInstance(lease.Pool)
	if !ok {
		return fmt.Errorf("poolmgr %s: unknown pool instance %s", m.name, lease.Pool)
	}
	if ref.Local == nil {
		return fmt.Errorf("poolmgr %s: instance %s has no local handle", m.name, lease.Pool)
	}
	return ref.Local.Release(lease.ID)
}

// Stats returns counters: locally resolved queries, pools created,
// delegations attempted, and failures.
func (m *Manager) Stats() (resolved, created, forwarded, failed int) {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	return m.resolved, m.created, m.forwarded, m.failed
}

func (m *Manager) countFail() {
	m.statMu.Lock()
	m.failed++
	m.statMu.Unlock()
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
