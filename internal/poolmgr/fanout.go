package poolmgr

// Parallel first-win delegation. The paper's serial peer walk pays one
// full WAN round trip per miss per peer — worst case TTL×RTT before a
// query lands on the peer that has capacity. The fan-out path races a
// bounded number of peers concurrently: the first granted lease wins and
// cancels the rest, losing branches' leases are released back to their
// peers, and a configurable hedge delay staggers the launches so the
// common case (the first peer can satisfy) costs no extra load.
//
// Semantics preserved from the serial walk: the visited list still
// guarantees no manager sees a query twice (every branch shares one
// immutable visited slice — extendVisited copies, never mutates), the TTL
// still bounds total hops, and an ErrTTLExpired from any branch still
// fails the whole query immediately.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"actyp/internal/directory"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/route"
)

// stringSet answers visited-list membership in O(1); the serial walk's
// linear scans made the hot path O(visited²) once fleets grew.
type stringSet map[string]struct{}

func newStringSet(items []string) stringSet {
	s := make(stringSet, len(items)+1)
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

func (s stringSet) has(name string) bool { _, ok := s[name]; return ok }

// extendVisited returns visited plus name in a freshly allocated slice.
// Appending in place is unsafe twice over: the caller's slice may alias an
// array a peer (or a concurrent fan-out branch) still reads, and append
// can silently share backing storage between diverging branches.
func extendVisited(visited []string, name string) []string {
	out := make([]string, len(visited)+1)
	copy(out, visited)
	out[len(visited)] = name
	return out
}

// delegatedLease records which peer granted a lease that this manager
// handed upward, keyed (peer, domain) so the eventual Release can route
// back correctly even after the domain changes hands: the release goes to
// the domain's *current* owner per the route table, falling back to the
// recorded grantor for unroutable leases. Entries are evicted on release
// and, as a backstop against clients that never release, lazily after
// delegatedTTL — by then the grantor's reaper has reclaimed the machine
// anyway. Deliberately NOT a captured Forwarder handle: a handle pins the
// stale grantor across ownership-table reloads.
type delegatedLease struct {
	peerName string // grantor at win time
	domain   string // domain the query pinned; "" when unroutable
	at       time.Time
}

const delegatedTTL = time.Hour

// rememberDelegated notes that lease was granted through the named peer
// for a query pinning domain ("" when unroutable). Called on every
// delegation win before the lease is returned upward.
func (m *Manager) rememberDelegated(lease *pool.Lease, peerName, domain string) {
	if lease == nil {
		return
	}
	now := time.Now()
	m.delegatedMu.Lock()
	defer m.delegatedMu.Unlock()
	if m.delegated == nil {
		m.delegated = make(map[string]delegatedLease)
	}
	for id, d := range m.delegated {
		if now.Sub(d.at) > delegatedTTL {
			delete(m.delegated, id)
		}
	}
	m.delegated[lease.ID] = delegatedLease{peerName: peerName, domain: domain, at: now}
	if m.delegations != nil {
		m.delegations.DelegationWon(lease, peerName, domain)
	}
}

// takeDelegated looks a lease up in the delegated table and removes it.
func (m *Manager) takeDelegated(id string) (peerName, domain string, ok bool) {
	m.delegatedMu.Lock()
	d, found := m.delegated[id]
	if found {
		delete(m.delegated, id)
	}
	m.delegatedMu.Unlock()
	if found && m.delegations != nil {
		m.delegations.DelegationDone(id)
	}
	return d.peerName, d.domain, found
}

// peerByName finds the directory peer carrying the name, nil when absent.
func (m *Manager) peerByName(name string) directory.Forwarder {
	if name == "" {
		return nil
	}
	for _, peer := range m.dir.Peers() {
		if peer.Name() == name {
			return peer
		}
	}
	return nil
}

// releaseRemote routes a delegated lease's release. Target selection is
// the (peer, domain) rule: the domain's current owner per the route table
// when the lease carries a routable domain — the grantor may have handed
// the domain off since the win — otherwise the recorded grantor. When the
// current owner is this very node (the domain migrated home and the lease
// was re-adopted into a local pool), the release lands locally.
func (m *Manager) releaseRemote(peerName, domain string, lease *pool.Lease) error {
	target := peerName
	if m.routes != nil && domain != "" {
		if owner, ok := m.routes.Owner(domain); ok {
			target = owner
		}
	}
	if target == m.name {
		if ref, ok := m.dir.ByInstance(lease.Pool); ok && ref.Local != nil {
			return ref.Local.Release(lease.ID)
		}
		return fmt.Errorf("poolmgr %s: domain %s migrated home but lease %s has no local pool %s",
			m.name, domain, lease.ID, lease.Pool)
	}
	peer := m.peerByName(target)
	if peer == nil && target != peerName {
		// The current owner is not a dialed peer; fall back to the grantor.
		peer = m.peerByName(peerName)
	}
	if peer == nil {
		return fmt.Errorf("poolmgr %s: no peer %s to take lease %s back", m.name, target, lease.ID)
	}
	rel, ok := peer.(directory.LeaseReleaser)
	if !ok {
		return fmt.Errorf("poolmgr %s: peer %s cannot take lease %s back", m.name, peer.Name(), lease.ID)
	}
	return rel.Release(lease)
}

// RestoreDelegated re-installs a delegated-lease route from a journal
// replay: the lease was won through the named peer (for a query pinning
// domain, "" when unroutable) before the crash, so its eventual Release
// must route back again. It reports false when neither the recorded
// grantor nor the domain's current owner is reachable (the mesh changed
// across the restart); the caller then drops the lease — the grantor's
// own reaper reclaims the machine once renewals stop arriving.
func (m *Manager) RestoreDelegated(lease *pool.Lease, peerName, domain string) bool {
	if lease == nil || peerName == "" {
		return false
	}
	reachable := m.peerByName(peerName) != nil
	if !reachable && m.routes != nil && domain != "" {
		if owner, ok := m.routes.Owner(domain); ok {
			reachable = owner == m.name || m.peerByName(owner) != nil
		}
	}
	if !reachable {
		return false
	}
	m.rememberDelegated(lease, peerName, domain)
	return true
}

// ForwardContext is Forward with cancellation; it implements
// directory.ContextForwarder. Cancelling ctx abandons the resolution
// (in-flight delegation branches are called off where the peer supports
// it, and any lease that lands after the cancel is released, not leaked).
func (m *Manager) ForwardContext(ctx context.Context, q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	if ttl <= 0 {
		m.failed.Add(1)
		return nil, ErrTTLExpired
	}
	vset := newStringSet(visited)
	if vset.has(m.name) {
		m.failed.Add(1)
		return nil, fmt.Errorf("poolmgr %s: query already visited this manager", m.name)
	}

	// Directed hop: when the ownership table pins the query's domain on a
	// remote peer, that peer's white pages are the only ones holding the
	// domain's records — go straight there, before scanning local pools
	// and instead of racing every peer. One hop of TTL is spent, exactly
	// as a serial delegation would. A failed hop (owner overloaded, owner
	// not dialed) falls back to the pre-partition path — local resolve,
	// then fan-out over the remaining peers — with the owner marked
	// visited so no branch retries it.
	domain, routable := "", false
	if m.routes != nil {
		if domain, routable = route.DomainOf(q); routable {
			if owner, ok := m.routes.Owner(domain); ok && owner != m.name && !vset.has(owner) {
				if peer := m.peerByName(owner); peer != nil {
					m.forwarded.Add(1)
					m.fstats.Directed(owner)
					lease, err := forwardPeer(ctx, peer, q, ttl-1, extendVisited(visited, m.name))
					if err == nil {
						m.fstats.DirectedWin(owner)
						m.rememberDelegated(lease, owner, domain)
						return lease, nil
					}
					m.fstats.DirectedMiss(owner)
					if errors.Is(err, ErrTTLExpired) {
						m.failed.Add(1)
						return nil, err
					}
					if ctx.Err() != nil {
						m.failed.Add(1)
						return nil, ctx.Err()
					}
					visited = extendVisited(visited, owner)
					vset[owner] = struct{}{}
				}
			}
		}
	}

	name := query.Name(q)
	if lease, err := m.resolveLocal(name, q); err == nil {
		m.resolved.Add(1)
		return lease, nil
	}

	// Local resolution failed: attach our name, decrement the TTL, and
	// delegate to the unvisited peers listed in the directory.
	visited = extendVisited(visited, m.name)
	vset[m.name] = struct{}{}
	ttl--
	var peers []directory.Forwarder
	for _, peer := range m.dir.Peers() {
		if peer.Name() == m.name || vset.has(peer.Name()) {
			continue
		}
		peers = append(peers, peer)
	}
	if len(peers) == 0 {
		m.failed.Add(1)
		if ttl <= 0 {
			return nil, ErrTTLExpired
		}
		return nil, ErrUnresolvable
	}
	if m.fanout <= 1 || len(peers) == 1 {
		return m.delegateSerial(ctx, q, domain, ttl, visited, peers)
	}
	return m.delegateFanout(ctx, q, domain, ttl, visited, peers)
}

// delegateSerial walks the candidate peers one at a time — the paper's
// policy, kept bit-for-bit for fanout<=1 (and as the differential
// baseline the benchmark measures the fan-out against).
func (m *Manager) delegateSerial(ctx context.Context, q *query.Query, domain string, ttl int, visited []string, peers []directory.Forwarder) (*pool.Lease, error) {
	for _, peer := range peers {
		m.forwarded.Add(1)
		m.fstats.Forwarded(peer.Name())
		lease, err := forwardPeer(ctx, peer, q, ttl, visited)
		if err == nil {
			m.fstats.Win(peer.Name())
			m.rememberDelegated(lease, peer.Name(), domain)
			return lease, nil
		}
		m.fstats.Failure(peer.Name())
		if errors.Is(err, ErrTTLExpired) {
			m.failed.Add(1)
			return nil, err
		}
		if ctx.Err() != nil {
			m.failed.Add(1)
			return nil, ctx.Err()
		}
		// Peer failed for another reason; it recorded itself in its own
		// visited handling, but the next branch's copy must also skip it.
		visited = extendVisited(visited, peer.Name())
	}
	m.failed.Add(1)
	if ttl <= 0 {
		return nil, ErrTTLExpired
	}
	return nil, ErrUnresolvable
}

// fanResult is one delegation branch's outcome.
type fanResult struct {
	peer  directory.Forwarder
	lease *pool.Lease
	err   error
}

// delegateFanout races up to m.fanout peers concurrently; the first
// granted lease wins and cancels the rest. Branch launches stagger by
// m.hedgeDelay (zero launches the full width at once), and a failed
// branch is replaced by the next candidate immediately, so the width
// bounds concurrency, not attempts.
func (m *Manager) delegateFanout(ctx context.Context, q *query.Query, domain string, ttl int, visited []string, peers []directory.Forwarder) (*pool.Lease, error) {
	ctx, cancel := context.WithCancel(ctx)
	m.fstats.Fanout()
	width := min(m.fanout, len(peers))
	// Buffered for every candidate: a branch can always deliver its
	// result and exit, even after the winner returned and nothing reads.
	results := make(chan fanResult, len(peers))
	next, inflight := 0, 0
	launch := func() {
		peer := peers[next]
		next++
		inflight++
		m.forwarded.Add(1)
		m.fstats.Forwarded(peer.Name())
		go func() {
			lease, err := forwardPeer(ctx, peer, q, ttl, visited)
			results <- fanResult{peer: peer, lease: lease, err: err}
		}()
	}

	launch()
	var hedge *time.Timer
	var hedgeC <-chan time.Time
	if m.hedgeDelay > 0 {
		hedge = time.NewTimer(m.hedgeDelay)
		hedgeC = hedge.C
		defer hedge.Stop()
	} else {
		for inflight < width {
			launch()
		}
	}

	// finish settles the race: cancel the outstanding branches and hand
	// them to a reaper that releases whatever leases they still deliver.
	finish := func(lease *pool.Lease, err error) (*pool.Lease, error) {
		cancel()
		if inflight > 0 {
			go m.drainLosers(domain, results, inflight)
		}
		return lease, err
	}
	for {
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				m.fstats.Win(r.peer.Name())
				m.rememberDelegated(r.lease, r.peer.Name(), domain)
				return finish(r.lease, nil)
			}
			m.fstats.Failure(r.peer.Name())
			if errors.Is(r.err, ErrTTLExpired) {
				// The query's hop budget is spent somewhere down this
				// branch; per the paper the request has failed, so do not
				// wait out (or start) other branches.
				m.failed.Add(1)
				return finish(nil, r.err)
			}
			if next < len(peers) {
				launch() // immediate replacement keeps the width busy
			} else if inflight == 0 {
				cancel()
				m.failed.Add(1)
				if ttl <= 0 {
					return nil, ErrTTLExpired
				}
				return nil, ErrUnresolvable
			}
		case <-hedgeC:
			if inflight < width && next < len(peers) {
				m.fstats.HedgeFired()
				launch()
			}
			if inflight < width && next < len(peers) {
				hedge.Reset(m.hedgeDelay)
			} else {
				hedgeC = nil
			}
		case <-ctx.Done():
			m.failed.Add(1)
			return finish(nil, ctx.Err())
		}
	}
}

// drainLosers reaps the branches still in flight after the race settled:
// each one either failed (nothing to do) or granted a lease on its peer,
// which must go back — a lease nobody will use is leaked remote capacity.
// Releases route through the (peer, domain) rule like any delegated
// release, so a loser lease in a domain that just changed hands still
// reaches the instance that holds it.
func (m *Manager) drainLosers(domain string, results <-chan fanResult, inflight int) {
	for i := 0; i < inflight; i++ {
		r := <-results
		m.fstats.LoserCancelled(r.peer.Name())
		if r.err == nil && r.lease != nil {
			_ = m.releaseRemote(r.peer.Name(), domain, r.lease)
		}
	}
}

// forwardPeer delegates one hop, through the cancellable entry point when
// the peer offers it.
func forwardPeer(ctx context.Context, peer directory.Forwarder, q *query.Query, ttl int, visited []string) (*pool.Lease, error) {
	if cf, ok := peer.(directory.ContextForwarder); ok {
		return cf.ForwardContext(ctx, q, ttl, visited)
	}
	return peer.Forward(q, ttl, visited)
}
