package poolmgr

import (
	"fmt"
	"sync"
	"time"

	"actyp/internal/directory"
	"actyp/internal/policy"
	"actyp/internal/pool"
	"actyp/internal/query"
	"actyp/internal/registry"
	"actyp/internal/schedule"
)

// LocalFactory creates pool instances in-process ("if the resource pool
// and the pool manager are on the same machine, the pool manager simply
// forks a process that initializes itself", Section 5.2.3 — a goroutine-
// backed object here). It tracks every pool it created so they can be shut
// down together.
type LocalFactory struct {
	// DB is the white-pages database new pools initialize from. Required.
	DB *registry.DB
	// Family is the query family (default "punch").
	Family string
	// Objective names the scheduling objective for new pools (default
	// least-load). Each pool gets a fresh instance.
	Objective string
	// MaxMachines caps pool sizes (0: unlimited).
	MaxMachines int
	// Exclusive controls whether created pools take machines (default
	// true for instance 0; replicas share automatically).
	NonExclusive bool
	// ScanCost is forwarded to created pools; see pool.Config.ScanCost.
	ScanCost time.Duration
	// Policies is forwarded to created pools; see pool.Config.Policies.
	Policies *policy.Store
	// LeaseTTL is forwarded to created pools; see pool.Config.LeaseTTL.
	LeaseTTL time.Duration
	// Engine selects the allocation engine of created pools; see
	// pool.Config.Engine.
	Engine string
	// Events, when non-nil, subscribes every created pool to the registry
	// change stream for incremental refresh; pools unsubscribe themselves
	// on Close, so the subscription follows the pool across the manager's
	// whole create/close lifecycle (including race-loser closes). See
	// pool.Config.Events.
	Events *pool.Dispatcher
	// Log is forwarded to created pools; see pool.Config.Log.
	Log pool.LeaseLog

	mu      sync.Mutex
	created []*pool.Pool
}

// Create implements Factory.
func (f *LocalFactory) Create(name query.PoolName, instance int) (directory.PoolRef, error) {
	if f.DB == nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr: local factory needs a database")
	}
	obj, err := schedule.ByName(f.Objective)
	if err != nil {
		return directory.PoolRef{}, err
	}
	p, err := pool.New(pool.Config{
		Name:        name,
		Family:      f.Family,
		Instance:    instance,
		DB:          f.DB,
		Objective:   obj,
		MaxMachines: f.MaxMachines,
		Exclusive:   !f.NonExclusive && instance == 0,
		ScanCost:    f.ScanCost,
		Policies:    f.Policies,
		LeaseTTL:    f.LeaseTTL,
		Engine:      f.Engine,
		Events:      f.Events,
		Log:         f.Log,
	})
	if err != nil {
		return directory.PoolRef{}, err
	}
	f.mu.Lock()
	f.created = append(f.created, p)
	f.mu.Unlock()
	return directory.PoolRef{Name: name, Instance: p.ID(), Local: p}, nil
}

// Adopt rebuilds a pool instance from a journal replay: instead of
// walking the white pages by criteria (whose free machines a concurrent
// creation could race for), the pool loads exactly the given member
// list — the machines whose taken marks (exclusive) or live leases
// (non-exclusive replicas) survived in the replayed registry state. An
// exclusive adoption relies on the members already carrying this
// instance's taken mark; pool.New's member path loads without re-taking,
// and the marks then release normally on Close.
func (f *LocalFactory) Adopt(name query.PoolName, instance int, members []string, exclusive bool) (directory.PoolRef, error) {
	if f.DB == nil {
		return directory.PoolRef{}, fmt.Errorf("poolmgr: local factory needs a database")
	}
	if len(members) == 0 {
		return directory.PoolRef{}, fmt.Errorf("poolmgr: adopt %s#%d: no members", name, instance)
	}
	obj, err := schedule.ByName(f.Objective)
	if err != nil {
		return directory.PoolRef{}, err
	}
	p, err := pool.New(pool.Config{
		Name:      name,
		Family:    f.Family,
		Instance:  instance,
		DB:        f.DB,
		Objective: obj,
		Members:   members,
		Exclusive: exclusive,
		ScanCost:  f.ScanCost,
		Policies:  f.Policies,
		LeaseTTL:  f.LeaseTTL,
		Engine:    f.Engine,
		Events:    f.Events,
		Log:       f.Log,
	})
	if err != nil {
		return directory.PoolRef{}, err
	}
	f.mu.Lock()
	f.created = append(f.created, p)
	f.mu.Unlock()
	return directory.PoolRef{Name: name, Instance: p.ID(), Local: p}, nil
}

// Pools returns every pool this factory created.
func (f *LocalFactory) Pools() []*pool.Pool {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*pool.Pool, len(f.created))
	copy(out, f.created)
	return out
}

// CloseAll shuts down every created pool, releasing their machines.
func (f *LocalFactory) CloseAll() {
	for _, p := range f.Pools() {
		p.Close()
	}
}
