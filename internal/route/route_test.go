package route

import (
	"testing"
	"time"

	"actyp/internal/query"
	"actyp/internal/registry"
)

func TestEmptyTableOwnsEverything(t *testing.T) {
	tb := New("a")
	if tb.Partitioned() {
		t.Fatal("empty table claims to be partitioned")
	}
	if _, ok := tb.Owner("purdue"); ok {
		t.Fatal("empty table routed a domain")
	}
	if !tb.Owns("purdue") || !tb.Owns("") {
		t.Fatal("empty table must own every domain (pre-partition behaviour)")
	}
}

func TestStaticBeatsRendezvous(t *testing.T) {
	tb := New("a")
	tb.Reload(map[string]string{"purdue": "b"}, []string{"a", "b", "c"})
	owner, ok := tb.Owner("purdue")
	if !ok || owner != "b" {
		t.Fatalf("static assignment ignored: got %q ok=%v", owner, ok)
	}
	if tb.Owns("purdue") {
		t.Fatal("a claims ownership of a domain pinned to b")
	}
}

func TestRendezvousDeterministicAndBalanced(t *testing.T) {
	nodes := []string{"node-a", "node-b", "node-c", "node-d"}
	tb := New("node-a")
	tb.Reload(nil, nodes)

	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		d := "domain-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		o1, ok1 := tb.Owner(d)
		o2, ok2 := tb.Owner(d)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("non-deterministic owner for %s: %q/%q", d, o1, o2)
		}
		counts[o1]++
	}
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Fatalf("rendezvous assigned nothing to %s: %v", n, counts)
		}
	}
}

// Removing a node must only move the domains it owned — the rendezvous
// minimal-disruption property the migration protocol leans on.
func TestRendezvousMinimalDisruption(t *testing.T) {
	all := []string{"node-a", "node-b", "node-c", "node-d"}
	tb := New("node-a")
	tb.Reload(nil, all)

	domains := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		domains = append(domains, "d"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)))
	}
	before := map[string]string{}
	for _, d := range domains {
		before[d], _ = tb.Owner(d)
	}

	tb.Reload(nil, []string{"node-a", "node-b", "node-c"}) // node-d leaves
	for _, d := range domains {
		after, _ := tb.Owner(d)
		if before[d] != "node-d" && after != before[d] {
			t.Fatalf("domain %s moved from %s to %s though its owner stayed up", d, before[d], after)
		}
		if before[d] == "node-d" && after == "node-d" {
			t.Fatalf("domain %s still owned by departed node", d)
		}
	}
}

func TestReloadIsAtomicCopy(t *testing.T) {
	static := map[string]string{"purdue": "b"}
	nodes := []string{"b", "a", "a", ""}
	tb := New("a")
	tb.Reload(static, nodes)
	static["purdue"] = "mutated"
	nodes[0] = "mutated"
	if owner, _ := tb.Owner("purdue"); owner != "b" {
		t.Fatalf("table aliases caller's static map: owner %q", owner)
	}
	got := tb.Nodes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("nodes not deduped/sorted/copied: %v", got)
	}
}

func TestDomainOf(t *testing.T) {
	q := query.New().
		Set("punch.rsrc.arch", query.Eq("sun")).
		Set(DomainKey, query.Eq("purdue"))
	if d, ok := DomainOf(q); !ok || d != "purdue" {
		t.Fatalf("DomainOf = %q,%v", d, ok)
	}
	for name, bad := range map[string]*query.Query{
		"nil":      nil,
		"missing":  query.New().Set("punch.rsrc.arch", query.Eq("sun")),
		"wildcard": query.New().Set(DomainKey, query.Any()),
		"negated":  query.New().Set(DomainKey, query.Ne("purdue")),
		"set":      query.New().Set(DomainKey, query.In("purdue", "upc")),
	} {
		if d, ok := DomainOf(bad); ok {
			t.Fatalf("%s query routed to %q", name, d)
		}
	}
}

func TestFilterRoundTrips(t *testing.T) {
	q, err := query.ParseBasic(Filter("upc"))
	if err != nil {
		t.Fatalf("Filter output does not parse: %v", err)
	}
	if d, ok := DomainOf(q); !ok || d != "upc" {
		t.Fatalf("parsed filter yields %q,%v", d, ok)
	}
}

func TestKeepMachine(t *testing.T) {
	fleet, err := registry.DefaultFleetSpec(8).Build(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	tb := New("a")
	tb.Reload(map[string]string{"purdue": "a", "upc": "b"}, nil)
	kept := 0
	for _, m := range fleet {
		if tb.KeepMachine(m) {
			if MachineDomain(m) != "purdue" {
				t.Fatalf("kept foreign machine %s (%s)", m.Static.Name, MachineDomain(m))
			}
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("kept %d of 8 machines, want the 4 purdue ones", kept)
	}
	if !tb.KeepMachine(&registry.Machine{}) {
		t.Fatal("domainless machine must stay local")
	}
}

func TestParseStatic(t *testing.T) {
	got, err := ParseStatic("me", " purdue , upc=other ,")
	if err != nil {
		t.Fatal(err)
	}
	if got["purdue"] != "me" || got["upc"] != "other" || len(got) != 2 {
		t.Fatalf("ParseStatic = %v", got)
	}
	if _, err := ParseStatic("me", "bad="); err == nil {
		t.Fatal("empty node accepted")
	}
	if _, err := ParseStatic("me", "=node"); err == nil {
		t.Fatal("empty domain accepted")
	}
}
