// Package route maps administrative domains to the actypd peers that own
// them. The paper's architecture is explicitly multi-domain — each Active
// Yellow Pages daemon manages the resources of its own administrative
// domain and cooperates with peers for the rest — and this package is the
// ownership half of that sentence: given a domain, which node's white
// pages hold the authoritative records?
//
// Ownership comes from two layers. Static assignments (the daemon's
// -own-domains flag, an operator saying "purdue lives on node A") win
// outright. Everything else falls to rendezvous hashing (highest random
// weight) over the node set: each node scores FNV-1a(node, domain) and
// the highest score owns the domain. Rendezvous keeps reassignment
// minimal when nodes join or leave — only the domains the new node wins
// (or the dead node held) move — and needs no coordination: every peer
// computes the same table from the same node list.
//
// A Table with neither static entries nor nodes answers "local" for every
// domain: an unpartitioned daemon owns the whole namespace, which is
// exactly the pre-partition behaviour.
package route

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync/atomic"

	"actyp/internal/query"
	"actyp/internal/registry"
)

// DomainKey is the indexed white-pages attribute that carries a machine's
// administrative domain, and the query key a domain-constrained request
// pins with an equality condition.
const DomainKey = "punch.rsrc.domain"

// Table is a domain-ownership table. It is safe for concurrent use: reads
// see an immutable snapshot, Reload swaps the snapshot atomically (the
// ownership handoff protocol reloads tables on live nodes while requests
// are in flight).
type Table struct {
	local string
	snap  atomic.Pointer[snapshot]
}

type snapshot struct {
	static map[string]string // domain -> owning node, operator-pinned
	nodes  []string          // rendezvous candidates, sorted, deduped
}

// New builds a table for a node. local is this node's name as peers know
// it (the poolmgr/visited-list name); it is what Owns compares against.
func New(local string) *Table {
	t := &Table{local: local}
	t.snap.Store(&snapshot{})
	return t
}

// Local returns the node name the table was built for.
func (t *Table) Local() string { return t.local }

// Reload atomically replaces the ownership table: static domain->node
// assignments (may be nil) and the rendezvous node set (may be empty).
// Both are copied; the caller keeps its arguments.
func (t *Table) Reload(static map[string]string, nodes []string) {
	s := &snapshot{}
	if len(static) > 0 {
		s.static = make(map[string]string, len(static))
		for d, n := range static {
			s.static[d] = n
		}
	}
	if len(nodes) > 0 {
		seen := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			if n != "" && !seen[n] {
				seen[n] = true
				s.nodes = append(s.nodes, n)
			}
		}
		sort.Strings(s.nodes)
	}
	t.snap.Store(s)
}

// Nodes returns the rendezvous node set (a copy, sorted).
func (t *Table) Nodes() []string {
	s := t.snap.Load()
	out := make([]string, len(s.nodes))
	copy(out, s.nodes)
	return out
}

// Static returns the operator-pinned assignments (a copy).
func (t *Table) Static() map[string]string {
	s := t.snap.Load()
	out := make(map[string]string, len(s.static))
	for d, n := range s.static {
		out[d] = n
	}
	return out
}

// Owner resolves a domain to its owning node. ok is false when the table
// cannot route the domain — empty domain, or a table with no assignments
// at all — in which case the caller keeps pre-partition behaviour (local
// resolution plus fan-out fallback).
func (t *Table) Owner(domain string) (owner string, ok bool) {
	if domain == "" {
		return "", false
	}
	s := t.snap.Load()
	if n, ok := s.static[domain]; ok {
		return n, true
	}
	if len(s.nodes) == 0 {
		return "", false
	}
	return rendezvous(s.nodes, domain), true
}

// Owns reports whether this node holds the authoritative records for the
// domain. Unroutable domains (including "") read as owned: records
// without a domain stay local, and an empty table owns everything.
func (t *Table) Owns(domain string) bool {
	owner, ok := t.Owner(domain)
	return !ok || owner == t.local
}

// Partitioned reports whether the table routes anything at all — i.e.
// whether owned-only storage and directed routing are in effect.
func (t *Table) Partitioned() bool {
	s := t.snap.Load()
	return len(s.static) > 0 || len(s.nodes) > 0
}

// KeepMachine is the owned-only storage predicate: whether a machine
// record belongs in this node's white pages. Machines with no domain
// attribute stay local.
func (t *Table) KeepMachine(m *registry.Machine) bool {
	return t.Owns(MachineDomain(m))
}

// rendezvous picks the highest-random-weight node for a domain. Ties
// break toward the lexicographically smaller node (nodes is sorted and
// the scan keeps the first maximum), so every peer agrees.
func rendezvous(nodes []string, domain string) string {
	best, bestScore := "", uint64(0)
	for _, n := range nodes {
		if s := score(n, domain); best == "" || s > bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// score weighs one (node, domain) pair: FNV-1a over "node\0domain", then a
// splitmix64 finalizer. The finalizer matters — raw FNV-1a has weak
// avalanche on trailing bytes, so without it one node's prefix dominates
// the comparison and wins nearly every domain.
func score(node, domain string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(domain))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DomainOf extracts the domain a basic query pins, if any. Only an exact
// equality condition routes: a wildcard, negation, range, or set leaves
// the query unroutable (ok=false) and the caller falls back to fan-out.
func DomainOf(q *query.Query) (string, bool) {
	if q == nil {
		return "", false
	}
	c, ok := q.Get(DomainKey)
	if !ok || c.Op != query.OpEq || c.Str == "" || c.Str == "*" {
		return "", false
	}
	return c.Str, true
}

// MachineDomain extracts a machine record's administrative domain ("" when
// the record carries none).
func MachineDomain(m *registry.Machine) string {
	if m == nil {
		return ""
	}
	return m.Policy.Params["domain"].Str
}

// Filter renders the basic-query filter text selecting one domain — the
// predicate a per-domain watch subscription or mirror ships to the owner
// so only the slice it needs travels the wire.
func Filter(domain string) string {
	return DomainKey + " = " + domain
}

// FilterAny renders the basic-query filter text selecting any of the
// given domains (a comma-separated set condition; one domain degenerates
// to Filter's equality). Empty input selects nothing useful and returns
// "" so callers fall back to an unfiltered subscription.
func FilterAny(domains []string) string {
	parts := make([]string, 0, len(domains))
	for _, d := range domains {
		if d = strings.TrimSpace(d); d != "" {
			parts = append(parts, d)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	if len(parts) == 1 {
		return Filter(parts[0])
	}
	return DomainKey + " = " + strings.Join(parts, ",")
}

// ParseStatic parses the -own-domains flag syntax: comma-separated
// entries, each either "domain" (owned by local) or "domain=node".
func ParseStatic(local, spec string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, n, found := strings.Cut(part, "=")
		d, n = strings.TrimSpace(d), strings.TrimSpace(n)
		if d == "" || (found && n == "") {
			return nil, fmt.Errorf("route: bad -own-domains entry %q", part)
		}
		if !found {
			n = local
		}
		out[d] = n
	}
	return out, nil
}
