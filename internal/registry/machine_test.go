package registry

import (
	"strings"
	"testing"
	"time"

	"actyp/internal/query"
)

func testMachine(name string) *Machine {
	return &Machine{
		State: StateUp,
		Dynamic: Dynamic{
			Load: 0.2, ActiveJobs: 1, FreeMemory: 256, FreeSwap: 512,
			LastUpdate: time.Unix(1000, 0), ServiceFlag: FlagExecUnit | FlagMountMgr,
		},
		Static: Static{Speed: 300, CPUs: 2, MaxLoad: 4, Name: name},
		Access: Access{
			ObjectRef: "/punch/machines/" + name + ".obj", SharedAccount: "nobody",
			ExecUnitPort: 7000, MountMgrPort: 7001, Addr: "10.0.0.1",
		},
		Policy: Policy{
			UserGroups: []string{"ece"}, ToolGroups: []string{"tsuprem4"},
			ShadowPoolRef: "/punch/shadow/" + name,
			Params: query.AttrSet{
				"arch":   query.StrAttr("sun"),
				"memory": query.NumAttr(256),
				"domain": query.StrAttr("purdue"),
			},
		},
	}
}

func TestStateStringParse(t *testing.T) {
	for _, s := range []State{StateUp, StateDown, StateBlocked} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, err %v", s, got, err)
		}
	}
	if _, err := ParseState("sideways"); err == nil {
		t.Error("unknown state should fail")
	}
	if got := State(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown state string = %q", got)
	}
}

func TestMachineCloneIsDeep(t *testing.T) {
	m := testMachine("a")
	c := m.Clone()
	c.Policy.UserGroups[0] = "mutated"
	c.Policy.Params["arch"] = query.StrAttr("hp")
	c.Static.Name = "b"
	if m.Policy.UserGroups[0] != "ece" {
		t.Error("Clone shares UserGroups")
	}
	if m.Policy.Params["arch"].Str != "sun" {
		t.Error("Clone shares Params")
	}
	if m.Static.Name != "a" {
		t.Error("Clone shares Static")
	}
}

func TestMachineAttrs(t *testing.T) {
	m := testMachine("a")
	attrs := m.Attrs()
	// Admin params present.
	if attrs["arch"].Str != "sun" {
		t.Errorf("arch = %+v", attrs["arch"])
	}
	// Built-ins derived from other fields.
	if attrs["name"].Str != "a" {
		t.Errorf("name = %+v", attrs["name"])
	}
	if attrs["speed"].Num != 300 || attrs["cpus"].Num != 2 {
		t.Errorf("speed/cpus = %+v/%+v", attrs["speed"], attrs["cpus"])
	}
	if attrs["load"].Num != 0.2 || attrs["freememory"].Num != 256 {
		t.Errorf("dynamic attrs wrong")
	}
	if len(attrs["usergroup"].List) != 1 || attrs["usergroup"].List[0] != "ece" {
		t.Errorf("usergroup = %+v", attrs["usergroup"])
	}
	// Attrs must be a copy: mutating it must not touch the record.
	attrs["arch"] = query.StrAttr("hp")
	if m.Policy.Params["arch"].Str != "sun" {
		t.Error("Attrs aliases Params")
	}
}

func TestMachineUsable(t *testing.T) {
	m := testMachine("a")
	if !m.Usable() {
		t.Error("fresh machine should be usable")
	}
	m.State = StateDown
	if m.Usable() {
		t.Error("down machine should not be usable")
	}
	m.State = StateUp
	m.Dynamic.Load = m.Static.MaxLoad
	if m.Usable() {
		t.Error("machine at max load should not be usable")
	}
}

func TestGroupChecks(t *testing.T) {
	m := testMachine("a")
	if !m.AllowsUserGroup("ece") || m.AllowsUserGroup("cs") {
		t.Error("user group check wrong")
	}
	if !m.SupportsToolGroup("tsuprem4") || m.SupportsToolGroup("matlab") {
		t.Error("tool group check wrong")
	}
	m.Policy.UserGroups = nil
	m.Policy.ToolGroups = nil
	if !m.AllowsUserGroup("anyone") || !m.SupportsToolGroup("anything") {
		t.Error("empty lists should admit everyone")
	}
}

func TestMachineValidate(t *testing.T) {
	good := testMachine("a")
	if err := good.Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	cases := []func(*Machine){
		func(m *Machine) { m.Static.Name = "" },
		func(m *Machine) { m.Static.CPUs = 0 },
		func(m *Machine) { m.Static.Speed = 0 },
		func(m *Machine) { m.Static.MaxLoad = 0 },
		func(m *Machine) { m.Access.ExecUnitPort = -1 },
		func(m *Machine) { m.Access.MountMgrPort = 70000 },
	}
	for i, mut := range cases {
		m := testMachine("a")
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid machine accepted", i)
		}
	}
}

func TestFleetSpecBuild(t *testing.T) {
	now := time.Unix(5000, 0)
	machines, err := DefaultFleetSpec(100).Build(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 100 {
		t.Fatalf("built %d machines", len(machines))
	}
	archs := map[string]int{}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Fatalf("generated machine invalid: %v", err)
		}
		archs[m.Policy.Params["arch"].Str]++
		if !m.Usable() {
			t.Fatalf("generated machine %s not usable", m.Static.Name)
		}
		if m.Dynamic.LastUpdate != now {
			t.Fatalf("machine %s LastUpdate = %v", m.Static.Name, m.Dynamic.LastUpdate)
		}
	}
	if len(archs) != 4 {
		t.Errorf("expected 4 architectures, got %v", archs)
	}
	for a, n := range archs {
		if n != 25 {
			t.Errorf("arch %s count = %d, want 25", a, n)
		}
	}
}

func TestFleetSpecDeterministic(t *testing.T) {
	a, err := DefaultFleetSpec(50).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultFleetSpec(50).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Static != b[i].Static {
			t.Fatalf("machine %d differs across builds", i)
		}
	}
}

func TestFleetSpecErrors(t *testing.T) {
	if _, err := (FleetSpec{N: 0, Archs: []string{"x"}, Domains: []string{"d"}}).Build(time.Time{}); err == nil {
		t.Error("zero-size fleet should fail")
	}
	if _, err := (FleetSpec{N: 1}).Build(time.Time{}); err == nil {
		t.Error("fleet without archs should fail")
	}
}

func TestHomogeneousFleet(t *testing.T) {
	machines, err := HomogeneousFleetSpec(10).Build(time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range machines {
		if m.Policy.Params["arch"].Str != "sun" || m.Policy.Params["domain"].Str != "purdue" {
			t.Fatalf("machine %s not homogeneous", m.Static.Name)
		}
	}
}
