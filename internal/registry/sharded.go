package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"actyp/internal/query"
)

// Sharded is the scalable white-pages engine: machine records are hash-
// partitioned across N shards, each with its own RWMutex, so updates and
// queries on different machines do not serialize on one lock. Each shard
// additionally keeps
//
//   - a free list (the names whose TakenBy is empty), so Take never scans
//     machines that are already held by a pool instance, and
//   - an inverted index over discrete admin parameters (arch, OS, domain,
//     ... — see DefaultIndexedAttrs), so Select and Take visit only the
//     posting list of the most selective indexed condition instead of the
//     whole shard.
//
// Observable semantics match Locked exactly: results are name-sorted,
// callers only ever see copies, and the mark-taken protocol of Section
// 5.2.3 is atomic per machine. Walk, Save, Names and Len assemble their
// snapshots shard by shard, so under concurrent writes they see a possibly
// interleaved (but per-machine consistent) view, where Locked sees a
// single frozen instant; serial callers cannot tell the difference.
type Sharded struct {
	shards  []*shard
	indexed map[string]bool

	// watchHub implements Watch; mutators emit change events while holding
	// the record's shard lock, so each machine's events are totally
	// ordered. Subscriber rings never block a writer (see watch.go).
	watchHub
}

type shard struct {
	mu       sync.RWMutex
	machines map[string]*Machine
	free     []string // sorted names with TakenBy == ""
	idx      attrIndex
}

// NewSharded returns an empty sharded backend with the default indexed
// attributes. shards <= 0 selects a GOMAXPROCS-scaled count; positive
// values are honored, rounded up to a power of two (capped at 8192).
func NewSharded(shards int) *Sharded {
	return NewShardedIndexed(shards, DefaultIndexedAttrs)
}

// NewShardedIndexed returns an empty sharded backend indexing the given
// admin parameters. Built-in attribute names (the builtinAttrs table) are
// silently dropped from the set: they are derived from record fields, not
// parameters, so indexing them would produce wrong (partial) answers.
func NewShardedIndexed(shards int, attrs []string) *Sharded {
	if shards <= 0 {
		// Auto: enough shards that concurrent pipeline stages rarely
		// collide, without thousands of locks on huge hosts.
		shards = 4 * runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
		if shards > 512 {
			shards = 512
		}
	}
	// Explicit counts are honored (a 1-shard store is a legitimate sweep
	// point) up to a sanity cap, then rounded up to a power of two.
	if shards > 8192 {
		shards = 8192
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded{
		shards:  make([]*shard, n),
		indexed: make(map[string]bool, len(attrs)),
	}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	for _, a := range attrs {
		if _, builtin := builtinAttrs[a]; !builtin {
			s.indexed[a] = true
		}
	}
	return s
}

func newShard() *shard {
	return &shard{
		machines: make(map[string]*Machine),
		idx:      make(attrIndex),
	}
}

// ShardCount reports the number of shards (observability and tests).
func (s *Sharded) ShardCount() int { return len(s.shards) }

// shardIndex hashes a machine name to its shard index (FNV-1a).
func (s *Sharded) shardIndex(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h & uint32(len(s.shards)-1))
}

func (s *Sharded) shardFor(name string) *shard {
	return s.shards[s.shardIndex(name)]
}

// Add inserts a machine record. It fails if the record is invalid or a
// machine with the same name already exists.
func (s *Sharded) Add(m *Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	name := m.Static.Name
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.machines[name]; ok {
		return fmt.Errorf("registry: machine %q already registered", name)
	}
	sh.insert(s.indexed, m.Clone())
	s.emit(Event{Kind: EventAdded, Name: name})
	return nil
}

// insert wires a record into the shard's map, free list and index. The
// caller holds the shard lock and guarantees the name is unused.
func (sh *shard) insert(indexed map[string]bool, m *Machine) {
	name := m.Static.Name
	sh.machines[name] = m
	if m.TakenBy == "" {
		sh.free = insertSorted(sh.free, name)
	}
	for k, v := range m.Policy.Params {
		if indexed[k] {
			sh.idx.add(k, v, name)
		}
	}
}

// Remove deletes a machine record by name.
func (s *Sharded) Remove(name string) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	delete(sh.machines, name)
	sh.free = removeSorted(sh.free, name)
	for k, v := range m.Policy.Params {
		if s.indexed[k] {
			sh.idx.remove(k, v, name)
		}
	}
	s.emit(Event{Kind: EventRemoved, Name: name})
	return nil
}

// Get returns a copy of the record for name.
func (s *Sharded) Get(name string) (*Machine, error) {
	sh := s.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	m, ok := sh.machines[name]
	if !ok {
		return nil, fmt.Errorf("registry: machine %q not registered", name)
	}
	return m.Clone(), nil
}

// Len returns the number of registered machines.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.machines)
		sh.mu.RUnlock()
	}
	return n
}

// Names returns all machine names, sorted.
func (s *Sharded) Names() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for n := range sh.machines {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// SetState updates field 1 for a machine.
func (s *Sharded) SetState(name string, st State) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	m.State = st
	s.emit(Event{Kind: EventStateSet, Name: name})
	return nil
}

// UpdateDynamic overwrites the monitor-maintained fields 2–7 as a unit.
// Dynamic fields are never indexed, so no index maintenance happens on
// this (very hot) monitor path.
func (s *Sharded) UpdateDynamic(name string, d Dynamic) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	m.Dynamic = d
	s.emit(Event{Kind: EventDynamicUpdated, Name: name, Dynamic: d})
	return nil
}

// UpdateDynamicBatch applies many dynamic updates in one call, the
// monitor's per-sweep entry point: updates are grouped by shard and each
// shard's lock is taken once per batch, so a fleet-wide sweep costs
// O(shards) lock acquisitions instead of O(machines). Unknown machines are
// skipped; it returns how many records were updated.
func (s *Sharded) UpdateDynamicBatch(updates []DynamicUpdate) int {
	if len(updates) == 0 {
		return 0
	}
	byShard := make([][]DynamicUpdate, len(s.shards))
	for _, u := range updates {
		i := s.shardIndex(u.Name)
		byShard[i] = append(byShard[i], u)
	}
	n := 0
	for i, batch := range byShard {
		if len(batch) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		for _, u := range batch {
			m, ok := sh.machines[u.Name]
			if !ok {
				continue
			}
			m.Dynamic = u.Dynamic
			s.emit(Event{Kind: EventDynamicUpdated, Name: u.Name, Dynamic: u.Dynamic})
			n++
		}
		sh.mu.Unlock()
	}
	return n
}

// SetParam sets one administrator-defined parameter (field 20), keeping
// the inverted index in step when the key is indexed.
func (s *Sharded) SetParam(name, key string, attr query.Attr) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	if m.Policy.Params == nil {
		m.Policy.Params = make(query.AttrSet)
	}
	if s.indexed[key] {
		if old, had := m.Policy.Params[key]; had {
			sh.idx.remove(key, old, name)
		}
		sh.idx.add(key, attr, name)
	}
	m.Policy.Params[key] = attr
	s.emit(Event{Kind: EventParamSet, Name: name})
	return nil
}

// Walk calls fn for every machine in name order, stopping early if fn
// returns false. The callback receives a copy; mutations do not write back.
func (s *Sharded) Walk(fn func(*Machine) bool) {
	var clones []*Machine
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, m := range sh.machines {
			clones = append(clones, m.Clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(clones, func(i, j int) bool { return clones[i].Static.Name < clones[j].Static.Name })
	for _, m := range clones {
		if !fn(m) {
			return
		}
	}
}

// plan compiles a query once per operation: the full condition list for
// verification plus the subset the inverted index can serve.
type plan struct {
	conds     []query.RsrcCond
	indexable []idxCond
}

type idxCond struct {
	name  string
	terms []string
}

func (s *Sharded) compile(q *query.Query) plan {
	conds := query.CompileRsrc(q)
	p := plan{conds: conds}
	for _, rc := range conds {
		if !s.indexed[rc.Name] {
			continue
		}
		if terms, ok := condTerms(rc.Cond); ok {
			p.indexable = append(p.indexable, idxCond{name: rc.Name, terms: terms})
		}
	}
	return p
}

// scan calls visit for every machine in the shard that can match the
// plan's indexable conditions — the merged posting lists of the most
// selective indexed condition when the index applies, the whole shard (or
// just the free list, with freeOnly) otherwise. Candidates arrive in
// ascending name order except on the unordered full-shard path, and visit
// may return false to stop early (Take stops at its limit). Full condition
// verification is left to visit. The caller holds the shard lock.
func (sh *shard) scan(p plan, freeOnly bool, visit func(m *Machine) bool) {
	best, useIndex := sh.bestPostings(p)
	if !useIndex {
		if freeOnly {
			for _, name := range sh.free {
				if !visit(sh.machines[name]) {
					return
				}
			}
			return
		}
		for _, m := range sh.machines {
			if !visit(m) {
				return
			}
		}
		return
	}
	forEachMerged(best, func(name string) bool {
		if freeOnly && !containsSorted(sh.free, name) {
			return true
		}
		return visit(sh.machines[name])
	})
}

// bestPostings picks the most selective indexable condition's posting
// lists for this shard. ok=false means no condition is indexable and the
// shard must be scanned.
func (sh *shard) bestPostings(p plan) ([][]string, bool) {
	if len(p.indexable) == 0 {
		return nil, false
	}
	var best [][]string
	bestSize := -1
	for _, ic := range p.indexable {
		posts := sh.idx.postings(ic.name, ic.terms)
		size := 0
		for _, l := range posts {
			size += len(l)
		}
		if bestSize < 0 || size < bestSize {
			best, bestSize = posts, size
			if bestSize == 0 {
				break
			}
		}
	}
	return best, true
}

// Select returns copies of the machines whose attributes satisfy the rsrc
// constraints of the query, regardless of taken state, in name order.
func (s *Sharded) Select(q *query.Query) []*Machine {
	p := s.compile(q)
	var out []*Machine
	for _, sh := range s.shards {
		sh.mu.RLock()
		sh.scan(p, false, func(m *Machine) bool {
			if m.matchConds(p.conds) {
				out = append(out, m.Clone())
			}
			return true
		})
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Static.Name < out[j].Static.Name })
	return out
}

// Take implements the pool-initialization protocol of Section 5.2.3 in two
// phases: gather free matching candidates shard by shard under read locks,
// then claim them in global name order under per-shard write locks,
// re-verifying each candidate at claim time so a machine taken, released
// or reconfigured in between is never handed out stale. Serially this
// yields exactly the Locked result; concurrently, per-machine atomicity
// still guarantees a machine is only ever held by one pool instance.
func (s *Sharded) Take(q *query.Query, poolInstance string, limit int) []*Machine {
	if poolInstance == "" {
		return nil
	}
	p := s.compile(q)
	var cands []string
	for _, sh := range s.shards {
		// The globally-first limit names are necessarily among the first
		// limit of each shard, and scan yields free candidates in name
		// order (the free list and posting lists are sorted), so with a
		// positive limit each shard stops after its first limit matches —
		// Take never materializes the full match set.
		var local []string
		sh.mu.RLock()
		sh.scan(p, true, func(m *Machine) bool {
			if m.matchConds(p.conds) {
				local = append(local, m.Static.Name)
			}
			return limit <= 0 || len(local) < limit
		})
		sh.mu.RUnlock()
		cands = append(cands, local...)
	}
	sort.Strings(cands)
	var out []*Machine
	for _, name := range cands {
		if limit > 0 && len(out) >= limit {
			break
		}
		sh := s.shardFor(name)
		sh.mu.Lock()
		if m, ok := sh.machines[name]; ok && m.TakenBy == "" && m.matchConds(p.conds) {
			m.TakenBy = poolInstance
			sh.free = removeSorted(sh.free, name)
			out = append(out, m.Clone())
			s.emit(Event{Kind: EventTaken, Name: name})
		}
		sh.mu.Unlock()
	}
	return out
}

// Release clears the taken mark on the named machines, but only if they are
// held by the given pool instance. It returns how many it released.
func (s *Sharded) Release(poolInstance string, names ...string) int {
	n := 0
	for _, name := range names {
		sh := s.shardFor(name)
		sh.mu.Lock()
		if m, ok := sh.machines[name]; ok && m.TakenBy == poolInstance {
			m.TakenBy = ""
			sh.free = insertSorted(sh.free, name)
			n++
			s.emit(Event{Kind: EventReleased, Name: name})
		}
		sh.mu.Unlock()
	}
	return n
}

// ReleaseAll clears every taken mark held by the pool instance, returning
// the count. Pool objects call this when they shut down.
func (s *Sharded) ReleaseAll(poolInstance string) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for name, m := range sh.machines {
			if m.TakenBy == poolInstance {
				m.TakenBy = ""
				sh.free = insertSorted(sh.free, name)
				n++
				s.emit(Event{Kind: EventReleased, Name: name})
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// TakenBy returns the names of machines currently held by the pool
// instance, sorted.
func (s *Sharded) TakenBy(poolInstance string) []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for name, m := range sh.machines {
			if m.TakenBy == poolInstance {
				out = append(out, name)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Save writes the database as JSON to w, in the same name-sorted snapshot
// shape as every other backend.
func (s *Sharded) Save(w io.Writer) error {
	// Machines starts non-nil so an empty database serializes as [] (the
	// same JSON Locked emits), not null.
	snap := snapshot{Machines: []*Machine{}}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, m := range sh.machines {
			snap.Machines = append(snap.Machines, m.Clone())
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snap.Machines, func(i, j int) bool {
		return snap.Machines[i].Static.Name < snap.Machines[j].Static.Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the database contents with the JSON snapshot read from r.
// The snapshot is fully validated before any shard is touched, so a bad
// snapshot leaves the database unchanged; installation locks every shard
// (in order, so concurrent Loads cannot deadlock) to swap atomically.
func (s *Sharded) Load(r io.Reader) error {
	fresh, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	for _, sh := range s.shards {
		sh.machines = make(map[string]*Machine, 1+len(fresh)/len(s.shards))
		sh.free = nil
		sh.idx = make(attrIndex)
	}
	for _, m := range fresh {
		s.shardFor(m.Static.Name).insert(s.indexed, m)
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
	// A wholesale replacement has no incremental description: subscribers
	// get the resync marker and re-read.
	s.emitResync()
	return nil
}

// checkInvariants verifies the internal bookkeeping of every shard: the
// free list holds exactly the untaken machines, records live in the shard
// their name hashes to, and the index holds exactly the terms of the
// indexed parameters. Tests call it after stress runs.
func (s *Sharded) checkInvariants() error {
	for i, sh := range s.shards {
		sh.mu.RLock()
		err := func() error {
			for name, m := range sh.machines {
				if s.shardFor(name) != sh {
					return fmt.Errorf("shard %d: machine %q is in the wrong shard", i, name)
				}
				free := containsSorted(sh.free, name)
				if free != (m.TakenBy == "") {
					return fmt.Errorf("shard %d: machine %q: free-list=%v but TakenBy=%q", i, name, free, m.TakenBy)
				}
				for k, v := range m.Policy.Params {
					if !s.indexed[k] {
						continue
					}
					for _, t := range indexTerms(v) {
						if !containsSorted(sh.idx[k][t], name) {
							return fmt.Errorf("shard %d: machine %q missing from index %q term %q", i, name, k, t)
						}
					}
				}
			}
			if !sort.StringsAreSorted(sh.free) {
				return fmt.Errorf("shard %d: free list is not sorted", i)
			}
			for _, name := range sh.free {
				if _, ok := sh.machines[name]; !ok {
					return fmt.Errorf("shard %d: free list holds unknown machine %q", i, name)
				}
			}
			for k, byTerm := range sh.idx {
				for t, list := range byTerm {
					if !sort.StringsAreSorted(list) {
						return fmt.Errorf("shard %d: index %q term %q posting list is not sorted", i, k, t)
					}
					for _, name := range list {
						m, ok := sh.machines[name]
						if !ok {
							return fmt.Errorf("shard %d: index %q term %q holds unknown machine %q", i, k, t, name)
						}
						v, has := m.Policy.Params[k]
						if !has {
							return fmt.Errorf("shard %d: index %q term %q holds machine %q without that param", i, k, t, name)
						}
						found := false
						for _, want := range indexTerms(v) {
							if want == t {
								found = true
								break
							}
						}
						if !found {
							return fmt.Errorf("shard %d: index %q term %q stale for machine %q (value %q)", i, k, t, name, v.Str)
						}
					}
				}
			}
			return nil
		}()
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}
