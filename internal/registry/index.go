package registry

import (
	"sort"

	"actyp/internal/query"
)

// The inverted index maps (attribute name, term) -> sorted list of machine
// names. Terms are derived so the index is a *no-false-negative
// pre-filter*: for any equality or membership condition on an indexed
// attribute, every machine that could match appears in the posting lists
// of the condition's terms. Candidates are always re-verified with the
// full matcher, so over-approximation is safe; missing a matching machine
// is not.
//
// A value is indexed under its canonical string form, each list member,
// and (for numbers) the canonical numeric rendering. String and numeric
// terms carry distinct prefixes so "5" the string and 5 the number do not
// collide by accident; they are looked up together when a condition allows
// both interpretations, mirroring Attr.Matches.
//
// Posting lists are kept sorted so Take can visit candidates in name order
// and stop as soon as it has its limit — the same reason the free list is
// sorted.

// DefaultIndexedAttrs lists the discrete, admin-maintained parameters the
// sharded backend indexes by default: the attributes queries constrain by
// equality or membership most often (the fleet generator and the paper's
// example queries use arch/OS/domain/owner; StripePools stripes on pool;
// cms and license are the membership-style lists).
var DefaultIndexedAttrs = []string{
	"arch", "ostype", "osversion", "domain", "owner", "cms", "license", "pool",
}

const (
	strTermPrefix = "s\x00"
	numTermPrefix = "n\x00"
)

// indexTerms returns the terms an attribute value is indexed under.
func indexTerms(a query.Attr) []string {
	terms := make([]string, 0, 2+len(a.List))
	terms = append(terms, strTermPrefix+a.Str)
	for _, m := range a.List {
		if m != a.Str {
			terms = append(terms, strTermPrefix+m)
		}
	}
	if a.IsNum {
		terms = append(terms, numTermPrefix+query.FormatNum(a.Num))
	}
	return terms
}

// condTerms returns the terms whose posting lists jointly cover every
// attribute value satisfying the condition, or ok=false when the condition
// cannot be served by the index (ordering, range and negation conditions).
func condTerms(c query.Condition) ([]string, bool) {
	switch c.Op {
	case query.OpEq:
		terms := []string{strTermPrefix + c.Str}
		if c.IsNum {
			terms = append(terms, numTermPrefix+query.FormatNum(c.Num))
		}
		return terms, true
	case query.OpIn:
		terms := make([]string, 0, len(c.Set))
		for _, w := range c.Set {
			terms = append(terms, strTermPrefix+w)
		}
		return terms, true
	}
	return nil, false
}

// insertSorted adds name to a sorted, duplicate-free list.
func insertSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	if i < len(names) && names[i] == name {
		return names
	}
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
	return names
}

// removeSorted deletes name from a sorted list if present.
func removeSorted(names []string, name string) []string {
	i := sort.SearchStrings(names, name)
	if i >= len(names) || names[i] != name {
		return names
	}
	return append(names[:i], names[i+1:]...)
}

// containsSorted reports membership in a sorted list.
func containsSorted(names []string, name string) bool {
	i := sort.SearchStrings(names, name)
	return i < len(names) && names[i] == name
}

// forEachMerged visits the union of the sorted lists in ascending order,
// skipping duplicates, until visit returns false.
func forEachMerged(lists [][]string, visit func(name string) bool) {
	if len(lists) == 1 {
		for _, name := range lists[0] {
			if !visit(name) {
				return
			}
		}
		return
	}
	idx := make([]int, len(lists))
	for {
		best, found := "", false
		for li, l := range lists {
			if idx[li] < len(l) && (!found || l[idx[li]] < best) {
				best, found = l[idx[li]], true
			}
		}
		if !found {
			return
		}
		for li, l := range lists {
			if idx[li] < len(l) && l[idx[li]] == best {
				idx[li]++
			}
		}
		if !visit(best) {
			return
		}
	}
}

// attrIndex is one shard's inverted index: attribute name -> term ->
// sorted machine names.
type attrIndex map[string]map[string][]string

func (ix attrIndex) add(attr string, v query.Attr, name string) {
	byTerm := ix[attr]
	if byTerm == nil {
		byTerm = make(map[string][]string)
		ix[attr] = byTerm
	}
	for _, t := range indexTerms(v) {
		byTerm[t] = insertSorted(byTerm[t], name)
	}
}

func (ix attrIndex) remove(attr string, v query.Attr, name string) {
	byTerm := ix[attr]
	if byTerm == nil {
		return
	}
	for _, t := range indexTerms(v) {
		if rest := removeSorted(byTerm[t], name); len(rest) == 0 {
			delete(byTerm, t)
		} else {
			byTerm[t] = rest
		}
	}
	if len(byTerm) == 0 {
		delete(ix, attr)
	}
}

// postings returns the posting lists for the given terms of one attribute.
// Absent terms contribute nothing; the result may be empty.
func (ix attrIndex) postings(attr string, terms []string) [][]string {
	byTerm := ix[attr]
	if byTerm == nil {
		return nil
	}
	out := make([][]string, 0, len(terms))
	for _, t := range terms {
		if l := byTerm[t]; len(l) > 0 {
			out = append(out, l)
		}
	}
	return out
}
