package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/query"
)

// The stress test hammers Take/Release/UpdateDynamic/Select/SetParam from
// many goroutines (run under -race in CI) and asserts the Section 5.2.3
// exclusivity guarantee: no machine is ever held by two pool instances at
// once. Ownership is tracked in a claims map — a Take that returns a
// machine already present in the map is a double-hand-out.

func stressFleet(t *testing.T, b Backend, n int) {
	t.Helper()
	machines, err := DefaultFleetSpec(n).Build(time.Unix(1000000000, 0).UTC())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range machines {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStressTakeExclusive(t *testing.T) {
	for _, kind := range []string{BackendLocked, BackendSharded} {
		kind := kind
		t.Run("backend="+kind, func(t *testing.T) {
			t.Parallel()
			db, err := OpenBackend(kind, 0)
			if err != nil {
				t.Fatal(err)
			}
			const fleet = 400
			stressFleet(t, db, fleet)

			takers := 8
			iters := 300
			if testing.Short() {
				iters = 60
			}
			queries := []*query.Query{
				query.New().Set("punch.rsrc.arch", query.Eq("sun")),
				query.New().Set("punch.rsrc.arch", query.In("hp", "alpha")),
				query.New().Set("punch.rsrc.domain", query.Eq("purdue")),
				query.New().Set("punch.rsrc.speed", query.Ge(250)),
				query.New(), // unconstrained: everything matches
			}

			var claims sync.Map // machine name -> pool instance
			var wg sync.WaitGroup
			fail := make(chan string, takers)

			for tk := 0; tk < takers; tk++ {
				inst := fmt.Sprintf("stress-pool-%d", tk)
				wg.Add(1)
				go func(tk int, inst string) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						q := queries[(tk+i)%len(queries)]
						got := db.Take(q, inst, 1+(tk+i)%7)
						for _, m := range got {
							if prev, loaded := claims.LoadOrStore(m.Static.Name, inst); loaded {
								fail <- fmt.Sprintf("machine %q handed to %q while held by %v",
									m.Static.Name, inst, prev)
								return
							}
						}
						// Drop the claim before the registry release so a
						// racing Take can never observe a machine that is
						// free in the registry but still claimed here.
						names := machineNames(got)
						for _, n := range names {
							claims.Delete(n)
						}
						if len(names) > 0 {
							if rel := db.Release(inst, names...); rel != len(names) {
								fail <- fmt.Sprintf("%s released %d of %d", inst, rel, len(names))
								return
							}
						}
					}
				}(tk, inst)
			}

			// Monitor-style writers: dynamic updates and state flaps.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			for w := 0; w < 2; w++ {
				bg.Add(1)
				go func(w int) {
					defer bg.Done()
					i := 0
					for {
						select {
						case <-stop:
							return
						default:
						}
						name := fmt.Sprintf("m%04d", (w*131+i)%fleet)
						_ = db.UpdateDynamic(name, Dynamic{Load: float64(i % 5), LastUpdate: time.Unix(1000000000+int64(i), 0)})
						_ = db.SetState(name, State(i%3))
						i++
					}
				}(w)
			}
			// Admin writer: restripes an indexed parameter while takers run.
			bg.Add(1)
			go func() {
				defer bg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					name := fmt.Sprintf("m%04d", i%fleet)
					_ = db.SetParam(name, "pool", query.NumAttr(float64(i%4)))
					i++
				}
			}()
			// Readers: Select, Walk, Names, TakenBy under fire.
			bg.Add(1)
			go func() {
				defer bg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := queries[i%len(queries)]
					_ = db.Select(q)
					_ = db.TakenBy(fmt.Sprintf("stress-pool-%d", i%takers))
					if i%10 == 0 {
						db.Walk(func(*Machine) bool { return false })
						_ = db.Names()
					}
					i++
				}
			}()

			wg.Wait()
			close(stop)
			bg.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}

			// Nothing may remain held, and the fleet must be intact.
			total := 0
			for tk := 0; tk < takers; tk++ {
				total += db.ReleaseAll(fmt.Sprintf("stress-pool-%d", tk))
			}
			if total != 0 {
				t.Errorf("%d machines left taken after all releases", total)
			}
			if got := db.Len(); got != fleet {
				t.Errorf("Len = %d, want %d", got, fleet)
			}
			if sh, ok := db.(*Sharded); ok {
				if err := sh.checkInvariants(); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
