package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"actyp/internal/query"
)

// TestAttrNamedMatchesAttrs pins the contract of the per-record hot path:
// attrNamed must agree with the materialized Attrs set for every name,
// including built-ins, shadowed params, policy-list fallbacks and absences.
func TestAttrNamedMatchesAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{
		"name", "speed", "cpus", "maxload", "load", "activejobs",
		"freememory", "freeswap", "usergroup", "toolgroup",
		"arch", "domain", "custom", "absent",
	}
	for trial := 0; trial < 500; trial++ {
		m := diffMachine(rng, fmt.Sprintf("m%03d", trial))
		switch trial % 4 {
		case 0:
			m.Policy.Params["speed"] = query.StrAttr("shadowed") // built-in must win
		case 1:
			m.Policy.Params["usergroup"] = query.StrAttr("paramgroup")
			m.Policy.UserGroups = nil // param must show through
		case 2:
			m.Policy.ToolGroups = []string{"spice", "matlab"}
		case 3:
			m.Policy.Params = nil
		}
		full := m.Attrs()
		for _, n := range names {
			got, gotOK := m.attrNamed(n)
			want, wantOK := full[n]
			if gotOK != wantOK {
				t.Fatalf("trial %d: attrNamed(%q) ok=%v, Attrs ok=%v", trial, n, gotOK, wantOK)
			}
			if gotOK && got.String() != want.String() {
				t.Fatalf("trial %d: attrNamed(%q) = %q, Attrs = %q", trial, n, got, want)
			}
		}
	}
}

func shardedFleet(t *testing.T, shards, n int) *Sharded {
	t.Helper()
	s := NewSharded(shards)
	if err := DefaultFleetSpec(n).Populate(NewDBWith(s), time.Unix(1000000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedIndexFollowsSetParam checks the inverted index tracks
// parameter overwrites: stale values must stop matching, new values must
// start, with no index residue.
func TestShardedIndexFollowsSetParam(t *testing.T) {
	s := shardedFleet(t, 8, 64)
	archQ := func(v string) *query.Query {
		return query.New().Set("punch.rsrc.arch", query.Eq(v))
	}
	before := len(s.Select(archQ("sun")))
	if before == 0 {
		t.Fatal("fleet has no sun machines")
	}
	// Move one sun machine to a brand-new architecture.
	if err := s.SetParam("m0000", "arch", query.StrAttr("riscv")); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Select(archQ("sun"))); got != before-1 {
		t.Errorf("sun count after retag = %d, want %d", got, before-1)
	}
	got := s.Select(archQ("riscv"))
	if len(got) != 1 || got[0].Static.Name != "m0000" {
		t.Errorf("riscv select = %v", machineNames(got))
	}
	// Overwrite again, then back, and verify no residue.
	if err := s.SetParam("m0000", "arch", query.StrAttr("sun")); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Select(archQ("riscv"))); got != 0 {
		t.Errorf("riscv still matches %d machines after restore", got)
	}
	if got := len(s.Select(archQ("sun"))); got != before {
		t.Errorf("sun count after restore = %d, want %d", got, before)
	}
	if err := s.checkInvariants(); err != nil {
		t.Error(err)
	}
}

// TestShardedIndexedDropsBuiltins verifies that asking to index a built-in
// attribute is ignored rather than producing false negatives: queries on
// it still scan and still answer correctly.
func TestShardedIndexedDropsBuiltins(t *testing.T) {
	s := NewShardedIndexed(4, []string{"speed", "arch"})
	if s.indexed["speed"] {
		t.Fatal("built-in attribute was indexed")
	}
	if !s.indexed["arch"] {
		t.Fatal("arch should be indexed")
	}
	if err := DefaultFleetSpec(32).Populate(NewDBWith(s), time.Unix(1000000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	m, err := s.Get("m0001")
	if err != nil {
		t.Fatal(err)
	}
	q := query.New().Set("punch.rsrc.speed", query.EqNum(m.Static.Speed))
	found := false
	for _, got := range s.Select(q) {
		if got.Static.Name == "m0001" {
			found = true
		}
	}
	if !found {
		t.Errorf("Select on built-in speed missed m0001")
	}
}

func TestShardedShardCount(t *testing.T) {
	for _, tc := range []struct{ in, min, max int }{
		{0, 8, 512},        // auto: GOMAXPROCS-scaled
		{1, 1, 1},          // explicit counts are honored, even tiny ones
		{12, 16, 16},       // rounded to a power of two
		{64, 64, 64},       // already a power of two
		{9999, 8192, 8192}, // above the sanity cap
	} {
		got := NewSharded(tc.in).ShardCount()
		if got < tc.min || got > tc.max {
			t.Errorf("NewSharded(%d).ShardCount() = %d, want in [%d, %d]", tc.in, got, tc.min, tc.max)
		}
		if got&(got-1) != 0 {
			t.Errorf("NewSharded(%d).ShardCount() = %d, not a power of two", tc.in, got)
		}
	}
}

// TestShardedTakeUsesFreeList pins the free-list behaviour: once the
// matching machines are all taken, further Takes return nothing, and a
// Release makes exactly the released machine takeable again.
func TestShardedTakeUsesFreeList(t *testing.T) {
	s := shardedFleet(t, 8, 64)
	q := query.New().Set("punch.rsrc.arch", query.Eq("sun"))
	all := s.Take(q, "p1", 0)
	if len(all) == 0 {
		t.Fatal("nothing taken")
	}
	if extra := s.Take(q, "p2", 0); len(extra) != 0 {
		t.Fatalf("took %d machines that were already held", len(extra))
	}
	victim := all[3].Static.Name
	if n := s.Release("p1", victim); n != 1 {
		t.Fatalf("Release = %d", n)
	}
	back := s.Take(q, "p2", 0)
	if len(back) != 1 || back[0].Static.Name != victim {
		t.Fatalf("re-take = %v, want [%s]", machineNames(back), victim)
	}
	if err := s.checkInvariants(); err != nil {
		t.Error(err)
	}
}
