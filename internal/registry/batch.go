package registry

// Delta/dictionary batch encoding for machine record sets. Fleet records
// share most of their field bytes — arch/ostype/domain/owner strings,
// near-identical dynamic fields — so a batch is encoded as one shared
// string dictionary plus, per record, a field-diff bitmask against the
// previous record (the first record diffs against the zero Machine).
// Wire cost per record is then near the diff, not the record.
//
// Layout (all integers varint/uvarint, floats fixed 8-byte little-endian
// IEEE-754 bits):
//
//	version 0x01 | uvarint count | record*
//	record  = uvarint diffMask | changed fields in bit order
//	string  = uvarint token: 0 means a new dictionary entry follows
//	          (uvarint length + bytes, appended to the dictionary in
//	          first-use order); token k>0 references entry k-1.
//	list    = uvarint n: 0 means nil, n>0 means n-1 strings follow
//	          (nil and empty survive the round trip distinctly — the
//	          JSON field shapes differ).
//	time    = presence byte; 1 is followed by varint UnixNano. Like the
//	          wire codec's time encoding this preserves the instant, not
//	          the location.
//
// The full per-record encoding (JSON) is the differential oracle: decode
// must reproduce records that marshal identically to the originals.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"actyp/internal/query"
)

// batchVersion is the format version byte leading every batch.
const batchVersion = 0x01

// Diff bitmask bits, one per Machine field in Figure 3 order.
const (
	batchState = 1 << iota
	batchLoad
	batchActiveJobs
	batchFreeMemory
	batchFreeSwap
	batchLastUpdate
	batchServiceFlag
	batchSpeed
	batchCPUs
	batchMaxLoad
	batchName
	batchObjectRef
	batchSharedAccount
	batchExecUnitPort
	batchMountMgrPort
	batchAddr
	batchUserGroups
	batchToolGroups
	batchShadowPoolRef
	batchUsagePolicy
	batchParams
	batchTakenBy
)

// Attr flag bits inside an encoded attribute.
const (
	batchAttrIsNum = 1 << iota
	batchAttrNum   // Num present (non-zero)
	batchAttrList  // List present (non-nil)
)

// AppendBatch appends the delta/dictionary encoding of ms to dst and
// returns the extended slice. Nil machine pointers are not allowed.
func AppendBatch(dst []byte, ms []*Machine) []byte {
	e := &batchEnc{dst: append(dst, batchVersion), dict: make(map[string]uint64)}
	e.dst = binary.AppendUvarint(e.dst, uint64(len(ms)))
	prev := &Machine{}
	for _, m := range ms {
		e.record(m, prev)
		prev = m
	}
	return e.dst
}

// DecodeBatch decodes a batch produced by AppendBatch. Corrupt or
// truncated input fails with an error; it never panics or over-allocates.
func DecodeBatch(b []byte) ([]*Machine, error) {
	d := &batchDec{b: b}
	if v := d.byte(); d.err == nil && v != batchVersion {
		return nil, fmt.Errorf("registry: unknown batch version 0x%02x", v)
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// Every record costs at least one mask byte, so a count past the
	// remaining bytes is corrupt — reject before allocating.
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("registry: batch claims %d records with %d bytes left", n, len(d.b))
	}
	out := make([]*Machine, 0, n)
	prev := &Machine{}
	for i := uint64(0); i < n; i++ {
		m := d.record(prev)
		if d.err != nil {
			return nil, fmt.Errorf("registry: batch record %d: %w", i, d.err)
		}
		out = append(out, m)
		prev = m
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("registry: batch has %d trailing bytes", len(d.b))
	}
	return out, nil
}

// batchEnc carries the growing output and the shared string dictionary.
type batchEnc struct {
	dst  []byte
	dict map[string]uint64
}

func (e *batchEnc) record(m, prev *Machine) {
	var mask uint64
	if m.State != prev.State {
		mask |= batchState
	}
	if m.Dynamic.Load != prev.Dynamic.Load {
		mask |= batchLoad
	}
	if m.Dynamic.ActiveJobs != prev.Dynamic.ActiveJobs {
		mask |= batchActiveJobs
	}
	if m.Dynamic.FreeMemory != prev.Dynamic.FreeMemory {
		mask |= batchFreeMemory
	}
	if m.Dynamic.FreeSwap != prev.Dynamic.FreeSwap {
		mask |= batchFreeSwap
	}
	if !timeEqual(m.Dynamic.LastUpdate, prev.Dynamic.LastUpdate) {
		mask |= batchLastUpdate
	}
	if m.Dynamic.ServiceFlag != prev.Dynamic.ServiceFlag {
		mask |= batchServiceFlag
	}
	if m.Static.Speed != prev.Static.Speed {
		mask |= batchSpeed
	}
	if m.Static.CPUs != prev.Static.CPUs {
		mask |= batchCPUs
	}
	if m.Static.MaxLoad != prev.Static.MaxLoad {
		mask |= batchMaxLoad
	}
	if m.Static.Name != prev.Static.Name {
		mask |= batchName
	}
	if m.Access.ObjectRef != prev.Access.ObjectRef {
		mask |= batchObjectRef
	}
	if m.Access.SharedAccount != prev.Access.SharedAccount {
		mask |= batchSharedAccount
	}
	if m.Access.ExecUnitPort != prev.Access.ExecUnitPort {
		mask |= batchExecUnitPort
	}
	if m.Access.MountMgrPort != prev.Access.MountMgrPort {
		mask |= batchMountMgrPort
	}
	if m.Access.Addr != prev.Access.Addr {
		mask |= batchAddr
	}
	if !stringsEqual(m.Policy.UserGroups, prev.Policy.UserGroups) {
		mask |= batchUserGroups
	}
	if !stringsEqual(m.Policy.ToolGroups, prev.Policy.ToolGroups) {
		mask |= batchToolGroups
	}
	if m.Policy.ShadowPoolRef != prev.Policy.ShadowPoolRef {
		mask |= batchShadowPoolRef
	}
	if m.Policy.UsagePolicy != prev.Policy.UsagePolicy {
		mask |= batchUsagePolicy
	}
	if !attrSetEqual(m.Policy.Params, prev.Policy.Params) {
		mask |= batchParams
	}
	if m.TakenBy != prev.TakenBy {
		mask |= batchTakenBy
	}
	e.dst = binary.AppendUvarint(e.dst, mask)
	if mask&batchState != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(m.State))
	}
	if mask&batchLoad != 0 {
		e.f64(m.Dynamic.Load)
	}
	if mask&batchActiveJobs != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(m.Dynamic.ActiveJobs))
	}
	if mask&batchFreeMemory != 0 {
		e.f64(m.Dynamic.FreeMemory)
	}
	if mask&batchFreeSwap != 0 {
		e.f64(m.Dynamic.FreeSwap)
	}
	if mask&batchLastUpdate != 0 {
		e.time(m.Dynamic.LastUpdate)
	}
	if mask&batchServiceFlag != 0 {
		e.dst = binary.AppendUvarint(e.dst, uint64(m.Dynamic.ServiceFlag))
	}
	if mask&batchSpeed != 0 {
		e.f64(m.Static.Speed)
	}
	if mask&batchCPUs != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(m.Static.CPUs))
	}
	if mask&batchMaxLoad != 0 {
		e.f64(m.Static.MaxLoad)
	}
	if mask&batchName != 0 {
		e.string(m.Static.Name)
	}
	if mask&batchObjectRef != 0 {
		e.string(m.Access.ObjectRef)
	}
	if mask&batchSharedAccount != 0 {
		e.string(m.Access.SharedAccount)
	}
	if mask&batchExecUnitPort != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(m.Access.ExecUnitPort))
	}
	if mask&batchMountMgrPort != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(m.Access.MountMgrPort))
	}
	if mask&batchAddr != 0 {
		e.string(m.Access.Addr)
	}
	if mask&batchUserGroups != 0 {
		e.strings(m.Policy.UserGroups)
	}
	if mask&batchToolGroups != 0 {
		e.strings(m.Policy.ToolGroups)
	}
	if mask&batchShadowPoolRef != 0 {
		e.string(m.Policy.ShadowPoolRef)
	}
	if mask&batchUsagePolicy != 0 {
		e.string(m.Policy.UsagePolicy)
	}
	if mask&batchParams != 0 {
		e.attrSet(m.Policy.Params)
	}
	if mask&batchTakenBy != 0 {
		e.string(m.TakenBy)
	}
}

func (e *batchEnc) f64(f float64) {
	e.dst = binary.LittleEndian.AppendUint64(e.dst, math.Float64bits(f))
}

func (e *batchEnc) string(s string) {
	if idx, ok := e.dict[s]; ok {
		e.dst = binary.AppendUvarint(e.dst, idx+1)
		return
	}
	e.dst = binary.AppendUvarint(e.dst, 0)
	e.dst = binary.AppendUvarint(e.dst, uint64(len(s)))
	e.dst = append(e.dst, s...)
	e.dict[s] = uint64(len(e.dict))
}

func (e *batchEnc) strings(ss []string) {
	if ss == nil {
		e.dst = binary.AppendUvarint(e.dst, 0)
		return
	}
	e.dst = binary.AppendUvarint(e.dst, uint64(len(ss))+1)
	for _, s := range ss {
		e.string(s)
	}
}

func (e *batchEnc) time(t time.Time) {
	if t.IsZero() {
		e.dst = append(e.dst, 0)
		return
	}
	e.dst = append(e.dst, 1)
	e.dst = binary.AppendVarint(e.dst, t.UnixNano())
}

func (e *batchEnc) attr(a query.Attr) {
	var flags byte
	if a.IsNum {
		flags |= batchAttrIsNum
	}
	if a.Num != 0 {
		flags |= batchAttrNum
	}
	if a.List != nil {
		flags |= batchAttrList
	}
	e.dst = append(e.dst, flags)
	e.string(a.Str)
	if flags&batchAttrNum != 0 {
		e.f64(a.Num)
	}
	if flags&batchAttrList != 0 {
		e.dst = binary.AppendUvarint(e.dst, uint64(len(a.List)))
		for _, s := range a.List {
			e.string(s)
		}
	}
}

// attrSet encodes a parameter set with sorted keys so equal sets encode
// identically regardless of map iteration order.
func (e *batchEnc) attrSet(s query.AttrSet) {
	if s == nil {
		e.dst = binary.AppendUvarint(e.dst, 0)
		return
	}
	e.dst = binary.AppendUvarint(e.dst, uint64(len(s))+1)
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.string(k)
		e.attr(s[k])
	}
}

// batchDec walks an encoded batch with latched errors and hard bounds
// checks, mirroring the wire package's cursor discipline.
type batchDec struct {
	b    []byte
	dict []string
	err  error
}

func (d *batchDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *batchDec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated batch: missing byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *batchDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated batch: bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *batchDec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated batch: bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *batchDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated batch: missing float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *batchDec) string() string {
	tok := d.uvarint()
	if d.err != nil {
		return ""
	}
	if tok > 0 {
		if tok-1 >= uint64(len(d.dict)) {
			d.fail("batch dictionary index %d out of range (%d entries)", tok-1, len(d.dict))
			return ""
		}
		return d.dict[tok-1]
	}
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail("truncated batch: string of %d bytes with %d left", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	d.dict = append(d.dict, s)
	return s
}

func (d *batchDec) strings() []string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	// Every element costs at least one token byte.
	if n > uint64(len(d.b))+1 {
		d.fail("truncated batch: %d strings with %d bytes left", n, len(d.b))
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.string())
	}
	return out
}

func (d *batchDec) time() time.Time {
	if d.byte() == 0 {
		return time.Time{}
	}
	ns := d.varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (d *batchDec) attr() query.Attr {
	var a query.Attr
	flags := d.byte()
	a.IsNum = flags&batchAttrIsNum != 0
	a.Str = d.string()
	if flags&batchAttrNum != 0 {
		a.Num = d.f64()
	}
	if flags&batchAttrList != 0 {
		n := d.uvarint()
		if d.err != nil {
			return a
		}
		if n > uint64(len(d.b))+1 {
			d.fail("truncated batch: attr list of %d with %d bytes left", n, len(d.b))
			return a
		}
		a.List = make([]string, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			a.List = append(a.List, d.string())
		}
	}
	return a
}

func (d *batchDec) attrSet() query.AttrSet {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(d.b))+1 {
		d.fail("truncated batch: attr set of %d with %d bytes left", n, len(d.b))
		return nil
	}
	out := make(query.AttrSet, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.string()
		out[k] = d.attr()
	}
	return out
}

// record decodes one machine: prev's fields carried over (with slices and
// maps copied, preserving nil-ness) and the masked fields overwritten.
func (d *batchDec) record(prev *Machine) *Machine {
	m := *prev
	m.Policy.UserGroups = cloneStrings(prev.Policy.UserGroups)
	m.Policy.ToolGroups = cloneStrings(prev.Policy.ToolGroups)
	m.Policy.Params = cloneAttrSet(prev.Policy.Params)
	mask := d.uvarint()
	if mask&batchState != 0 {
		m.State = State(d.varint())
	}
	if mask&batchLoad != 0 {
		m.Dynamic.Load = d.f64()
	}
	if mask&batchActiveJobs != 0 {
		m.Dynamic.ActiveJobs = int(d.varint())
	}
	if mask&batchFreeMemory != 0 {
		m.Dynamic.FreeMemory = d.f64()
	}
	if mask&batchFreeSwap != 0 {
		m.Dynamic.FreeSwap = d.f64()
	}
	if mask&batchLastUpdate != 0 {
		m.Dynamic.LastUpdate = d.time()
	}
	if mask&batchServiceFlag != 0 {
		m.Dynamic.ServiceFlag = uint32(d.uvarint())
	}
	if mask&batchSpeed != 0 {
		m.Static.Speed = d.f64()
	}
	if mask&batchCPUs != 0 {
		m.Static.CPUs = int(d.varint())
	}
	if mask&batchMaxLoad != 0 {
		m.Static.MaxLoad = d.f64()
	}
	if mask&batchName != 0 {
		m.Static.Name = d.string()
	}
	if mask&batchObjectRef != 0 {
		m.Access.ObjectRef = d.string()
	}
	if mask&batchSharedAccount != 0 {
		m.Access.SharedAccount = d.string()
	}
	if mask&batchExecUnitPort != 0 {
		m.Access.ExecUnitPort = int(d.varint())
	}
	if mask&batchMountMgrPort != 0 {
		m.Access.MountMgrPort = int(d.varint())
	}
	if mask&batchAddr != 0 {
		m.Access.Addr = d.string()
	}
	if mask&batchUserGroups != 0 {
		m.Policy.UserGroups = d.strings()
	}
	if mask&batchToolGroups != 0 {
		m.Policy.ToolGroups = d.strings()
	}
	if mask&batchShadowPoolRef != 0 {
		m.Policy.ShadowPoolRef = d.string()
	}
	if mask&batchUsagePolicy != 0 {
		m.Policy.UsagePolicy = d.string()
	}
	if mask&batchParams != 0 {
		m.Policy.Params = d.attrSet()
	}
	if mask&batchTakenBy != 0 {
		m.TakenBy = d.string()
	}
	return &m
}

// timeEqual compares instants; two zero times are equal.
func timeEqual(a, b time.Time) bool {
	if a.IsZero() || b.IsZero() {
		return a.IsZero() == b.IsZero()
	}
	return a.Equal(b)
}

// stringsEqual distinguishes nil from empty: the JSON shapes differ
// (null vs []), so the diff must too.
func stringsEqual(a, b []string) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func attrEqual(a, b query.Attr) bool {
	return a.Str == b.Str && a.Num == b.Num && a.IsNum == b.IsNum && stringsEqual(a.List, b.List)
}

func attrSetEqual(a, b query.AttrSet) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || !attrEqual(av, bv) {
			return false
		}
	}
	return true
}

func cloneStrings(ss []string) []string {
	if ss == nil {
		return nil
	}
	out := make([]string, len(ss))
	copy(out, ss)
	return out
}

func cloneAttrSet(s query.AttrSet) query.AttrSet {
	if s == nil {
		return nil
	}
	out := make(query.AttrSet, len(s))
	for k, v := range s {
		v.List = cloneStrings(v.List)
		out[k] = v
	}
	return out
}
