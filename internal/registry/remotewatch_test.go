package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/metrics"
)

// fakeWatchStream is an in-memory WatchStream a test feeds by hand.
type fakeWatchStream struct {
	ch     chan WatchBatch
	closed chan struct{}
	once   sync.Once
}

func newFakeWatchStream() *fakeWatchStream {
	return &fakeWatchStream{ch: make(chan WatchBatch, 64), closed: make(chan struct{})}
}

func (s *fakeWatchStream) Recv() (WatchBatch, error) {
	select {
	case b := <-s.ch:
		return b, nil
	case <-s.closed:
		return WatchBatch{}, errors.New("fake stream closed")
	}
}

func (s *fakeWatchStream) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

// fakeTransport implements WatchTransport against a live source backend:
// FetchSnapshot reads the backend, WatchSubscribe hands out hand-fed
// streams (or ErrWatchUnsupported, mimicking a JSON-floor peer).
type fakeTransport struct {
	src Backend

	mu          sync.Mutex
	unsupported bool
	subs        int
	fetches     int
	cur         *fakeWatchStream
}

func (f *fakeTransport) WatchSubscribe(ctx context.Context, filter string, ring int) (WatchStream, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unsupported {
		return nil, fmt.Errorf("server: unknown message type %q: %w", "watch", ErrWatchUnsupported)
	}
	f.subs++
	f.cur = newFakeWatchStream()
	return f.cur, nil
}

func (f *fakeTransport) FetchSnapshot(ctx context.Context, filter string) ([]*Machine, error) {
	f.mu.Lock()
	f.fetches++
	f.mu.Unlock()
	names := f.src.Names()
	out := make([]*Machine, 0, len(names))
	for _, n := range names {
		if m, err := f.src.Get(n); err == nil {
			out = append(out, m)
		}
	}
	return out, nil
}

func (f *fakeTransport) stream() *fakeWatchStream {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur
}

func (f *fakeTransport) counts() (subs, fetches int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.subs, f.fetches
}

func watchSrc(t *testing.T, n int) Backend {
	t.Helper()
	b := NewLocked()
	for i := 0; i < n; i++ {
		if err := b.Add(testMachine(fmt.Sprintf("rw%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func waitConverged(t *testing.T, src, rep Backend) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if convergedOnce(src, rep) {
			return
		}
		if time.Now().After(deadline) {
			backendsEqual(t, src, rep) // produce the detailed failure
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func convergedOnce(src, rep Backend) bool {
	names := src.Names()
	if len(names) != len(rep.Names()) {
		return false
	}
	for _, n := range names {
		w, err1 := src.Get(n)
		g, err2 := rep.Get(n)
		if err1 != nil || err2 != nil || !machineEqual(w, g) {
			return false
		}
	}
	return true
}

func TestRemoteWatchStreamSyncAndApply(t *testing.T) {
	src := watchSrc(t, 8)
	tr := &fakeTransport{src: src}
	rep := NewDB()
	stats := metrics.NewFederationStats()
	w, err := StartRemoteWatch(RemoteWatchConfig{
		Transport: tr, Replica: rep, Stats: stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}
	if w.Mode() != WatchModeStream {
		t.Fatalf("mode = %q, want stream", w.Mode())
	}
	backendsEqual(t, src, rep)

	// Mutate the source and push the events by hand, as the server would.
	_ = src.UpdateDynamic("rw000", Dynamic{Load: 42})
	_ = src.Remove("rw001")
	m0, _ := src.Get("rw000")
	tr.stream().ch <- WatchBatch{Events: []WireEvent{
		{Kind: EventDynamicUpdated, Name: "rw000", Dynamic: m0.Dynamic},
		{Kind: EventRemoved, Name: "rw001"},
	}}
	waitConverged(t, src, rep)
	if got := stats.Snapshot().WatchEvents; got != 2 {
		t.Fatalf("stats counted %d watch events, want 2", got)
	}
}

func TestRemoteWatchResyncMarker(t *testing.T) {
	src := watchSrc(t, 4)
	tr := &fakeTransport{src: src}
	rep := NewDB()
	stats := metrics.NewFederationStats()
	w, err := StartRemoteWatch(RemoteWatchConfig{Transport: tr, Replica: rep, Stats: stats})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}

	// Mutate behind the stream's back (events "lost"), then send a resync
	// marker: the replica must re-baseline from a fresh snapshot.
	_ = src.SetState("rw002", StateDown)
	_ = src.Add(testMachine("rw-late"))
	tr.stream().ch <- WatchBatch{Resync: true}
	waitConverged(t, src, rep)
	if got := stats.Snapshot().WatchResyncs; got != 1 {
		t.Fatalf("stats counted %d resyncs, want 1", got)
	}
}

func TestRemoteWatchReconnect(t *testing.T) {
	src := watchSrc(t, 4)
	tr := &fakeTransport{src: src}
	rep := NewDB()
	stats := metrics.NewFederationStats()
	w, err := StartRemoteWatch(RemoteWatchConfig{
		Transport: tr, Replica: rep, Stats: stats, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill the stream; mutations that happened during the outage must land
	// via the re-subscribe's baseline fetch.
	_ = src.UpdateDynamic("rw003", Dynamic{Load: 7})
	first := tr.stream()
	first.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if subs, _ := tr.counts(); subs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never resubscribed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitConverged(t, src, rep)
	if got := stats.Snapshot().Reconnects; got < 1 {
		t.Fatalf("stats counted %d reconnects, want >= 1", got)
	}
	if w.Mode() != WatchModeStream {
		t.Fatalf("mode degraded to %q on a plain reconnect", w.Mode())
	}
}

// TestRemoteWatchUnsupportedDegradesToPoll is the JSON-floor ladder: a peer
// that bounces the subscribe latches poll mode and stays fresh by fetches.
func TestRemoteWatchUnsupportedDegradesToPoll(t *testing.T) {
	src := watchSrc(t, 4)
	tr := &fakeTransport{src: src, unsupported: true}
	rep := NewDB()
	stats := metrics.NewFederationStats()
	w, err := StartRemoteWatch(RemoteWatchConfig{
		Transport: tr, Replica: rep, Stats: stats, PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}
	if w.Mode() != WatchModePoll {
		t.Fatalf("mode = %q, want poll", w.Mode())
	}
	backendsEqual(t, src, rep)

	// Freshness now rides the poll ticker alone.
	_ = src.UpdateDynamic("rw000", Dynamic{Load: 3})
	_ = src.Remove("rw002")
	waitConverged(t, src, rep)
	if got := stats.Snapshot().WatchPolls; got < 1 {
		t.Fatalf("stats counted %d polls, want >= 1", got)
	}
}

func TestRemoteWatchForcePoll(t *testing.T) {
	src := watchSrc(t, 2)
	tr := &fakeTransport{src: src}
	rep := NewDB()
	w, err := StartRemoteWatch(RemoteWatchConfig{
		Transport: tr, Replica: rep, ForcePoll: true, PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.WaitSynced(ctx); err != nil {
		t.Fatal(err)
	}
	if subs, _ := tr.counts(); subs != 0 {
		t.Fatalf("ForcePoll still subscribed %d times", subs)
	}
	if w.Mode() != WatchModePoll {
		t.Fatalf("mode = %q, want poll", w.Mode())
	}
}
