package registry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"actyp/internal/query"
)

func sunQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.ParseBasic("punch.rsrc.arch = sun")
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestDBAddGetRemove(t *testing.T) {
	db := NewDB()
	if err := db.Add(testMachine("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(testMachine("a")); err == nil {
		t.Error("duplicate add should fail")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	m, err := db.Get("a")
	if err != nil || m.Static.Name != "a" {
		t.Fatalf("Get: %v, %v", m, err)
	}
	// Get returns a copy.
	m.Policy.Params["arch"] = query.StrAttr("hp")
	m2, _ := db.Get("a")
	if m2.Policy.Params["arch"].Str != "sun" {
		t.Error("Get aliases stored record")
	}
	if err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.Remove("a"); err == nil {
		t.Error("double remove should fail")
	}
	if _, err := db.Get("a"); err == nil {
		t.Error("Get after remove should fail")
	}
}

func TestDBAddValidates(t *testing.T) {
	db := NewDB()
	bad := testMachine("x")
	bad.Static.CPUs = 0
	if err := db.Add(bad); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestDBSetStateAndDynamic(t *testing.T) {
	db := NewDB()
	if err := db.Add(testMachine("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetState("a", StateBlocked); err != nil {
		t.Fatal(err)
	}
	m, _ := db.Get("a")
	if m.State != StateBlocked {
		t.Errorf("state = %v", m.State)
	}
	d := Dynamic{Load: 1.5, ActiveJobs: 3, FreeMemory: 64, FreeSwap: 128, LastUpdate: time.Unix(2000, 0)}
	if err := db.UpdateDynamic("a", d); err != nil {
		t.Fatal(err)
	}
	m, _ = db.Get("a")
	if m.Dynamic != d {
		t.Errorf("dynamic = %+v", m.Dynamic)
	}
	if err := db.SetState("ghost", StateUp); err == nil {
		t.Error("SetState on missing machine should fail")
	}
	if err := db.UpdateDynamic("ghost", d); err == nil {
		t.Error("UpdateDynamic on missing machine should fail")
	}
}

func TestDBSetParam(t *testing.T) {
	db := NewDB()
	if err := db.Add(testMachine("a")); err != nil {
		t.Fatal(err)
	}
	if err := db.SetParam("a", "license", query.StrAttr("spice")); err != nil {
		t.Fatal(err)
	}
	m, _ := db.Get("a")
	if m.Policy.Params["license"].Str != "spice" {
		t.Errorf("param not set: %+v", m.Policy.Params)
	}
	if err := db.SetParam("ghost", "k", query.StrAttr("v")); err == nil {
		t.Error("SetParam on missing machine should fail")
	}
}

func TestDBWalkOrderAndEarlyStop(t *testing.T) {
	db := NewDB()
	for _, n := range []string{"c", "a", "b"} {
		if err := db.Add(testMachine(n)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	db.Walk(func(m *Machine) bool {
		seen = append(seen, m.Static.Name)
		return true
	})
	if strings.Join(seen, "") != "abc" {
		t.Errorf("walk order = %v", seen)
	}
	seen = nil
	db.Walk(func(m *Machine) bool {
		seen = append(seen, m.Static.Name)
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Errorf("early stop walked %d", len(seen))
	}
}

func TestDBSelect(t *testing.T) {
	db := NewDB()
	sun := testMachine("sun1")
	hp := testMachine("hp1")
	hp.Policy.Params["arch"] = query.StrAttr("hp")
	if err := db.Add(sun); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(hp); err != nil {
		t.Fatal(err)
	}
	got := db.Select(sunQuery(t))
	if len(got) != 1 || got[0].Static.Name != "sun1" {
		t.Errorf("Select = %v", got)
	}
}

func TestDBTakeRelease(t *testing.T) {
	db := NewDB()
	for i := 0; i < 4; i++ {
		m := testMachine(string(rune('a' + i)))
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	q := sunQuery(t)

	taken := db.Take(q, "pool-1", 2)
	if len(taken) != 2 {
		t.Fatalf("took %d, want 2", len(taken))
	}
	// A second pool cannot take the same machines.
	taken2 := db.Take(q, "pool-2", 0)
	if len(taken2) != 2 {
		t.Fatalf("pool-2 took %d, want the remaining 2", len(taken2))
	}
	if got := db.Take(q, "pool-3", 0); len(got) != 0 {
		t.Errorf("pool-3 took %d from an exhausted db", len(got))
	}
	if names := db.TakenBy("pool-1"); len(names) != 2 {
		t.Errorf("TakenBy(pool-1) = %v", names)
	}

	// Release only frees machines held by the named instance.
	if n := db.Release("pool-2", taken[0].Static.Name); n != 0 {
		t.Errorf("pool-2 released pool-1's machine")
	}
	if n := db.Release("pool-1", taken[0].Static.Name); n != 1 {
		t.Errorf("release = %d", n)
	}
	if n := db.ReleaseAll("pool-2"); n != 2 {
		t.Errorf("ReleaseAll = %d", n)
	}
	// Empty instance name takes nothing.
	if got := db.Take(q, "", 0); got != nil {
		t.Error("empty instance should take nothing")
	}
}

func TestDBTakeRespectsQuery(t *testing.T) {
	db := NewDB()
	m := testMachine("hp1")
	m.Policy.Params["arch"] = query.StrAttr("hp")
	if err := db.Add(m); err != nil {
		t.Fatal(err)
	}
	if got := db.Take(sunQuery(t), "p", 0); len(got) != 0 {
		t.Errorf("took non-matching machines: %v", got)
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	if err := DefaultFleetSpec(20).Populate(db, time.Unix(100, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("loaded %d machines, want %d", db2.Len(), db.Len())
	}
	for _, name := range db.Names() {
		a, _ := db.Get(name)
		b, err := db2.Get(name)
		if err != nil {
			t.Fatalf("missing %s after load", name)
		}
		if a.Static != b.Static || a.Access != b.Access {
			t.Errorf("machine %s differs after round trip", name)
		}
	}
}

func TestDBLoadRejectsBadInput(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if err := db.Load(strings.NewReader(`{"machines":[{"static":{"name":""}}]}`)); err == nil {
		t.Error("invalid machine should fail")
	}
	dup := `{"machines":[
		{"static":{"name":"a","speed":1,"cpus":1,"maxLoad":1}},
		{"static":{"name":"a","speed":1,"cpus":1,"maxLoad":1}}]}`
	if err := db.Load(strings.NewReader(dup)); err == nil {
		t.Error("duplicate machines should fail")
	}
}

func TestDBConcurrentTakeExclusive(t *testing.T) {
	db := NewDB()
	if err := HomogeneousFleetSpec(200).Populate(db, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	q := sunQuery(t)
	const workers = 8
	var wg sync.WaitGroup
	takenBy := make([][]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst := "pool-" + string(rune('0'+w))
			for _, m := range db.Take(q, inst, 50) {
				takenBy[w] = append(takenBy[w], m.Static.Name)
			}
		}(w)
	}
	wg.Wait()
	seen := map[string]int{}
	total := 0
	for _, names := range takenBy {
		for _, n := range names {
			seen[n]++
			total++
		}
	}
	if total != 200 {
		t.Errorf("total taken = %d, want 200", total)
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("machine %s taken %d times", n, c)
		}
	}
}

// Property: Take then ReleaseAll always restores every machine of that
// instance to the free state, regardless of how many were taken.
func TestTakeReleaseInvariantProperty(t *testing.T) {
	f := func(limit uint8) bool {
		db := NewDB()
		if err := HomogeneousFleetSpec(30).Populate(db, time.Unix(0, 0)); err != nil {
			return false
		}
		q, err := query.ParseBasic("punch.rsrc.arch = sun")
		if err != nil {
			return false
		}
		taken := db.Take(q, "p", int(limit%40))
		released := db.ReleaseAll("p")
		if released != len(taken) {
			return false
		}
		return len(db.TakenBy("p")) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
