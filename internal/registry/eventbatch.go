package registry

// Wire form of the change stream. A locally observed Event names a
// machine and (for the high-rate dynamic kind) carries the fresh monitor
// snapshot, but every other kind expects the consumer to re-read the
// record — a contract that dies at the process boundary, where a re-read
// costs a WAN round trip per event. WireEvent is the event resolved for
// transport: the sender attaches the current record snapshot at encode
// time (one local Get), so a remote replica applies the stream without
// ever reading back.
//
// Batches reuse the delta/dictionary discipline of batch.go: one shared
// string dictionary, dynamic snapshots diffed against the previous
// dynamic in the batch, record snapshots diffed against the previous
// record — a monitor sweep's burst of near-identical dynamic updates
// encodes near the diff, not the event.
//
// Layout (integers varint/uvarint, floats fixed 8-byte little-endian):
//
//	version 0x01 | uvarint count | event*
//	event   = kind byte | name string(dict) | payload
//	payload = (removed)          nothing
//	          (dynamic-updated)  presence byte: 1 -> uvarint dynMask +
//	                             changed dynamic fields; 0 -> record
//	                             snapshot follows (filtered streams
//	                             upgrade dynamic events to snapshots so
//	                             records entering the filter are whole)
//	          (all other kinds)  presence byte: 1 -> record diff as in
//	                             batch.go; 0 -> no snapshot (apply as a
//	                             removal hint)

import (
	"encoding/binary"
	"fmt"

	"actyp/internal/query"
)

// WireEvent is one registry Event resolved for transport.
type WireEvent struct {
	Kind EventKind `json:"kind"`
	Name string    `json:"name"`
	// Dynamic carries the monitor snapshot for EventDynamicUpdated.
	Dynamic Dynamic `json:"dynamic"`
	// Machine is the full record snapshot, read at encode time, for every
	// kind except EventRemoved (and except unfiltered dynamic updates,
	// which need only Dynamic). Nil means the record vanished between the
	// event and the encode — the consumer treats it as a removal.
	Machine *Machine `json:"machine,omitempty"`
}

// eventBatchVersion leads every encoded event batch.
const eventBatchVersion = 0x01

// Dynamic-diff bitmask bits, one per Dynamic field.
const (
	evDynLoad = 1 << iota
	evDynActiveJobs
	evDynFreeMemory
	evDynFreeSwap
	evDynLastUpdate
	evDynServiceFlag
)

// AppendEventBatch appends the delta/dictionary encoding of evs to dst
// and returns the extended slice.
func AppendEventBatch(dst []byte, evs []WireEvent) []byte {
	e := &batchEnc{dst: append(dst, eventBatchVersion), dict: make(map[string]uint64)}
	e.dst = binary.AppendUvarint(e.dst, uint64(len(evs)))
	prevMach := &Machine{}
	var prevDyn Dynamic
	for _, ev := range evs {
		e.dst = append(e.dst, byte(ev.Kind))
		e.string(ev.Name)
		switch {
		case ev.Kind == EventRemoved:
		case ev.Kind == EventDynamicUpdated && ev.Machine == nil:
			e.dst = append(e.dst, 1)
			e.dynamic(ev.Dynamic, prevDyn)
			prevDyn = ev.Dynamic
		case ev.Kind == EventDynamicUpdated:
			// Filtered-stream upgrade: the full snapshot rides under the
			// 0 tag (the dynamic-diff form owns 1 for this kind).
			e.dst = append(e.dst, 0)
			e.record(ev.Machine, prevMach)
			prevMach = ev.Machine
		default:
			if ev.Machine == nil {
				e.dst = append(e.dst, 0)
				continue
			}
			e.dst = append(e.dst, 1)
			e.record(ev.Machine, prevMach)
			prevMach = ev.Machine
		}
	}
	return e.dst
}

// DecodeEventBatch decodes a batch produced by AppendEventBatch. Corrupt
// or truncated input fails with an error; it never panics.
func DecodeEventBatch(b []byte) ([]WireEvent, error) {
	d := &batchDec{b: b}
	if v := d.byte(); d.err == nil && v != eventBatchVersion {
		return nil, fmt.Errorf("registry: unknown event batch version 0x%02x", v)
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// Every event costs at least a kind byte and a name token.
	if n > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("registry: event batch claims %d events with %d bytes left", n, len(d.b))
	}
	out := make([]WireEvent, 0, n)
	prevMach := &Machine{}
	var prevDyn Dynamic
	for i := uint64(0); i < n; i++ {
		var ev WireEvent
		ev.Kind = EventKind(d.byte())
		ev.Name = d.string()
		switch {
		case ev.Kind == EventRemoved:
		case ev.Kind == EventDynamicUpdated:
			if d.byte() == 1 {
				ev.Dynamic = d.dynamic(prevDyn)
				prevDyn = ev.Dynamic
			} else {
				ev.Machine = d.record(prevMach)
				if ev.Machine != nil {
					ev.Dynamic = ev.Machine.Dynamic
					prevMach = ev.Machine
				}
			}
		default:
			if d.byte() == 1 {
				ev.Machine = d.record(prevMach)
				if ev.Machine != nil {
					prevMach = ev.Machine
				}
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("registry: event batch event %d: %w", i, d.err)
		}
		out = append(out, ev)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("registry: event batch has %d trailing bytes", len(d.b))
	}
	return out, nil
}

// dynamic encodes one dynamic snapshot as a diff against the previous
// dynamic in the batch.
func (e *batchEnc) dynamic(d, prev Dynamic) {
	var mask uint64
	if d.Load != prev.Load {
		mask |= evDynLoad
	}
	if d.ActiveJobs != prev.ActiveJobs {
		mask |= evDynActiveJobs
	}
	if d.FreeMemory != prev.FreeMemory {
		mask |= evDynFreeMemory
	}
	if d.FreeSwap != prev.FreeSwap {
		mask |= evDynFreeSwap
	}
	if !timeEqual(d.LastUpdate, prev.LastUpdate) {
		mask |= evDynLastUpdate
	}
	if d.ServiceFlag != prev.ServiceFlag {
		mask |= evDynServiceFlag
	}
	e.dst = binary.AppendUvarint(e.dst, mask)
	if mask&evDynLoad != 0 {
		e.f64(d.Load)
	}
	if mask&evDynActiveJobs != 0 {
		e.dst = binary.AppendVarint(e.dst, int64(d.ActiveJobs))
	}
	if mask&evDynFreeMemory != 0 {
		e.f64(d.FreeMemory)
	}
	if mask&evDynFreeSwap != 0 {
		e.f64(d.FreeSwap)
	}
	if mask&evDynLastUpdate != 0 {
		e.time(d.LastUpdate)
	}
	if mask&evDynServiceFlag != 0 {
		e.dst = binary.AppendUvarint(e.dst, uint64(d.ServiceFlag))
	}
}

func (d *batchDec) dynamic(prev Dynamic) Dynamic {
	out := prev
	mask := d.uvarint()
	if mask&evDynLoad != 0 {
		out.Load = d.f64()
	}
	if mask&evDynActiveJobs != 0 {
		out.ActiveJobs = int(d.varint())
	}
	if mask&evDynFreeMemory != 0 {
		out.FreeMemory = d.f64()
	}
	if mask&evDynFreeSwap != 0 {
		out.FreeSwap = d.f64()
	}
	if mask&evDynLastUpdate != 0 {
		out.LastUpdate = d.time()
	}
	if mask&evDynServiceFlag != 0 {
		out.ServiceFlag = uint32(d.uvarint())
	}
	return out
}

// MatchConds reports whether the record satisfies the compiled resource
// conditions — the exported face of the Select/Take matcher, used by the
// wire watch endpoint to filter streamed events per subscription.
func (m *Machine) MatchConds(conds []query.RsrcCond) bool {
	return m.matchConds(conds)
}

// ResolveEvents turns locally observed events into self-contained wire
// events. Kinds that expect a consumer re-read get the current record
// snapshot attached (one local Get at encode time); events whose machine
// has since vanished resolve to nil snapshots, which consumers apply as
// removals (the real removal event is in flight regardless).
//
// A non-empty conds filters the stream to the subscriber's slice of the
// namespace: records matching the filter pass whole — dynamic updates
// upgrade to full snapshots, so a record whose dynamics move it INTO the
// filter arrives complete — and records that no longer match pass as
// removals, so the replica tracks the filtered view, not the full fleet.
// Removal events always pass.
func ResolveEvents(b Backend, evs []Event, conds []query.RsrcCond) []WireEvent {
	out := make([]WireEvent, 0, len(evs))
	for _, ev := range evs {
		w := WireEvent{Kind: ev.Kind, Name: ev.Name, Dynamic: ev.Dynamic}
		if ev.Kind != EventRemoved {
			m, err := b.Get(ev.Name)
			if err != nil {
				// Vanished since the event: deliver as a removal hint.
				w.Kind = EventRemoved
				w.Dynamic = Dynamic{}
				out = append(out, w)
				continue
			}
			if len(conds) > 0 {
				if !m.MatchConds(conds) {
					w.Kind = EventRemoved
					w.Dynamic = Dynamic{}
					out = append(out, w)
					continue
				}
				w.Machine = m
			} else if ev.Kind != EventDynamicUpdated {
				w.Machine = m
			}
		}
		out = append(out, w)
	}
	return out
}

// ApplyWireEvents folds a batch of wire events into a replica backend.
// Kinds carrying snapshots upsert the whole record; dynamic updates take
// the cheap UpdateDynamic path (falling back to the snapshot when the
// replica has never seen the machine); removals — including snapshot
// kinds whose record vanished sender-side — drop the record. Unknown
// names on removal and dynamic-update are skipped: the stream may deliver
// an event for a record the replica already reconciled away.
func ApplyWireEvents(b Backend, evs []WireEvent) {
	for _, ev := range evs {
		switch {
		case ev.Kind == EventRemoved:
			_ = b.Remove(ev.Name)
		case ev.Kind == EventDynamicUpdated && ev.Machine == nil:
			_ = b.UpdateDynamic(ev.Name, ev.Dynamic)
		case ev.Machine == nil:
			_ = b.Remove(ev.Name)
		default:
			upsertMachine(b, ev.Machine)
		}
	}
}

// upsertMachine installs a snapshot, replacing any existing record. The
// replace is skipped when the stored record already equals the snapshot,
// so redelivered events (reconnect overlap) cost a read, not index churn.
func upsertMachine(b Backend, m *Machine) {
	if cur, err := b.Get(m.Static.Name); err == nil {
		if machineEqual(cur, m) {
			return
		}
		_ = b.Remove(m.Static.Name)
	}
	_ = b.Add(m) // backends copy on insert; the snapshot stays caller-owned
}

// machineEqual compares two records field by field (instants compared by
// time, nil and empty slices distinct — the same discipline as the batch
// diff masks).
func machineEqual(a, b *Machine) bool {
	return a.State == b.State &&
		a.Dynamic.Load == b.Dynamic.Load &&
		a.Dynamic.ActiveJobs == b.Dynamic.ActiveJobs &&
		a.Dynamic.FreeMemory == b.Dynamic.FreeMemory &&
		a.Dynamic.FreeSwap == b.Dynamic.FreeSwap &&
		timeEqual(a.Dynamic.LastUpdate, b.Dynamic.LastUpdate) &&
		a.Dynamic.ServiceFlag == b.Dynamic.ServiceFlag &&
		a.Static == b.Static &&
		a.Access == b.Access &&
		stringsEqual(a.Policy.UserGroups, b.Policy.UserGroups) &&
		stringsEqual(a.Policy.ToolGroups, b.Policy.ToolGroups) &&
		a.Policy.ShadowPoolRef == b.Policy.ShadowPoolRef &&
		a.Policy.UsagePolicy == b.Policy.UsagePolicy &&
		attrSetEqual(a.Policy.Params, b.Policy.Params) &&
		a.TakenBy == b.TakenBy
}

// ReconcileSnapshot makes the replica's contents equal the fetched
// snapshot: records absent from the snapshot are removed, present ones
// upserted (unchanged records cost a read each, no index churn). It
// returns how many records changed. The snapshot is the poll fallback's
// freshness unit and the watch path's resync baseline.
func ReconcileSnapshot(b Backend, ms []*Machine) (changed int) {
	want := make(map[string]bool, len(ms))
	for _, m := range ms {
		want[m.Static.Name] = true
	}
	for _, name := range b.Names() {
		if !want[name] {
			_ = b.Remove(name)
			changed++
		}
	}
	for _, m := range ms {
		if cur, err := b.Get(m.Static.Name); err == nil && machineEqual(cur, m) {
			continue
		}
		upsertMachine(b, m)
		changed++
	}
	return changed
}
