package registry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"actyp/internal/query"
)

func watchFleet(t *testing.T, b Backend, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("w%04d", i)
		m := &Machine{
			Static: Static{Name: names[i], Speed: 100, CPUs: 2, MaxLoad: 4},
		}
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

func watchBackends() map[string]func() Backend {
	return map[string]func() Backend{
		BackendLocked:  func() Backend { return NewLocked() },
		BackendSharded: func() Backend { return NewSharded(4) },
	}
}

// TestWatchEmitsTypedEvents drives one mutation of every kind through each
// engine and asserts the subscription sees exactly the typed events, in
// order, with the dynamic payload riding on DynamicUpdated.
func TestWatchEmitsTypedEvents(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			b := mk()
			watchFleet(t, b, 2)
			sub := b.Watch(64)
			defer sub.Close()

			d := Dynamic{Load: 1.5, ActiveJobs: 2, FreeMemory: 256}
			if err := b.UpdateDynamic("w0000", d); err != nil {
				t.Fatal(err)
			}
			if err := b.SetState("w0000", StateDown); err != nil {
				t.Fatal(err)
			}
			if err := b.SetParam("w0001", "arch", query.StrAttr("sun")); err != nil {
				t.Fatal(err)
			}
			q, err := query.ParseBasic("punch.rsrc.name = w0001")
			if err != nil {
				t.Fatal(err)
			}
			if got := b.Take(q, "pool#0", 1); len(got) != 1 {
				t.Fatalf("took %d machines, want 1", len(got))
			}
			if rel := b.Release("pool#0", "w0001"); rel != 1 {
				t.Fatalf("released %d, want 1", rel)
			}
			if err := b.Remove("w0000"); err != nil {
				t.Fatal(err)
			}
			if err := b.Add(&Machine{Static: Static{Name: "w0009", Speed: 1, CPUs: 1, MaxLoad: 1}}); err != nil {
				t.Fatal(err)
			}

			events, resync := sub.Poll()
			if resync {
				t.Fatal("unexpected resync")
			}
			want := []Event{
				{Kind: EventDynamicUpdated, Name: "w0000", Dynamic: d},
				{Kind: EventStateSet, Name: "w0000"},
				{Kind: EventParamSet, Name: "w0001"},
				{Kind: EventTaken, Name: "w0001"},
				{Kind: EventReleased, Name: "w0001"},
				{Kind: EventRemoved, Name: "w0000"},
				{Kind: EventAdded, Name: "w0009"},
			}
			if len(events) != len(want) {
				t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
			}
			for i, ev := range events {
				if ev != want[i] {
					t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
				}
			}
		})
	}
}

// TestWatchCoalesces asserts repeated updates of the same machine collapse
// to one pending slot carrying the newest payload.
func TestWatchCoalesces(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			b := mk()
			watchFleet(t, b, 1)
			sub := b.Watch(4)
			defer sub.Close()
			var last Dynamic
			for i := 0; i < 100; i++ {
				last = Dynamic{Load: float64(i) / 25}
				if err := b.UpdateDynamic("w0000", last); err != nil {
					t.Fatal(err)
				}
			}
			events, resync := sub.Poll()
			if resync {
				t.Fatal("coalescing must not overflow a ring on one machine")
			}
			if len(events) != 1 {
				t.Fatalf("got %d events, want 1 coalesced", len(events))
			}
			if events[0].Dynamic != last {
				t.Errorf("coalesced payload = %+v, want the newest %+v", events[0].Dynamic, last)
			}
		})
	}
}

// TestWatchOverflowResync proves the bounded ring degrades to the resync
// marker instead of blocking writers: with nobody draining, a flood of
// distinct-machine updates completes promptly and the next Poll reports a
// resync, after which the stream is live again.
func TestWatchOverflowResync(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			b := mk()
			names := watchFleet(t, b, 64)
			sub := b.Watch(8)
			defer sub.Close()

			done := make(chan struct{})
			go func() {
				defer close(done)
				for i, name := range names {
					_ = b.UpdateDynamic(name, Dynamic{Load: float64(i)})
				}
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("writers blocked on an undrained subscription")
			}

			events, resync := sub.Poll()
			if !resync {
				t.Fatal("ring overflow must latch the resync marker")
			}
			if len(events) != 0 {
				t.Fatalf("resync poll carried %d stale events", len(events))
			}

			// The stream recovers after the poll.
			if err := b.UpdateDynamic(names[0], Dynamic{Load: 9}); err != nil {
				t.Fatal(err)
			}
			events, resync = sub.Poll()
			if resync || len(events) != 1 {
				t.Fatalf("post-resync poll = %d events, resync=%v", len(events), resync)
			}
		})
	}
}

// TestWatchLoadForcesResync: replacing the world via Load cannot be
// described incrementally.
func TestWatchLoadForcesResync(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			src := mk()
			watchFleet(t, src, 3)
			var snap bytes.Buffer
			if err := src.Save(&snap); err != nil {
				t.Fatal(err)
			}
			dst := mk()
			sub := dst.Watch(16)
			defer sub.Close()
			if err := dst.Load(&snap); err != nil {
				t.Fatal(err)
			}
			if _, resync := sub.Poll(); !resync {
				t.Fatal("Load must latch the resync marker")
			}
		})
	}
}

// TestUpdateDynamicBatch pins the batch API to the serial loop on both
// engines: same final state, same count, same (coalesced) events.
func TestUpdateDynamicBatch(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			b := mk()
			names := watchFleet(t, b, 16)
			sub := b.Watch(64)
			defer sub.Close()
			updates := make([]DynamicUpdate, 0, len(names)+1)
			for i, name := range names {
				updates = append(updates, DynamicUpdate{Name: name, Dynamic: Dynamic{Load: float64(i) / 4, ActiveJobs: i}})
			}
			updates = append(updates, DynamicUpdate{Name: "no-such-machine", Dynamic: Dynamic{Load: 9}})
			if n := b.UpdateDynamicBatch(updates); n != len(names) {
				t.Fatalf("batch updated %d, want %d", n, len(names))
			}
			for i, name := range names {
				m, err := b.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if m.Dynamic.ActiveJobs != i {
					t.Errorf("%s: ActiveJobs = %d, want %d", name, m.Dynamic.ActiveJobs, i)
				}
			}
			events, resync := sub.Poll()
			if resync {
				t.Fatal("unexpected resync")
			}
			if len(events) != len(names) {
				t.Fatalf("batch emitted %d events, want %d", len(events), len(names))
			}
			seen := map[string]bool{}
			for _, ev := range events {
				if ev.Kind != EventDynamicUpdated {
					t.Errorf("batch emitted %v", ev.Kind)
				}
				seen[ev.Name] = true
			}
			if len(seen) != len(names) {
				t.Errorf("batch covered %d machines, want %d", len(seen), len(names))
			}
		})
	}
}

// TestWatchConcurrentPublishers hammers one subscription from many writers
// under -race: publication must stay data-race free and every poll must
// return internally consistent results.
func TestWatchConcurrentPublishers(t *testing.T) {
	b := NewSharded(8)
	names := watchFleet(t, b, 32)
	sub := b.Watch(32) // small: overflow paths race with drains
	defer sub.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = b.UpdateDynamic(names[(w*8+i)%len(names)], Dynamic{Load: float64(i % 5)})
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	polls, resyncs, total := 0, 0, 0
drain:
	for {
		select {
		case <-deadline:
			break drain
		case <-sub.Ready():
			events, resync := sub.Poll()
			polls++
			total += len(events)
			if resync {
				resyncs++
			}
			for _, ev := range events {
				if ev.Kind != EventDynamicUpdated || ev.Name == "" {
					t.Errorf("malformed event %+v", ev)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	if polls == 0 || total == 0 {
		t.Errorf("drained nothing (polls=%d events=%d resyncs=%d)", polls, total, resyncs)
	}
}
