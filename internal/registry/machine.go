// Package registry implements the ActYP "white pages" resource database of
// Section 4.1: one record per machine carrying the twenty fields of
// Figure 3, a concurrency-safe store with the walk-and-take protocol used by
// pool objects during initialization, and snapshot persistence.
package registry

import (
	"fmt"
	"time"

	"actyp/internal/query"
)

// State is the first database field: the coarse availability of a machine.
type State int

// The three machine states of Figure 3, field 1.
const (
	StateUp State = iota
	StateDown
	StateBlocked
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateBlocked:
		return "blocked"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState converts the textual state back to a State.
func ParseState(s string) (State, error) {
	switch s {
	case "up":
		return StateUp, nil
	case "down":
		return StateDown, nil
	case "blocked":
		return StateBlocked, nil
	}
	return StateDown, fmt.Errorf("registry: unknown state %q", s)
}

// Dynamic holds the monitor-maintained fields 2–7 of Figure 3. The resource
// monitoring service overwrites these as a unit.
type Dynamic struct {
	Load        float64   `json:"load"`        // field 2: current load
	ActiveJobs  int       `json:"activeJobs"`  // field 3: active jobs
	FreeMemory  float64   `json:"freeMemory"`  // field 4: available memory (MB)
	FreeSwap    float64   `json:"freeSwap"`    // field 5: available swap (MB)
	LastUpdate  time.Time `json:"lastUpdate"`  // field 6: time of last update
	ServiceFlag uint32    `json:"serviceFlag"` // field 7: PUNCH service status flags
}

// Service status flag bits (field 7).
const (
	FlagExecUnit  uint32 = 1 << iota // PUNCH execution unit reachable
	FlagMountMgr                     // PVFS mount manager reachable
	FlagShadowOK                     // shadow account pool has free accounts
	FlagMonitorOK                    // monitor heartbeat fresh
)

// Static holds the manually-updated fields 8–11 of Figure 3.
type Static struct {
	Speed   float64 `json:"speed"`   // field 8: effective speed (SPEC-like units)
	CPUs    int     `json:"cpus"`    // field 9: number of CPUs
	MaxLoad float64 `json:"maxLoad"` // field 10: maximum allowed load
	Name    string  `json:"name"`    // field 11: machine name
}

// Access mirrors fields 12–15: how PUNCH reaches and drives the machine.
// The machine object pointer of the paper (a file path holding ssh keys and
// start-up instructions) is represented by ObjectRef.
type Access struct {
	ObjectRef     string `json:"objectRef"`     // field 12: machine object pointer
	SharedAccount string `json:"sharedAccount"` // field 13: shared account id ("" if none)
	ExecUnitPort  int    `json:"execUnitPort"`  // field 14: execution unit TCP port
	MountMgrPort  int    `json:"mountMgrPort"`  // field 15: PVFS mount manager TCP port
	Addr          string `json:"addr"`          // IP address handed to clients
}

// Policy mirrors fields 16–20: who may use the machine and for what.
type Policy struct {
	UserGroups    []string      `json:"userGroups"`    // field 16: allowed user groups
	ToolGroups    []string      `json:"toolGroups"`    // field 17: runnable tool groups
	ShadowPoolRef string        `json:"shadowPoolRef"` // field 18: shadow account pool pointer
	UsagePolicy   string        `json:"usagePolicy"`   // field 19: usage policy metaprogram ref
	Params        query.AttrSet `json:"params"`        // field 20: admin-defined key-value pairs
}

// Machine is one white-pages record: the twenty fields of Figure 3 plus the
// taken flag pool objects set while they hold the machine.
type Machine struct {
	State   State   `json:"state"`
	Dynamic Dynamic `json:"dynamic"`
	Static  Static  `json:"static"`
	Access  Access  `json:"access"`
	Policy  Policy  `json:"policy"`

	// TakenBy names the pool instance currently holding this machine, or
	// "" when the machine is free. Pool objects mark machines taken while
	// loading them into their local caches (Section 5.2.3).
	TakenBy string `json:"takenBy,omitempty"`
}

// Clone returns a deep copy of the machine record.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Policy.UserGroups = append([]string(nil), m.Policy.UserGroups...)
	c.Policy.ToolGroups = append([]string(nil), m.Policy.ToolGroups...)
	c.Policy.Params = m.Policy.Params.Clone()
	return &c
}

// builtinAttrs is the single schema of the attributes derived from record
// fields rather than admin parameters. Attrs, the per-record matcher
// (attrNamed) and the sharded backend's index guard all read this table,
// so a new derived attribute added here is consistently exposed by every
// backend and never shadowed by a stale index. An extractor returning
// ok=false (the empty usergroup/toolgroup lists) lets a same-named admin
// parameter show through instead.
var builtinAttrs = map[string]func(*Machine) (query.Attr, bool){
	"name":       func(m *Machine) (query.Attr, bool) { return query.StrAttr(m.Static.Name), true },
	"speed":      func(m *Machine) (query.Attr, bool) { return query.NumAttr(m.Static.Speed), true },
	"cpus":       func(m *Machine) (query.Attr, bool) { return query.NumAttr(float64(m.Static.CPUs)), true },
	"maxload":    func(m *Machine) (query.Attr, bool) { return query.NumAttr(m.Static.MaxLoad), true },
	"load":       func(m *Machine) (query.Attr, bool) { return query.NumAttr(m.Dynamic.Load), true },
	"activejobs": func(m *Machine) (query.Attr, bool) { return query.NumAttr(float64(m.Dynamic.ActiveJobs)), true },
	"freememory": func(m *Machine) (query.Attr, bool) { return query.NumAttr(m.Dynamic.FreeMemory), true },
	"freeswap":   func(m *Machine) (query.Attr, bool) { return query.NumAttr(m.Dynamic.FreeSwap), true },
	"usergroup": func(m *Machine) (query.Attr, bool) {
		if len(m.Policy.UserGroups) == 0 {
			return query.Attr{}, false
		}
		return query.ListAttr(m.Policy.UserGroups...), true
	},
	"toolgroup": func(m *Machine) (query.Attr, bool) {
		if len(m.Policy.ToolGroups) == 0 {
			return query.Attr{}, false
		}
		return query.ListAttr(m.Policy.ToolGroups...), true
	},
}

// Attrs flattens the record into the attribute set seen by query matching:
// the admin-defined parameters of field 20 plus the built-in attributes
// derived from the other fields (name, speed, cpus, load, memory, swap,
// usergroup, toolgroup).
func (m *Machine) Attrs() query.AttrSet {
	out := m.Policy.Params.Clone()
	if out == nil {
		out = make(query.AttrSet)
	}
	for name, extract := range builtinAttrs {
		if attr, ok := extract(m); ok {
			out[name] = attr
		}
	}
	return out
}

// attrNamed returns the single attribute Attrs would expose under name,
// without materializing (and deep-copying) the whole set. Built-in
// attributes shadow same-named admin parameters, exactly as in Attrs.
func (m *Machine) attrNamed(name string) (query.Attr, bool) {
	if extract, ok := builtinAttrs[name]; ok {
		if attr, ok := extract(m); ok {
			return attr, true
		}
	}
	attr, ok := m.Policy.Params[name]
	return attr, ok
}

// matchConds is the per-record hot path of Select and Take: equivalent to
// m.Attrs().MatchConds(conds) but without building the attribute set.
func (m *Machine) matchConds(conds []query.RsrcCond) bool {
	for _, rc := range conds {
		attr, ok := m.attrNamed(rc.Name)
		if !ok {
			return false
		}
		if !attr.Matches(rc.Cond) {
			return false
		}
	}
	return true
}

// Usable reports whether the machine can be handed out at all: it must be
// up and below its administrator-set load ceiling.
func (m *Machine) Usable() bool {
	return m.State == StateUp && m.Dynamic.Load < m.Static.MaxLoad
}

// AllowsUserGroup reports whether the machine's user-group list admits the
// given group. An empty list admits everyone (a public machine).
func (m *Machine) AllowsUserGroup(group string) bool {
	if len(m.Policy.UserGroups) == 0 {
		return true
	}
	for _, g := range m.Policy.UserGroups {
		if g == group {
			return true
		}
	}
	return false
}

// SupportsToolGroup reports whether the machine can run tools of the given
// group. An empty list supports every tool.
func (m *Machine) SupportsToolGroup(group string) bool {
	if len(m.Policy.ToolGroups) == 0 {
		return true
	}
	for _, g := range m.Policy.ToolGroups {
		if g == group {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants a record must satisfy before it
// may enter the database.
func (m *Machine) Validate() error {
	if m.Static.Name == "" {
		return fmt.Errorf("registry: machine needs a name")
	}
	if m.Static.CPUs <= 0 {
		return fmt.Errorf("registry: machine %s: cpus must be positive", m.Static.Name)
	}
	if m.Static.Speed <= 0 {
		return fmt.Errorf("registry: machine %s: speed must be positive", m.Static.Name)
	}
	if m.Static.MaxLoad <= 0 {
		return fmt.Errorf("registry: machine %s: maxLoad must be positive", m.Static.Name)
	}
	if m.Access.ExecUnitPort < 0 || m.Access.ExecUnitPort > 65535 {
		return fmt.Errorf("registry: machine %s: bad exec unit port %d", m.Static.Name, m.Access.ExecUnitPort)
	}
	if m.Access.MountMgrPort < 0 || m.Access.MountMgrPort > 65535 {
		return fmt.Errorf("registry: machine %s: bad mount manager port %d", m.Static.Name, m.Access.MountMgrPort)
	}
	return nil
}
