package registry

import (
	"fmt"
	"math/rand"
	"time"

	"actyp/internal/query"
)

// FleetSpec describes a synthetic machine fleet. The controlled experiments
// of Section 7 use a database of 3,200 machines; this generator builds such
// databases deterministically from a seed.
type FleetSpec struct {
	N       int      // number of machines
	Archs   []string // architectures to cycle through ("" entries not allowed)
	Domains []string // administrative domains to cycle through
	Owners  []string // machine owners to cycle through
	Tools   []string // tool groups; each machine gets a contiguous slice
	Seed    int64    // deterministic seed for speeds/memory jitter
}

// DefaultFleetSpec mirrors the heterogeneous PUNCH testbed: four
// architectures across two domains with a spread of tool licenses.
func DefaultFleetSpec(n int) FleetSpec {
	return FleetSpec{
		N:       n,
		Archs:   []string{"sun", "hp", "alpha", "x86"},
		Domains: []string{"purdue", "upc"},
		Owners:  []string{"ece", "cs", "public"},
		Tools:   []string{"tsuprem4", "spice", "matlab", "minimos"},
		Seed:    1,
	}
}

// HomogeneousFleetSpec builds the hot-spot scenario of Section 7: a large
// number of identical machines that all aggregate into one pool.
func HomogeneousFleetSpec(n int) FleetSpec {
	return FleetSpec{
		N:       n,
		Archs:   []string{"sun"},
		Domains: []string{"purdue"},
		Owners:  []string{"public"},
		Tools:   []string{"tsuprem4"},
		Seed:    1,
	}
}

// Build generates the fleet records. Machine names are m0000, m0001, ...
// and every record is up, unloaded, and monitor-fresh as of now.
func (spec FleetSpec) Build(now time.Time) ([]*Machine, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("registry: fleet size must be positive, got %d", spec.N)
	}
	if len(spec.Archs) == 0 || len(spec.Domains) == 0 {
		return nil, fmt.Errorf("registry: fleet needs at least one arch and one domain")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]*Machine, 0, spec.N)
	for i := 0; i < spec.N; i++ {
		arch := spec.Archs[i%len(spec.Archs)]
		domain := spec.Domains[i%len(spec.Domains)]
		owner := "public"
		if len(spec.Owners) > 0 {
			owner = spec.Owners[i%len(spec.Owners)]
		}
		mem := float64(int(128) << uint(rng.Intn(4))) // 128..1024 MB
		cpus := 1 + rng.Intn(4)
		m := &Machine{
			State: StateUp,
			Dynamic: Dynamic{
				Load:        0,
				FreeMemory:  mem,
				FreeSwap:    2 * mem,
				LastUpdate:  now,
				ServiceFlag: FlagExecUnit | FlagMountMgr | FlagShadowOK | FlagMonitorOK,
			},
			Static: Static{
				Speed:   200 + float64(rng.Intn(400)),
				CPUs:    cpus,
				MaxLoad: float64(cpus) * 2,
				Name:    fmt.Sprintf("m%04d", i),
			},
			Access: Access{
				ObjectRef:     fmt.Sprintf("/punch/machines/m%04d.obj", i),
				SharedAccount: "nobody",
				ExecUnitPort:  7000,
				MountMgrPort:  7001,
				Addr:          fmt.Sprintf("10.%d.%d.%d", i/65536, (i/256)%256, i%256),
			},
			Policy: Policy{
				UserGroups:    nil, // public
				ToolGroups:    toolSlice(spec.Tools, i),
				ShadowPoolRef: fmt.Sprintf("/punch/shadow/m%04d", i),
				Params: query.AttrSet{
					"arch":      query.StrAttr(arch),
					"memory":    query.NumAttr(mem),
					"swap":      query.NumAttr(2 * mem),
					"ostype":    query.StrAttr(osFor(arch)),
					"osversion": query.StrAttr("5.8"),
					"owner":     query.StrAttr(owner),
					"domain":    query.StrAttr(domain),
					"cms":       query.ListAttr("sge", "pbs"),
					"license":   query.ListAttr(toolSlice(spec.Tools, i)...),
				},
			},
		}
		out = append(out, m)
	}
	return out, nil
}

// Populate builds the fleet and adds every machine to the database.
func (spec FleetSpec) Populate(db *DB, now time.Time) error {
	machines, err := spec.Build(now)
	if err != nil {
		return err
	}
	for _, m := range machines {
		if err := db.Add(m); err != nil {
			return err
		}
	}
	return nil
}

func toolSlice(tools []string, i int) []string {
	if len(tools) == 0 {
		return nil
	}
	// Each machine supports a contiguous window of half the tools, so
	// tool-constrained pools have plenty of members but not everything.
	k := len(tools)/2 + 1
	out := make([]string, 0, k)
	for j := 0; j < k; j++ {
		out = append(out, tools[(i+j)%len(tools)])
	}
	return out
}

func osFor(arch string) string {
	switch arch {
	case "sun":
		return "solaris"
	case "hp":
		return "hpux"
	case "alpha":
		return "tru64"
	default:
		return "linux"
	}
}
