package registry

// DB is the white-pages database handed around the pipeline: a
// concurrency-safe store of one record per machine carrying the twenty
// fields of Figure 3, with per-field update, walk with predicate, and the
// mark-taken protocol pool objects use while loading their caches. The
// actual storage engine is a pluggable Backend; every engine preserves the
// same observable semantics, so the choice only affects performance.
type DB struct {
	Backend
}

// NewDB returns an empty database on the default engine: the sharded,
// index-accelerated backend with a GOMAXPROCS-scaled shard count.
func NewDB() *DB {
	return &DB{Backend: NewSharded(0)}
}

// NewDBWith returns a database on an explicit backend, typically built by
// OpenBackend from a daemon flag. A nil backend falls back to the default.
func NewDBWith(b Backend) *DB {
	if b == nil {
		return NewDB()
	}
	return &DB{Backend: b}
}
