package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"actyp/internal/query"
)

func mustParseBasic(t *testing.T, text string) *query.Query {
	t.Helper()
	q, err := query.ParseBasic(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return q
}

// eventCorpus builds one batch exercising every payload shape: record
// snapshots (diffed), dynamic-only updates (diffed), removals, vanished
// snapshots, and filtered dynamic upgrades.
func eventCorpus(t *testing.T) []WireEvent {
	t.Helper()
	fleet, err := DefaultFleetSpec(6).Build(time.Unix(0, 1723100000000000000))
	if err != nil {
		t.Fatalf("build fleet: %v", err)
	}
	d := Dynamic{Load: 1.25, ActiveJobs: 3, FreeMemory: 128, FreeSwap: 4096,
		LastUpdate: time.Unix(2000, 0), ServiceFlag: 3}
	d2 := d
	d2.Load = 2.5 // near-identical: exercises the dynamic diff mask
	return []WireEvent{
		{Kind: EventAdded, Name: fleet[0].Static.Name, Machine: fleet[0]},
		{Kind: EventDynamicUpdated, Name: fleet[1].Static.Name, Dynamic: d},
		{Kind: EventDynamicUpdated, Name: fleet[1].Static.Name, Dynamic: d2},
		{Kind: EventRemoved, Name: fleet[2].Static.Name},
		{Kind: EventTaken, Name: fleet[3].Static.Name, Machine: fleet[3]},
		{Kind: EventStateSet, Name: "vanished"}, // nil snapshot: removal hint
		// Filtered stream shape: a dynamic event upgraded to a snapshot.
		{Kind: EventDynamicUpdated, Name: fleet[4].Static.Name, Machine: fleet[4], Dynamic: fleet[4].Dynamic},
		{Kind: EventReleased, Name: fleet[3].Static.Name, Machine: fleet[3]},
		{Kind: EventParamSet, Name: fleet[5].Static.Name, Machine: fleet[5]},
	}
}

func TestEventBatchRoundTrip(t *testing.T) {
	evs := eventCorpus(t)
	enc := AppendEventBatch(nil, evs)
	dec, err := DecodeEventBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, _ := json.Marshal(evs)
	got, _ := json.Marshal(dec)
	if !bytes.Equal(want, got) {
		t.Fatalf("round trip mismatch:\nwant %s\ngot  %s", want, got)
	}
	// A monitor-sweep burst must encode near the diff, not the event: the
	// same dynamic payload repeated should cost a few bytes per event.
	burst := make([]WireEvent, 256)
	for i := range burst {
		burst[i] = WireEvent{Kind: EventDynamicUpdated, Name: fmt.Sprintf("m%04d", i),
			Dynamic: Dynamic{Load: 0.5, FreeMemory: 512, LastUpdate: time.Unix(3000, 0)}}
	}
	if n := len(AppendEventBatch(nil, burst)); n > 14*len(burst) {
		t.Errorf("dynamic burst encoded to %d bytes (%d/event); diffing is broken", n, n/len(burst))
	}
}

func TestEventBatchEmpty(t *testing.T) {
	dec, err := DecodeEventBatch(AppendEventBatch(nil, nil))
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty batch: %v events, err %v", len(dec), err)
	}
}

// TestEventBatchTruncationAndCorruption proves the decoder fails cleanly —
// never panics — on every truncation prefix, trailing garbage, and random
// single-byte corruption.
func TestEventBatchTruncationAndCorruption(t *testing.T) {
	enc := AppendEventBatch(nil, eventCorpus(t))
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeEventBatch(enc[:i]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", i, len(enc))
		}
	}
	if _, err := DecodeEventBatch(append(append([]byte{}, enc...), 0xFF)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte{}, enc...)
		corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		_, _ = DecodeEventBatch(corrupt) // must not panic; error optional
	}
}

// drainEvents polls the subscription empty and resolves what it saw.
func drainEvents(t *testing.T, b Backend, sub *Subscription, conds []query.RsrcCond) []WireEvent {
	t.Helper()
	evs, resync := sub.Poll()
	if resync {
		t.Fatal("unexpected resync")
	}
	return ResolveEvents(b, evs, conds)
}

func backendsEqual(t *testing.T, want, got Backend) {
	t.Helper()
	wantNames, gotNames := want.Names(), got.Names()
	if len(wantNames) != len(gotNames) {
		t.Fatalf("record count: want %d, got %d (%v vs %v)", len(wantNames), len(gotNames), wantNames, gotNames)
	}
	for _, name := range wantNames {
		w, err := want.Get(name)
		if err != nil {
			t.Fatalf("source lost %s: %v", name, err)
		}
		g, err := got.Get(name)
		if err != nil {
			t.Fatalf("replica missing %s", name)
		}
		if !machineEqual(w, g) {
			t.Fatalf("replica diverged on %s:\nwant %+v\ngot  %+v", name, w, g)
		}
	}
}

// TestWireEventsReplicaDifferential is the oracle test for the watch fast
// path: a replica fed exclusively by encoded wire-event batches must end
// bit-equal (per machineEqual, TakenBy included) to the source registry
// after a workload touching every mutation kind.
func TestWireEventsReplicaDifferential(t *testing.T) {
	for kind, mk := range watchBackends() {
		t.Run(kind, func(t *testing.T) {
			src, rep := mk(), mk()
			sub := src.Watch(4096)
			defer sub.Close()

			apply := func() {
				wevs := drainEvents(t, src, sub, nil)
				enc := AppendEventBatch(nil, wevs)
				dec, err := DecodeEventBatch(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				ApplyWireEvents(rep, dec)
			}

			fleet, err := DefaultFleetSpec(32).Build(time.Unix(0, 1723100000000000000))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range fleet {
				if err := src.Add(m); err != nil {
					t.Fatal(err)
				}
			}
			apply()
			backendsEqual(t, src, rep)

			// Monitor sweep + state churn + take/release + removal.
			for i, m := range fleet {
				name := m.Static.Name
				_ = src.UpdateDynamic(name, Dynamic{Load: float64(i), ActiveJobs: i,
					FreeMemory: 64, LastUpdate: time.Unix(int64(4000+i), 0)})
				if i%5 == 0 {
					_ = src.SetState(name, StateDown)
				}
				if i%7 == 0 {
					_ = src.SetParam(name, "tag", query.StrAttr("hot"))
				}
			}
			q := mustParseBasic(t, "")
			src.Take(q, "pool#x", 5)
			_ = src.Remove(fleet[3].Static.Name)
			apply()
			backendsEqual(t, src, rep)

			src.ReleaseAll("pool#x")
			_ = src.Add(testMachine("late-join"))
			apply()
			backendsEqual(t, src, rep)
		})
	}
}

// TestResolveEventsFilter proves per-subscription filtering: matching
// records pass whole (dynamic updates upgraded to snapshots), records
// outside the filter pass as removals, and a record whose mutation moves
// it INTO the filter arrives complete.
func TestResolveEventsFilter(t *testing.T) {
	b := NewLocked()
	sun := testMachine("sun-box")
	hp := testMachine("hp-box")
	hp.Policy.Params["arch"] = query.StrAttr("hp")
	if err := b.Add(sun); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(hp); err != nil {
		t.Fatal(err)
	}
	conds := query.CompileRsrc(mustParseBasic(t, "punch.rsrc.arch = sun"))
	sub := b.Watch(64)
	defer sub.Close()

	_ = b.UpdateDynamic("sun-box", Dynamic{Load: 9})
	_ = b.UpdateDynamic("hp-box", Dynamic{Load: 9})
	wevs := drainEvents(t, b, sub, conds)
	if len(wevs) != 2 {
		t.Fatalf("got %d events, want 2", len(wevs))
	}
	for _, ev := range wevs {
		switch ev.Name {
		case "sun-box":
			if ev.Kind != EventDynamicUpdated || ev.Machine == nil {
				t.Fatalf("matching dynamic update should carry a full snapshot, got %+v", ev)
			}
		case "hp-box":
			if ev.Kind != EventRemoved {
				t.Fatalf("non-matching record should pass as removal, got %+v", ev)
			}
		}
	}

	// hp-box mutates INTO the filter: the event must arrive whole.
	_ = b.SetParam("hp-box", "arch", query.StrAttr("sun"))
	wevs = drainEvents(t, b, sub, conds)
	if len(wevs) != 1 || wevs[0].Machine == nil || wevs[0].Machine.Policy.Params["arch"].Str != "sun" {
		t.Fatalf("record entering the filter should arrive whole, got %+v", wevs)
	}

	// Applied to a replica, the filtered stream tracks the filtered view.
	rep := NewLocked()
	_ = rep.Add(hp) // stale pre-filter copy; the snapshot must replace it
	ApplyWireEvents(rep, wevs)
	got, err := rep.Get("hp-box")
	if err != nil || got.Policy.Params["arch"].Str != "sun" {
		t.Fatalf("replica did not adopt the upgraded snapshot: %+v, %v", got, err)
	}
}

func TestReconcileSnapshot(t *testing.T) {
	rep := NewLocked()
	_ = rep.Add(testMachine("stale"))
	_ = rep.Add(testMachine("keep"))
	fresh := testMachine("keep")
	fresh.Dynamic.Load = 7.5
	incoming := []*Machine{fresh, testMachine("new")}

	if changed := ReconcileSnapshot(rep, incoming); changed != 3 {
		t.Fatalf("changed = %d, want 3 (remove stale, update keep, add new)", changed)
	}
	if _, err := rep.Get("stale"); err == nil {
		t.Fatal("stale record survived reconcile")
	}
	if got, _ := rep.Get("keep"); got == nil || got.Dynamic.Load != 7.5 {
		t.Fatalf("keep not updated: %+v", got)
	}
	if _, err := rep.Get("new"); err != nil {
		t.Fatal("new record missing after reconcile")
	}
	// Idempotent: a second identical snapshot changes nothing.
	if changed := ReconcileSnapshot(rep, incoming); changed != 0 {
		t.Fatalf("idempotent reconcile changed %d records", changed)
	}
}
