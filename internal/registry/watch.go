package registry

import (
	"sync"
	"sync/atomic"
)

// The change stream is the push half of the white pages: every mutation a
// backend commits is also published as a typed Event to whoever called
// Watch. Pools (via pool.Dispatcher) fold these events into their caches
// incrementally instead of polling the database with full re-reads, which
// is what keeps freshness cheap at fleet scale (see DESIGN.md, "Change
// propagation").
//
// Delivery is deliberately lossy-but-honest: each subscriber owns a
// bounded ring that coalesces events per (kind, machine), and when even the
// coalesced backlog outgrows the ring the subscription drops everything and
// latches a single resync marker. Publishers therefore NEVER block on a
// slow consumer — a wedged subscriber costs one flag, not a stalled monitor
// sweep — and a consumer that sees the marker knows to fall back to a full
// re-read (pool.Refresh), after which the stream is consistent again.

// EventKind enumerates the typed registry mutations a Watch observes.
type EventKind uint8

// One kind per Backend mutator. Load does not emit per-machine events; it
// replaces the world and therefore latches the resync marker instead.
const (
	EventAdded          EventKind = iota + 1 // Add
	EventRemoved                             // Remove
	EventStateSet                            // SetState
	EventDynamicUpdated                      // UpdateDynamic / UpdateDynamicBatch
	EventParamSet                            // SetParam
	EventTaken                               // Take (one event per claimed machine)
	EventReleased                            // Release / ReleaseAll (one per machine)
)

func (k EventKind) String() string {
	switch k {
	case EventAdded:
		return "added"
	case EventRemoved:
		return "removed"
	case EventStateSet:
		return "state-set"
	case EventDynamicUpdated:
		return "dynamic-updated"
	case EventParamSet:
		return "param-set"
	case EventTaken:
		return "taken"
	case EventReleased:
		return "released"
	}
	return "event(?)"
}

// Event is one observed mutation of a white-pages record.
type Event struct {
	Kind EventKind
	Name string // machine name
	// Dynamic carries the fresh monitor snapshot for EventDynamicUpdated —
	// the one high-rate kind — so consumers fold load changes without a
	// database read (and without the deep clone a Get implies). For every
	// other kind consumers re-read the record; coalescing may collapse
	// several mutations into one event, and a re-read always lands on the
	// newest state.
	Dynamic Dynamic
}

// DynamicUpdate names one machine's fresh monitor snapshot, the unit of
// UpdateDynamicBatch.
type DynamicUpdate struct {
	Name    string
	Dynamic Dynamic
}

// DefaultWatchBuffer is the subscription ring capacity used when Watch is
// called with buffer <= 0. Coalescing bounds the backlog to one slot per
// (kind, machine), so a ring at least as large as the fleet never
// overflows under steady monitor sweeps.
const DefaultWatchBuffer = 1 << 16

// subKey is the coalescing identity: one ring slot per kind and machine.
type subKey struct {
	kind EventKind
	name string
}

// Subscription is one consumer's view of the change stream. It is written
// by the backend's mutators (never blocking) and drained by a single
// consumer via Poll; Ready signals pending work. All methods are safe for
// concurrent use, but Poll's returned slice is only valid until the next
// Poll (the buffers rotate), which the single-consumer contract makes
// harmless.
type Subscription struct {
	hub   *watchHub
	ready chan struct{} // capacity 1: level-triggered wakeup

	mu     sync.Mutex
	cap    int
	buf    []Event
	prev   []Event // last Poll's array, recycled on the next Poll
	idx    map[subKey]int
	resync bool
	closed bool
}

// publish appends one event, coalescing per (kind, machine) and degrading
// to the resync marker on overflow. It never blocks beyond the
// subscription's own mutex, which no consumer holds while doing work.
func (s *Subscription) publish(ev Event) {
	s.mu.Lock()
	if s.closed || s.resync {
		// A pending resync already supersedes every individual event.
		s.mu.Unlock()
		return
	}
	k := subKey{ev.Kind, ev.Name}
	if i, ok := s.idx[k]; ok {
		s.buf[i] = ev // newer payload replaces the pending one
	} else if len(s.buf) >= s.cap {
		s.forceResyncLocked()
	} else {
		s.idx[k] = len(s.buf)
		s.buf = append(s.buf, ev)
	}
	s.mu.Unlock()
	s.signal()
}

// forceResync latches the resync marker, dropping any pending events: the
// consumer's next Poll reports that incremental state is gone and a full
// re-read is required. Load uses it; overflow triggers it internally.
func (s *Subscription) forceResync() {
	s.mu.Lock()
	if !s.closed {
		s.forceResyncLocked()
	}
	s.mu.Unlock()
	s.signal()
}

func (s *Subscription) forceResyncLocked() {
	s.resync = true
	s.buf = s.buf[:0]
	clear(s.idx)
}

func (s *Subscription) signal() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives after new events (or a resync)
// become pending. It is level-triggered with capacity one: a receive means
// "Poll now", not "exactly one event".
func (s *Subscription) Ready() <-chan struct{} { return s.ready }

// Poll drains the pending events. resync=true means the ring overflowed
// (or the database was wholesale replaced) since the last Poll: the events
// slice is empty and the consumer must re-read the state it mirrors. The
// returned slice is valid until the next Poll.
func (s *Subscription) Poll() (events []Event, resync bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	events, resync = s.buf, s.resync
	// Rotate buffers: the array handed out last time is free again (the
	// single consumer finished with it before polling anew).
	s.buf, s.prev = s.prev[:0], events
	clear(s.idx)
	s.resync = false
	return events, resync
}

// Pending reports how many coalesced events wait, plus the resync flag
// (observability and tests).
func (s *Subscription) Pending() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf), s.resync
}

// Close detaches the subscription from the backend. A blocked Ready
// receiver is woken; subsequent Polls return nothing.
func (s *Subscription) Close() {
	if s.hub != nil {
		s.hub.remove(s)
	}
	s.mu.Lock()
	s.closed = true
	s.buf, s.prev, s.idx = nil, nil, nil
	s.resync = false
	s.mu.Unlock()
	s.signal()
}

// watchHub is the per-backend subscriber registry, embedded by every
// engine so Watch is part of the Backend contract. The zero value is
// ready to use. Emission is designed for mutator hot paths: a single
// atomic load when nobody watches, a shared read-lock walk otherwise.
type watchHub struct {
	mu   sync.RWMutex
	subs []*Subscription
	n    atomic.Int32
}

// Watch subscribes to the change stream with a ring of the given capacity
// (buffer <= 0 selects DefaultWatchBuffer). Events observed strictly after
// Watch returns are guaranteed to be delivered, coalesced, or covered by a
// resync marker; there is no replay of earlier history.
func (h *watchHub) Watch(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = DefaultWatchBuffer
	}
	s := &Subscription{
		hub:   h,
		ready: make(chan struct{}, 1),
		cap:   buffer,
		idx:   make(map[subKey]int),
	}
	h.mu.Lock()
	h.subs = append(h.subs, s)
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return s
}

func (h *watchHub) remove(s *Subscription) {
	h.mu.Lock()
	for i, cand := range h.subs {
		if cand == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			break
		}
	}
	h.n.Store(int32(len(h.subs)))
	h.mu.Unlock()
}

// active is the mutator fast path: one atomic load decides whether an
// event is worth constructing at all.
func (h *watchHub) active() bool { return h.n.Load() > 0 }

// emit publishes one event to every subscriber. Engines call it while
// holding the mutated record's lock, so each machine's events are totally
// ordered; subscription mutexes are leaves below every engine lock.
func (h *watchHub) emit(ev Event) {
	if !h.active() {
		return
	}
	h.mu.RLock()
	for _, s := range h.subs {
		s.publish(ev)
	}
	h.mu.RUnlock()
}

// emitResync latches the resync marker on every subscriber (Load replaced
// the world; no event stream can describe that incrementally).
func (h *watchHub) emitResync() {
	if !h.active() {
		return
	}
	h.mu.RLock()
	for _, s := range h.subs {
		s.forceResync()
	}
	h.mu.RUnlock()
}
