package registry

// RemoteWatch extends the change stream across the process boundary: it
// mirrors a remote registry into a local replica DB by subscribing to the
// remote's watch endpoint, so everything already built on a local DB —
// pool.Dispatcher fan-out, incremental Allocator.Apply, Select — runs
// against the replica unchanged while deltas, not polls, carry freshness
// over the wire.
//
// The transport is an interface (implemented by core.Client over the wire
// protocol; wire imports registry, so the reverse import would cycle),
// which also keeps the protocol machinery testable with in-memory fakes.
//
// Degradation ladder, in order:
//
//  1. watch stream — coalesced event batches applied incrementally.
//  2. resync — on a resync marker (remote ring overflow or wholesale
//     Load), stream overflow, or reconnect, the replica re-baselines from
//     a full snapshot fetch and the stream resumes.
//  3. poll — a peer that answers the subscribe with a remote error has
//     never learned the watch message (the JSON floor); the watcher
//     latches poll mode and keeps the replica fresh with periodic
//     snapshot fetches instead. Old peers cost bandwidth, not liveness.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actyp/internal/metrics"
)

// ErrWatchUnsupported reports that the remote peer does not implement the
// watch message family (a JSON-floor or pre-watch build). Transports
// return it from WatchSubscribe; RemoteWatch reacts by latching the poll
// fallback instead of retrying the subscribe.
var ErrWatchUnsupported = errors.New("registry: remote peer does not support watch")

// WatchBatch is one received unit of the remote change stream: either a
// batch of events or a resync marker (never both; a marker means the
// remote dropped events and the replica must re-baseline).
type WatchBatch struct {
	Resync bool
	Events []WireEvent
}

// WatchStream is one live subscription to a remote change stream.
type WatchStream interface {
	// Recv blocks for the next batch. It fails permanently when the
	// stream dies (connection loss, server shutdown, stream overflow);
	// the watcher then re-subscribes from scratch.
	Recv() (WatchBatch, error)
	// Close releases the subscription (best effort) and unblocks Recv.
	Close() error
}

// WatchTransport is the wire-agnostic face RemoteWatch drives.
type WatchTransport interface {
	// WatchSubscribe opens a stream of changes to records matching filter
	// ("" = all), with a server-side coalescing ring of the given size
	// (<=0 = server default). It returns ErrWatchUnsupported (possibly
	// wrapped) when the peer does not speak watch.
	WatchSubscribe(ctx context.Context, filter string, ring int) (WatchStream, error)
	// FetchSnapshot returns the current records matching filter — the
	// resync baseline and the poll fallback's freshness unit.
	FetchSnapshot(ctx context.Context, filter string) ([]*Machine, error)
}

// Remote-watch modes reported by Mode.
const (
	WatchModeStream = "watch"
	WatchModePoll   = "poll"
)

// RemoteWatchConfig configures a RemoteWatch.
type RemoteWatchConfig struct {
	// Transport reaches the remote registry. Required.
	Transport WatchTransport
	// Replica is the local mirror the stream is applied to. Required.
	Replica *DB
	// Filter restricts the mirrored slice to records matching this basic
	// query text ("" mirrors everything).
	Filter string
	// Ring sizes the remote subscription's coalescing ring (<=0 uses the
	// server default).
	Ring int
	// PollInterval paces the poll fallback and defaults to 2s.
	PollInterval time.Duration
	// RetryBackoff is the initial resubscribe backoff after a stream
	// failure (default 50ms, capped at 2s, full jitter not needed — each
	// watcher owns one upstream).
	RetryBackoff time.Duration
	// ForcePoll skips the subscribe and runs poll mode unconditionally
	// (benchmark baseline; also a kill switch).
	ForcePoll bool
	// Stats, when set, counts events, resyncs, polls, and reconnects.
	Stats *metrics.FederationStats
	// Logf receives rare diagnostics (mode degradation); nil discards.
	Logf func(format string, args ...any)
}

// RemoteWatch is a running replica-maintenance loop. Create with
// StartRemoteWatch; stop with Close.
type RemoteWatch struct {
	cfg    RemoteWatchConfig
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	synced     chan struct{}
	syncedOnce sync.Once

	mode atomic.Value // string: WatchModeStream or WatchModePoll

	streamMu sync.Mutex
	stream   WatchStream
}

// StartRemoteWatch validates cfg and starts the maintenance loop. The
// replica converges to the remote's state shortly after; WaitSynced
// blocks until the first full baseline lands.
func StartRemoteWatch(cfg RemoteWatchConfig) (*RemoteWatch, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("registry: remote watch needs a transport")
	}
	if cfg.Replica == nil {
		return nil, fmt.Errorf("registry: remote watch needs a replica DB")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &RemoteWatch{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		synced: make(chan struct{}),
	}
	w.mode.Store(WatchModeStream)
	if cfg.ForcePoll {
		w.mode.Store(WatchModePoll)
	}
	go w.run()
	return w, nil
}

// Mode reports the active freshness mode: WatchModeStream while the event
// stream feeds the replica, WatchModePoll once the watcher degraded to
// periodic snapshot fetches.
func (w *RemoteWatch) Mode() string { return w.mode.Load().(string) }

// WaitSynced blocks until the replica holds its first complete baseline
// (or ctx expires, or the watcher is closed).
func (w *RemoteWatch) WaitSynced(ctx context.Context) error {
	select {
	case <-w.synced:
		return nil
	case <-w.done:
		return fmt.Errorf("registry: remote watch closed before first sync")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the loop and releases the live subscription.
func (w *RemoteWatch) Close() {
	w.cancel()
	w.streamMu.Lock()
	if w.stream != nil {
		_ = w.stream.Close()
	}
	w.streamMu.Unlock()
	<-w.done
}

func (w *RemoteWatch) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *RemoteWatch) markSynced() {
	w.syncedOnce.Do(func() { close(w.synced) })
}

// setStream records the live stream so Close can unblock Recv; it closes
// the new stream immediately when the watcher is already shutting down.
func (w *RemoteWatch) setStream(st WatchStream) bool {
	w.streamMu.Lock()
	defer w.streamMu.Unlock()
	if w.ctx.Err() != nil {
		if st != nil {
			_ = st.Close()
		}
		return false
	}
	w.stream = st
	return true
}

func (w *RemoteWatch) run() {
	defer close(w.done)
	backoff := w.cfg.RetryBackoff
	const maxBackoff = 2 * time.Second
	for w.ctx.Err() == nil {
		if w.Mode() == WatchModePoll {
			w.pollLoop()
			return
		}
		st, err := w.cfg.Transport.WatchSubscribe(w.ctx, w.cfg.Filter, w.cfg.Ring)
		if err != nil {
			if errors.Is(err, ErrWatchUnsupported) {
				w.logf("registry: remote watch unsupported by peer, degrading to poll every %v", w.cfg.PollInterval)
				w.mode.Store(WatchModePoll)
				continue
			}
			if !w.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, maxBackoff)
			continue
		}
		if !w.setStream(st) {
			return
		}
		// Baseline AFTER the subscription is live: every mutation between
		// this fetch and the subscribe is already queued on the stream, so
		// nothing falls in a gap (replays are absorbed by the idempotent
		// upserts).
		if err := w.resync(); err != nil {
			_ = st.Close()
			if !w.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, maxBackoff)
			continue
		}
		backoff = w.cfg.RetryBackoff
		w.markSynced()
		w.consume(st)
		_ = st.Close()
		if w.ctx.Err() == nil && w.Mode() == WatchModeStream {
			w.cfg.Stats.WatchReconnect()
		}
	}
}

// consume drains one live stream until it fails.
func (w *RemoteWatch) consume(st WatchStream) {
	for {
		batch, err := st.Recv()
		if err != nil {
			return
		}
		if batch.Resync {
			// The remote dropped events (ring overflow or wholesale Load):
			// incremental state is gone, re-baseline from a snapshot. A
			// failed fetch falls through to the reconnect path via the next
			// Recv (the stream itself is still live, so keep consuming).
			w.cfg.Stats.WatchResync()
			if err := w.resync(); err != nil {
				w.logf("registry: remote watch resync fetch failed: %v", err)
			}
			continue
		}
		if len(batch.Events) > 0 {
			w.cfg.Stats.WatchEvents(len(batch.Events))
			ApplyWireEvents(w.cfg.Replica, batch.Events)
		}
	}
}

// resync re-baselines the replica from a full snapshot fetch.
func (w *RemoteWatch) resync() error {
	ms, err := w.cfg.Transport.FetchSnapshot(w.ctx, w.cfg.Filter)
	if err != nil {
		return err
	}
	ReconcileSnapshot(w.cfg.Replica, ms)
	return nil
}

// pollLoop is the floor: periodic snapshot fetches, no stream. It runs
// until the watcher closes.
func (w *RemoteWatch) pollLoop() {
	poll := func() {
		w.cfg.Stats.WatchPoll()
		if err := w.resync(); err != nil {
			w.logf("registry: remote watch poll failed: %v", err)
			return
		}
		w.markSynced()
	}
	poll()
	t := time.NewTicker(w.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-w.ctx.Done():
			return
		case <-t.C:
			poll()
		}
	}
}

// sleep waits d or until the watcher closes; it reports whether to keep
// running.
func (w *RemoteWatch) sleep(d time.Duration) bool {
	select {
	case <-w.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
