package registry

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"actyp/internal/query"
)

// The differential test drives randomized operation sequences against the
// sharded engine and the single-lock oracle in lockstep, asserting that
// every return value and the full observable state stay identical — the
// shadow-oracle pattern of internal/shadow applied to the registry.

// diffMachine builds a deterministic machine for the differential tests.
// Some names are deliberately odd (commas promote to list attributes in
// StrAttr; unicode exercises the name hash).
func diffMachine(rng *rand.Rand, name string) *Machine {
	archs := []string{"sun", "hp", "alpha", "x86", ""}
	domains := []string{"purdue", "upc", "5.8"}
	oses := []string{"solaris", "hpux", "linux"}
	m := &Machine{
		State: State(rng.Intn(3)),
		Dynamic: Dynamic{
			Load:       float64(rng.Intn(40)) / 10,
			ActiveJobs: rng.Intn(5),
			FreeMemory: float64(int(64) << uint(rng.Intn(5))),
			LastUpdate: time.Unix(1000000000+int64(rng.Intn(1000)), 0).UTC(),
		},
		Static: Static{
			Speed:   100 + float64(rng.Intn(400)),
			CPUs:    1 + rng.Intn(8),
			MaxLoad: 1 + float64(rng.Intn(8)),
			Name:    name,
		},
		Policy: Policy{
			Params: query.AttrSet{
				"arch":   query.StrAttr(archs[rng.Intn(len(archs))]),
				"domain": query.StrAttr(domains[rng.Intn(len(domains))]),
				"ostype": query.StrAttr(oses[rng.Intn(len(oses))]),
				"cms":    query.ListAttr("sge", "pbs"),
			},
		},
	}
	if rng.Intn(3) == 0 {
		m.Policy.UserGroups = []string{"ece", "cs"}[0:1]
	}
	if rng.Intn(4) == 0 {
		m.Policy.Params["pool"] = query.NumAttr(float64(rng.Intn(4)))
	}
	return m
}

// diffQuery builds a random query mixing indexable equality/membership
// conditions, non-indexable numeric ranges, conditions on built-in
// attributes, wildcards, and conditions on absent attributes.
func diffQuery(rng *rand.Rand) *query.Query {
	q := query.New()
	add := func(key string, c query.Condition) {
		if rng.Intn(2) == 0 {
			q.Set(key, c)
		}
	}
	add("punch.rsrc.arch", []query.Condition{
		query.Eq("sun"), query.Eq("hp"), query.Ne("sun"),
		query.In("sun", "x86"), query.Eq(""), query.Any(),
	}[rng.Intn(6)])
	add("punch.rsrc.domain", []query.Condition{
		query.Eq("purdue"), query.Eq("5.8"), query.EqNum(5.8),
	}[rng.Intn(3)])
	add("punch.rsrc.ostype", query.In("solaris", "linux"))
	add("punch.rsrc.speed", []query.Condition{
		query.Ge(float64(100 + rng.Intn(300))), query.Lt(300), query.Between(150, 450),
	}[rng.Intn(3)])
	add("punch.rsrc.load", query.Le(float64(rng.Intn(4))))
	add("punch.rsrc.pool", query.EqNum(float64(rng.Intn(4))))
	add("punch.rsrc.cms", query.Eq("sge"))
	add("punch.rsrc.usergroup", query.Eq("ece"))
	add("punch.rsrc.nosuchattr", query.Eq("x"))
	add("punch.rsrc.name", query.Eq(fmt.Sprintf("d%03d", rng.Intn(40))))
	return q
}

func machineNames(ms []*Machine) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Static.Name
	}
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareState asserts the two backends serialize to identical snapshots.
func compareState(t *testing.T, step int, oracle, subject Backend) {
	t.Helper()
	var a, b bytes.Buffer
	if err := oracle.Save(&a); err != nil {
		t.Fatalf("step %d: oracle save: %v", step, err)
	}
	if err := subject.Save(&b); err != nil {
		t.Fatalf("step %d: subject save: %v", step, err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("step %d: states diverged\noracle:\n%s\nsubject:\n%s", step, a.String(), b.String())
	}
}

func TestDifferentialShardedVsLocked(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			oracle := Backend(NewLocked())
			subject := NewSharded(1 + rng.Intn(64))
			pools := []string{"pool-a", "pool-b", "pool-c"}
			names := make([]string, 40)
			for i := range names {
				names[i] = fmt.Sprintf("d%03d", i)
			}
			names = append(names, "węird-ñame", "has,comma", "")

			steps := 3000
			if testing.Short() {
				steps = 600
			}
			for step := 0; step < steps; step++ {
				name := names[rng.Intn(len(names))]
				pool := pools[rng.Intn(len(pools))]
				switch op := rng.Intn(14); op {
				case 0, 1: // Add
					mrng := rand.New(rand.NewSource(rng.Int63()))
					m := diffMachine(mrng, name)
					e1, e2 := oracle.Add(m), subject.Add(m.Clone())
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Add(%q): oracle err %v, subject err %v", step, name, e1, e2)
					}
				case 2: // Remove
					e1, e2 := oracle.Remove(name), subject.Remove(name)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Remove(%q): %v vs %v", step, name, e1, e2)
					}
				case 3: // SetState
					st := State(rng.Intn(3))
					e1, e2 := oracle.SetState(name, st), subject.SetState(name, st)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: SetState(%q): %v vs %v", step, name, e1, e2)
					}
				case 4: // UpdateDynamic
					d := Dynamic{Load: float64(rng.Intn(50)) / 10, ActiveJobs: rng.Intn(9),
						FreeMemory: float64(rng.Intn(2048)), LastUpdate: time.Unix(1000001000+int64(step), 0).UTC()}
					e1, e2 := oracle.UpdateDynamic(name, d), subject.UpdateDynamic(name, d)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: UpdateDynamic(%q): %v vs %v", step, name, e1, e2)
					}
				case 5: // SetParam, indexed and non-indexed keys, changing values
					keys := []string{"arch", "domain", "pool", "customkey", "license"}
					key := keys[rng.Intn(len(keys))]
					var attr query.Attr
					switch rng.Intn(3) {
					case 0:
						attr = query.StrAttr([]string{"sun", "hp", "x86", "5.8", ""}[rng.Intn(5)])
					case 1:
						attr = query.NumAttr(float64(rng.Intn(6)))
					default:
						attr = query.ListAttr("tsuprem4", "spice")
					}
					e1, e2 := oracle.SetParam(name, key, attr), subject.SetParam(name, key, attr)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: SetParam(%q, %q): %v vs %v", step, name, key, e1, e2)
					}
				case 6, 7: // Take
					q := diffQuery(rng)
					limit := rng.Intn(8) - 1 // includes 0 and -1 ("no limit")
					got1 := machineNames(oracle.Take(q, pool, limit))
					got2 := machineNames(subject.Take(q, pool, limit))
					if !sameNames(got1, got2) {
						t.Fatalf("step %d: Take(%q, %d) diverged\nquery:\n%s\noracle:  %v\nsubject: %v",
							step, pool, limit, q, got1, got2)
					}
				case 8: // Release a random subset of what the pool holds (plus noise)
					held := oracle.TakenBy(pool)
					var victims []string
					for _, h := range held {
						if rng.Intn(2) == 0 {
							victims = append(victims, h)
						}
					}
					victims = append(victims, names[rng.Intn(len(names))], "no-such-machine")
					n1 := oracle.Release(pool, victims...)
					n2 := subject.Release(pool, victims...)
					if n1 != n2 {
						t.Fatalf("step %d: Release(%q, %v) = %d vs %d", step, pool, victims, n1, n2)
					}
				case 9: // ReleaseAll
					n1, n2 := oracle.ReleaseAll(pool), subject.ReleaseAll(pool)
					if n1 != n2 {
						t.Fatalf("step %d: ReleaseAll(%q) = %d vs %d", step, pool, n1, n2)
					}
				case 10, 11: // Select
					q := diffQuery(rng)
					got1 := machineNames(oracle.Select(q))
					got2 := machineNames(subject.Select(q))
					if !sameNames(got1, got2) {
						t.Fatalf("step %d: Select diverged\nquery:\n%s\noracle:  %v\nsubject: %v",
							step, q, got1, got2)
					}
				case 12: // Walk with early stop
					stop := rng.Intn(10)
					var w1, w2 []string
					oracle.Walk(func(m *Machine) bool {
						w1 = append(w1, m.Static.Name)
						return len(w1) < stop
					})
					subject.Walk(func(m *Machine) bool {
						w2 = append(w2, m.Static.Name)
						return len(w2) < stop
					})
					if !sameNames(w1, w2) {
						t.Fatalf("step %d: Walk diverged: %v vs %v", step, w1, w2)
					}
				case 13: // point reads
					if !sameNames(oracle.Names(), subject.Names()) {
						t.Fatalf("step %d: Names diverged", step)
					}
					if !sameNames(oracle.TakenBy(pool), subject.TakenBy(pool)) {
						t.Fatalf("step %d: TakenBy(%q) diverged", step, pool)
					}
					if oracle.Len() != subject.Len() {
						t.Fatalf("step %d: Len %d vs %d", step, oracle.Len(), subject.Len())
					}
					m1, e1 := oracle.Get(name)
					m2, e2 := subject.Get(name)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("step %d: Get(%q): %v vs %v", step, name, e1, e2)
					}
					if e1 == nil && m1.Static.Name != m2.Static.Name {
						t.Fatalf("step %d: Get(%q) returned different machines", step, name)
					}
				}
				if step%250 == 0 {
					compareState(t, step, oracle, subject)
					if err := subject.checkInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			compareState(t, steps, oracle, subject)
			if err := subject.checkInvariants(); err != nil {
				t.Fatal(err)
			}

			// Snapshots written by one backend must load into the other
			// and round back out identically.
			var snap bytes.Buffer
			if err := subject.Save(&snap); err != nil {
				t.Fatal(err)
			}
			reloaded := NewSharded(4)
			if err := reloaded.Load(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			oracle2 := NewLocked()
			if err := oracle2.Load(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			compareState(t, steps+1, oracle2, reloaded)
			if err := reloaded.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
