package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"actyp/internal/query"
)

// Locked is the original white-pages engine: a single-RWMutex map from
// machine name to record. Every query operation snapshots, clones and
// name-sorts whatever it touches under the one lock, which makes it easy
// to reason about — it is the reference oracle the differential tests run
// the sharded engine against — but makes Select/Take O(n log n) plus a
// full deep copy per call. Use Sharded on hot paths.
type Locked struct {
	mu       sync.RWMutex
	machines map[string]*Machine

	// watchHub implements Watch; mutators emit change events under the
	// engine lock, exactly as the sharded engine does per shard.
	watchHub
}

// NewLocked returns an empty single-lock backend.
func NewLocked() *Locked {
	return &Locked{machines: make(map[string]*Machine)}
}

// Add inserts a machine record. It fails if the record is invalid or a
// machine with the same name already exists.
func (db *Locked) Add(m *Machine) error {
	if err := m.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	name := m.Static.Name
	if _, ok := db.machines[name]; ok {
		return fmt.Errorf("registry: machine %q already registered", name)
	}
	db.machines[name] = m.Clone()
	db.emit(Event{Kind: EventAdded, Name: name})
	return nil
}

// Remove deletes a machine record by name.
func (db *Locked) Remove(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.machines[name]; !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	delete(db.machines, name)
	db.emit(Event{Kind: EventRemoved, Name: name})
	return nil
}

// Get returns a copy of the record for name.
func (db *Locked) Get(name string) (*Machine, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m, ok := db.machines[name]
	if !ok {
		return nil, fmt.Errorf("registry: machine %q not registered", name)
	}
	return m.Clone(), nil
}

// Len returns the number of registered machines.
func (db *Locked) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.machines)
}

// Names returns all machine names, sorted.
func (db *Locked) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.machines))
	for n := range db.machines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetState updates field 1 for a machine.
func (db *Locked) SetState(name string, s State) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	m.State = s
	db.emit(Event{Kind: EventStateSet, Name: name})
	return nil
}

// UpdateDynamic overwrites the monitor-maintained fields 2–7 as a unit.
// This is the entry point the resource monitoring service uses.
func (db *Locked) UpdateDynamic(name string, d Dynamic) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	m.Dynamic = d
	db.emit(Event{Kind: EventDynamicUpdated, Name: name, Dynamic: d})
	return nil
}

// UpdateDynamicBatch applies many dynamic updates under one lock
// acquisition. Unknown machines are skipped; it returns how many records
// were updated.
func (db *Locked) UpdateDynamicBatch(updates []DynamicUpdate) int {
	if len(updates) == 0 {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, u := range updates {
		m, ok := db.machines[u.Name]
		if !ok {
			continue
		}
		m.Dynamic = u.Dynamic
		db.emit(Event{Kind: EventDynamicUpdated, Name: u.Name, Dynamic: u.Dynamic})
		n++
	}
	return n
}

// SetParam sets one administrator-defined parameter (field 20).
func (db *Locked) SetParam(name, key string, attr query.Attr) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.machines[name]
	if !ok {
		return fmt.Errorf("registry: machine %q not registered", name)
	}
	if m.Policy.Params == nil {
		m.Policy.Params = make(query.AttrSet)
	}
	m.Policy.Params[key] = attr
	db.emit(Event{Kind: EventParamSet, Name: name})
	return nil
}

// Walk calls fn for every machine in name order, stopping early if fn
// returns false. The callback receives a copy; mutations do not write back.
func (db *Locked) Walk(fn func(*Machine) bool) {
	db.mu.RLock()
	names := make([]string, 0, len(db.machines))
	for n := range db.machines {
		names = append(names, n)
	}
	sort.Strings(names)
	clones := make([]*Machine, 0, len(names))
	for _, n := range names {
		clones = append(clones, db.machines[n].Clone())
	}
	db.mu.RUnlock()
	for _, m := range clones {
		if !fn(m) {
			return
		}
	}
}

// Select returns copies of the machines whose attributes satisfy the rsrc
// constraints of the query, regardless of taken state.
func (db *Locked) Select(q *query.Query) []*Machine {
	var out []*Machine
	db.Walk(func(m *Machine) bool {
		if m.Attrs().MatchRsrc(q) {
			out = append(out, m)
		}
		return true
	})
	return out
}

// Take implements the pool-initialization protocol of Section 5.2.3: it
// atomically selects up to limit machines that satisfy the query, are not
// already taken, and marks them taken by the named pool instance. A limit
// of zero or less means "no limit". It returns copies of the taken records.
func (db *Locked) Take(q *query.Query, poolInstance string, limit int) []*Machine {
	if poolInstance == "" {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.machines))
	for n := range db.machines {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*Machine
	for _, n := range names {
		if limit > 0 && len(out) >= limit {
			break
		}
		m := db.machines[n]
		if m.TakenBy != "" {
			continue
		}
		if !m.Attrs().MatchRsrc(q) {
			continue
		}
		m.TakenBy = poolInstance
		out = append(out, m.Clone())
		db.emit(Event{Kind: EventTaken, Name: n})
	}
	return out
}

// Release clears the taken mark on the named machines, but only if they are
// held by the given pool instance. It returns how many it released.
func (db *Locked) Release(poolInstance string, names ...string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, name := range names {
		m, ok := db.machines[name]
		if !ok {
			continue
		}
		if m.TakenBy == poolInstance {
			m.TakenBy = ""
			n++
			db.emit(Event{Kind: EventReleased, Name: name})
		}
	}
	return n
}

// ReleaseAll clears every taken mark held by the pool instance, returning
// the count. Pool objects call this when they shut down.
func (db *Locked) ReleaseAll(poolInstance string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for name, m := range db.machines {
		if m.TakenBy == poolInstance {
			m.TakenBy = ""
			n++
			db.emit(Event{Kind: EventReleased, Name: name})
		}
	}
	return n
}

// TakenBy returns the names of machines currently held by the pool
// instance, sorted.
func (db *Locked) TakenBy(poolInstance string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for n, m := range db.machines {
		if m.TakenBy == poolInstance {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Save writes the database as JSON to w.
func (db *Locked) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Machines: make([]*Machine, 0, len(db.machines))}
	names := make([]string, 0, len(db.machines))
	for n := range db.machines {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Machines = append(snap.Machines, db.machines[n].Clone())
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the database contents with the JSON snapshot read from r.
func (db *Locked) Load(r io.Reader) error {
	fresh, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.machines = fresh
	db.mu.Unlock()
	// A wholesale replacement has no incremental description: subscribers
	// get the resync marker and re-read.
	db.emitResync()
	return nil
}
